(* gbp — the gray-box probe utility (Section 4.1.2), demonstrated on a
   simulated volume.

   Builds a file population on the simulated OS, optionally warms some of
   the files into the file cache, then prints the order in which an
   unmodified application should access them:

     gbp --mode mem      # FCCD: cache-resident files first
     gbp --mode file     # FLDC: i-number (layout) order
     gbp --mode compose  # cached first, each group i-number sorted

   `gbp --out` additionally streams one file in best-probe order, showing
   the (offset, length) extents an application on the other end of the
   pipe would receive.

   `--faults canonical` boots the kernel under the canonical fault
   scenario; `--extra PATH` adds paths that need not exist (exercising
   the error exit codes); `--min-confidence` makes a noisy mem-mode
   ordering fall back to argument order.  Kernel errors map to distinct
   exit codes (see Gbp.exit_code_of_error); 1 stays for usage errors. *)

open Cmdliner
open Simos
open Graybox_core

let mib = 1024 * 1024

let run_sim mode files size_mib warm out noise seed fault_scenario crash_at extra
    min_confidence trace metrics drift_scenario adaptive rounds recal_budget
    flight_dump =
  let module Tele = Gray_util.Telemetry in
  (* --trace / --metrics opt into telemetry; an explicit GRAYBOX_TELEMETRY
     (e.g. a sample rate) still wins *)
  let tele_mode =
    match Tele.of_env () with
    | Tele.Off when trace <> None || metrics -> Tele.Full
    | m -> m
  in
  let sink =
    match tele_mode with Tele.Off -> None | m -> Some (Tele.create ~mode:m ~name:"gbp" ())
  in
  let platform = Platform.with_noise Platform.linux_2_2 ~sigma:noise in
  let engine = Engine.create () in
  (* --crash-at wins over GRAYBOX_CRASH (boot's env fallback) *)
  (* --flight-dump forces the recorder on even under GRAYBOX_FLIGHT=off *)
  let k =
    Kernel.boot ~engine ~platform ~data_disks:1 ~seed ?faults:fault_scenario
      ?crash:(Option.map Crash.at_syscall crash_at) ?drift:drift_scenario
      ?flight:(if flight_dump <> None then Some true else None) ()
  in
  (* no-op without a drift plane; with one, replay the schedule as a
     background process so the orderings below see the machine change *)
  Kernel.start_drift_daemon k;
  let exit_code = ref 0 in
  Kernel.spawn k (fun env ->
      let made =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"file" ~count:files
          ~size:(size_mib * mib)
      in
      let paths = made @ extra in
      Kernel.flush_file_cache k;
      let rng = Gray_util.Rng.create ~seed:(seed + 1) in
      (* warm only files that exist: extras may be ghosts and must not eat
         warm slots either *)
      let warmed =
        let arr = Array.of_list made in
        Gray_util.Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 (min warm files))
      in
      List.iter (fun p -> Gray_apps.Workload.read_file env p) warmed;
      Printf.printf "# volume: %d files x %d MB on %s; warmed: %s\n" files size_mib
        platform.Platform.name
        (String.concat ", " (List.map Fldc.basename (List.sort compare warmed)));
      let config =
        {
          (Fccd.default_config ~seed ()) with
          Fccd.access_unit = 4 * mib;
          prediction_unit = 1 * mib;
        }
      in
      if adaptive then begin
        (* self-healing FCCD ordering: re-order [rounds] times, two
           virtual seconds apart, spot-checking the ranking's health
           before each answer and re-calibrating when it went stale *)
        let acfg = { Adaptive.default_config with Adaptive.recal_budget } in
        match Adaptive.fccd ~config:acfg env ~fccd_config:config ~paths with
        | Error e ->
          Printf.eprintf "gbp: adaptive probe: %s\n" (Kernel.error_to_string e);
          exit_code := Gbp.exit_code_of_error e
        | Ok f ->
          let wd = Adaptive.fccd_watchdog f in
          let rec go round =
            if round < rounds && !exit_code = 0 then begin
              (match Adaptive.fccd_order env f with
              | Ok ordered ->
                Printf.printf "# gbp --adaptive round %d (health %.2f, %s, %d recalibrations):\n"
                  round (Adaptive.health wd)
                  (Adaptive.status_to_string (Adaptive.status wd))
                  (Adaptive.recalibrations wd);
                List.iter print_endline ordered
              | Error (`Kernel e) ->
                Printf.eprintf "gbp: adaptive round %d: %s\n" round
                  (Kernel.error_to_string e);
                exit_code := Gbp.exit_code_of_error e
              | Error `Stale_budget_exhausted ->
                Printf.eprintf
                  "gbp: adaptive round %d: ordering stale and re-calibration \
                   budget exhausted\n"
                  round;
                exit_code := Gbp.exit_stale);
              if round + 1 < rounds && !exit_code = 0 then
                Engine.delay 2_000_000_000;
              go (round + 1)
            end
          in
          go 0
      end
      else begin
        let ordered, reason =
          Gbp.best_order_or_fallback env config ~min_confidence mode ~paths
        in
        (* a degraded gbp keeps the pipeline alive — the caller's own
           argument order passes through — but reports why on stderr and,
           for kernel errors, through a distinct exit code *)
        (match reason with
        | None -> ()
        | Some r ->
          Printf.eprintf "gbp: %s; falling back to argument order\n"
            (Gbp.fallback_reason_to_string r);
          (match r with
          | Gbp.Degraded_error e -> exit_code := Gbp.exit_code_of_error e
          | Gbp.Low_confidence _ -> ()));
        Printf.printf "# gbp --mode %s ordering%s:\n" (Gbp.mode_to_string mode)
          (match reason with Some _ -> " (fallback: argument order)" | None -> "");
        List.iter print_endline ordered
      end;
      if out then begin
        match paths with
        | [] -> ()
        | first :: _ -> (
          Printf.printf "# gbp --out %s extents (best probe order):\n" first;
          match
            Gbp.out env config ~path:first ~consume:(fun ~off ~len ->
                Printf.printf "  offset=%-10d length=%d\n" off len)
          with
          | Ok _ -> ()
          | Error e ->
            Printf.eprintf "gbp: --out %s: %s\n" first (Kernel.error_to_string e);
            exit_code := Gbp.exit_code_of_error e)
      end);
  let run_machine () =
    match sink with
    | None -> Kernel.run k
    | Some s -> Tele.with_sink s (fun () -> Kernel.run k)
  in
  (try run_machine () with
  | Engine.Fiber_crash (_, Crash.Crashed) ->
    (* The scheduled crash fired: restart from the durable image, run the
       FLDC repair pass, and audit the volume.  Two distinct exit codes
       let a crash-matrix CI job tell "died and recovered" (9) from
       "died and recovery failed" (10). *)
    let ok = ref true in
    Kernel.restart k;
    Kernel.spawn k (fun env ->
        match Fldc.repair env ~parent:"/d0" with
        | Ok (_ : bool) -> ()
        | Error e ->
          Printf.eprintf "gbp: repair after crash: %s\n" (Kernel.error_to_string e);
          ok := false);
    (try run_machine () with
    | Engine.Fiber_crash (_, e) ->
      Printf.eprintf "gbp: repair run died: %s\n" (Printexc.to_string e);
      ok := false);
    (match Fs.check (Kernel.volume_fs k 0) with
    | [] -> ()
    | problems ->
      List.iter (fun m -> Printf.eprintf "gbp: fsck: %s\n" m) problems;
      ok := false);
    if Kernel.live_procs k <> 0 then begin
      Printf.eprintf "gbp: %d process(es) leaked across the crash\n" (Kernel.live_procs k);
      ok := false
    end;
    Printf.eprintf "gbp: machine crashed as scheduled; %s\n"
      (if !ok then "volume recovered" else "recovery FAILED");
    exit_code := (if !ok then Gbp.exit_crash_recovered else Gbp.exit_recovery_failed));
  (match (sink, trace) with
  | Some s, Some path -> (
    try
      Gray_util.Json.save ~path (Tele.chrome_trace (Tele.chrome_events s ~pid:1 ~tid:1))
    with Sys_error msg ->
      Printf.eprintf "gbp: cannot write trace to %s: %s\n%!" path msg;
      exit_code := Gbp.exit_export_failed)
  | _ -> ());
  (* after every outcome — clean run, crash + repair, stale exhaustion —
     so the dump is the post-mortem tail of whatever actually happened *)
  (match (flight_dump, Kernel.flight k) with
  | Some path, Some fl -> (
    try
      let oc = open_out path in
      output_string oc (Gray_util.Flight.dump fl);
      close_out oc
    with Sys_error msg ->
      Printf.eprintf "gbp: cannot write flight dump to %s: %s\n%!" path msg;
      exit_code := Gbp.exit_export_failed)
  | _ -> ());
  (match sink with
  | Some s when metrics -> print_string (Gray_util.Json.to_string_pretty (Tele.metrics_json s))
  | _ -> ());
  !exit_code

(* ---- the host backend ------------------------------------------------- *)

(* The same pipeline against the real OS through Os_host: build the file
   population in a scratch directory under the system temp dir, warm a
   subset for real, order by timed probes (mem) or inode numbers (file),
   and clean everything up on the way out — whatever happened.  Compose
   needs the simulator's cost model, so it reports host-unavailable (12)
   rather than pretending. *)
let run_host mode files size_mib warm out seed extra min_confidence =
  let module W = Gray_apps.Workload.Make (Os_host) in
  let module F = Fccd.Make (Os_host) in
  let module L = Fldc.Make (Os_host) in
  let rec rm_rf path =
    match (try Some (Sys.is_directory path) with Sys_error _ -> None) with
    | None -> ()
    | Some true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
    | Some false -> ( try Sys.remove path with Sys_error _ -> ())
  in
  match
    try Ok (Filename.temp_dir "gbp-host" "") with Sys_error msg -> Error msg
  with
  | Error msg ->
    Printf.eprintf "gbp: host backend unavailable: %s\n" msg;
    Gbp.exit_host_unavailable
  | Ok root -> (
    match Os_host.create ~root () with
    | Error e ->
      rm_rf root;
      Printf.eprintf "gbp: host backend unavailable: %s\n" (Kernel.error_to_string e);
      Gbp.exit_host_unavailable
    | Ok env ->
      let exit_code = ref 0 in
      Fun.protect
        ~finally:(fun () ->
          Os_host.shutdown env;
          rm_rf root)
        (fun () ->
          try
            match mode with
            | Gbp.Compose ->
              Printf.eprintf
                "gbp: --mode compose needs the simulator's cost model and is \
                 not available on the host backend\n";
              exit_code := Gbp.exit_host_unavailable
            | Gbp.Mem | Gbp.File ->
              let made =
                W.make_files env ~dir:"/data" ~prefix:"file" ~count:files
                  ~size:(size_mib * mib)
              in
              let paths = made @ extra in
              let rng = Gray_util.Rng.create ~seed:(seed + 1) in
              let warmed =
                let arr = Array.of_list made in
                Gray_util.Rng.shuffle rng arr;
                Array.to_list (Array.sub arr 0 (min warm files))
              in
              List.iter (fun p -> W.read_file env p) warmed;
              Printf.printf
                "# volume: %d files x %d MB on host (timer %d ns, confidence cap %.2f); warmed: %s\n"
                files size_mib
                (Os_host.timer_resolution_ns env)
                (Os_host.timing_confidence_cap env)
                (String.concat ", " (List.map Fldc.basename (List.sort compare warmed)));
              let config =
                {
                  (Fccd.default_config ~seed ()) with
                  Fccd.access_unit = 4 * mib;
                  prediction_unit = 1 * mib;
                }
              in
              let ordered, reason =
                match mode with
                | Gbp.Compose -> assert false
                | Gbp.Mem -> (
                  match F.order_files env config ~paths with
                  | Error e -> (paths, Some (Gbp.Degraded_error e))
                  | Ok ranked ->
                    let conf =
                      (* a coarse host timer bounds how much the ranking
                         may be believed, exactly as in probe plans *)
                      Float.min
                        (Os_host.timing_confidence_cap env)
                        (Fccd.order_confidence config ranked)
                    in
                    if conf < min_confidence then
                      (paths, Some (Gbp.Low_confidence conf))
                    else (List.map (fun r -> r.Fccd.fr_path) ranked, None))
                | Gbp.File -> (
                  match L.order_by_inumber env ~paths with
                  | Error e -> (paths, Some (Gbp.Degraded_error e))
                  | Ok ordered ->
                    (List.map (fun s -> s.Fldc.so_path) ordered, None))
              in
              (match reason with
              | None -> ()
              | Some r ->
                Printf.eprintf "gbp: %s; falling back to argument order\n"
                  (Gbp.fallback_reason_to_string r);
                match r with
                | Gbp.Degraded_error e -> exit_code := Gbp.exit_code_of_error e
                | Gbp.Low_confidence _ -> ());
              Printf.printf "# gbp --os host --mode %s ordering%s:\n"
                (Gbp.mode_to_string mode)
                (match reason with Some _ -> " (fallback: argument order)" | None -> "");
              List.iter print_endline ordered;
              if out then begin
                match paths with
                | [] -> ()
                | first :: _ -> (
                  match F.probe_file env config ~path:first with
                  | Error e ->
                    Printf.eprintf "gbp: --out %s: %s\n" first (Kernel.error_to_string e);
                    exit_code := Gbp.exit_code_of_error e
                  | Ok plan -> (
                    match Os_host.open_file env first with
                    | Error e ->
                      Printf.eprintf "gbp: --out %s: %s\n" first
                        (Kernel.error_to_string e);
                      exit_code := Gbp.exit_code_of_error e
                    | Ok fd ->
                      Printf.printf "# gbp --out %s extents (best probe order):\n" first;
                      F.read_plan ?policy:config.Fccd.retry env fd plan
                        ~f:(fun ~off ~len ->
                          Printf.printf "  offset=%-10d length=%d\n" off len);
                      Os_host.close env fd))
              end
          with Failure msg ->
            (* a workload helper hit a permanent syscall error: report it
               like any other degraded pipeline instead of dying raw *)
            Printf.eprintf "gbp: %s\n" msg;
            exit_code := 7);
      !exit_code)

let run os mode files size_mib warm out noise seed fault_scenario crash_at extra
    min_confidence trace metrics drift_scenario adaptive rounds recal_budget
    flight_dump =
  match os with
  | Os_choice.Sim ->
    run_sim mode files size_mib warm out noise seed fault_scenario crash_at extra
      min_confidence trace metrics drift_scenario adaptive rounds recal_budget
      flight_dump
  | Os_choice.Host ->
    if
      fault_scenario <> None || crash_at <> None || drift_scenario <> None
      || adaptive || trace <> None || metrics || flight_dump <> None
    then
      Printf.eprintf
        "gbp: --os host ignores simulation-only options (--faults, --crash-at, \
         --drift, --adaptive, --trace, --metrics, --flight-dump)\n";
    run_host mode files size_mib warm out seed extra min_confidence

(* malformed values are usage errors (exit 124 with a pointer to --help),
   not uncaught exceptions *)
let mode_conv =
  let parse s =
    match Gbp.mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg ("unknown mode: " ^ s ^ " (expected mem, file or compose)"))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Gbp.mode_to_string m))

let fault_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "" | "none" -> Ok None
    | "canonical" -> Ok (Some Fault.canonical)
    | "heavy" -> Ok (Some Fault.heavy)
    | s -> (
      match float_of_string_opt s with
      | Some i when i >= 0.0 -> Ok (Some (Fault.of_intensity ~intensity:i ()))
      | Some _ -> Error (`Msg "fault intensity must be non-negative")
      | None ->
        Error (`Msg ("unknown fault scenario: " ^ s
                     ^ " (expected none, canonical, heavy or an intensity)")))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some sc -> Format.pp_print_string ppf sc.Fault.sc_name
  in
  Arg.conv (parse, print)

let crash_at_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Some n)
    | Some _ -> Error (`Msg "crash boundary must be >= 1")
    | None -> Error (`Msg ("bad crash boundary: " ^ s ^ " (expected an integer >= 1)"))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let os_conv =
  let parse s =
    match Os_choice.of_string (String.lowercase_ascii (String.trim s)) with
    | Some v -> Ok v
    | None -> Error (`Msg ("unknown backend: " ^ s ^ " (expected sim or host)"))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (Os_choice.to_string v))

let os_arg =
  Arg.(
    value
    & opt os_conv (Os_choice.of_env ())
    & info [ "os" ]
        ~doc:
          "Backend: sim (the simulated volume) or host (the real operating \
           system through the hardened Unix backend; files live in a scratch \
           directory under the system temp dir and are removed afterwards).  \
           Exit code 12 means the host backend is unavailable or the requested \
           mode needs a capability it lacks.  GRAYBOX_OS is the environment \
           equivalent.")

let mode_arg =
  Arg.(value & opt mode_conv Gbp.Mem & info [ "mode"; "m" ] ~doc:"Ordering mode: mem, file or compose.")

let files_arg = Arg.(value & opt int 12 & info [ "files"; "n" ] ~doc:"Number of files.")
let size_arg = Arg.(value & opt int 4 & info [ "size" ] ~doc:"File size in MB.")
let warm_arg = Arg.(value & opt int 4 & info [ "warm" ] ~doc:"How many files to pre-warm.")
let out_arg = Arg.(value & flag & info [ "out" ] ~doc:"Also stream the first file (-out mode).")
let noise_arg = Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Timing noise sigma.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let faults_arg =
  Arg.(
    value & opt fault_conv None
    & info [ "faults" ]
        ~doc:"Fault scenario: none, canonical, heavy, or a float intensity.")

let crash_at_arg =
  Arg.(
    value & opt crash_at_conv None
    & info [ "crash-at" ] ~docv:"N"
        ~doc:
          "Crash the simulated machine at syscall boundary $(docv) (counted \
           from boot, >= 1), then restart it from the durable image and run \
           the repair pass.  Exit code 9 means the volume recovered, 10 means \
           recovery failed; a boundary past the end of the run never fires \
           and the pipeline completes normally.  GRAYBOX_CRASH=at:N is the \
           environment equivalent.")

let extra_arg =
  Arg.(
    value & opt_all string []
    & info [ "extra" ] ~doc:"Extra path to include in the probe set (may not exist).")

let min_confidence_arg =
  Arg.(
    value & opt float 0.0
    & info [ "min-confidence" ]
        ~doc:"Fall back to argument order below this mem-mode probe confidence.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the simulated run to $(docv) \
           (Perfetto-loadable); exit code 8 if the file cannot be written.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the run's telemetry metrics as JSON on stdout.")

let drift_conv =
  let parse s =
    match Drift.of_string s with
    | sc -> Ok sc
    | exception Invalid_argument _ ->
      Error
        (`Msg ("unknown drift scenario: " ^ s
               ^ " (expected none, quiet, canonical or heavy)"))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some sc -> Format.pp_print_string ppf sc.Drift.dr_name
  in
  Arg.conv (parse, print)

let drift_arg =
  Arg.(
    value & opt drift_conv None
    & info [ "drift" ]
        ~doc:
          "Environment-drift scenario: none, quiet, canonical or heavy.  The \
           machine then changes mid-run (cache resizes, policy swaps, timer \
           coarsening, pressure regimes); combine with $(b,--adaptive) to \
           watch the ordering heal.  GRAYBOX_DRIFT is the environment \
           equivalent.")

let adaptive_arg =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Use the self-healing FCCD wrapper: spot-check the ranking's \
           health each round, re-calibrate when stale, and exit with code \
           11 when the re-calibration budget runs out.")

let rounds_arg =
  Arg.(
    value & opt int 1
    & info [ "rounds" ]
        ~doc:"How many adaptive ordering rounds to run (2 s of virtual time apart).")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "Write the kernel's flight-recorder tail (recent syscalls, \
           evictions, faults, drift epochs, ICL phase transitions in \
           simulated time) to $(docv) after the run — whatever its outcome, \
           including crash recovery and stale-budget exhaustion.  Forces the \
           recorder on even under GRAYBOX_FLIGHT=off; exit code 8 if the \
           file cannot be written.")

let recal_budget_arg =
  Arg.(
    value & opt int 8
    & info [ "recal-budget" ]
        ~doc:"Re-calibration budget for --adaptive (0 = fail stale immediately).")

let cmd =
  Cmd.v
    (Cmd.info "gbp" ~doc:"Gray-box probe utility on a simulated volume")
    Term.(
      const run $ os_arg $ mode_arg $ files_arg $ size_arg $ warm_arg $ out_arg $ noise_arg
      $ seed_arg $ faults_arg $ crash_at_arg $ extra_arg $ min_confidence_arg
      $ trace_arg $ metrics_arg $ drift_arg $ adaptive_arg $ rounds_arg
      $ recal_budget_arg $ flight_dump_arg)

let () = exit (Cmd.eval' cmd)
