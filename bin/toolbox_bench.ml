(* toolbox_bench — run the gray-toolbox configuration microbenchmarks on a
   simulated platform and print (or save) the parameter repository in its
   persistent text format (Section 5: "a common format kept in persistent
   storage; each microbenchmark then only needs to be run once").

   -p accepts a comma-separated list of presets (or "all"); the platforms
   fan out over a domain pool (-j) and print in the order given, so the
   output is independent of the parallelism. *)

open Cmdliner
open Simos

let bench_platform ~noise ~seed platform_name =
  let platform = Platform.with_noise (Platform.by_name platform_name) ~sigma:noise in
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed () in
  let repo = ref None in
  Kernel.spawn k (fun env ->
      repo := Some (Graybox_core.Toolbox.run_all env ~scratch_dir:"/d0"));
  Kernel.run k;
  (platform.Platform.name, !repo)

let run platform_names noise seed jobs output =
  let names =
    match String.split_on_char ',' platform_names with
    | [ "all" ] -> List.map (fun p -> p.Platform.name) Platform.all
    | names -> List.map String.trim names
  in
  (* fail on typos before spending any simulation time *)
  (try List.iter (fun n -> ignore (Platform.by_name n)) names
   with Invalid_argument msg ->
     Printf.eprintf "toolbox_bench: %s (try \"all\")\n" msg;
     exit 1);
  let pool = Gray_util.Domain_pool.create ~size:(min jobs (List.length names)) in
  let results =
    Fun.protect
      ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
      (fun () -> Gray_util.Domain_pool.map pool (bench_platform ~noise ~seed) names)
  in
  let failed = ref false in
  List.iter
    (fun (name, repo) ->
      match repo with
      | None ->
        Printf.eprintf "toolbox_bench: benchmark process failed on %s\n" name;
        failed := true
      | Some repo -> (
        Printf.printf "# gray-toolbox microbenchmark results for %s (noise sigma %.2f)\n"
          name noise;
        print_string (Gray_util.Param_repo.to_string repo);
        match output with
        | None -> ()
        | Some path ->
          let path =
            if List.length results = 1 then path else Printf.sprintf "%s.%s" path name
          in
          Gray_util.Param_repo.save repo ~path;
          Printf.printf "# saved to %s\n" path))
    results;
  if !failed then exit 1

let platform_arg =
  Arg.(
    value
    & opt string "linux-2.2"
    & info [ "platform"; "p" ]
        ~doc:
          "Platform preset(s): linux-2.2, netbsd-1.5 or solaris-7; a comma-separated \
           list or \"all\" benchmarks several in parallel (see $(b,-j)).")

let noise_arg = Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Timing noise sigma.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~doc:"Domains to fan platforms out over (results are order-independent).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ]
        ~doc:
          "Save the repository to a file (suffixed with the platform name when \
           benchmarking several).")

let cmd =
  Cmd.v
    (Cmd.info "toolbox_bench" ~doc:"Gray-toolbox microbenchmarks on the simulated OS")
    Term.(const run $ platform_arg $ noise_arg $ seed_arg $ jobs_arg $ output_arg)

let () = exit (Cmd.eval cmd)
