(* toolbox_bench — run the gray-toolbox configuration microbenchmarks on a
   simulated platform and print (or save) the parameter repository in its
   persistent text format (Section 5: "a common format kept in persistent
   storage; each microbenchmark then only needs to be run once").

   -p accepts a comma-separated list of presets (or "all"); the platforms
   fan out over a domain pool (-j) and print in the order given, so the
   output is independent of the parallelism. *)

open Cmdliner
open Simos

let bench_platform ~noise ~seed platform_name =
  let platform = Platform.with_noise (Platform.by_name platform_name) ~sigma:noise in
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed () in
  let repo = ref None in
  Kernel.spawn k (fun env ->
      repo := Some (Graybox_core.Toolbox.run_all env ~scratch_dir:"/d0"));
  Kernel.run k;
  (platform.Platform.name, !repo)

(* --hot-paths: bechamel measurement of the batched run API against the
   per-page path, isolated from the experiment harness.  The numbers are
   hardware measurements of this machine (like bench/main.exe micro), so
   this mode prints ns/page and the speedup ratio instead of publishing
   figures.  Hits and misses are measured separately: a hit is one policy
   lookup either way, a miss adds insert + eviction + (per-page only) the
   result-list allocation. *)

let run_len = 64

let hot_paths_benchmark test =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map
      (fun instance ->
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          instance raw)
      instances
  in
  let merged =
    Analyze.merge
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instances results
  in
  (* one instance, one test: pull out the single OLS estimate *)
  let est = ref None in
  Hashtbl.iter
    (fun _clock tbl ->
      Hashtbl.iter
        (fun _name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ e ] -> est := Some e
          | _ -> ())
        tbl)
    merged;
  !est

let rec run_hot_paths () =
  let open Bechamel in
  let fkey i = Page.File { ino = 1; idx = i } in
  let capacity = 4096 in
  let no_evict _ ~dirty:_ = () in
  let mk name =
    let p = Pool.create ~name ~capacity_pages:capacity ~policy:Replacement.lru in
    for i = 0 to capacity - 1 do
      ignore (Pool.access p (fkey i) ~dirty:false)
    done;
    p
  in
  (* hits: the working set stays resident, every access is one lookup *)
  let hit_per_page =
    let p = mk "hit-pp" and base = ref 0 in
    Test.make ~name:"hit/per-page" (Staged.stage (fun () ->
        let b = !base in
        for i = b to b + run_len - 1 do
          ignore (Pool.access p (fkey (i mod capacity)) ~dirty:false)
        done;
        base := (b + run_len) mod capacity))
  in
  let hit_batched =
    let p = mk "hit-run" and base = ref 0 in
    Test.make ~name:"hit/batched" (Staged.stage (fun () ->
        let b = !base in
        Pool.access_run p ~n:run_len
          ~key:(fun i -> fkey ((b + i) mod capacity))
          ~dirty:false
          ~on_hit:(fun _ _ -> ())
          ~on_miss:(fun _ _ -> ())
          ~on_evict:no_evict
          ~on_page_end:(fun _ ~evicted:_ -> ());
        base := (b + run_len) mod capacity))
  in
  (* misses: an endless sequential scan, every access evicts one page *)
  let miss_per_page =
    let p = mk "miss-pp" and next = ref capacity in
    Test.make ~name:"miss/per-page" (Staged.stage (fun () ->
        let b = !next in
        for i = b to b + run_len - 1 do
          ignore (Pool.access p (fkey i) ~dirty:false)
        done;
        next := b + run_len))
  in
  let miss_batched =
    let p = mk "miss-run" and next = ref capacity in
    Test.make ~name:"miss/batched" (Staged.stage (fun () ->
        let b = !next in
        Pool.access_run p ~n:run_len
          ~key:(fun i -> fkey (b + i))
          ~dirty:false
          ~on_hit:(fun _ _ -> ())
          ~on_miss:(fun _ _ -> ())
          ~on_evict:no_evict
          ~on_page_end:(fun _ ~evicted:_ -> ());
        next := b + run_len))
  in
  Printf.printf
    "# page-pool hot paths: batched run API vs per-page (%d-page runs, lru, \
     capacity %d)\n"
    run_len capacity;
  let measure test =
    match hot_paths_benchmark test with
    | Some est -> Some (est /. float_of_int run_len)
    | None -> None
  in
  let report label per_page batched =
    match (measure per_page, measure batched) with
    | Some pp, Some bt ->
      Printf.printf "  %-5s per-page %7.1f ns/page   batched %7.1f ns/page   (%.2fx)\n"
        label pp bt (pp /. bt)
    | _ -> Printf.printf "  %-5s (no estimate)\n" label
  in
  report "hit" hit_per_page hit_batched;
  report "miss" miss_per_page miss_batched;
  (* the accounting ledger's cost on the same batched read path: the
     callbacks bump a cached per-process stats row and the flight
     recorder stores five ints per run — vs the no-op callbacks above.
     This is the zero-cost claim's measured side ("off" is the identical
     workload with accounting compiled in but the kernel's bumps absent). *)
  let hit_accounted =
    let p = mk "hit-acct" and base = ref 0 in
    let acct = Account.create () in
    let st = Account.note_spawn acct ~pid:1 ~name:"bench" in
    let fl = Gray_util.Flight.create () in
    Test.make ~name:"hit/accounted"
      (Staged.stage (fun () ->
           let b = !base in
           Gray_util.Flight.record fl ~ts:b ~code:Gray_util.Flight.Read ~pid:1
             ~a:0 ~b:0;
           Pool.access_run p ~n:run_len
             ~key:(fun i -> fkey ((b + i) mod capacity))
             ~dirty:false
             ~on_hit:(fun _ _ -> st.Account.hits <- st.Account.hits + 1)
             ~on_miss:(fun _ _ -> st.Account.misses <- st.Account.misses + 1)
             ~on_evict:no_evict
             ~on_page_end:(fun _ ~evicted:_ -> ());
           base := (b + run_len) mod capacity))
  in
  Printf.printf
    "# per-process accounting on the batched read path: ledger bumps + flight \
     record vs no-ops\n";
  (match (measure hit_batched, measure hit_accounted) with
  | Some off, Some on ->
    Printf.printf
      "  acct  off      %7.1f ns/page   on      %7.1f ns/page   (%+.1f%%)\n" off
      on
      (if off > 0.0 then (on -. off) /. off *. 100.0 else 0.0)
  | _ -> Printf.printf "  acct  (no estimate)\n");
  run_hot_paths_fs ()

(* The PR-7 surfaces on the same trendline: the incremental fsck against
   the full-scan oracle it replaces on the explorer's per-boundary path,
   and the arena extent path behind read/write (append-grow + truncate,
   chunks recycling through the free lists with no OCaml allocation in
   steady state). *)
and run_hot_paths_fs () =
  let open Bechamel in
  let must = function Ok v -> v | Error e -> failwith (Fs.error_to_string e) in
  let block = 4096 in
  let fs = Fs.create (Fs.default_config ~total_blocks:16384) in
  ignore (must (Fs.mkdir fs "/dir"));
  let inos =
    List.init 32 (fun i ->
        let ino = must (Fs.create_file fs (Printf.sprintf "/dir/f%02d" i)) in
        must (Fs.resize fs ~ino ~size:(8 * block));
        ino)
  in
  let cp = Fs.checkpoint fs in
  (* a boundary-sized dirty set: one grown file, one unlink, one create *)
  must (Fs.resize fs ~ino:(List.hd inos) ~size:(12 * block));
  must (Fs.unlink fs "/dir/f01");
  let fresh = must (Fs.create_file fs "/dir/f32") in
  must (Fs.resize fs ~ino:fresh ~size:(4 * block));
  let fsck_full =
    Test.make ~name:"fsck/full" (Staged.stage (fun () -> ignore (Fs.check_full fs)))
  in
  let fsck_incr =
    Test.make ~name:"fsck/incremental"
      (Staged.stage (fun () -> ignore (Fs.check_incremental fs cp)))
  in
  Printf.printf "# fsck: full scan vs incremental (32 files, 3 inodes dirty)\n";
  (match (hot_paths_benchmark fsck_full, hot_paths_benchmark fsck_incr) with
  | Some full, Some incr ->
    Printf.printf "  fsck  full     %7.1f ns/check  incremental %7.1f ns/check  (%.2fx)\n"
      full incr (full /. incr)
  | _ -> Printf.printf "  fsck  (no estimate)\n");
  let cycle_blocks = 64 in
  let victim = List.nth inos 16 in
  let extent_cycle =
    Test.make ~name:"extent/grow-shrink"
      (Staged.stage (fun () ->
           must (Fs.resize fs ~ino:victim ~size:(cycle_blocks * block));
           must (Fs.resize fs ~ino:victim ~size:(8 * block))))
  in
  Printf.printf "# arena extent path: %d-block append-grow + truncate cycle\n"
    cycle_blocks;
  (match hot_paths_benchmark extent_cycle with
  | Some est ->
    (* 56 blocks attached + 56 detached per cycle *)
    Printf.printf "  resize         %7.1f ns/block\n"
      (est /. float_of_int (2 * (cycle_blocks - 8)))
  | None -> Printf.printf "  resize (no estimate)\n");
  run_adapter_overhead ()

(* The Os_sim adapter's promise is that going through the OS functor costs
   nothing over calling the kernel directly: its bindings are eta-equal
   aliases, so the two paths should be the same closure and the same
   ns/call.  Measured on a live simulated volume with the wall clock. *)
and run_adapter_overhead () =
  let must = function Ok v -> v | Error e -> failwith (Kernel.error_to_string e) in
  let platform = Platform.with_noise Platform.linux_2_2 ~sigma:0.0 in
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed:42 () in
  Kernel.spawn k (fun env ->
      must (Kernel.mkdir env "/d0/data");
      let fd = must (Kernel.create_file env "/d0/data/probe") in
      ignore (must (Kernel.write env fd ~off:0 ~len:(4 * 1024 * 1024)));
      let iters = 10_000 in
      let time_loop f =
        for _ = 1 to 1_000 do
          f ()
        done;
        let t0 = Monotonic_clock.now () in
        for _ = 1 to iters do
          f ()
        done;
        let t1 = Monotonic_clock.now () in
        Int64.to_float (Int64.sub t1 t0) /. float_of_int iters
      in
      let direct = time_loop (fun () -> ignore (Kernel.read env fd ~off:0 ~len:1)) in
      let via =
        time_loop (fun () ->
            ignore (Graybox_core.Os_sim.read env fd ~off:0 ~len:1))
      in
      Printf.printf
        "# Os_sim adapter overhead: direct kernel calls vs the OS functor \
         surface (%d reads each)\n"
        iters;
      Printf.printf
        "  read  direct   %7.1f ns/call   via-adapter %7.1f ns/call   (%+.1f%%)%s\n"
        direct via
        (if direct > 0.0 then (via -. direct) /. direct *. 100.0 else 0.0)
        (if Graybox_core.Os_sim.read == Kernel.read then "   [same closure]"
         else "");
      Kernel.close env fd);
  Kernel.run k

(* --top: a deterministic contention scenario on a memory-starved machine,
   rendered as the per-process accounting table plus the who-evicted-whom
   blame matrix.  Three readers scan 12 MB files while two anonymous-memory
   hogs each touch 16 MB: ~68 MB of working set against 24 MB of usable
   memory, so every process finishes the run having evicted the others'
   pages — file victims land in the "(file)" column, the hogs' swapped-out
   regions show up as pid-attributed victims. *)
let run_top ~noise ~seed =
  let mib = 1024 * 1024 in
  let platform =
    Platform.with_noise
      { Platform.linux_2_2 with Platform.memory_mib = 40; kernel_reserved_mib = 16 }
      ~sigma:noise
  in
  let engine = Engine.create () in
  (* accounting forced on: this mode is the ledger's viewer *)
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed ~account:true () in
  let must = function Ok v -> v | Error e -> failwith (Kernel.error_to_string e) in
  Kernel.spawn k ~name:"setup" (fun env ->
      must (Kernel.mkdir env "/d0/data");
      for i = 0 to 2 do
        let fd = must (Kernel.create_file env (Printf.sprintf "/d0/data/f%d" i)) in
        ignore (must (Kernel.write env fd ~off:0 ~len:(12 * mib)));
        Kernel.close env fd
      done);
  Kernel.run k;
  Kernel.flush_file_cache k;
  for r = 0 to 2 do
    Kernel.spawn k ~name:(Printf.sprintf "reader%d" r) (fun env ->
        let path = Printf.sprintf "/d0/data/f%d" r in
        for _pass = 1 to 3 do
          let fd = must (Kernel.open_file env path) in
          let size = Kernel.file_size env fd in
          let off = ref 0 in
          while !off < size do
            ignore (must (Kernel.read env fd ~off:!off ~len:mib));
            off := !off + mib
          done;
          Kernel.close env fd
        done)
  done;
  for h = 0 to 1 do
    Kernel.spawn k ~name:(Printf.sprintf "hog%d" h) (fun env ->
        let pages = 16 * mib / 4096 in
        let r = Kernel.valloc env ~pages in
        for _pass = 1 to 3 do
          ignore (Kernel.touch_pages env r ~first:0 ~count:pages)
        done;
        Kernel.vfree env r)
  done;
  Kernel.run k;
  match Kernel.account k with
  | None -> assert false (* booted with ~account:true *)
  | Some a ->
    Printf.printf
      "# per-process accounting: 3 readers + 2 memory hogs on %s (%d MB usable)\n"
      platform.Platform.name
      (platform.Platform.memory_mib - platform.Platform.kernel_reserved_mib);
    print_string (Account.top_table a);
    print_string (Account.blame_table a)

(* --fleet: the scheduler-plane scaling row — mixed-profile fleets of
   growing size on one proportional-share kernel (accounting forced on,
   ledger reaped every 64 exits), with the simulated horizon, real
   wall-clock cost, event count, scheduler slices and ledger footprint
   per size.  The table is the "thousands of contending processes cost
   this much to simulate" answer; the experiment itself lives in
   `bench/main.exe fleet`. *)
let run_fleet ~noise ~seed =
  let platform =
    Platform.with_noise
      { Platform.linux_2_2 with Platform.memory_mib = 48; kernel_reserved_mib = 32 }
      ~sigma:noise
  in
  Printf.printf
    "# fleet scaling on %s (%d MB usable): mixed profiles, 2 rounds each, reap every 64 exits\n"
    platform.Platform.name
    (platform.Platform.memory_mib - platform.Platform.kernel_reserved_mib);
  Printf.printf "  %-8s %10s %10s %12s %10s %11s %8s\n" "procs" "sim-ms" "wall-ms"
    "events" "slices" "live-rows" "reaped";
  List.iter
    (fun procs ->
      let d =
        {
          Graybox_core.Fleet.default_descriptor with
          Graybox_core.Fleet.fd_procs = procs;
          fd_seed = seed;
          fd_reap_every = 64;
        }
      in
      let engine = Engine.create () in
      let k =
        Kernel.boot ~engine ~platform ~data_disks:1 ~seed ~account:true
          ~sched:(Graybox_core.Fleet.sched_config d) ~procs:(procs + 8) ()
      in
      let prof_rng = Gray_util.Rng.create ~seed:(seed + 1) in
      let profiles =
        Array.init procs (fun _ -> Gray_apps.Workload.draw_profile prof_rng)
      in
      let paths_cell = ref [||] in
      Kernel.spawn k ~name:"setup" (fun env ->
          paths_cell :=
            Gray_apps.Workload.fleet_population env ~dir:"/d0/pop" ~files:32
              ~file_kb:256;
          Kernel.flush_file_cache k);
      Kernel.run k;
      Graybox_core.Fleet.spawn_fleet k d
        ~name:(fun i -> "fleet." ^ Gray_apps.Workload.profile_name profiles.(i))
        ~body:(fun ~index ~rng env ->
          Gray_apps.Workload.run_profile env rng profiles.(index)
            ~paths:!paths_cell ~rounds:2)
        ();
      let t0 = Unix.gettimeofday () in
      Kernel.run k;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let slices =
        match Kernel.sched k with Some s -> Sched.slices s | None -> 0
      in
      let live_rows, reaped =
        match Kernel.account k with
        | Some a -> (List.length (Account.rows a), Account.reaped_procs a)
        | None -> (0, 0)
      in
      Printf.printf "  %-8d %10.1f %10.1f %12d %10d %11d %8d\n" procs
        (float_of_int (Engine.now engine) /. 1e6)
        wall_ms
        (Engine.events_processed engine)
        slices live_rows reaped)
    [ 64; 256; 1024 ]

let run_platforms platform_names noise seed jobs output =
  let names =
    match String.split_on_char ',' platform_names with
    | [ "all" ] -> List.map (fun p -> p.Platform.name) Platform.all
    | names -> List.map String.trim names
  in
  (* fail on typos before spending any simulation time *)
  (try List.iter (fun n -> ignore (Platform.by_name n)) names
   with Invalid_argument msg ->
     Printf.eprintf "toolbox_bench: %s (try \"all\")\n" msg;
     exit 1);
  let pool = Gray_util.Domain_pool.create ~size:(min jobs (List.length names)) in
  let results =
    Fun.protect
      ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
      (fun () -> Gray_util.Domain_pool.map pool (bench_platform ~noise ~seed) names)
  in
  let failed = ref false in
  List.iter
    (fun (name, repo) ->
      match repo with
      | None ->
        Printf.eprintf "toolbox_bench: benchmark process failed on %s\n" name;
        failed := true
      | Some repo -> (
        Printf.printf "# gray-toolbox microbenchmark results for %s (noise sigma %.2f)\n"
          name noise;
        print_string (Gray_util.Param_repo.to_string repo);
        match output with
        | None -> ()
        | Some path ->
          let path =
            if List.length results = 1 then path else Printf.sprintf "%s.%s" path name
          in
          Gray_util.Param_repo.save repo ~path;
          Printf.printf "# saved to %s\n" path))
    results;
  if !failed then exit 1

let run hot_paths top fleet platform_names noise seed jobs output =
  if top then run_top ~noise ~seed
  else if fleet then run_fleet ~noise ~seed
  else if hot_paths then run_hot_paths ()
  else run_platforms platform_names noise seed jobs output

let top_arg =
  Arg.(
    value & flag
    & info [ "top" ]
        ~doc:
          "Run a deterministic multi-process contention scenario on a \
           memory-starved platform and print the per-process accounting \
           table plus the who-evicted-whom blame matrix (accounting forced \
           on).")

let fleet_arg =
  Arg.(
    value & flag
    & info [ "fleet" ]
        ~doc:
          "Print the multi-tenant fleet scaling table: mixed-profile fleets of \
           64/256/1024 processes on one proportional-share scheduler kernel, \
           with simulated horizon, wall-clock cost, event count and ledger \
           footprint per size (accounting forced on, mid-run reaping).")

let hot_paths_arg =
  Arg.(
    value & flag
    & info [ "hot-paths" ]
        ~doc:
          "Instead of the toolbox microbenchmarks, run a bechamel comparison of \
           the page pool's batched run API against the per-page path (hits and \
           misses separately).  Numbers measure this machine.")

let platform_arg =
  Arg.(
    value
    & opt string "linux-2.2"
    & info [ "platform"; "p" ]
        ~doc:
          "Platform preset(s): linux-2.2, netbsd-1.5 or solaris-7; a comma-separated \
           list or \"all\" benchmarks several in parallel (see $(b,-j)).")

let noise_arg = Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Timing noise sigma.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~doc:"Domains to fan platforms out over (results are order-independent).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ]
        ~doc:
          "Save the repository to a file (suffixed with the platform name when \
           benchmarking several).")

let cmd =
  Cmd.v
    (Cmd.info "toolbox_bench" ~doc:"Gray-toolbox microbenchmarks on the simulated OS")
    Term.(
      const run $ hot_paths_arg $ top_arg $ fleet_arg $ platform_arg $ noise_arg
      $ seed_arg $ jobs_arg $ output_arg)

let () = exit (Cmd.eval cmd)
