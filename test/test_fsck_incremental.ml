(* Differential proof obligations of the incremental fsck (PR 7): on any
   state reachable through the Fs API — randomized workloads, crash
   rollbacks, white-box corruptions — [check_incremental] with a current
   token returns the same violation multiset as [check_full]; a stale
   token (older checkpoint, or one invalidated by an epoch wrap) falls
   back to the full scan and so can never miss a violation.  Plus the
   named edge cases: rename + unlink of one inode inside one window, and
   the epoch-counter wraparound. *)

open Simos

let block = 4096

let must = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Fs.error_to_string e)

(* A consistent base image: /dir with six files of one to six blocks.
   The checkpoint contract requires a state that passes the full fsck —
   asserted, not assumed. *)
let base () =
  let fs = Fs.create (Fs.default_config ~total_blocks:16384) in
  ignore (must (Fs.mkdir fs "/dir"));
  for i = 0 to 5 do
    let ino = must (Fs.create_file fs (Printf.sprintf "/dir/f%d" i)) in
    must (Fs.resize fs ~ino ~size:((i + 1) * block))
  done;
  Alcotest.(check (list string)) "base image passes the full fsck" [] (Fs.check_full fs);
  fs

let agree what fs cp =
  Alcotest.(check (list string))
    (what ^ ": incremental == full")
    (List.sort compare (Fs.check_full fs))
    (List.sort compare (Fs.check_incremental fs cp))

(* ---- randomized workloads (the qcheck differential harness) ---- *)

(* One post-checkpoint mutation step, driven by two generated ints.  The
   interpreter only issues operations the API accepts on the current
   state (errors are ignored — an [Error] leaves the volume untouched),
   so every generated program is a legal workload; [Fs.crash] mid-stream
   covers the rollback path at arbitrary "crash points". *)
let apply fs (op, a) =
  let name i = Printf.sprintf "/dir/f%d" (abs i mod 9) in
  let ino_of path =
    match Fs.stat_path fs path with Ok st -> Some st.Fs.st_ino | Error _ -> None
  in
  match abs op mod 8 with
  | 0 -> ignore (Fs.create_file fs (name a))
  | 1 -> ignore (Fs.unlink fs (name a))
  | 2 -> (
    match ino_of (name a) with
    | Some ino -> ignore (Fs.resize fs ~ino ~size:((abs a mod 8) * block))
    | None -> ())
  | 3 -> ignore (Fs.rename fs ~src:(name a) ~dst:(name (a + 1)))
  | 4 -> (
    match ino_of (name a) with
    | Some ino -> ignore (Fs.fsync_ino fs ~ino)
    | None -> ())
  | 5 -> Fs.sync_all fs
  | 6 -> Fs.crash fs
  | _ -> (
    (* a subdirectory and a cross-directory move: parent/pname churn *)
    ignore (Fs.mkdir fs "/dir/sub");
    match abs a mod 2 with
    | 0 -> ignore (Fs.rename fs ~src:(name a) ~dst:("/dir/sub" ^ "/g"))
    | _ -> ignore (Fs.rename fs ~src:"/dir/sub/g" ~dst:(name a)))

let gen_program =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 40) (pair int int))
      (* [Some seed]: finish with one white-box corruption *)
      (option (int_range 0 1000)))

let prop_differential =
  QCheck2.Test.make ~name:"check_incremental == check_full on random workloads"
    ~count:150 gen_program (fun (ops, break) ->
      let fs = base () in
      let cp = Fs.checkpoint fs in
      List.iter (apply fs) ops;
      let broke =
        (* a candidate may find nothing to damage on this state ("(no-op)") *)
        match break with
        | None -> None
        | Some seed -> (
          match Fs.break_one fs ~seed with
          | Some d when not (String.ends_with ~suffix:"(no-op)" d) -> Some d
          | Some _ | None -> None)
      in
      let full = List.sort compare (Fs.check_full fs) in
      let incr = List.sort compare (Fs.check_incremental fs cp) in
      if full <> incr then
        QCheck2.Test.fail_reportf "checkers disagree\nfull: %s\nincr: %s"
          (String.concat "; " full) (String.concat "; " incr);
      (* a corruption must be *caught*, not just agreed upon *)
      (match broke with
      | Some damage when full = [] ->
        QCheck2.Test.fail_reportf "corruption missed by both checkers: %s" damage
      | Some _ | None -> ());
      true)

(* ---- named edge cases ---- *)

(* Rename then unlink of the same inode between one checkpoint and the
   check: the dirty set holds the inode under both identities (moved,
   then removed), its old parent, and its new parent. *)
let test_rename_unlink_same_window () =
  let fs = base () in
  let cp = Fs.checkpoint fs in
  must (Fs.rename fs ~src:"/dir/f2" ~dst:"/dir/moved");
  agree "after rename" fs cp;
  must (Fs.unlink fs "/dir/moved");
  agree "after rename+unlink" fs cp;
  (* and the replacing variant: rename onto an existing target removes
     the target inode in the same operation *)
  must (Fs.rename fs ~src:"/dir/f3" ~dst:"/dir/f4");
  agree "after replacing rename" fs cp;
  Alcotest.(check (list string)) "still consistent" [] (Fs.check_full fs)

(* A token from an older epoch can vouch for nothing: after a newer
   checkpoint, corruption marked against the *new* epoch must still be
   caught through the stale token (the fallback path, observable via the
   telemetry counter). *)
let test_stale_token_falls_back () =
  let fs = base () in
  let stale = Fs.checkpoint fs in
  let _fresh = Fs.checkpoint fs in
  let damage =
    match Fs.break_one fs ~seed:7 with
    | Some d -> d
    | None -> Alcotest.fail "break_one found nothing to corrupt"
  in
  let sink = Gray_util.Telemetry.create ~mode:Gray_util.Telemetry.Full ~name:"stale" () in
  let via_stale =
    Gray_util.Telemetry.with_sink sink (fun () -> Fs.check_incremental fs stale)
  in
  Alcotest.(check bool)
    (Printf.sprintf "stale token catches: %s" damage)
    false (via_stale = []);
  agree "stale token == full scan" fs stale;
  Alcotest.(check int) "fallback counter bumped" 1
    (Gray_util.Telemetry.counter_value sink "fs.check.fallback")

(* Epoch wraparound: drive the epoch counter to its limit; the wrap
   renormalises every stored mark, bumps the generation, and so
   invalidates all outstanding tokens — a pre-wrap token must fall back
   rather than trust aliased epoch numbers. *)
let test_epoch_wraparound () =
  let fs = base () in
  let pre_wrap = Fs.checkpoint fs in
  let gen0, _epoch0 = Fs.epoch_state fs in
  (* mutate under the pre-wrap epoch so stale marks exist to renormalise *)
  must (Fs.resize fs ~ino:(must (Fs.stat_path fs "/dir/f0")).Fs.st_ino ~size:(7 * block));
  while fst (Fs.epoch_state fs) = gen0 do
    ignore (Fs.checkpoint fs)
  done;
  let gen1, epoch1 = Fs.epoch_state fs in
  Alcotest.(check int) "generation bumped once" (gen0 + 1) gen1;
  Alcotest.(check int) "epoch renormalised to 1" 1 epoch1;
  (* the volume is clean, but the pre-wrap token must not say so cheaply:
     corrupt now and check through it *)
  (match Fs.break_one fs ~seed:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "break_one found nothing to corrupt");
  Alcotest.(check bool) "pre-wrap token catches post-wrap damage" false
    (Fs.check_incremental fs pre_wrap = []);
  agree "pre-wrap token == full scan" fs pre_wrap

(* Crash rollback dirties what it rolls back: unsynced growth is undone
   at restart, and the checkers agree on the rolled-back image — the
   explorer's per-boundary configuration. *)
let test_crash_rollback_differential () =
  let fs = base () in
  Fs.sync_all fs;
  let cp = Fs.checkpoint fs in
  let ino = (must (Fs.stat_path fs "/dir/f5")).Fs.st_ino in
  must (Fs.resize fs ~ino ~size:(12 * block));
  let fresh = must (Fs.create_file fs "/dir/torn") in
  must (Fs.resize fs ~ino:fresh ~size:(3 * block));
  Fs.crash fs;
  agree "after rollback" fs cp;
  Alcotest.(check int) "unsynced growth rolled back" (6 * block)
    (must (Fs.stat_path fs "/dir/f5")).Fs.st_size

let suite =
  [
    QCheck_alcotest.to_alcotest prop_differential;
    Alcotest.test_case "rename+unlink in one window" `Quick test_rename_unlink_same_window;
    Alcotest.test_case "stale token falls back" `Quick test_stale_token_falls_back;
    Alcotest.test_case "epoch wraparound" `Quick test_epoch_wraparound;
    Alcotest.test_case "crash rollback differential" `Quick
      test_crash_rollback_differential;
  ]
