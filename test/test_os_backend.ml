(* The OS functor seam: Simos-via-functor must be indistinguishable from
   calling the simulated kernel directly, and the typed error taxonomy
   must be total and consistent across backends. *)

open Simos
open Graybox_core

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* ---- differential harness: flat API vs explicit Make (Os_sim) -------- *)

(* The surface both interpreters drive.  [Flat] is the historical direct
   API (itself [include Make (Os_sim)] today — this harness pins that
   equivalence so a future hand-written fast path cannot silently
   diverge); [Functorized] re-applies the functor explicitly. *)
module type API = sig
  val make_files :
    Kernel.env ->
    dir:string ->
    prefix:string ->
    count:int ->
    size:int ->
    string list

  val read_file : Kernel.env -> string -> unit

  val age_directory :
    Kernel.env ->
    Gray_util.Rng.t ->
    dir:string ->
    deletes:int ->
    creates:int ->
    size:int ->
    unit

  val paths_in : Kernel.env -> dir:string -> string list

  val order_files :
    Kernel.env ->
    Fccd.config ->
    paths:string list ->
    (Fccd.file_rank list, Kernel.error) result
end

module Flat : API = struct
  include Gray_apps.Workload

  let order_files = Fccd.order_files
end

module Functorized : API = struct
  include Gray_apps.Workload.Make (Os_sim)
  module F = Fccd.Make (Os_sim)

  let order_files = F.order_files
end

type op = Create of int * int | Read_nth of int | Age of int | Order

let op_to_string = function
  | Create (c, s) -> Printf.sprintf "create(%d,%d)" c s
  | Read_nth i -> Printf.sprintf "read(%d)" i
  | Age n -> Printf.sprintf "age(%d)" n
  | Order -> "order"

(* Run the op list through one API on a freshly-booted kernel; the
   observation is everything an application could see: final virtual
   time, the kernel's syscall/paging counters, and each ranking the
   FCCD produced along the way. *)
let interp (module A : API) ~seed ops =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:1 ~seed () in
  let observed = ref [] in
  let final_time = ref 0 in
  Kernel.spawn k (fun env ->
      ignore (A.make_files env ~dir:"/d0/w" ~prefix:"f" ~count:5 ~size:8192);
      let rng = Gray_util.Rng.create ~seed:(seed + 1) in
      let gen = ref 0 in
      List.iter
        (fun op ->
          let paths = A.paths_in env ~dir:"/d0/w" in
          let n = List.length paths in
          match op with
          | Create (count, size) ->
            incr gen;
            ignore
              (A.make_files env ~dir:"/d0/w"
                 ~prefix:(Printf.sprintf "g%d_" !gen)
                 ~count ~size)
          | Read_nth i -> if n > 0 then A.read_file env (List.nth paths (i mod n))
          | Age d ->
            let deletes = min d (max 0 (n - 1)) in
            A.age_directory env rng ~dir:"/d0/w" ~deletes ~creates:d ~size:8192
          | Order -> (
            let config = Fccd.default_config ~seed:11 () in
            match A.order_files env config ~paths with
            | Ok ranked ->
              observed :=
                String.concat ","
                  (List.map (fun r -> r.Fccd.fr_path) ranked)
                :: !observed
            | Error e -> observed := Kernel.error_to_string e :: !observed))
        ops;
      final_time := Kernel.gettime env);
  Kernel.run k;
  (!final_time, Kernel.counters k, List.rev !observed)

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun c s -> Create (c, s * 4096)) (int_range 1 4) (int_range 1 4);
        map (fun i -> Read_nth i) (int_range 0 19);
        map (fun d -> Age d) (int_range 1 4);
        return Order;
      ])

let prop_sim_via_functor_identical =
  QCheck2.Test.make ~name:"os: Make(Os_sim) == direct sim, any workload"
    ~count:60
    ~print:(fun (seed, ops) ->
      Printf.sprintf "seed=%d ops=[%s]" seed
        (String.concat "; " (List.map op_to_string ops)))
    QCheck2.Gen.(pair (int_range 1 1000) (list_size (int_range 0 12) gen_op))
    (fun (seed, ops) ->
      interp (module Flat) ~seed ops = interp (module Functorized) ~seed ops)

(* The adapter really is the kernel: its bindings are aliases, not
   wrappers, so even the closures are physically equal. *)
let test_adapter_is_alias () =
  Alcotest.(check bool) "read is Kernel.read" true (Os_sim.read == Kernel.read);
  Alcotest.(check bool) "write is Kernel.write" true
    (Os_sim.write == Kernel.write);
  Alcotest.(check bool) "stat is Kernel.stat" true (Os_sim.stat == Kernel.stat)

(* ---- error taxonomy --------------------------------------------------- *)

let all_errors =
  [
    Kernel.Fs_error Fs.Enoent;
    Kernel.Fs_error Fs.Eexist;
    Kernel.Fs_error Fs.Enotdir;
    Kernel.Fs_error Fs.Eisdir;
    Kernel.Fs_error Fs.Enotempty;
    Kernel.Fs_error Fs.Enospc;
    Kernel.Bad_fd;
    Kernel.Bad_path;
    Kernel.Retryable;
    Kernel.Timeout;
    Kernel.Unsupported "vmstat";
    Kernel.Sys_error "EACCES";
  ]

let test_error_to_string_total_and_distinct () =
  let strings = List.map Kernel.error_to_string all_errors in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 0))
    strings;
  Alcotest.(check int) "all distinct"
    (List.length strings)
    (List.length (List.sort_uniq compare strings))

let test_errno_round_trip () =
  let expect = Alcotest.testable Fmt.(of_to_string Kernel.error_to_string) ( = ) in
  let cases =
    [
      (Unix.ENOENT, Kernel.Fs_error Fs.Enoent);
      (Unix.EEXIST, Kernel.Fs_error Fs.Eexist);
      (Unix.ENOTDIR, Kernel.Fs_error Fs.Enotdir);
      (Unix.EISDIR, Kernel.Fs_error Fs.Eisdir);
      (Unix.ENOTEMPTY, Kernel.Fs_error Fs.Enotempty);
      (Unix.ENOSPC, Kernel.Fs_error Fs.Enospc);
      (Unix.EBADF, Kernel.Bad_fd);
      (Unix.EINTR, Kernel.Retryable);
      (Unix.EAGAIN, Kernel.Retryable);
      (Unix.EWOULDBLOCK, Kernel.Retryable);
      (Unix.EACCES, Kernel.Sys_error "EACCES");
      (Unix.EMFILE, Kernel.Sys_error "EMFILE");
      (Unix.EUNKNOWNERR 999, Kernel.Sys_error "errno:999");
    ]
  in
  List.iter
    (fun (errno, want) ->
      Alcotest.check expect
        (Kernel.error_to_string want)
        want (Os_host.errno_error errno))
    cases

(* Transience is decided by the taxonomy alone, identically for both
   backends: exactly the errors a retry loop can cure are [`Transient]. *)
let test_classify_consistent () =
  List.iter
    (fun e ->
      let want =
        match e with
        | Kernel.Retryable | Kernel.Timeout -> `Transient
        | _ -> `Permanent
      in
      Alcotest.(check bool)
        (Kernel.error_to_string e)
        true
        (Resilient.classify e = want))
    all_errors;
  (* the host's transient errnos classify transient after mapping *)
  List.iter
    (fun errno ->
      Alcotest.(check bool) "EINTR-family transient" true
        (Resilient.classify (Os_host.errno_error errno) = `Transient))
    [ Unix.EINTR; Unix.EAGAIN; Unix.EWOULDBLOCK ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sim_via_functor_identical;
    Alcotest.test_case "Os_sim bindings are aliases" `Quick
      test_adapter_is_alias;
    Alcotest.test_case "error_to_string total + distinct" `Quick
      test_error_to_string_total_and_distinct;
    Alcotest.test_case "errno -> taxonomy round trip" `Quick
      test_errno_round_trip;
    Alcotest.test_case "classify consistent across backends" `Quick
      test_classify_consistent;
  ]
