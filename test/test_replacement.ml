(* Replacement policies: reference behaviours and shared invariants. *)

open Simos

let fkey i = Page.File { ino = 1; idx = i }

let insert_range (module P : Replacement.POLICY) lo hi =
  for i = lo to hi do
    P.insert (fkey i) ~dirty:false
  done

(* v2 policies stream the victim through a callback; tests want the key. *)
let victim (module P : Replacement.POLICY) =
  let r = ref None in
  ignore (P.evict (fun k ~dirty:_ -> r := Some k));
  !r

let touch (module P : Replacement.POLICY) key = ignore (P.access key ~dirty:false)

let test_lru_order () =
  let (module P) = Replacement.lru ~capacity:10 in
  insert_range (module P) 0 3;
  (* order now (MRU..LRU): 3 2 1 0; touch 0 -> 0 3 2 1 *)
  touch (module P) (fkey 0);
  Alcotest.(check (option string)) "victim 1" (Some "file(ino=1,page=1)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "victim 2" (Some "file(ino=1,page=2)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "victim 3" (Some "file(ino=1,page=3)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "victim 0" (Some "file(ino=1,page=0)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "empty" None
    (Option.map Page.to_string (victim (module P)))

let test_mru_sticky_keeps_oldest () =
  let (module P) = Replacement.mru_sticky ~capacity:10 in
  insert_range (module P) 0 4;
  (* victim should be the newest page, so the first-loaded data persists *)
  Alcotest.(check (option string)) "evicts newest" (Some "file(ino=1,page=4)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "then next newest" (Some "file(ino=1,page=3)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check bool) "oldest still resident" true (P.mem (fkey 0))

let test_fifo_ignores_touch () =
  let (module P) = Replacement.fifo ~capacity:10 in
  insert_range (module P) 0 2;
  touch (module P) (fkey 0);
  touch (module P) (fkey 0);
  Alcotest.(check (option string)) "victim is oldest" (Some "file(ino=1,page=0)")
    (Option.map Page.to_string (victim (module P)))

let test_clock_second_chance () =
  let (module P) = Replacement.clock ~capacity:10 in
  insert_range (module P) 0 2;
  (* pages arrive referenced (fault = reference); the first sweep clears
     every bit and falls back to FIFO: the oldest page goes *)
  Alcotest.(check (option string)) "first sweep takes oldest" (Some "file(ino=1,page=0)")
    (Option.map Page.to_string (victim (module P)));
  (* re-reference 1: it gets a second chance over the older 2 *)
  touch (module P) (fkey 1);
  Alcotest.(check (option string)) "skips referenced" (Some "file(ino=1,page=2)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check (option string)) "finally 1" (Some "file(ino=1,page=1)")
    (Option.map Page.to_string (victim (module P)))

let test_two_q_promotion () =
  let (module P) = Replacement.two_q ~capacity:8 in
  insert_range (module P) 0 7;
  (* probation quota is capacity/4 = 2 and holds 8 pages *)
  touch (module P) (fkey 7);
  (* 7 promoted to main; evictions drain the over-quota probation queue *)
  for i = 0 to 4 do
    Alcotest.(check (option string))
      (Printf.sprintf "victim %d" i)
      (Some (Page.to_string (fkey i)))
      (Option.map Page.to_string (victim (module P)))
  done;
  Alcotest.(check bool) "7 still resident" true (P.mem (fkey 7))

let test_segmented_promotion () =
  let (module P) = Replacement.segmented_lru ~capacity:8 in
  insert_range (module P) 0 3;
  touch (module P) (fkey 1);
  (* 1 is protected; probation victims go first *)
  Alcotest.(check (option string)) "probation tail" (Some "file(ino=1,page=0)")
    (Option.map Page.to_string (victim (module P)));
  Alcotest.(check bool) "protected survives" true (P.mem (fkey 1))

let test_remove () =
  List.iter
    (fun factory ->
      let (module P : Replacement.POLICY) = factory ~capacity:8 in
      insert_range (module P) 0 3;
      Alcotest.(check bool) (P.name ^ " remove reports presence") true
        (P.remove (fkey 2));
      Alcotest.(check bool) (P.name ^ " removed") false (P.mem (fkey 2));
      Alcotest.(check int) (P.name ^ " size") 3 (P.size ());
      Alcotest.(check bool) (P.name ^ " double remove is a no-op") false
        (P.remove (fkey 2)))
    [
      Replacement.lru;
      Replacement.clock;
      Replacement.fifo;
      Replacement.mru_sticky;
      Replacement.two_q;
      Replacement.segmented_lru;
      Replacement.eelru;
    ]

let test_dirty_tracking () =
  (* the dirty bit rides with the page: set on access or insert, reported
     at eviction, cleared only by removal *)
  List.iter
    (fun factory ->
      let (module P : Replacement.POLICY) = factory ~capacity:8 in
      P.insert (fkey 0) ~dirty:false;
      P.insert (fkey 1) ~dirty:true;
      Alcotest.(check bool) (P.name ^ " clean") false (P.is_dirty (fkey 0));
      Alcotest.(check bool) (P.name ^ " dirty") true (P.is_dirty (fkey 1));
      ignore (P.access (fkey 0) ~dirty:true);
      Alcotest.(check bool) (P.name ^ " dirtied by access") true (P.is_dirty (fkey 0));
      (* dirty bit is sticky: a later clean access does not clear it *)
      ignore (P.access (fkey 0) ~dirty:false);
      Alcotest.(check bool) (P.name ^ " sticky") true (P.is_dirty (fkey 0));
      let dirty_evicted = ref 0 in
      while P.evict (fun _ ~dirty -> if dirty then incr dirty_evicted) do
        ()
      done;
      Alcotest.(check int) (P.name ^ " dirty victims") 2 !dirty_evicted)
    [
      Replacement.lru;
      Replacement.clock;
      Replacement.fifo;
      Replacement.mru_sticky;
      Replacement.two_q;
      Replacement.segmented_lru;
      Replacement.eelru;
    ]

(* Drive a policy like a capacity-bound pool would. *)
let access_with (module P : Replacement.POLICY) ~capacity key =
  if P.access key ~dirty:false then true
  else begin
    if P.size () >= capacity then ignore (P.evict (fun _ ~dirty:_ -> ()));
    P.insert key ~dirty:false;
    false
  end

let loop_hit_rate factory ~capacity ~loop ~rounds =
  let (module P : Replacement.POLICY) = factory ~capacity in
  let hits = ref 0 and total = ref 0 in
  for round = 1 to rounds do
    for i = 0 to loop - 1 do
      let hit = access_with (module P) ~capacity (fkey i) in
      (* count only after the warm-up round *)
      if round > 1 then begin
        incr total;
        if hit then incr hits
      end
    done
  done;
  float_of_int !hits /. float_of_int (max 1 !total)

let test_eelru_survives_looping () =
  (* a loop 1.5x memory: pure LRU hits nothing (the paper's "LRU
     worst-case mode"); EELRU's early eviction keeps part of the loop
     resident *)
  let lru_rate = loop_hit_rate Replacement.lru ~capacity:100 ~loop:150 ~rounds:6 in
  let eelru_rate = loop_hit_rate Replacement.eelru ~capacity:100 ~loop:150 ~rounds:6 in
  Alcotest.(check (float 0.001)) "lru thrashes" 0.0 lru_rate;
  Alcotest.(check bool)
    (Printf.sprintf "eelru adapts (%.2f)" eelru_rate)
    true (eelru_rate > 0.25)

let test_eelru_plain_lru_when_fitting () =
  (* without ghost re-references it behaves like LRU: everything fits *)
  let rate = loop_hit_rate Replacement.eelru ~capacity:100 ~loop:80 ~rounds:4 in
  Alcotest.(check (float 0.001)) "all hits" 1.0 rate

let test_of_name () =
  List.iter
    (fun n ->
      let (module P) = (Replacement.of_name n) ~capacity:4 in
      Alcotest.(check string) "name matches" n P.name)
    Replacement.all_names;
  Alcotest.(check bool) "unknown raises" true
    (try
       let (_ : Replacement.factory) = Replacement.of_name "nope" in
       false
     with Invalid_argument _ -> true)

(* Property: for every policy, insert/access/evict keeps the tracked set
   consistent — size equals distinct inserts minus victims/removes, victims
   are always resident before eviction, iter visits exactly the members. *)
let prop_policy_consistency factory policy_label =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s set consistency" policy_label)
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 2))
    (fun ops ->
      let (module P : Replacement.POLICY) = factory ~capacity:64 in
      let model = Hashtbl.create 64 in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            (* insert a fresh key *)
            let k = fkey !next in
            incr next;
            P.insert k ~dirty:false;
            Hashtbl.replace model k ();
            P.mem k
          | 1 -> (
            match victim (module P) with
            | None -> Hashtbl.length model = 0
            | Some k ->
              let was_member = Hashtbl.mem model k in
              Hashtbl.remove model k;
              was_member && not (P.mem k))
          | _ ->
            (* access a random existing key (or a missing one: a miss
               leaves the policy state untouched) *)
            let k = fkey (max 0 (!next - 1)) in
            let hit = P.access k ~dirty:false in
            hit = Hashtbl.mem model k && P.size () = Hashtbl.length model)
        ops
      && P.size () = Hashtbl.length model
      &&
      let seen = ref 0 in
      P.iter (fun k ->
          if Hashtbl.mem model k then incr seen);
      !seen = Hashtbl.length model)

let suite =
  [
    Alcotest.test_case "lru order" `Quick test_lru_order;
    Alcotest.test_case "mru-sticky keeps oldest" `Quick test_mru_sticky_keeps_oldest;
    Alcotest.test_case "fifo ignores touch" `Quick test_fifo_ignores_touch;
    Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
    Alcotest.test_case "two-q promotion" `Quick test_two_q_promotion;
    Alcotest.test_case "segmented promotion" `Quick test_segmented_promotion;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
    Alcotest.test_case "of_name" `Quick test_of_name;
    QCheck_alcotest.to_alcotest (prop_policy_consistency Replacement.lru "lru");
    QCheck_alcotest.to_alcotest (prop_policy_consistency Replacement.clock "clock");
    QCheck_alcotest.to_alcotest (prop_policy_consistency Replacement.fifo "fifo");
    QCheck_alcotest.to_alcotest
      (prop_policy_consistency Replacement.mru_sticky "mru-sticky");
    QCheck_alcotest.to_alcotest (prop_policy_consistency Replacement.two_q "two-q");
    QCheck_alcotest.to_alcotest
      (prop_policy_consistency Replacement.segmented_lru "segmented-lru");
    Alcotest.test_case "eelru survives looping" `Quick test_eelru_survives_looping;
    Alcotest.test_case "eelru = lru when fitting" `Quick test_eelru_plain_lru_when_fitting;
    QCheck_alcotest.to_alcotest (prop_policy_consistency Replacement.eelru "eelru");
  ]
