(* Crash–restart plane: durability semantics (durable vs volatile state,
   fsync/sync), deterministic crash-at-syscall-N injection, restart
   reclamation, the torn-journal hardening of Fldc.repair, idempotent
   retries under crash–restart, namespace fault targets, and the
   exhaustive crash-point explorer (including the mutation check that
   proves the explorer can catch a broken repair). *)

open Simos
open Graybox_core

let kib8 = 8192

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let boot ?faults ?crash ?(seed = 11) () =
  let engine = Engine.create () in
  (engine, Kernel.boot ~engine ~platform:tiny_linux ~data_disks:1 ?faults ?crash ~seed ())

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Kernel.error_to_string e)

(* ---- scenario parsing -------------------------------------------------- *)

let test_of_string_validation () =
  Alcotest.(check bool) "empty is off" true (Crash.of_string "" = None);
  Alcotest.(check bool) "none is off" true (Crash.of_string "none" = None);
  (match Crash.of_string "durable" with
  | Some sc ->
    Alcotest.(check bool) "durable never crashes" true
      (sc.Crash.cs_crash_at = None && sc.Crash.cs_prob = 0.0)
  | None -> Alcotest.fail "durable not parsed");
  (match Crash.of_string "at:3" with
  | Some sc -> Alcotest.(check bool) "at:3" true (sc.Crash.cs_crash_at = Some 3)
  | None -> Alcotest.fail "at:3 not parsed");
  (match Crash.of_string "0.25" with
  | Some sc -> Alcotest.(check (float 1e-9)) "prob" 0.25 sc.Crash.cs_prob
  | None -> Alcotest.fail "0.25 not parsed");
  List.iter
    (fun bad ->
      match Crash.of_string bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "bad value %S accepted" bad)
    [ "at:0"; "at:x"; "bogus"; "1.5"; "-0.1"; "0" ]

(* ---- durable vs volatile state ----------------------------------------- *)

(* Without fsync the written size is volatile: a crash rolls the file
   back to the durable image (size 0 for a never-synced file); the
   namespace entry itself is durable at the create. *)
let test_unsynced_write_rolls_back () =
  let _e, k = boot ~crash:Crash.durable () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:kib8));
      Kernel.close env fd);
  Kernel.run k;
  Kernel.restart k;
  let st = Result.get_ok (Fs.stat_path (Kernel.volume_fs k 0) "/f") in
  Alcotest.(check int) "file survives at durable size 0" 0 st.Fs.st_size

let test_fsynced_write_survives () =
  let _e, k = boot ~crash:Crash.durable () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:kib8));
      ok (Kernel.fsync env fd);
      (* a later unsynced extension stays volatile *)
      ignore (ok (Kernel.write env fd ~off:kib8 ~len:kib8));
      Kernel.close env fd);
  Kernel.run k;
  Kernel.restart k;
  let st = Result.get_ok (Fs.stat_path (Kernel.volume_fs k 0) "/f") in
  Alcotest.(check int) "size rolls to the fsynced point" kib8 st.Fs.st_size

let test_blob_durability () =
  let _e, k = boot ~crash:Crash.durable () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      ok (Kernel.write_blob env fd "hello");
      ok (Kernel.fsync env fd);
      ok (Kernel.write_blob env fd "world, torn");
      Alcotest.(check string) "volatile read sees the latest blob" "world, torn"
        (ok (Kernel.read_blob env fd));
      Kernel.close env fd);
  Kernel.run k;
  Kernel.restart k;
  let fs = Kernel.volume_fs k 0 in
  let st = Result.get_ok (Fs.stat_path fs "/f") in
  Alcotest.(check string) "crash rolls the blob to the fsynced image" "hello"
    (Fs.blob fs ~ino:st.Fs.st_ino)

let test_sync_makes_everything_durable () =
  let _e, k = boot ~crash:Crash.durable () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:(2 * kib8)));
      Kernel.close env fd;
      ok (Kernel.utimes env "/d0/f" ~atime:7 ~mtime:9);
      Kernel.sync env);
  Kernel.run k;
  Kernel.restart k;
  let st = Result.get_ok (Fs.stat_path (Kernel.volume_fs k 0) "/f") in
  Alcotest.(check int) "size durable" (2 * kib8) st.Fs.st_size;
  Alcotest.(check int) "mtime durable" 9 st.Fs.st_mtime;
  Alcotest.(check int) "atime durable" 7 st.Fs.st_atime

(* ---- the off switch is free -------------------------------------------- *)

(* With no plane installed, fsync and sync are complete no-ops: no
   virtual time passes.  With the plane on, fsyncing dirty pages pays
   real disk writebacks. *)
let test_fsync_free_when_off_charges_when_on () =
  let saved = Sys.getenv_opt "GRAYBOX_CRASH" in
  Unix.putenv "GRAYBOX_CRASH" "none";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GRAYBOX_CRASH" (Option.value saved ~default:""))
    (fun () ->
      let elapsed ?crash () =
        let engine, k = boot ?crash () in
        let dt = ref 0 in
        Kernel.spawn k (fun env ->
            let fd = ok (Kernel.create_file env "/d0/f") in
            ignore (ok (Kernel.write env fd ~off:0 ~len:(4 * kib8)));
            let t0 = Engine.now engine in
            ok (Kernel.fsync env fd);
            Kernel.sync env;
            dt := Engine.now engine - t0;
            Kernel.close env fd);
        Kernel.run k;
        !dt
      in
      Alcotest.(check int) "plane off: fsync+sync cost nothing" 0 (elapsed ());
      Alcotest.(check bool) "plane on: fsync pays for the writeback" true
        (elapsed ~crash:Crash.durable () > 0))

(* An installed-but-never-fired durable plane must not perturb a workload
   that never syncs: same virtual end time, same probe results. *)
let test_inert_plane_byte_identical () =
  let saved = Sys.getenv_opt "GRAYBOX_CRASH" in
  Unix.putenv "GRAYBOX_CRASH" "none";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GRAYBOX_CRASH" (Option.value saved ~default:""))
    (fun () ->
      let fingerprint ?crash () =
        let engine, k = boot ?crash () in
        let out = ref None in
        Kernel.spawn k (fun env ->
            let paths =
              Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:4
                ~size:(64 * kib8)
            in
            Kernel.flush_file_cache k;
            Gray_apps.Workload.read_file env (List.hd paths);
            let config = Fccd.default_config ~seed:5 () in
            let ranked = ok (Fccd.order_files env config ~paths) in
            out := Some (List.map (fun r -> (r.Fccd.fr_path, r.Fccd.fr_probe_ns)) ranked));
        Kernel.run k;
        (Engine.now engine, !out)
      in
      Alcotest.(check bool) "fingerprints equal" true
        (fingerprint () = fingerprint ~crash:Crash.durable ()))

(* ---- crash injection and restart --------------------------------------- *)

let test_crash_at_kills_machine_and_restart_recovers () =
  let _e, k = boot ~crash:Crash.durable () in
  let c = Option.get (Kernel.crash_plane k) in
  Crash.arm_at c 5;
  let reached_end = ref false in
  Kernel.spawn k (fun env ->
      for i = 0 to 9 do
        let fd = ok (Kernel.create_file env (Printf.sprintf "/d0/f%d" i)) in
        Kernel.close env fd
      done;
      reached_end := true);
  (match Kernel.run k with
  | () -> Alcotest.fail "machine did not crash"
  | exception Engine.Fiber_crash (_, Crash.Crashed) -> ());
  Alcotest.(check bool) "workload was cut short" false !reached_end;
  Alcotest.(check int) "no live processes after the crash" 0 (Kernel.live_procs k);
  Alcotest.(check int) "one crash counted" 1 (Crash.stats c).Crash.c_crashes;
  Kernel.restart k;
  Alcotest.(check int) "one restart counted" 1 (Crash.stats c).Crash.c_restarts;
  (* boundary 5 = syscall 5 never starts: creates 1..2 completed (two
     syscalls each: create + close) *)
  let fs = Kernel.volume_fs k 0 in
  Alcotest.(check bool) "f0 durable" true (Result.is_ok (Fs.stat_path fs "/f0"));
  Alcotest.(check bool) "f1 durable" true (Result.is_ok (Fs.stat_path fs "/f1"));
  Alcotest.(check bool) "f2 never created" true (Result.is_error (Fs.stat_path fs "/f2"));
  (* the restarted machine is fully usable *)
  let done_ = ref false in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/after") in
      ok (Kernel.fsync env fd);
      Kernel.close env fd;
      done_ := true);
  Kernel.run k;
  Alcotest.(check bool) "post-restart workload completes" true !done_;
  Alcotest.(check (list string)) "fsck clean after crash + restart" [] (Fs.check fs)

(* ---- namespace fault targets (satellite: swallowed-error audit) -------- *)

let test_namespace_fault_targets () =
  let scenario target =
    { Fault.quiet with Fault.sc_name = "ns"; sc_seed = 7; sc_error_prob = 1.0;
      sc_error_targets = [ target ] }
  in
  let expect_retryable what = function
    | Error Kernel.Retryable -> ()
    | Ok _ -> Alcotest.failf "%s: fault not injected" what
    | Error e -> Alcotest.failf "%s: wrong error %s" what (Kernel.error_to_string e)
  in
  (* each op gets its own kernel whose scenario targets only that op, so
     the setup syscalls sail through *)
  let run_with target f =
    let _e, k = boot ~faults:(scenario target) () in
    Kernel.spawn k (fun env -> f env);
    Kernel.run k
  in
  run_with Fault.Create (fun env ->
      expect_retryable "create" (Kernel.create_file env "/d0/f"));
  run_with Fault.Mkdir (fun env -> expect_retryable "mkdir" (Kernel.mkdir env "/d0/dir"));
  run_with Fault.Unlink (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      Kernel.close env fd;
      expect_retryable "unlink" (Kernel.unlink env "/d0/f"));
  run_with Fault.Rename (fun env ->
      let fd = ok (Kernel.create_file env "/d0/f") in
      Kernel.close env fd;
      expect_retryable "rename" (Kernel.rename env ~src:"/d0/f" ~dst:"/d0/g"))

(* the canonical scenario must not have gained namespace targets — that
   would shift every seeded fault run in the suite *)
let test_canonical_targets_unchanged () =
  Alcotest.(check bool) "canonical targets probes only" true
    (Fault.canonical.Fault.sc_error_targets = [ Fault.Open; Fault.Read; Fault.Write; Fault.Stat ])

(* ---- pool writeback-in-place ------------------------------------------- *)

let test_pool_clean_drops_dirty_bit_in_place () =
  let pool = Pool.create ~name:"t" ~capacity_pages:4 ~policy:Replacement.lru in
  let key = Page.File { ino = 9; idx = 0 } in
  ignore (Pool.access pool key ~dirty:true);
  Alcotest.(check bool) "dirty after write" true (Pool.is_dirty pool key);
  Pool.clean pool key;
  Alcotest.(check bool) "clean after writeback" false (Pool.is_dirty pool key);
  Alcotest.(check bool) "still resident" true (Pool.contains pool key);
  (* unknown keys are ignored *)
  Pool.clean pool (Page.File { ino = 9; idx = 99 })

(* ---- journal records and torn tails ------------------------------------ *)

let jfiles = [ ("a", 100, 7); ("bb", 200, 8); ("c c", 300, 9) ]

let test_journal_committed_parses () =
  let full = Fldc.journal_content ~base:"dir" ~files:jfiles ~commit:true in
  Alcotest.(check bool) "full journal is committed" true
    (Fldc.journal_committed full ~base:"dir");
  Alcotest.(check bool) "intent-only journal is not" false
    (Fldc.journal_committed
       (Fldc.journal_content ~base:"dir" ~files:jfiles ~commit:false)
       ~base:"dir");
  Alcotest.(check bool) "wrong base is not" false
    (Fldc.journal_committed full ~base:"other");
  Alcotest.(check bool) "trailing garbage is not" false
    (Fldc.journal_committed (full ^ "x") ~base:"dir");
  (* every strict prefix — a write torn at any byte — must read as
     uncommitted, never raise *)
  for cut = 0 to String.length full - 1 do
    if Fldc.journal_committed (String.sub full 0 cut) ~base:"dir" then
      Alcotest.failf "torn prefix of %d bytes read as committed" cut
  done

(* A refresh torn at any byte of its journal must roll back: repair never
   raises, removes the temporary directory and the journal, and leaves
   the original directory untouched.  Exercises every truncation point of
   a real committed journal image against a real interrupted-refresh
   directory state. *)
let test_torn_journal_repair_rolls_back () =
  let full = Fldc.journal_content ~base:"dir" ~files:[ ("f0", kib8, 5) ] ~commit:true in
  for cut = 0 to String.length full - 1 do
    let torn = String.sub full 0 cut in
    let _e, k = boot ~crash:Crash.durable () in
    Kernel.spawn k (fun env ->
        ok (Kernel.mkdir env "/d0/dir");
        let fd = ok (Kernel.create_file env "/d0/dir/f0") in
        ignore (ok (Kernel.write env fd ~off:0 ~len:kib8));
        Kernel.close env fd;
        (* a mid-copy temporary directory *)
        ok (Kernel.mkdir env (Fldc.tmp_dir_path ~parent:"/d0" ~base:"dir"));
        let jd =
          ok (Kernel.create_file env (Fldc.journal_path ~parent:"/d0" ~base:"dir"))
        in
        ok (Kernel.write_blob env jd torn);
        ok (Kernel.fsync env jd);
        Kernel.close env jd;
        Kernel.sync env);
    Kernel.run k;
    let repaired = ref false in
    Kernel.spawn k (fun env ->
        match Fldc.repair env ~parent:"/d0" with
        | Ok r -> repaired := r
        | Error e ->
          Alcotest.failf "cut=%d: repair error %s" cut (Kernel.error_to_string e));
    (try Kernel.run k
     with e -> Alcotest.failf "cut=%d: repair raised %s" cut (Printexc.to_string e));
    Alcotest.(check bool) "a repair was performed" true !repaired;
    let fs = Kernel.volume_fs k 0 in
    (match Fs.readdir fs "/" with
    | Ok names ->
      Alcotest.(check (list string))
        (Printf.sprintf "cut=%d: parent holds only the data directory" cut)
        [ "dir" ] (List.sort compare names)
    | Error e -> Alcotest.failf "cut=%d: %s" cut (Fs.error_to_string e));
    let st = Result.get_ok (Fs.stat_path fs "/dir/f0") in
    Alcotest.(check int) "original file intact" kib8 st.Fs.st_size;
    Alcotest.(check (list string)) "fsck clean" [] (Fs.check fs)
  done

(* ---- idempotent retries under crash–restart ----------------------------- *)

(* A create made durable just before a crash fails its re-issue with
   Eexist; retry_idempotent treats that as completion — but only on a
   re-issue.  The property interleaves k transient failures (retries)
   with the final outcome. *)
let prop_retry_idempotent =
  QCheck2.Test.make ~name:"retry_idempotent under crash-restart interleavings" ~count:60
    QCheck2.Gen.(pair (int_range 0 3) bool)
    (fun (transients, completes) ->
      let result = ref (Error Kernel.Retryable) in
      let _e, k = boot () in
      Kernel.spawn k (fun _env ->
          let calls = ref 0 in
          let f () =
            incr calls;
            if !calls <= transients then Error Kernel.Retryable
            else Error (Kernel.Fs_error Fs.Eexist)
          in
          let completed = function
            | Kernel.Fs_error Fs.Eexist when completes -> Some "already-done"
            | _ -> None
          in
          let policy = Resilient.policy ~seed:1 ~max_attempts:8 () in
          result := Resilient.retry_idempotent ~policy ~completed f);
      Kernel.run k;
      match !result with
      | Ok v -> transients >= 1 && completes && v = "already-done"
      | Error (Kernel.Fs_error Fs.Eexist) -> transients = 0 || not completes
      | Error _ -> false)

(* ---- the exhaustive explorer ------------------------------------------- *)

let test_explorer_refresh_no_violations () =
  let r = Crash_explore.explore_refresh ~files:3 ~file_size:4096 () in
  Alcotest.(check bool) "window non-empty" true (r.Crash_explore.rp_workload_syscalls > 0);
  Alcotest.(check int) "every boundary visited" r.Crash_explore.rp_workload_syscalls
    r.Crash_explore.rp_boundaries;
  Alcotest.(check int) "all boundaries classified" r.Crash_explore.rp_boundaries
    (r.Crash_explore.rp_rolled_back + r.Crash_explore.rp_rolled_forward);
  Alcotest.(check bool) "some boundaries roll back" true (r.Crash_explore.rp_rolled_back > 0);
  Alcotest.(check bool) "some boundaries roll forward" true
    (r.Crash_explore.rp_rolled_forward > 0);
  (match r.Crash_explore.rp_violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "boundary %d violated: %s (%s)" v.Crash_explore.vi_boundary
      v.Crash_explore.vi_problem v.Crash_explore.vi_replay)

let test_explorer_catches_broken_repair () =
  let r = Crash_explore.explore_refresh ~files:3 ~file_size:4096 ~break_repair:true () in
  Alcotest.(check bool) "broken repair produces violations" true
    (r.Crash_explore.rp_violations <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation carries a replayable seed" true
        (v.Crash_explore.vi_replay <> "");
      Alcotest.(check bool) "violation embeds a flight-recorder tail" true
        (v.Crash_explore.vi_flight <> []))
    r.Crash_explore.rp_violations;
  (* the embedded tails are a pure function of (baseline, boundary), so
     sharding the same sweep over an 8-domain pool must reproduce the
     serial report — flight lines included — exactly *)
  let bl = Crash_explore.refresh_baseline ~files:3 ~file_size:4096 () in
  let ws = Crash_explore.windows ~boundaries:(Crash_explore.baseline_boundaries bl) in
  let pool = Gray_util.Domain_pool.create ~size:8 in
  let merged =
    Fun.protect
      ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
      (fun () ->
        Crash_explore.merge_reports
          (Gray_util.Domain_pool.map pool
             (fun (lo, hi) ->
               Crash_explore.explore_refresh_window ~break_repair:true bl ~lo ~hi)
             ws))
  in
  Alcotest.(check bool) "violations (and their flight tails) identical at -j8"
    true
    (r = merged)

let test_explorer_pipeline_no_violations () =
  let r = Crash_explore.explore_pipeline ~files:2 ~file_size:4096 () in
  Alcotest.(check bool) "window non-empty" true (r.Crash_explore.rp_workload_syscalls > 0);
  Alcotest.(check int) "every boundary visited" r.Crash_explore.rp_workload_syscalls
    r.Crash_explore.rp_boundaries;
  (match r.Crash_explore.rp_violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "boundary %d violated: %s" v.Crash_explore.vi_boundary
      v.Crash_explore.vi_problem)

let test_explorer_deterministic () =
  let a = Crash_explore.explore_refresh ~files:3 ~file_size:4096 () in
  let b = Crash_explore.explore_refresh ~files:3 ~file_size:4096 () in
  Alcotest.(check bool) "same report twice" true (a = b)

(* Window sharding is pure bookkeeping: exploring explicit windows and
   merging reproduces the serial report exactly, and the incremental
   fsck on the per-boundary path returns the same report as the
   full-scan oracle. *)
let test_explorer_windows_merge_and_fsck_oracle () =
  let bl = Crash_explore.refresh_baseline ~files:3 ~file_size:4096 () in
  let ws = Crash_explore.windows ~boundaries:(Crash_explore.baseline_boundaries bl) in
  let sweep ~full_fsck =
    Crash_explore.merge_reports
      (List.map
         (fun (lo, hi) -> Crash_explore.explore_refresh_window ~full_fsck bl ~lo ~hi)
         ws)
  in
  let serial = Crash_explore.explore_refresh ~files:3 ~file_size:4096 () in
  let merged = sweep ~full_fsck:false in
  Alcotest.(check bool) "windows merge to the serial report" true (serial = merged);
  Alcotest.(check bool) "incremental fsck == full-scan oracle" true
    (merged = sweep ~full_fsck:true)

(* The two proof obligations on the explorer's own optimisations, under
   the mutation they must not be allowed to hide: with the broken repair
   installed, the incremental fsck reports the same violations at the
   same boundaries as the full scan... *)
let test_explorer_mutation_fsck_oracle () =
  let with_fsck full_fsck =
    Crash_explore.explore_refresh ~files:3 ~file_size:4096 ~break_repair:true
      ~full_fsck ()
  in
  let incr = with_fsck false in
  Alcotest.(check bool) "mutation caught" true (incr.Crash_explore.rp_violations <> []);
  Alcotest.(check bool) "same violations under the full-scan oracle" true
    (incr = with_fsck true)

(* ...and the snapshot strategy (one uncrashed run per window + cloned
   boundary images + memoised verdicts) reports exactly what the armed
   per-boundary replay reports. *)
let test_explorer_pipeline_snapshot_equals_replay () =
  let sweep strategy =
    Crash_explore.explore_pipeline ~files:2 ~file_size:4096 ~strategy ()
  in
  Alcotest.(check bool) "snapshot == replay" true (sweep `Snapshot = sweep `Replay);
  let sweep_full strategy =
    Crash_explore.explore_pipeline ~files:2 ~file_size:4096 ~full_fsck:true ~strategy ()
  in
  Alcotest.(check bool) "snapshot == replay under the full-scan oracle" true
    (sweep_full `Snapshot = sweep_full `Replay)

let suite =
  [
    Alcotest.test_case "of_string validation" `Quick test_of_string_validation;
    Alcotest.test_case "unsynced write rolls back" `Quick test_unsynced_write_rolls_back;
    Alcotest.test_case "fsynced write survives" `Quick test_fsynced_write_survives;
    Alcotest.test_case "blob durability" `Quick test_blob_durability;
    Alcotest.test_case "sync makes state durable" `Quick test_sync_makes_everything_durable;
    Alcotest.test_case "fsync free when off" `Quick test_fsync_free_when_off_charges_when_on;
    Alcotest.test_case "inert plane byte-identical" `Quick test_inert_plane_byte_identical;
    Alcotest.test_case "crash-at kills, restart recovers" `Quick
      test_crash_at_kills_machine_and_restart_recovers;
    Alcotest.test_case "namespace fault targets" `Quick test_namespace_fault_targets;
    Alcotest.test_case "canonical targets unchanged" `Quick test_canonical_targets_unchanged;
    Alcotest.test_case "pool clean in place" `Quick test_pool_clean_drops_dirty_bit_in_place;
    Alcotest.test_case "journal commit parsing" `Quick test_journal_committed_parses;
    Alcotest.test_case "torn journal always rolls back" `Quick
      test_torn_journal_repair_rolls_back;
    QCheck_alcotest.to_alcotest prop_retry_idempotent;
    Alcotest.test_case "explorer: refresh has no violations" `Quick
      test_explorer_refresh_no_violations;
    Alcotest.test_case "explorer: catches broken repair" `Quick
      test_explorer_catches_broken_repair;
    Alcotest.test_case "explorer: pipeline has no violations" `Quick
      test_explorer_pipeline_no_violations;
    Alcotest.test_case "explorer: deterministic" `Quick test_explorer_deterministic;
    Alcotest.test_case "explorer: windows merge, fsck oracle agrees" `Quick
      test_explorer_windows_merge_and_fsck_oracle;
    Alcotest.test_case "explorer: mutation caught under both fscks" `Quick
      test_explorer_mutation_fsck_oracle;
    Alcotest.test_case "explorer: snapshot == replay" `Quick
      test_explorer_pipeline_snapshot_equals_replay;
  ]
