(* MAC: admission control against ground-truth available memory. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* smaller increments for the 64 MB machine *)
let small_mac =
  {
    (Mac.default_config ()) with
    Mac.initial_increment = 2 * mib;
    max_increment = 8 * mib;
  }

(* Exact-grant assertions need a clean instrument: [Fault.quiet] is
   bit-identical to no fault plane and shields these tests from
   GRAYBOX_FAULTS chaos injection (test_faults covers MAC under faults). *)
let boot () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:77 ~faults:Fault.quiet ()

let run_proc body =
  let k = boot () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let test_idle_machine_grants_max () =
  let _, granted =
    run_proc (fun env ->
        match Mac.gb_alloc env small_mac ~min:(8 * mib) ~max:(32 * mib) ~multiple:100 with
        | None -> Alcotest.fail "expected a grant"
        | Some a ->
          let b = Mac.bytes a in
          Mac.gb_free env a;
          b)
  in
  Alcotest.(check bool)
    (Printf.sprintf "granted %d MB" (granted / mib))
    true
    (granted >= 31 * mib && granted <= 32 * mib)

let test_grant_is_multiple () =
  let _, granted =
    run_proc (fun env ->
        match Mac.gb_alloc env small_mac ~min:mib ~max:(7 * mib) ~multiple:100 with
        | None -> Alcotest.fail "expected a grant"
        | Some a ->
          let b = Mac.bytes a in
          Mac.gb_free env a;
          b)
  in
  Alcotest.(check int) "multiple of 100" 0 (granted mod 100)

let test_invalid_args () =
  let _, () =
    run_proc (fun env ->
        Alcotest.(check bool) "min > max" true
          (try
             ignore (Mac.gb_alloc env small_mac ~min:10 ~max:5 ~multiple:1);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "no multiple in range" true
          (try
             ignore (Mac.gb_alloc env small_mac ~min:3 ~max:5 ~multiple:100);
             false
           with Invalid_argument _ -> true))
  in
  ()

(* A competitor that holds [bytes] of hot memory, touching it continuously
   until [stop] becomes true. *)
let competitor k ~bytes ~stop ~held =
  Kernel.spawn k ~name:"competitor" (fun env ->
      let pages = bytes / 4096 in
      let r = Kernel.valloc env ~pages in
      ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
      held := true;
      while not !stop do
        (* re-reference the working set in slices, staying hot *)
        let slice = 1024 in
        let off = ref 0 in
        while !off < pages do
          ignore (Kernel.touch_pages env r ~first:!off ~count:(min slice (pages - !off)));
          off := !off + slice;
          Engine.delay 200_000
        done
      done;
      Kernel.vfree env r)

let test_respects_competitor () =
  (* 64 MB usable; competitor holds 40 hot MB; MAC should get ~24 MB and
     leave the competitor unpaged. *)
  let k = boot () in
  let stop = ref false in
  let held = ref false in
  let granted = ref 0 in
  competitor k ~bytes:(40 * mib) ~stop ~held;
  Kernel.spawn k ~name:"mac" (fun env ->
      while not !held do
        Engine.delay 1_000_000
      done;
      (match Mac.gb_alloc env small_mac ~min:(4 * mib) ~max:(64 * mib) ~multiple:100 with
      | None -> ()
      | Some a ->
        granted := Mac.bytes a;
        (* use it for a while without paging *)
        for _ = 1 to 3 do
          Mac.touch_all env a;
          Engine.delay 1_000_000
        done;
        Mac.gb_free env a);
      stop := true);
  Kernel.run k;
  (* ~21 MB is truly available (61.4 MB anon capacity - 40 MB competitor).
     MAC lands below that: the headroom discount plus the lingering damage
     of its one failed over-reach (competitor pages swapped out and paged
     back, evicting MAC pages) keep it conservative — the same
     under-granting the paper reports (154 MB grants vs ~207 MB fair
     share in Figure 7). *)
  let free_truth = (64 - 40) * mib * 85 / 100 in
  Alcotest.(check bool)
    (Printf.sprintf "granted %.1f MB, conservative w.r.t. ~%.1f MB available"
       (float_of_int !granted /. float_of_int mib)
       (float_of_int free_truth /. float_of_int mib))
    true
    (!granted > 9 * mib && !granted <= 26 * mib)

let test_returns_none_when_min_unavailable () =
  let k = boot () in
  let stop = ref false in
  let held = ref false in
  let got = ref (Some 0) in
  competitor k ~bytes:(52 * mib) ~stop ~held;
  Kernel.spawn k ~name:"mac" (fun env ->
      while not !held do
        Engine.delay 1_000_000
      done;
      (match Mac.gb_alloc env small_mac ~min:(32 * mib) ~max:(48 * mib) ~multiple:100 with
      | None -> got := None
      | Some a ->
        got := Some (Mac.bytes a);
        Mac.gb_free env a);
      stop := true);
  Kernel.run k;
  Alcotest.(check bool) "refused" true (!got = None)

let test_two_gb_allocs_share () =
  (* both MAC users together must not overcommit *)
  let k = boot () in
  let grants = ref [] in
  let finished = ref 0 in
  for i = 0 to 1 do
    Kernel.spawn k ~name:(Printf.sprintf "mac%d" i) (fun env ->
        Engine.delay (i * 2_000_000);
        (match Mac.gb_alloc env small_mac ~min:(8 * mib) ~max:(48 * mib) ~multiple:100 with
        | None -> ()
        | Some a ->
          grants := Mac.bytes a :: !grants;
          for _ = 1 to 5 do
            Mac.touch_all env a;
            Engine.delay 2_000_000
          done;
          Mac.gb_free env a);
        incr finished)
  done;
  Kernel.run k;
  Alcotest.(check int) "both ran" 2 !finished;
  let total = List.fold_left ( + ) 0 !grants in
  Alcotest.(check bool)
    (Printf.sprintf "combined %.0f MB <= 66 MB" (float_of_int total /. float_of_int mib))
    true
    (List.length !grants = 2 && total <= 66 * mib)

let test_works_under_noise () =
  (* 8% log-normal noise on every service time: detection must still hold *)
  let engine = Engine.create () in
  let platform = Platform.with_noise tiny_linux ~sigma:0.08 in
  let k = Kernel.boot ~engine ~platform ~data_disks:2 ~seed:88 ~faults:Fault.quiet () in
  let granted = ref (-1) in
  Kernel.spawn k (fun env ->
      match Mac.gb_alloc env small_mac ~min:(8 * mib) ~max:(96 * mib) ~multiple:100 with
      | None -> granted := 0
      | Some a ->
        granted := Mac.bytes a;
        Mac.gb_free env a);
  Kernel.run k;
  Alcotest.(check bool)
    (Printf.sprintf "noisy grant %d MB stays within the machine" (!granted / mib))
    true
    (!granted > 8 * mib && !granted < 64 * mib)

let test_stats_populated () =
  let _, stats =
    run_proc (fun env ->
        (match Mac.gb_alloc env small_mac ~min:mib ~max:(16 * mib) ~multiple:1 with
        | Some a -> Mac.gb_free env a
        | None -> ());
        Mac.last_stats ())
  in
  Alcotest.(check bool) "steps counted" true (stats.Mac.s_steps > 0);
  Alcotest.(check bool) "probe time measured" true (stats.Mac.s_probe_ns > 0)

let test_freed_memory_reusable () =
  let _, (first, second) =
    run_proc (fun env ->
        let grab () =
          match Mac.gb_alloc env small_mac ~min:(4 * mib) ~max:(32 * mib) ~multiple:1 with
          | None -> 0
          | Some a ->
            let b = Mac.bytes a in
            Mac.gb_free env a;
            b
        in
        let first = grab () in
        let second = grab () in
        (first, second))
  in
  Alcotest.(check bool)
    (Printf.sprintf "second %d MB ~ first %d MB" (second / mib) (first / mib))
    true
    (abs (first - second) < 6 * mib)

let suite =
  [
    Alcotest.test_case "idle machine grants max" `Quick test_idle_machine_grants_max;
    Alcotest.test_case "grant is multiple" `Quick test_grant_is_multiple;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "respects competitor" `Quick test_respects_competitor;
    Alcotest.test_case "none when min unavailable" `Quick
      test_returns_none_when_min_unavailable;
    Alcotest.test_case "two gb_allocs share" `Quick test_two_gb_allocs_share;
    Alcotest.test_case "works under noise" `Quick test_works_under_noise;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Alcotest.test_case "freed memory reusable" `Quick test_freed_memory_reusable;
  ]
