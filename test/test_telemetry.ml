(* The telemetry plane's contracts: mode parsing, the disabled fast path,
   counter-based sampling, the metrics registry, exporters, and the two
   hard determinism guarantees — identical simulation results with
   telemetry on vs off, and byte-identical exports at -j 1 vs -j 4. *)

open Gray_util

let mode = Alcotest.testable
    (fun ppf m -> Format.pp_print_string ppf (Telemetry.mode_to_string m))
    ( = )

let test_mode_of_string () =
  let ok = Alcotest.(check (result mode string)) in
  ok "off" (Ok Telemetry.Off) (Telemetry.mode_of_string "off");
  ok "none" (Ok Telemetry.Off) (Telemetry.mode_of_string "none");
  ok "empty" (Ok Telemetry.Off) (Telemetry.mode_of_string "");
  ok "full" (Ok Telemetry.Full) (Telemetry.mode_of_string "FULL");
  ok "rate" (Ok (Telemetry.Sample 7)) (Telemetry.mode_of_string " 7 ");
  Alcotest.(check bool) "zero is an error" true
    (Result.is_error (Telemetry.mode_of_string "0"));
  Alcotest.(check bool) "garbage is an error" true
    (Result.is_error (Telemetry.mode_of_string "sometimes"))

let test_of_env () =
  let set v = Unix.putenv "GRAYBOX_TELEMETRY" v in
  let reset () = set "" in
  Fun.protect ~finally:reset (fun () ->
      reset ();
      Alcotest.check mode "empty is off" Telemetry.Off (Telemetry.of_env ());
      set "full";
      Alcotest.check mode "full" Telemetry.Full (Telemetry.of_env ());
      set "5";
      Alcotest.check mode "sample" (Telemetry.Sample 5) (Telemetry.of_env ());
      set "0";
      (* below 1: warns on stderr and stays off, like GRAYBOX_TRIALS *)
      Alcotest.check mode "sub-1 rate warns and is off" Telemetry.Off (Telemetry.of_env ()))

let test_disabled_fast_path () =
  Alcotest.(check bool) "no ambient sink" true (Telemetry.disabled ());
  (* all ambient operations are no-ops that still run the payload *)
  let ran = ref false in
  let v = Telemetry.span "x" (fun () -> ran := true; 17) in
  Alcotest.(check int) "span runs f" 17 v;
  Alcotest.(check bool) "payload ran" true !ran;
  Telemetry.event "x";
  Telemetry.add "x";
  Telemetry.observe "x" 1.0;
  Alcotest.(check bool) "still no sink" true (Telemetry.disabled ())

let test_with_sink_restores () =
  let s = Telemetry.create ~name:"outer" () in
  Telemetry.with_sink s (fun () ->
      Alcotest.(check bool) "enabled inside" true (Telemetry.enabled ());
      (try
         Telemetry.with_sink (Telemetry.create ~name:"inner" ()) (fun () ->
             failwith "boom")
       with Failure _ -> ());
      (* the outer sink is back even after the inner one died *)
      match Telemetry.active () with
      | Some s' -> Alcotest.(check string) "outer restored" "outer" (Telemetry.sink_name s')
      | None -> Alcotest.fail "sink lost");
  Alcotest.(check bool) "disabled outside" true (Telemetry.disabled ())

let test_span_and_metrics () =
  let s = Telemetry.create ~name:"t" () in
  Telemetry.with_sink s (fun () ->
      for _ = 1 to 3 do
        Telemetry.span "a.b.op" (fun () -> ())
      done;
      Telemetry.event "a.b.tick";
      Telemetry.add ~n:4 "a.b.total";
      Telemetry.observe "a.b.conf" 0.5;
      Telemetry.observe "a.b.conf" 1.0);
  Alcotest.(check int) "spans recorded" 3 (Telemetry.span_count s);
  Alcotest.(check int) "events recorded" 1 (Telemetry.event_count s);
  (* every span feeds its auto-metrics *)
  Alcotest.(check int) "calls counter" 3 (Telemetry.counter_value s "a.b.op.calls");
  Alcotest.(check int) "point counter" 1 (Telemetry.counter_value s "a.b.tick.count");
  Alcotest.(check int) "plain counter" 4 (Telemetry.counter_value s "a.b.total");
  Alcotest.(check (list string)) "names seen" [ "a.b.op"; "a.b.tick" ]
    (Telemetry.span_names s)

let test_sampling () =
  let s = Telemetry.create ~mode:(Telemetry.Sample 3) ~name:"t" () in
  Telemetry.with_sink s (fun () ->
      for _ = 1 to 7 do
        Telemetry.span "hot" (fun () -> ())
      done;
      Telemetry.span "rare" (fun () -> ()));
  (* occurrences 1, 4, 7 of "hot" (counter 0, 3, 6) are kept, plus the
     first "rare": sampling is per name and the first of each always
     survives *)
  Alcotest.(check int) "sampled spans" 4 (Telemetry.span_count s);
  (* ...but metrics stay exact *)
  Alcotest.(check int) "exact calls" 7 (Telemetry.counter_value s "hot.calls")

let test_off_sink_counts_metrics () =
  let s = Telemetry.create ~mode:Telemetry.Off ~name:"t" () in
  Telemetry.with_sink s (fun () -> Telemetry.span "op" (fun () -> ()));
  Alcotest.(check int) "no trace entries" 0 (Telemetry.span_count s);
  Alcotest.(check int) "metrics still exact" 1 (Telemetry.counter_value s "op.calls")

let test_kind_clash () =
  let s = Telemetry.create ~name:"t" () in
  Telemetry.with_sink s (fun () ->
      Telemetry.add "m";
      Alcotest.(check bool) "observe on a counter raises" true
        (try
           Telemetry.observe "m" 1.0;
           false
         with Invalid_argument _ -> true))

let test_clock_install () =
  let s = Telemetry.create ~name:"t" () in
  Telemetry.with_sink s (fun () ->
      let t1 = Telemetry.now s in
      let t2 = Telemetry.now s in
      Alcotest.(check bool) "tick fallback is monotonic" true (t2 > t1);
      let restore = Telemetry.install_clock (fun () -> 1234) in
      Alcotest.(check int) "installed clock wins" 1234 (Telemetry.now s);
      restore ();
      Alcotest.(check bool) "tick fallback back" true (Telemetry.now s > t2))

let test_merge_metrics () =
  let mk name base =
    let s = Telemetry.create ~name () in
    Telemetry.with_sink s (fun () ->
        Telemetry.add ~n:base "c";
        Telemetry.observe "d" (float_of_int base);
        Telemetry.observe_hist "h" ~lo:0.0 ~hi:10.0 ~bins:5 (float_of_int base));
    s
  in
  let a = mk "a" 2 and b = mk "b" 3 in
  match Telemetry.merge_metrics_json [ a; b ] with
  | Json.Obj fields ->
    Alcotest.(check (list string)) "sorted metric names" [ "c"; "d"; "h" ]
      (List.map fst fields);
    (match List.assoc "c" fields with
    | Json.Int n -> Alcotest.(check int) "counters sum" 5 n
    | _ -> Alcotest.fail "c not a counter");
    (match List.assoc "d" fields with
    | Json.Obj df -> (
      match (List.assoc "count" df, List.assoc "total" df) with
      | Json.Int n, Json.Float t ->
        Alcotest.(check int) "dist count" 2 n;
        Alcotest.(check (float 1e-9)) "dist total" 5.0 t
      | _ -> Alcotest.fail "dist fields")
    | _ -> Alcotest.fail "d not a dist");
    (match List.assoc "h" fields with
    | Json.Obj hf -> (
      match List.assoc "bins" hf with
      | Json.List bins ->
        Alcotest.(check int) "bin count preserved" 5 (List.length bins)
      | _ -> Alcotest.fail "bins")
    | _ -> Alcotest.fail "h not a hist")
  | _ -> Alcotest.fail "metrics not an object"

let test_chrome_export_shape () =
  let s = Telemetry.create ~name:"task-0" () in
  Telemetry.with_sink s (fun () ->
      Telemetry.span "op" ~attrs:(fun () -> [ ("k", Telemetry.Int 7) ]) (fun () -> ());
      Telemetry.event "tick");
  let evs = Telemetry.chrome_events s ~pid:3 ~tid:4 in
  (* two metadata records naming the task, then the entries in recording
     order *)
  Alcotest.(check int) "event count" 4 (List.length evs);
  let ph e = match e with
    | Json.Obj f -> (match List.assoc "ph" f with Json.String p -> p | _ -> "?")
    | _ -> "?"
  in
  Alcotest.(check (list string)) "phases in order" [ "M"; "M"; "X"; "i" ]
    (List.map ph evs);
  List.iter
    (fun e ->
      match e with
      | Json.Obj f ->
        (match List.assoc "pid" f with
        | Json.Int p -> Alcotest.(check int) "pid" 3 p
        | _ -> Alcotest.fail "pid");
        (match List.assoc "tid" f with
        | Json.Int t -> Alcotest.(check int) "tid" 4 t
        | _ -> Alcotest.fail "tid")
      | _ -> Alcotest.fail "not an object")
    evs;
  match Telemetry.chrome_trace evs with
  | Json.Obj [ ("traceEvents", Json.List l) ] ->
    Alcotest.(check int) "wrapped" 4 (List.length l)
  | _ -> Alcotest.fail "chrome_trace shape"

(* ---- the bench-harness determinism contracts -------------------------- *)

open Gray_bench

let mib = Bench_common.mib

let small_plan () =
  Fig1.plan_sized ~file_bytes:(64 * mib) ~access_units:[ 1 * mib; 4 * mib ]
    ~prediction_units:[ 1 * mib; 2 * mib; 8 * mib ]
    ~trials:2 ()

let exec_with_jobs plan jobs =
  let pool = Domain_pool.create ~size:jobs in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () -> Bench_common.execute ~pool [ plan ]);
  plan

let with_telemetry m f =
  Bench_common.set_telemetry_mode m;
  Fun.protect ~finally:(fun () -> Bench_common.set_telemetry_mode Telemetry.Off) f

(* Traced runs must not disturb the simulation: the rendered output (and
   hence every figure) is byte-identical with telemetry full vs off. *)
let test_tracing_does_not_perturb () =
  let off =
    with_telemetry Telemetry.Off (fun () ->
        (exec_with_jobs (small_plan ()) 1).Bench_common.p_render ())
  in
  let on =
    with_telemetry Telemetry.Full (fun () ->
        (exec_with_jobs (small_plan ()) 1).Bench_common.p_render ())
  in
  Alcotest.(check string) "rendered output identical" off.Bench_common.rd_output
    on.Bench_common.rd_output;
  Alcotest.(check bool) "figures identical" true
    (off.Bench_common.rd_figures = on.Bench_common.rd_figures)

(* The trace and metrics exports are byte-identical at any -j: each task
   owns a hermetic sink, and the exporters walk tasks in submission
   order. *)
let test_exports_identical_across_jobs () =
  let export jobs =
    with_telemetry Telemetry.Full (fun () ->
        let plan = exec_with_jobs (small_plan ()) jobs in
        ( Json.to_string (Bench_common.chrome_trace_of [ plan ]),
          Json.to_string
            (Telemetry.merge_metrics_json (Bench_common.plan_sinks plan)) ))
  in
  let trace1, metrics1 = export 1 in
  let trace4, metrics4 = export 4 in
  Alcotest.(check bool) "trace is non-trivial" true (String.length trace1 > 1000);
  Alcotest.(check string) "chrome trace byte-identical at -j 1 vs -j 4" trace1 trace4;
  Alcotest.(check string) "metrics byte-identical at -j 1 vs -j 4" metrics1 metrics4

(* Sampled exports obey the same contract, and sampling keeps at least the
   first occurrence of every name. *)
let test_sampled_exports_identical_across_jobs () =
  let export jobs =
    with_telemetry (Telemetry.Sample 50) (fun () ->
        let plan = exec_with_jobs (small_plan ()) jobs in
        Json.to_string (Bench_common.chrome_trace_of [ plan ]))
  in
  let a = export 1 and b = export 4 in
  Alcotest.(check string) "sampled trace byte-identical" a b

let suite =
  [
    Alcotest.test_case "mode_of_string" `Quick test_mode_of_string;
    Alcotest.test_case "of_env" `Quick test_of_env;
    Alcotest.test_case "disabled fast path" `Quick test_disabled_fast_path;
    Alcotest.test_case "with_sink restores" `Quick test_with_sink_restores;
    Alcotest.test_case "spans + metrics registry" `Quick test_span_and_metrics;
    Alcotest.test_case "counter-based sampling" `Quick test_sampling;
    Alcotest.test_case "off sink still counts metrics" `Quick test_off_sink_counts_metrics;
    Alcotest.test_case "metric kind clash" `Quick test_kind_clash;
    Alcotest.test_case "clock install/restore" `Quick test_clock_install;
    Alcotest.test_case "metrics merge across sinks" `Quick test_merge_metrics;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "tracing does not perturb the simulation" `Slow
      test_tracing_does_not_perturb;
    Alcotest.test_case "exports identical at -j 1 and -j 4" `Slow
      test_exports_identical_across_jobs;
    Alcotest.test_case "sampled exports identical at -j 1 and -j 4" `Slow
      test_sampled_exports_identical_across_jobs;
  ]
