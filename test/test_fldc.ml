(* FLDC: i-number ordering, aging, refresh, crash recovery. *)

open Simos
open Graybox_core

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let run_proc ?(platform = tiny_linux) body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:2 ~seed:55 () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn
let kib8 = 8192

let test_inumber_order_is_creation_order () =
  let _, order =
    run_proc (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:10
            ~size:kib8
        in
        let shuffled = List.rev paths in
        let sorted = ok (Fldc.order_by_inumber env ~paths:shuffled) in
        (paths, List.map (fun s -> s.Fldc.so_path) sorted))
  in
  let created, recovered = order in
  Alcotest.(check (list string)) "recovered creation order" created recovered

let test_order_by_directory () =
  let paths = [ "/d0/b/x"; "/d0/a/y"; "/d0/b/z"; "/d0/a/w" ] in
  Alcotest.(check (list string)) "grouped"
    [ "/d0/a/y"; "/d0/a/w"; "/d0/b/x"; "/d0/b/z" ]
    (Fldc.order_by_directory ~paths)

let test_inumber_read_faster_than_random () =
  let _, (random_ns, inumber_ns) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:100
            ~size:kib8
        in
        let rng = Gray_util.Rng.create ~seed:17 in
        let shuffled = Array.of_list paths in
        Gray_util.Rng.shuffle rng shuffled;
        Kernel.flush_file_cache k;
        let t0 = Kernel.gettime env in
        Array.iter (fun p -> Gray_apps.Workload.read_file env p) shuffled;
        let random_ns = Kernel.gettime env - t0 in
        Kernel.flush_file_cache k;
        let ordered = ok (Fldc.order_by_inumber env ~paths) in
        let t0 = Kernel.gettime env in
        List.iter
          (fun s -> Gray_apps.Workload.read_file env s.Fldc.so_path)
          ordered;
        let inumber_ns = Kernel.gettime env - t0 in
        (random_ns, inumber_ns))
  in
  Alcotest.(check bool)
    (Printf.sprintf "i-number %.0fms << random %.0fms"
       (float_of_int inumber_ns /. 1e6)
       (float_of_int random_ns /. 1e6))
    true
    (float_of_int inumber_ns < 0.5 *. float_of_int random_ns)

let age env rng ~dir ~epochs =
  for _ = 1 to epochs do
    Gray_apps.Workload.age_directory env rng ~dir ~deletes:5 ~creates:5 ~size:kib8
  done

let test_aging_degrades_then_refresh_restores () =
  let _, (fresh_frag, aged_frag, refreshed_frag) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        ignore
          (Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:100
             ~size:(4 * kib8));
        let avg_order_frag () =
          (* how contiguous is the walk of files in i-number order? use the
             white-box layout: mean absolute block distance between
             consecutive files' first blocks, normalised *)
          let ordered =
            ok (Fldc.order_by_inumber env ~paths:(Gray_apps.Workload.paths_in env ~dir:"/d0/dir"))
          in
          let firsts =
            List.map
              (fun s ->
                match Introspect.file_layout k ~path:s.Fldc.so_path with
                | Ok l when Array.length l > 0 -> float_of_int l.(0)
                | _ -> 0.0)
              ordered
          in
          let rec gaps acc = function
            | a :: (b :: _ as rest) -> gaps (Float.abs (b -. a) :: acc) rest
            | _ -> acc
          in
          Gray_util.Stats.mean_of (Array.of_list (gaps [] firsts))
        in
        let fresh = avg_order_frag () in
        let rng = Gray_util.Rng.create ~seed:7 in
        age env rng ~dir:"/d0/dir" ~epochs:30;
        let aged = avg_order_frag () in
        ok
          (Result.map_error
             (fun e -> failwith (Kernel.error_to_string e))
             (Fldc.refresh_directory env ~dir:"/d0/dir" ()));
        let refreshed = avg_order_frag () in
        (fresh, aged, refreshed))
  in
  Alcotest.(check bool)
    (Printf.sprintf "aged %.0f > fresh %.0f" aged_frag fresh_frag)
    true
    (aged_frag > 2.0 *. fresh_frag);
  Alcotest.(check bool)
    (Printf.sprintf "refreshed %.0f < aged %.0f" refreshed_frag aged_frag)
    true
    (refreshed_frag < 0.5 *. aged_frag)

let test_refresh_preserves_contents () =
  let _, () =
    run_proc (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:10
            ~size:kib8
        in
        (* remember sizes and times *)
        let before =
          List.map
            (fun p ->
              let st = ok (Result.map_error (fun e -> failwith (Kernel.error_to_string e)) (Kernel.stat env p)) in
              (p, st.Fs.st_size, st.Fs.st_mtime))
            paths
        in
        ok
          (Result.map_error
             (fun e -> failwith (Kernel.error_to_string e))
             (Fldc.refresh_directory env ~dir:"/d0/dir" ()));
        List.iter
          (fun (p, size, mtime) ->
            match Kernel.stat env p with
            | Error _ -> Alcotest.failf "missing after refresh: %s" p
            | Ok st ->
              Alcotest.(check int) (p ^ " size") size st.Fs.st_size;
              Alcotest.(check int) (p ^ " mtime") mtime st.Fs.st_mtime)
          before;
        (* no journal, no temp dir left behind *)
        let entries = ok (Kernel.readdir env "/d0") in
        Alcotest.(check (list string)) "clean parent" [ "dir" ] entries)
  in
  ()

let test_refresh_small_files_first () =
  let _, () =
    run_proc (fun env ->
        ok
          (Result.map_error
             (fun e -> failwith (Kernel.error_to_string e))
             (Kernel.mkdir env "/d0/dir"));
        Gray_apps.Workload.write_file env "/d0/dir/big" (20 * kib8);
        Gray_apps.Workload.write_file env "/d0/dir/small" kib8;
        Gray_apps.Workload.write_file env "/d0/dir/medium" (4 * kib8);
        ok
          (Result.map_error
             (fun e -> failwith (Kernel.error_to_string e))
             (Fldc.refresh_directory env ~dir:"/d0/dir" ()));
        let inos =
          List.map
            (fun name ->
              let st =
                ok
                  (Result.map_error
                     (fun e -> failwith (Kernel.error_to_string e))
                     (Kernel.stat env ("/d0/dir/" ^ name)))
              in
              (name, st.Fs.st_ino))
            [ "small"; "medium"; "big" ]
        in
        let get n = List.assoc n inos in
        Alcotest.(check bool) "small < medium" true (get "small" < get "medium");
        Alcotest.(check bool) "medium < big" true (get "medium" < get "big"))
  in
  ()

let test_crash_recovery_all_points () =
  List.iter
    (fun point ->
      if point <> Fldc.No_crash then begin
        let _, () =
          run_proc (fun env ->
              let paths =
                Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f"
                  ~count:8 ~size:kib8
              in
              (try
                 ignore (Fldc.refresh_directory env ~crash_at:point ~dir:"/d0/dir" ())
               with Fldc.Injected_crash _ -> ());
              (* nightly repair *)
              let repaired =
                ok
                  (Result.map_error
                     (fun e -> failwith (Kernel.error_to_string e))
                     (Fldc.repair env ~parent:"/d0"))
              in
              Alcotest.(check bool) "repair ran" true repaired;
              (* directory back with the same names *)
              let entries = List.sort compare (ok (Kernel.readdir env "/d0/dir")) in
              Alcotest.(check (list string))
                (Printf.sprintf "entries after crash")
                (List.sort compare (List.map (fun p -> Fldc.basename p) paths))
                entries;
              (* parent clean: only the directory remains *)
              let parent_entries = ok (Kernel.readdir env "/d0") in
              Alcotest.(check (list string)) "parent clean" [ "dir" ] parent_entries)
        in
        ()
      end)
    Fldc.crash_points

let test_repair_without_crash_is_noop () =
  let _, repaired =
    run_proc (fun env ->
        ignore
          (Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:3
             ~size:kib8);
        ok
          (Result.map_error
             (fun e -> failwith (Kernel.error_to_string e))
             (Fldc.repair env ~parent:"/d0")))
  in
  Alcotest.(check bool) "nothing to repair" false repaired

let test_ordering_robust_to_noise () =
  (* stat-based ordering has no timing dependence at all; verify it holds
     verbatim under heavy service-time noise *)
  let noisy = Platform.with_noise tiny_linux ~sigma:0.5 in
  let _, (created, recovered) =
    run_proc ~platform:noisy (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:12
            ~size:kib8
        in
        let sorted = ok (Fldc.order_by_inumber env ~paths:(List.rev paths)) in
        (paths, List.map (fun s -> s.Fldc.so_path) sorted))
  in
  Alcotest.(check (list string)) "order unaffected by noise" created recovered

(* A refresh that dies on a plain typed error (not an injected crash)
   must roll its scratch state back: no journal and no temp directory
   stranded in the parent, originals untouched — the caller sees
   [Error], not a half-moved directory plus debris. *)
let test_refresh_error_rolls_back_scratch () =
  let failing_reads =
    { Fault.quiet with Fault.sc_error_prob = 1.0; sc_error_targets = [ Fault.Read ] }
  in
  let engine = Engine.create () in
  let k =
    Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:55
      ~faults:failing_reads ()
  in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/dir" ~prefix:"f" ~count:6
          ~size:kib8
      in
      let before =
        List.map (fun p -> (p, (ok (Kernel.stat env p)).Fs.st_size)) paths
      in
      (match Fldc.refresh_directory env ~dir:"/d0/dir" () with
      | Ok () -> Alcotest.fail "refresh succeeded under always-failing reads"
      | Error _ -> ());
      List.iter
        (fun (p, size) ->
          Alcotest.(check int) (p ^ " intact") size
            (ok (Kernel.stat env p)).Fs.st_size)
        before;
      Alcotest.(check (list string)) "no journal, no tmp dir" [ "dir" ]
        (List.sort compare (ok (Kernel.readdir env "/d0")));
      Alcotest.(check bool) "nothing for repair to find" false
        (ok (Fldc.repair env ~parent:"/d0")));
  Kernel.run k

let suite =
  [
    Alcotest.test_case "i-number order = creation order" `Quick
      test_inumber_order_is_creation_order;
    Alcotest.test_case "order by directory" `Quick test_order_by_directory;
    Alcotest.test_case "i-number read beats random" `Quick
      test_inumber_read_faster_than_random;
    Alcotest.test_case "aging degrades, refresh restores" `Quick
      test_aging_degrades_then_refresh_restores;
    Alcotest.test_case "refresh preserves contents" `Quick test_refresh_preserves_contents;
    Alcotest.test_case "refresh small files first" `Quick test_refresh_small_files_first;
    Alcotest.test_case "crash recovery at every point" `Quick
      test_crash_recovery_all_points;
    Alcotest.test_case "repair without crash" `Quick test_repair_without_crash_is_noop;
    Alcotest.test_case "ordering robust to noise" `Quick test_ordering_robust_to_noise;
    Alcotest.test_case "refresh error rolls back scratch" `Quick
      test_refresh_error_rolls_back_scratch;
  ]
