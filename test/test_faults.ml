(* Fault-injection plane: zero cost when off, determinism under faults,
   transient-error retries, ICL resilience and confidence, timer
   coarsening, and crash-path resource reclamation. *)

open Simos
open Graybox_core

let mib = 1024 * 1024
let kib = 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.05

let boot ?faults ?(platform = tiny_linux) ?(seed = 11) () =
  let engine = Engine.create () in
  (engine, Kernel.boot ~engine ~platform ~data_disks:1 ~seed ?faults ())

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Kernel.error_to_string e)

let small_config ~seed =
  {
    (Fccd.default_config ~seed ()) with
    Fccd.access_unit = 1 * mib;
    prediction_unit = 256 * kib;
  }

(* ---- the off switch is free ---- *)

(* The whole fault plane must be invisible when no fault fires: booting
   with the all-zeros [quiet] scenario — the plane installed but inert —
   must reproduce the no-plane run bit for bit (same virtual end time,
   same probe timings, same plan). *)
let fingerprint ?faults () =
  let engine, k = boot ?faults () in
  let out = ref None in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:4
          ~size:(2 * mib)
      in
      Kernel.flush_file_cache k;
      Gray_apps.Workload.read_file env (List.hd paths);
      let plan = ok (Fccd.probe_file env (small_config ~seed:5) ~path:(List.hd paths)) in
      let ranked = ok (Fccd.order_files env (small_config ~seed:6) ~paths) in
      out :=
        Some
          ( plan.Fccd.plan_extents,
            plan.Fccd.plan_probes,
            List.map (fun r -> (r.Fccd.fr_path, r.Fccd.fr_probe_ns)) ranked ));
  Kernel.run k;
  (Engine.now engine, !out)

let test_quiet_scenario_bit_identical () =
  (* the baseline boot must be genuinely plane-free, so shield it from a
     GRAYBOX_FAULTS setting in the surrounding environment *)
  let saved = Sys.getenv_opt "GRAYBOX_FAULTS" in
  Unix.putenv "GRAYBOX_FAULTS" "none";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GRAYBOX_FAULTS" (Option.value saved ~default:""))
    (fun () ->
      Alcotest.(check bool)
        "fingerprints equal" true
        (fingerprint () = fingerprint ~faults:Fault.quiet ()))

let test_deterministic_under_faults () =
  let go () =
    let engine, k = boot ~faults:Fault.canonical () in
    Kernel.start_fault_daemons k;
    let out = ref None in
    Kernel.spawn k (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:3
            ~size:(2 * mib)
        in
        Kernel.flush_file_cache k;
        let plan = ok (Fccd.probe_file env (small_config ~seed:5) ~path:(List.hd paths)) in
        out := Some plan.Fccd.plan_extents;
        Kernel.stop_faults k);
    Kernel.run k;
    let stats = Option.map Fault.stats (Kernel.fault_plane k) in
    (Engine.now engine, !out, stats)
  in
  Alcotest.(check bool) "identical runs" true (go () = go ())

(* ---- transient errors and the retry combinator ---- *)

let always_failing_reads =
  { Fault.quiet with Fault.sc_error_prob = 1.0; sc_error_targets = [ Fault.Read ] }

let test_transient_error_surfaces () =
  let _, k = boot ~faults:always_failing_reads () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/a") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:(16 * 4096)));
      (* writes are not targeted, reads always are *)
      (match Kernel.read env fd ~off:0 ~len:4096 with
      | Error Kernel.Retryable -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Kernel.error_to_string e)
      | Ok _ -> Alcotest.fail "read should have been interrupted");
      (* the retry combinator gives up after its attempts, spending
         max_attempts - 1 retries *)
      let policy = Resilient.policy ~max_attempts:4 ~seed:3 () in
      (match Resilient.retry ~policy (fun () -> Kernel.read env fd ~off:0 ~len:4096) with
      | Error Kernel.Retryable -> ()
      | _ -> Alcotest.fail "retry against a dead channel must fail");
      Alcotest.(check int) "retries spent" 3 (Resilient.retries_spent policy);
      Kernel.close env fd);
  Kernel.run k

let test_retry_recovers_flaky_channel () =
  let flaky =
    { Fault.quiet with Fault.sc_error_prob = 0.5; sc_error_targets = [ Fault.Read ] }
  in
  let _, k = boot ~faults:flaky () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/a") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:(16 * 4096)));
      let policy = Resilient.policy ~max_attempts:20 ~seed:3 () in
      let recovered = ref 0 in
      for _ = 1 to 20 do
        match Resilient.retry ~policy (fun () -> Kernel.read env fd ~off:0 ~len:4096) with
        | Ok _ -> incr recovered
        | Error _ -> ()
      done;
      (* a 50% flaky channel behind 20 attempts recovers essentially always *)
      Alcotest.(check int) "all reads recovered" 20 !recovered;
      Alcotest.(check bool) "retries actually happened" true
        (Resilient.retries_spent policy > 0);
      Kernel.close env fd);
  Kernel.run k

let test_retry_budget_exhausts () =
  let _, k = boot ~faults:always_failing_reads () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/a") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:4096));
      let policy = Resilient.policy ~max_attempts:1000 ~budget:5 ~seed:3 () in
      ignore (Resilient.retry ~policy (fun () -> Kernel.read env fd ~off:0 ~len:4096));
      Alcotest.(check int) "stopped at the budget" 5 (Resilient.retries_spent policy);
      Kernel.close env fd);
  Kernel.run k

(* ---- ICLs stay standing under the canonical scenario ---- *)

let test_icls_complete_under_canonical () =
  let _, k = boot ~faults:Fault.canonical () in
  Kernel.start_fault_daemons k;
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:4
          ~size:(2 * mib)
      in
      Kernel.flush_file_cache k;
      Gray_apps.Workload.read_file env (List.hd paths);
      (* FCCD completes and reports a confidence *)
      let config = { (small_config ~seed:5) with Fccd.resample = 1 } in
      let plan = ok (Fccd.probe_file env config ~path:(List.hd paths)) in
      Alcotest.(check bool) "plan confidence in range" true
        (plan.Fccd.plan_confidence >= 0.0 && plan.Fccd.plan_confidence <= 1.0);
      Alcotest.(check bool) "plan covers the file" true
        (List.length plan.Fccd.plan_extents > 0);
      (* FLDC completes (stats retried under the hood) *)
      let ordered = ok (Fldc.order_by_inumber env ~paths) in
      Alcotest.(check int) "all files ordered" (List.length paths) (List.length ordered);
      (* MAC completes with robust calibration and scores its channel *)
      let mac = { (Mac.default_config ()) with Mac.robust = true } in
      (match Mac.gb_alloc env mac ~min:(2 * mib) ~max:(8 * mib) ~multiple:mib with
      | Some a ->
        Alcotest.(check bool) "mac confidence in range" true
          (Mac.confidence a >= 0.0 && Mac.confidence a <= 1.0);
        Mac.gb_free env a
      | None -> ());
      let stats = Mac.last_stats () in
      Alcotest.(check bool) "chunks were classified" true (stats.Mac.s_chunks > 0);
      Kernel.stop_faults k);
  Kernel.run k;
  let fstats = Option.get (Option.map Fault.stats (Kernel.fault_plane k)) in
  Alcotest.(check bool) "the scenario actually interfered" true
    (fstats.Fault.f_errors > 0 || fstats.Fault.f_spikes > 0
   || fstats.Fault.f_burst_hits > 0)

let test_fccd_low_confidence_falls_back_sequential () =
  let _, k = boot () in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:1
          ~size:(4 * mib)
      in
      Kernel.flush_file_cache k;
      let config = { (small_config ~seed:5) with Fccd.min_confidence = 1.1 } in
      let plan = ok (Fccd.probe_file env config ~path:(List.hd paths)) in
      let exts = Fccd.extents_or_sequential config plan in
      let offsets = List.map (fun e -> e.Fccd.ext_off) exts in
      Alcotest.(check bool) "sequential offsets" true
        (offsets = List.sort compare offsets));
  Kernel.run k

(* ---- timer coarsening ---- *)

let test_timer_coarsening_observable () =
  let coarse = { Fault.quiet with Fault.sc_timer_factor = 8 } in
  let _, k = boot ~faults:coarse () in
  let base = tiny_linux.Platform.timer_resolution_ns in
  Kernel.spawn k (fun env ->
      for _ = 1 to 5 do
        Kernel.compute env ~ns:12_345;
        Alcotest.(check int) "quantised to coarse grid" 0
          (Kernel.gettime env mod (8 * base))
      done);
  Kernel.run k

(* ---- crash-path resource reclamation ---- *)

let test_crash_reclaims_resources () =
  let _, k = boot () in
  (* the victim holds an open fd and touched anonymous memory, parked in
     the middle of a long syscall when the crasher dies *)
  Kernel.spawn k ~name:"victim" (fun env ->
      let region = Kernel.valloc env ~pages:64 in
      ignore (Kernel.touch_pages env region ~first:0 ~count:64);
      let fd = ok (Kernel.create_file env "/d0/victim") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:(8 * mib)));
      ignore (ok (Kernel.read env fd ~off:0 ~len:(8 * mib)));
      Kernel.close env fd;
      Kernel.vfree env region);
  Kernel.spawn k ~name:"crasher" ~at:1000 (fun env ->
      let region = Kernel.valloc env ~pages:32 in
      ignore (Kernel.touch_pages env region ~first:0 ~count:32);
      failwith "dies mid-run");
  (match Kernel.run k with
  | () -> Alcotest.fail "crash should propagate"
  | exception Engine.Fiber_crash ("crasher", Failure _) -> ());
  (* both the crasher's and the cancelled victim's resources are gone *)
  Alcotest.(check int) "no live processes" 0 (Kernel.live_procs k);
  Alcotest.(check int) "no resident anonymous pages" 0
    (Memory.resident_anon (Kernel.memory k))

let test_cancelled_fiber_finalisers_run () =
  let e = Engine.create () in
  let cleaned = ref [] in
  Engine.spawn e ~name:"holder" (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := "holder" :: !cleaned)
        (fun () -> Engine.delay 1_000_000));
  Engine.spawn e ~name:"boom" (fun () ->
      Engine.delay 10;
      failwith "bad");
  (match Engine.run e with
  | () -> Alcotest.fail "crash should propagate"
  | exception Engine.Fiber_crash ("boom", Failure _) -> ());
  Alcotest.(check (list string)) "finaliser ran" [ "holder" ] !cleaned

(* ---- install-time validation ---- *)

(* A malformed scenario must be rejected by [Fault.create] with the
   offending field named, not surface as wrong arithmetic (or a
   Division_by_zero from a zero period-modulus) mid-run. *)
let test_scenario_validation_rejects () =
  let rejects label sc expected_field =
    match Fault.create sc with
    | _ -> Alcotest.failf "%s: accepted a malformed scenario" label
    | exception Invalid_argument msg ->
      let mentions needle msg =
        let nl = String.length needle and ml = String.length msg in
        let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s names %s (got %S)" label expected_field msg)
        true
        (mentions expected_field msg)
  in
  let c = Fault.canonical in
  rejects "negative prob" { c with Fault.sc_error_prob = -0.1 } "sc_error_prob";
  rejects "prob above 1" { c with Fault.sc_spike_prob = 1.5 } "sc_spike_prob";
  rejects "negative spike" { c with Fault.sc_spike_ns = -1 } "sc_spike_ns";
  rejects "timer factor 0" { c with Fault.sc_timer_factor = 0 } "sc_timer_factor";
  rejects "negative jitter" { c with Fault.sc_timer_jitter_ns = -5 } "sc_timer_jitter_ns";
  rejects "zero burst period"
    {
      c with
      Fault.sc_burst =
        Some { Fault.bu_period_ns = 0; bu_duration_ns = 1; bu_extra_ns = 1 };
    }
    "bu_period_ns";
  rejects "evict frac above 1"
    {
      c with
      Fault.sc_disturb =
        Some { Fault.di_period_ns = 1000; di_evict_frac = 2.0; di_horizon_ns = 1000 };
    }
    "di_evict_frac";
  rejects "negative pressure pages"
    {
      c with
      Fault.sc_pressure =
        Some { Fault.pr_pages = -1; pr_hold_ns = 0; pr_gap_ns = 0; pr_horizon_ns = 0 };
    }
    "pr_pages";
  (* the presets themselves must stay installable *)
  List.iter
    (fun sc -> ignore (Fault.create sc))
    [ Fault.quiet; Fault.canonical; Fault.heavy ]

let suite =
  [
    Alcotest.test_case "quiet scenario is bit-identical" `Quick
      test_quiet_scenario_bit_identical;
    Alcotest.test_case "scenario validation rejects" `Quick
      test_scenario_validation_rejects;
    Alcotest.test_case "deterministic under faults" `Quick test_deterministic_under_faults;
    Alcotest.test_case "transient error surfaces" `Quick test_transient_error_surfaces;
    Alcotest.test_case "retry recovers flaky channel" `Quick
      test_retry_recovers_flaky_channel;
    Alcotest.test_case "retry budget exhausts" `Quick test_retry_budget_exhausts;
    Alcotest.test_case "ICLs complete under canonical faults" `Quick
      test_icls_complete_under_canonical;
    Alcotest.test_case "low-confidence plan goes sequential" `Quick
      test_fccd_low_confidence_falls_back_sequential;
    Alcotest.test_case "timer coarsening observable" `Quick test_timer_coarsening_observable;
    Alcotest.test_case "crash reclaims resources" `Quick test_crash_reclaims_resources;
    Alcotest.test_case "cancelled finalisers run" `Quick test_cancelled_fiber_finalisers_run;
  ]
