(* Kernel error paths as the ICLs and gbp see them: missing files, bad
   descriptors, malformed paths, and the exit-code mapping. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let boot () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:tiny_linux ~data_disks:1 ~seed:11 ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Kernel.error_to_string e)

let config ~seed =
  {
    (Fccd.default_config ~seed ()) with
    Fccd.access_unit = 1 * mib;
    prediction_unit = 256 * 1024;
  }

let check_error name expected = function
  | Error e when e = expected -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" name (Kernel.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" name

let test_fccd_missing_and_malformed () =
  let k = boot () in
  Kernel.spawn k (fun env ->
      check_error "missing file" (Kernel.Fs_error Fs.Enoent)
        (Fccd.probe_file env (config ~seed:1) ~path:"/d0/nope");
      check_error "malformed path" Kernel.Bad_path
        (Fccd.probe_file env (config ~seed:2) ~path:"bogus");
      check_error "order_files missing" (Kernel.Fs_error Fs.Enoent)
        (Fccd.order_files env (config ~seed:3) ~paths:[ "/d0/nope" ]));
  Kernel.run k

let test_fldc_missing_and_malformed () =
  let k = boot () in
  Kernel.spawn k (fun env ->
      check_error "stat missing" (Kernel.Fs_error Fs.Enoent)
        (Fldc.order_by_inumber env ~paths:[ "/d0/nope" ]);
      check_error "stat malformed" Kernel.Bad_path
        (Fldc.order_by_inumber env ~paths:[ "not-a-path" ]));
  Kernel.run k

let test_probe_bad_fd_not_retried () =
  let k = boot () in
  Kernel.spawn k (fun env ->
      let fd = ok (Kernel.create_file env "/d0/a") in
      ignore (ok (Kernel.write env fd ~off:0 ~len:4096));
      Kernel.close env fd;
      (* a permanent error must come back immediately, not after a retry
         storm: the policy's retry counter stays at zero *)
      let policy = Resilient.policy ~seed:7 () in
      check_error "closed fd" Kernel.Bad_fd (Probe.file_byte_r env ~policy fd ~off:0);
      Alcotest.(check int) "no retries burned" 0 (Resilient.retries_spent policy));
  Kernel.run k

(* ---- Resilient degradation bounds ---- *)

(* A channel that never recovers must cost exactly the budget and then
   surface the last error — not an unbounded stall, not a success. *)
let test_retry_budget_exhaustion () =
  let k = boot () in
  Kernel.spawn k (fun _env ->
      let policy =
        Resilient.policy ~max_attempts:100 ~budget:3 ~seed:9 ()
      in
      let calls = ref 0 in
      let r =
        Resilient.retry ~policy (fun () ->
            incr calls;
            Error Kernel.Retryable)
      in
      check_error "last error surfaces" Kernel.Retryable r;
      Alcotest.(check int) "budget spent exactly" 3 (Resilient.retries_spent policy);
      (* budget retries = budget + 1 issues of the call *)
      Alcotest.(check int) "calls = budget + 1" 4 !calls;
      (* a drained policy stops paying on the next call too *)
      let r2 = Resilient.retry ~policy (fun () -> Error Kernel.Retryable) in
      check_error "drained policy returns immediately" Kernel.Retryable r2;
      Alcotest.(check int) "no further retries" 3 (Resilient.retries_spent policy));
  Kernel.run k

(* Backoff saturates at the cap: with a tiny cap, the virtual time burned
   by a full retry storm is bounded by retries * cap, and [retries_spent]
   never exceeds either bound (attempts - 1, budget). *)
let test_retry_backoff_cap_saturation () =
  let k = boot () in
  let engine_now = ref 0 in
  Kernel.spawn k (fun env ->
      let cap = 200_000 (* 200 us *) in
      let policy =
        Resilient.policy ~max_attempts:8 ~base_backoff_ns:50_000
          ~max_backoff_ns:cap ~budget:1000 ~seed:10 ()
      in
      let t0 = Kernel.gettime env in
      let r = Resilient.retry ~policy (fun () -> Error Kernel.Retryable) in
      check_error "last error after attempts" Kernel.Retryable r;
      let spent = Resilient.retries_spent policy in
      Alcotest.(check int) "retries = attempts - 1" 7 spent;
      Alcotest.(check bool) "spent within budget" true (spent <= 1000);
      engine_now := Kernel.gettime env - t0;
      (* every sleep is capped, so elapsed <= retries * cap (plus a
         little timer-quantisation slack on the clock reads) *)
      let slack = 1_000 in
      Alcotest.(check bool) "elapsed bounded by cap"
        true
        (!engine_now <= (spent * cap) + slack));
  Kernel.run k;
  Alcotest.(check bool) "some backoff actually slept" true (!engine_now > 0)

let test_classify () =
  Alcotest.(check bool) "retryable is transient" true
    (Resilient.classify Kernel.Retryable = `Transient);
  List.iter
    (fun e ->
      Alcotest.(check bool) "permanent" true (Resilient.classify e = `Permanent))
    [ Kernel.Bad_fd; Kernel.Bad_path; Kernel.Fs_error Fs.Enoent ]

let test_exit_codes_distinct_and_nonzero () =
  let errors =
    [
      Kernel.Bad_path;
      Kernel.Bad_fd;
      Kernel.Retryable;
      Kernel.Fs_error Fs.Enoent;
      Kernel.Fs_error Fs.Eexist;
      Kernel.Fs_error Fs.Enospc;
    ]
  in
  let codes =
    List.map Gbp.exit_code_of_error errors
    @ [ Gbp.exit_export_failed; Gbp.exit_crash_recovered; Gbp.exit_recovery_failed ]
  in
  List.iter
    (fun c -> Alcotest.(check bool) "not 0 or 1" true (c <> 0 && c <> 1))
    codes;
  Alcotest.(check int) "distinct codes" (List.length codes)
    (List.length (List.sort_uniq compare codes))

let test_gbp_error_fallback_passthrough () =
  let k = boot () in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:3
          ~size:(1 * mib)
      in
      let with_ghost = paths @ [ "/d0/data/ghost" ] in
      let ordered, reason =
        Gbp.best_order_or_fallback env (config ~seed:4) Gbp.Mem ~paths:with_ghost
      in
      Alcotest.(check (list string)) "argument order preserved" with_ghost ordered;
      match reason with
      | Some (Gbp.Degraded_error (Kernel.Fs_error Fs.Enoent)) -> ()
      | Some r -> Alcotest.failf "wrong reason: %s" (Gbp.fallback_reason_to_string r)
      | None -> Alcotest.fail "expected a fallback reason");
  Kernel.run k

let suite =
  [
    Alcotest.test_case "fccd missing/malformed" `Quick test_fccd_missing_and_malformed;
    Alcotest.test_case "fldc missing/malformed" `Quick test_fldc_missing_and_malformed;
    Alcotest.test_case "probe bad fd not retried" `Quick test_probe_bad_fd_not_retried;
    Alcotest.test_case "retry budget exhaustion" `Quick test_retry_budget_exhaustion;
    Alcotest.test_case "retry backoff cap saturation" `Quick
      test_retry_backoff_cap_saturation;
    Alcotest.test_case "error classification" `Quick test_classify;
    Alcotest.test_case "exit codes distinct" `Quick test_exit_codes_distinct_and_nonzero;
    Alcotest.test_case "gbp fallback passthrough" `Quick test_gbp_error_fallback_passthrough;
  ]
