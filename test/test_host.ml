(* Host-backend conformance: the ICLs against the real filesystem
   through Os_host.  Every call must come back as a typed result —
   never a raised [Unix_error] — and an env must not leak descriptors
   or scratch files.  Deliberately tolerant: no timing values are
   pinned (a loaded CI machine answers slowly, not wrongly), and
   capabilities the host lacks may degrade typed ([Unsupported], a
   widened confidence cap) without failing the suite. *)

open Simos
open Graybox_core
module W = Gray_apps.Workload.Make (Os_host)
module F = Fccd.Make (Os_host)
module L = Fldc.Make (Os_host)
module M = Mac.Make (Os_host)

let rec rm_rf path =
  match (try Some (Sys.is_directory path) with Sys_error _ -> None) with
  | None -> ()
  | Some true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | Some false -> ( try Sys.remove path with Sys_error _ -> ())

(* Build a rooted env on a scratch directory; after [f] the fd table
   must be back to its baseline and the scratch tree is removed. *)
let with_env f =
  let root = Filename.temp_dir "gbp-conf" "" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      match Os_host.create ~root () with
      | Error e -> Alcotest.failf "host env: %s" (Kernel.error_to_string e)
      | Ok env ->
        let baseline = Os_host.open_fd_count env in
        let result =
          Fun.protect
            ~finally:(fun () -> Os_host.shutdown env)
            (fun () ->
              let r = f env root in
              Alcotest.(check int) "no fd leak" baseline
                (Os_host.open_fd_count env);
              r)
        in
        result)

let ok = Gray_apps.Workload.ok_exn
let kib64 = 64 * 1024

let test_env_basics () =
  with_env (fun env _root ->
      let t0 = Os_host.gettime env in
      Os_host.sleep_ns 1_000_000;
      let t1 = Os_host.gettime env in
      Alcotest.(check bool) "clock monotonic" true (t1 >= t0);
      let cap = Os_host.timing_confidence_cap env in
      Alcotest.(check bool) "cap in (0, 1]" true (cap > 0.0 && cap <= 1.0);
      Alcotest.(check bool) "resolution positive" true
        (Os_host.timer_resolution_ns env > 0);
      Alcotest.(check bool) "host is durable" true (Os_host.durability_on env);
      Alcotest.(check bool) "pid sane" true (Os_host.pid env > 0))

let test_files_round_trip () =
  with_env (fun env _root ->
      let paths =
        W.make_files env ~dir:"/data" ~prefix:"f" ~count:6 ~size:kib64
      in
      Alcotest.(check int) "six files" 6 (List.length paths);
      List.iter
        (fun p ->
          let st = ok (Os_host.stat env p) in
          Alcotest.(check int) (p ^ " size") kib64 st.Fs.st_size)
        paths;
      List.iter (fun p -> W.read_file env p) paths;
      Alcotest.(check (list string))
        "readdir sees them"
        (List.sort compare paths)
        (List.sort compare (W.paths_in env ~dir:"/data")))

let test_typed_errors_never_raise () =
  with_env (fun env _root ->
      (match Os_host.open_file env "/data/ghost" with
      | Error (Kernel.Fs_error Fs.Enoent) -> ()
      | Error e -> Alcotest.failf "ghost open: %s" (Kernel.error_to_string e)
      | Ok _ -> Alcotest.fail "ghost opened");
      (match Os_host.stat env "/nowhere/at/all" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ghost stat succeeded");
      ok (Os_host.mkdir env "/data");
      (match Os_host.mkdir env "/data" with
      | Error (Kernel.Fs_error Fs.Eexist) -> ()
      | Error e -> Alcotest.failf "re-mkdir: %s" (Kernel.error_to_string e)
      | Ok _ -> Alcotest.fail "re-mkdir succeeded");
      (* the root jail rejects escapes with a typed Bad_path *)
      (match Os_host.stat env "/../etc/passwd" with
      | Error Kernel.Bad_path -> ()
      | Error e -> Alcotest.failf "escape: %s" (Kernel.error_to_string e)
      | Ok _ -> Alcotest.fail "escape succeeded");
      match Os_host.unlink env "/data/ghost" with
      | Error (Kernel.Fs_error Fs.Enoent) -> ()
      | Error e -> Alcotest.failf "ghost unlink: %s" (Kernel.error_to_string e)
      | Ok () -> Alcotest.fail "ghost unlink succeeded")

let test_fccd_order_files () =
  with_env (fun env _root ->
      let paths =
        W.make_files env ~dir:"/data" ~prefix:"f" ~count:4 ~size:(4 * kib64)
      in
      let config = Fccd.default_config ~seed:3 () in
      let ranked = ok (F.order_files env config ~paths) in
      (* tolerant: the ranking must be a permutation with sane fields;
         which file probes fastest is the host's business *)
      Alcotest.(check (list string))
        "permutation"
        (List.sort compare paths)
        (List.sort compare (List.map (fun r -> r.Fccd.fr_path) ranked));
      List.iter
        (fun r ->
          Alcotest.(check bool) "probe time >= 0" true (r.Fccd.fr_probe_ns >= 0);
          Alcotest.(check int) "size" (4 * kib64) r.Fccd.fr_size)
        ranked)

let test_fccd_plan_reads_everything () =
  with_env (fun env _root ->
      let paths =
        W.make_files env ~dir:"/data" ~prefix:"p" ~count:1 ~size:(8 * kib64)
      in
      let path = List.hd paths in
      let config = Fccd.default_config ~seed:4 () in
      let plan = ok (F.probe_file env config ~path) in
      let fd = ok (Os_host.open_file env path) in
      let got = ref 0 in
      Fun.protect
        ~finally:(fun () -> Os_host.close env fd)
        (fun () ->
          F.read_plan env fd plan ~f:(fun ~off:_ ~len -> got := !got + len));
      Alcotest.(check int) "every byte arrives once" (8 * kib64) !got)

let test_fldc_inumber_and_refresh () =
  with_env (fun env _root ->
      let paths =
        W.make_files env ~dir:"/data" ~prefix:"f" ~count:8 ~size:kib64
      in
      let sorted = ok (L.order_by_inumber env ~paths:(List.rev paths)) in
      Alcotest.(check (list string))
        "inumber order is a permutation"
        (List.sort compare paths)
        (List.sort compare (List.map (fun s -> s.Fldc.so_path) sorted));
      let before =
        List.map (fun p -> (p, (ok (Os_host.stat env p)).Fs.st_size)) paths
      in
      ok (L.refresh_directory env ~dir:"/data" ());
      List.iter
        (fun (p, size) ->
          Alcotest.(check int) (p ^ " size preserved") size
            (ok (Os_host.stat env p)).Fs.st_size)
        before;
      (* parent clean: refresh left no journal, no temp directory *)
      Alcotest.(check (list string))
        "no scratch leftovers" [ "data" ]
        (ok (Os_host.readdir env "/"));
      (* and a repair pass finds nothing to do *)
      Alcotest.(check bool) "nothing to repair" false
        (ok (L.repair env ~parent:"/")))

let test_mac_never_raises () =
  with_env (fun env _root ->
      let config =
        { (Mac.default_config ()) with Mac.initial_increment = 256 * 1024;
          max_increment = 256 * 1024 }
      in
      (* whatever the host's memory situation, the answer is Some/None *)
      (match M.gb_alloc env config ~min:(256 * 1024) ~max:(512 * 1024)
               ~multiple:4096 with
      | Some a ->
        Alcotest.(check bool) "bytes in bounds" true
          (M.bytes a >= 256 * 1024 && M.bytes a <= 512 * 1024);
        let c = M.confidence a in
        Alcotest.(check bool) "confidence in [0, 1]" true (c >= 0.0 && c <= 1.0);
        M.gb_free env a
      | None -> ());
      Alcotest.(check bool) "threshold positive" true
        (M.calibrate_threshold config env > 0))

let test_vmstat_typed_either_way () =
  with_env (fun env _root ->
      match Os_host.vmstat env with
      | Ok v -> Alcotest.(check bool) "counters sane" true (v.Kernel.vm_page_outs >= 0)
      | Error (Kernel.Unsupported _) -> ()
      | Error e -> Alcotest.failf "vmstat: %s" (Kernel.error_to_string e))

let suite =
  [
    Alcotest.test_case "env basics" `Quick test_env_basics;
    Alcotest.test_case "files round trip" `Quick test_files_round_trip;
    Alcotest.test_case "typed errors, never raise" `Quick
      test_typed_errors_never_raise;
    Alcotest.test_case "fccd order_files" `Quick test_fccd_order_files;
    Alcotest.test_case "fccd plan reads everything" `Quick
      test_fccd_plan_reads_everything;
    Alcotest.test_case "fldc inumber + refresh" `Quick
      test_fldc_inumber_and_refresh;
    Alcotest.test_case "mac never raises" `Quick test_mac_never_raises;
    Alcotest.test_case "vmstat typed either way" `Quick
      test_vmstat_typed_either_way;
  ]
