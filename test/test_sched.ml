(* The proportional-share scheduler: the starvation bound that makes a
   fleet of contenders schedulable at all, weighted shares, the
   per-pid-grants-sum-to-total exactness invariant (against the CPU
   resource's own busy time), the late-arrival bound, and the restart
   audit.  All on a 1-CPU noiseless platform so the round-robin algebra
   is exact. *)

open Simos

let quantum = 1_000_000 (* 1 ms *)
let ms = 1_000_000

(* One CPU serialises the run queue; zero noise makes bursts exact. *)
let one_cpu =
  Platform.with_noise { Platform.linux_2_2 with Platform.cpus = 1 } ~sigma:0.0

(* These tests measure the scheduler itself, so they pin the quiet fault
   scenario (the canonical-faults CI pass would otherwise perturb the
   round-robin algebra). *)
let boot ?sched ~seed () =
  let engine = Engine.create () in
  let k =
    Kernel.boot ~engine ~platform:one_cpu ~data_disks:1 ~faults:Fault.quiet
      ?sched ~seed ()
  in
  (engine, k)

let the_sched k = Option.get (Kernel.sched k)

(* Spawn [specs] = [(name, weight, burst_ns)] computing fibers at t=0 and
   return their completion times.  Each body yields for 1 µs before its
   burst: a burst dispatched while its process is the sole participant
   runs whole (the legacy path that keeps a 1-process fleet
   byte-identical to solo), so the round-robin properties govern bursts
   admitted under contention — the yield lets every fiber register
   first. *)
let run_bursts k specs =
  let finish = Array.make (List.length specs) 0 in
  List.iteri
    (fun i (name, weight, ns) ->
      Kernel.spawn k ~name ~weight (fun env ->
          Engine.delay 1_000;
          Kernel.compute env ~ns;
          finish.(i) <- Engine.now (Kernel.engine k)))
    specs;
  Kernel.run k;
  finish

(* ---- the starvation bound --------------------------------------------- *)

(* M equal processes, one CPU: with quantum slicing no process waits
   longer than the other M-1 processes' chunks between its own slices,
   so all completions land within (M-1) quanta of each other.  The
   scheduler-less kernel runs the same bursts FCFS and spreads them by a
   whole burst each — the contrast is the point of having a run queue. *)
let test_starvation_bound () =
  let m = 4 and burst = 10 * ms in
  let specs = List.init m (fun i -> (Printf.sprintf "p%d" i, 1, burst)) in
  let _, k = boot ~sched:{ Sched.sd_quantum_ns = quantum } ~seed:3 () in
  let finish = run_bursts k specs in
  let spread a = Array.fold_left max 0 a - Array.fold_left min max_int a in
  Alcotest.(check bool)
    (Printf.sprintf "sliced spread %d <= (M-1) quanta" (spread finish))
    true
    (spread finish <= (m - 1) * quantum);
  let _, legacy = boot ~seed:3 () in
  let fcfs = run_bursts legacy specs in
  Alcotest.(check bool)
    (Printf.sprintf "FCFS spread %d = (M-1) whole bursts" (spread fcfs))
    true
    (spread fcfs >= (m - 1) * burst)

(* ---- weighted shares --------------------------------------------------- *)

(* Weight w gets a w-quantum chunk per round: with equal bursts the
   weight-3 process must finish well before the weight-1 process, and
   the grant ledger must show the full burst charged to each. *)
let test_weights () =
  let burst = 12 * ms in
  let _, k = boot ~sched:{ Sched.sd_quantum_ns = quantum } ~seed:4 () in
  let finish = run_bursts k [ ("heavy", 3, burst); ("light", 1, burst) ] in
  Alcotest.(check bool)
    (Printf.sprintf "heavy (%d) finishes before light (%d)" finish.(0) finish.(1))
    true
    (finish.(0) < finish.(1));
  let s = the_sched k in
  Alcotest.(check int) "all granted ns accounted" (2 * burst) (Sched.granted_ns s)

(* ---- late arrival ------------------------------------------------------ *)

(* A 1 ms burst arriving in the middle of two long contending bursts
   completes within a few quanta of its arrival instead of waiting the
   incumbents out. *)
let test_late_arrival () =
  let _, k = boot ~sched:{ Sched.sd_quantum_ns = quantum } ~seed:5 () in
  let late_done = ref 0 in
  for i = 0 to 1 do
    Kernel.spawn k ~name:(Printf.sprintf "incumbent%d" i) (fun env ->
        Engine.delay 1_000;
        Kernel.compute env ~ns:(10 * ms))
  done;
  Kernel.spawn k ~name:"late" ~at:(5 * ms) (fun env ->
      Kernel.compute env ~ns:(1 * ms);
      late_done := Engine.now (Kernel.engine k));
  Kernel.run k;
  Alcotest.(check bool)
    (Printf.sprintf "late burst done at %d, not after the incumbents" !late_done)
    true
    (!late_done <= (5 * ms) + (6 * quantum))

(* ---- exactness: per-pid grants sum to the CPU's busy time -------------- *)

(* Random fleets of computing processes (staggered starts, mixed weights
   and burst counts): the scheduler's grant total must equal the CPU
   resource's busy time to the nanosecond, and the per-pid cells must
   sum to the total — no unattributed slice either way. *)
let prop_grants_exact =
  QCheck2.Test.make ~name:"per-pid grants sum to CPU busy-ns" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Gray_util.Rng.create ~seed:(0x5C4D + seed) in
      let _, k = boot ~sched:{ Sched.sd_quantum_ns = quantum } ~seed () in
      let procs = 1 + Gray_util.Rng.int rng 6 in
      for p = 0 to procs - 1 do
        let weight = 1 + Gray_util.Rng.int rng 3 in
        let bursts = 1 + Gray_util.Rng.int rng 4 in
        Kernel.spawn k
          ~name:(Printf.sprintf "p%d" p)
          ~weight
          ~at:(Gray_util.Rng.int rng (3 * ms))
          (fun env ->
            for _ = 1 to bursts do
              Kernel.compute env ~ns:(1 + Gray_util.Rng.int rng (5 * ms));
              Engine.delay (Gray_util.Rng.int rng ms)
            done)
      done;
      Kernel.run k;
      let s = the_sched k in
      let total = Sched.granted_ns s in
      let busy = Kernel.cpu_busy_ns k in
      if total <> busy then
        QCheck2.Test.fail_reportf "granted %d <> cpu busy %d" total busy;
      let per_pid = ref 0 in
      for pid = 0 to procs + 8 do
        per_pid := !per_pid + Sched.granted_of s ~pid
      done;
      if !per_pid <> total then
        QCheck2.Test.fail_reportf "per-pid sum %d <> granted %d" !per_pid total;
      true)

(* ---- restart audit ----------------------------------------------------- *)

let test_restart_resets () =
  let _, k = boot ~sched:Sched.default_config ~seed:6 () in
  ignore (run_bursts k [ ("a", 1, 5 * ms); ("b", 1, 5 * ms) ]);
  let s = the_sched k in
  Alcotest.(check bool) "slices granted" true (Sched.slices s > 0);
  Kernel.restart k;
  Alcotest.(check int) "no slices after restart" 0 (Sched.slices s);
  Alcotest.(check int) "no grants after restart" 0 (Sched.granted_ns s);
  Alcotest.(check int) "no participants after restart" 0 (Sched.participants s);
  ignore (run_bursts k [ ("c", 1, 2 * ms); ("d", 1, 2 * ms) ]);
  Alcotest.(check bool) "rebooted queue grants again" true (Sched.slices s > 0);
  Alcotest.(check int) "rebooted grants exact" (4 * ms) (Sched.granted_ns s)

let suite =
  [
    Alcotest.test_case "starvation bound vs FCFS" `Quick test_starvation_bound;
    Alcotest.test_case "weighted shares" `Quick test_weights;
    Alcotest.test_case "late arrival bound" `Quick test_late_arrival;
    QCheck_alcotest.to_alcotest prop_grants_exact;
    Alcotest.test_case "restart resets the run queue" `Quick test_restart_resets;
  ]
