(* Golden seed-stability: pins the *decisions* each ICL makes — FCCD plan
   orderings (with exact probe times), MAC grant sizes, FLDC refresh/i-number
   orders — for 3 fixed seeds x 3 platform presets.  A hot-path refactor
   that silently shifts RNG-draw order, eviction order, or cost arithmetic
   fails these loudly instead of drifting the figures.

   The pinned strings were captured with GRAYBOX_GOLDEN_REGEN=1 (which
   appends the actual strings to /tmp/golden_actual.txt instead of
   checking) on the tree that produced the committed figures. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

(* Scaled-down versions of the three presets (same layout, same policy,
   same default noise sigma) so each case runs in milliseconds. *)
let platforms =
  [
    ( "linux-2.2",
      { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 } );
    ( "netbsd-1.5",
      {
        Platform.netbsd_1_5 with
        Platform.memory_mib = 128;
        kernel_reserved_mib = 32;
        file_cache = `Fixed_mib 48;
      } );
    ( "solaris-7",
      {
        Platform.solaris_7 with
        Platform.memory_mib = 160;
        kernel_reserved_mib = 32;
        file_cache = `Fixed_mib 40;
      } );
  ]

let seeds = [ 11; 23; 47 ]
let ok = Gray_apps.Workload.ok_exn

(* [Fault.quiet] is bit-identical to no fault plane but shields the pinned
   values from a GRAYBOX_FAULTS=canonical CI pass. *)
let run_proc platform seed body =
  let engine = Engine.create () in
  let k =
    Kernel.boot ~engine ~platform ~data_disks:2 ~seed ~faults:Fault.quiet ()
  in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  Option.get !result

let warm_prefix env path bytes =
  let fd = ok (Kernel.open_file env path) in
  ignore (ok (Kernel.read env fd ~off:0 ~len:bytes));
  Kernel.close env fd

(* 60 MB: bigger than the netbsd (48 MB) and solaris (40 MB) scaled file
   caches and it evicts hard against linux's 64 MB balanced pool — each
   platform's replacement behaviour shapes the plan it pins. *)
let fccd_part env seed =
  Gray_apps.Workload.write_file env "/d0/g" ((60 * mib) + 7);
  Kernel.flush_file_cache (Kernel.kernel_of_env env);
  warm_prefix env "/d0/g" (30 * mib);
  let c = Fccd.default_config ~seed () in
  let c = { c with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib } in
  let plan = ok (Fccd.probe_file env c ~path:"/d0/g") in
  let ext (e, ns) = Printf.sprintf "%d:%d:%d" e.Fccd.ext_off e.Fccd.ext_len ns in
  Printf.sprintf "fccd=[%s];probes=%d;conf=%.6f"
    (String.concat "," (List.map ext plan.Fccd.plan_extents))
    plan.Fccd.plan_probes plan.Fccd.plan_confidence

let mac_part env =
  let c =
    {
      (Mac.default_config ()) with
      Mac.initial_increment = 1 * mib;
      max_increment = 8 * mib;
    }
  in
  match Mac.gb_alloc env c ~min:(2 * mib) ~max:(24 * mib) ~multiple:(1 * mib) with
  | None ->
    let st = Mac.last_stats () in
    Printf.sprintf "mac=none;steps=%d;backoffs=%d" st.Mac.s_steps st.Mac.s_backoffs
  | Some a ->
    let b = Mac.bytes a in
    let st = Mac.last_stats () in
    Mac.gb_free env a;
    Printf.sprintf "mac=%d;steps=%d;backoffs=%d" b st.Mac.s_steps st.Mac.s_backoffs

let fldc_part env =
  ok (Kernel.mkdir env "/d0/dir");
  let paths =
    List.init 12 (fun i ->
        let p = Printf.sprintf "/d0/dir/f%02d" i in
        Gray_apps.Workload.write_file env p (8192 * (1 + (i * 7 mod 5)));
        p)
  in
  let inos ps =
    ok (Fldc.order_by_inumber env ~paths:ps)
    |> List.map (fun s -> string_of_int s.Fldc.so_ino)
    |> String.concat ","
  in
  let pre = inos (List.rev paths) in
  ok (Fldc.refresh_directory env ~dir:"/d0/dir" ());
  let post = inos paths in
  Printf.sprintf "fldc=[%s]->[%s]" pre post

let run_case platform seed =
  run_proc platform seed (fun env ->
      let fccd = fccd_part env seed in
      let mac = mac_part env in
      let fldc = fldc_part env in
      String.concat "|" [ fccd; mac; fldc ])

(* Pinned values: captured with GRAYBOX_GOLDEN_REGEN=1. *)
let golden : ((string * int) * string) list =
  [
    (("linux-2.2", 11), "fccd=[25165824:4194304:7800,20971520:4194304:7800,12582912:4194304:7800,8388608:4194304:8000,0:4194304:8000,16777216:4194304:8100,4194304:4194304:8300,62914560:7:454800,58720256:4194304:14710300,37748736:4194304:14903300,33554432:4194304:14936600,54525952:4194304:15005800,46137344:4194304:15022600,41943040:4194304:15234200,50331648:4194304:16063400,29360128:4194304:150700000];probes=61;conf=0.999483|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("linux-2.2", 23), "fccd=[16777216:4194304:7500,8388608:4194304:7600,4194304:4194304:7800,12582912:4194304:8000,20971520:4194304:8100,25165824:4194304:8200,0:4194304:8200,62914560:7:4814900,29360128:4194304:6349000,54525952:4194304:14021100,50331648:4194304:14551200,41943040:4194304:14943500,58720256:4194304:14957600,37748736:4194304:15197800,33554432:4194304:15487400,46137344:4194304:16166600];probes=61;conf=0.999437|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("linux-2.2", 47), "fccd=[12582912:4194304:7900,25165824:4194304:8000,20971520:4194304:8200,8388608:4194304:8200,4194304:4194304:8200,16777216:4194304:8300,0:4194304:8300,62914560:7:4078700,29360128:4194304:6391400,58720256:4194304:13671600,50331648:4194304:14618100,33554432:4194304:14906400,41943040:4194304:14919800,54525952:4194304:14957200,46137344:4194304:15241500,37748736:4194304:15496700];probes=61;conf=0.999402|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("netbsd-1.5", 11), "fccd=[25165824:4194304:7800,20971520:4194304:7800,12582912:4194304:7800,8388608:4194304:8000,0:4194304:8000,16777216:4194304:8100,4194304:4194304:8300,62914560:7:454800,58720256:4194304:14710300,37748736:4194304:14903300,33554432:4194304:14936600,54525952:4194304:15005700,46137344:4194304:15022600,41943040:4194304:15234200,50331648:4194304:16063500,29360128:4194304:150700000];probes=61;conf=0.999483|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("netbsd-1.5", 23), "fccd=[16777216:4194304:7500,8388608:4194304:7600,4194304:4194304:7800,12582912:4194304:8000,20971520:4194304:8100,0:4194304:8200,25165824:4194304:8300,62914560:7:4814900,29360128:4194304:6348900,54525952:4194304:14021000,50331648:4194304:14551200,41943040:4194304:14943400,58720256:4194304:14957600,37748736:4194304:15197900,33554432:4194304:15487400,46137344:4194304:16166700];probes=61;conf=0.999436|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("netbsd-1.5", 47), "fccd=[12582912:4194304:8000,25165824:4194304:8100,20971520:4194304:8200,16777216:4194304:8200,8388608:4194304:8200,4194304:4194304:8200,0:4194304:8300,62914560:7:4078600,29360128:4194304:6391300,58720256:4194304:13671700,50331648:4194304:14618000,33554432:4194304:14906500,41943040:4194304:14919800,54525952:4194304:14957200,46137344:4194304:15241600,37748736:4194304:15496600];probes=61;conf=0.999401|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("solaris-7", 11), "fccd=[25165824:4194304:7800,20971520:4194304:7800,12582912:4194304:7800,8388608:4194304:7900,16777216:4194304:8100,0:4194304:8100,4194304:4194304:8300,62914560:7:454800,58720256:4194304:14710200,37748736:4194304:14903300,33554432:4194304:14936600,54525952:4194304:15005800,46137344:4194304:15022700,41943040:4194304:15234200,50331648:4194304:16063400,29360128:4194304:150700000];probes=61;conf=0.999483|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("solaris-7", 23), "fccd=[8388608:4194304:7500,16777216:4194304:7600,4194304:4194304:7900,20971520:4194304:8000,12582912:4194304:8000,0:4194304:8200,25165824:4194304:8300,62914560:7:4815000,29360128:4194304:6349000,54525952:4194304:14021000,50331648:4194304:14551200,41943040:4194304:14943400,58720256:4194304:14957600,37748736:4194304:15197900,33554432:4194304:15487300,46137344:4194304:16166700];probes=61;conf=0.999436|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
    (("solaris-7", 47), "fccd=[12582912:4194304:7900,25165824:4194304:8000,20971520:4194304:8200,8388608:4194304:8200,4194304:4194304:8200,16777216:4194304:8300,0:4194304:8300,62914560:7:4078600,29360128:4194304:6391400,58720256:4194304:13671700,50331648:4194304:14618100,33554432:4194304:14906400,41943040:4194304:14919700,54525952:4194304:14957100,46137344:4194304:15241600,37748736:4194304:15496700];probes=61;conf=0.999402|mac=25165824;steps=6;backoffs=0|fldc=[1025,1026,1027,1028,1029,1030,1031,1032,1033,1034,1035,1036]->[2049,2050,2051,2052,2053,2054,2055,2056,2057,2058,2059,2060]");
  ]

let regen = Sys.getenv_opt "GRAYBOX_GOLDEN_REGEN" <> None

let check_case pname platform seed () =
  let actual = run_case platform seed in
  if regen then begin
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 "/tmp/golden_actual.txt"
    in
    Printf.fprintf oc "((%S, %d), %S);\n" pname seed actual;
    close_out oc
  end
  else
    match List.assoc_opt (pname, seed) golden with
    | None -> Alcotest.fail "no pinned value for this case"
    | Some expected ->
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d" pname seed)
        expected actual

let suite =
  List.concat_map
    (fun (pname, platform) ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s/seed-%d" pname seed)
            `Quick
            (check_case pname platform seed))
        seeds)
    platforms
