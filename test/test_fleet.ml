(* The fleet plane's contracts:

   - the differential harness: a 1-process fleet is byte-identical to
     the scheduler-less solo path (same clock, same event count, same
     kernel counters, same ledger export) across randomized seeds;
   - a fleet bench plan renders identically at -j 1 and -j 4;
   - the MAC-convergence regression: a seeded polite 4-MAC fleet
     settles (high late fairness, few reversals) while the seeded
     pathological fleet oscillates — and the two are separated;
   - ledger exit-reaping: reaps shrink the live rows without changing
     the export, and the blame matrix spills past the flat-cap pid
     without losing a count. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let fleet_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 48; kernel_reserved_mib = 32 }
    ~sigma:0.05

let patho_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 24; kernel_reserved_mib = 16 }
    ~sigma:0.05

(* These tests pin regression thresholds and byte-identity, so they pin
   the quiet fault scenario (the canonical-faults CI pass would
   otherwise perturb the measured trajectories). *)
let boot ?platform ?sched ?account ~seed () =
  let engine = Engine.create () in
  let platform = Option.value platform ~default:fleet_platform in
  Kernel.boot ~engine ~platform ~data_disks:1 ~faults:Fault.quiet ?sched
    ?account ~seed ()

(* ---- differential: fleet(1) ≡ solo ------------------------------------ *)

(* Everything observable about a finished kernel, as one comparable
   value: virtual clock, event count, global counters, ledger export. *)
let fingerprint k =
  let e = Kernel.engine k in
  ( Engine.now e,
    Engine.events_processed e,
    Kernel.counters k,
    Gray_util.Json.to_string
      (Account.export_json (Account.export (Option.get (Kernel.account k)))) )

let profile_of_seed seed =
  List.nth Gray_apps.Workload.all_profiles (seed mod 4)

let setup_population k paths_cell =
  Kernel.spawn k ~name:"setup" (fun env ->
      paths_cell :=
        Array.of_list
          (Gray_apps.Workload.make_files env ~dir:"/d0/pop" ~prefix:"f" ~count:6
             ~size:(64 * 1024));
      Kernel.flush_file_cache k);
  Kernel.run k

let member_body ~seed paths ~rng env =
  Gray_apps.Workload.run_profile env rng (profile_of_seed seed) ~paths ~rounds:2

(* The solo path: no scheduler, a plain spawn, the member RNG derived
   exactly as the fleet derives member 0's (the first split of the
   master stream). *)
let solo_run ~seed =
  let k = boot ~account:true ~seed () in
  let paths = ref [||] in
  setup_population k paths;
  let rng = Gray_util.Rng.split (Gray_util.Rng.create ~seed) in
  Kernel.spawn k ~name:"fleet.one" (member_body ~seed !paths ~rng);
  Kernel.run k;
  fingerprint k

let fleet1_run ~seed =
  let d =
    {
      Fleet.default_descriptor with
      Fleet.fd_procs = 1;
      fd_seed = seed;
      fd_reap_every = 1;
    }
  in
  let k = boot ~sched:(Fleet.sched_config d) ~account:true ~seed () in
  let paths = ref [||] in
  setup_population k paths;
  Fleet.spawn_fleet k d
    ~name:(fun _ -> "fleet.one")
    ~body:(fun ~index:_ ~rng env -> member_body ~seed !paths ~rng env)
    ();
  Kernel.run k;
  fingerprint k

let prop_fleet1_is_solo =
  QCheck2.Test.make ~name:"1-process fleet byte-identical to solo" ~count:15
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let s_now, s_ev, s_ctr, s_export = solo_run ~seed in
      let f_now, f_ev, f_ctr, f_export = fleet1_run ~seed in
      if s_now <> f_now then
        QCheck2.Test.fail_reportf "clock differs: solo %d, fleet %d" s_now f_now;
      if s_ev <> f_ev then
        QCheck2.Test.fail_reportf "events differ: solo %d, fleet %d" s_ev f_ev;
      if compare s_ctr f_ctr <> 0 then
        QCheck2.Test.fail_reportf "kernel counters differ (seed %d)" seed;
      if not (String.equal s_export f_export) then
        QCheck2.Test.fail_reportf "ledger export differs:\nsolo  %s\nfleet %s"
          s_export f_export;
      true)

(* ---- fleet bench determinism at any -j --------------------------------- *)

let exec_with_jobs plan jobs =
  let pool = Gray_util.Domain_pool.create ~size:jobs in
  Fun.protect
    ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
    (fun () -> Gray_bench.Bench_common.execute ~pool [ plan ]);
  plan.Gray_bench.Bench_common.p_render ()

let small_fleet_plan () =
  Gray_bench.Fleet_bench.plan_sized ~scale_sizes:[ 8; 24 ] ~headline_procs:24
    ~fccd_probers:[ 1; 2 ] ~trials:2 ()

let test_plan_deterministic () =
  let a = exec_with_jobs (small_fleet_plan ()) 1 in
  let b = exec_with_jobs (small_fleet_plan ()) 4 in
  Alcotest.(check string) "rendered output byte-identical at -j 1 and -j 4"
    a.Gray_bench.Bench_common.rd_output b.Gray_bench.Bench_common.rd_output;
  Alcotest.(check bool) "figures identical" true
    (List.for_all2
       (fun (fa : Gray_bench.Bench_common.figure) (fb : Gray_bench.Bench_common.figure) ->
         fa.fg_name = fb.fg_name && compare fa.fg_value fb.fg_value = 0)
       a.Gray_bench.Bench_common.rd_figures b.Gray_bench.Bench_common.rd_figures);
  Alcotest.(check bool) "checks identical" true
    (a.Gray_bench.Bench_common.rd_checks = b.Gray_bench.Bench_common.rd_checks)

(* ---- MAC convergence regression ---------------------------------------- *)

(* Polite fair-share MACs on a machine the group fits: the fairness
   index must settle.  Seeded, so this is a regression pin, not a
   statistical test. *)
let convergent_macs () =
  let k = boot ~sched:Sched.default_config ~seed:21 () in
  let cfg =
    {
      (Mac.default_config ()) with
      Mac.initial_increment = 1 * mib;
      max_increment = 2 * mib;
    }
  in
  Fleet.mac_fleet k ~config:cfg
    ~max_bytes:(Platform.usable_bytes fleet_platform / 4)
    ~macs:4 ~rounds:6 ~round_ns:(100 * 1_000_000) ()

(* Greedy whole-machine MACs whose group overshoot exceeds usable
   memory every round: the oscillation regime. *)
let pathological_macs () =
  let k = boot ~platform:patho_platform ~sched:Sched.default_config ~seed:22 () in
  let cfg =
    {
      (Mac.default_config ()) with
      Mac.initial_increment = 2 * mib;
      max_increment = 4 * mib;
      headroom = 0.0;
    }
  in
  Fleet.mac_fleet k ~config:cfg ~macs:4 ~rounds:10 ~round_ns:(100 * 1_000_000) ()

let test_mac_convergence () =
  let good = convergent_macs () in
  Alcotest.(check bool)
    (Printf.sprintf "polite fleet settles (late J %.3f)" good.Fleet.mr_late_fairness)
    true
    (good.Fleet.mr_late_fairness >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "polite fleet does not thrash (reversals %.3f)"
       good.Fleet.mr_reversal_rate)
    true
    (good.Fleet.mr_reversal_rate <= 0.2)

let test_mac_oscillation_detected () =
  let bad = pathological_macs () in
  Alcotest.(check bool)
    (Printf.sprintf "overshooting fleet oscillates (reversals %.3f, swing %.3f)"
       bad.Fleet.mr_reversal_rate bad.Fleet.mr_late_swing)
    true
    (bad.Fleet.mr_reversal_rate >= 0.3 || bad.Fleet.mr_late_swing >= 0.2);
  let good = convergent_macs () in
  Alcotest.(check bool)
    (Printf.sprintf "regimes separated (late J %.3f vs %.3f)"
       good.Fleet.mr_late_fairness bad.Fleet.mr_late_fairness)
    true
    (bad.Fleet.mr_late_fairness < good.Fleet.mr_late_fairness)

(* ---- ledger exit-reaping ----------------------------------------------- *)

let export_string a =
  Gray_util.Json.to_string (Account.export_json (Account.export a))

(* Memory-starved contending processes so the blame matrix is non-empty
   when the reap folds it. *)
let test_reap_preserves_export () =
  let k = boot ~platform:patho_platform ~account:true ~seed:31 () in
  let paths = ref [||] in
  setup_population k paths;
  for p = 0 to 5 do
    Kernel.spawn k ~name:(Printf.sprintf "worker%d" (p mod 2)) (fun env ->
        Array.iter (fun path -> Gray_apps.Workload.read_file env path) !paths;
        let r = Kernel.valloc env ~pages:512 in
        ignore (Kernel.touch_pages env r ~first:0 ~count:512);
        Kernel.vfree env r)
  done;
  Kernel.run k;
  let a = Option.get (Kernel.account k) in
  let before = export_string a in
  let live_before = List.length (Account.rows a) in
  Alcotest.(check bool) "rows live before reap" true (live_before >= 7);
  Account.reap a;
  Alcotest.(check string) "export unchanged by reap" before (export_string a);
  Alcotest.(check int) "all exited rows folded" 0 (List.length (Account.rows a));
  Alcotest.(check int) "reaped processes counted" live_before
    (Account.reaped_procs a);
  Alcotest.(check (list (triple int int int))) "live blame cells zeroed" []
    (Account.blame_triples a);
  (* reap is idempotent *)
  Account.reap a;
  Alcotest.(check string) "second reap a no-op" before (export_string a)

(* ---- blame-matrix spill past the flat cap ------------------------------ *)

(* Pure ledger test: pids past the flat-matrix cap (1024) land in the
   spill table, every count survives a round-trip through triples and a
   reap, and nothing is double-counted. *)
let test_blame_spill () =
  let a = Account.create () in
  let n = 1200 in
  let rows =
    Array.init n (fun pid ->
        Account.note_spawn a ~pid ~name:(Printf.sprintf "g%d" (pid mod 3)))
  in
  for pid = 0 to n - 1 do
    (* victims on both sides of the cap, including cap-crossing pairs *)
    Account.note_eviction a ~evictor:rows.(pid) ~victim_pid:((pid + 777) mod n)
  done;
  let triples = Account.blame_triples a in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 triples in
  Alcotest.(check int) "every eviction has a blame cell" n total;
  Alcotest.(check int) "one cell per (evictor, victim) pair" n
    (List.length triples);
  let before = export_string a in
  for pid = 0 to n - 1 do
    Account.note_exit a ~pid
  done;
  Account.reap a;
  Alcotest.(check string) "export survives the spill reap" before
    (export_string a);
  Alcotest.(check int) "all rows folded" 0 (List.length (Account.rows a));
  Alcotest.(check int) "reaped count" n (Account.reaped_procs a)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fleet1_is_solo;
    Alcotest.test_case "fleet plan identical at -j 1 and -j 4" `Slow
      test_plan_deterministic;
    Alcotest.test_case "polite MAC fleet converges" `Quick test_mac_convergence;
    Alcotest.test_case "overshooting MAC fleet oscillates" `Quick
      test_mac_oscillation_detected;
    Alcotest.test_case "exit-reap preserves the export" `Quick
      test_reap_preserves_export;
    Alcotest.test_case "blame matrix spills past the pid cap" `Quick
      test_blame_spill;
  ]
