(* Policy fingerprinting: gray-box identification vs the preset's truth. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

(* small machines so capacity probes stay quick *)
let platform_with ?(file_cache = `Fixed_mib 48) policy =
  Platform.with_noise
    (Platform.with_file_policy
       { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32;
         file_cache }
       policy)
    ~sigma:0.0

(* Fingerprinting decodes the replacement policy from designed probe
   sequences; injected spikes/errors would smear the signature, so these
   tests pin the bit-identical quiet scenario against GRAYBOX_FAULTS. *)
let run_proc platform body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed:606 ~faults:Fault.quiet () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  Option.get !result

let classify platform =
  run_proc platform (fun env ->
      Fingerprint.classify env ~scratch_dir:"/d0" ~capacity_hint:(48 * mib) ())

let test_lru_is_recency () =
  let v = classify (platform_with Replacement.lru) in
  Alcotest.(check string) v.Fingerprint.v_evidence "recency"
    (match v.Fingerprint.v_policy with
    | `Recency -> "recency"
    | `Fifo -> "fifo"
    | `Sticky -> "sticky"
    | `Unknown -> "unknown")

let test_clock_is_recency () =
  let v = classify (platform_with Replacement.clock) in
  Alcotest.(check bool) v.Fingerprint.v_evidence true (v.Fingerprint.v_policy = `Recency)

let test_fifo_is_fifo () =
  let v = classify (platform_with Replacement.fifo) in
  Alcotest.(check bool) v.Fingerprint.v_evidence true (v.Fingerprint.v_policy = `Fifo)

let test_mru_is_sticky () =
  let v = classify (platform_with Replacement.mru_sticky) in
  Alcotest.(check bool) v.Fingerprint.v_evidence true (v.Fingerprint.v_policy = `Sticky)

let test_capacity_estimate () =
  let estimated =
    run_proc
      (platform_with ~file_cache:`Unified Replacement.clock)
      (fun env -> Fingerprint.estimate_capacity env ~scratch_dir:"/d0" ~max_bytes:(192 * mib))
  in
  (* 64 MB usable on this machine *)
  Alcotest.(check bool)
    (Printf.sprintf "estimated %d MB ~ 64 MB" (estimated / mib))
    true
    (estimated >= 32 * mib && estimated <= 96 * mib)

let test_capacity_estimate_fixed () =
  let estimated =
    run_proc (platform_with Replacement.lru) (fun env ->
        Fingerprint.estimate_capacity env ~scratch_dir:"/d0" ~max_bytes:(192 * mib))
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimated %d MB ~ 48 MB fixed cache" (estimated / mib))
    true
    (estimated >= 24 * mib && estimated <= 80 * mib)

let test_scratch_cleanup () =
  let leftovers =
    run_proc (platform_with Replacement.lru) (fun env ->
        ignore (Fingerprint.classify env ~scratch_dir:"/d0" ~capacity_hint:(48 * mib) ());
        Gray_apps.Workload.ok_exn (Kernel.readdir env "/d0"))
  in
  Alcotest.(check (list string)) "no leftovers" [] leftovers

let suite =
  [
    Alcotest.test_case "lru -> recency" `Quick test_lru_is_recency;
    Alcotest.test_case "clock -> recency" `Quick test_clock_is_recency;
    Alcotest.test_case "fifo -> fifo" `Quick test_fifo_is_fifo;
    Alcotest.test_case "mru-sticky -> sticky" `Quick test_mru_is_sticky;
    Alcotest.test_case "capacity estimate (unified)" `Quick test_capacity_estimate;
    Alcotest.test_case "capacity estimate (fixed)" `Quick test_capacity_estimate_fixed;
    Alcotest.test_case "scratch cleanup" `Quick test_scratch_cleanup;
  ]
