(* Toolbox microbenchmarks: gray-box parameter discovery vs the platform's
   true cost model. *)

open Simos
open Graybox_core
open Gray_util

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* Microbenchmark calibration measures the platform's true cost model;
   the bit-identical quiet scenario keeps GRAYBOX_FAULTS out of it. *)
let run_proc body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:202 ~faults:Fault.quiet () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let test_memcopy_measurement () =
  let _, per_page = run_proc (fun env -> Toolbox.measure_memcopy env ~scratch_dir:"/d0") in
  (* true cost: 4096 bytes * 0.007 ns/B ~ 28.7 us per page (plus a small
     syscall share) *)
  let truth = 4096.0 *. tiny_linux.Platform.memcopy_byte_ns in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f ~ true %.0f" per_page truth)
    true
    (per_page > 0.8 *. truth && per_page < 2.0 *. truth)

let test_disk_measurement () =
  let _, (seek, bandwidth) = run_proc (fun env -> Toolbox.measure_disk env ~scratch_dir:"/d0") in
  (* true sustained bandwidth: 4 KB / 200 us = 20 MB/s *)
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth %.1f MB/s" (bandwidth /. 1e6))
    true
    (bandwidth > 10e6 && bandwidth < 25e6);
  (* random single-page read: seek (0.8-10.5 ms) + rotation (3 ms) *)
  Alcotest.(check bool)
    (Printf.sprintf "random access %.1f ms" (seek /. 1e6))
    true
    (seek > 2e6 && seek < 20e6)

let test_page_costs () =
  let _, (zero, touch) = run_proc (fun env -> Toolbox.measure_page_costs env) in
  Alcotest.(check bool)
    (Printf.sprintf "zero-fill %.0f >> touch %.0f" zero touch)
    true
    (zero > 5.0 *. touch);
  Alcotest.(check bool) "zero-fill ~9us" true (zero > 4_000.0 && zero < 20_000.0)

let test_run_all_populates_repo () =
  let _, repo = run_proc (fun env -> Toolbox.run_all env ~scratch_dir:"/d0") in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (Param_repo.mem repo key))
    [
      Param_repo.key_disk_seek_ns;
      Param_repo.key_disk_bandwidth_bytes_per_sec;
      Param_repo.key_memcopy_page_ns;
      Param_repo.key_page_alloc_zero_ns;
      Param_repo.key_cache_hit_read_ns;
      Param_repo.key_cache_miss_read_ns;
      Param_repo.key_access_unit_bytes;
      "fccd.hit_miss_split_ns";
    ];
  let hit = Param_repo.get_exn repo Param_repo.key_cache_hit_read_ns in
  let miss = Param_repo.get_exn repo Param_repo.key_cache_miss_read_ns in
  Alcotest.(check bool)
    (Printf.sprintf "hit %.0f << miss %.0f" hit miss)
    true
    (miss > 50.0 *. hit);
  (* the repo round-trips through its text format *)
  let again = Param_repo.of_string (Param_repo.to_string repo) in
  Alcotest.(check (list string)) "roundtrip keys" (Param_repo.keys repo)
    (Param_repo.keys again);
  (* scratch files cleaned up *)
  ()

let test_scratch_cleanup () =
  let _, leftovers =
    run_proc (fun env ->
        ignore (Toolbox.run_all env ~scratch_dir:"/d0");
        Gray_apps.Workload.ok_exn (Kernel.readdir env "/d0"))
  in
  Alcotest.(check (list string)) "no scratch leftovers" [] leftovers

let test_default_configs_consume_repo () =
  let _, repo = run_proc (fun env -> Toolbox.run_all env ~scratch_dir:"/d0") in
  let fccd = Fccd.default_config ~repo ~seed:1 () in
  Alcotest.(check bool) "access unit from repo" true (fccd.Fccd.access_unit > 0);
  let mac = Mac.default_config ~repo () in
  match mac.Mac.slow_threshold_ns with
  | Some t -> Alcotest.(check bool) "threshold sane" true (t > 1_000 && t < 10_000_000)
  | None -> Alcotest.fail "expected threshold from repo"

let suite =
  [
    Alcotest.test_case "memcopy measurement" `Quick test_memcopy_measurement;
    Alcotest.test_case "disk measurement" `Quick test_disk_measurement;
    Alcotest.test_case "page costs" `Quick test_page_costs;
    Alcotest.test_case "run_all populates repo" `Quick test_run_all_populates_repo;
    Alcotest.test_case "scratch cleanup" `Quick test_scratch_cleanup;
    Alcotest.test_case "default configs consume repo" `Quick
      test_default_configs_consume_repo;
  ]
