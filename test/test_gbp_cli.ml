(* gbp/search/scan odds and ends not covered elsewhere, plus FLDC path
   helpers. *)

open Graybox_core

let test_dirname_basename () =
  Alcotest.(check string) "dirname" "/d0/a" (Fldc.dirname "/d0/a/b");
  Alcotest.(check string) "dirname root" "/" (Fldc.dirname "/x");
  Alcotest.(check string) "basename" "b" (Fldc.basename "/d0/a/b");
  Alcotest.(check string) "basename bare" "x" (Fldc.basename "x")

let test_crash_points_enumeration () =
  Alcotest.(check int) "five points" 5 (List.length Fldc.crash_points);
  Alcotest.(check bool) "includes no-crash" true
    (List.mem Fldc.No_crash Fldc.crash_points)

let test_journal_name_stable () =
  (* the repair scan keys off this prefix; changing it breaks recovery of
     in-flight refreshes across versions *)
  Alcotest.(check string) "journal prefix" ".gb_refresh_journal" Fldc.journal_name

let test_fccd_config_align_validation () =
  let c = Fccd.default_config ~seed:1 () in
  Alcotest.(check bool) "rejects zero" true
    (try
       ignore (Fccd.with_align c 0);
       false
     with Invalid_argument _ -> true);
  let c100 = Fccd.with_align c 100 in
  Alcotest.(check int) "align stored" 100 c100.Fccd.align

let test_fccd_default_config_sizes () =
  let c = Fccd.default_config ~seed:2 () in
  Alcotest.(check int) "access unit 20MB" (20 * 1024 * 1024) c.Fccd.access_unit;
  Alcotest.(check int) "prediction unit 5MB" (5 * 1024 * 1024) c.Fccd.prediction_unit;
  (* repo override *)
  let repo = Gray_util.Param_repo.create () in
  Gray_util.Param_repo.set repo ~key:Gray_util.Param_repo.key_access_unit_bytes
    ~value:(8.0 *. 1024.0 *. 1024.0) ~source:"test";
  let c2 = Fccd.default_config ~repo ~seed:3 () in
  Alcotest.(check int) "repo override" (8 * 1024 * 1024) c2.Fccd.access_unit

let test_mac_default_config () =
  let c = Mac.default_config () in
  Alcotest.(check bool) "no threshold without repo" true (c.Mac.slow_threshold_ns = None);
  Alcotest.(check bool) "headroom sane" true (c.Mac.headroom > 0.0 && c.Mac.headroom < 0.5);
  let repo = Gray_util.Param_repo.create () in
  Gray_util.Param_repo.set repo ~key:Gray_util.Param_repo.key_page_in_ns ~value:9e6
    ~source:"test";
  Gray_util.Param_repo.set repo ~key:Gray_util.Param_repo.key_page_alloc_zero_ns
    ~value:9e3 ~source:"test";
  match (Mac.default_config ~repo ()).Mac.slow_threshold_ns with
  | Some t ->
    (* geometric mean of 9ms and 9us = ~285us *)
    Alcotest.(check bool) "threshold between" true (t > 9_000 && t < 9_000_000)
  | None -> Alcotest.fail "expected threshold"

(* ---- fallback ordering (the degraded gbp pipeline) ---- *)

open Simos

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let in_sim body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:1 ~seed:11 () in
  Kernel.spawn k (fun env -> body env);
  Kernel.run k

let small_config ~seed =
  {
    (Fccd.default_config ~seed ()) with
    Fccd.access_unit = 1 * mib;
    prediction_unit = 256 * 1024;
  }

let test_gbp_fallback_low_confidence () =
  in_sim (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:3
          ~size:(1 * mib)
      in
      (* an impossible bar forces the low-confidence passthrough *)
      let ordered, reason =
        Gbp.best_order_or_fallback env (small_config ~seed:4) ~min_confidence:1.1
          Gbp.Mem ~paths
      in
      Alcotest.(check (list string)) "argument order preserved" paths ordered;
      (match reason with
      | Some (Gbp.Low_confidence c) ->
        Alcotest.(check bool) "confidence in range" true (c >= 0.0 && c <= 1.0)
      | Some r -> Alcotest.failf "wrong reason: %s" (Gbp.fallback_reason_to_string r)
      | None -> Alcotest.fail "expected low-confidence fallback");
      (* the default bar accepts the same ordering *)
      let _, reason0 =
        Gbp.best_order_or_fallback env (small_config ~seed:5) Gbp.Mem ~paths
      in
      Alcotest.(check bool) "no fallback by default" true (reason0 = None))

let test_gbp_fallback_file_mode_error () =
  in_sim (fun env ->
      let paths = [ "/d0/data/ghost1"; "/d0/data/ghost2" ] in
      let ordered, reason =
        Gbp.best_order_or_fallback env (small_config ~seed:6) Gbp.File ~paths
      in
      Alcotest.(check (list string)) "argument order preserved" paths ordered;
      Alcotest.(check bool) "degraded with an error" true
        (match reason with Some (Gbp.Degraded_error _) -> true | _ -> false))

let test_gbp_exit_codes_distinct () =
  let kernel_codes =
    List.map Gbp.exit_code_of_error
      [
        Kernel.Bad_path;
        Kernel.Bad_fd;
        Kernel.Retryable;
        Kernel.Fs_error Fs.Enoent;
        Kernel.Fs_error Fs.Eexist;
        Kernel.Fs_error Fs.Enospc;
        Kernel.Unsupported "vmstat";
      ]
  in
  let all =
    (0 :: 1 :: kernel_codes)
    @ [
        Gbp.exit_export_failed;
        Gbp.exit_crash_recovered;
        Gbp.exit_recovery_failed;
        Gbp.exit_stale;
      ]
  in
  Alcotest.(check int) "all exit codes distinct" (List.length all)
    (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "export failure is 8" 8 Gbp.exit_export_failed;
  Alcotest.(check int) "crash recovered is 9" 9 Gbp.exit_crash_recovered;
  Alcotest.(check int) "recovery failed is 10" 10 Gbp.exit_recovery_failed;
  Alcotest.(check int) "stale budget exhausted is 11" 11 Gbp.exit_stale;
  (* the host additions fold into the same space: an unavailable host
     capability is its own code, the host-only transients/errnos reuse
     the matching sim codes *)
  Alcotest.(check int) "host unavailable is 12" 12 Gbp.exit_host_unavailable;
  Alcotest.(check int) "Unsupported = host unavailable"
    Gbp.exit_host_unavailable
    (Gbp.exit_code_of_error (Kernel.Unsupported "vmstat"));
  Alcotest.(check int) "Timeout retries like Retryable"
    (Gbp.exit_code_of_error Kernel.Retryable)
    (Gbp.exit_code_of_error Kernel.Timeout);
  Alcotest.(check int) "Sys_error lands with the residual fs errors"
    (Gbp.exit_code_of_error (Kernel.Fs_error Fs.Enospc))
    (Gbp.exit_code_of_error (Kernel.Sys_error "EACCES"))

let suite =
  [
    Alcotest.test_case "dirname/basename" `Quick test_dirname_basename;
    Alcotest.test_case "gbp exit codes distinct" `Quick test_gbp_exit_codes_distinct;
    Alcotest.test_case "crash points" `Quick test_crash_points_enumeration;
    Alcotest.test_case "journal name stable" `Quick test_journal_name_stable;
    Alcotest.test_case "fccd align validation" `Quick test_fccd_config_align_validation;
    Alcotest.test_case "fccd default config" `Quick test_fccd_default_config_sizes;
    Alcotest.test_case "mac default config" `Quick test_mac_default_config;
    Alcotest.test_case "gbp fallback on low confidence" `Quick
      test_gbp_fallback_low_confidence;
    Alcotest.test_case "gbp fallback on file-mode error" `Quick
      test_gbp_fallback_file_mode_error;
  ]
