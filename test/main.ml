let () =
  Alcotest.run "graybox"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("cluster", Test_cluster.suite);
      ("correlate", Test_correlate.suite);
      ("util-misc", Test_util_misc.suite);
      ("engine", Test_engine.suite);
      ("disk", Test_disk.suite);
      ("replacement", Test_replacement.suite);
      ("pool-memory", Test_pool.suite);
      ("pool-equiv", Test_pool_equiv.suite);
      ("memory-balanced", Test_memory_balanced.suite);
      ("fs", Test_fs.suite);
      ("kernel", Test_kernel.suite);
      ("toolbox", Test_toolbox.suite);
      ("fccd", Test_fccd.suite);
      ("golden", Test_golden.suite);
      ("fldc", Test_fldc.suite);
      ("mac", Test_mac.suite);
      ("compose-gbp", Test_compose_gbp.suite);
      ("config-misc", Test_gbp_cli.suite);
      ("apps", Test_apps.suite);
      ("fingerprint", Test_fingerprint.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("related", Test_related.suite);
      ("vmm", Test_vmm.suite);
      ("trace", Test_trace.suite);
      ("edge", Test_edge.suite);
      ("faults", Test_faults.suite);
      ("error-paths", Test_error_paths.suite);
      ("pqueue", Test_pqueue.suite);
      ("telemetry", Test_telemetry.suite);
      ("domain-pool", Test_domain_pool.suite);
      ("bench-determinism", Test_bench_determinism.suite);
    ]
