(* Drift plane: install-time validation, strict env parsing, the
   quiet-scenario byte-identity contract, each mutation kind's observable
   runtime effect, stats accounting and determinism under drift. *)

open Simos
open Graybox_core

let mib = 1024 * 1024
let sec = 1_000_000_000
let ms = 1_000_000

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* 16 MiB usable = 4096 pages: small enough that a modest workload fills
   the file cache, so resizes and pressure regimes visibly bite. *)
let cramped_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 24; kernel_reserved_mib = 8 }
    ~sigma:0.0

(* Exact-capacity and clock assertions need a clean instrument:
   [Fault.quiet] is bit-identical to no fault plane and shields these
   tests from GRAYBOX_FAULTS chaos injection. *)
let boot ?drift ?(platform = tiny_linux) ?(seed = 11) () =
  let engine = Engine.create () in
  let k =
    Kernel.boot ~engine ~platform ~data_disks:1 ~seed ~faults:Fault.quiet ?drift ()
  in
  Kernel.start_drift_daemon k;
  (engine, k)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Kernel.error_to_string e)

let scenario ?(name = "test") ?(seed = 3) ?(retouch = 50 * ms) ~horizon events =
  {
    Drift.dr_name = name;
    dr_seed = seed;
    dr_retouch_ns = retouch;
    dr_horizon_ns = horizon;
    dr_events =
      List.map (fun (at, kind) -> { Drift.dv_at_ns = at; dv_kind = kind }) events;
  }

let plane k =
  match Kernel.drift_plane k with
  | Some d -> d
  | None -> Alcotest.fail "expected a drift plane"

let mentions needle msg =
  let nl = String.length needle and ml = String.length msg in
  let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
  at 0

(* ---- install-time validation ---- *)

let test_validation_rejects () =
  let rejects label sc expected_field =
    match Drift.create sc with
    | _ -> Alcotest.failf "%s: accepted a malformed scenario" label
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names %s (got %S)" label expected_field msg)
        true
        (mentions expected_field msg)
  in
  rejects "zero resize factor"
    (scenario ~horizon:(2 * sec) [ (sec, Drift.Cache_resize 0.0) ])
    "dr_events[0].Cache_resize";
  rejects "unknown policy"
    (scenario ~horizon:(2 * sec) [ (sec, Drift.Policy_swap "random") ])
    "dr_events[0].Policy_swap";
  rejects "timer factor 0"
    (scenario ~horizon:(2 * sec) [ (sec, Drift.Timer_scale 0) ])
    "dr_events[0].Timer_scale";
  rejects "pressure above 1"
    (scenario ~horizon:(2 * sec) [ (sec, Drift.Pressure_level 1.5) ])
    "dr_events[0].Pressure_level";
  rejects "non-increasing times"
    (scenario ~horizon:(4 * sec)
       [ (2 * sec, Drift.Timer_scale 2); (sec, Drift.Timer_scale 1) ])
    "dr_events[1].dv_at_ns";
  rejects "event past horizon"
    (scenario ~horizon:sec [ (2 * sec, Drift.Timer_scale 2) ])
    "dr_events[0].dv_at_ns";
  rejects "zero retouch period"
    (scenario ~retouch:0 ~horizon:(2 * sec) [ (sec, Drift.Timer_scale 2) ])
    "dr_retouch_ns";
  rejects "negative horizon" (scenario ~horizon:(-1) []) "dr_horizon_ns";
  (* the presets themselves must stay installable *)
  List.iter
    (fun sc -> ignore (Drift.create sc))
    [ Drift.quiet; Drift.canonical; Drift.heavy ]

let test_of_string_strict () =
  List.iter
    (fun s ->
      match Drift.of_string s with
      | None -> ()
      | Some sc -> Alcotest.failf "%S parsed to %s" s sc.Drift.dr_name)
    [ ""; "none"; " NONE " ];
  List.iter
    (fun (s, expected) ->
      match Drift.of_string s with
      | Some sc -> Alcotest.(check string) s expected sc.Drift.dr_name
      | None -> Alcotest.failf "%S parsed to None" s)
    [
      ("quiet", "quiet");
      ("canonical", "canonical");
      (" Canonical ", "canonical");
      ("HEAVY", "heavy");
    ];
  (match Drift.of_string "bogus" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the variable" true (mentions "GRAYBOX_DRIFT" msg)
  | _ -> Alcotest.fail "bogus value accepted")

let test_of_env () =
  let saved = Sys.getenv_opt "GRAYBOX_DRIFT" in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GRAYBOX_DRIFT" (Option.value saved ~default:""))
    (fun () ->
      Unix.putenv "GRAYBOX_DRIFT" "canonical";
      (match Drift.of_env () with
      | Some sc -> Alcotest.(check string) "env preset" "canonical" sc.Drift.dr_name
      | None -> Alcotest.fail "GRAYBOX_DRIFT=canonical gave None");
      Unix.putenv "GRAYBOX_DRIFT" "none";
      Alcotest.(check bool) "none is None" true (Drift.of_env () = None))

(* ---- the off switch is free ---- *)

(* Same contract as the fault and crash planes: booting with the
   event-free [quiet] scenario — plane installed, daemon a no-op — must
   reproduce the no-plane run bit for bit. *)
let fingerprint ?drift () =
  let engine, k = boot ?drift () in
  let out = ref None in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:4
          ~size:(2 * mib)
      in
      Kernel.flush_file_cache k;
      Gray_apps.Workload.read_file env (List.hd paths);
      let config =
        {
          (Fccd.default_config ~seed:5 ()) with
          Fccd.access_unit = 1 * mib;
          prediction_unit = 256 * 1024;
        }
      in
      let ranked = ok (Fccd.order_files env config ~paths) in
      out := Some (List.map (fun r -> (r.Fccd.fr_path, r.Fccd.fr_probe_ns)) ranked));
  Kernel.run k;
  (Engine.now engine, Kernel.counters k, !out)

let test_quiet_scenario_bit_identical () =
  let saved = Sys.getenv_opt "GRAYBOX_DRIFT" in
  Unix.putenv "GRAYBOX_DRIFT" "none";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "GRAYBOX_DRIFT" (Option.value saved ~default:""))
    (fun () ->
      Alcotest.(check bool)
        "fingerprints equal" true
        (fingerprint () = fingerprint ~drift:Drift.quiet ()))

(* ---- runtime effects, one kind at a time ---- *)

let wait_until env ts =
  let now = Kernel.gettime env in
  if now < ts then Engine.delay (ts - now)

let test_cache_resize () =
  let sc =
    scenario ~horizon:(3 * sec)
      [ (sec, Drift.Cache_resize 0.5); (2 * sec, Drift.Cache_resize 2.0) ]
  in
  let _, k = boot ~drift:sc ~platform:cramped_linux () in
  Kernel.spawn k (fun env ->
      (* fill the 4096-page cache so the shrink has victims to push out *)
      ignore
        (Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:8
           ~size:(2 * mib));
      let cap_before = Introspect.file_cache_capacity_pages k in
      let resident_before = Introspect.resident_file_pages k in
      Alcotest.(check bool) "cache filled" true (resident_before >= cap_before / 2);
      wait_until env (sec + (500 * ms));
      let cap_mid = Introspect.file_cache_capacity_pages k in
      Alcotest.(check int) "halved" (cap_before / 2) cap_mid;
      Alcotest.(check bool) "shrink evicted residents" true
        (Introspect.resident_file_pages k <= cap_mid);
      wait_until env (2 * sec + (500 * ms));
      Alcotest.(check int) "doubled back" cap_before
        (Introspect.file_cache_capacity_pages k));
  Kernel.run k;
  let st = Drift.stats (plane k) in
  Alcotest.(check int) "two events applied" 2 st.Drift.d_events;
  Alcotest.(check int) "both were resizes" 2 st.Drift.d_resizes;
  Alcotest.(check bool) "evictions counted" true (st.Drift.d_evictions > 0)

let test_policy_swap () =
  let sc = scenario ~horizon:(2 * sec) [ (sec, Drift.Policy_swap "fifo") ] in
  let _, k = boot ~drift:sc ~platform:cramped_linux () in
  let pool () = Memory.file_pool (Kernel.memory k) in
  Kernel.spawn k (fun env ->
      ignore
        (Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:2
           ~size:(2 * mib));
      let resident_before = Pool.resident (pool ()) in
      Alcotest.(check string) "boot policy" "clock" (Pool.policy_name (pool ()));
      wait_until env (sec + (500 * ms));
      Alcotest.(check string) "swapped" "fifo" (Pool.policy_name (pool ()));
      (* the swap replaces the recency structure, not the contents *)
      Alcotest.(check int) "residents carried over" resident_before
        (Pool.resident (pool ())));
  Kernel.run k;
  Alcotest.(check int) "one swap" 1 (Drift.stats (plane k)).Drift.d_swaps

let test_timer_scale () =
  let sc =
    scenario ~horizon:(3 * sec)
      [ (sec, Drift.Timer_scale 50); (2 * sec, Drift.Timer_scale 1) ]
  in
  let _, k = boot ~drift:sc () in
  Kernel.spawn k (fun env ->
      wait_until env (500 * ms);
      let a = Kernel.gettime env in
      Engine.delay 100;
      Alcotest.(check bool) "fine clock advances" true (Kernel.gettime env > a);
      wait_until env (sec + (500 * ms));
      Alcotest.(check int) "drift plane factor" 50 (Drift.timer_factor (plane k));
      (* 100 ns platform clock coarsened x50: reads quantise to 5 us *)
      let b = Kernel.gettime env in
      Alcotest.(check int) "coarse quantisation" 0 (b mod 5_000);
      Engine.delay 100;
      Alcotest.(check int) "sub-jiffy delay invisible" b (Kernel.gettime env);
      wait_until env (2 * sec + (500 * ms));
      let c = Kernel.gettime env in
      Engine.delay 100;
      Alcotest.(check bool) "restored clock advances" true (Kernel.gettime env > c));
  Kernel.run k;
  Alcotest.(check int) "two timer changes" 2
    (Drift.stats (plane k)).Drift.d_timer_changes

let test_pressure_regime () =
  let sc =
    scenario ~horizon:(3 * sec)
      [ (sec, Drift.Pressure_level 0.25); (2 * sec, Drift.Pressure_level 0.0) ]
  in
  let _, k = boot ~drift:sc ~platform:cramped_linux () in
  let usable = Platform.usable_pages cramped_linux in
  Kernel.spawn k (fun env ->
      Alcotest.(check int) "no anon at boot" 0 (Memory.resident_anon (Kernel.memory k));
      wait_until env (sec + (500 * ms));
      Alcotest.(check int) "regime holds a quarter of usable" (usable / 4)
        (Memory.resident_anon (Kernel.memory k));
      wait_until env (2 * sec + (500 * ms));
      Alcotest.(check int) "regime released" 0 (Memory.resident_anon (Kernel.memory k)));
  Kernel.run k;
  Alcotest.(check int) "two pressure shifts" 2
    (Drift.stats (plane k)).Drift.d_pressure_shifts

let test_stop_drift () =
  let sc = scenario ~horizon:(2 * sec) [ (sec, Drift.Timer_scale 50) ] in
  let _, k = boot ~drift:sc () in
  Kernel.spawn k (fun _env -> Kernel.stop_drift k);
  Kernel.run k;
  Alcotest.(check bool) "plane stopped" true (Drift.stopped (plane k));
  Alcotest.(check int) "nothing applied" 0 (Drift.stats (plane k)).Drift.d_events;
  Alcotest.(check int) "clock untouched" 1 (Drift.timer_factor (plane k))

(* ---- determinism ---- *)

(* A drifting run is exactly as reproducible as a benign one: same seed,
   same scenario, same virtual end time and counters. *)
let test_deterministic_under_drift () =
  let run () =
    let sc =
      scenario ~horizon:(4 * sec)
        [
          (sec, Drift.Cache_resize 0.5);
          (2 * sec, Drift.Policy_swap "fifo");
          (3 * sec, Drift.Pressure_level 0.3);
        ]
    in
    let engine, k = boot ~drift:sc ~platform:cramped_linux ~seed:21 () in
    Kernel.spawn k (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:6
            ~size:(2 * mib)
        in
        let rec pass n =
          if Kernel.gettime env < 3 * sec + (500 * ms) then begin
            List.iter (Gray_apps.Workload.read_file env) paths;
            Engine.delay (300 * ms);
            pass (n + 1)
          end
        in
        pass 0);
    Kernel.run k;
    (Engine.now engine, Kernel.counters k, Drift.stats (plane k))
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let suite =
  [
    Alcotest.test_case "scenario validation rejects" `Quick test_validation_rejects;
    Alcotest.test_case "of_string strict" `Quick test_of_string_strict;
    Alcotest.test_case "of_env" `Quick test_of_env;
    Alcotest.test_case "quiet scenario is bit-identical" `Quick
      test_quiet_scenario_bit_identical;
    Alcotest.test_case "cache resize applies" `Quick test_cache_resize;
    Alcotest.test_case "policy swap applies" `Quick test_policy_swap;
    Alcotest.test_case "timer scale applies" `Quick test_timer_scale;
    Alcotest.test_case "pressure regime applies" `Quick test_pressure_regime;
    Alcotest.test_case "stop before first event" `Quick test_stop_drift;
    Alcotest.test_case "deterministic under drift" `Quick
      test_deterministic_under_drift;
  ]
