(* The flight recorder: ring semantics, deterministic rendering, and the
   dump-on-trigger payload shape. *)

open Gray_util

let ev ts code pid a b =
  { Flight.ev_ts = ts; ev_code = code; ev_pid = pid; ev_a = a; ev_b = b }

let test_ring_wrap () =
  let t = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record t ~ts:(i * 100) ~code:Flight.Read ~pid:i ~a:0 ~b:0
  done;
  Alcotest.(check int) "total recorded" 10 (Flight.recorded t);
  Alcotest.(check int) "capacity" 4 (Flight.capacity t);
  let evs = Flight.events t in
  Alcotest.(check int) "resident" 4 (List.length evs);
  Alcotest.(check (list int)) "last four, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Flight.ev_pid) evs);
  let last2 = Flight.events ~last:2 t in
  Alcotest.(check (list int)) "last-N trims from the old end" [ 9; 10 ]
    (List.map (fun e -> e.Flight.ev_pid) last2)

let test_reset () =
  let t = Flight.create ~capacity:4 () in
  Flight.record t ~ts:1 ~code:Flight.Evict ~pid:1 ~a:0 ~b:1;
  Flight.reset t;
  Alcotest.(check int) "reset empties" 0 (Flight.recorded t);
  Alcotest.(check int) "no events" 0 (List.length (Flight.events t))

(* Rendering is a pure function of the five integers — the byte-identity
   contract for dumps rests on these exact strings. *)
let test_line_rendering () =
  let check_line name expected e =
    Alcotest.(check string) name expected (Flight.line_of e)
  in
  check_line "syscall with boundary" "[1200] pid=3 read @7"
    (ev 1200 Flight.Read 3 7 0);
  check_line "syscall without boundary" "[0] pid=1 mkdir" (ev 0 Flight.Mkdir 1 0 0);
  check_line "file eviction" "[50] pid=2 evict victim=file dirty"
    (ev 50 Flight.Evict 2 0 1);
  check_line "anon eviction" "[60] pid=2 evict victim=pid4"
    (ev 60 Flight.Evict 2 4 0);
  check_line "fault" "[70] pid=5 fault target=1" (ev 70 Flight.Fault 5 1 0);
  check_line "drift" "[80] pid=6 drift timer_scale arg=1000"
    (ev 80 Flight.Drift 6 2 1000);
  check_line "phase" "[90] pid=7 icl.stale icl=1" (ev 90 Flight.Stale 7 1 0)

let test_dump_shape () =
  let t = Flight.create ~capacity:8 () in
  Flight.record t ~ts:10 ~code:Flight.Open ~pid:1 ~a:1 ~b:0;
  Flight.record t ~ts:20 ~code:Flight.Close ~pid:1 ~a:2 ~b:0;
  let d = Flight.dump t in
  Alcotest.(check bool) "header present" true
    (String.length d > 0
    && String.sub d 0 16 = "flight recorder:");
  Alcotest.(check int) "one line per event + header" 3
    (List.length (String.split_on_char '\n' (String.trim d)))

(* The dense code index is the shared vocabulary with [Simos.Account]:
   it must cover 0 .. code_count-1 with no collisions, and the syscall
   prefix must be contiguous from 0. *)
let all_codes =
  Flight.
    [
      Open; Create; Close; Read; Write; Mkdir; Unlink; Rename; Readdir; Stat;
      Utimes; Fsync; Sync; Write_blob; Read_blob; Valloc; Vfree; Vrelease;
      Touch; Vmstat; Compute; Evict; Fault; Disturb; Pressure; Drift; Stale;
      Recalibrated; Exhausted;
    ]

let test_code_index () =
  Alcotest.(check int) "vocabulary size" Flight.code_count
    (List.length all_codes);
  let idxs = List.map Flight.code_index all_codes in
  Alcotest.(check (list int)) "dense 0-based index"
    (List.init Flight.code_count Fun.id)
    (List.sort compare idxs);
  List.iter
    (fun c ->
      let i = Flight.code_index c in
      Alcotest.(check bool)
        (Printf.sprintf "%s syscall prefix" (Flight.code_name c))
        (i <= Flight.code_index Flight.Compute)
        (Flight.is_syscall c))
    all_codes

let suite =
  [
    Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "line rendering" `Quick test_line_rendering;
    Alcotest.test_case "dump shape" `Quick test_dump_shape;
    Alcotest.test_case "code index" `Quick test_code_index;
  ]
