(* Adaptive layer: watchdog lifecycle and staleness accounting, the
   bounded re-calibration budget, and the MAC/FCCD wrappers healing
   themselves under environment drift. *)

open Simos
open Graybox_core

let mib = 1024 * 1024
let sec = 1_000_000_000
let ms = 1_000_000

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* Calibration-exactness assertions need a clean instrument:
   [Fault.quiet] shields these tests from GRAYBOX_FAULTS chaos
   injection (the fault benches cover adaptive-under-noise). *)
let boot ?drift ?(seed = 77) () =
  let engine = Engine.create () in
  let k =
    Kernel.boot ~engine ~platform:tiny_linux ~data_disks:1 ~seed ~faults:Fault.quiet
      ?drift ()
  in
  Kernel.start_drift_daemon k;
  k

let run_proc ?drift ?seed body =
  let k = boot ?drift ?seed () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  Option.get !result

let small_mac =
  {
    (Mac.default_config ()) with
    Mac.initial_increment = 2 * mib;
    max_increment = 8 * mib;
  }

let fccd_config ~seed =
  {
    (Fccd.default_config ~seed ()) with
    Fccd.access_unit = 1 * mib;
    prediction_unit = 256 * 1024;
  }

(* the EMA becomes "the newest sample" so transitions are exact *)
let sharp = { Adaptive.default_config with Adaptive.alpha = 1.0 }

let wait_until env ts =
  let now = Kernel.gettime env in
  if now < ts then Engine.delay (ts - now)

(* one-second jumps so the drift timer event lands between observations *)
let timer_drift =
  {
    Drift.dr_name = "timer-only";
    dr_seed = 5;
    dr_retouch_ns = 100 * ms;
    dr_horizon_ns = 2 * sec;
    dr_events = [ { Drift.dv_at_ns = sec; dv_kind = Drift.Timer_scale 1000 } ];
  }

(* ---- watchdog core ---- *)

let test_config_validation () =
  let rejects label config field =
    match Adaptive.watchdog ~config "t" with
    | _ -> Alcotest.failf "%s: accepted" label
    | exception Invalid_argument msg ->
      let contains needle msg =
        let nl = String.length needle and ml = String.length msg in
        let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s names %s (got %S)" label field msg)
        true (contains field msg)
  in
  let d = Adaptive.default_config in
  rejects "alpha 0" { d with Adaptive.alpha = 0.0 } "alpha";
  rejects "alpha above 1" { d with Adaptive.alpha = 1.5 } "alpha";
  rejects "threshold above 1" { d with Adaptive.stale_threshold = 1.1 } "stale_threshold";
  rejects "negative warmup" { d with Adaptive.warmup = -1 } "warmup";
  rejects "negative budget" { d with Adaptive.recal_budget = -1 } "recal_budget";
  rejects "prior above 1" { d with Adaptive.prior_weight = 2.0 } "prior_weight"

let test_watchdog_lifecycle () =
  let w = Adaptive.watchdog ~config:sharp "t" in
  Alcotest.(check bool) "fresh at birth" true (Adaptive.status w = Adaptive.Fresh);
  Alcotest.(check (float 0.0)) "optimistic before samples" 1.0 (Adaptive.health w);
  Adaptive.observe w ~now_ns:0 1.0;
  Alcotest.(check bool) "healthy sample stays fresh" true
    (Adaptive.status w = Adaptive.Fresh);
  (* sample 2 is past warmup (1), and with alpha 1 the EMA is the sample *)
  Adaptive.observe w ~now_ns:sec 0.2;
  Alcotest.(check bool) "collapse flags stale" true
    (Adaptive.status w = Adaptive.Stale);
  Alcotest.(check int) "open interval not yet accounted" 0 (Adaptive.stale_ns w);
  Adaptive.observe w ~now_ns:(3 * sec) 0.9;
  Alcotest.(check bool) "recovery returns fresh" true
    (Adaptive.status w = Adaptive.Fresh);
  Alcotest.(check int) "stale interval accounted" (2 * sec) (Adaptive.stale_ns w);
  (* a re-calibration restarts the EMA seeded with the closing health *)
  Adaptive.observe w ~now_ns:(4 * sec) 0.1;
  Alcotest.(check bool) "claims budget" true (Adaptive.begin_recalibration w);
  Adaptive.end_recalibration w ~now_ns:(5 * sec) ~health:1.0;
  Alcotest.(check int) "one recalibration" 1 (Adaptive.recalibrations w);
  Alcotest.(check bool) "fresh after recalibration" true
    (Adaptive.status w = Adaptive.Fresh);
  Alcotest.(check int) "ema restarted" 1 (Adaptive.samples w);
  Alcotest.(check (float 0.0)) "seeded health" 1.0 (Adaptive.health w);
  Alcotest.(check int) "second interval accounted" (3 * sec) (Adaptive.stale_ns w)

let test_warmup_suppresses_detection () =
  let w =
    Adaptive.watchdog ~config:{ sharp with Adaptive.warmup = 5 } "t"
  in
  for i = 1 to 5 do
    Adaptive.observe w ~now_ns:(i * sec) 0.0;
    Alcotest.(check bool)
      (Printf.sprintf "sample %d still warming up" i)
      true
      (Adaptive.status w = Adaptive.Fresh)
  done;
  Adaptive.observe w ~now_ns:(6 * sec) 0.0;
  Alcotest.(check bool) "sample 6 flags stale" true
    (Adaptive.status w = Adaptive.Stale)

let test_budget_exhaustion_is_permanent () =
  let w =
    Adaptive.watchdog ~config:{ sharp with Adaptive.recal_budget = 1 } "t"
  in
  Adaptive.observe w ~now_ns:0 1.0;
  Adaptive.observe w ~now_ns:sec 0.0;
  Alcotest.(check bool) "first claim succeeds" true (Adaptive.begin_recalibration w);
  Adaptive.end_recalibration w ~now_ns:(2 * sec) ~health:1.0;
  Adaptive.observe w ~now_ns:(3 * sec) 0.0;
  Alcotest.(check bool) "second claim refused" false (Adaptive.begin_recalibration w);
  Alcotest.(check bool) "now exhausted" true
    (Adaptive.status w = Adaptive.Exhausted);
  (* exhaustion is terminal: healthy samples cannot resurrect the budget *)
  Adaptive.observe w ~now_ns:(4 * sec) 1.0;
  Alcotest.(check bool) "still exhausted" true
    (Adaptive.status w = Adaptive.Exhausted);
  Alcotest.(check bool) "still refused" false (Adaptive.begin_recalibration w);
  Alcotest.(check int) "budget spent once" 1 (Adaptive.recalibrations w)

(* ---- MAC wrapper under timer drift ---- *)

let mac_alloc_ok env m =
  match Adaptive.mac_alloc env m ~min:(2 * mib) ~max:(8 * mib) ~multiple:100 with
  | Ok (Some a) -> Mac.gb_free env a
  | Ok None -> Alcotest.fail "idle machine refused a small grant"
  | Error `Stale_budget_exhausted -> Alcotest.fail "unexpected exhaustion"

let test_mac_recalibrates_after_timer_drift () =
  let thr0, thr1, recals, final_status =
    run_proc ~drift:timer_drift (fun env ->
        let m = Adaptive.mac env ~mac_config:small_mac in
        let thr0 = Adaptive.mac_threshold_ns m in
        mac_alloc_ok env m;
        Alcotest.(check int) "no recalibration while benign" 0
          (Adaptive.recalibrations (Adaptive.mac_watchdog m));
        wait_until env (sec + (500 * ms));
        (* the 1000x jiffy makes every resident touch read >= 100 us,
           far above the ~90 us boot-time threshold: the spot check
           collapses and the wrapper must re-learn, not refuse *)
        mac_alloc_ok env m;
        ( thr0,
          Adaptive.mac_threshold_ns m,
          Adaptive.recalibrations (Adaptive.mac_watchdog m),
          Adaptive.status (Adaptive.mac_watchdog m) ))
  in
  Alcotest.(check bool) "exactly one recalibration" true (recals >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "threshold moved up (%d -> %d)" thr0 thr1)
    true (thr1 > thr0);
  Alcotest.(check bool) "fresh after healing" true (final_status = Adaptive.Fresh)

let test_mac_budget_zero_degrades () =
  let r, status =
    run_proc ~drift:timer_drift (fun env ->
        let m =
          Adaptive.mac
            ~config:{ Adaptive.default_config with Adaptive.recal_budget = 0 }
            env ~mac_config:small_mac
        in
        mac_alloc_ok env m;
        wait_until env (sec + (500 * ms));
        let r = Adaptive.mac_alloc env m ~min:(2 * mib) ~max:(8 * mib) ~multiple:100 in
        (r, Adaptive.status (Adaptive.mac_watchdog m)))
  in
  (match r with
  | Error `Stale_budget_exhausted -> ()
  | Ok _ -> Alcotest.fail "no budget yet the wrapper claimed to heal");
  Alcotest.(check bool) "exhausted" true (status = Adaptive.Exhausted)

(* ---- FCCD wrapper ---- *)

(* Six files; evens made resident, odds cold.  The wrapper seeds its
   estimates from that world, then the world inverts (flush, read the
   odds).  The first spot check lands on {f0, f1, f2}, sees the inversion,
   flags stale and triggers a full re-probe. *)
let fccd_setup env =
  let paths =
    Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:6
      ~size:(2 * mib)
  in
  let arr = Array.of_list paths in
  Kernel.flush_file_cache (Kernel.kernel_of_env env);
  List.iteri
    (fun i p -> if i mod 2 = 0 then Gray_apps.Workload.read_file env p)
    paths;
  (paths, arr)

let invert_world env paths =
  Kernel.flush_file_cache (Kernel.kernel_of_env env);
  List.iteri
    (fun i p -> if i mod 2 = 1 then Gray_apps.Workload.read_file env p)
    paths

let test_fccd_reorders_after_inversion () =
  run_proc (fun env ->
      let paths, arr = fccd_setup env in
      let f =
        match
          Adaptive.fccd
            ~config:{ sharp with Adaptive.warmup = 0 }
            env ~fccd_config:(fccd_config ~seed:31) ~paths
        with
        | Ok f -> f
        | Error e -> Alcotest.failf "seed probe failed: %s" (Kernel.error_to_string e)
      in
      Alcotest.(check int) "one estimate per file" 6
        (List.length (Adaptive.fccd_estimates f));
      (* the seeded estimates already know evens are the fast ones *)
      (match Adaptive.fccd_order env f with
      | Ok order ->
        Alcotest.(check (list string))
          "order is a permutation" (List.sort compare paths) (List.sort compare order)
      | Error _ -> Alcotest.fail "benign ordering failed");
      invert_world env paths;
      match Adaptive.fccd_order env f with
      | Ok order ->
        let wd = Adaptive.fccd_watchdog f in
        Alcotest.(check bool) "staleness repaired by reprobe" true
          (Adaptive.recalibrations wd >= 1);
        Alcotest.(check bool) "fresh after reprobe" true
          (Adaptive.status wd = Adaptive.Fresh);
        let pos p =
          let rec go i = function
            | [] -> Alcotest.failf "%s missing from order" p
            | q :: _ when q = p -> i
            | _ :: tl -> go (i + 1) tl
          in
          go 0 order
        in
        (* the healed ordering tracks the new world: a now-resident odd
           file ranks ahead of its now-cold even neighbour *)
        Alcotest.(check bool) "f1 before f0 after inversion" true
          (pos arr.(1) < pos arr.(0))
      | Error `Stale_budget_exhausted -> Alcotest.fail "budget spent too fast"
      | Error (`Kernel e) -> Alcotest.failf "reprobe failed: %s" (Kernel.error_to_string e))

let test_fccd_budget_zero_degrades () =
  run_proc (fun env ->
      let paths, _ = fccd_setup env in
      let f =
        match
          Adaptive.fccd
            ~config:{ sharp with Adaptive.warmup = 0; recal_budget = 0 }
            env ~fccd_config:(fccd_config ~seed:33) ~paths
        with
        | Ok f -> f
        | Error e -> Alcotest.failf "seed probe failed: %s" (Kernel.error_to_string e)
      in
      invert_world env paths;
      (match Adaptive.fccd_order env f with
      | Error `Stale_budget_exhausted -> ()
      | Ok _ -> Alcotest.fail "no budget yet the wrapper claimed to heal"
      | Error (`Kernel e) -> Alcotest.failf "wrong error: %s" (Kernel.error_to_string e));
      Alcotest.(check bool) "exhausted" true
        (Adaptive.status (Adaptive.fccd_watchdog f) = Adaptive.Exhausted))

(* ---- determinism ---- *)

let test_adaptive_deterministic () =
  let run () =
    run_proc ~drift:timer_drift ~seed:91 (fun env ->
        let m = Adaptive.mac env ~mac_config:small_mac in
        mac_alloc_ok env m;
        wait_until env (sec + (500 * ms));
        mac_alloc_ok env m;
        ( Adaptive.mac_threshold_ns m,
          Adaptive.recalibrations (Adaptive.mac_watchdog m),
          Adaptive.stale_ns (Adaptive.mac_watchdog m),
          Kernel.gettime env ))
  in
  Alcotest.(check bool) "two healed runs identical" true (run () = run ())

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "watchdog lifecycle" `Quick test_watchdog_lifecycle;
    Alcotest.test_case "warmup suppresses detection" `Quick
      test_warmup_suppresses_detection;
    Alcotest.test_case "budget exhaustion is permanent" `Quick
      test_budget_exhaustion_is_permanent;
    Alcotest.test_case "mac recalibrates after timer drift" `Quick
      test_mac_recalibrates_after_timer_drift;
    Alcotest.test_case "mac budget zero degrades" `Quick test_mac_budget_zero_degrades;
    Alcotest.test_case "fccd reorders after inversion" `Quick
      test_fccd_reorders_after_inversion;
    Alcotest.test_case "fccd budget zero degrades" `Quick
      test_fccd_budget_zero_degrades;
    Alcotest.test_case "adaptive deterministic" `Quick test_adaptive_deterministic;
  ]
