(* Kernel: syscall semantics, caching, paging, timing shapes. *)

open Simos

let mib = 1024 * 1024
let kib4 = 4096

(* A scaled-down noiseless Linux for fast, exact tests: 96 MB physical,
   64 MB usable. *)
let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let boot ?faults ?(platform = tiny_linux) ?(data_disks = 2) () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform ~data_disks ~seed:11 ?faults ()

(* [~faults:Fault.quiet] (bit-identical to no plane) is for tests whose
   timing thresholds cannot tolerate GRAYBOX_FAULTS chaos injection. *)
let run_proc ?faults ?platform ?data_disks body =
  let k = boot ?faults ?platform ?data_disks () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  match !result with
  | Some v -> (k, v)
  | None -> Alcotest.fail "process did not finish"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Kernel.error_to_string e)

let make_file env path size =
  let fd = ok (Kernel.create_file env path) in
  ignore (ok (Kernel.write env fd ~off:0 ~len:size));
  Kernel.close env fd

let timed env f =
  let t0 = Kernel.gettime env in
  let r = f () in
  (r, Kernel.gettime env - t0)

(* ---- basic file I/O ---- *)

let test_create_write_read () =
  let _, () =
    run_proc (fun env ->
        make_file env "/d0/a" (100 * kib4);
        let fd = ok (Kernel.open_file env "/d0/a") in
        Alcotest.(check int) "size" (100 * kib4) (Kernel.file_size env fd);
        Alcotest.(check int) "full read" (100 * kib4)
          (ok (Kernel.read env fd ~off:0 ~len:(100 * kib4)));
        Alcotest.(check int) "short read" kib4
          (ok (Kernel.read env fd ~off:(99 * kib4) ~len:(8 * kib4)));
        Alcotest.(check int) "past end" 0 (ok (Kernel.read env fd ~off:(200 * kib4) ~len:1));
        Kernel.close env fd)
  in
  ()

let test_bad_fd_and_path () =
  let _, () =
    run_proc (fun env ->
        (match Kernel.open_file env "/nope" with
        | Error Kernel.Bad_path -> ()
        | _ -> Alcotest.fail "expected Bad_path");
        (match Kernel.open_file env "/d0/missing" with
        | Error (Kernel.Fs_error Fs.Enoent) -> ()
        | _ -> Alcotest.fail "expected Enoent");
        match Kernel.read env 99 ~off:0 ~len:1 with
        | Error Kernel.Bad_fd -> ()
        | _ -> Alcotest.fail "expected Bad_fd")
  in
  ()

let test_volumes_are_separate () =
  let _, () =
    run_proc (fun env ->
        make_file env "/d0/a" kib4;
        (match Kernel.open_file env "/d1/a" with
        | Error (Kernel.Fs_error Fs.Enoent) -> ()
        | _ -> Alcotest.fail "volumes must be independent");
        make_file env "/d1/a" kib4)
  in
  ()

let test_cold_vs_warm_read () =
  let _, (cold, warm) =
    run_proc (fun env ->
        make_file env "/d0/a" (4 * mib);
        let k = Kernel.kernel_of_env env in
        Kernel.flush_file_cache k;
        let fd = ok (Kernel.open_file env "/d0/a") in
        let _, cold = timed env (fun () -> ok (Kernel.read env fd ~off:0 ~len:(4 * mib))) in
        let _, warm = timed env (fun () -> ok (Kernel.read env fd ~off:0 ~len:(4 * mib))) in
        Kernel.close env fd;
        (cold, warm))
  in
  (* disk ~20 MB/s vs memcopy ~150 MB/s: expect roughly 7x *)
  Alcotest.(check bool)
    (Printf.sprintf "cold %dns >> warm %dns" cold warm)
    true
    (cold > 4 * warm)

let test_probe_is_destructive () =
  (* The Heisenberg effect: a 1-byte read faults in the whole page. *)
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/a" (16 * kib4);
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        let fd = ok (Kernel.open_file env "/d0/a") in
        ignore (ok (Kernel.read env fd ~off:(5 * kib4) ~len:1));
        Kernel.close env fd)
  in
  let bitmap = match Introspect.cache_bitmap k ~path:"/d0/a" with
    | Ok b -> b
    | Error _ -> Alcotest.fail "bitmap"
  in
  Alcotest.(check bool) "probed page resident" true bitmap.(5);
  Alcotest.(check bool) "neighbour not resident" false bitmap.(6);
  Alcotest.(check int) "exactly one page" 1
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 bitmap)

let test_lru_worst_case_scan () =
  (* file ~2x the cache: repeated linear scans miss every page
     (Section 4.1, "LRU worst-case mode"). *)
  let k, () =
    run_proc (fun env ->
        let file_bytes = 120 * mib in
        make_file env "/d0/big" file_bytes;
        let k = Kernel.kernel_of_env env in
        Kernel.flush_file_cache k;
        let fd = ok (Kernel.open_file env "/d0/big") in
        let scan () =
          let unit_bytes = 4 * mib in
          let off = ref 0 in
          while !off < file_bytes do
            ignore (ok (Kernel.read env fd ~off:!off ~len:unit_bytes));
            off := !off + unit_bytes
          done
        in
        scan ();
        Kernel.reset_counters k;
        scan ();
        Kernel.close env fd)
  in
  let c = Kernel.counters k in
  (* second scan should re-fetch essentially everything *)
  Alcotest.(check bool)
    (Printf.sprintf "refetched %d pages" c.Kernel.c_file_fetches)
    true
    (c.Kernel.c_file_fetches > 120 * mib / kib4 * 9 / 10)

let test_small_file_fits_cache () =
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/small" (8 * mib);
        let k = Kernel.kernel_of_env env in
        Kernel.flush_file_cache k;
        let fd = ok (Kernel.open_file env "/d0/small") in
        ignore (ok (Kernel.read env fd ~off:0 ~len:(8 * mib)));
        Kernel.reset_counters k;
        ignore (ok (Kernel.read env fd ~off:0 ~len:(8 * mib)));
        Kernel.close env fd)
  in
  let c = Kernel.counters k in
  Alcotest.(check int) "no refetch" 0 c.Kernel.c_file_fetches

let test_write_then_read_cached () =
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/a" (2 * mib);
        let k = Kernel.kernel_of_env env in
        Kernel.reset_counters k;
        let fd = ok (Kernel.open_file env "/d0/a") in
        ignore (ok (Kernel.read env fd ~off:0 ~len:(2 * mib)));
        Kernel.close env fd)
  in
  let c = Kernel.counters k in
  Alcotest.(check int) "written data still cached" 0 c.Kernel.c_file_fetches

let test_stat_caches_inode () =
  let _, (first, second) =
    run_proc ~faults:Fault.quiet (fun env ->
        make_file env "/d0/a" kib4;
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        let _, first = timed env (fun () -> ok (Kernel.stat env "/d0/a")) in
        let _, second = timed env (fun () -> ok (Kernel.stat env "/d0/a")) in
        (first, second))
  in
  Alcotest.(check bool)
    (Printf.sprintf "cold stat %dns is a disk access, warm %dns is not" first second)
    true
    (first > 1_000_000 && second < 100_000)

let test_stat_reports_ino_and_size () =
  let _, () =
    run_proc (fun env ->
        make_file env "/d0/x" (3 * kib4);
        let st = ok (Kernel.stat env "/d0/x") in
        Alcotest.(check int) "size" (3 * kib4) st.Fs.st_size;
        Alcotest.(check bool) "not dir" false st.Fs.st_is_dir;
        let st2 = ok (Kernel.stat env "/d0") in
        Alcotest.(check bool) "root is dir" true st2.Fs.st_is_dir)
  in
  ()

let test_namespace_syscalls () =
  let _, () =
    run_proc (fun env ->
        ok (Kernel.mkdir env "/d0/dir");
        make_file env "/d0/dir/a" kib4;
        make_file env "/d0/dir/b" kib4;
        let names = List.sort compare (ok (Kernel.readdir env "/d0/dir")) in
        Alcotest.(check (list string)) "readdir" [ "a"; "b" ] names;
        ok (Kernel.rename env ~src:"/d0/dir/a" ~dst:"/d0/dir/c");
        ok (Kernel.unlink env "/d0/dir/b");
        let names = ok (Kernel.readdir env "/d0/dir") in
        Alcotest.(check (list string)) "after rename+unlink" [ "c" ] names;
        ok (Kernel.utimes env "/d0/dir/c" ~atime:5 ~mtime:6);
        let st = ok (Kernel.stat env "/d0/dir/c") in
        Alcotest.(check int) "mtime" 6 st.Fs.st_mtime)
  in
  ()

let test_unlink_invalidates_cache () =
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/a" (4 * mib);
        ok (Kernel.unlink env "/d0/a"))
  in
  (* only inode-table (metadata) pages may remain *)
  Alcotest.(check bool) "data pages gone" true (Introspect.resident_file_pages k < 4)

(* ---- memory ---- *)

let test_touch_zero_fill_then_resident () =
  let _, (first, second) =
    run_proc (fun env ->
        let r = Kernel.valloc env ~pages:64 in
        let first = Kernel.touch_pages env r ~first:0 ~count:64 in
        let second = Kernel.touch_pages env r ~first:0 ~count:64 in
        Kernel.vfree env r;
        (first, second))
  in
  let mean a = Array.fold_left ( + ) 0 a / Array.length a in
  Alcotest.(check bool)
    (Printf.sprintf "zero-fill %dns > resident %dns" (mean first) (mean second))
    true
    (mean first > 3 * mean second)

let test_overcommit_pages_out () =
  let k, observed =
    run_proc (fun env ->
        (* 64 MB usable; allocate 80 MB and touch it all *)
        let pages = 80 * mib / kib4 in
        let r = Kernel.valloc env ~pages in
        let times = Kernel.touch_pages env r ~first:0 ~count:pages in
        (* touch the first pages again: they were evicted and must page in *)
        let again = Kernel.touch_pages env r ~first:0 ~count:16 in
        Kernel.vfree env r;
        (times, again))
  in
  let times, again = observed in
  ignore times;
  let c = Kernel.counters k in
  Alcotest.(check bool) "paged out" true (c.Kernel.c_page_outs > 0);
  Alcotest.(check bool) "paged in" true (c.Kernel.c_page_ins >= 16);
  let mean a = Array.fold_left ( + ) 0 a / Array.length a in
  Alcotest.(check bool) "page-ins are slow (ms)" true (mean again > 1_000_000)

let test_fit_no_paging () =
  let k, () =
    run_proc (fun env ->
        let pages = 32 * mib / kib4 in
        let r = Kernel.valloc env ~pages in
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        Kernel.vfree env r)
  in
  let c = Kernel.counters k in
  Alcotest.(check int) "no page-outs" 0 c.Kernel.c_page_outs;
  Alcotest.(check int) "no page-ins" 0 c.Kernel.c_page_ins

let test_anon_pressure_shrinks_file_cache () =
  (* unified layout: file pages yield to anonymous demand *)
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/a" (32 * mib);
        let before = Introspect.resident_file_pages (Kernel.kernel_of_env env) in
        Alcotest.(check bool) "file pages resident" true (before > 0);
        let pages = 60 * mib / kib4 in
        let r = Kernel.valloc env ~pages in
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        Kernel.vfree env r)
  in
  ignore k

let test_vfree_releases () =
  let k, pid =
    run_proc (fun env ->
        let r = Kernel.valloc env ~pages:1024 in
        ignore (Kernel.touch_pages env r ~first:0 ~count:1024);
        Kernel.vfree env r;
        Kernel.pid env)
  in
  Alcotest.(check int) "nothing resident" 0 (Introspect.resident_anon_pages k ~pid)

let test_process_exit_cleans_up () =
  let k = boot () in
  let pid_holder = ref 0 in
  Kernel.spawn k (fun env ->
      pid_holder := Kernel.pid env;
      let r = Kernel.valloc env ~pages:512 in
      ignore (Kernel.touch_pages env r ~first:0 ~count:512)
      (* no vfree: exit must clean up *));
  Kernel.run k;
  Alcotest.(check int) "exit reclaimed pages" 0
    (Introspect.resident_anon_pages k ~pid:!pid_holder)

let test_two_processes_share_memory_pressure () =
  let k = boot () in
  let done_count = ref 0 in
  for _ = 1 to 2 do
    Kernel.spawn k (fun env ->
        let pages = 24 * mib / kib4 in
        let r = Kernel.valloc env ~pages in
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        Kernel.vfree env r;
        incr done_count)
  done;
  Kernel.run k;
  Alcotest.(check int) "both finished" 2 !done_count;
  (* 24 + 24 < 64 MB: no paging *)
  Alcotest.(check int) "no paging" 0 (Kernel.counters k).Kernel.c_page_outs

let test_vrelease_drops_range () =
  let _, (mid_resident, after_touch) =
    run_proc ~faults:Fault.quiet (fun env ->
        let r = Kernel.valloc env ~pages:256 in
        ignore (Kernel.touch_pages env r ~first:0 ~count:256);
        (* drop the middle half *)
        Kernel.vrelease env r ~first:64 ~count:128;
        let mid =
          Introspect.resident_anon_pages (Kernel.kernel_of_env env)
            ~pid:(Kernel.pid env)
        in
        (* re-touch: released pages must zero-fill, not page in *)
        let times = Kernel.touch_pages env r ~first:64 ~count:128 in
        Kernel.vfree env r;
        (mid, times))
  in
  Alcotest.(check int) "released frames gone" 128 mid_resident;
  (* zero-fill is ~9us; a swap page-in would be ms *)
  Alcotest.(check bool) "re-touch zero-fills" true
    (Array.for_all (fun t -> t < 1_000_000) after_touch)

let test_vrelease_validates () =
  let _, () =
    run_proc (fun env ->
        let r = Kernel.valloc env ~pages:16 in
        Alcotest.(check bool) "range check" true
          (try
             Kernel.vrelease env r ~first:8 ~count:16;
             false
           with Invalid_argument _ -> true);
        Kernel.vfree env r)
  in
  ()

let test_compute_contends_for_cpus () =
  (* 3 equal compute bursts on 2 CPUs: makespan ~ 2 bursts *)
  let k = boot () in
  let finish = ref 0 in
  for _ = 1 to 3 do
    Kernel.spawn k (fun env ->
        Kernel.compute env ~ns:1_000_000;
        finish := max !finish (Kernel.gettime env))
  done;
  Kernel.run k;
  Alcotest.(check bool)
    (Printf.sprintf "makespan %d" !finish)
    true
    (!finish >= 2_000_000 && !finish < 2_200_000)

let test_gettime_resolution () =
  let _, t =
    run_proc (fun env ->
        let t = Kernel.gettime env in
        t)
  in
  Alcotest.(check int) "quantised" 0 (t mod tiny_linux.Platform.timer_resolution_ns)

let test_counters_track_bytes () =
  let k, () =
    run_proc (fun env ->
        make_file env "/d0/a" (1 * mib);
        let fd = ok (Kernel.open_file env "/d0/a") in
        ignore (ok (Kernel.read env fd ~off:0 ~len:(1 * mib)));
        Kernel.close env fd)
  in
  let c = Kernel.counters k in
  Alcotest.(check int) "bytes read" (1 * mib) c.Kernel.c_bytes_read;
  Alcotest.(check int) "bytes written" (1 * mib) c.Kernel.c_bytes_written

let suite =
  [
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "bad fd and path" `Quick test_bad_fd_and_path;
    Alcotest.test_case "volumes separate" `Quick test_volumes_are_separate;
    Alcotest.test_case "cold vs warm read" `Quick test_cold_vs_warm_read;
    Alcotest.test_case "probe is destructive" `Quick test_probe_is_destructive;
    Alcotest.test_case "lru worst-case scan" `Quick test_lru_worst_case_scan;
    Alcotest.test_case "small file fits cache" `Quick test_small_file_fits_cache;
    Alcotest.test_case "write keeps pages cached" `Quick test_write_then_read_cached;
    Alcotest.test_case "stat caches inode" `Quick test_stat_caches_inode;
    Alcotest.test_case "stat reports ino/size" `Quick test_stat_reports_ino_and_size;
    Alcotest.test_case "namespace syscalls" `Quick test_namespace_syscalls;
    Alcotest.test_case "unlink invalidates cache" `Quick test_unlink_invalidates_cache;
    Alcotest.test_case "touch zero-fill vs resident" `Quick
      test_touch_zero_fill_then_resident;
    Alcotest.test_case "overcommit pages out" `Quick test_overcommit_pages_out;
    Alcotest.test_case "fit does not page" `Quick test_fit_no_paging;
    Alcotest.test_case "anon pressure shrinks file cache" `Quick
      test_anon_pressure_shrinks_file_cache;
    Alcotest.test_case "vfree releases" `Quick test_vfree_releases;
    Alcotest.test_case "exit cleans up" `Quick test_process_exit_cleans_up;
    Alcotest.test_case "two processes fit" `Quick test_two_processes_share_memory_pressure;
    Alcotest.test_case "vrelease drops range" `Quick test_vrelease_drops_range;
    Alcotest.test_case "vrelease validates" `Quick test_vrelease_validates;
    Alcotest.test_case "compute contends for cpus" `Quick test_compute_contends_for_cpus;
    Alcotest.test_case "gettime resolution" `Quick test_gettime_resolution;
    Alcotest.test_case "counters track bytes" `Quick test_counters_track_bytes;
  ]
