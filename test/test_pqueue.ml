(* The engine's event queue: ordering, model equivalence, and the
   no-retention guarantee behind the space-leak fix (popped elements must
   be collectable immediately). *)

open Gray_util

(* The heap itself is not stable, so properties compare against a stable
   sort of (key, seq) pairs: with the sequence number as tie-break the
   pop order is total and equals the stable sort by key. *)
let cmp (a_key, a_seq) (b_key, b_seq) =
  match compare (a_key : int) (b_key : int) with 0 -> compare a_seq b_seq | c -> c

let drain q =
  let rec go acc = match Pqueue.pop q with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let prop_pop_is_stable_sort =
  QCheck2.Test.make ~name:"pop sequence = stable sort" ~count:500
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 20))
    (fun keys ->
      let q = Pqueue.create ~cmp in
      List.iteri (fun seq key -> Pqueue.push q (key, seq)) keys;
      let expected = List.stable_sort cmp (List.mapi (fun seq key -> (key, seq)) keys) in
      drain q = expected)

(* Interleave pushes and pops and compare against a sorted-list model. *)
let prop_interleaved_matches_model =
  QCheck2.Test.make ~name:"push/pop interleavings match a sorted-list model" ~count:500
    QCheck2.Gen.(list_size (int_range 0 200) (option (int_range 0 50)))
    (fun ops ->
      let q = Pqueue.create ~cmp in
      let model = ref [] and seq = ref 0 and ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some key ->
            Pqueue.push q (key, !seq);
            model := List.stable_sort cmp ((key, !seq) :: !model);
            incr seq
          | None -> (
            match (Pqueue.pop q, !model) with
            | None, [] -> ()
            | Some x, m :: rest when x = m -> model := rest
            | _ -> ok := false))
        ops;
      !ok && Pqueue.length q = List.length !model)

let prop_length_and_peek =
  QCheck2.Test.make ~name:"length/peek agree with the model" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 10))
    (fun keys ->
      let q = Pqueue.create ~cmp in
      List.iteri (fun seq key -> Pqueue.push q (key, seq)) keys;
      let sorted = List.stable_sort cmp (List.mapi (fun seq key -> (key, seq)) keys) in
      Pqueue.length q = List.length keys && Pqueue.peek q = Some (List.hd sorted))

(* The space-leak regression: after pop returns, the popped element must
   be unreachable from the queue.  Weak pointers see through the heap's
   backing array: if pop left the element in data.(size), the weak ref
   would survive the GC. *)
let test_pop_releases_element () =
  let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare (a : int) b) in
  let make_blob tag = (tag, Bytes.create 4096) in
  let weaks = Weak.create 8 in
  for i = 0 to 7 do
    let blob = make_blob i in
    Weak.set weaks i (Some blob);
    Pqueue.push q blob
  done;
  (* pop half: those four must become collectable even though the queue
     still holds the other four *)
  for _ = 1 to 4 do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "popped element %d collected" i)
      false
      (Weak.check weaks i)
  done;
  for i = 4 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "queued element %d retained" i)
      true
      (Weak.check weaks i)
  done;
  (* keep the queue alive across the majors above — without this the GC
     is free to collect [q] itself right after the last pop *)
  Alcotest.(check int) "four elements remain" 4 (Pqueue.length (Sys.opaque_identity q))

let test_drain_releases_backing_array () =
  let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare (a : int) b) in
  let weak = Weak.create 1 in
  let blob = (0, Bytes.create 4096) in
  Weak.set weak 0 (Some blob);
  Pqueue.push q blob;
  ignore (Pqueue.pop q);
  Gc.full_major ();
  Alcotest.(check bool) "drained queue retains nothing" false (Weak.check weak 0);
  Alcotest.(check int) "drained queue empty" 0 (Pqueue.length q);
  (* and the queue still works afterwards *)
  Pqueue.push q (1, Bytes.create 1);
  Alcotest.(check bool) "queue usable after drain" true (Pqueue.pop q <> None)

let test_clear_releases_elements () =
  let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare (a : int) b) in
  let weak = Weak.create 1 in
  let blob = (0, Bytes.create 4096) in
  Weak.set weak 0 (Some blob);
  Pqueue.push q blob;
  Pqueue.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared queue retains nothing" false (Weak.check weak 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pop_is_stable_sort;
    QCheck_alcotest.to_alcotest prop_interleaved_matches_model;
    QCheck_alcotest.to_alcotest prop_length_and_peek;
    Alcotest.test_case "pop releases the popped element" `Quick test_pop_releases_element;
    Alcotest.test_case "draining releases the backing array" `Quick
      test_drain_releases_backing_array;
    Alcotest.test_case "clear releases elements" `Quick test_clear_releases_elements;
  ]
