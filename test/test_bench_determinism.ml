(* The parallel harness's determinism contract: a plan executed on one
   domain and the same plan executed on four must render byte-identical
   output and identical figures and checks. *)

open Gray_bench

let exec_with_jobs plan jobs =
  let pool = Gray_util.Domain_pool.create ~size:jobs in
  Fun.protect
    ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
    (fun () -> Bench_common.execute ~pool [ plan ]);
  plan.Bench_common.p_render ()

let mib = Bench_common.mib

let small_fig1 () =
  Fig1.plan_sized ~file_bytes:(64 * mib) ~access_units:[ 1 * mib; 4 * mib ]
    ~prediction_units:[ 1 * mib; 2 * mib; 8 * mib ]
    ~trials:3 ()

let check_identical name make_plan =
  let a = exec_with_jobs (make_plan ()) 1 in
  let b = exec_with_jobs (make_plan ()) 4 in
  Alcotest.(check string) (name ^ ": rendered output byte-identical") a.Bench_common.rd_output
    b.Bench_common.rd_output;
  Alcotest.(check int)
    (name ^ ": same figure count")
    (List.length a.Bench_common.rd_figures)
    (List.length b.Bench_common.rd_figures);
  List.iter2
    (fun (fa : Bench_common.figure) (fb : Bench_common.figure) ->
      Alcotest.(check string) (name ^ ": figure name") fa.fg_name fb.fg_name;
      Alcotest.(check bool)
        (Printf.sprintf "%s: figure %s identical" name fa.fg_name)
        true
        (compare fa.fg_value fb.fg_value = 0))
    a.Bench_common.rd_figures b.Bench_common.rd_figures;
  Alcotest.(check bool)
    (name ^ ": checks identical")
    true
    (a.Bench_common.rd_checks = b.Bench_common.rd_checks)

let test_fig1_small () = check_identical "fig1" small_fig1

let test_fig5 () =
  Bench_common.set_trials 2;
  check_identical "fig5" Fig5.plan

let suite =
  [
    Alcotest.test_case "fig1 (small) identical at -j 1 and -j 4" `Slow test_fig1_small;
    Alcotest.test_case "fig5 identical at -j 1 and -j 4" `Slow test_fig5;
  ]
