(* Trace recording, persistence, and offline replay. *)

open Graybox_core

let ev_read path off len = Trace.Read { path; off; len }
let ev_write path off len = Trace.Write { path; off; len }

let test_roundtrip () =
  let t = Trace.create () in
  Trace.record t (ev_read "/d0/a" 0 8192);
  Trace.record t (ev_write "/d0/b" 4096 100);
  Trace.record t (Trace.Unlink { path = "/d0/a" });
  let t2 = Trace.of_string (Trace.to_string t) in
  Alcotest.(check int) "length" 3 (Trace.length t2);
  Alcotest.(check bool) "events equal" true (Trace.events t = Trace.events t2)

let test_rejects_bad_paths () =
  let t = Trace.create () in
  Alcotest.(check bool) "tab rejected" true
    (try
       Trace.record t (ev_read "a\tb" 0 1);
       false
     with Invalid_argument _ -> true)

(* Every malformed-line class produces a [Failure] whose message names the
   1-based offending line; a valid prefix must not hide it. *)
let check_parse_failure label input expected_fragments =
  match Trace.of_string input with
  | _ -> Alcotest.failf "%s: expected Failure" label
  | exception Failure msg ->
    List.iter
      (fun frag ->
        let found =
          let fl = String.length frag and ml = String.length msg in
          let rec at i = i + fl <= ml && (String.sub msg i fl = frag || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S appears in %S" label frag msg)
          true found)
      expected_fragments

let test_parse_errors () =
  let ok = "R\t/d0/a\t0\t4096\n" in
  check_parse_failure "unknown tag" (ok ^ "X\tfoo\n") [ "line 2"; "unknown tag"; "\"X\"" ];
  check_parse_failure "bad field count (R)" (ok ^ ok ^ "R\tfoo\t1\n")
    [ "line 3"; "4 tab-separated fields" ];
  check_parse_failure "bad field count (U)" (ok ^ "U\tfoo\t3\n")
    [ "line 2"; "2 tab-separated fields" ];
  check_parse_failure "bad number" (ok ^ "R\tfoo\tx\t1\n")
    [ "line 2"; "offset"; "\"x\"" ];
  check_parse_failure "bad length" ("W\tfoo\t0\tzz\n") [ "line 1"; "length"; "\"zz\"" ];
  check_parse_failure "negative offset" (ok ^ "R\tfoo\t-1\t1\n")
    [ "line 2"; "negative" ]

let test_summarize () =
  let t = Trace.create () in
  Trace.record t (ev_read "/a" 0 100);
  Trace.record t (ev_read "/a" 100 100);
  Trace.record t (ev_write "/b" 0 50);
  Trace.record t (Trace.Unlink { path = "/c" });
  let s = Trace.summarize t in
  Alcotest.(check int) "events" 4 s.Trace.s_events;
  Alcotest.(check int) "reads" 2 s.Trace.s_reads;
  Alcotest.(check int) "writes" 1 s.Trace.s_writes;
  Alcotest.(check int) "unlinks" 1 s.Trace.s_unlinks;
  Alcotest.(check int) "bytes" 250 s.Trace.s_bytes;
  Alcotest.(check int) "files" 3 s.Trace.s_files

let test_replay_hit_rate () =
  let t = Trace.create () in
  (* touch one page twice: second access hits in any sane policy *)
  Trace.record t (ev_read "/a" 0 1);
  Trace.record t (ev_read "/a" 0 1);
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:4 in
  Alcotest.(check int) "hits" 1 r.Trace.rp_hits;
  Alcotest.(check int) "misses" 1 r.Trace.rp_misses;
  Alcotest.(check (float 0.001)) "rate" 0.5 r.Trace.rp_hit_rate

let test_replay_residency_and_unlink () =
  let t = Trace.create () in
  Trace.record t (ev_read "/a" 0 (4 * 4096));
  Trace.record t (ev_read "/b" 0 (4 * 4096));
  Trace.record t (Trace.Unlink { path = "/b" });
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:64 in
  Alcotest.(check (list (pair string (float 0.001)))) "only /a remains"
    [ ("/a", 1.0) ] r.Trace.rp_resident

let test_replay_capacity_pressure () =
  let t = Trace.create () in
  (* loop over 8 pages with capacity 4: LRU gets zero hits on re-reads *)
  for _ = 1 to 3 do
    for p = 0 to 7 do
      Trace.record t (ev_read "/loop" (p * 4096) 1)
    done
  done;
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:4 in
  Alcotest.(check int) "no hits under looping lru" 0 r.Trace.rp_hits

let test_compare_policies () =
  let t = Trace.create () in
  for _ = 1 to 4 do
    for p = 0 to 7 do
      Trace.record t (ev_read "/loop" (p * 4096) 1)
    done
  done;
  let ranking = Trace.compare_policies t ~capacity_pages:6 in
  Alcotest.(check int) "all policies ranked"
    (List.length Simos.Replacement.all_names)
    (List.length ranking);
  (* the looping workload is where eelru/mru-family beat lru *)
  let rate name = List.assoc name ranking in
  Alcotest.(check (float 0.001)) "lru thrashes" 0.0 (rate "lru");
  Alcotest.(check bool)
    (Printf.sprintf "eelru %.2f beats lru" (rate "eelru"))
    true
    (rate "eelru" > 0.2);
  Alcotest.(check bool) "sorted descending" true
    (let rates = List.map snd ranking in
     List.sort (fun a b -> compare b a) rates = rates)

let test_interpose_records_trace () =
  let engine = Simos.Engine.create () in
  let platform =
    Simos.Platform.with_noise
      { Simos.Platform.linux_2_2 with Simos.Platform.memory_mib = 96;
        kernel_reserved_mib = 32 }
      ~sigma:0.0
  in
  let k = Simos.Kernel.boot ~engine ~platform ~data_disks:1 ~seed:505 () in
  let trace = Trace.create () in
  Simos.Kernel.spawn k (fun env ->
      let agent =
        Interpose.create ~trace ~assumed_policy:Simos.Replacement.clock
          ~assumed_capacity_pages:1024 ()
      in
      Gray_apps.Workload.write_file env "/d0/f" 8192;
      let fd = Gray_apps.Workload.ok_exn (Simos.Kernel.open_file env "/d0/f") in
      ignore
        (Gray_apps.Workload.ok_exn
           (Interpose.read agent env fd ~path:"/d0/f" ~off:0 ~len:8192));
      Simos.Kernel.close env fd;
      Interpose.note_unlink agent ~path:"/d0/f");
  Simos.Kernel.run k;
  Alcotest.(check (list bool)) "read then unlink recorded" [ true; true ]
    (match Trace.events trace with
    | [ Trace.Read { path = "/d0/f"; off = 0; len = 8192 }; Trace.Unlink { path = "/d0/f" } ]
      -> [ true; true ]
    | _ -> [ false; false ])

let prop_roundtrip =
  let gen_event =
    QCheck2.Gen.(
      let path = map (fun i -> Printf.sprintf "/f%d" i) (int_range 0 20) in
      oneof
        [
          map3 (fun p o l -> Trace.Read { path = p; off = o; len = l }) path
            (int_range 0 100000) (int_range 0 100000);
          map3 (fun p o l -> Trace.Write { path = p; off = o; len = l }) path
            (int_range 0 100000) (int_range 0 100000);
          map (fun p -> Trace.Unlink { path = p }) path;
        ])
  in
  QCheck2.Test.make ~name:"trace text format round-trips" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) gen_event)
    (fun evs ->
      let t = Trace.create () in
      List.iter (Trace.record t) evs;
      Trace.events (Trace.of_string (Trace.to_string t)) = evs)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "rejects bad paths" `Quick test_rejects_bad_paths;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "replay hit rate" `Quick test_replay_hit_rate;
    Alcotest.test_case "replay residency + unlink" `Quick test_replay_residency_and_unlink;
    Alcotest.test_case "replay capacity pressure" `Quick test_replay_capacity_pressure;
    Alcotest.test_case "compare policies" `Quick test_compare_policies;
    Alcotest.test_case "interpose records trace" `Quick test_interpose_records_trace;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
