(* Differential equivalence of the batched run API against the per-page
   path.

   The batched fast path (Pool.access_run / Memory.access_run) exists
   purely for speed: every observable — hit/miss classification, victim
   sequence and dirty bits, counters, resident sets, and (at the kernel
   level) the per-page noise-draw alignment — must match the per-page
   path exactly.  These properties drive both paths with the same
   qcheck-generated traces of mixed reads, writes, invalidates and
   resizes, across all seven replacement policies, and compare full
   event logs rather than summaries so an ordering drift fails loudly. *)

open Simos

let fkey i = Page.File { ino = 3; idx = i }
let akey i = Page.Anon { pid = 7; vpn = i }

let policies =
  [
    ("lru", Replacement.lru);
    ("clock", Replacement.clock);
    ("fifo", Replacement.fifo);
    ("mru-sticky", Replacement.mru_sticky);
    ("two-q", Replacement.two_q);
    ("segmented-lru", Replacement.segmented_lru);
    ("eelru", Replacement.eelru);
  ]

(* ---- trace language ---------------------------------------------------- *)

type op =
  | Run of { start : int; len : int; dirty : bool }
  | Inval of int
  | Inval_mod of int
  | Resize of int
  | Evict_one

let gen_op =
  QCheck2.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun start len dirty -> Run { start; len; dirty })
            (int_range 0 48) (int_range 1 12) bool );
        (1, map (fun i -> Inval i) (int_range 0 48));
        (1, map (fun m -> Inval_mod m) (int_range 2 5));
        (1, map (fun c -> Resize c) (int_range 1 24));
        (1, return Evict_one);
      ])

let gen_trace = QCheck2.Gen.(list_size (int_range 1 60) gen_op)

let pp_op = function
  | Run { start; len; dirty } -> Printf.sprintf "run(%d,%d,%b)" start len dirty
  | Inval i -> Printf.sprintf "inval(%d)" i
  | Inval_mod m -> Printf.sprintf "inval_mod(%d)" m
  | Resize c -> Printf.sprintf "resize(%d)" c
  | Evict_one -> "evict_one"

let print_trace ops = String.concat ";" (List.map pp_op ops)

(* ---- pool-level differential ------------------------------------------- *)

let log_victim b key ~dirty =
  Printf.bprintf b "E(%s,%b);" (Page.to_string key) dirty

(* Per-page reference: the list-building API, one call per page. *)
let pool_per_page b p = function
  | Run { start; len; dirty } ->
    for i = start to start + len - 1 do
      (match Pool.access p (fkey i) ~dirty with
      | `Hit -> Printf.bprintf b "H(%d);" i
      | `Filled evs ->
        Printf.bprintf b "M(%d);" i;
        List.iter (fun (e : Pool.evicted) -> log_victim b e.key ~dirty:e.dirty) evs;
        Printf.bprintf b "n=%d;" (List.length evs))
    done
  | Inval i -> Pool.invalidate p (fkey i)
  | Inval_mod m ->
    let n =
      Pool.invalidate_if p (function
        | Page.File { idx; _ } -> idx mod m = 0
        | Page.Anon _ -> false)
    in
    Printf.bprintf b "I(%d);" n
  | Resize c ->
    let evs = Pool.resize p ~capacity_pages:c in
    List.iter (fun (e : Pool.evicted) -> log_victim b e.key ~dirty:e.dirty) evs
  | Evict_one -> (
    match Pool.evict_one p with
    | None -> Printf.bprintf b "e0;"
    | Some e -> log_victim b e.Pool.key ~dirty:e.Pool.dirty)

(* Batched: the run/callback API for the same trace.  The per-page path
   logs an eviction count after each miss; reconstruct the same line from
   the callbacks (and cross-check it against [on_page_end]'s count) so
   the two logs stay literally comparable. *)
let pool_batched b p op =
  match op with
  | Run { start; len; dirty } ->
    let nev = ref 0 and missed = ref false in
    Pool.access_run p ~n:len
      ~key:(fun i -> fkey (start + i))
      ~dirty
      ~on_hit:(fun i _ -> Printf.bprintf b "H(%d);" (start + i))
      ~on_miss:(fun i _ ->
        missed := true;
        nev := 0;
        Printf.bprintf b "M(%d);" (start + i))
      ~on_evict:(fun key ~dirty ->
        incr nev;
        log_victim b key ~dirty)
      ~on_page_end:(fun _ ~evicted ->
        if !missed then begin
          Printf.bprintf b "n=%d;" evicted;
          if evicted <> !nev then Printf.bprintf b "COUNT-MISMATCH;";
          missed := false
        end)
  | Inval i -> Pool.invalidate p (fkey i)
  | Inval_mod m ->
    let n =
      Pool.invalidate_if p (function
        | Page.File { idx; _ } -> idx mod m = 0
        | Page.Anon _ -> false)
    in
    Printf.bprintf b "I(%d);" n
  | Resize c -> Pool.resize_into p ~capacity_pages:c ~on_evict:(log_victim b)
  | Evict_one -> (
    match Pool.evict_one p with
    | None -> Printf.bprintf b "e0;"
    | Some e -> log_victim b e.Pool.key ~dirty:e.Pool.dirty)

let resident_snapshot p =
  let out = ref [] in
  Pool.iter p (fun k ->
      out := Printf.sprintf "%s:%b" (Page.to_string k) (Pool.is_dirty p k) :: !out);
  (* iteration order is policy-internal; compare as a set *)
  String.concat "," (List.sort compare !out)

let counters p =
  Printf.sprintf "h=%d m=%d e=%d r=%d c=%d" (Pool.hits p) (Pool.misses p)
    (Pool.evictions p) (Pool.resident p) (Pool.capacity p)

let prop_pool_equiv (label, factory) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "pool batched = per-page (%s)" label)
    ~count:200 ~print:print_trace gen_trace
    (fun ops ->
      let ref_pool = Pool.create ~name:"ref" ~capacity_pages:8 ~policy:factory in
      let run_pool = Pool.create ~name:"run" ~capacity_pages:8 ~policy:factory in
      let ref_log = Buffer.create 256 and run_log = Buffer.create 256 in
      List.iter (fun op -> pool_per_page ref_log ref_pool op) ops;
      List.iter (fun op -> pool_batched run_log run_pool op) ops;
      String.equal (Buffer.contents ref_log) (Buffer.contents run_log)
      && String.equal (resident_snapshot ref_pool) (resident_snapshot run_pool)
      && String.equal (counters ref_pool) (counters run_pool))

(* ---- memory-level differential, noiseless and noisy -------------------- *)

(* The kernel draws one lognormal factor per touched page when the
   platform is noisy (sigma > 0) and none when it is noiseless — exactly
   [Kernel.noised]'s guard.  Replaying that draw discipline here from two
   identical generators proves the batched path keeps the per-page RNG
   draw order: any skipped or extra draw desynchronises the logged
   factors immediately. *)
let mem_op_gen =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (map3
         (fun is_file start (len, dirty) -> (is_file, start, len, dirty))
         bool (int_range 0 30)
         (pair (int_range 1 10) bool)))

let mem_layout () =
  Memory.create ~usable_pages:24
    (Memory.Unified_balanced { policy = Replacement.lru; file_floor_pages = 4 })

let mem_key is_file i = if is_file then fkey i else akey i

let mem_per_page b rng ~sigma m ops =
  List.iter
    (fun (is_file, start, len, dirty) ->
      for i = start to start + len - 1 do
        let key = mem_key is_file i in
        (match Memory.access m key ~dirty with
        | `Hit -> Printf.bprintf b "H(%s);" (Page.to_string key)
        | `Filled evs ->
          Printf.bprintf b "M(%s);" (Page.to_string key);
          List.iter (fun (e : Pool.evicted) -> log_victim b e.key ~dirty:e.dirty) evs);
        if sigma > 0.0 then
          Printf.bprintf b "noise=%h;" (Gray_util.Dist.lognormal_factor rng ~sigma)
      done)
    ops

let mem_batched b rng ~sigma m ops =
  List.iter
    (fun (is_file, start, len, dirty) ->
      Memory.access_run m ~n:len
        ~key:(fun i -> mem_key is_file (start + i))
        ~dirty
        ~on_hit:(fun _ key -> Printf.bprintf b "H(%s);" (Page.to_string key))
        ~on_miss:(fun _ key -> Printf.bprintf b "M(%s);" (Page.to_string key))
        ~on_evict:(log_victim b)
        ~on_page_end:(fun _ ~evicted:_ ->
          if sigma > 0.0 then
            Printf.bprintf b "noise=%h;" (Gray_util.Dist.lognormal_factor rng ~sigma)))
    ops

let prop_memory_equiv ~sigma label =
  QCheck2.Test.make
    ~name:(Printf.sprintf "memory batched = per-page (%s)" label)
    ~count:200 mem_op_gen
    (fun ops ->
      let ref_mem = mem_layout () and run_mem = mem_layout () in
      let ref_rng = Gray_util.Rng.create ~seed:2026 in
      let run_rng = Gray_util.Rng.create ~seed:2026 in
      let ref_log = Buffer.create 256 and run_log = Buffer.create 256 in
      mem_per_page ref_log ref_rng ~sigma ref_mem ops;
      mem_batched run_log run_rng ~sigma run_mem ops;
      String.equal (Buffer.contents ref_log) (Buffer.contents run_log)
      && Memory.resident_file ref_mem = Memory.resident_file run_mem
      && Memory.resident_anon ref_mem = Memory.resident_anon run_mem
      && Memory.file_capacity ref_mem = Memory.file_capacity run_mem
      && String.equal
           (resident_snapshot (Memory.file_pool ref_mem))
           (resident_snapshot (Memory.file_pool run_mem))
      && String.equal
           (resident_snapshot (Memory.anon_pool ref_mem))
           (resident_snapshot (Memory.anon_pool run_mem)))

(* ---- pool coverage gaps ------------------------------------------------ *)

let test_resize_order_and_dirty () =
  let p = Pool.create ~name:"t" ~capacity_pages:6 ~policy:Replacement.lru in
  for i = 0 to 5 do
    ignore (Pool.access p (fkey i) ~dirty:(i mod 2 = 0))
  done;
  (* shrink to 2: pages 0..3 must leave in LRU order, dirty bits intact *)
  let evs = Pool.resize p ~capacity_pages:2 in
  Alcotest.(check (list string))
    "eviction order is LRU order"
    [ "file(ino=3,page=0)"; "file(ino=3,page=1)"; "file(ino=3,page=2)";
      "file(ino=3,page=3)" ]
    (List.map (fun (e : Pool.evicted) -> Page.to_string e.key) evs);
  Alcotest.(check (list bool))
    "victim dirty flags survive the resize"
    [ true; false; true; false ]
    (List.map (fun (e : Pool.evicted) -> e.dirty) evs);
  Alcotest.(check int) "capacity updated" 2 (Pool.capacity p);
  Alcotest.(check int) "residents bounded" 2 (Pool.resident p);
  Alcotest.(check bool) "survivor keeps dirty bit" true (Pool.is_dirty p (fkey 4));
  Alcotest.(check bool) "survivor keeps clean bit" false (Pool.is_dirty p (fkey 5));
  (* growing evicts nothing *)
  Alcotest.(check int) "grow evicts nothing" 0
    (List.length (Pool.resize p ~capacity_pages:16));
  Alcotest.(check int) "grown capacity" 16 (Pool.capacity p)

let test_pool_invalidate_if_counting () =
  let p = Pool.create ~name:"t" ~capacity_pages:8 ~policy:Replacement.lru in
  for i = 0 to 5 do
    ignore (Pool.access p (fkey i) ~dirty:false)
  done;
  let evictions_before = Pool.evictions p in
  let n =
    Pool.invalidate_if p (function
      | Page.File { idx; _ } -> idx mod 2 = 0
      | Page.Anon _ -> false)
  in
  Alcotest.(check int) "counts exactly the matches" 3 n;
  Alcotest.(check int) "survivors" 3 (Pool.resident p);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "page %d gone iff even" i)
        (i mod 2 = 1)
        (Pool.contains p (fkey i)))
    [ 0; 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "invalidation is not an eviction" evictions_before
    (Pool.evictions p);
  Alcotest.(check int) "no matches counts zero" 0
    (Pool.invalidate_if p (fun _ -> false))

(* A policy that claims residents it cannot evict: the pool must fail
   loudly instead of spinning or silently overfilling. *)
let lying_policy : Replacement.factory =
 fun ~capacity:_ ->
  (module struct
    let name = "lying"
    let mem _ = false
    let is_dirty _ = false
    let access _ ~dirty:_ = false
    let insert _ ~dirty:_ = ()
    let evict _ = false
    let remove _ = false
    let clean _ = ()
    let size () = 42
    let iter _ = ()
  end : Replacement.POLICY)

let test_policy_lost_pages () =
  let p = Pool.create ~name:"t" ~capacity_pages:1 ~policy:lying_policy in
  Alcotest.check_raises "access fails loudly"
    (Failure "Pool.access: policy lost pages") (fun () ->
      ignore (Pool.access p (fkey 0) ~dirty:false));
  let p2 = Pool.create ~name:"t" ~capacity_pages:4 ~policy:lying_policy in
  Alcotest.check_raises "resize fails loudly"
    (Failure "Pool.resize: policy lost pages") (fun () ->
      ignore (Pool.resize p2 ~capacity_pages:1))

let suite =
  List.map prop_pool_equiv policies
  |> List.map QCheck_alcotest.to_alcotest
  |> fun props ->
  props
  @ [
      QCheck_alcotest.to_alcotest (prop_memory_equiv ~sigma:0.0 "noiseless");
      QCheck_alcotest.to_alcotest (prop_memory_equiv ~sigma:0.08 "noisy");
      Alcotest.test_case "resize order + dirty survival" `Quick
        test_resize_order_and_dirty;
      Alcotest.test_case "invalidate_if counting" `Quick
        test_pool_invalidate_if_counting;
      Alcotest.test_case "policy lost pages" `Quick test_policy_lost_pages;
    ]
