(* Applications: grep / search / fastsort behaviour on the simulated OS. *)

open Simos
open Graybox_core
open Gray_apps

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* App benchmarks compare exact phase timings across variants; pin the
   bit-identical quiet scenario so GRAYBOX_FAULTS cannot skew the race. *)
let run_proc ?(data_disks = 3) body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks ~seed:123 ~faults:Fault.quiet () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let small_config seed =
  let c = Fccd.default_config ~seed () in
  { c with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

let test_grep_variants_ranking () =
  (* warm cache: gray beats unmodified; gbp sits between *)
  let _, (unmod, gray, via_gbp) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Workload.make_files env ~dir:"/d0/txt" ~prefix:"t" ~count:20 ~size:(5 * mib)
        in
        let matches _ = 1 in
        let config = small_config 1 in
        let steady variant =
          Kernel.flush_file_cache k;
          let t = ref 0 in
          for _ = 1 to 3 do
            let _, ns = Grep.run env config variant ~paths ~matches in
            t := ns
          done;
          !t
        in
        (steady Grep.Unmodified, steady Grep.Gray, steady Grep.Via_gbp))
  in
  Alcotest.(check bool)
    (Printf.sprintf "gray %.2fs < unmodified %.2fs"
       (Gray_util.Units.sec_of_ns gray) (Gray_util.Units.sec_of_ns unmod))
    true
    (float_of_int gray < 0.6 *. float_of_int unmod);
  Alcotest.(check bool)
    (Printf.sprintf "gbp %.2fs between gray %.2fs and unmodified %.2fs"
       (Gray_util.Units.sec_of_ns via_gbp) (Gray_util.Units.sec_of_ns gray)
       (Gray_util.Units.sec_of_ns unmod))
    true
    (float_of_int via_gbp >= 0.95 *. float_of_int gray
    && float_of_int via_gbp < 0.9 *. float_of_int unmod)

let test_grep_counts_matches () =
  let _, total =
    run_proc (fun env ->
        let paths =
          Workload.make_files env ~dir:"/d0/txt" ~prefix:"t" ~count:5 ~size:mib
        in
        let matches p = if p = "/d0/txt/t0002" then 7 else 0 in
        let total, _ = Grep.run env (small_config 2) Grep.Unmodified ~paths ~matches in
        total)
  in
  Alcotest.(check int) "matches" 7 total

let test_search_early_exit () =
  (* match in a cached file listed last: gray search finds it fast *)
  let _, (unmod_ns, gray_ns, found_unmod, found_gray) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Workload.make_files env ~dir:"/d0/txt" ~prefix:"t" ~count:12 ~size:(4 * mib)
        in
        let target = List.nth paths 11 in
        let match_in p = p = target in
        Kernel.flush_file_cache k;
        Workload.read_file env target;
        let f1, unmod_ns = Search.run env ~paths ~match_in () in
        Kernel.flush_file_cache k;
        Workload.read_file env target;
        let f2, gray_ns = Search.run env ~gray:(small_config 3) ~paths ~match_in () in
        (unmod_ns, gray_ns, f1, f2))
  in
  Alcotest.(check (option string)) "unmodified finds it" (Some "/d0/txt/t0011") found_unmod;
  Alcotest.(check (option string)) "gray finds it" (Some "/d0/txt/t0011") found_gray;
  Alcotest.(check bool)
    (Printf.sprintf "gray %.2fs << unmodified %.2fs"
       (Gray_util.Units.sec_of_ns gray_ns) (Gray_util.Units.sec_of_ns unmod_ns))
    true
    (float_of_int gray_ns < 0.2 *. float_of_int unmod_ns)

let test_search_no_match () =
  let _, (found, _) =
    run_proc (fun env ->
        let paths =
          Workload.make_files env ~dir:"/d0/txt" ~prefix:"t" ~count:3 ~size:mib
        in
        Search.run env ~paths ~match_in:(fun _ -> false) ())
  in
  Alcotest.(check (option string)) "no match" None found

let test_fastsort_read_phase_orders () =
  let _, (linear_ns, gray_ns, gbp_ns) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        Workload.write_file env "/d0/input" (96 * mib);
        let config = Fastsort.default_config ~input:"/d0/input" ~run_dir:"/d1/runs" in
        let warm_then order =
          (* recreate pipeline conditions: rewrite the input, leaving its
             tail cached, as the paper does between runs *)
          Kernel.flush_file_cache k;
          Workload.read_file env "/d0/input";
          Fastsort.read_phase_only env config ~order ~pass_bytes:(16 * mib)
        in
        let linear = warm_then Fastsort.Linear in
        let gray = warm_then (Fastsort.Gray_fccd (small_config 4)) in
        let gbp = warm_then (Fastsort.Via_gbp_out (small_config 5)) in
        (linear, gray, gbp))
  in
  Alcotest.(check bool)
    (Printf.sprintf "gray %.2fs < linear %.2fs"
       (Gray_util.Units.sec_of_ns gray_ns) (Gray_util.Units.sec_of_ns linear_ns))
    true
    (float_of_int gray_ns < 0.85 *. float_of_int linear_ns);
  Alcotest.(check bool)
    (Printf.sprintf "gbp %.2fs >= gray %.2fs"
       (Gray_util.Units.sec_of_ns gbp_ns) (Gray_util.Units.sec_of_ns gray_ns))
    true
    (gbp_ns >= gray_ns)

let test_fastsort_phase1_static_no_pressure () =
  let k, (times, run_files) =
    run_proc (fun env ->
        Workload.write_file env "/d0/input" (48 * mib);
        let config = Fastsort.default_config ~input:"/d0/input" ~run_dir:"/d1/runs" in
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        let times =
          Fastsort.run_phase1 env config ~policy:(Fastsort.Static_pass (16 * mib))
            ~total_bytes:(48 * mib)
        in
        (times, Workload.ok_exn (Kernel.readdir env "/d1/runs")))
  in
  Alcotest.(check int) "three passes" 3 times.Fastsort.pt_passes;
  Alcotest.(check (list int)) "pass sizes"
    [ 16 * mib; 16 * mib; 16 * mib ]
    times.Fastsort.pt_pass_bytes;
  Alcotest.(check int) "no paging" 0 (Kernel.counters k).Kernel.c_page_ins;
  Alcotest.(check bool) "phases measured" true
    (times.Fastsort.pt_read > 0 && times.Fastsort.pt_sort > 0 && times.Fastsort.pt_write > 0);
  Alcotest.(check int) "one run file per pass" 3 (List.length run_files)

let test_fastsort_oversized_pass_pages () =
  let k, _times =
    run_proc (fun env ->
        Workload.write_file env "/d0/input" (96 * mib);
        let config = Fastsort.default_config ~input:"/d0/input" ~run_dir:"/d1/runs" in
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        (* 80 MB pass on a 64 MB machine: must thrash *)
        Fastsort.run_phase1 env config ~policy:(Fastsort.Static_pass (80 * mib))
          ~total_bytes:(96 * mib))
  in
  Alcotest.(check bool) "paged" true ((Kernel.counters k).Kernel.c_page_ins > 0)

let test_fastsort_mac_adapts_and_avoids_paging () =
  let _, (times, static_times, page_ins_during_mac) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        Workload.write_file env "/d0/input" (96 * mib);
        let config = Fastsort.default_config ~input:"/d0/input" ~run_dir:"/d1/runs" in
        let mac =
          {
            (Mac.default_config ()) with
            Mac.initial_increment = 2 * mib;
            max_increment = 8 * mib;
          }
        in
        Kernel.flush_file_cache k;
        Kernel.reset_counters k;
        let times =
          Fastsort.run_phase1 env config
            ~policy:
              (Fastsort.Mac_adaptive
                 { mac; min_bytes = 8 * mib; retry_ns = 50_000_000 })
            ~total_bytes:(96 * mib)
        in
        let page_ins = (Kernel.counters k).Kernel.c_page_ins in
        Kernel.flush_file_cache k;
        let static_times =
          Fastsort.run_phase1 env config ~policy:(Fastsort.Static_pass (80 * mib))
            ~total_bytes:(96 * mib)
        in
        (times, static_times, page_ins))
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive passes sized sensibly (%s)"
       (String.concat ","
          (List.map (fun b -> string_of_int (b / mib)) times.Fastsort.pt_pass_bytes)))
    true
    (List.for_all (fun b -> b <= 64 * mib) times.Fastsort.pt_pass_bytes);
  Alcotest.(check bool)
    (Printf.sprintf "bounded paging with MAC (%d page-ins)" page_ins_during_mac)
    true
    (page_ins_during_mac < 96 * mib / 4096 * 15 / 100);
  Alcotest.(check bool)
    (Printf.sprintf "MAC %.2fs beats oversized static %.2fs"
       (Gray_util.Units.sec_of_ns (Fastsort.total_ns times))
       (Gray_util.Units.sec_of_ns (Fastsort.total_ns static_times)))
    true
    (Fastsort.total_ns times < Fastsort.total_ns static_times)

let suite =
  [
    Alcotest.test_case "grep variants ranking" `Quick test_grep_variants_ranking;
    Alcotest.test_case "grep counts matches" `Quick test_grep_counts_matches;
    Alcotest.test_case "search early exit" `Quick test_search_early_exit;
    Alcotest.test_case "search no match" `Quick test_search_no_match;
    Alcotest.test_case "fastsort read-phase orders" `Quick test_fastsort_read_phase_orders;
    Alcotest.test_case "fastsort static phase1" `Quick test_fastsort_phase1_static_no_pressure;
    Alcotest.test_case "fastsort oversized pass pages" `Quick
      test_fastsort_oversized_pass_pages;
    Alcotest.test_case "fastsort MAC adapts" `Quick test_fastsort_mac_adapts_and_avoids_paging;
  ]
