(* Per-process accounting: restart semantics, initiator attribution of
   sync-driven writebacks, and the attribution-exactness invariant (every
   global counter equals the sum of the per-pid cells) on randomized
   multi-process workloads — serial and across a domain pool. *)

open Simos

(* Memory-starved so randomized workloads actually evict. *)
let small_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 24; kernel_reserved_mib = 16 }
    ~sigma:0.0

(* These tests measure the instrument itself, so they pin the
   bit-identical quiet fault scenario (the canonical-faults CI pass
   would otherwise inject transient errors into the exactness sums). *)
let boot ?crash ~seed () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:small_platform ~data_disks:1 ~volume_blocks:16384
    ~faults:Fault.quiet ?crash ~account:true ~seed ()

let must = function
  | Ok v -> v
  | Error e -> failwith ("test_account: " ^ Kernel.error_to_string e)

let page = 4096
let nfiles = 4
let path i = Printf.sprintf "/d0/f%d" (i mod nfiles)

let setup env =
  for i = 0 to nfiles - 1 do
    let fd = must (Kernel.create_file env (path i)) in
    ignore (must (Kernel.write env fd ~off:0 ~len:(8 * page)));
    Kernel.close env fd
  done

let the_account k = Option.get (Kernel.account k)

(* ---- restart (the machine-state audit) -------------------------------- *)

let test_restart_zeroes_ledger () =
  let k = boot ~seed:7 () in
  Kernel.spawn k ~name:"w" (fun env ->
      setup env;
      let r = Kernel.valloc env ~pages:32 in
      ignore (Kernel.touch_pages env r ~first:0 ~count:32);
      Kernel.vfree env r);
  Kernel.run k;
  let a = the_account k in
  Alcotest.(check bool) "ledger populated" true (Account.rows a <> []);
  let flight_before = Gray_util.Flight.recorded (Option.get (Kernel.flight k)) in
  Alcotest.(check bool) "flight recorded" true (flight_before > 0);
  Kernel.restart k;
  Alcotest.(check int) "no rows after restart" 0
    (List.length (Account.rows (the_account k)));
  Alcotest.(check (list (triple int int int))) "no blame after restart" []
    (Account.blame_triples (the_account k));
  (* the flight recorder is the black box: its pre-crash tail survives *)
  Alcotest.(check int) "flight survives restart" flight_before
    (Gray_util.Flight.recorded (Option.get (Kernel.flight k)));
  (* and a post-restart process starts from a zeroed row *)
  Kernel.spawn k ~name:"after" (fun env ->
      ignore (must (Kernel.create_file env "/d0/after")));
  Kernel.run k;
  match Account.rows (the_account k) with
  | [ st ] ->
    Alcotest.(check string) "fresh row" "after" st.Account.st_name;
    Alcotest.(check int) "fresh count" 1 st.Account.syscalls
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* ---- initiator semantics for sync-driven writebacks ------------------- *)

(* A dirties pages and exits without flushing; B runs sync.  The
   writebacks must be charged to B (the process in whose syscall the disk
   work happened), never to A as the page owner. *)
let test_sync_charged_to_caller () =
  (* sync is a no-op without the crash plane; [Crash.durable] turns on
     durability semantics (dirty pages linger) without ever crashing *)
  let k = boot ~crash:Crash.durable ~seed:8 () in
  Kernel.spawn k ~name:"dirtier" (fun env ->
      let fd = must (Kernel.create_file env "/d0/dirty") in
      ignore (must (Kernel.write env fd ~off:0 ~len:(16 * page)));
      Kernel.close env fd);
  Kernel.run k;
  Kernel.spawn k ~name:"syncer" (fun env -> Kernel.sync env);
  Kernel.run k;
  let a = the_account k in
  let row name =
    match List.find_opt (fun st -> st.Account.st_name = name) (Account.rows a) with
    | Some st -> st
    | None -> Alcotest.failf "no ledger row for %s" name
  in
  let dirtier = row "dirtier" and syncer = row "syncer" in
  Alcotest.(check bool) "sync wrote something" true (syncer.Account.writebacks > 0);
  Alcotest.(check int) "page owner not charged" 0 dirtier.Account.writebacks;
  Alcotest.(check int) "attribution exact" (Kernel.counters k).Kernel.c_file_writebacks
    (dirtier.Account.writebacks + syncer.Account.writebacks)

(* ---- attribution exactness on randomized workloads -------------------- *)

type op =
  | Write of int * int  (* file, pages *)
  | Read of int * int  (* file, offset page *)
  | Touch of int  (* anon pages *)
  | Stat of int
  | Fsync of int
  | Sync
  | Compute of int

(* A spec is derived entirely from its seed, so a spec run serially and a
   spec run on a pool domain see identical machines. *)
let gen_spec ~seed =
  let rng = Gray_util.Rng.create ~seed:(0xACC7 + seed) in
  let procs = 1 + Gray_util.Rng.int rng 3 in
  List.init procs (fun p ->
      let ops = 2 + Gray_util.Rng.int rng 5 in
      ( p,
        List.init ops (fun _ ->
            match Gray_util.Rng.int rng 7 with
            | 0 -> Write (Gray_util.Rng.int rng nfiles, 1 + Gray_util.Rng.int rng 64)
            | 1 | 2 -> Read (Gray_util.Rng.int rng nfiles, Gray_util.Rng.int rng 8)
            | 3 -> Touch (1 + Gray_util.Rng.int rng 512)
            | 4 -> Stat (Gray_util.Rng.int rng nfiles)
            | 5 -> Fsync (Gray_util.Rng.int rng nfiles)
            | 6 -> Sync
            | _ -> Compute (1 + Gray_util.Rng.int rng 1000)) ))

let run_op env = function
  | Write (f, pages) ->
    let fd = must (Kernel.open_file env (path f)) in
    ignore (must (Kernel.write env fd ~off:0 ~len:(pages * page)));
    Kernel.close env fd
  | Read (f, off) ->
    let fd = must (Kernel.open_file env (path f)) in
    ignore (must (Kernel.read env fd ~off:(off * page) ~len:(8 * page)));
    Kernel.close env fd
  | Touch pages ->
    let r = Kernel.valloc env ~pages in
    ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
    Kernel.vfree env r
  | Stat f -> ignore (must (Kernel.stat env (path f)))
  | Fsync f ->
    let fd = must (Kernel.open_file env (path f)) in
    must (Kernel.fsync env fd);
    Kernel.close env fd
  | Sync -> Kernel.sync env
  | Compute us -> Kernel.compute env ~ns:(us * 1000)

let run_spec ~seed =
  (* durable crash plane so the generated [Sync]/[Fsync] ops have dirty
     pages to write back — exactness must hold on those paths too *)
  let k = boot ~crash:Crash.durable ~seed () in
  Kernel.spawn k ~name:"setup" setup;
  Kernel.run k;
  List.iter
    (fun (p, ops) ->
      Kernel.spawn k ~name:(Printf.sprintf "proc%d" p) (fun env ->
          List.iter (run_op env) ops))
    (gen_spec ~seed);
  Kernel.run k;
  k

(* Every global counter must equal the sum of the per-pid cells: there is
   no unattributed bucket. *)
let check_exactness k =
  let rows = Account.rows (the_account k) in
  let sum f = List.fold_left (fun acc st -> acc + f st) 0 rows in
  let c = Kernel.counters k in
  let mem = Kernel.memory k in
  let pools =
    if Memory.unified mem then [ Memory.file_pool mem ]
    else [ Memory.file_pool mem; Memory.anon_pool mem ]
  in
  let pool_sum f = List.fold_left (fun acc p -> acc + f p) 0 pools in
  let checks =
    [
      ("fetches", sum (fun st -> st.Account.fetches), c.Kernel.c_file_fetches);
      ("writebacks", sum (fun st -> st.Account.writebacks), c.Kernel.c_file_writebacks);
      ("page_ins", sum (fun st -> st.Account.page_ins), c.Kernel.c_page_ins);
      ("page_outs", sum (fun st -> st.Account.page_outs), c.Kernel.c_page_outs);
      ("zero_fills", sum (fun st -> st.Account.zero_fills), c.Kernel.c_zero_fills);
      ("bytes_read", sum (fun st -> st.Account.bytes_read), c.Kernel.c_bytes_read);
      ("bytes_written", sum (fun st -> st.Account.bytes_written), c.Kernel.c_bytes_written);
      ("hits", sum (fun st -> st.Account.hits), pool_sum Pool.hits);
      ("misses", sum (fun st -> st.Account.misses), pool_sum Pool.misses);
      ("evictions", sum (fun st -> st.Account.evictions), pool_sum Pool.evictions);
      ( "blame matrix total",
        List.fold_left
          (fun acc (_, _, n) -> acc + n)
          0
          (Account.blame_triples (the_account k)),
        sum (fun st -> st.Account.evictions) );
    ]
  in
  List.for_all
    (fun (name, per_pid, global) ->
      if per_pid <> global then
        QCheck2.Test.fail_reportf "%s: per-pid sum %d <> global %d" name per_pid
          global
      else true)
    checks

let prop_sums_exact =
  QCheck2.Test.make ~name:"per-pid sums equal global counters" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed -> check_exactness (run_spec ~seed))

(* Per-kind syscall counts against the telemetry .calls counters (the
   other half of the exactness invariant), under a full sink. *)
let test_sums_match_telemetry () =
  let module Tele = Gray_util.Telemetry in
  let sink = Tele.create ~name:"acct" () in
  let k = Tele.with_sink sink (fun () -> run_spec ~seed:77) in
  let rows = Account.rows (the_account k) in
  let sum code =
    List.fold_left
      (fun acc st -> acc + st.Account.sys.(Gray_util.Flight.code_index code))
      0 rows
  in
  List.iter
    (fun (code, counter) ->
      Alcotest.(check int)
        (Printf.sprintf "per-pid %s = %s"
           (Gray_util.Flight.code_name code)
           counter)
        (Tele.counter_value sink counter)
        (sum code))
    Gray_util.Flight.
      [
        (Open, "simos.kernel.open.calls");
        (Create, "simos.kernel.create.calls");
        (Stat, "simos.kernel.stat.calls");
        (Sync, "simos.kernel.sync.calls");
      ]

(* The same specs, serially and fanned over an 8-domain pool: exactness
   holds on every domain and the aggregated exports are byte-identical
   (submission-order merge, no schedule dependence). *)
let test_exactness_across_domains () =
  let seeds = List.init 8 (fun i -> 1000 + (37 * i)) in
  let export_of ~seed =
    let k = run_spec ~seed in
    Alcotest.(check bool)
      (Printf.sprintf "exact on domain (seed %d)" seed)
      true (check_exactness k);
    Gray_util.Json.to_string (Account.export_json (Account.export (the_account k)))
  in
  let serial = List.map (fun seed -> export_of ~seed) seeds in
  let pool = Gray_util.Domain_pool.create ~size:8 in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
      (fun () -> Gray_util.Domain_pool.map pool (fun seed -> export_of ~seed) seeds)
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "export identical at -j1 vs -j8" a b)
    serial parallel

let suite =
  [
    Alcotest.test_case "restart zeroes the ledger" `Quick test_restart_zeroes_ledger;
    Alcotest.test_case "sync charged to the caller" `Quick test_sync_charged_to_caller;
    QCheck_alcotest.to_alcotest prop_sums_exact;
    Alcotest.test_case "per-kind counts match telemetry" `Quick
      test_sums_match_telemetry;
    Alcotest.test_case "exactness across domains" `Quick test_exactness_across_domains;
  ]
