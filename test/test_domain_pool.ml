(* The domain pool behind the parallel bench harness: deterministic
   result collection, crash propagation, and the serial (size 1) path. *)

open Gray_util

let with_pool ~size f =
  let pool = Domain_pool.create ~size in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

(* A self-contained job: a seeded simulation of a few hundred RNG draws,
   the same shape the bench tasks have. *)
let job seed =
  let rng = Rng.create ~seed in
  let acc = ref 0 in
  for _ = 1 to 500 do
    acc := !acc + Rng.int rng 1000
  done;
  (seed, !acc)

let test_results_in_submission_order () =
  let seeds = List.init 50 (fun i -> i * 7) in
  with_pool ~size:4 (fun pool ->
      let results = Domain_pool.map pool job seeds in
      Alcotest.(check (list int)) "submission order kept" seeds (List.map fst results))

let test_independent_of_pool_size () =
  let seeds = List.init 40 (fun i -> 100 + i) in
  let serial = List.map job seeds in
  List.iter
    (fun size ->
      with_pool ~size (fun pool ->
          let parallel = Domain_pool.map pool job seeds in
          Alcotest.(check bool)
            (Printf.sprintf "pool of %d = serial" size)
            true (parallel = serial)))
    [ 1; 2; 3; 4; 8 ]

let test_pool_of_one_runs_inline () =
  (* size 1 must execute in the submitting domain: domain-local state set
     here is visible to the job *)
  let slot = Domain.DLS.new_key (fun () -> 0) in
  Domain.DLS.set slot 42;
  with_pool ~size:1 (fun pool ->
      let seen = Domain_pool.map pool (fun () -> Domain.DLS.get slot) [ (); () ] in
      Alcotest.(check (list int)) "inline execution" [ 42; 42 ] seen)

exception Boom of int

let test_crash_propagation () =
  with_pool ~size:4 (fun pool ->
      match
        Domain_pool.map pool
          (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        (* the lowest-indexed failure wins, as in serial execution *)
        Alcotest.(check int) "first failing job's exception" 1 i)

let test_crash_propagation_serial () =
  with_pool ~size:1 (fun pool ->
      match Domain_pool.map pool (fun i -> if i = 2 then raise (Boom i) else i) [ 0; 1; 2 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "serial propagation" 2 i)

let test_pool_survives_a_crashed_batch () =
  with_pool ~size:2 (fun pool ->
      (try ignore (Domain_pool.map pool (fun () -> failwith "boom") [ (); () ])
       with Failure _ -> ());
      let ok = Domain_pool.map pool (fun x -> x * 2) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "next batch unaffected" [ 2; 4; 6 ] ok)

let test_empty_batch () =
  with_pool ~size:4 (fun pool ->
      Alcotest.(check (list int)) "empty map" [] (Domain_pool.map pool (fun x -> x) []);
      Domain_pool.run pool [])

let test_run_executes_all () =
  with_pool ~size:4 (fun pool ->
      let flags = Array.make 30 false in
      Domain_pool.run pool
        (List.init 30 (fun i () -> flags.(i) <- true));
      Alcotest.(check bool) "every thunk ran" true (Array.for_all Fun.id flags))

let test_map_after_shutdown_is_inline () =
  let pool = Domain_pool.create ~size:4 in
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool (* idempotent *);
  Alcotest.(check (list int)) "inline after shutdown" [ 2; 4 ]
    (Domain_pool.map pool (fun x -> x * 2) [ 1; 2 ])

let suite =
  [
    Alcotest.test_case "results come back in submission order" `Quick
      test_results_in_submission_order;
    Alcotest.test_case "results independent of pool size" `Quick
      test_independent_of_pool_size;
    Alcotest.test_case "pool of one runs inline" `Quick test_pool_of_one_runs_inline;
    Alcotest.test_case "lowest-indexed crash propagates" `Quick test_crash_propagation;
    Alcotest.test_case "crash propagates on the serial path" `Quick
      test_crash_propagation_serial;
    Alcotest.test_case "pool survives a crashed batch" `Quick
      test_pool_survives_a_crashed_batch;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "run executes every thunk" `Quick test_run_executes_all;
    Alcotest.test_case "map after shutdown is inline" `Quick
      test_map_after_shutdown_is_inline;
  ]
