(* Shared plumbing for the figure/table reproductions. *)

open Simos

let mib = 1024 * 1024

(* Trials default low to keep the harness snappy; the paper used 30.
   Override with GRAYBOX_TRIALS. *)
let trials =
  match Sys.getenv_opt "GRAYBOX_TRIALS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 5)
  | None -> 5

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  # %s\n%!" s) fmt

let boot ?(platform = Platform.linux_2_2) ?(data_disks = 4) ?(seed = 42) () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform ~data_disks ~seed ()

(* Run one simulated process to completion and return its result. *)
let in_proc k body =
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  match !result with Some v -> v | None -> failwith "bench process failed"

let seconds ns = Gray_util.Units.sec_of_ns ns

let mean_std samples =
  let arr = Array.of_list (List.map float_of_int samples) in
  (Gray_util.Stats.mean_of arr, Gray_util.Stats.stddev_of arr)

let pp_mean_std (m, s) = Printf.sprintf "%7.2f ± %5.2f s" (m /. 1e9) (s /. 1e9)
