(* Figure 5: File Ordering Matters.

   Total time to read 200 x 8 KB files split across two directories on a
   cold cache, in three orders: random, sorted by directory, sorted by
   i-number — on each platform preset. *)

open Simos
open Graybox_core
open Bench_common

let files_per_dir = 100
let file_bytes = 8 * 1024

let experiment platform =
  let k = boot ~platform () in
  in_proc k (fun env ->
      let a =
        Gray_apps.Workload.make_files env ~dir:"/d0/dira" ~prefix:"a" ~count:files_per_dir
          ~size:file_bytes
      in
      let b =
        Gray_apps.Workload.make_files env ~dir:"/d0/dirb" ~prefix:"b" ~count:files_per_dir
          ~size:file_bytes
      in
      (* interleave the two directories, as a shell glob across dirs might *)
      let mixed = List.concat (List.map2 (fun x y -> [ x; y ]) a b) in
      let rng = Gray_util.Rng.create ~seed:29 in
      let timed_read order =
        Kernel.flush_file_cache k;
        let t0 = Kernel.gettime env in
        List.iter (fun p -> Gray_apps.Workload.read_file env p) order;
        Kernel.gettime env - t0
      in
      let random_runs =
        List.init trials (fun _ ->
            let arr = Array.of_list mixed in
            Gray_util.Rng.shuffle rng arr;
            timed_read (Array.to_list arr))
      in
      let dir_runs =
        List.init trials (fun _ ->
            (* group a randomly ordered argument list by directory: within
               a directory the order stays random, as for a user's shell *)
            let arr = Array.of_list mixed in
            Gray_util.Rng.shuffle rng arr;
            timed_read (Fldc.order_by_directory ~paths:(Array.to_list arr)))
      in
      let ino_runs =
        List.init trials (fun _ ->
            let ordered = Gray_apps.Workload.ok_exn (Fldc.order_by_inumber env ~paths:mixed) in
            timed_read (List.map (fun s -> s.Fldc.so_path) ordered))
      in
      (mean_std random_runs, mean_std dir_runs, mean_std ino_runs))

let run () =
  header "Figure 5: File Ordering Matters (200 x 8 KB files in two directories, cold cache)";
  note "%d trials per bar (paper: 30)" trials;
  let table =
    Gray_util.Table.create ~title:"total access time"
      ~columns:[ "platform"; "random order"; "sort by directory"; "sort by i-number" ]
  in
  List.iter
    (fun platform ->
      let random, bydir, byino = experiment platform in
      Gray_util.Table.add_row table
        [
          platform.Platform.name; pp_mean_std random; pp_mean_std bydir; pp_mean_std byino;
        ])
    Platform.all;
  print_string (Gray_util.Table.render table);
  note "expected shape: directory sort ~10-25%% better than random; i-number sort a factor of ~6 (paper: 6x linux/netbsd, >2x solaris)"
