(* Figure 4: Multi-Platform Experiments.

   Repeated large-file scans and early-exit multi-file searches on the
   Linux, NetBSD and Solaris presets.  Per experiment, three bars:
   cold-cache traditional, warm-cache traditional, warm-cache gray-box,
   normalised to the cold-cache time on that platform.

   Platform-specific sizes follow the paper: scans are over 1 GB on Linux
   and Solaris but 65 MB on NetBSD (its file cache is a fixed 64 MB);
   searches are over 100 x 10 MB files (NetBSD: 65 x 1 MB) with the match
   in a cached file named last. *)

open Simos
open Graybox_core
open Bench_common

let fccd_for scan_bytes seed =
  if scan_bytes > 100 * mib then
    { (Fccd.default_config ~seed ()) with Fccd.access_unit = 20 * mib; prediction_unit = 5 * mib }
  else
    { (Fccd.default_config ~seed ()) with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

let scan_experiment platform ~file_bytes =
  let k = boot ~platform () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/scanfile" file_bytes;
      Kernel.flush_file_cache k;
      let cold = Gray_apps.Scan.linear env ~path:"/d0/scanfile" ~unit_bytes:(20 * mib) in
      let warm = ref 0 in
      for _ = 1 to 3 do
        warm := Gray_apps.Scan.linear env ~path:"/d0/scanfile" ~unit_bytes:(20 * mib)
      done;
      Kernel.flush_file_cache k;
      let config = fccd_for file_bytes 11 in
      let gray = ref 0 in
      for _ = 1 to 3 do
        gray := Gray_apps.Scan.gray env config ~path:"/d0/scanfile"
      done;
      (cold, !warm, !gray))

let search_experiment platform ~count ~size =
  let k = boot ~platform () in
  in_proc k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/texts" ~prefix:"t" ~count ~size
      in
      let target = List.nth paths (count - 1) in
      let match_in p = p = target in
      let prepare () =
        Kernel.flush_file_cache k;
        (* the match lives in a cached file specified last *)
        Gray_apps.Workload.read_file env target
      in
      prepare ();
      let _, cold =
        (* cold-cache traditional run: flush without the warm target *)
        Kernel.flush_file_cache k;
        Gray_apps.Search.run env ~paths ~match_in ()
      in
      prepare ();
      let _, warm = Gray_apps.Search.run env ~paths ~match_in () in
      prepare ();
      let _, gray =
        Gray_apps.Search.run env ~gray:(fccd_for (count * size) 13) ~paths ~match_in ()
      in
      (cold, warm, gray))

let run () =
  header "Figure 4: Multi-Platform Experiments (normalised to the cold-cache run per platform)";
  let spec =
    [
      (Platform.linux_2_2, 1024 * mib, 100, 10 * mib);
      (Platform.netbsd_1_5, 65 * mib, 65, 1 * mib);
      (Platform.solaris_7, 1024 * mib, 100, 10 * mib);
    ]
  in
  let results =
    List.map
      (fun (platform, scan_bytes, n, sz) ->
        let sc, sw, sg = scan_experiment platform ~file_bytes:scan_bytes in
        let ec, ew, eg = search_experiment platform ~count:n ~size:sz in
        (platform.Platform.name, (sc, sw, sg), (ec, ew, eg)))
      spec
  in
  let rel (c, w, g) =
    (1.0, float_of_int w /. float_of_int c, float_of_int g /. float_of_int c)
  in
  let table =
    Gray_util.Table.create ~title:"relative execution time (cold = 1.00)"
      ~columns:
        [ "platform"; "scan cold"; "scan warm"; "scan gray"; "search cold";
          "search warm"; "search gray" ]
  in
  List.iter
    (fun (name, scan, search) ->
      let _, sw, sg = rel scan and _, ew, eg = rel search in
      let c1, _, _ = scan and c2, _, _ = search in
      Gray_util.Table.add_row table
        [
          name;
          Printf.sprintf "1.00 (%.1fs)" (seconds c1);
          Printf.sprintf "%.2f" sw;
          Printf.sprintf "%.2f" sg;
          Printf.sprintf "1.00 (%.1fs)" (seconds c2);
          Printf.sprintf "%.2f" ew;
          Printf.sprintf "%.2f" eg;
        ])
    results;
  print_string (Gray_util.Table.render table);
  note "expected shape: linux warm scan ~ cold (LRU thrash) but gray much faster;";
  note "solaris warm ~ gray (sticky cache); search gray << warm everywhere;";
  note "paper cold baselines: scans 54.3/3.5/75.3s, searches 53.3/17.0/76.9s"
