(* Figure 2: Single-File Scan.

   Warm-cache repeated scans of a file of varying size: traditional linear
   scan vs gray-box scan, with the predicted worst-case (all from disk) and
   predicted ideal (cached part at memory-copy rate) model curves. *)

open Simos
open Bench_common

let sizes = List.map (fun m -> m * mib) [ 128; 256; 384; 512; 640; 768; 896; 1024; 1152; 1280 ]
let cache_bytes = 830 * mib

let models (platform : Platform.t) size =
  let disk_ns_per_byte =
    float_of_int platform.Platform.disk.Disk.transfer_ns_per_block /. 4096.0
  in
  let worst =
    float_of_int size *. (disk_ns_per_byte +. platform.Platform.memcopy_byte_ns)
  in
  let cached = min size cache_bytes in
  let ideal =
    (float_of_int cached *. platform.Platform.memcopy_byte_ns)
    +. (float_of_int (max 0 (size - cached))
       *. (disk_ns_per_byte +. platform.Platform.memcopy_byte_ns))
  in
  (worst, ideal)

let steady_scan k env ~variant ~path =
  Kernel.flush_file_cache k;
  let config =
    { (Graybox_core.Fccd.default_config ~seed:7 ()) with Graybox_core.Fccd.access_unit = 20 * mib;
      prediction_unit = 5 * mib }
  in
  let once () =
    match variant with
    | `Linear -> Gray_apps.Scan.linear env ~path ~unit_bytes:(20 * mib)
    | `Gray -> Gray_apps.Scan.gray env config ~path
  in
  ignore (once ());
  (* warm-up: establishes the steady-state cache contents *)
  List.init trials (fun _ -> once ())

let run () =
  header "Figure 2: Single-File Scan (warm cache, repeated runs)";
  note "%d timed runs after one warm-up per point (paper: 30)" trials;
  let platform = Platform.linux_2_2 in
  let table =
    Gray_util.Table.create ~title:"total access time"
      ~columns:[ "file size"; "linear scan"; "gray-box scan"; "model worst"; "model ideal" ]
  in
  List.iter
    (fun size ->
      let k = boot ~platform () in
      let linear, gray =
        in_proc k (fun env ->
            Gray_apps.Workload.write_file env "/d0/scanfile" size;
            let linear = steady_scan k env ~variant:`Linear ~path:"/d0/scanfile" in
            let gray = steady_scan k env ~variant:`Gray ~path:"/d0/scanfile" in
            (linear, gray))
      in
      let worst, ideal = models platform size in
      Gray_util.Table.add_row table
        [
          Gray_util.Units.bytes_to_string size;
          pp_mean_std (mean_std linear);
          pp_mean_std (mean_std gray);
          Printf.sprintf "%7.2f s" (worst /. 1e9);
          Printf.sprintf "%7.2f s" (ideal /. 1e9);
        ])
    sizes;
  print_string (Gray_util.Table.render table);
  note "expected shape: linear collapses to disk rate past ~830 MB; gray-box tracks the ideal model"
