bench/bench_common.ml: Array Engine Gray_util Kernel List Platform Printf Simos Sys
