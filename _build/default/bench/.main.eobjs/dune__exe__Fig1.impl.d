bench/fig1.ml: Array Bench_common Gray_apps Gray_util Introspect Kernel List Printf Simos
