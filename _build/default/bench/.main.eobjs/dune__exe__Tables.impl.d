bench/tables.ml: Bench_common Fccd Gray_apps Gray_related Gray_util Graybox_core Kernel Mac Printf Simos
