bench/fig5.ml: Array Bench_common Fldc Gray_apps Gray_util Graybox_core Kernel List Platform Simos
