bench/fig2.ml: Bench_common Disk Gray_apps Gray_util Graybox_core Kernel List Platform Printf Simos
