bench/micro.ml: Analyze Array Bechamel Bench_common Benchmark Gray_util Hashtbl Instance List Measure Printf Simos Staged Test Time Toolkit
