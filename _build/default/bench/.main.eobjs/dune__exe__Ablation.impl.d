bench/ablation.ml: Array Bench_common Engine Fccd Gray_apps Gray_util Graybox_core Introspect Kernel List Mac Platform Printf Replacement Simos
