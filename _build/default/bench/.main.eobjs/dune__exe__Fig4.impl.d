bench/fig4.ml: Bench_common Fccd Gray_apps Gray_util Graybox_core Kernel List Platform Printf Simos
