bench/fingerprint_bench.ml: Bench_common Fingerprint Gray_util Graybox_core List Platform Printf Replacement Simos
