bench/fig7.ml: Array Bench_common Fun Gray_apps Gray_util Graybox_core Kernel List Mac Printf Simos
