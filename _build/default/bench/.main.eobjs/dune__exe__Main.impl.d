bench/main.ml: Ablation Array Baselines Bench_common Fig1 Fig2 Fig3 Fig4 Fig5 Fig6 Fig7 Fingerprint_bench List Micro Printf Sys Tables
