bench/main.mli:
