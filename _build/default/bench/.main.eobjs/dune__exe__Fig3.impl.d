bench/fig3.ml: Bench_common Fccd Gray_apps Gray_util Graybox_core Kernel Simos
