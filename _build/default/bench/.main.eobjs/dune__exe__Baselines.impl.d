bench/baselines.ml: Array Bench_common Engine Fccd Float Gray_apps Gray_util Graybox_core Interpose Introspect Kernel List Mac Platform Printf Replacement Simos Sleds
