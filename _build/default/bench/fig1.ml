(* Figure 1: Probe Correlation.

   "The graph plots the correlation between the presence of a single random
   page within a prediction unit and the percentage of that unit that is in
   the file cache.  The size of the prediction unit is increased along the
   x-axis [...].  Three sets of points are plotted, which vary the access
   pattern of the test program [1 MB, 10 MB, 100 MB access units].  The
   file that is accessed is roughly twice the size of the file cache."

   Ground truth comes from Introspect.cache_bitmap — the role the paper's
   modified kernel played. *)

open Simos
open Bench_common

let file_bytes = 1664 * mib (* ~2x the 830 MB cache *)
let access_units = [ 1 * mib; 10 * mib; 100 * mib ]

let prediction_units =
  [ 1 * mib; 2 * mib; 5 * mib; 10 * mib; 20 * mib; 50 * mib; 100 * mib; 200 * mib ]

(* One trial: flush, read file_bytes worth of data in random access-unit
   chunks, then compute the presence/fraction correlation for every
   prediction-unit size from the same cache bitmap. *)
let trial k env rng ~access_unit =
  Kernel.flush_file_cache k;
  let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/corpus") in
  let chunks = file_bytes / access_unit in
  for _ = 1 to chunks do
    let off = Gray_util.Rng.int rng chunks * access_unit in
    ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len:access_unit))
  done;
  Kernel.close env fd;
  let bitmap =
    match Introspect.cache_bitmap k ~path:"/d0/corpus" with
    | Ok b -> b
    | Error _ -> failwith "fig1: bitmap"
  in
  let page = 4096 in
  let correlation_for pu =
    let pages_per_unit = pu / page in
    let units = Array.length bitmap / pages_per_unit in
    let xs = Array.make units 0.0 and ys = Array.make units 0.0 in
    for u = 0 to units - 1 do
      let base = u * pages_per_unit in
      let probe = base + Gray_util.Rng.int rng pages_per_unit in
      xs.(u) <- (if bitmap.(probe) then 1.0 else 0.0);
      let cached = ref 0 in
      for p = base to base + pages_per_unit - 1 do
        if bitmap.(p) then incr cached
      done;
      ys.(u) <- float_of_int !cached /. float_of_int pages_per_unit
    done;
    Gray_util.Correlate.pearson xs ys
  in
  List.map correlation_for prediction_units

let run () =
  header "Figure 1: Probe Correlation (presence of one probed page vs fraction of prediction unit cached)";
  note "file %s, cache %d MB, %d trials (paper: 30)" (Gray_util.Units.bytes_to_string file_bytes)
    830 trials;
  let table =
    Gray_util.Table.create ~title:"correlation (mean +/- std over trials)"
      ~columns:
        ("prediction unit"
        :: List.map (fun au -> Printf.sprintf "access %s" (Gray_util.Units.bytes_to_string au))
             access_units)
  in
  (* per access unit: trials x prediction-unit correlations *)
  let results =
    List.map
      (fun access_unit ->
        let k = boot () in
        in_proc k (fun env ->
            Gray_apps.Workload.write_file env "/d0/corpus" file_bytes;
            let rng = Gray_util.Rng.create ~seed:(1000 + access_unit) in
            List.init trials (fun _ -> trial k env rng ~access_unit)))
      access_units
  in
  List.iteri
    (fun pi pu ->
      let row =
        Gray_util.Units.bytes_to_string pu
        :: List.map
             (fun per_trial ->
               let samples =
                 Array.of_list (List.map (fun tr -> List.nth tr pi) per_trial)
               in
               Printf.sprintf "%5.2f ± %4.2f" (Gray_util.Stats.mean_of samples)
                 (Gray_util.Stats.stddev_of samples))
             results
      in
      Gray_util.Table.add_row table row)
    prediction_units;
  print_string (Gray_util.Table.render table);
  note "expected shape: correlation stays high while prediction unit <= access unit, then falls off"
