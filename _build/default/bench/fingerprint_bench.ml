(* Fingerprinting the OS from user level (the Section 4.1.4 duality).

   The same probe library that exploits the cache can identify it: for
   every platform preset (and every replacement policy in an ablation
   row), run the gray-box fingerprint and report the verdict next to the
   truth the preset encodes. *)

open Simos
open Graybox_core
open Bench_common

let policy_name = function
  | `Recency -> "recency (LRU/clock)"
  | `Fifo -> "fifo"
  | `Sticky -> "sticky (MRU-evict)"
  | `Unknown -> "unknown"

let fingerprint_platform platform =
  let k = boot ~platform ~data_disks:1 () in
  in_proc k (fun env -> Fingerprint.classify env ~scratch_dir:"/d0" ())

let run () =
  header "Fingerprinting: identifying the file-cache policy with timed probes only";
  let t =
    Gray_util.Table.create ~title:"platform presets"
      ~columns:[ "platform"; "truth"; "verdict"; "est. capacity"; "evidence" ]
  in
  List.iter
    (fun (platform, truth) ->
      let v = fingerprint_platform platform in
      Gray_util.Table.add_row t
        [
          platform.Platform.name;
          truth;
          policy_name v.Fingerprint.v_policy;
          Gray_util.Units.bytes_to_string v.Fingerprint.v_capacity_bytes;
          v.Fingerprint.v_evidence;
        ])
    [
      (Platform.linux_2_2, "clock, ~830 MB unified");
      (Platform.netbsd_1_5, "lru, fixed 64 MB");
      (Platform.solaris_7, "mru-sticky, 700 MB");
    ];
  print_string (Gray_util.Table.render t);
  let t2 =
    Gray_util.Table.create ~title:"policy ablation (640 MB fixed file cache each)"
      ~columns:[ "true policy"; "verdict"; "scores (recency/fifo/sticky)" ]
  in
  List.iter
    (fun name ->
      let platform =
        Platform.with_file_policy
          { Platform.linux_2_2 with Platform.file_cache = `Fixed_mib 640 }
          (Replacement.of_name name)
      in
      let k = boot ~platform ~data_disks:1 () in
      let v =
        in_proc k (fun env ->
            Fingerprint.classify env ~scratch_dir:"/d0"
              ~capacity_hint:(640 * mib) ())
      in
      Gray_util.Table.add_row t2
        [
          name;
          policy_name v.Fingerprint.v_policy;
          Printf.sprintf "%.2f / %.2f / %.2f" v.Fingerprint.v_recency_score
            v.Fingerprint.v_fifo_score v.Fingerprint.v_sticky_score;
        ])
    Replacement.all_names;
  print_string (Gray_util.Table.render t2);
  note "expected: lru/clock/segmented/eelru -> recency; fifo -> fifo; mru-sticky -> sticky;";
  note "two-q sits between fifo and recency (probation is a fifo)"
