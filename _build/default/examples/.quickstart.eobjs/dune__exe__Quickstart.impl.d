examples/quickstart.ml: Engine Fccd Gray_apps Gray_util Graybox_core Introspect Kernel List Platform Printf Simos
