examples/cache_aware_grep.ml: Engine Fccd Gray_apps Gray_util Graybox_core Kernel Platform Printf Simos
