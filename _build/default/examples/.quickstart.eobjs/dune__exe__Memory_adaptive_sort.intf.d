examples/memory_adaptive_sort.mli:
