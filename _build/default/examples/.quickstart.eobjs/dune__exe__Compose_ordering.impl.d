examples/compose_ordering.ml: Compose Engine Fccd Fldc Gbp Gray_apps Gray_util Graybox_core Kernel List Platform Printf Simos
