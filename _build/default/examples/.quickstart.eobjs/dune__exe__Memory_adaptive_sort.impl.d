examples/memory_adaptive_sort.ml: Engine Gray_apps Gray_util Graybox_core Kernel List Mac Platform Printf Simos String
