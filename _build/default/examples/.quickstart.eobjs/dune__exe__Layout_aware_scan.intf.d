examples/layout_aware_scan.mli:
