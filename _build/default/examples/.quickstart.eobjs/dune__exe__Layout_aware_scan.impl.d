examples/layout_aware_scan.ml: Array Engine Fldc Gray_apps Gray_util Graybox_core Kernel List Platform Printf Simos
