examples/multi_platform_survey.mli:
