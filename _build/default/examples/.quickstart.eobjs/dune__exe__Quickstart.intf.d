examples/quickstart.mli:
