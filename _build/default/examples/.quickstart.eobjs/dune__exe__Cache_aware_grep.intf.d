examples/cache_aware_grep.mli:
