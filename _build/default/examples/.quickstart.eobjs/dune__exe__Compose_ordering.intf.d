examples/compose_ordering.mli:
