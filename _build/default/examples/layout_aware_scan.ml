(* Layout-aware small-file access: the FLDC story (Section 4.2).

   Reading many small files in i-number order approximates their on-disk
   layout and saves most of the seek time; file-system aging erodes the
   correlation; a directory refresh restores it.

     dune exec examples/layout_aware_scan.exe *)

open Simos
open Graybox_core

let () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform:Platform.linux_2_2 ~seed:23 () in
  Kernel.spawn kernel (fun env ->
      let read_all order =
        Kernel.flush_file_cache kernel;
        let t0 = Kernel.gettime env in
        List.iter (fun p -> Gray_apps.Workload.read_file env p) order;
        Kernel.gettime env - t0
      in
      let measure tag =
        let paths = Gray_apps.Workload.paths_in env ~dir:"/d0/mail" in
        let rng = Gray_util.Rng.create ~seed:5 in
        let arr = Array.of_list paths in
        Gray_util.Rng.shuffle rng arr;
        let random_ns = read_all (Array.to_list arr) in
        let ordered = Gray_apps.Workload.ok_exn (Fldc.order_by_inumber env ~paths) in
        let ino_ns = read_all (List.map (fun s -> s.Fldc.so_path) ordered) in
        Printf.printf "  %-18s random order %6.2f s   i-number order %6.2f s (%.1fx)\n%!"
          tag
          (Gray_util.Units.sec_of_ns random_ns)
          (Gray_util.Units.sec_of_ns ino_ns)
          (float_of_int random_ns /. float_of_int ino_ns)
      in
      Printf.printf "creating 200 x 8 KB files in /d0/mail ...\n%!";
      ignore
        (Gray_apps.Workload.make_files env ~dir:"/d0/mail" ~prefix:"msg" ~count:200
           ~size:8192);
      measure "fresh directory:";
      Printf.printf "aging the file system (30 epochs of delete-5/create-5) ...\n%!";
      let rng = Gray_util.Rng.create ~seed:6 in
      for _ = 1 to 30 do
        Gray_apps.Workload.age_directory env rng ~dir:"/d0/mail" ~deletes:5 ~creates:5
          ~size:8192
      done;
      measure "aged 30 epochs:";
      Printf.printf "refreshing the directory (copy out small-files-first, swap back) ...\n%!";
      (match Fldc.refresh_directory env ~dir:"/d0/mail" () with
      | Ok () -> ()
      | Error e -> failwith (Kernel.error_to_string e));
      measure "after refresh:")
    ;
  Kernel.run kernel
