(* Multi-platform survey: the same FCCD library against three different
   replacement regimes (Section 4.1.3).

   One advantage of gray-box ICLs is portability: the library assumes only
   "replacement based on time of last access" and tunes itself from
   observations, so the identical code runs against the Linux, NetBSD and
   Solaris presets — and, like the paper, the survey doubles as a
   microbenchmark of the platforms themselves, exposing NetBSD's tiny
   fixed cache and Solaris's sticky one.

     dune exec examples/multi_platform_survey.exe *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let survey platform =
  Printf.printf "\n--- %s ---\n%!" platform.Platform.name;
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform ~seed:31 () in
  Kernel.spawn kernel (fun env ->
      let file_bytes =
        (* NetBSD's file cache is a fixed 64 MB; use a file that fits it *)
        match platform.Platform.file_cache with
        | `Fixed_mib m when m <= 128 -> 48 * mib
        | `Fixed_mib _ | `Unified -> 512 * mib
      in
      Gray_apps.Workload.write_file env "/d0/data" file_bytes;
      Kernel.flush_file_cache kernel;
      (* warm the first half *)
      let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/data") in
      ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off:0 ~len:(file_bytes / 2)));
      Kernel.close env fd;
      let config =
        {
          (Fccd.default_config ~seed:13 ()) with
          Fccd.access_unit = 16 * mib;
          prediction_unit = 4 * mib;
        }
      in
      let plan = Gray_apps.Workload.ok_exn (Fccd.probe_file env config ~path:"/d0/data") in
      let cached_extents =
        List.length (List.filter (fun (_, ns) -> ns < 1_000_000) plan.Fccd.plan_extents)
      in
      let truth = Introspect.cached_fraction kernel ~path:"/d0/data" in
      Printf.printf "  file %s, warmed first half\n"
        (Gray_util.Units.bytes_to_string file_bytes);
      Printf.printf "  FCCD: %d/%d extents look cached; white-box truth: %.0f%% of pages\n"
        cached_extents
        (List.length plan.Fccd.plan_extents)
        (100.0 *. truth);
      let linear = Gray_apps.Scan.linear env ~path:"/d0/data" ~unit_bytes:(16 * mib) in
      let gray = Gray_apps.Scan.gray env config ~path:"/d0/data" in
      Printf.printf "  warm scan: linear %6.1f s   gray-box %6.1f s (%.2fx)\n"
        (Gray_util.Units.sec_of_ns linear)
        (Gray_util.Units.sec_of_ns gray)
        (float_of_int linear /. float_of_int gray));
  Kernel.run kernel

let () =
  Printf.printf "FCCD portability survey (identical ICL code on each platform)\n";
  List.iter survey Platform.all
