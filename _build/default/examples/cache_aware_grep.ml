(* Cache-aware grep: the paper's flagship scenario (Sections 1 and 4.1).

   A user greps the same 100 x 10 MB corpus over and over (perhaps with
   different arguments).  The corpus is slightly bigger than the file
   cache, so an unmodified grep runs in LRU worst-case mode — every byte
   comes from disk on every run.  gb-grep asks the FCCD for the files
   most likely cached and processes those first; unmodified grep over the
   gbp-ordered argument list gets most of the same benefit without
   modifying grep at all.

     dune exec examples/cache_aware_grep.exe *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform:Platform.linux_2_2 ~seed:21 () in
  Kernel.spawn kernel (fun env ->
      Printf.printf "creating 100 x 10 MB corpus on /d0 ...\n%!";
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/corpus" ~prefix:"doc" ~count:100
          ~size:(10 * mib)
      in
      let matches _ = 1 in
      let config = Fccd.default_config ~seed:3 () in
      let steady label variant =
        Kernel.flush_file_cache kernel;
        let time = ref 0 in
        for run = 1 to 4 do
          let _, ns = Gray_apps.Grep.run env config variant ~paths ~matches in
          time := ns;
          Printf.printf "  %-12s run %d: %6.1f s\n%!" label run
            (Gray_util.Units.sec_of_ns ns)
        done;
        !time
      in
      let unmod = steady "unmodified" Gray_apps.Grep.Unmodified in
      let gray = steady "gb-grep" Gray_apps.Grep.Gray in
      let gbp = steady "via gbp" Gray_apps.Grep.Via_gbp in
      Printf.printf "\nsteady state: unmodified %.1f s, gb-grep %.1f s (%.1fx), gbp %.1f s (%.1fx)\n"
        (Gray_util.Units.sec_of_ns unmod)
        (Gray_util.Units.sec_of_ns gray)
        (float_of_int unmod /. float_of_int gray)
        (Gray_util.Units.sec_of_ns gbp)
        (float_of_int unmod /. float_of_int gbp);
      Printf.printf "(the paper reports roughly a factor of three for gb-grep)\n");
  Kernel.run kernel
