(* Composing FCCD with FLDC (Section 4.2.4).

   Many small files, partly cached, on an aged file system.  Four ways to
   visit them:
   - shell order (sorted names — layout-oblivious);
   - FLDC i-number order (one cheap stat each; great for disk layout,
     blind to the cache);
   - FCCD probe order (finds the cached files, but each probe of an
     uncached small file costs a disk access — the Heisenberg tax);
   - the composition: cached files first, each group i-number sorted.

     dune exec examples/compose_ordering.exe *)

open Simos
open Graybox_core

let kib = 1024
let file_bytes = 128 * kib
let file_count = 200

let timed_read env order =
  let t0 = Kernel.gettime env in
  List.iter (fun p -> Gray_apps.Workload.read_file env p) order;
  Kernel.gettime env - t0

let () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform:Platform.linux_2_2 ~seed:37 () in
  Kernel.spawn kernel (fun env ->
      ignore
        (Gray_apps.Workload.make_files env ~dir:"/d0/mix" ~prefix:"f"
           ~count:file_count ~size:file_bytes);
      let rng = Gray_util.Rng.create ~seed:41 in
      for _ = 1 to 12 do
        Gray_apps.Workload.age_directory env rng ~dir:"/d0/mix" ~deletes:8 ~creates:8
          ~size:file_bytes
      done;
      let paths = Gray_apps.Workload.paths_in env ~dir:"/d0/mix" in
      let config =
        {
          (Fccd.default_config ~seed:43 ()) with
          Fccd.access_unit = 512 * kib;
          prediction_unit = 256 * kib;
        }
      in
      let warm () =
        Kernel.flush_file_cache kernel;
        List.iteri
          (fun i p -> if i mod 3 = 0 then Gray_apps.Workload.read_file env p)
          paths
      in
      let run label order_of =
        warm ();
        let t0 = Kernel.gettime env in
        let order = order_of () in
        let ordering_ns = Kernel.gettime env - t0 in
        let read_ns = timed_read env order in
        Printf.printf "  %-22s ordering %6.2f s + reads %6.2f s = %6.2f s\n%!" label
          (Gray_util.Units.sec_of_ns ordering_ns)
          (Gray_util.Units.sec_of_ns read_ns)
          (Gray_util.Units.sec_of_ns (ordering_ns + read_ns))
      in
      Printf.printf "%d x %d KB files, every third warmed, aged file system:\n"
        file_count (file_bytes / kib);
      run "shell order" (fun () -> paths);
      run "FLDC (stat only)" (fun () ->
          List.map
            (fun s -> s.Fldc.so_path)
            (Gray_apps.Workload.ok_exn (Fldc.order_by_inumber env ~paths)));
      run "FCCD (probes)" (fun () ->
          Gray_apps.Workload.ok_exn (Gbp.best_order env config Gbp.Mem ~paths));
      run "FCCD + FLDC compose" (fun () ->
          let d = Gray_apps.Workload.ok_exn (Compose.order_files env config paths) in
          Printf.printf "      (predicted %d cached files, separation %.0fx)\n%!"
            (List.length d.Compose.d_in_cache) d.Compose.d_separation;
          d.Compose.d_order);
      Printf.printf
        "\nthe numbers show the paper's own caveat (Section 4.1.4): for small files\n\
         each probe of an uncached file costs a disk access, so the probing orders\n\
         pay for themselves only under real cache pressure — the stat-based FLDC\n\
         ordering is the cheap default, and compose repairs FCCD's on-disk tail\n\
         order when probing is worth it (compare the two probing rows' reads).\n");
  Kernel.run kernel
