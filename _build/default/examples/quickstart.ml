(* Quickstart: boot a simulated OS, make some files, and ask the FCCD
   which parts of a big file are in the file cache — without any help from
   the kernel, just timed 1-byte probes.

     dune exec examples/quickstart.exe *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let () =
  (* 1. Boot a simulated Linux 2.2 with 896 MB of memory and 4 data disks
     (plus a swap disk), fully deterministic under this seed. *)
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform:Platform.linux_2_2 ~seed:7 () in
  Kernel.spawn kernel (fun env ->
      (* 2. Create a 1 GB file and flush the cache, then warm roughly half
         of it by reading scattered 20 MB pieces. *)
      Gray_apps.Workload.write_file env "/d0/big" (1024 * mib);
      Kernel.flush_file_cache kernel;
      let rng = Gray_util.Rng.create ~seed:9 in
      let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/big") in
      for _ = 1 to 25 do
        let off = Gray_util.Rng.int rng 51 * (20 * mib) in
        ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len:(20 * mib)))
      done;
      Kernel.close env fd;

      (* 3. Gray-box time: probe the file.  FCCD reads one random byte per
         5 MB prediction unit and sorts 20 MB access units by total probe
         time — fastest (cached) first. *)
      let config = Fccd.default_config ~seed:11 () in
      let plan =
        Gray_apps.Workload.ok_exn (Fccd.probe_file env config ~path:"/d0/big")
      in
      Printf.printf "FCCD issued %d probes over %s\n" plan.Fccd.plan_probes
        (Gray_util.Units.bytes_to_string plan.Fccd.plan_size);
      Printf.printf "best access order (first 8 extents):\n";
      List.iteri
        (fun i (e, ns) ->
          if i < 8 then
            Printf.printf "  offset %4d MB  probe time %s%s\n"
              (e.Fccd.ext_off / mib)
              (Gray_util.Units.ns_to_string ns)
              (if ns < 1_000_000 then "  <- in cache" else ""))
        plan.Fccd.plan_extents;

      (* 4. Check the inference against white-box ground truth (tests and
         benches only — applications never get to do this). *)
      let truth = Introspect.cached_fraction kernel ~path:"/d0/big" in
      let predicted_cached =
        List.length
          (List.filter (fun (_, ns) -> ns < 1_000_000) plan.Fccd.plan_extents)
      in
      Printf.printf "predicted cached: %d/52 extents; truth: %.0f%% of pages\n"
        predicted_cached (100.0 *. truth);

      (* 5. Use the plan: read cached data first, then the rest. *)
      let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/big") in
      let t0 = Kernel.gettime env in
      Fccd.read_plan env fd plan ~f:(fun ~off:_ ~len:_ -> ());
      Printf.printf "gray-box full read: %s\n"
        (Gray_util.Units.ns_to_string (Kernel.gettime env - t0));
      Kernel.close env fd);
  Kernel.run kernel
