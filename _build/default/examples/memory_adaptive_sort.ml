(* Memory-adaptive sorting with MAC (Section 4.3).

   Two external sorts compete for memory.  The static version guesses a
   pass size on the command line — guess high and the machine pages,
   guess low and passes multiply.  gb-fastsort asks MAC's gb_alloc how
   much memory is *currently* available and sizes each pass to fit.

     dune exec examples/memory_adaptive_sort.exe *)

open Simos
open Graybox_core

let mib = 1024 * 1024
let input_bytes = 400 * mib

let sort_pair kernel ~label ~policy =
  Printf.printf "%s:\n%!" label;
  Kernel.flush_file_cache kernel;
  Kernel.drop_all_memory kernel;
  Kernel.reset_counters kernel;
  let finish = ref [] in
  for i = 0 to 1 do
    Kernel.spawn kernel ~name:(Printf.sprintf "sort%d" i) (fun env ->
        let config =
          Gray_apps.Fastsort.default_config
            ~input:(Printf.sprintf "/d%d/input" i)
            ~run_dir:(Printf.sprintf "/d%d/runs.%s" i label)
        in
        let times =
          Gray_apps.Fastsort.run_phase1 env config ~policy ~total_bytes:input_bytes
        in
        finish := (i, times) :: !finish)
  done;
  Kernel.run kernel;
  let c = Kernel.counters kernel in
  List.iter
    (fun (i, t) ->
      Printf.printf
        "  sort%d: total %6.1f s  (read %5.1f, sort %5.1f, write %5.1f, overhead %5.1f)  passes: %s MB\n"
        i
        (Gray_util.Units.sec_of_ns (Gray_apps.Fastsort.total_ns t))
        (Gray_util.Units.sec_of_ns t.Gray_apps.Fastsort.pt_read)
        (Gray_util.Units.sec_of_ns t.Gray_apps.Fastsort.pt_sort)
        (Gray_util.Units.sec_of_ns t.Gray_apps.Fastsort.pt_write)
        (Gray_util.Units.sec_of_ns t.Gray_apps.Fastsort.pt_overhead)
        (String.concat "+"
           (List.map (fun b -> string_of_int (b / mib)) t.Gray_apps.Fastsort.pt_pass_bytes)))
    (List.sort compare !finish);
  Printf.printf "  paging: %d page-outs, %d page-ins\n\n%!" c.Kernel.c_page_outs
    c.Kernel.c_page_ins

let () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~platform:Platform.linux_2_2 ~data_disks:2 ~seed:29 () in
  (* inputs, created once *)
  for i = 0 to 1 do
    Kernel.spawn kernel (fun env ->
        Gray_apps.Workload.write_file env (Printf.sprintf "/d%d/input" i) input_bytes)
  done;
  Kernel.run kernel;
  Printf.printf "two sorts of %s each; 830 MB of memory\n\n"
    (Gray_util.Units.bytes_to_string input_bytes);
  sort_pair kernel ~label:"static-550MB-each"
    ~policy:(Gray_apps.Fastsort.Static_pass (550 * mib));
  sort_pair kernel ~label:"static-200MB-each"
    ~policy:(Gray_apps.Fastsort.Static_pass (200 * mib));
  let mac = Mac.default_config () in
  sort_pair kernel ~label:"gb-fastsort-with-MAC"
    ~policy:
      (Gray_apps.Fastsort.Mac_adaptive
         { mac; min_bytes = 100 * mib; retry_ns = 250_000_000 });
  Printf.printf
    "the static guesses either page (550 MB x 2 > 830 MB) or leave memory idle;\n\
     MAC-sized passes adapt to what is actually available.\n"
