(** SLEDs — Storage Latency Estimation Descriptors (Van Meter & Gao,
    OSDI 2000): the {e kernel-assisted} comparator that inspired FCCD.

    SLEDs is a proposed kernel interface returning predicted access times
    for sections of a file, computed from where the data sits in the
    storage hierarchy.  The paper's point (Section 4.1): "a great deal of
    the utility of their proposed system can be obtained without any
    modification to the operating system".

    This module implements the baseline: a kernel-privileged latency
    estimator built on white-box introspection plus static device
    parameters — exactly what a SLEDs kernel would export.  Benches use it
    as the upper bound FCCD is measured against; gray-box code must never
    call it. *)

type estimate = {
  sl_off : int;
  sl_len : int;
  sl_latency_ns : int;  (** predicted time to read this extent *)
}

val estimate_file :
  Simos.Kernel.t ->
  path:string ->
  granularity:int ->
  (estimate list, Simos.Kernel.error) result
(** Predicted access time per [granularity]-byte section, from cache
    residency (white-box bitmap) and device parameters. *)

val best_order :
  Simos.Kernel.t ->
  path:string ->
  granularity:int ->
  (estimate list, Simos.Kernel.error) result
(** Sections sorted fastest-first — the ordering a SLEDs-aware
    application would use. *)

val order_files :
  Simos.Kernel.t -> paths:string list -> (string list, Simos.Kernel.error) result
(** Whole files ranked by predicted mean latency. *)

val agreement : estimate list -> (Fccd.extent * int) list -> float
(** How closely an FCCD plan matches the SLEDs ordering: rank correlation
    (Spearman) between the two orderings of the same extents, in
    [[-1, 1]].  Used by the comparison bench. *)
