open Simos

type estimate = { sl_off : int; sl_len : int; sl_latency_ns : int }

let page = 4096

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

(* Static device parameters, as a SLEDs kernel would know them. *)
let device_costs k =
  let platform = Kernel.platform k in
  let geom = platform.Platform.disk in
  let disk_page_ns =
    (* amortised sequential page transfer *)
    geom.Disk.transfer_ns_per_block
  in
  let copy_page_ns =
    int_of_float (float_of_int page *. platform.Platform.memcopy_byte_ns)
  in
  (disk_page_ns, copy_page_ns)

let estimate_file k ~path ~granularity =
  if granularity < page then invalid_arg "Sleds.estimate_file: granularity < page";
  let* bitmap = Introspect.cache_bitmap k ~path in
  let disk_page_ns, copy_page_ns = device_costs k in
  let pages = Array.length bitmap in
  let size = pages * page in
  let rec sections off acc =
    if off >= size then Ok (List.rev acc)
    else begin
      let len = min granularity (size - off) in
      let first = off / page in
      let last = (off + len - 1) / page in
      let latency = ref 0 in
      for p = first to last do
        latency :=
          !latency + copy_page_ns + (if bitmap.(p) then 0 else disk_page_ns)
      done;
      sections (off + len)
        ({ sl_off = off; sl_len = len; sl_latency_ns = !latency } :: acc)
    end
  in
  sections 0 []

let best_order k ~path ~granularity =
  let* estimates = estimate_file k ~path ~granularity in
  Ok
    (List.stable_sort
       (fun a b ->
         if a.sl_latency_ns <> b.sl_latency_ns then
           compare a.sl_latency_ns b.sl_latency_ns
         else compare b.sl_off a.sl_off)
       estimates)

let order_files k ~paths =
  let rec rank acc = function
    | [] ->
      Ok
        (List.stable_sort (fun (_, a) (_, b) -> compare a b) (List.rev acc)
        |> List.map fst)
    | path :: rest ->
      let* estimates = estimate_file k ~path ~granularity:page in
      let total =
        List.fold_left (fun t e -> t + e.sl_latency_ns) 0 estimates
      in
      let mean = if estimates = [] then 0 else total / List.length estimates in
      rank ((path, mean) :: acc) rest
  in
  rank [] paths

(* Spearman rank correlation between the SLEDs ordering and an FCCD plan
   over the same extents (matched by offset). *)
let agreement sleds plan =
  let rank_of assoc =
    List.mapi (fun i off -> (off, float_of_int i)) assoc
  in
  let sleds_ranks = rank_of (List.map (fun e -> e.sl_off) sleds) in
  let plan_ranks = rank_of (List.map (fun (e, _) -> e.Fccd.ext_off) plan) in
  let common =
    List.filter_map
      (fun (off, r1) ->
        Option.map (fun r2 -> (r1, r2)) (List.assoc_opt off plan_ranks))
      sleds_ranks
  in
  if List.length common < 2 then 1.0
  else begin
    let xs = Array.of_list (List.map fst common) in
    let ys = Array.of_list (List.map snd common) in
    Gray_util.Correlate.pearson xs ys
  end
