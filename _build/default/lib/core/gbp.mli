(** The [gbp] utility logic: gray-box benefits for {e unmodified}
    applications (Section 4.1.2).

    [grep foo `gbp -mem *`] reorders the file arguments by cache
    residence; [gbp -mem -out infile | app] re-orders {e within} a single
    file, copying data to the consumer through a pipe.  This module holds
    the reusable logic behind the [bin/gbp] executable and behind the
    "unmodified application" variants in the benchmarks. *)

type mode =
  | Mem  (** order by file-cache probe time (FCCD) *)
  | File  (** order by i-number (FLDC) *)
  | Compose  (** cached first, then i-number (Section 4.2.4) *)

val mode_of_string : string -> mode option
val mode_to_string : mode -> string

val best_order :
  Simos.Kernel.env ->
  Fccd.config ->
  mode ->
  paths:string list ->
  (string list, Simos.Kernel.error) result
(** The file ordering a shell substitution would receive. *)

val out :
  Simos.Kernel.env ->
  Fccd.config ->
  path:string ->
  consume:(off:int -> len:int -> unit) ->
  (int, Simos.Kernel.error) result
(** [gbp -mem -out path]: probe the file, read it in best order, and
    stream each extent to [consume] through a simulated pipe (the extra
    kernel copy of all data is charged, which is why the gbp variant runs
    slightly behind the modified application in Figure 3).  Returns total
    bytes delivered. *)

val pipe_ns_per_byte : Simos.Kernel.env -> float
(** Cost model of the pipe copy used by {!out}. *)
