(** The gray toolbox's configuration microbenchmarks (Section 5).

    "All of our microbenchmarks report performance numbers [...] in a
    common format kept in persistent storage; each microbenchmark then only
    needs to be run once."  The repository is a {!Gray_util.Param_repo.t};
    the benchmarks below populate it using only gray-box observations
    (timed syscalls on scratch files and scratch memory).

    These runs disturb the system (they do real I/O and evict cache pages),
    so they are meant for a dedicated/idle machine — exactly the caveat the
    paper gives. *)

open Gray_util

val run_all : Simos.Kernel.env -> scratch_dir:string -> Param_repo.t
(** Run every microbenchmark, returning a populated repository.  Creates
    and removes scratch files under [scratch_dir] (e.g. ["/d0"]). *)

val measure_memcopy : Simos.Kernel.env -> scratch_dir:string -> float
(** Per-page kernel-to-user copy time (ns), from warm-cache reads. *)

val measure_disk : Simos.Kernel.env -> scratch_dir:string -> float * float
(** [(avg_seek_ns, bandwidth_bytes_per_sec)] from cold random vs
    sequential reads of a scratch file. *)

val measure_page_costs : Simos.Kernel.env -> float * float
(** [(alloc_zero_ns, touch_ns)]: first-touch (demand-zero) and resident
    re-touch costs per page, from scratch anonymous memory. *)

val measure_access_unit : Simos.Kernel.env -> scratch_dir:string -> int
(** Smallest power-of-two access unit that achieves at least 90% of the
    observed peak sequential bandwidth — the FCCD default (Section 4.1.2:
    "we have found that a default access unit of 20 MB works well"). *)

val probe_thresholds : Param_repo.t -> hit_miss_split_ns:float option -> unit
(** Record derived thresholds (cache hit/miss split) into the repo. *)
