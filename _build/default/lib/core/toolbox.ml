open Gray_util
open Simos

let src = Logs.Src.create "graybox.toolbox" ~doc:"gray toolbox microbenchmarks"

module Log = (val Logs.src_log src : Logs.LOG)

let mib = 1024 * 1024
let page = 4096

let ok_exn = function
  | Ok v -> v
  | Error e -> failwith ("Toolbox: syscall failed: " ^ Kernel.error_to_string e)

let write_file env path size =
  let fd = ok_exn (Kernel.create_file env path) in
  let chunk = 16 * mib in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    ignore (ok_exn (Kernel.write env fd ~off:!off ~len));
    off := !off + len
  done;
  Kernel.close env fd

let read_whole env path =
  let fd = ok_exn (Kernel.open_file env path) in
  let size = Kernel.file_size env fd in
  let chunk = 16 * mib in
  let off = ref 0 in
  while !off < size do
    ignore (ok_exn (Kernel.read env fd ~off:!off ~len:(min chunk (size - !off))));
    off := !off + chunk
  done;
  Kernel.close env fd

(* A gray-box cache flusher: grow a junk file until re-reading it evicts a
   sentinel page (sentinel re-read becomes "slow").  No knowledge of the
   cache size is assumed; the doubling discovers it. *)
type flusher = { path : string; mutable size : int }

let flusher_cap = 8 * 1024 * mib

let make_flusher env ~scratch_dir =
  let sentinel = scratch_dir ^ "/.gb_sentinel" in
  write_file env sentinel page;
  let f = { path = scratch_dir ^ "/.gb_flusher"; size = 32 * mib } in
  write_file env f.path f.size;
  let sentinel_fd = ok_exn (Kernel.open_file env sentinel) in
  let warm =
    ignore (ok_exn (Kernel.read env sentinel_fd ~off:0 ~len:1));
    Probe.file_byte env sentinel_fd ~off:0
  in
  let rec grow () =
    (* touch the sentinel, wash with the flusher, re-probe *)
    ignore (ok_exn (Kernel.read env sentinel_fd ~off:0 ~len:1));
    read_whole env f.path;
    let t = Probe.file_byte env sentinel_fd ~off:0 in
    if t > 20 * max 1 warm then ()
    else if f.size >= flusher_cap then
      Log.warn (fun m ->
          m "flusher capped at %s without evicting the sentinel \
             (persistent cache policy?)"
            (Units.bytes_to_string f.size))
    else begin
      ignore (ok_exn (Kernel.unlink env f.path));
      f.size <- f.size * 2;
      write_file env f.path f.size;
      grow ()
    end
  in
  grow ();
  Kernel.close env sentinel_fd;
  ignore (ok_exn (Kernel.unlink env sentinel));
  f

let flush env f = read_whole env f.path

let dispose_flusher env f = ignore (ok_exn (Kernel.unlink env f.path))

(* ---- individual microbenchmarks ---- *)

let scratch_size = 64 * mib

let with_scratch env ~scratch_dir f =
  let path = scratch_dir ^ "/.gb_scratch" in
  write_file env path scratch_size;
  Fun.protect
    ~finally:(fun () -> ignore (Kernel.unlink env path))
    (fun () -> f path)

let measure_memcopy env ~scratch_dir =
  with_scratch env ~scratch_dir (fun path ->
      let fd = ok_exn (Kernel.open_file env path) in
      let sample = 4 * mib in
      (* two passes: the second is warm regardless of initial state *)
      ignore (ok_exn (Kernel.read env fd ~off:0 ~len:sample));
      let _, ns = Probe.timed_read env fd ~off:0 ~len:sample in
      Kernel.close env fd;
      float_of_int ns /. float_of_int (sample / page))

let measure_disk_with env ~flusher path =
  flush env flusher;
  let fd = ok_exn (Kernel.open_file env path) in
  (* sequential bandwidth *)
  let _, seq_ns = Probe.timed_read env fd ~off:0 ~len:scratch_size in
  let bandwidth = float_of_int scratch_size /. (float_of_int seq_ns /. 1e9) in
  (* random single-page cold reads approximate seek + rotation *)
  flush env flusher;
  let rng = Rng.create ~seed:271828 in
  let samples = Stats.empty () in
  for _ = 1 to 32 do
    let off = Rng.int rng (scratch_size / page) * page in
    let _, ns = Probe.timed_read env fd ~off ~len:1 in
    Stats.add samples (float_of_int ns)
  done;
  Kernel.close env fd;
  (Stats.mean samples, bandwidth)

let measure_disk env ~scratch_dir =
  let flusher = make_flusher env ~scratch_dir in
  let result =
    with_scratch env ~scratch_dir (fun path -> measure_disk_with env ~flusher path)
  in
  dispose_flusher env flusher;
  result

let measure_page_costs env =
  let pages = 1024 in
  let region = Kernel.valloc env ~pages in
  let first = Kernel.touch_pages env region ~first:0 ~count:pages in
  let second = Kernel.touch_pages env region ~first:0 ~count:pages in
  Kernel.vfree env region;
  let median a = Stats.median_of (Array.map float_of_int a) in
  (median first, median second)

let measure_access_unit_with env ~flusher path =
  let rng = Rng.create ~seed:314159 in
  let bandwidth_for unit =
    flush env flusher;
    let fd = ok_exn (Kernel.open_file env path) in
    let chunks = Array.init (scratch_size / unit) (fun i -> i * unit) in
    Rng.shuffle rng chunks;
    let total_ns = ref 0 in
    Array.iter
      (fun off ->
        let _, ns = Probe.timed_read env fd ~off ~len:unit in
        total_ns := !total_ns + ns)
      chunks;
    Kernel.close env fd;
    float_of_int scratch_size /. (float_of_int !total_ns /. 1e9)
  in
  let units =
    [ mib / 2; mib; 2 * mib; 4 * mib; 8 * mib; 16 * mib; 32 * mib ]
  in
  let rates = List.map (fun u -> (u, bandwidth_for u)) units in
  let peak = List.fold_left (fun acc (_, r) -> Float.max acc r) 0.0 rates in
  match List.find_opt (fun (_, r) -> r >= 0.9 *. peak) rates with
  | Some (u, _) -> u
  | None -> 32 * mib

let measure_access_unit env ~scratch_dir =
  let flusher = make_flusher env ~scratch_dir in
  let result =
    with_scratch env ~scratch_dir (fun path ->
        measure_access_unit_with env ~flusher path)
  in
  dispose_flusher env flusher;
  result

let probe_thresholds repo ~hit_miss_split_ns =
  match hit_miss_split_ns with
  | None -> ()
  | Some v ->
    Param_repo.set repo ~key:"fccd.hit_miss_split_ns" ~value:v ~source:"derived"

let run_all env ~scratch_dir =
  let repo = Param_repo.create () in
  let set key value =
    Param_repo.set repo ~key ~value ~source:"toolbox-microbench"
  in
  let flusher = make_flusher env ~scratch_dir in
  let seek, bandwidth =
    with_scratch env ~scratch_dir (fun path -> measure_disk_with env ~flusher path)
  in
  set Param_repo.key_disk_seek_ns seek;
  set Param_repo.key_disk_bandwidth_bytes_per_sec bandwidth;
  let memcopy = measure_memcopy env ~scratch_dir in
  set Param_repo.key_memcopy_page_ns memcopy;
  let alloc_zero, touch = measure_page_costs env in
  set Param_repo.key_page_alloc_zero_ns alloc_zero;
  set "mem.touch_page_ns" touch;
  let unit =
    with_scratch env ~scratch_dir (fun path ->
        measure_access_unit_with env ~flusher path)
  in
  set Param_repo.key_access_unit_bytes (float_of_int unit);
  (* cache hit vs miss single-byte read costs *)
  let hit, miss =
    with_scratch env ~scratch_dir (fun path ->
        let fd = ok_exn (Kernel.open_file env path) in
        ignore (ok_exn (Kernel.read env fd ~off:0 ~len:page));
        let hit = Probe.file_byte env fd ~off:16 in
        flush env flusher;
        let miss = Probe.file_byte env fd ~off:(8 * mib) in
        Kernel.close env fd;
        (hit, miss))
  in
  set Param_repo.key_cache_hit_read_ns (float_of_int hit);
  set Param_repo.key_cache_miss_read_ns (float_of_int miss);
  probe_thresholds repo
    ~hit_miss_split_ns:(Some (sqrt (float_of_int hit *. float_of_int miss)));
  set Param_repo.key_page_in_ns (float_of_int miss);
  dispose_flusher env flusher;
  repo
