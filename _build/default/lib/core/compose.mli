(** Composition of FCCD and FLDC (Section 4.2.4).

    "For the best ordering of files, an application should first access
    those files in cache and then access the rest according to their
    i-number ordering."  FCCD only {e orders} files by probe time, so the
    composition clusters probe times into two groups (standard statistical
    clustering, minimising intra-group variance), predicts the low group
    in-cache and the high group on-disk, and sorts {e each} group by
    i-number — so a wrong in-cache prediction still degrades gracefully. *)

type decision = {
  d_order : string list;  (** final access order *)
  d_in_cache : string list;  (** predicted-cached files (probe order) *)
  d_on_disk : string list;
  d_separation : float;  (** cluster mean ratio; ~1 means "all on disk" *)
}

val order_files :
  Simos.Kernel.env ->
  Fccd.config ->
  ?min_separation:float ->
  string list ->
  (decision, Simos.Kernel.error) result
(** [min_separation] (default 4.0): below this ratio the split is treated
    as spurious — e.g. every file actually on disk — and all files fall in
    the on-disk group, ordered purely by i-number. *)
