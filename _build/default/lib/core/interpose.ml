open Simos

let page = 4096

(* The shadow cache keys pages by (path, index): the agent sees path
   names, not inode numbers, and never talks to the real kernel for its
   model.  Page.key is reused by hashing the path into a pseudo-ino. *)
type t = {
  shadow : Pool.t;
  path_ids : (string, int) Hashtbl.t;
  mutable next_id : int;
  mutable accesses : int;
  trace : Trace.t option;
}

let create ?trace ~assumed_policy ~assumed_capacity_pages () =
  {
    shadow =
      Pool.create ~name:"shadow" ~capacity_pages:assumed_capacity_pages
        ~policy:assumed_policy;
    path_ids = Hashtbl.create 64;
    next_id = 1;
    accesses = 0;
    trace;
  }

let id_of t path =
  match Hashtbl.find_opt t.path_ids path with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.path_ids path id;
    id

let key t ~path ~idx = Page.File { ino = id_of t path; idx }

let observe t ~path ~off ~len ~dirty =
  if len > 0 then begin
    let first = off / page and last = (off + len - 1) / page in
    for idx = first to last do
      t.accesses <- t.accesses + 1;
      ignore (Pool.access t.shadow (key t ~path ~idx) ~dirty)
    done
  end

let emit t ev =
  match t.trace with None -> () | Some tr -> Trace.record tr ev

let read t env fd ~path ~off ~len =
  match Kernel.read env fd ~off ~len with
  | Error e -> Error e
  | Ok n ->
    observe t ~path ~off ~len:n ~dirty:false;
    emit t (Trace.Read { path; off; len = n });
    Ok n

let write t env fd ~path ~off ~len =
  match Kernel.write env fd ~off ~len with
  | Error e -> Error e
  | Ok n ->
    observe t ~path ~off ~len:n ~dirty:true;
    emit t (Trace.Write { path; off; len = n });
    Ok n

let note_unlink t ~path =
  emit t (Trace.Unlink { path });
  match Hashtbl.find_opt t.path_ids path with
  | None -> ()
  | Some id ->
    ignore
      (Pool.invalidate_if t.shadow (fun k ->
           match k with Page.File { ino; _ } -> ino = id | Page.Anon _ -> false));
    Hashtbl.remove t.path_ids path

let predicted_cached t ~path ~page_idx = Pool.contains t.shadow (key t ~path ~idx:page_idx)

let predicted_fraction t ~path ~pages =
  if pages <= 0 then 0.0
  else begin
    let hits = ref 0 in
    for idx = 0 to pages - 1 do
      if predicted_cached t ~path ~page_idx:idx then incr hits
    done;
    float_of_int !hits /. float_of_int pages
  end

let order_files t ~paths =
  List.map
    (fun (path, size) ->
      (path, predicted_fraction t ~path ~pages:((size + page - 1) / page)))
    paths
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

let observed_accesses t = t.accesses
let shadow_resident t = Pool.resident t.shadow
