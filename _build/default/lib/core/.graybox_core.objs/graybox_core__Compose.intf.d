lib/core/compose.mli: Fccd Simos
