lib/core/fingerprint.mli: Simos
