lib/core/gbp.mli: Fccd Simos
