lib/core/fccd.ml: Gray_util Kernel List Param_repo Probe Rng Simos
