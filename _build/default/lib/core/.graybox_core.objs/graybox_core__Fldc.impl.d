lib/core/fldc.ml: Fs Hashtbl Kernel List Option Simos String
