lib/core/gbp.ml: Compose Fccd Fldc Kernel List Platform Simos
