lib/core/fccd.mli: Gray_util Param_repo Rng Simos
