lib/core/mac.ml: Array Float Gray_util Kernel Param_repo Simos Stats Stdlib
