lib/core/compose.ml: Array Cluster Fccd Fldc Float Gray_util List
