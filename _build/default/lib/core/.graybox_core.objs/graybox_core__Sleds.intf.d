lib/core/sleds.mli: Fccd Simos
