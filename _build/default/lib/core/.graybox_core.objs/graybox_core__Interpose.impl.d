lib/core/interpose.ml: Hashtbl Kernel List Page Pool Simos Trace
