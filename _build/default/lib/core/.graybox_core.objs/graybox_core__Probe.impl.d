lib/core/probe.ml: Kernel Simos
