lib/core/toolbox.ml: Array Float Fun Gray_util Kernel List Logs Param_repo Probe Rng Simos Stats Units
