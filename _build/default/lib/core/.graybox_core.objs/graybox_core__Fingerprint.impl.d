lib/core/fingerprint.ml: Array Cluster Gray_util Kernel Printf Probe Rng Simos
