lib/core/fldc.mli: Simos
