lib/core/toolbox.mli: Gray_util Param_repo Simos
