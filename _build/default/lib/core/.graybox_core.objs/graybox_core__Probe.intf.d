lib/core/probe.mli: Simos
