lib/core/sleds.ml: Array Disk Fccd Gray_util Introspect Kernel List Option Platform Simos
