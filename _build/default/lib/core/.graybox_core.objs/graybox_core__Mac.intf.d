lib/core/mac.mli: Gray_util Param_repo Simos
