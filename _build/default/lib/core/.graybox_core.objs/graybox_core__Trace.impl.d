lib/core/trace.ml: Buffer Hashtbl List Page Pool Printf Replacement Simos String
