lib/core/interpose.mli: Simos Trace
