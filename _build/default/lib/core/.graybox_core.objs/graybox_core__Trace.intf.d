lib/core/trace.mli: Simos
