open Gray_util

type decision = {
  d_order : string list;
  d_in_cache : string list;
  d_on_disk : string list;
  d_separation : float;
}

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let order_files env config ?(min_separation = 4.0) paths =
  match paths with
  | [] ->
    Ok { d_order = []; d_in_cache = []; d_on_disk = []; d_separation = 1.0 }
  | _ ->
    let* ranked = Fccd.order_files env config ~paths in
    let times =
      Array.of_list (List.map (fun r -> float_of_int r.Fccd.fr_probe_ns) ranked)
    in
    let split =
      (* log-domain clustering: probe times span decades and a single
         outlier must not hijack the cache/disk split *)
      Cluster.two_means_log (Array.map (fun t -> Float.max 1.0 t) times)
    in
    let separation = Cluster.separation split in
    let cached, on_disk =
      if split.Cluster.high_count = 0 || separation < min_separation then
        ([], List.map (fun r -> r.Fccd.fr_path) ranked)
      else
        List.partition_map
          (fun r ->
            if float_of_int r.Fccd.fr_probe_ns <= split.Cluster.threshold then
              Left r.Fccd.fr_path
            else Right r.Fccd.fr_path)
          ranked
    in
    (* both groups i-number sorted: predictions may be wrong
       (Section 4.2.4: "each group is still sorted by i-number") *)
    let* cached_sorted = Fldc.order_by_inumber env ~paths:cached in
    let* disk_sorted = Fldc.order_by_inumber env ~paths:on_disk in
    let names so = List.map (fun s -> s.Fldc.so_path) so in
    Ok
      {
        d_order = names cached_sorted @ names disk_sorted;
        d_in_cache = cached;
        d_on_disk = on_disk;
        d_separation = separation;
      }
