open Gray_util
open Simos

let mib = 1024 * 1024
let page = 4096

let ok_exn = function
  | Ok v -> v
  | Error e -> failwith ("Fingerprint: syscall failed: " ^ Kernel.error_to_string e)

let write_file env path size =
  let fd = ok_exn (Kernel.create_file env path) in
  let chunk = 16 * mib in
  let off = ref 0 in
  while !off < size do
    ignore (ok_exn (Kernel.write env fd ~off:!off ~len:(min chunk (size - !off))));
    off := !off + chunk
  done;
  Kernel.close env fd

let read_range env fd ~off ~len =
  let chunk = 16 * mib in
  let cur = ref off in
  while !cur < off + len do
    ignore (ok_exn (Kernel.read env fd ~off:!cur ~len:(min chunk (off + len - !cur))));
    cur := !cur + chunk
  done

let timed env f =
  let t0 = Kernel.gettime env in
  f ();
  Kernel.gettime env - t0

(* A per-byte disk-rate reference: read a few 16 MB windows scattered
   across the probe file once each and take the slowest.  Whatever the
   policy, the cache cannot cover the whole oversized file, so at least
   one window is cold — under recency policies the written prefix was
   evicted, under a sticky cache the suffix was never admitted. *)
let window_bytes = 16 * mib

let cold_rate env fd ~max_bytes =
  let candidates = 6 in
  let worst = ref 0.0 in
  for i = 0 to candidates - 1 do
    let off =
      i * (max_bytes - window_bytes) / (candidates - 1) / page * page
    in
    let ns = timed env (fun () -> read_range env fd ~off ~len:window_bytes) in
    let rate = float_of_int ns /. float_of_int window_bytes in
    if rate > !worst then worst := rate
  done;
  !worst

(* Does a [size]-byte prefix of the scratch file survive a full re-read?
   The first pass moves it to a known state; the second pass is compared
   against the cold reference rate (the first pass's own time is not a
   usable baseline: a sticky cache keeps the freshly written prefix warm,
   so its "cold" read can be fast). *)
let prefix_fits env ~cold fd ~size =
  read_range env fd ~off:0 ~len:size;
  let second = timed env (fun () -> read_range env fd ~off:0 ~len:size) in
  let per_byte = float_of_int second /. float_of_int size in
  per_byte *. 3.0 < cold

let estimate_capacity env ~scratch_dir ~max_bytes =
  let path = scratch_dir ^ "/.gb_fp_capacity" in
  write_file env path max_bytes;
  let fd = ok_exn (Kernel.open_file env path) in
  let cold = cold_rate env fd ~max_bytes in
  let resolution = 16 * mib in
  let rec search lo hi =
    (* invariant: lo fits, hi does not *)
    if hi - lo <= resolution then lo
    else begin
      let mid = (lo + hi) / 2 / resolution * resolution in
      if prefix_fits env ~cold fd ~size:mid then search mid hi else search lo mid
    end
  in
  let result =
    if prefix_fits env ~cold fd ~size:max_bytes then max_bytes
    else if not (prefix_fits env ~cold fd ~size:resolution) then resolution
    else search resolution max_bytes
  in
  Kernel.close env fd;
  ignore (ok_exn (Kernel.unlink env path));
  result

type verdict = {
  v_policy : [ `Recency | `Fifo | `Sticky | `Unknown ];
  v_capacity_bytes : int;
  v_evidence : string;
  v_recency_score : float;
  v_fifo_score : float;
  v_sticky_score : float;
}

let samples_per_group = 48

(* Survival rate of sparse random probes over a region, classified
   cached/uncached by clustering the whole probe population. *)
let survival_of split xs =
  if split.Cluster.high_count = 0 then 1.0
  else begin
    let hit =
      Array.fold_left
        (fun n x -> if x <= split.Cluster.threshold then n + 1 else n)
        0 xs
    in
    float_of_int hit /. float_of_int (Array.length xs)
  end

let probe_region env rng fd ~off ~len =
  Array.init samples_per_group (fun _ ->
      let o = off + (Rng.int rng (len / page) * page) + Rng.int rng page in
      float_of_int (Probe.file_byte env fd ~off:o))

(* Experiment (a), recency: fill the cache with A, re-reference the first
   half several times, overflow by a quarter, then compare survival of the
   two halves.  Recency policies protect the re-referenced half; FIFO
   evicts it (it holds the oldest insertions). *)
let recency_experiment env rng ~scratch_dir ~c =
  let path = scratch_dir ^ "/.gb_fp_recency" in
  write_file env path (2 * c);
  let fd = ok_exn (Kernel.open_file env path) in
  read_range env fd ~off:0 ~len:c;
  for _ = 1 to 3 do
    read_range env fd ~off:0 ~len:(c / 2)
  done;
  (* overflow by half a capacity: large enough to force evictions even
     when the capacity estimate came in low, small enough that a recency
     policy can still shelter the re-referenced half *)
  read_range env fd ~off:c ~len:(c / 2);
  let first = probe_region env rng fd ~off:0 ~len:(c / 2) in
  let second = probe_region env rng fd ~off:(c / 2) ~len:(c / 2) in
  Kernel.close env fd;
  ignore (ok_exn (Kernel.unlink env path));
  let split = Cluster.two_means_log (Array.append first second) in
  (survival_of split first, survival_of split second)

(* Experiment (b), admission: fill the cache, then stream fresh data and
   see whether it displaces the old contents at all.  A sticky cache keeps
   the original data and never admits the stream (the Solaris signature of
   Section 4.1.3). *)
let admission_experiment env rng ~scratch_dir ~c =
  let path = scratch_dir ^ "/.gb_fp_admission" in
  write_file env path (2 * c);
  let fd = ok_exn (Kernel.open_file env path) in
  read_range env fd ~off:0 ~len:c;
  read_range env fd ~off:c ~len:(c / 2);
  let original = probe_region env rng fd ~off:0 ~len:c in
  let stream = probe_region env rng fd ~off:c ~len:(c / 2) in
  Kernel.close env fd;
  ignore (ok_exn (Kernel.unlink env path));
  let split = Cluster.two_means_log (Array.append original stream) in
  (survival_of split original, survival_of split stream)

let classify env ~scratch_dir ?capacity_hint () =
  let capacity =
    match capacity_hint with
    | Some c -> c
    | None -> estimate_capacity env ~scratch_dir ~max_bytes:(1536 * mib)
  in
  let c = capacity / page * page in
  let rng = Rng.create ~seed:(0x5EED + capacity) in
  let s_first, s_second = recency_experiment env rng ~scratch_dir ~c in
  let s_original, s_stream = admission_experiment env rng ~scratch_dir ~c in
  let recency_score = s_first -. s_second in
  let fifo_score = s_second -. s_first in
  let sticky_score = s_original -. s_stream in
  let v_policy =
    if sticky_score > 0.4 && s_stream < 0.5 then `Sticky
    else if recency_score > 0.25 then `Recency
    else if fifo_score > 0.25 then `Fifo
    else `Unknown
  in
  let v_evidence =
    Printf.sprintf
      "recency test: re-referenced half %.2f vs other half %.2f; admission \
       test: original %.2f vs stream %.2f"
      s_first s_second s_original s_stream
  in
  {
    v_policy;
    v_capacity_bytes = capacity;
    v_evidence;
    v_recency_score = recency_score;
    v_fifo_score = fifo_score;
    v_sticky_score = sticky_score;
  }
