(** Interposition-based cache inference — the paper's stated future work
    (Section 6: "with interpositioning, one can more easily observe all of
    the OS inputs and outputs and then model or simulate the OS to infer
    its current state.  In the future, we plan to investigate the use of
    interpositioning with gray-box ICLs").

    An {!t} wraps a process's file syscalls (the interposition agent) and
    feeds every observed access into a {e shadow simulation} of the file
    cache — literally one of the {!Simos.Replacement} policies run at user
    level over the observed reference stream.  Queries then come from the
    model instead of probes: zero perturbation (no Heisenberg effect), no
    probe cost, but only as accurate as (a) the assumed policy and
    (b) the completeness of the observed stream — exactly the trade-off
    Section 4.1.1 describes for the model/simulate approach.

    Misses happen when other processes (whose requests the agent cannot
    see) move the cache, or when the assumed capacity/policy is wrong;
    the comparison bench quantifies this against probing FCCD. *)

type t

val create :
  ?trace:Trace.t ->
  assumed_policy:Simos.Replacement.factory ->
  assumed_capacity_pages:int ->
  unit ->
  t
(** The agent's algorithmic knowledge: which replacement policy the OS
    (supposedly) runs and how many pages the file cache (supposedly)
    holds.  With [trace], every observed request is also recorded for
    offline {!Trace} analysis. *)

(** {1 The interposed syscalls}

    Drop-in wrappers: same signature as the {!Simos.Kernel} calls with the
    agent threaded through. *)

val read :
  t -> Simos.Kernel.env -> Simos.Kernel.fd -> path:string -> off:int -> len:int ->
  (int, Simos.Kernel.error) result

val write :
  t -> Simos.Kernel.env -> Simos.Kernel.fd -> path:string -> off:int -> len:int ->
  (int, Simos.Kernel.error) result

val note_unlink : t -> path:string -> unit
(** Keep the shadow coherent across deletions. *)

(** {1 Queries (no probes, no perturbation)} *)

val predicted_cached : t -> path:string -> page_idx:int -> bool
val predicted_fraction : t -> path:string -> pages:int -> float

val order_files : t -> paths:(string * int) list -> string list
(** Rank [(path, size_bytes)] by predicted cached fraction, best first —
    the interposed analogue of {!Fccd.order_files}. *)

val observed_accesses : t -> int
val shadow_resident : t -> int
