open Simos

type mode = Mem | File | Compose

let mode_of_string = function
  | "mem" | "-mem" -> Some Mem
  | "file" | "-file" -> Some File
  | "compose" | "-compose" -> Some Compose
  | _ -> None

let mode_to_string = function Mem -> "mem" | File -> "file" | Compose -> "compose"

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let best_order env config mode ~paths =
  match mode with
  | Mem ->
    let* ranked = Fccd.order_files env config ~paths in
    Ok (List.map (fun r -> r.Fccd.fr_path) ranked)
  | File ->
    let* ordered = Fldc.order_by_inumber env ~paths in
    Ok (List.map (fun s -> s.Fldc.so_path) ordered)
  | Compose ->
    let* decision = Compose.order_files env config paths in
    Ok decision.Compose.d_order

(* One pipe transfer costs a kernel-to-user copy of the payload (writer
   copies in, reader copies out — we charge the reader side once more,
   which is the "extra copy of all data through the operating system via
   the pipe mechanism" of Section 4.1.3). *)
let pipe_ns_per_byte env =
  let platform = Kernel.platform (Kernel.kernel_of_env env) in
  2.0 *. platform.Platform.memcopy_byte_ns

let out env config ~path ~consume =
  let* plan = Fccd.probe_file env config ~path in
  let* fd = Kernel.open_file env path in
  let per_byte = pipe_ns_per_byte env in
  let total = ref 0 in
  Fccd.read_plan env fd plan ~f:(fun ~off ~len ->
      Kernel.compute_bytes env ~bytes:len ~ns_per_byte:per_byte;
      consume ~off ~len;
      total := !total + len);
  Kernel.close env fd;
  Ok !total
