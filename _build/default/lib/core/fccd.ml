open Gray_util
open Simos

type config = {
  access_unit : int;
  prediction_unit : int;
  align : int;
  fake_high_ns : int;
  rng : Rng.t;
}

let mib = 1024 * 1024
let page = 4096

let default_config ?repo ~seed () =
  let access_unit =
    match repo with
    | Some r ->
      int_of_float (Param_repo.get_or r Param_repo.key_access_unit_bytes
           ~default:(float_of_int (20 * mib)))
    | None -> 20 * mib
  in
  {
    access_unit;
    prediction_unit = 5 * mib;
    align = 1;
    fake_high_ns = 1_000_000_000;
    rng = Rng.create ~seed;
  }

let with_align config align =
  if align <= 0 then invalid_arg "Fccd.with_align: align must be positive";
  { config with align }

type extent = { ext_off : int; ext_len : int }

type plan = {
  plan_path : string;
  plan_size : int;
  plan_extents : (extent * int) list;
  plan_probes : int;
}

let extents plan = List.map fst plan.plan_extents

(* Split [0, size) into access units whose boundaries respect alignment. *)
let partition config ~size =
  let unit_bytes = max config.align (config.access_unit / config.align * config.align) in
  let rec go off acc =
    if off >= size then List.rev acc
    else begin
      let len = min unit_bytes (size - off) in
      go (off + len) ({ ext_off = off; ext_len = len } :: acc)
    end
  in
  go 0 []

(* One probe per prediction unit, at a random byte of the unit: robust
   across runs and repeatable probing increases confidence
   (Section 4.1.2). *)
let probe_extent env config fd ext =
  let count = max 1 ((ext.ext_len + config.prediction_unit - 1) / config.prediction_unit) in
  let total = ref 0 in
  for i = 0 to count - 1 do
    let pu_off = ext.ext_off + (i * config.prediction_unit) in
    let pu_len = min config.prediction_unit (ext.ext_off + ext.ext_len - pu_off) in
    let off = pu_off + Rng.int config.rng (max 1 pu_len) in
    total := !total + Probe.file_byte env fd ~off
  done;
  (!total, count)

let probe_fd env config ~path fd =
  let size = Kernel.file_size env fd in
  if size < page then
    (* Heisenberg: probing a sub-page file would fault all of it in, so we
       report it "far away" instead (Section 4.1.4). *)
    {
      plan_path = path;
      plan_size = size;
      plan_extents =
        (if size = 0 then [] else [ ({ ext_off = 0; ext_len = size }, config.fake_high_ns) ]);
      plan_probes = 0;
    }
  else begin
    let parts = partition config ~size in
    let probes = ref 0 in
    let timed =
      List.map
        (fun ext ->
          let ns, count = probe_extent env config fd ext in
          probes := !probes + count;
          (ext, ns))
        parts
    in
    let ordered =
      (* Ties (e.g. an all-cached prefix) break towards HIGHER offsets:
         under the LRU-like assumption, sequentially produced data is
         younger at higher offsets, so reading top-down keeps the reader
         ahead of the replacement hand — reading bottom-up would race the
         hand and turn each eviction into the next miss. *)
      List.stable_sort
        (fun (a, ta) (b, tb) ->
          if ta <> tb then compare ta tb else compare b.ext_off a.ext_off)
        timed
    in
    { plan_path = path; plan_size = size; plan_extents = ordered; plan_probes = !probes }
  end

let probe_file env config ~path =
  match Kernel.open_file env path with
  | Error e -> Error e
  | Ok fd ->
    let plan = probe_fd env config ~path fd in
    Kernel.close env fd;
    Ok plan

type file_rank = { fr_path : string; fr_probe_ns : int; fr_size : int }

let order_files env config ~paths =
  let rec rank acc = function
    | [] ->
      Ok
        (List.stable_sort
           (fun a b ->
             if a.fr_probe_ns <> b.fr_probe_ns then compare a.fr_probe_ns b.fr_probe_ns
             else compare a.fr_path b.fr_path)
           (List.rev acc))
    | path :: rest -> (
      match Kernel.open_file env path with
      | Error e -> Error e
      | Ok fd ->
        let size = Kernel.file_size env fd in
        let probe_ns =
          if size < page then config.fake_high_ns
          else begin
            let count =
              max 1 ((size + config.prediction_unit - 1) / config.prediction_unit)
            in
            let total = ref 0 in
            for i = 0 to count - 1 do
              let pu_off = i * config.prediction_unit in
              let pu_len = min config.prediction_unit (size - pu_off) in
              let off = pu_off + Rng.int config.rng (max 1 pu_len) in
              total := !total + Probe.file_byte env fd ~off
            done;
            !total
          end
        in
        Kernel.close env fd;
        rank ({ fr_path = path; fr_probe_ns = probe_ns; fr_size = size } :: acc) rest)
  in
  rank [] paths

let read_plan env fd plan ~f =
  List.iter
    (fun ({ ext_off; ext_len }, _) ->
      match Kernel.read env fd ~off:ext_off ~len:ext_len with
      | Ok n -> f ~off:ext_off ~len:n
      | Error _ -> ())
    plan.plan_extents
