(** Replacement-policy fingerprinting: the "duality" of Section 4.1.4 made
    operational.

    "Our study also highlights the duality of gray-box systems and
    microbenchmarks themselves; both tend to unveil the inner-workings of
    systems."  FCCD only needs to {e exploit} LRU-ish behaviour; this
    module goes further and {e identifies} the file-cache replacement
    policy from the outside, with designed access sequences and timed
    re-probes — the same technique the paper used manually to discover
    NetBSD's fixed-size cache and Solaris's sticky cache (Section 4.1.3).

    Method — two designed experiments, each probed with sparse timed
    reads and classified by 2-means clustering:
    - {e recency}: fill the cache, re-reference the first half a few
      times, overflow by a quarter.  Recency policies (LRU, clock)
      protect the re-referenced half; FIFO evicts exactly it (it holds
      the oldest insertions).
    - {e admission}: fill the cache, then stream fresh data.  A normal
      cache admits the stream at the old contents' expense; a sticky
      cache (the Solaris signature of Section 4.1.3) keeps the original
      data and never admits the stream.
    - an {e effective capacity} far below the probed sizes reveals a
      small fixed cache (the NetBSD signature).

    All observations go through timed 1-byte reads; the module never
    touches {!Simos.Introspect}. *)

type verdict = {
  v_policy : [ `Recency | `Fifo | `Sticky | `Unknown ];
  v_capacity_bytes : int;  (** estimated effective file-cache size *)
  v_evidence : string;  (** human-readable reasoning *)
  v_recency_score : float;  (** survival rate of re-referenced pages *)
  v_fifo_score : float;  (** survival rate of late insertions *)
  v_sticky_score : float;  (** survival rate of the earliest insertions *)
}

val estimate_capacity :
  Simos.Kernel.env -> scratch_dir:string -> max_bytes:int -> int
(** Binary-search the effective file-cache size: the largest file whose
    full sequential re-read stays fast.  Destructive (floods the cache). *)

val classify :
  Simos.Kernel.env ->
  scratch_dir:string ->
  ?capacity_hint:int ->
  unit ->
  verdict
(** Run the fingerprint experiment in [scratch_dir] (scratch files are
    created and removed).  [capacity_hint] skips the capacity probe. *)
