(** TCP congestion control as a gray-box system (Section 3, Table 1).

    Gray-box knowledge: {e the network drops packets when there is
    congestion}.  Clients combine that knowledge with observations (which
    packets were acknowledged) to infer the current state of the network
    and adapt their sending rate (AIMD).

    The paper's cautionary tale is also reproducible: in a wireless
    setting a dropped message no longer implies congestion, so the same
    inference mis-fires and throughput collapses — "not recognizing that
    gray-box knowledge is being used has led to problems in new
    environments". *)

type loss_model =
  | Congestion_only  (** drops happen only on queue overflow *)
  | Wireless of float  (** plus random per-packet corruption probability *)

type flow_stats = {
  f_delivered : int;  (** packets through the bottleneck *)
  f_dropped : int;
  f_final_cwnd : int;
}

type result = {
  r_flows : flow_stats array;
  r_rounds : int;
  r_capacity : int;
  r_utilization : float;  (** delivered / (capacity * rounds) *)
  r_fairness : float;  (** Jain's index over per-flow throughput *)
  r_inferred_congestion : int;  (** rounds a flow saw loss and backed off *)
  r_true_congestion : int;  (** inferred rounds where the queue really overflowed *)
  r_inference_precision : float;
      (** fraction of backoffs triggered by real congestion: ~1.0 wired,
          degrading with wireless loss *)
}

val simulate :
  Gray_util.Rng.t ->
  flows:int ->
  capacity:int ->
  queue:int ->
  rounds:int ->
  loss:loss_model ->
  result
(** Round-based bottleneck simulation: each round every flow offers
    [cwnd] packets; the link forwards [capacity], buffers [queue], drops
    the excess (and corrupts randomly under [Wireless]).  Flows run
    standard AIMD with slow-start. *)
