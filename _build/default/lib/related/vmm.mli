(** Disco-style gray-box scheduling in a virtual machine monitor
    (Section 6: "Disco developers know that IRIX 5.3 enters low-power mode
    when idle, and thus use this as a signal to switch to another virtual
    processor").

    The VMM multiplexes several unmodified guest OSes on one physical CPU.
    A guest alternates bursts of useful work with idle periods in which it
    spins in its idle loop.  The gray-box VMM cannot see inside the guest,
    but it {e can} observe the low-power/idle instruction pattern and
    deschedule the guest early; the naive VMM burns the whole time slice
    running idle loops. *)

type policy =
  | Fixed_slice  (** round-robin full time slices, guest state invisible *)
  | Idle_aware  (** deschedule when the idle-loop signature is observed *)

type result = {
  d_elapsed_us : int;
  d_useful_us : int;  (** guest cycles spent on real work *)
  d_idle_burned_us : int;  (** physical CPU wasted running idle loops *)
  d_switches : int;
  d_throughput : float;  (** useful / elapsed *)
  d_mean_wait_us : float;  (** mean delay before a ready guest runs *)
}

val simulate :
  Gray_util.Rng.t ->
  guests:int ->
  slice_us:int ->
  switch_cost_us:int ->
  busy_us:int ->
  idle_us:int ->
  total_work_us:int ->
  policy:policy ->
  result
(** Each guest needs [total_work_us] of work, delivered in jittered
    [busy_us] bursts separated by [idle_us] idle periods (I/O waits etc.).
    The run ends when every guest finishes. *)
