(** Implicit coscheduling as a gray-box system (Section 3, Table 1).

    Gray-box knowledge: {e receiving a message from a remote process means
    the remote process is currently scheduled} (or was very recently); not
    receiving a prompt response means it probably is not.  Each waiting
    process observes message arrivals and its own waiting time and decides
    to keep spinning (staying scheduled, preserving the coordination) or
    to block (yielding to local background work).

    The simulation runs one fine-grain parallel job (one process per node,
    barrier-synchronising every [granularity_us]) against [background]
    competing processes per node under round-robin local schedulers, and
    compares waiting policies. *)

type policy =
  | Block_immediately  (** yield as soon as a peer is late *)
  | Spin_forever
      (** never yield voluntarily: the local quantum scheduler still
          preempts, so background work keeps its fair share — but every
          stall is spent spinning (the wasted-CPU end of the spectrum) *)
  | Two_phase of int
      (** spin this many µs before blocking; each message arrival renews
          the budget (an arrival is the gray-box signal that senders are
          scheduled, so waiting a little longer is worthwhile).  The budget
          must cover the local schedulers' dispatch skew. *)

type result = {
  c_barriers : int;
  c_elapsed_us : int;
  c_ideal_us : int;  (** dedicated-machine time for the same barriers *)
  c_slowdown : float;  (** elapsed / ideal; the paper's figure of merit *)
  c_spin_wasted_us : int;  (** CPU burnt spinning *)
  c_background_share : float;  (** CPU fraction the background work got *)
}

val simulate :
  Gray_util.Rng.t ->
  nodes:int ->
  background:int ->
  granularity_us:int ->
  barriers:int ->
  quantum_us:int ->
  ctx_switch_us:int ->
  policy:policy ->
  result
