open Gray_util

type config = {
  window_us : int;
  threshold : float;
  resume_probe_us : int;
  suspend_min_us : int;
  suspend_max_us : int;
  ema_alpha : float;
}

let default_config =
  {
    window_us = 10_000;
    threshold = 0.7;
    resume_probe_us = 10_000;
    suspend_min_us = 50_000;
    suspend_max_us = 2_000_000;
    ema_alpha = 0.2;
  }

type result = {
  m_elapsed_us : int;
  m_work_done : int;
  m_foreground_interference : float;
  m_idle_utilization : float;
  m_detection_accuracy : float;
}

let tick = 100 (* µs *)

let simulate rng config ~busy_us ~idle_us ~phases ~naive =
  if phases <= 0 || busy_us <= 0 || idle_us <= 0 then
    invalid_arg "Manners.simulate: sizes must be positive";
  (* precompute the hidden foreground schedule: busy/idle alternation with
     jittered durations *)
  let jittered base = max tick (base + Rng.int_in rng ~min:(-base / 4) ~max:(base / 4)) in
  let schedule = ref [] in
  for _ = 1 to phases do
    schedule := (true, jittered busy_us) :: (false, jittered idle_us) :: !schedule
  done;
  let schedule = List.rev !schedule in
  let total_us = List.fold_left (fun acc (_, d) -> acc + d) 0 schedule in
  let busy_at =
    (* flattened tick -> contended? lookup *)
    let arr = Array.make (total_us / tick) false in
    let pos = ref 0 in
    List.iter
      (fun (busy, d) ->
        for _ = 1 to d / tick do
          if !pos < Array.length arr then begin
            arr.(!pos) <- busy;
            incr pos
          end
        done)
      schedule;
    arr
  in
  let nticks = Array.length busy_at in
  (* LIP state *)
  let running = ref true in
  let suspend_left = ref 0 in
  let backoff = ref config.suspend_min_us in
  let baseline = Correlate.ema_create ~alpha:config.ema_alpha in
  let window_progress = ref 0.0 in
  let window_ticks = ref 0 in
  let window_busy = ref 0 in
  let work = ref 0.0 in
  let interference = ref 0 and busy_total = ref 0 in
  let idle_used = ref 0 and idle_total = ref 0 in
  let decisions = ref 0 and correct = ref 0 in
  let window_limit = max 1 (config.window_us / tick) in
  for i = 0 to nticks - 1 do
    let contended = busy_at.(i) in
    if contended then incr busy_total else incr idle_total;
    if !running then begin
      (* symmetric degradation: under contention the LIP gets half *)
      let rate = if contended then 0.5 else 1.0 in
      work := !work +. rate;
      window_progress := !window_progress +. rate;
      if contended then incr interference else incr idle_used;
      incr window_ticks;
      if contended then incr window_busy;
      if (not naive) && !window_ticks >= window_limit then begin
        let observed = !window_progress /. float_of_int !window_ticks in
        let base = Option.value (Correlate.ema_value baseline) ~default:1.0 in
        let truly_contended = 2 * !window_busy > !window_ticks in
        incr decisions;
        if observed < config.threshold *. base then begin
          (* inferred contention: be polite *)
          if truly_contended then incr correct;
          running := false;
          suspend_left := !backoff;
          backoff := min (2 * !backoff) config.suspend_max_us
        end
        else begin
          if not truly_contended then incr correct;
          ignore (Correlate.ema_add baseline observed);
          backoff := config.suspend_min_us
        end;
        window_progress := 0.0;
        window_ticks := 0;
        window_busy := 0
      end
    end
    else begin
      suspend_left := !suspend_left - tick;
      if !suspend_left <= 0 then begin
        (* wake into a short probe window *)
        running := true;
        window_progress := 0.0;
        window_ticks := 0;
        window_busy := 0
      end
    end
  done;
  {
    m_elapsed_us = total_us;
    m_work_done = int_of_float !work;
    m_foreground_interference =
      (if !busy_total = 0 then 0.0
       else float_of_int !interference /. float_of_int !busy_total);
    m_idle_utilization =
      (if !idle_total = 0 then 0.0
       else float_of_int !idle_used /. float_of_int !idle_total);
    m_detection_accuracy =
      (if !decisions = 0 then 1.0
       else float_of_int !correct /. float_of_int !decisions);
  }
