open Gray_util

type loss_model = Congestion_only | Wireless of float

type flow_stats = { f_delivered : int; f_dropped : int; f_final_cwnd : int }

type result = {
  r_flows : flow_stats array;
  r_rounds : int;
  r_capacity : int;
  r_utilization : float;
  r_fairness : float;
  r_inferred_congestion : int;
  r_true_congestion : int;
  r_inference_precision : float;
}

type flow = {
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable delivered : int;
  mutable dropped : int;
}

let simulate rng ~flows ~capacity ~queue ~rounds ~loss =
  if flows <= 0 || capacity <= 0 || rounds <= 0 then
    invalid_arg "Tcp.simulate: sizes must be positive";
  let fs = Array.init flows (fun _ -> { cwnd = 1; ssthresh = max 2 (capacity / 2);
                                        delivered = 0; dropped = 0 }) in
  let inferred = ref 0 and true_pos = ref 0 in
  let backlog = ref 0 in
  let served_total = ref 0 in
  for _ = 1 to rounds do
    let offered = Array.fold_left (fun acc f -> acc + f.cwnd) 0 fs in
    (* the queue is storage: it absorbs bursts but drains at link rate *)
    let room = capacity + queue - !backlog in
    let overflowed = offered > room in
    let accepted_total = min offered room in
    let serve = min (!backlog + accepted_total) capacity in
    backlog := !backlog + accepted_total - serve;
    served_total := !served_total + serve;
    let accept_ratio =
      if overflowed then float_of_int accepted_total /. float_of_int offered else 1.0
    in
    Array.iter
      (fun f ->
        let accepted = int_of_float (float_of_int f.cwnd *. accept_ratio) in
        let congestion_drops = f.cwnd - accepted in
        (* wireless corruption hits accepted packets at random *)
        let corrupted =
          match loss with
          | Congestion_only -> 0
          | Wireless p ->
            let c = ref 0 in
            for _ = 1 to accepted do
              if Rng.float rng 1.0 < p then incr c
            done;
            !c
        in
        let ok = accepted - corrupted in
        (* fluid model: a flow's eventual deliveries are its accepted,
           uncorrupted packets (the queue preserves them) *)
        f.delivered <- f.delivered + ok;
        f.dropped <- f.dropped + congestion_drops + corrupted;
        if congestion_drops + corrupted > 0 then begin
          (* gray-box inference: loss means congestion -> back off *)
          incr inferred;
          if overflowed then incr true_pos;
          f.ssthresh <- max 2 (f.cwnd / 2);
          f.cwnd <- max 1 (f.cwnd / 2)
        end
        else if f.cwnd < f.ssthresh then f.cwnd <- f.cwnd * 2 (* slow start *)
        else f.cwnd <- f.cwnd + 1 (* congestion avoidance *))
      fs
  done;
  let delivered = Array.map (fun f -> float_of_int f.delivered) fs in
  let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 delivered in
  let sum = Array.fold_left ( +. ) 0.0 delivered in
  let fairness =
    if sum_sq = 0.0 then 1.0 else sum *. sum /. (float_of_int flows *. sum_sq)
  in
  {
    r_flows = Array.map (fun f ->
        { f_delivered = f.delivered; f_dropped = f.dropped; f_final_cwnd = f.cwnd }) fs;
    r_rounds = rounds;
    r_capacity = capacity;
    r_utilization = float_of_int !served_total /. float_of_int (capacity * rounds);
    r_fairness = fairness;
    r_inferred_congestion = !inferred;
    r_true_congestion = !true_pos;
    r_inference_precision =
      (if !inferred = 0 then 1.0 else float_of_int !true_pos /. float_of_int !inferred);
  }
