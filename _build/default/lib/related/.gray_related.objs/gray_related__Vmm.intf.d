lib/related/vmm.mli: Gray_util
