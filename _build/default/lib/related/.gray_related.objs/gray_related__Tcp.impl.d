lib/related/tcp.ml: Array Gray_util Rng
