lib/related/vmm.ml: Array Gray_util Rng Stats
