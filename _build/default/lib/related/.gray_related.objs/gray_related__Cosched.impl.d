lib/related/cosched.ml: Array Gray_util Rng
