lib/related/tcp.mli: Gray_util
