lib/related/manners.ml: Array Correlate Gray_util List Option Rng
