lib/related/manners.mli: Gray_util
