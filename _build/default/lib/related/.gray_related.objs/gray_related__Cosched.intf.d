lib/related/cosched.mli: Gray_util
