open Gray_util

type policy = Block_immediately | Spin_forever | Two_phase of int

type result = {
  c_barriers : int;
  c_elapsed_us : int;
  c_ideal_us : int;
  c_slowdown : float;
  c_spin_wasted_us : int;
  c_background_share : float;
}

(* Per-node process states.  Process 0 of every node is the parallel
   worker; the rest are background compute. *)
type pstate =
  | Computing of int  (* µs of work left before the next barrier *)
  | Spinning of int  (* µs of spin budget left *)
  | Blocked
  | Runnable_after_wake

type node = {
  procs : pstate array;
  mutable current : int;
  mutable quantum_left : int;
  mutable switch_left : int;  (* context-switch stall *)
}

let tick = 10 (* µs *)

let simulate rng ~nodes ~background ~granularity_us ~barriers ~quantum_us
    ~ctx_switch_us ~policy =
  if nodes <= 0 || barriers <= 0 || granularity_us <= 0 then
    invalid_arg "Cosched.simulate: sizes must be positive";
  let nprocs = 1 + background in
  let fresh_quantum () =
    (* jittered quanta keep the uncoordinated schedulers drifting apart *)
    let jitter = Rng.int_in rng ~min:(-quantum_us / 5) ~max:(quantum_us / 5) in
    max tick (quantum_us + jitter)
  in
  let ns =
    Array.init nodes (fun _ ->
        {
          procs = Array.make nprocs (Computing granularity_us);
          current = Rng.int rng nprocs;
          quantum_left = fresh_quantum ();
          switch_left = 0;
        })
  in
  (* how many workers have reached the current barrier *)
  let arrived = ref 0 in
  let completed = ref 0 in
  let spin_wasted = ref 0 in
  let bg_ticks = ref 0 in
  let total_ticks = ref 0 in
  let elapsed = ref 0 in
  let initial_spin = match policy with Two_phase s -> s | _ -> 0 in
  let switch_to node idx =
    if node.current <> idx then begin
      node.current <- idx;
      node.switch_left <- ctx_switch_us;
      node.quantum_left <- fresh_quantum ()
    end
  in
  let next_runnable node =
    (* round-robin over runnable processes; background is always runnable *)
    let rec scan k =
      if k > nprocs then None
      else begin
        let idx = (node.current + k) mod nprocs in
        match node.procs.(idx) with
        | Blocked -> scan (k + 1)
        | Computing _ | Spinning _ | Runnable_after_wake -> Some idx
      end
    in
    scan 1
  in
  let preempt node =
    match next_runnable node with Some idx -> switch_to node idx | None -> ()
  in
  let reach_barrier node =
    incr arrived;
    if !arrived = nodes then begin
      (* barrier complete: everyone proceeds; wake the blocked *)
      arrived := 0;
      incr completed;
      Array.iter
        (fun n ->
          Array.iteri
            (fun i p ->
              if i = 0 then
                match p with
                | Blocked -> n.procs.(0) <- Runnable_after_wake
                | Spinning _ | Computing _ | Runnable_after_wake ->
                  n.procs.(0) <- Computing granularity_us)
            n.procs)
        ns;
      true
    end
    else begin
      (* peers that are spinning get their hope renewed: an arrival is the
         gray-box signal that senders are scheduled *)
      (match policy with
      | Two_phase s ->
        Array.iter
          (fun n ->
            match n.procs.(0) with
            | Spinning _ -> n.procs.(0) <- Spinning s
            | Computing _ | Blocked | Runnable_after_wake -> ())
          ns
      | Block_immediately | Spin_forever -> ());
      node.procs.(0) <-
        (match policy with
        | Block_immediately ->
          preempt node;
          Blocked
        | Spin_forever -> Spinning max_int
        | Two_phase _ -> Spinning initial_spin);
      false
    end
  in
  while !completed < barriers do
    elapsed := !elapsed + tick;
    Array.iter
      (fun node ->
        total_ticks := !total_ticks + 1;
        if node.switch_left > 0 then node.switch_left <- node.switch_left - tick
        else begin
          node.quantum_left <- node.quantum_left - tick;
          let idx = node.current in
          (match node.procs.(idx) with
          | Computing left when idx = 0 ->
            let left = left - tick in
            if left <= 0 then ignore (reach_barrier node)
            else node.procs.(0) <- Computing left
          | Computing _ -> bg_ticks := !bg_ticks + 1 (* background churns on *)
          | Spinning left ->
            spin_wasted := !spin_wasted + tick;
            if left <= 0 && policy <> Spin_forever then begin
              node.procs.(0) <- Blocked;
              preempt node
            end
            else node.procs.(0) <- Spinning (left - tick)
          | Runnable_after_wake -> node.procs.(0) <- Computing granularity_us
          | Blocked -> preempt node);
          if node.quantum_left <= 0 then preempt node
        end)
      ns
  done;
  let ideal = barriers * granularity_us in
  {
    c_barriers = barriers;
    c_elapsed_us = !elapsed;
    c_ideal_us = ideal;
    c_slowdown = float_of_int !elapsed /. float_of_int ideal;
    c_spin_wasted_us = !spin_wasted;
    c_background_share =
      (if !total_ticks = 0 then 0.0
       else float_of_int !bg_ticks /. float_of_int !total_ticks);
  }
