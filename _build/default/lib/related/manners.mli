(** MS Manners as a gray-box system (Section 3, Table 1).

    Gray-box knowledge: {e one process competing with another usually
    degrades the progress of the other symmetrically to its own}.  A
    low-importance process (LIP) measures its own progress rate, compares
    it against a calibrated uncontended baseline with simple statistics
    (exponential averaging here), and suspends itself when progress drops —
    inferring that an important process wants the machine.

    The simulated machine interleaves the LIP with a foreground load that
    alternates busy and idle phases; the LIP's progress per window is the
    observable, contention is the hidden state. *)

type config = {
  window_us : int;  (** measurement window *)
  threshold : float;  (** suspend when rate < threshold × baseline *)
  resume_probe_us : int;  (** how long to run when probing for idleness *)
  suspend_min_us : int;  (** initial suspension, doubles while contended *)
  suspend_max_us : int;
  ema_alpha : float;  (** baseline smoothing *)
}

val default_config : config

type result = {
  m_elapsed_us : int;
  m_work_done : int;  (** LIP work units completed *)
  m_foreground_interference : float;
      (** share of the foreground's busy time the LIP stole; small is
          polite *)
  m_idle_utilization : float;  (** share of idle time the LIP used *)
  m_detection_accuracy : float;
      (** fraction of windows whose run/suspend decision matched the true
          contention state *)
}

val simulate :
  Gray_util.Rng.t ->
  config ->
  busy_us:int ->
  idle_us:int ->
  phases:int ->
  naive:bool ->
  result
(** Foreground alternates [phases] pairs of busy/idle periods (durations
    jittered ±25%).  [naive] disables the regulation: the LIP runs
    whenever scheduled — the baseline a Manners-less system would show. *)
