open Gray_util

type policy = Fixed_slice | Idle_aware

type result = {
  d_elapsed_us : int;
  d_useful_us : int;
  d_idle_burned_us : int;
  d_switches : int;
  d_throughput : float;
  d_mean_wait_us : float;
}

type gstate =
  | Busy of int  (* µs left in the current burst *)
  | Idle of int  (* µs left in the idle period *)
  | Done

type guest = {
  mutable state : gstate;
  mutable work_left : int;
  mutable ready_since : int option;  (* for wait accounting *)
}

let tick = 10 (* µs *)

(* The idle-loop signature becomes observable to the VMM after the guest
   has spun for a short while (pattern recognition is not instant). *)
let idle_detect_us = 50

let simulate rng ~guests ~slice_us ~switch_cost_us ~busy_us ~idle_us ~total_work_us
    ~policy =
  if guests <= 0 || slice_us <= 0 || total_work_us <= 0 then
    invalid_arg "Vmm.simulate: sizes must be positive";
  let jitter base = max tick (base + Rng.int_in rng ~min:(-base / 4) ~max:(base / 4)) in
  let gs =
    Array.init guests (fun _ ->
        { state = Busy (jitter busy_us); work_left = total_work_us; ready_since = Some 0 })
  in
  let now = ref 0 in
  let current = ref 0 in
  let slice_left = ref slice_us in
  let switch_stall = ref 0 in
  let idle_run = ref 0 in
  let useful = ref 0 in
  let idle_burned = ref 0 in
  let switches = ref 0 in
  let waits = ref [] in
  let all_done () = Array.for_all (fun g -> g.state = Done) gs in
  let switch_to i =
    if i <> !current then begin
      incr switches;
      current := i;
      switch_stall := switch_cost_us;
      slice_left := slice_us;
      idle_run := 0;
      let g = gs.(i) in
      match (g.state, g.ready_since) with
      | Busy _, Some since -> begin
        waits := float_of_int (!now - since) :: !waits;
        g.ready_since <- None
      end
      | _ -> ()
    end
    else slice_left := slice_us
  in
  let next_guest () =
    (* prefer a busy guest; otherwise any non-done guest; otherwise stay *)
    let candidate pred =
      let rec scan k =
        if k > guests then None
        else begin
          let i = (!current + k) mod guests in
          if pred gs.(i).state then Some i else scan (k + 1)
        end
      in
      scan 1
    in
    match candidate (function Busy _ -> true | Idle _ | Done -> false) with
    | Some i -> switch_to i
    | None -> (
      match candidate (function Idle _ -> true | Busy _ | Done -> false) with
      | Some i -> switch_to i
      | None -> ())
  in
  while not (all_done ()) do
    now := !now + tick;
    (* guests' clocks advance even when descheduled: idle periods are
       wall-clock waits (I/O completions), bursts only advance on CPU *)
    Array.iteri
      (fun i g ->
        match g.state with
        | Idle left ->
          let left = left - tick in
          if left <= 0 then begin
            g.state <- (if g.work_left <= 0 then Done else Busy (jitter busy_us));
            if g.state <> Done && g.ready_since = None && i <> !current then
              g.ready_since <- Some !now
          end
          else g.state <- Idle left
        | Busy _ | Done -> ())
      gs;
    if !switch_stall > 0 then switch_stall := !switch_stall - tick
    else begin
      let g = gs.(!current) in
      (match g.state with
      | Busy left ->
        idle_run := 0;
        useful := !useful + tick;
        g.work_left <- g.work_left - tick;
        let left = left - tick in
        if g.work_left <= 0 then g.state <- Done
        else if left <= 0 then g.state <- Idle (jitter idle_us)
        else g.state <- Busy left
      | Idle _ ->
        (* physical CPU executes the guest's idle loop *)
        idle_burned := !idle_burned + tick;
        idle_run := !idle_run + tick;
        if policy = Idle_aware && !idle_run >= idle_detect_us then next_guest ()
      | Done -> next_guest ());
      slice_left := !slice_left - tick;
      if !slice_left <= 0 then next_guest ()
    end
  done;
  let mean_wait =
    match !waits with
    | [] -> 0.0
    | ws -> Stats.mean_of (Array.of_list ws)
  in
  {
    d_elapsed_us = !now;
    d_useful_us = !useful;
    d_idle_burned_us = !idle_burned;
    d_switches = !switches;
    d_throughput = float_of_int !useful /. float_of_int (max 1 !now);
    d_mean_wait_us = mean_wait;
  }
