(** Microbenchmark parameter repository.

    Section 5 of the paper: all microbenchmarks "report performance numbers
    (e.g., expected disk seek time, expected disk bandwidth, time for the OS
    to allocate and zero a page, ...) in a common format kept in persistent
    storage; each microbenchmark then only needs to be run once".

    The repository maps string keys to float values, remembers who produced
    each value, and can round-trip through a simple "key = value # note"
    text format. *)

type t

val create : unit -> t
val set : t -> key:string -> value:float -> source:string -> unit
val get : t -> string -> float option
val get_exn : t -> string -> float
(** Raises [Failure] naming the missing key. *)

val get_or : t -> string -> default:float -> float
val mem : t -> string -> bool
val source : t -> string -> string option
val keys : t -> string list
(** Sorted list of keys. *)

val to_string : t -> string
val of_string : string -> t
(** Parses the [to_string] format; unparseable lines raise [Failure]. *)

val save : t -> path:string -> unit
val load : path:string -> t

(** {1 Well-known keys}

    The simulator microbenchmarks and the ICLs agree on these names. *)

val key_disk_seek_ns : string
val key_disk_bandwidth_bytes_per_sec : string
val key_memcopy_page_ns : string
val key_page_alloc_zero_ns : string
val key_page_in_ns : string
val key_cache_hit_read_ns : string
val key_cache_miss_read_ns : string
val key_access_unit_bytes : string
