(** Timer abstraction for the gray toolbox.

    ICL code measures elapsed time through this interface so the same code
    runs against the simulator's virtual clock (deterministic) or the host
    monotonic clock (for the live demos).  The paper's toolbox stresses
    low-overhead, high-resolution timers (rdtsc); virtual timers model a
    configurable resolution so ICLs must cope with quantisation. *)

type t = {
  now_ns : unit -> int;  (** current time in nanoseconds *)
  resolution_ns : int;  (** granularity below which readings quantise *)
}

val host : t
(** Host clock based on [Sys.time] (CPU seconds), kept dependency-free;
    used only by live demos, never by the simulated experiments. *)

val of_fun : ?resolution_ns:int -> (unit -> int) -> t
(** Wrap a raw nanosecond source, quantising to [resolution_ns]
    (default 1). *)

val elapsed : t -> (unit -> 'a) -> 'a * int
(** [elapsed t f] runs [f] and returns its result with the measured
    duration in nanoseconds (quantised to the timer resolution). *)
