lib/util/pqueue.mli:
