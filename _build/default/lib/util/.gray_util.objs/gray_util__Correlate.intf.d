lib/util/correlate.mli:
