lib/util/cluster.mli: Rng
