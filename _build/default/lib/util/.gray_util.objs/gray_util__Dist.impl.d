lib/util/dist.ml: Array Float Hashtbl Rng
