lib/util/table.mli:
