lib/util/rng.mli:
