lib/util/correlate.ml: Array Float Stats
