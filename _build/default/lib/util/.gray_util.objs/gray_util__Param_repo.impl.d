lib/util/param_repo.ml: Buffer Fun Hashtbl In_channel List Option Printf String
