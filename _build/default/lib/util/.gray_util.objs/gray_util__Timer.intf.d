lib/util/timer.mli:
