lib/util/cluster.ml: Array Float Rng
