lib/util/param_repo.mli:
