lib/util/stats.mli:
