lib/util/histogram.mli:
