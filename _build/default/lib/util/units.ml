let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024
let bytes_of_mib m = m * mib
let mib_of_bytes b = float_of_int b /. float_of_int mib
let usec = 1_000
let msec = 1_000_000
let sec = 1_000_000_000
let ns_of_sec s = int_of_float (s *. 1e9)
let sec_of_ns ns = float_of_int ns /. 1e9

let pp_bytes ppf b =
  if b < kib then Format.fprintf ppf "%d B" b
  else if b < mib then Format.fprintf ppf "%.1f KB" (float_of_int b /. float_of_int kib)
  else if b < gib then Format.fprintf ppf "%.1f MB" (float_of_int b /. float_of_int mib)
  else Format.fprintf ppf "%.2f GB" (float_of_int b /. float_of_int gib)

let pp_ns ppf ns =
  if ns < usec then Format.fprintf ppf "%d ns" ns
  else if ns < msec then Format.fprintf ppf "%.1f us" (float_of_int ns /. 1e3)
  else if ns < sec then Format.fprintf ppf "%.1f ms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2f s" (float_of_int ns /. 1e9)

let bytes_to_string b = Format.asprintf "%a" pp_bytes b
let ns_to_string ns = Format.asprintf "%a" pp_ns ns
