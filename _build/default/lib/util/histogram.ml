type t = {
  min : float;
  max : float;
  width : float;
  counts : int array;
  mutable total : int;
  mutable under : int;
  mutable over : int;
}

let create ~min ~max ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if max <= min then invalid_arg "Histogram.create: max <= min";
  {
    min;
    max;
    width = (max -. min) /. float_of_int bins;
    counts = Array.make bins 0;
    total = 0;
    under = 0;
    over = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.min then t.under <- t.under + 1
  else if x >= t.max then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.min) /. t.width) in
    let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bin_count t i = t.counts.(i)
let underflow t = t.under
let overflow t = t.over

let bin_bounds t i =
  let lo = t.min +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let render t ~width =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (max 1 (c * width / peak)) '#' in
        Buffer.add_string buf (Printf.sprintf "[%10.3f, %10.3f) %6d %s\n" lo hi c bar)
      end)
    t.counts;
  if t.under > 0 then Buffer.add_string buf (Printf.sprintf "(underflow) %d\n" t.under);
  if t.over > 0 then Buffer.add_string buf (Printf.sprintf "(overflow) %d\n" t.over);
  Buffer.contents buf
