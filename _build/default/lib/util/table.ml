type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (max 1 ncols - 1))
  in
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let bar_chart ~title ?(unit_label = "") entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      let bar_len =
        if peak <= 0.0 then 0 else int_of_float (v /. peak *. 40.0)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %8.3f%s %s\n" label_width label v unit_label
           (String.make (max 0 bar_len) '#')))
    entries;
  Buffer.contents buf

let grouped_bars ~title ~group_names ~series =
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let peak =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 series
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  List.iteri
    (fun gi group ->
      Buffer.add_string buf (Printf.sprintf " %s\n" group);
      List.iter
        (fun (name, vs) ->
          match List.nth_opt vs gi with
          | None -> ()
          | Some v ->
            let bar_len =
              if peak <= 0.0 then 0 else int_of_float (v /. peak *. 40.0)
            in
            Buffer.add_string buf
              (Printf.sprintf "   %-*s %8.3f %s\n" label_width name v
                 (String.make (max 0 bar_len) '#')))
        series)
    group_names;
  Buffer.contents buf
