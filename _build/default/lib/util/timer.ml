type t = { now_ns : unit -> int; resolution_ns : int }

let quantise resolution ns = if resolution <= 1 then ns else ns / resolution * resolution

let of_fun ?(resolution_ns = 1) now_ns =
  if resolution_ns < 1 then invalid_arg "Timer.of_fun: resolution must be >= 1";
  { now_ns = (fun () -> quantise resolution_ns (now_ns ())); resolution_ns }

let host =
  (* Sys.time has low resolution; use Unix-free monotonic-ish source via
     Stdlib only: Sys.time () is CPU time, wall clock needs Unix.  The host
     timer is used only by demos, so gettimeofday-level resolution through
     Unix would be ideal, but to keep gray_util dependency-free we fall back
     to Sys.time (seconds of CPU) scaled to ns. *)
  of_fun ~resolution_ns:1000 (fun () -> int_of_float (Sys.time () *. 1e9))

let elapsed t f =
  let start = t.now_ns () in
  let result = f () in
  let stop = t.now_ns () in
  (result, max 0 (stop - start))
