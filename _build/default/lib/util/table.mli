(** ASCII tables and bar series for the benchmark harness output.

    The bench executable regenerates each figure of the paper as either a
    table of series (x, y1, y2, ...) or a group of normalised bars; this
    module renders both in plain text. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
(** Box-drawing-free rendering: title, header, separator, rows, padded. *)

val bar_chart :
  title:string ->
  ?unit_label:string ->
  (string * float) list ->
  string
(** Horizontal bar chart scaled to the largest value. *)

val grouped_bars :
  title:string ->
  group_names:string list ->
  series:(string * float list) list ->
  string
(** Grouped normalised-bar rendering: one block per group, one labelled bar
    per series value.  [series] gives [(series_name, per-group values)]. *)
