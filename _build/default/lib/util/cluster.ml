type split = {
  threshold : float;
  low_mean : float;
  high_mean : float;
  low_count : int;
  high_count : int;
  within_variance : float;
}

(* Exact optimal 2-partition of sorted 1-D data: try every split point,
   using prefix sums to evaluate within-cluster sum of squares in O(1). *)
let two_means xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Cluster.two_means: empty input";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let prefix = Array.make (n + 1) 0.0 in
  let prefix_sq = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. sorted.(i);
    prefix_sq.(i + 1) <- prefix_sq.(i) +. (sorted.(i) *. sorted.(i))
  done;
  let sse lo hi =
    (* sum of squared deviations of sorted.(lo..hi-1) from its mean *)
    let count = float_of_int (hi - lo) in
    if count <= 0.0 then 0.0
    else begin
      let s = prefix.(hi) -. prefix.(lo) in
      let sq = prefix_sq.(hi) -. prefix_sq.(lo) in
      sq -. (s *. s /. count)
    end
  in
  let all_equal = sorted.(0) = sorted.(n - 1) in
  if n = 1 || all_equal then
    {
      threshold = max_float;
      low_mean = prefix.(n) /. float_of_int n;
      high_mean = nan;
      low_count = n;
      high_count = 0;
      within_variance = 0.0;
    }
  else begin
    let best = ref (infinity, 1) in
    for split_at = 1 to n - 1 do
      (* only cut between distinct values so the threshold is realisable *)
      if sorted.(split_at - 1) < sorted.(split_at) then begin
        let cost = sse 0 split_at +. sse split_at n in
        if cost < fst !best then best := (cost, split_at)
      end
    done;
    let within_variance, cut = !best in
    let low_count = cut and high_count = n - cut in
    {
      threshold = (sorted.(cut - 1) +. sorted.(cut)) /. 2.0;
      low_mean = prefix.(cut) /. float_of_int cut;
      high_mean = (prefix.(n) -. prefix.(cut)) /. float_of_int high_count;
      low_count;
      high_count;
      within_variance;
    }
  end

let two_means_log xs =
  if Array.exists (fun x -> x <= 0.0) xs then
    invalid_arg "Cluster.two_means_log: inputs must be positive";
  let s = two_means (Array.map log xs) in
  {
    s with
    threshold = (if s.threshold = max_float then max_float else exp s.threshold);
    low_mean = exp s.low_mean;
    high_mean = (if s.high_count = 0 then nan else exp s.high_mean);
  }

let separation s =
  if s.high_count = 0 then 1.0
  else if s.low_mean <= 0.0 then infinity
  else s.high_mean /. s.low_mean

let k_means rng ~k ~max_iter xs =
  let n = Array.length xs in
  if k <= 0 then invalid_arg "Cluster.k_means: k must be positive";
  if n < k then invalid_arg "Cluster.k_means: fewer points than clusters";
  (* k-means++ seeding *)
  let centroids = Array.make k 0.0 in
  centroids.(0) <- xs.(Rng.int rng n);
  let d2 = Array.make n infinity in
  for c = 1 to k - 1 do
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      let d = xs.(i) -. centroids.(c - 1) in
      d2.(i) <- Float.min d2.(i) (d *. d);
      total := !total +. d2.(i)
    done;
    if !total = 0.0 then centroids.(c) <- xs.(Rng.int rng n)
    else begin
      let target = Rng.float rng !total in
      let acc = ref 0.0 and chosen = ref (n - 1) in
      (try
         for i = 0 to n - 1 do
           acc := !acc +. d2.(i);
           if !acc >= target then begin
             chosen := i;
             raise Exit
           end
         done
       with Exit -> ());
      centroids.(c) <- xs.(!chosen)
    end
  done;
  Array.sort compare centroids;
  let assignment = Array.make n 0 in
  let assign () =
    let changed = ref false in
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to k - 1 do
        let d = Float.abs (xs.(i) -. centroids.(c)) in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      if assignment.(i) <> !best then begin
        assignment.(i) <- !best;
        changed := true
      end
    done;
    !changed
  in
  let update () =
    let sums = Array.make k 0.0 and counts = Array.make k 0 in
    for i = 0 to n - 1 do
      let c = assignment.(i) in
      sums.(c) <- sums.(c) +. xs.(i);
      counts.(c) <- counts.(c) + 1
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then centroids.(c) <- sums.(c) /. float_of_int counts.(c)
    done;
    Array.sort compare centroids
  in
  let rec loop i =
    if i < max_iter && assign () then begin
      update ();
      loop (i + 1)
    end
  in
  loop 0;
  ignore (assign ());
  (centroids, assignment)
