(** Byte- and time-unit helpers shared by the simulator and the reports.

    Simulated time is an [int] count of nanoseconds throughout the
    repository (63 bits ≈ 292 years, ample). *)

val kib : int
val mib : int
val gib : int

val bytes_of_mib : int -> int
val mib_of_bytes : int -> float

val usec : int
(** Nanoseconds in a microsecond. *)

val msec : int
val sec : int

val ns_of_sec : float -> int
val sec_of_ns : int -> float

val pp_bytes : Format.formatter -> int -> unit
(** "512 B", "8.0 KB", "20.0 MB", "1.00 GB". *)

val pp_ns : Format.formatter -> int -> unit
(** "250 ns", "3.2 us", "14.5 ms", "54.30 s". *)

val bytes_to_string : int -> string
val ns_to_string : int -> string
