type entry = { value : float; source : string }
type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       key

let set t ~key ~value ~source =
  if not (valid_key key) then invalid_arg ("Param_repo.set: bad key " ^ key);
  Hashtbl.replace t key { value; source }

let get t key = Option.map (fun e -> e.value) (Hashtbl.find_opt t key)

let get_exn t key =
  match get t key with
  | Some v -> v
  | None -> failwith ("Param_repo.get_exn: missing key " ^ key)

let get_or t key ~default = Option.value (get t key) ~default
let mem t key = Hashtbl.mem t key
let source t key = Option.map (fun e -> e.source) (Hashtbl.find_opt t key)

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun k ->
      let e = Hashtbl.find t k in
      Buffer.add_string buf (Printf.sprintf "%s = %.6g # %s\n" k e.value e.source))
    (keys t);
  Buffer.contents buf

let of_string s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           let body, note =
             match String.index_opt line '#' with
             | Some i ->
               ( String.trim (String.sub line 0 i),
                 String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
             | None -> (line, "")
           in
           match String.index_opt body '=' with
           | None -> failwith ("Param_repo.of_string: bad line: " ^ line)
           | Some i ->
             let key = String.trim (String.sub body 0 i) in
             let value_str =
               String.trim (String.sub body (i + 1) (String.length body - i - 1))
             in
             (match float_of_string_opt value_str with
             | None -> failwith ("Param_repo.of_string: bad value: " ^ line)
             | Some value -> set t ~key ~value ~source:note)
         end);
  t

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let key_disk_seek_ns = "disk.avg_seek_ns"
let key_disk_bandwidth_bytes_per_sec = "disk.bandwidth_bytes_per_sec"
let key_memcopy_page_ns = "mem.copy_page_ns"
let key_page_alloc_zero_ns = "mem.alloc_zero_page_ns"
let key_page_in_ns = "vm.page_in_ns"
let key_cache_hit_read_ns = "fs.cache_hit_read_ns"
let key_cache_miss_read_ns = "fs.cache_miss_read_ns"
let key_access_unit_bytes = "fccd.access_unit_bytes"
