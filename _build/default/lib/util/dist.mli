(** Random distributions used by workload generators and the noise model. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]). *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal deviate: [exp (gaussian mu sigma)]. *)

val lognormal_factor : Rng.t -> sigma:float -> float
(** Multiplicative noise factor with mean 1: a log-normal with
    [mu = -sigma^2/2], suitable for scaling service times. *)

val zipf : Rng.t -> n:int -> theta:float -> int
(** Zipf-distributed integer in [\[0, n)], skew [theta] (0 = uniform). *)

val pareto_bounded : Rng.t -> shape:float -> min:float -> max:float -> float
(** Bounded Pareto deviate, used for file-size populations. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct integers from
    [\[0, n)], in random order.  Raises [Invalid_argument] if [k > n]. *)
