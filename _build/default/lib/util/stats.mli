(** Statistical routines for interpreting gray-box measurements.

    Section 5 of the paper ("Towards a Gray Toolbox") calls for incremental,
    low-overhead implementations of the usual descriptive statistics plus
    outlier rejection; this module provides both a one-shot API over arrays
    and an incremental accumulator (Welford's algorithm). *)

(** {1 Incremental accumulator} *)

type t
(** Running mean / variance / extrema accumulator.  O(1) space. *)

val empty : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples seen so far; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float

val merge : t -> t -> t
(** [merge a b] combines two accumulators (parallel Welford). *)

(** {1 One-shot helpers over arrays} *)

val mean_of : float array -> float
val stddev_of : float array -> float
val median_of : float array -> float
(** Median (interpolated for even lengths).  Does not mutate the input. *)

val percentile_of : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [\[0,1\]]. *)

val discard_outliers : float array -> k:float -> float array
(** Samples within [k] standard deviations of the mean. *)

val summarize : float array -> string
(** One-line "mean ± stddev (min..max, n=..)" rendering for reports. *)
