(** Fixed-bin histograms, mainly for inspecting probe-time populations. *)

type t

val create : min:float -> max:float -> bins:int -> t
(** Histogram over [\[min, max)] with [bins] equal-width bins plus implicit
    under/overflow bins. *)

val add : t -> float -> unit
val count : t -> int
val bin_count : t -> int -> int
(** Count of bin [i] in [\[0, bins)]. *)

val underflow : t -> int
val overflow : t -> int
val bin_bounds : t -> int -> float * float
val mode_bin : t -> int
(** Index of the fullest bin (ties: lowest index). *)

val render : t -> width:int -> string
(** ASCII rendering, one line per non-empty bin. *)
