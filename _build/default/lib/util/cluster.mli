(** One-dimensional clustering of probe times.

    Section 4.2.4 of the paper composes FCCD with FLDC by clustering file
    probe times into two groups "minimizing the intragroup variance and
    maximizing the intergroup variance".  For 1-D data with two clusters the
    optimum is a single threshold, found exactly by scanning split points of
    the sorted samples; a general k-means (Lloyd) is provided as well. *)

type split = {
  threshold : float;  (** values [<= threshold] belong to the low cluster *)
  low_mean : float;
  high_mean : float;
  low_count : int;
  high_count : int;
  within_variance : float;  (** summed within-cluster sum of squares *)
}

val two_means : float array -> split
(** Optimal 2-cluster split of the samples.  With fewer than two distinct
    values the result puts everything in the low cluster and sets
    [threshold] to [max_float].  Raises [Invalid_argument] on empty input. *)

val two_means_log : float array -> split
(** Like {!two_means} but clustered in log domain — the right metric for
    latency mixtures that span decades (a single extreme outlier dominates
    linear sum-of-squares and hijacks the split; in log space the
    cache-vs-disk gap wins).  Inputs must be positive.  [threshold],
    [low_mean] and [high_mean] are mapped back to the original domain
    (geometric means); [within_variance] stays in log domain. *)

val separation : split -> float
(** Ratio [high_mean / low_mean] (capped when [low_mean = 0]); a large value
    means the two clusters are well separated, a value near 1 means the
    split is probably spurious (e.g. all files actually on disk). *)

val k_means :
  Rng.t -> k:int -> max_iter:int -> float array -> float array * int array
(** [k_means rng ~k ~max_iter xs] returns [(centroids, assignment)] from
    Lloyd's algorithm with k-means++ seeding.  Centroids are sorted
    ascending and assignments refer to the sorted order. *)
