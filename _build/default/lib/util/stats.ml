type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
}

let empty () =
  { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v
let total t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total;
    }
  end

let of_array xs =
  let t = empty () in
  Array.iter (add t) xs;
  t

let mean_of xs = mean (of_array xs)
let stddev_of xs = stddev (of_array xs)

let percentile_of xs ~p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile_of: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile_of: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median_of xs = percentile_of xs ~p:0.5

let discard_outliers xs ~k =
  let t = of_array xs in
  let mu = mean t and sd = stddev t in
  if Array.length xs = 0 || sd = 0.0 then Array.copy xs
  else
    Array.of_list
      (List.filter
         (fun x -> Float.abs (x -. mu) <= k *. sd)
         (Array.to_list xs))

let summarize xs =
  if Array.length xs = 0 then "(no samples)"
  else begin
    let t = of_array xs in
    Printf.sprintf "%.3f ± %.3f (%.3f..%.3f, n=%d)" (mean t) (stddev t)
      (min_value t) (max_value t) (count t)
  end
