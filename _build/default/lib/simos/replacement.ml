module type POLICY = sig
  val name : string
  val mem : Page.key -> bool
  val touch : Page.key -> unit
  val insert : Page.key -> unit
  val victim : unit -> Page.key option
  val remove : Page.key -> unit
  val size : unit -> int
  val iter : (Page.key -> unit) -> unit
end

type t = (module POLICY)
type factory = capacity:int -> t

let name (module P : POLICY) = P.name

(* Intrusive doubly-linked list shared by the list-based policies.  The
   [weight] field holds the clock's aged reference count. *)
module Dll = struct
  type node = {
    key : Page.key;
    mutable prev : node option;
    mutable next : node option;
    mutable weight : int;
  }

  type list_t = {
    mutable head : node option;  (* MRU end *)
    mutable tail : node option;  (* LRU end *)
    mutable count : int;
  }

  let create () = { head = None; tail = None; count = 0 }

  let push_front t key =
    let node = { key; prev = None; next = t.head; weight = 0 } in
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node;
    t.count <- t.count + 1;
    node

  let unlink t node =
    (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
    (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None;
    t.count <- t.count - 1

  let move_to_front t node =
    if t.head != Some node then begin
      unlink t node;
      node.next <- t.head;
      (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
      t.head <- Some node;
      t.count <- t.count + 1
    end

  let iter t f =
    let rec go = function
      | None -> ()
      | Some node ->
        let next = node.next in
        f node;
        go next
    in
    go t.head
end

(* LRU and MRU share everything except which end of the list the victim
   comes from. *)
let list_policy ~policy_name ~victim_end () : t =
  let list = Dll.create () in
  let tbl : Dll.node Page.Tbl.t = Page.Tbl.create 1024 in
  (module struct
    let name = policy_name
    let mem key = Page.Tbl.mem tbl key

    let touch key =
      match Page.Tbl.find_opt tbl key with
      | Some node -> Dll.move_to_front list node
      | None -> ()

    let insert key =
      assert (not (Page.Tbl.mem tbl key));
      Page.Tbl.replace tbl key (Dll.push_front list key)

    let victim () =
      let node = match victim_end with `Lru -> list.Dll.tail | `Mru -> list.Dll.head in
      match node with
      | None -> None
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl node.Dll.key;
        Some node.Dll.key

    let remove key =
      match Page.Tbl.find_opt tbl key with
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key
      | None -> ()

    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

let lru ~capacity:_ = list_policy ~policy_name:"lru" ~victim_end:`Lru ()
let mru_sticky ~capacity:_ = list_policy ~policy_name:"mru-sticky" ~victim_end:`Mru ()

let fifo ~capacity:_ : t =
  let list = Dll.create () in
  let tbl : Dll.node Page.Tbl.t = Page.Tbl.create 1024 in
  (module struct
    let name = "fifo"
    let mem key = Page.Tbl.mem tbl key
    let touch _ = ()

    let insert key =
      assert (not (Page.Tbl.mem tbl key));
      Page.Tbl.replace tbl key (Dll.push_front list key)

    let victim () =
      match list.Dll.tail with
      | None -> None
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl node.Dll.key;
        Some node.Dll.key

    let remove key =
      match Page.Tbl.find_opt tbl key with
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key
      | None -> ()

    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

(* Clock with reference aging.  The list acts as the ring in insertion
   order; the hand sweeps from the LRU end, decrementing each page's aged
   reference count until it finds a cold (zero-weight) page.  Pages arrive
   with weight 1 (the faulting access references them) and repeated hits
   raise the weight up to a small cap, so genuinely re-used pages (a
   recycled heap, a hot file) survive several cache turnovers while
   streamed-once pages decay to FIFO — the behaviour of real active/
   inactive page aging. *)
let clock_max_weight = 2

let clock ~capacity:_ : t =
  let list = Dll.create () in
  let tbl : Dll.node Page.Tbl.t = Page.Tbl.create 1024 in
  (module struct
    let name = "clock"
    let mem key = Page.Tbl.mem tbl key

    let touch key =
      match Page.Tbl.find_opt tbl key with
      | Some node -> node.Dll.weight <- min (node.Dll.weight + 1) clock_max_weight
      | None -> ()

    let insert key =
      assert (not (Page.Tbl.mem tbl key));
      let node = Dll.push_front list key in
      node.Dll.weight <- 1;
      Page.Tbl.replace tbl key node

    let victim () =
      let rec sweep () =
        match list.Dll.tail with
        | None -> None
        | Some node ->
          if node.Dll.weight > 0 then begin
            node.Dll.weight <- node.Dll.weight - 1;
            Dll.move_to_front list node;
            sweep ()
          end
          else begin
            Dll.unlink list node;
            Page.Tbl.remove tbl node.Dll.key;
            Some node.Dll.key
          end
      in
      sweep ()

    let remove key =
      match Page.Tbl.find_opt tbl key with
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key
      | None -> ()

    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

(* Simplified 2Q: new pages enter a FIFO probation queue sized to a quarter
   of capacity; a hit while on probation promotes to the protected LRU main
   queue.  Victims come from probation first. *)
let two_q ~capacity : t =
  let probation = Dll.create () in
  let main = Dll.create () in
  let where : (Dll.node * [ `Probation | `Main ]) Page.Tbl.t = Page.Tbl.create 1024 in
  let probation_max = max 1 (capacity / 4) in
  (module struct
    let name = "two-q"
    let mem key = Page.Tbl.mem where key

    let touch key =
      match Page.Tbl.find_opt where key with
      | Some (node, `Probation) ->
        Dll.unlink probation node;
        Page.Tbl.replace where key (Dll.push_front main key, `Main)
      | Some (node, `Main) -> Dll.move_to_front main node
      | None -> ()

    let insert key =
      assert (not (Page.Tbl.mem where key));
      Page.Tbl.replace where key (Dll.push_front probation key, `Probation)

    let take list =
      match list.Dll.tail with
      | None -> None
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove where node.Dll.key;
        Some node.Dll.key

    let victim () =
      (* Evict from probation while it exceeds its share, otherwise give up
         the coldest protected page; fall back to whichever queue has
         pages. *)
      if probation.Dll.count > probation_max then take probation
      else
        match take main with Some _ as v -> v | None -> take probation

    let remove key =
      match Page.Tbl.find_opt where key with
      | Some (node, `Probation) ->
        Dll.unlink probation node;
        Page.Tbl.remove where key
      | Some (node, `Main) ->
        Dll.unlink main node;
        Page.Tbl.remove where key
      | None -> ()

    let size () = probation.Dll.count + main.Dll.count

    let iter f =
      Dll.iter probation (fun node -> f node.Dll.key);
      Dll.iter main (fun node -> f node.Dll.key)
  end)

(* Segmented LRU: pages start probationary; a hit promotes to the protected
   segment (bounded to ~3/4 of capacity, demoting its LRU tail back to
   probation).  Victims come from the probationary tail. *)
let segmented_lru ~capacity : t =
  let probation = Dll.create () in
  let protected_ = Dll.create () in
  let where : (Dll.node * [ `Probation | `Protected ]) Page.Tbl.t =
    Page.Tbl.create 1024
  in
  let protected_max = max 1 (capacity * 3 / 4) in
  (module struct
    let name = "segmented-lru"
    let mem key = Page.Tbl.mem where key

    let demote_overflow () =
      while protected_.Dll.count > protected_max do
        match protected_.Dll.tail with
        | None -> ()
        | Some node ->
          Dll.unlink protected_ node;
          let key = node.Dll.key in
          Page.Tbl.replace where key (Dll.push_front probation key, `Probation)
      done

    let touch key =
      match Page.Tbl.find_opt where key with
      | Some (node, `Probation) ->
        Dll.unlink probation node;
        Page.Tbl.replace where key (Dll.push_front protected_ key, `Protected);
        demote_overflow ()
      | Some (node, `Protected) -> Dll.move_to_front protected_ node
      | None -> ()

    let insert key =
      assert (not (Page.Tbl.mem where key));
      Page.Tbl.replace where key (Dll.push_front probation key, `Probation)

    let victim () =
      let from_list list =
        match list.Dll.tail with
        | None -> None
        | Some node ->
          Dll.unlink list node;
          Page.Tbl.remove where node.Dll.key;
          Some node.Dll.key
      in
      match from_list probation with Some _ as v -> v | None -> from_list protected_

    let remove key =
      match Page.Tbl.find_opt where key with
      | Some (node, `Probation) ->
        Dll.unlink probation node;
        Page.Tbl.remove where key
      | Some (node, `Protected) ->
        Dll.unlink protected_ node;
        Page.Tbl.remove where key
      | None -> ()

    let size () = probation.Dll.count + protected_.Dll.count

    let iter f =
      Dll.iter probation (fun node -> f node.Dll.key);
      Dll.iter protected_ (fun node -> f node.Dll.key)
  end)

(* Approximate EELRU (Smaragdakis, Kaplan & Wilson, SIGMETRICS '99), the
   adaptive fix for LRU's looping worst case that the paper cites for
   "LRU worst-case mode".  Residents are split at an early-eviction point
   [e ~ capacity/2]; a bounded ghost list remembers recent evictions.
   When recently evicted pages keep being re-referenced (a loop larger
   than memory) while pages between [e] and the LRU tail are not, the
   policy evicts early — at position [e] — preserving the head of the
   loop so part of it always hits. *)
let eelru ~capacity : t =
  let early = Dll.create () in
  let late = Dll.create () in
  let where : (Dll.node * [ `Early | `Late ]) Page.Tbl.t = Page.Tbl.create 1024 in
  let ghosts : int Page.Tbl.t = Page.Tbl.create 1024 in
  let ghost_fifo = Queue.create () in
  let ghost_max = max 8 capacity in
  let early_max = max 1 (capacity / 2) in
  let late_hits = ref 0.0 in
  let ghost_hits = ref 0.0 in
  let decay () =
    late_hits := !late_hits *. 0.999;
    ghost_hits := !ghost_hits *. 0.999
  in
  let add_ghost key =
    if not (Page.Tbl.mem ghosts key) then begin
      Page.Tbl.replace ghosts key 0;
      Queue.push key ghost_fifo;
      while Queue.length ghost_fifo > ghost_max do
        Page.Tbl.remove ghosts (Queue.pop ghost_fifo)
      done
    end
  in
  (module struct
    let name = "eelru"
    let mem key = Page.Tbl.mem where key

    let demote_overflow () =
      while early.Dll.count > early_max do
        match early.Dll.tail with
        | None -> ()
        | Some node ->
          Dll.unlink early node;
          let key = node.Dll.key in
          Page.Tbl.replace where key (Dll.push_front late key, `Late)
      done

    let touch key =
      decay ();
      match Page.Tbl.find_opt where key with
      | Some (node, `Early) -> Dll.move_to_front early node
      | Some (node, `Late) ->
        (* a hit beyond the early point argues against early eviction *)
        late_hits := !late_hits +. 1.0;
        Dll.unlink late node;
        Page.Tbl.replace where key (Dll.push_front early key, `Early);
        demote_overflow ()
      | None -> ()

    let insert key =
      assert (not (Page.Tbl.mem where key));
      decay ();
      if Page.Tbl.mem ghosts key then
        (* re-reference shortly after eviction: the loop is bigger than
           memory — evidence for evicting early *)
        ghost_hits := !ghost_hits +. 1.0;
      Page.Tbl.replace where key (Dll.push_front early key, `Early);
      demote_overflow ()

    let take list =
      match list.Dll.tail with
      | None -> None
      | Some node ->
        Dll.unlink list node;
        Page.Tbl.remove where node.Dll.key;
        add_ghost node.Dll.key;
        Some node.Dll.key

    let victim () =
      let early_eviction = !ghost_hits > !late_hits +. 1.0 in
      if early_eviction then
        (* evict at the early point: the head of the late segment *)
        match late.Dll.head with
        | Some node ->
          Dll.unlink late node;
          Page.Tbl.remove where node.Dll.key;
          add_ghost node.Dll.key;
          Some node.Dll.key
        | None -> take early
      else
        match take late with Some _ as v -> v | None -> take early

    let remove key =
      match Page.Tbl.find_opt where key with
      | Some (node, `Early) ->
        Dll.unlink early node;
        Page.Tbl.remove where key
      | Some (node, `Late) ->
        Dll.unlink late node;
        Page.Tbl.remove where key
      | None -> ()

    let size () = early.Dll.count + late.Dll.count

    let iter f =
      Dll.iter early (fun node -> f node.Dll.key);
      Dll.iter late (fun node -> f node.Dll.key)
  end)

let registry =
  [
    ("lru", lru);
    ("clock", clock);
    ("fifo", fifo);
    ("mru-sticky", mru_sticky);
    ("two-q", two_q);
    ("segmented-lru", segmented_lru);
    ("eelru", eelru);
  ]

let of_name n =
  match List.assoc_opt n registry with
  | Some f -> f
  | None -> invalid_arg ("Replacement.of_name: unknown policy " ^ n)

let all_names = List.map fst registry
