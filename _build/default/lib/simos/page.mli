(** Identities of cacheable pages.

    Physical memory frames hold either file pages (identified by inode
    number and page index within the file) or anonymous process pages
    (identified by pid and virtual page number). *)

type key =
  | File of { ino : int; idx : int }
  | Anon of { pid : int; vpn : int }

val equal : key -> key -> bool
val hash : key -> int
val pp : Format.formatter -> key -> unit
val to_string : key -> string

val is_file : key -> bool
val is_anon : key -> bool

module Tbl : Hashtbl.S with type key = key
