(** Capacity-enforced page pool over a replacement policy.

    The pool owns the resident-set bookkeeping (capacity, dirty bits, hit
    and eviction counters) and delegates ordering decisions to a
    {!Replacement} policy instance.  The kernel charges I/O costs for the
    dirty pages an access pushes out. *)

type t

type evicted = { key : Page.key; dirty : bool }

val create : name:string -> capacity_pages:int -> policy:Replacement.factory -> t
val name : t -> string
val capacity : t -> int
val resident : t -> int
val contains : t -> Page.key -> bool

val access : t -> Page.key -> dirty:bool -> [ `Hit | `Filled of evicted list ]
(** Look up the page; on a miss, insert it, evicting as needed.  [dirty]
    marks the page dirty (writes).  The returned list holds the evicted
    pages (at most one per access in steady state). *)

val evict_one : t -> evicted option
(** Force one eviction (page-daemon style), if any page is resident. *)

val resize : t -> capacity_pages:int -> evicted list
(** Change the capacity; shrinking below the resident count evicts the
    overflow and returns it (for writeback charging). *)

val invalidate : t -> Page.key -> unit
(** Drop a page without writeback (file deleted, process exited). *)

val invalidate_if : t -> (Page.key -> bool) -> int
(** Drop all pages matching the predicate; returns how many were dropped. *)

val drop_all : t -> unit
(** Flush the pool (the experiments' "flush the file cache" step). *)

val is_dirty : t -> Page.key -> bool
val iter : t -> (Page.key -> unit) -> unit

(** {1 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val reset_counters : t -> unit
