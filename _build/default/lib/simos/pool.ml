type evicted = { key : Page.key; dirty : bool }

type t = {
  name : string;
  mutable capacity : int;
  policy : Replacement.t;
  dirty : bool Page.Tbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~name ~capacity_pages ~policy =
  if capacity_pages <= 0 then invalid_arg "Pool.create: capacity must be positive";
  {
    name;
    capacity = capacity_pages;
    policy = policy ~capacity:capacity_pages;
    dirty = Page.Tbl.create (min 65536 capacity_pages);
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let name t = t.name
let capacity t = t.capacity

let resident t =
  let (module P : Replacement.POLICY) = t.policy in
  P.size ()

let contains t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.mem key

let pop_victim t =
  let (module P : Replacement.POLICY) = t.policy in
  match P.victim () with
  | None -> None
  | Some key ->
    let dirty = Option.value (Page.Tbl.find_opt t.dirty key) ~default:false in
    Page.Tbl.remove t.dirty key;
    t.evictions <- t.evictions + 1;
    Some { key; dirty }

let access t key ~dirty =
  let (module P : Replacement.POLICY) = t.policy in
  if P.mem key then begin
    t.hits <- t.hits + 1;
    P.touch key;
    if dirty then Page.Tbl.replace t.dirty key true;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    let out = ref [] in
    while P.size () >= t.capacity do
      match pop_victim t with
      | Some victim -> out := victim :: !out
      | None -> failwith "Pool.access: policy lost pages"
    done;
    P.insert key;
    if dirty then Page.Tbl.replace t.dirty key true;
    `Filled (List.rev !out)
  end

let evict_one t = pop_victim t

let resize t ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Pool.resize: capacity must be positive";
  t.capacity <- capacity_pages;
  let out = ref [] in
  let (module P : Replacement.POLICY) = t.policy in
  while P.size () > t.capacity do
    match pop_victim t with
    | Some victim -> out := victim :: !out
    | None -> failwith "Pool.resize: policy lost pages"
  done;
  List.rev !out

let invalidate t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.remove key;
  Page.Tbl.remove t.dirty key

let invalidate_if t pred =
  let (module P : Replacement.POLICY) = t.policy in
  let doomed = ref [] in
  P.iter (fun key -> if pred key then doomed := key :: !doomed);
  List.iter (invalidate t) !doomed;
  List.length !doomed

let drop_all t = ignore (invalidate_if t (fun _ -> true))

let is_dirty t key = Option.value (Page.Tbl.find_opt t.dirty key) ~default:false

let iter t f =
  let (module P : Replacement.POLICY) = t.policy in
  P.iter f

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
