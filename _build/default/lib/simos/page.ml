type key =
  | File of { ino : int; idx : int }
  | Anon of { pid : int; vpn : int }

let equal (a : key) (b : key) = a = b

let hash = function
  | File { ino; idx } -> Hashtbl.hash (0, ino, idx)
  | Anon { pid; vpn } -> Hashtbl.hash (1, pid, vpn)

let pp ppf = function
  | File { ino; idx } -> Format.fprintf ppf "file(ino=%d,page=%d)" ino idx
  | Anon { pid; vpn } -> Format.fprintf ppf "anon(pid=%d,vpn=%d)" pid vpn

let to_string k = Format.asprintf "%a" pp k
let is_file = function File _ -> true | Anon _ -> false
let is_anon = function Anon _ -> true | File _ -> false

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal = equal
  let hash = hash
end)
