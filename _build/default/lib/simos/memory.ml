type layout =
  | Unified of Replacement.factory
  | Unified_balanced of {
      policy : Replacement.factory;
      file_floor_pages : int;
    }
  | Split of {
      file_pages : int;
      file_policy : Replacement.factory;
      anon_policy : Replacement.factory;
    }

type t = {
  file : Pool.t;
  anon : Pool.t;
  unified : bool;
  (* balanced mode: file capacity floats as usable - resident_anon *)
  balanced_usable : int option;
  mutable n_file : int;
  mutable n_anon : int;
}

let create ~usable_pages layout =
  if usable_pages <= 0 then invalid_arg "Memory.create: no usable pages";
  match layout with
  | Unified policy ->
    let pool = Pool.create ~name:"unified" ~capacity_pages:usable_pages ~policy in
    { file = pool; anon = pool; unified = true; balanced_usable = None;
      n_file = 0; n_anon = 0 }
  | Unified_balanced { policy; file_floor_pages } ->
    if file_floor_pages <= 0 || file_floor_pages >= usable_pages then
      invalid_arg "Memory.create: bad file-cache floor";
    let file = Pool.create ~name:"file" ~capacity_pages:usable_pages ~policy in
    let anon =
      Pool.create ~name:"anon" ~capacity_pages:(usable_pages - file_floor_pages)
        ~policy
    in
    { file; anon; unified = false; balanced_usable = Some usable_pages;
      n_file = 0; n_anon = 0 }
  | Split { file_pages; file_policy; anon_policy } ->
    if file_pages <= 0 || file_pages >= usable_pages then
      invalid_arg "Memory.create: bad file-cache size";
    let file = Pool.create ~name:"file" ~capacity_pages:file_pages ~policy:file_policy in
    let anon =
      Pool.create ~name:"anon" ~capacity_pages:(usable_pages - file_pages)
        ~policy:anon_policy
    in
    { file; anon; unified = false; balanced_usable = None; n_file = 0; n_anon = 0 }

let pool_for t key = if Page.is_file key then t.file else t.anon

let bump t key delta =
  if Page.is_file key then t.n_file <- t.n_file + delta
  else t.n_anon <- t.n_anon + delta

(* In the balanced layout the file cache holds whatever anonymous memory
   does not use; growing anon evicts file overflow. *)
let rebalance t =
  match t.balanced_usable with
  | None -> []
  | Some usable ->
    let target = max 1 (usable - t.n_anon) in
    if target = Pool.capacity t.file then []
    else begin
      let evicted = Pool.resize t.file ~capacity_pages:target in
      List.iter (fun (e : Pool.evicted) -> bump t e.key (-1)) evicted;
      evicted
    end

let access t key ~dirty =
  match Pool.access (pool_for t key) key ~dirty with
  | `Hit -> `Hit
  | `Filled evicted ->
    bump t key 1;
    List.iter (fun (e : Pool.evicted) -> bump t e.key (-1)) evicted;
    let rebalanced = if Page.is_anon key then rebalance t else [] in
    `Filled (evicted @ rebalanced)

let contains t key = Pool.contains (pool_for t key) key

let invalidate t key =
  let pool = pool_for t key in
  if Pool.contains pool key then begin
    Pool.invalidate pool key;
    bump t key (-1);
    (* freed anonymous frames flow back to the file cache silently *)
    if Page.is_anon key then ignore (rebalance t)
  end

let invalidate_if t pred =
  let dropped = ref 0 in
  let drop_matching pool kind_pred =
    dropped :=
      !dropped
      + Pool.invalidate_if pool (fun key ->
            if kind_pred key && pred key then begin
              bump t key (-1);
              true
            end
            else false)
  in
  if t.unified then drop_matching t.file (fun _ -> true)
  else begin
    drop_matching t.file Page.is_file;
    drop_matching t.anon Page.is_anon
  end;
  ignore (rebalance t);
  !dropped

let drop_file_cache t = ignore (invalidate_if t Page.is_file)

let file_pool t = t.file
let anon_pool t = t.anon
let unified t = t.unified
let file_capacity t = Pool.capacity t.file
let anon_capacity t = Pool.capacity t.anon
let resident_file t = t.n_file
let resident_anon t = t.n_anon
