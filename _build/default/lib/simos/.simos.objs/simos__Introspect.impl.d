lib/simos/introspect.ml: Array Fs Kernel Memory Page Pool
