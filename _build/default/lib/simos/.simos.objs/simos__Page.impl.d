lib/simos/page.ml: Format Hashtbl
