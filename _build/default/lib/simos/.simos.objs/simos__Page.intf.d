lib/simos/page.mli: Format Hashtbl
