lib/simos/introspect.mli: Kernel
