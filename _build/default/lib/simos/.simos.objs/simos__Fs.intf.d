lib/simos/fs.mli:
