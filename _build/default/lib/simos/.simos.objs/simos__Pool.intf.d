lib/simos/pool.mli: Page Replacement
