lib/simos/replacement.ml: List Page Queue
