lib/simos/disk.mli:
