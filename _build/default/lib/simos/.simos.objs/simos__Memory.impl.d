lib/simos/memory.ml: List Page Pool Replacement
