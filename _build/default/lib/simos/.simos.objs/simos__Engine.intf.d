lib/simos/engine.mli:
