lib/simos/fs.ml: Array Hashtbl List String
