lib/simos/disk.ml:
