lib/simos/kernel.ml: Array Disk Engine Fs Fun Gray_util Hashtbl List Memory Option Page Platform Pool Printf Resource Result String
