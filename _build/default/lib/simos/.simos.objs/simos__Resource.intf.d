lib/simos/resource.mli:
