lib/simos/resource.ml: Array
