lib/simos/pool.ml: List Option Page Replacement
