lib/simos/platform.mli: Disk Memory Replacement
