lib/simos/platform.ml: Disk List Memory Replacement
