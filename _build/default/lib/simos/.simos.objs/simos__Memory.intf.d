lib/simos/memory.mli: Page Pool Replacement
