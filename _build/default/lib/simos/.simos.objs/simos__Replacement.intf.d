lib/simos/replacement.mli: Page
