lib/simos/engine.ml: Effect Fun Gray_util Option Printexc Printf
