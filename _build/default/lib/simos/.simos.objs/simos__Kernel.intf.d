lib/simos/kernel.mli: Disk Engine Fs Memory Platform
