let with_file k ~path f =
  match Kernel.resolve_path k path with
  | Error e -> Error e
  | Ok (vol, rest) -> (
    let fs = Kernel.volume_fs k vol in
    match Fs.lookup fs rest with
    | Error e -> Error (Kernel.Fs_error e)
    | Ok ino -> Ok (f ~vol ~fs ~ino))

let cache_bitmap k ~path =
  with_file k ~path (fun ~vol ~fs ~ino ->
      let pages = Fs.pages_of_file fs ~ino in
      let gino = Kernel.global_ino k ~volume:vol ~ino in
      Array.init pages (fun idx ->
          Memory.contains (Kernel.memory k) (Page.File { ino = gino; idx })))

let file_cached_pages k ~path =
  match cache_bitmap k ~path with
  | Error _ -> 0
  | Ok bitmap -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bitmap

let cached_fraction k ~path =
  match cache_bitmap k ~path with
  | Error _ -> 0.0
  | Ok bitmap when Array.length bitmap = 0 -> 0.0
  | Ok bitmap ->
    float_of_int (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bitmap)
    /. float_of_int (Array.length bitmap)

let file_layout k ~path =
  with_file k ~path (fun ~vol:_ ~fs ~ino -> Fs.layout_of_file fs ~ino)

let file_fragmentation k ~path =
  match with_file k ~path (fun ~vol:_ ~fs ~ino -> Fs.fragmentation_of_file fs ~ino) with
  | Error _ -> 0.0
  | Ok f -> f

let count_anon k ~pred =
  let n = ref 0 in
  (* In the unified layout the anon pool is the single shared pool, so one
     pass covers everything. *)
  Pool.iter
    (Memory.anon_pool (Kernel.memory k))
    (fun key ->
      match key with
      | Page.Anon { pid; vpn } -> if pred ~pid ~vpn then incr n
      | Page.File _ -> ());
  !n

let resident_anon_pages k ~pid =
  count_anon k ~pred:(fun ~pid:p ~vpn:_ -> p = pid)

let swapped_anon_pages k ~pid = Kernel.swapped_pages k ~pid

let available_anon_pages k ~exclude_pid =
  let mem = Kernel.memory k in
  let others = count_anon k ~pred:(fun ~pid ~vpn:_ -> pid <> exclude_pid) in
  Memory.anon_capacity mem - others

let resident_file_pages k = Memory.resident_file (Kernel.memory k)
let file_cache_capacity_pages k = Memory.file_capacity (Kernel.memory k)
