(** White-box ground truth, for evaluation only.

    The paper instrumented the Linux kernel to "return a bit-map of
    presence bits per page of the file" in order to {e evaluate} FCCD
    (Figure 1, footnote 2) — never to implement it.  This module plays the
    same role for the simulator: tests and benches compare ICL inferences
    against these answers; ICLs themselves must never call it. *)

val cache_bitmap : Kernel.t -> path:string -> (bool array, Kernel.error) result
(** Per-page presence of the file's data in the file cache. *)

val cached_fraction : Kernel.t -> path:string -> float
(** Fraction of the file's pages resident; [0.] on errors. *)

val file_cached_pages : Kernel.t -> path:string -> int

val file_layout : Kernel.t -> path:string -> (int array, Kernel.error) result
(** Physical block addresses of the file's pages, in page order. *)

val file_fragmentation : Kernel.t -> path:string -> float

val resident_anon_pages : Kernel.t -> pid:int -> int
(** Frames currently holding anonymous pages of this process. *)

val swapped_anon_pages : Kernel.t -> pid:int -> int

val available_anon_pages : Kernel.t -> exclude_pid:int -> int
(** Ground truth for MAC: how many frames a process could claim without
    paging out other processes' anonymous memory (file pages count as
    reclaimable in a unified layout). *)

val resident_file_pages : Kernel.t -> int
val file_cache_capacity_pages : Kernel.t -> int
