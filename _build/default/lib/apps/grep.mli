(** grep over a file set (Figure 3, left group).

    Three variants:
    - [Unmodified]: files processed in argument order;
    - [Gray]: the 10-to-30-line modification — reorder the argument list
      with the FCCD library before processing;
    - [Via_gbp]: unmodified grep fed [`gbp -mem *`] — same ordering, plus
      the fork/exec of gbp and its redundant open/close/probe of every
      file.

    Each file is read fully and scanned at a fixed per-byte CPU cost; the
    number of "matches" comes from the workload oracle since contents are
    not materialised. *)

type variant = Unmodified | Gray | Via_gbp

val scan_ns_per_byte : float
(** grep's text-scan CPU cost (≈ 280 MB/s, PIII-class). *)

val run :
  Simos.Kernel.env ->
  Graybox_core.Fccd.config ->
  variant ->
  paths:string list ->
  matches:(string -> int) ->
  int * int
(** [(total_matches, wall_ns)]. *)
