(** The single-file scan microbenchmark (Figure 2 / Figure 4).

    The traditional scan reads the file front to back; the gray-box scan
    first asks FCCD which access units are cached and reads those before
    the rest, turning a cache-thrashing repeat scan into mostly memory
    copies.  Repeated gray-box runs are the paper's positive-feedback
    example: accessing the file in access-unit chunks keeps access-unit
    chunks cached. *)

val linear : Simos.Kernel.env -> path:string -> unit_bytes:int -> int
(** Sequential scan; returns observed wall time (ns). *)

val gray : Simos.Kernel.env -> Graybox_core.Fccd.config -> path:string -> int
(** Probe-then-reorder scan; returns observed wall time including the
    probe phase. *)
