(** Early-exit multi-file search (Figure 4, "search" benchmark).

    Searches files one by one and stops at the first file containing a
    match.  The unmodified search is at the mercy of the argument order;
    the gray-box search asks FCCD for the probable-cached files first, so
    a match sitting in the cache is found almost immediately even when the
    user listed that file last. *)

val run :
  Simos.Kernel.env ->
  ?gray:Graybox_core.Fccd.config ->
  paths:string list ->
  match_in:(string -> bool) ->
  unit ->
  string option * int
(** [(file_with_match, wall_ns)].  [gray] enables FCCD preordering. *)
