open Simos
open Graybox_core

let linear env ~path ~unit_bytes =
  let t0 = Kernel.gettime env in
  Workload.read_file_in_units env path ~unit_bytes;
  Kernel.gettime env - t0

let gray env config ~path =
  let t0 = Kernel.gettime env in
  let fd = Workload.ok_exn (Kernel.open_file env path) in
  let plan = Fccd.probe_fd env config ~path fd in
  Fccd.read_plan env fd plan ~f:(fun ~off:_ ~len:_ -> ());
  Kernel.close env fd;
  Kernel.gettime env - t0
