lib/apps/search.mli: Graybox_core Simos
