lib/apps/grep.mli: Graybox_core Simos
