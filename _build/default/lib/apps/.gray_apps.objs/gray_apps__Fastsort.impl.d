lib/apps/fastsort.ml: Engine Fccd Fs Gbp Graybox_core Kernel List Mac Printf Simos Workload
