lib/apps/grep.ml: Fccd Gbp Graybox_core Kernel List Simos Workload
