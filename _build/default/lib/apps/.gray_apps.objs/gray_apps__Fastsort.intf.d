lib/apps/fastsort.mli: Fccd Graybox_core Mac Simos
