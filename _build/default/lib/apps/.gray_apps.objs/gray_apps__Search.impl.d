lib/apps/search.ml: Fccd Graybox_core Grep Kernel List Simos Workload
