lib/apps/scan.ml: Fccd Graybox_core Kernel Simos Workload
