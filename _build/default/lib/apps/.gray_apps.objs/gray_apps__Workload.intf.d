lib/apps/workload.mli: Gray_util Simos
