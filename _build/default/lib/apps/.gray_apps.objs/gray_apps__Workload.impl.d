lib/apps/workload.ml: Array Fs Gray_util Kernel List Printf Simos
