lib/apps/scan.mli: Graybox_core Simos
