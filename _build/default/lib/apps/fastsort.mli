(** fastsort: a two-pass external sort of 100-byte records (after Agarwal's
    super-scalar sort; Sections 4.1.3 and 4.3.3).

    Phase 1 creates sorted runs: read as many records as fit in the pass
    buffer (copying them into the heap), sort the keys, write the run to
    the run directory.  Phase 2 (the merge) is not modelled — the paper
    excludes it from both experiments.

    Two gray-box hooks:
    - {!read_phase_only} is Figure 3's experiment: how fast can the read
      phase consume a 1 GB input, with the reads in linear order, FCCD
      plan order, or via [gbp -mem -out] on a pipe;
    - {!run_phase1} is Figure 7's experiment: full phase-1 passes where the
      buffer size is a fixed command-line value ([Static_pass]) or chosen
      by MAC's [gb_alloc] ([Mac_adaptive]), which also waits for memory
      when the minimum is unavailable. *)

open Graybox_core

type config = {
  record_bytes : int;  (** 100 *)
  compare_ns : float;  (** key-comparison cost for the n·log n sort model *)
  input : string;
  run_dir : string;  (** runs are written here (ideally another disk) *)
}

val default_config : input:string -> run_dir:string -> config

type read_order =
  | Linear
  | Gray_fccd of Fccd.config  (** modified sort: probe, then re-ordered reads *)
  | Via_gbp_out of Fccd.config  (** unmodified sort reading from [gbp -out] *)

val read_phase_only :
  Simos.Kernel.env -> config -> order:read_order -> pass_bytes:int -> int
(** Consume the whole input (copying records into a recycled pass buffer),
    return wall ns.  Record alignment is enforced on FCCD extents. *)

type pass_policy =
  | Static_pass of int  (** bytes per pass, fixed on the command line *)
  | Mac_adaptive of { mac : Mac.config; min_bytes : int; retry_ns : int }

type phase_times = {
  pt_read : int;
  pt_sort : int;
  pt_write : int;
  pt_overhead : int;  (** MAC probing + waiting for memory *)
  pt_passes : int;
  pt_pass_bytes : int list;  (** actual pass sizes, in order *)
}

val total_ns : phase_times -> int

val run_phase1 :
  Simos.Kernel.env -> config -> policy:pass_policy -> total_bytes:int -> phase_times
(** Sort [total_bytes] of the input into runs.  Run files are named
    uniquely per process so competing sorts do not collide. *)
