open Simos
open Graybox_core

type variant = Unmodified | Gray | Via_gbp

let scan_ns_per_byte = 3.5
let fork_exec_ns = 3_000_000 (* fork + exec of the gbp helper *)

let grep_one env path ~matches =
  let fd = Workload.ok_exn (Kernel.open_file env path) in
  let size = Kernel.file_size env fd in
  let chunk = 4 * 1024 * 1024 in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    ignore (Workload.ok_exn (Kernel.read env fd ~off:!off ~len));
    Kernel.compute_bytes env ~bytes:len ~ns_per_byte:scan_ns_per_byte;
    off := !off + len
  done;
  Kernel.close env fd;
  matches path

let run env config variant ~paths ~matches =
  let t0 = Kernel.gettime env in
  let ordered =
    match variant with
    | Unmodified -> paths
    | Gray ->
      (* the "10 lines into roughly 30" change: reorder argv via FCCD *)
      List.map
        (fun r -> r.Fccd.fr_path)
        (Workload.ok_exn (Fccd.order_files env config ~paths))
    | Via_gbp ->
      (* `grep foo \`gbp -mem *\`` pays an extra process launch; gbp's
         probes open and close every file a first time *)
      Kernel.compute env ~ns:fork_exec_ns;
      Workload.ok_exn (Gbp.best_order env config Gbp.Mem ~paths)
  in
  let total = List.fold_left (fun acc p -> acc + grep_one env p ~matches) 0 ordered in
  (total, Kernel.gettime env - t0)
