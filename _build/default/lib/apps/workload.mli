(** Workload generation: the file populations and aging churn used by the
    paper's experiments, plus shared chunked-I/O helpers.

    File {e contents} are never materialised — the simulator moves bytes,
    and "which file contains the search pattern" is decided by the
    workload (an oracle), since only the position of matches affects the
    applications' I/O behaviour. *)

val ok_exn : ('a, Simos.Kernel.error) result -> 'a
(** Unwrap a syscall result, failing loudly (workloads are test fixtures;
    their syscalls are not supposed to fail). *)

val write_file : Simos.Kernel.env -> string -> int -> unit
(** Create a file of the given size with chunked sequential writes. *)

val read_file : Simos.Kernel.env -> string -> unit
(** Sequential chunked read of the whole file. *)

val read_file_in_units : Simos.Kernel.env -> string -> unit_bytes:int -> unit

val make_files :
  Simos.Kernel.env ->
  dir:string ->
  prefix:string ->
  count:int ->
  size:int ->
  string list
(** Create [dir] (if missing) and [count] files of [size] bytes, named
    [prefix ^ index]; returns the paths in creation order. *)

val age_directory :
  Simos.Kernel.env ->
  Gray_util.Rng.t ->
  dir:string ->
  deletes:int ->
  creates:int ->
  size:int ->
  unit
(** One aging epoch (Section 4.2.3): delete [deletes] random files from
    the directory, then create [creates] new ones of [size] bytes. *)

val paths_in : Simos.Kernel.env -> dir:string -> string list
(** All entries of [dir], sorted by name (a shell glob). *)
