open Simos
open Graybox_core

let search_one env path =
  let fd = Workload.ok_exn (Kernel.open_file env path) in
  let size = Kernel.file_size env fd in
  let chunk = 4 * 1024 * 1024 in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    ignore (Workload.ok_exn (Kernel.read env fd ~off:!off ~len));
    Kernel.compute_bytes env ~bytes:len ~ns_per_byte:Grep.scan_ns_per_byte;
    off := !off + len
  done;
  Kernel.close env fd

let run env ?gray ~paths ~match_in () =
  let t0 = Kernel.gettime env in
  let ordered =
    match gray with
    | None -> paths
    | Some config ->
      List.map
        (fun r -> r.Fccd.fr_path)
        (Workload.ok_exn (Fccd.order_files env config ~paths))
  in
  let rec go = function
    | [] -> None
    | path :: rest ->
      search_one env path;
      if match_in path then Some path else go rest
  in
  let found = go ordered in
  (found, Kernel.gettime env - t0)
