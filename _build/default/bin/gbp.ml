(* gbp — the gray-box probe utility (Section 4.1.2), demonstrated on a
   simulated volume.

   Builds a file population on the simulated OS, optionally warms some of
   the files into the file cache, then prints the order in which an
   unmodified application should access them:

     gbp --mode mem      # FCCD: cache-resident files first
     gbp --mode file     # FLDC: i-number (layout) order
     gbp --mode compose  # cached first, each group i-number sorted

   `gbp --out` additionally streams one file in best-probe order, showing
   the (offset, length) extents an application on the other end of the
   pipe would receive. *)

open Cmdliner
open Simos
open Graybox_core

let mib = 1024 * 1024

let run mode files size_mib warm out noise seed =
  let platform = Platform.with_noise Platform.linux_2_2 ~sigma:noise in
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed () in
  let mode =
    match Gbp.mode_of_string mode with
    | Some m -> m
    | None -> failwith ("unknown mode: " ^ mode)
  in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"file" ~count:files
          ~size:(size_mib * mib)
      in
      Kernel.flush_file_cache k;
      let rng = Gray_util.Rng.create ~seed:(seed + 1) in
      let warmed =
        let arr = Array.of_list paths in
        Gray_util.Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 (min warm files))
      in
      List.iter (fun p -> Gray_apps.Workload.read_file env p) warmed;
      Printf.printf "# volume: %d files x %d MB on %s; warmed: %s\n" files size_mib
        platform.Platform.name
        (String.concat ", " (List.map Fldc.basename (List.sort compare warmed)));
      let config =
        {
          (Fccd.default_config ~seed ()) with
          Fccd.access_unit = 4 * mib;
          prediction_unit = 1 * mib;
        }
      in
      (match Gbp.best_order env config mode ~paths with
      | Error e -> Printf.eprintf "gbp: %s\n" (Kernel.error_to_string e)
      | Ok ordered ->
        Printf.printf "# gbp --mode %s ordering:\n" (Gbp.mode_to_string mode);
        List.iter print_endline ordered);
      if out then begin
        match paths with
        | [] -> ()
        | first :: _ ->
          Printf.printf "# gbp --out %s extents (best probe order):\n" first;
          ignore
            (Gbp.out env config ~path:first ~consume:(fun ~off ~len ->
                 Printf.printf "  offset=%-10d length=%d\n" off len))
      end)
    ;
  Kernel.run k

let mode_arg =
  Arg.(value & opt string "mem" & info [ "mode"; "m" ] ~doc:"Ordering mode: mem, file or compose.")

let files_arg = Arg.(value & opt int 12 & info [ "files"; "n" ] ~doc:"Number of files.")
let size_arg = Arg.(value & opt int 4 & info [ "size" ] ~doc:"File size in MB.")
let warm_arg = Arg.(value & opt int 4 & info [ "warm" ] ~doc:"How many files to pre-warm.")
let out_arg = Arg.(value & flag & info [ "out" ] ~doc:"Also stream the first file (-out mode).")
let noise_arg = Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Timing noise sigma.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let cmd =
  Cmd.v
    (Cmd.info "gbp" ~doc:"Gray-box probe utility on a simulated volume")
    Term.(const run $ mode_arg $ files_arg $ size_arg $ warm_arg $ out_arg $ noise_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
