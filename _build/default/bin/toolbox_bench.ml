(* toolbox_bench — run the gray-toolbox configuration microbenchmarks on a
   simulated platform and print (or save) the parameter repository in its
   persistent text format (Section 5: "a common format kept in persistent
   storage; each microbenchmark then only needs to be run once"). *)

open Cmdliner
open Simos

let run platform_name noise seed output =
  let platform = Platform.with_noise (Platform.by_name platform_name) ~sigma:noise in
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:1 ~seed () in
  let repo = ref None in
  Kernel.spawn k (fun env ->
      repo := Some (Graybox_core.Toolbox.run_all env ~scratch_dir:"/d0"));
  Kernel.run k;
  match !repo with
  | None -> prerr_endline "toolbox_bench: benchmark process failed"
  | Some repo -> (
    Printf.printf "# gray-toolbox microbenchmark results for %s (noise sigma %.2f)\n"
      platform.Platform.name noise;
    print_string (Gray_util.Param_repo.to_string repo);
    match output with
    | None -> ()
    | Some path ->
      Gray_util.Param_repo.save repo ~path;
      Printf.printf "# saved to %s\n" path)

let platform_arg =
  Arg.(
    value
    & opt string "linux-2.2"
    & info [ "platform"; "p" ] ~doc:"Platform preset: linux-2.2, netbsd-1.5 or solaris-7.")

let noise_arg = Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Timing noise sigma.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Save the repository to a file.")

let cmd =
  Cmd.v
    (Cmd.info "toolbox_bench" ~doc:"Gray-toolbox microbenchmarks on the simulated OS")
    Term.(const run $ platform_arg $ noise_arg $ seed_arg $ output_arg)

let () = exit (Cmd.eval cmd)
