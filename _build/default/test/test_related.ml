(* Table 1 systems: TCP congestion control, implicit coscheduling,
   MS Manners. *)

open Gray_related
open Gray_util

(* ---- TCP ---- *)

let test_tcp_wired_inference_precise () =
  let rng = Rng.create ~seed:1 in
  let r =
    Tcp.simulate rng ~flows:4 ~capacity:100 ~queue:50 ~rounds:2000
      ~loss:Tcp.Congestion_only
  in
  Alcotest.(check bool)
    (Printf.sprintf "precision %.2f" r.Tcp.r_inference_precision)
    true
    (r.Tcp.r_inference_precision > 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f" r.Tcp.r_utilization)
    true
    (r.Tcp.r_utilization > 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "fairness %.2f" r.Tcp.r_fairness)
    true (r.Tcp.r_fairness > 0.9)

let test_tcp_wireless_breaks_inference () =
  (* the paper's warning: random wireless loss is misread as congestion *)
  let rng = Rng.create ~seed:2 in
  let wired =
    Tcp.simulate rng ~flows:4 ~capacity:100 ~queue:50 ~rounds:2000
      ~loss:Tcp.Congestion_only
  in
  let rng = Rng.create ~seed:2 in
  let wireless =
    Tcp.simulate rng ~flows:4 ~capacity:100 ~queue:50 ~rounds:2000
      ~loss:(Tcp.Wireless 0.02)
  in
  Alcotest.(check bool)
    (Printf.sprintf "precision drops: %.2f -> %.2f" wired.Tcp.r_inference_precision
       wireless.Tcp.r_inference_precision)
    true
    (wireless.Tcp.r_inference_precision < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "throughput drops: %.2f -> %.2f" wired.Tcp.r_utilization
       wireless.Tcp.r_utilization)
    true
    (wireless.Tcp.r_utilization < 0.8 *. wired.Tcp.r_utilization)

let test_tcp_single_flow_fills_pipe () =
  let rng = Rng.create ~seed:3 in
  let r =
    Tcp.simulate rng ~flows:1 ~capacity:50 ~queue:25 ~rounds:1000
      ~loss:Tcp.Congestion_only
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f" r.Tcp.r_utilization)
    true (r.Tcp.r_utilization > 0.8)

let test_tcp_validates_args () =
  let rng = Rng.create ~seed:4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Tcp.simulate rng ~flows:0 ~capacity:10 ~queue:5 ~rounds:10
            ~loss:Tcp.Congestion_only);
       false
     with Invalid_argument _ -> true)

(* ---- implicit coscheduling ---- *)

let cosched_run ~policy ~seed =
  let rng = Rng.create ~seed in
  Cosched.simulate rng ~nodes:4 ~background:1 ~granularity_us:100 ~barriers:300
    ~quantum_us:10_000 ~ctx_switch_us:50 ~policy

let test_cosched_blocking_is_terrible () =
  let block = cosched_run ~policy:Cosched.Block_immediately ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "blocking slowdown %.1f" block.Cosched.c_slowdown)
    true
    (block.Cosched.c_slowdown > 8.0)

let test_cosched_two_phase_close_to_spin () =
  let two_phase = cosched_run ~policy:(Cosched.Two_phase 4_000) ~seed:5 in
  let block = cosched_run ~policy:Cosched.Block_immediately ~seed:5 in
  let spin = cosched_run ~policy:Cosched.Spin_forever ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "two-phase %.1f much better than blocking %.1f"
       two_phase.Cosched.c_slowdown block.Cosched.c_slowdown)
    true
    (two_phase.Cosched.c_slowdown < 0.3 *. block.Cosched.c_slowdown);
  Alcotest.(check bool)
    (Printf.sprintf "two-phase %.1f close to spin-forever %.1f"
       two_phase.Cosched.c_slowdown spin.Cosched.c_slowdown)
    true
    (two_phase.Cosched.c_slowdown < 2.0 *. spin.Cosched.c_slowdown);
  Alcotest.(check bool)
    (Printf.sprintf "background still runs (%.2f)" two_phase.Cosched.c_background_share)
    true
    (two_phase.Cosched.c_background_share > 0.1)

let test_cosched_spin_forever_wastes_cpu () =
  let spin = cosched_run ~policy:Cosched.Spin_forever ~seed:5 in
  let two_phase = cosched_run ~policy:(Cosched.Two_phase 4_000) ~seed:5 in
  let block = cosched_run ~policy:Cosched.Block_immediately ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "spin-forever %.1f still beats blocking %.1f"
       spin.Cosched.c_slowdown block.Cosched.c_slowdown)
    true
    (spin.Cosched.c_slowdown < block.Cosched.c_slowdown);
  Alcotest.(check bool)
    (Printf.sprintf "spin waste %.0fus >> two-phase waste %.0fus"
       (float_of_int spin.Cosched.c_spin_wasted_us)
       (float_of_int two_phase.Cosched.c_spin_wasted_us))
    true
    (spin.Cosched.c_spin_wasted_us > 2 * two_phase.Cosched.c_spin_wasted_us)

(* ---- MS Manners ---- *)

let manners_run ~naive ~seed =
  let rng = Rng.create ~seed in
  Manners.simulate rng Manners.default_config ~busy_us:500_000 ~idle_us:500_000
    ~phases:40 ~naive

let test_manners_politeness () =
  let naive = manners_run ~naive:true ~seed:6 in
  let polite = manners_run ~naive:false ~seed:6 in
  Alcotest.(check bool)
    (Printf.sprintf "interference falls %.2f -> %.2f"
       naive.Manners.m_foreground_interference polite.Manners.m_foreground_interference)
    true
    (polite.Manners.m_foreground_interference
    < 0.4 *. naive.Manners.m_foreground_interference);
  Alcotest.(check bool)
    (Printf.sprintf "idle still used (%.2f)" polite.Manners.m_idle_utilization)
    true
    (polite.Manners.m_idle_utilization > 0.4);
  Alcotest.(check bool)
    (Printf.sprintf "detection accuracy %.2f" polite.Manners.m_detection_accuracy)
    true
    (polite.Manners.m_detection_accuracy > 0.7)

let test_manners_naive_hogs () =
  let naive = manners_run ~naive:true ~seed:7 in
  Alcotest.(check bool)
    (Printf.sprintf "naive interference %.2f" naive.Manners.m_foreground_interference)
    true
    (naive.Manners.m_foreground_interference > 0.9)

let test_manners_all_idle () =
  let rng = Rng.create ~seed:8 in
  let r =
    Manners.simulate rng Manners.default_config ~busy_us:1_000 ~idle_us:2_000_000
      ~phases:10 ~naive:false
  in
  Alcotest.(check bool)
    (Printf.sprintf "idle machine fully used (%.2f)" r.Manners.m_idle_utilization)
    true
    (r.Manners.m_idle_utilization > 0.9)

let suite =
  [
    Alcotest.test_case "tcp: wired inference precise" `Quick
      test_tcp_wired_inference_precise;
    Alcotest.test_case "tcp: wireless breaks inference" `Quick
      test_tcp_wireless_breaks_inference;
    Alcotest.test_case "tcp: single flow fills pipe" `Quick test_tcp_single_flow_fills_pipe;
    Alcotest.test_case "tcp: validates args" `Quick test_tcp_validates_args;
    Alcotest.test_case "cosched: blocking is terrible" `Quick
      test_cosched_blocking_is_terrible;
    Alcotest.test_case "cosched: two-phase works" `Quick
      test_cosched_two_phase_close_to_spin;
    Alcotest.test_case "cosched: spin-forever wastes cpu" `Quick
      test_cosched_spin_forever_wastes_cpu;
    Alcotest.test_case "manners: politeness" `Quick test_manners_politeness;
    Alcotest.test_case "manners: naive hogs" `Quick test_manners_naive_hogs;
    Alcotest.test_case "manners: all idle" `Quick test_manners_all_idle;
  ]
