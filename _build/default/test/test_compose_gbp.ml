(* Compose (FCCD + FLDC) and the gbp utility logic. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let run_proc body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:99 () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn

let small_config seed =
  let c = Fccd.default_config ~seed () in
  { c with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

let test_compose_cached_first_then_inumber () =
  let _, d =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:8
            ~size:(4 * mib)
        in
        Kernel.flush_file_cache k;
        (* warm two files, deliberately out of creation order *)
        Gray_apps.Workload.read_file env (List.nth paths 5);
        Gray_apps.Workload.read_file env (List.nth paths 2);
        ok (Compose.order_files env (small_config 1) paths))
  in
  Alcotest.(check (list string)) "cached group members"
    [ "/d0/set/f0002"; "/d0/set/f0005" ]
    (List.sort compare d.Compose.d_in_cache);
  (* final order: the two cached files (by i-number), then the rest by
     i-number *)
  Alcotest.(check (list string)) "full order"
    [
      "/d0/set/f0002"; "/d0/set/f0005"; "/d0/set/f0000"; "/d0/set/f0001";
      "/d0/set/f0003"; "/d0/set/f0004"; "/d0/set/f0006"; "/d0/set/f0007";
    ]
    d.Compose.d_order;
  Alcotest.(check bool) "separated" true (d.Compose.d_separation > 4.0)

let test_compose_all_on_disk_degrades_to_inumber () =
  let _, d =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:6
            ~size:(4 * mib)
        in
        Kernel.flush_file_cache k;
        ok (Compose.order_files env (small_config 2) paths))
  in
  Alcotest.(check int) "nothing predicted cached" 0 (List.length d.Compose.d_in_cache);
  Alcotest.(check (list string)) "pure i-number order"
    [
      "/d0/set/f0000"; "/d0/set/f0001"; "/d0/set/f0002"; "/d0/set/f0003";
      "/d0/set/f0004"; "/d0/set/f0005";
    ]
    d.Compose.d_order

let test_compose_empty () =
  let _, d = run_proc (fun env -> ok (Compose.order_files env (small_config 3) [])) in
  Alcotest.(check int) "empty" 0 (List.length d.Compose.d_order)

let test_gbp_modes () =
  let _, (mem_order, file_order, compose_order) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:4
            ~size:(2 * mib)
        in
        Kernel.flush_file_cache k;
        Gray_apps.Workload.read_file env (List.nth paths 3);
        let config = small_config 4 in
        let mem = ok (Gbp.best_order env config Gbp.Mem ~paths) in
        let file = ok (Gbp.best_order env config Gbp.File ~paths) in
        let compose = ok (Gbp.best_order env config Gbp.Compose ~paths) in
        (mem, file, compose))
  in
  Alcotest.(check string) "mem puts cached first" "/d0/set/f0003" (List.hd mem_order);
  Alcotest.(check (list string)) "file mode is i-number order"
    [ "/d0/set/f0000"; "/d0/set/f0001"; "/d0/set/f0002"; "/d0/set/f0003" ]
    file_order;
  Alcotest.(check string) "compose puts cached first" "/d0/set/f0003"
    (List.hd compose_order)

let test_gbp_out_delivers_everything () =
  let _, (delivered, extents_seen) =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/stream" ((9 * mib) + 321);
        let total = ref 0 and count = ref 0 in
        let n =
          ok
            (Gbp.out env (small_config 5) ~path:"/d0/stream"
               ~consume:(fun ~off:_ ~len ->
                 total := !total + len;
                 incr count))
        in
        Alcotest.(check int) "return matches consumed" !total n;
        (n, !count))
  in
  Alcotest.(check int) "all bytes" ((9 * mib) + 321) delivered;
  Alcotest.(check bool) "chunked" true (extents_seen >= 3)

let test_gbp_mode_parsing () =
  Alcotest.(check bool) "mem" true (Gbp.mode_of_string "mem" = Some Gbp.Mem);
  Alcotest.(check bool) "-file" true (Gbp.mode_of_string "-file" = Some Gbp.File);
  Alcotest.(check bool) "compose" true (Gbp.mode_of_string "compose" = Some Gbp.Compose);
  Alcotest.(check bool) "junk" true (Gbp.mode_of_string "junk" = None);
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Gbp.mode_of_string (Gbp.mode_to_string m) = Some m))
    [ Gbp.Mem; Gbp.File; Gbp.Compose ]

let suite =
  [
    Alcotest.test_case "compose: cached first, then i-number" `Quick
      test_compose_cached_first_then_inumber;
    Alcotest.test_case "compose: all-on-disk degrades" `Quick
      test_compose_all_on_disk_degrades_to_inumber;
    Alcotest.test_case "compose: empty" `Quick test_compose_empty;
    Alcotest.test_case "gbp modes" `Quick test_gbp_modes;
    Alcotest.test_case "gbp -out delivers everything" `Quick
      test_gbp_out_delivers_everything;
    Alcotest.test_case "gbp mode parsing" `Quick test_gbp_mode_parsing;
  ]
