(* Trace recording, persistence, and offline replay. *)

open Graybox_core

let ev_read path off len = Trace.Read { path; off; len }
let ev_write path off len = Trace.Write { path; off; len }

let test_roundtrip () =
  let t = Trace.create () in
  Trace.record t (ev_read "/d0/a" 0 8192);
  Trace.record t (ev_write "/d0/b" 4096 100);
  Trace.record t (Trace.Unlink { path = "/d0/a" });
  let t2 = Trace.of_string (Trace.to_string t) in
  Alcotest.(check int) "length" 3 (Trace.length t2);
  Alcotest.(check bool) "events equal" true (Trace.events t = Trace.events t2)

let test_rejects_bad_paths () =
  let t = Trace.create () in
  Alcotest.(check bool) "tab rejected" true
    (try
       Trace.record t (ev_read "a\tb" 0 1);
       false
     with Invalid_argument _ -> true)

let test_parse_errors () =
  Alcotest.(check bool) "bad line" true
    (try
       ignore (Trace.of_string "X\tfoo\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "bad number" true
    (try
       ignore (Trace.of_string "R\tfoo\tx\t1\n");
       false
     with Failure _ -> true)

let test_summarize () =
  let t = Trace.create () in
  Trace.record t (ev_read "/a" 0 100);
  Trace.record t (ev_read "/a" 100 100);
  Trace.record t (ev_write "/b" 0 50);
  Trace.record t (Trace.Unlink { path = "/c" });
  let s = Trace.summarize t in
  Alcotest.(check int) "events" 4 s.Trace.s_events;
  Alcotest.(check int) "reads" 2 s.Trace.s_reads;
  Alcotest.(check int) "writes" 1 s.Trace.s_writes;
  Alcotest.(check int) "unlinks" 1 s.Trace.s_unlinks;
  Alcotest.(check int) "bytes" 250 s.Trace.s_bytes;
  Alcotest.(check int) "files" 3 s.Trace.s_files

let test_replay_hit_rate () =
  let t = Trace.create () in
  (* touch one page twice: second access hits in any sane policy *)
  Trace.record t (ev_read "/a" 0 1);
  Trace.record t (ev_read "/a" 0 1);
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:4 in
  Alcotest.(check int) "hits" 1 r.Trace.rp_hits;
  Alcotest.(check int) "misses" 1 r.Trace.rp_misses;
  Alcotest.(check (float 0.001)) "rate" 0.5 r.Trace.rp_hit_rate

let test_replay_residency_and_unlink () =
  let t = Trace.create () in
  Trace.record t (ev_read "/a" 0 (4 * 4096));
  Trace.record t (ev_read "/b" 0 (4 * 4096));
  Trace.record t (Trace.Unlink { path = "/b" });
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:64 in
  Alcotest.(check (list (pair string (float 0.001)))) "only /a remains"
    [ ("/a", 1.0) ] r.Trace.rp_resident

let test_replay_capacity_pressure () =
  let t = Trace.create () in
  (* loop over 8 pages with capacity 4: LRU gets zero hits on re-reads *)
  for _ = 1 to 3 do
    for p = 0 to 7 do
      Trace.record t (ev_read "/loop" (p * 4096) 1)
    done
  done;
  let r = Trace.replay t ~policy:Simos.Replacement.lru ~capacity_pages:4 in
  Alcotest.(check int) "no hits under looping lru" 0 r.Trace.rp_hits

let test_compare_policies () =
  let t = Trace.create () in
  for _ = 1 to 4 do
    for p = 0 to 7 do
      Trace.record t (ev_read "/loop" (p * 4096) 1)
    done
  done;
  let ranking = Trace.compare_policies t ~capacity_pages:6 in
  Alcotest.(check int) "all policies ranked"
    (List.length Simos.Replacement.all_names)
    (List.length ranking);
  (* the looping workload is where eelru/mru-family beat lru *)
  let rate name = List.assoc name ranking in
  Alcotest.(check (float 0.001)) "lru thrashes" 0.0 (rate "lru");
  Alcotest.(check bool)
    (Printf.sprintf "eelru %.2f beats lru" (rate "eelru"))
    true
    (rate "eelru" > 0.2);
  Alcotest.(check bool) "sorted descending" true
    (let rates = List.map snd ranking in
     List.sort (fun a b -> compare b a) rates = rates)

let test_interpose_records_trace () =
  let engine = Simos.Engine.create () in
  let platform =
    Simos.Platform.with_noise
      { Simos.Platform.linux_2_2 with Simos.Platform.memory_mib = 96;
        kernel_reserved_mib = 32 }
      ~sigma:0.0
  in
  let k = Simos.Kernel.boot ~engine ~platform ~data_disks:1 ~seed:505 () in
  let trace = Trace.create () in
  Simos.Kernel.spawn k (fun env ->
      let agent =
        Interpose.create ~trace ~assumed_policy:Simos.Replacement.clock
          ~assumed_capacity_pages:1024 ()
      in
      Gray_apps.Workload.write_file env "/d0/f" 8192;
      let fd = Gray_apps.Workload.ok_exn (Simos.Kernel.open_file env "/d0/f") in
      ignore
        (Gray_apps.Workload.ok_exn
           (Interpose.read agent env fd ~path:"/d0/f" ~off:0 ~len:8192));
      Simos.Kernel.close env fd;
      Interpose.note_unlink agent ~path:"/d0/f");
  Simos.Kernel.run k;
  Alcotest.(check (list bool)) "read then unlink recorded" [ true; true ]
    (match Trace.events trace with
    | [ Trace.Read { path = "/d0/f"; off = 0; len = 8192 }; Trace.Unlink { path = "/d0/f" } ]
      -> [ true; true ]
    | _ -> [ false; false ])

let prop_roundtrip =
  let gen_event =
    QCheck2.Gen.(
      let path = map (fun i -> Printf.sprintf "/f%d" i) (int_range 0 20) in
      oneof
        [
          map3 (fun p o l -> Trace.Read { path = p; off = o; len = l }) path
            (int_range 0 100000) (int_range 0 100000);
          map3 (fun p o l -> Trace.Write { path = p; off = o; len = l }) path
            (int_range 0 100000) (int_range 0 100000);
          map (fun p -> Trace.Unlink { path = p }) path;
        ])
  in
  QCheck2.Test.make ~name:"trace text format round-trips" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) gen_event)
    (fun evs ->
      let t = Trace.create () in
      List.iter (Trace.record t) evs;
      Trace.events (Trace.of_string (Trace.to_string t)) = evs)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "rejects bad paths" `Quick test_rejects_bad_paths;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "replay hit rate" `Quick test_replay_hit_rate;
    Alcotest.test_case "replay residency + unlink" `Quick test_replay_residency_and_unlink;
    Alcotest.test_case "replay capacity pressure" `Quick test_replay_capacity_pressure;
    Alcotest.test_case "compare policies" `Quick test_compare_policies;
    Alcotest.test_case "interpose records trace" `Quick test_interpose_records_trace;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
