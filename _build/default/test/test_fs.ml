(* FFS-style layout model: namespace semantics and allocation behaviour. *)

open Simos

let small_fs () =
  (* 4 groups of 8192 blocks *)
  Fs.create (Fs.default_config ~total_blocks:(4 * 8192))

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected fs error: %s" (Fs.error_to_string e)

let err expected = function
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check string) "error" (Fs.error_to_string expected) (Fs.error_to_string e)

let kib4 = 4096

(* ---- namespace ---- *)

let test_create_lookup () =
  let fs = small_fs () in
  let ino = ok (Fs.create_file fs "/a") in
  Alcotest.(check int) "lookup finds it" ino (ok (Fs.lookup fs "/a"));
  err Fs.Enoent (Fs.lookup fs "/b")

let test_create_duplicate () =
  let fs = small_fs () in
  ignore (ok (Fs.create_file fs "/a"));
  err Fs.Eexist (Fs.create_file fs "/a")

let test_mkdir_nested () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  ignore (ok (Fs.mkdir fs "/d/e"));
  let ino = ok (Fs.create_file fs "/d/e/f") in
  Alcotest.(check int) "nested lookup" ino (ok (Fs.lookup fs "/d/e/f"))

let test_lookup_through_file_fails () =
  let fs = small_fs () in
  ignore (ok (Fs.create_file fs "/a"));
  err Fs.Enotdir (Fs.lookup fs "/a/b")

let test_unlink () =
  let fs = small_fs () in
  ignore (ok (Fs.create_file fs "/a"));
  ok (Fs.unlink fs "/a");
  err Fs.Enoent (Fs.lookup fs "/a");
  err Fs.Enoent (Fs.unlink fs "/a")

let test_unlink_nonempty_dir () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  ignore (ok (Fs.create_file fs "/d/a"));
  err Fs.Enotempty (Fs.unlink fs "/d");
  ok (Fs.unlink fs "/d/a");
  ok (Fs.unlink fs "/d")

let test_rename () =
  let fs = small_fs () in
  let ino = ok (Fs.create_file fs "/a") in
  ok (Fs.rename fs ~src:"/a" ~dst:"/b");
  err Fs.Enoent (Fs.lookup fs "/a");
  Alcotest.(check int) "same inode" ino (ok (Fs.lookup fs "/b"))

let test_rename_replaces_file () =
  let fs = small_fs () in
  let a = ok (Fs.create_file fs "/a") in
  ignore (ok (Fs.create_file fs "/b"));
  ok (Fs.rename fs ~src:"/a" ~dst:"/b");
  Alcotest.(check int) "b is old a" a (ok (Fs.lookup fs "/b"))

let test_rename_dir_over_nonempty_fails () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d1"));
  ignore (ok (Fs.mkdir fs "/d2"));
  ignore (ok (Fs.create_file fs "/d2/x"));
  err Fs.Enotempty (Fs.rename fs ~src:"/d1" ~dst:"/d2")

let test_readdir () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  ignore (ok (Fs.create_file fs "/d/a"));
  ignore (ok (Fs.create_file fs "/d/b"));
  let names = List.sort compare (ok (Fs.readdir fs "/d")) in
  Alcotest.(check (list string)) "entries" [ "a"; "b" ] names;
  err Fs.Enotdir (Fs.readdir fs "/d/a")

let test_times () =
  let fs = small_fs () in
  let ino = ok (Fs.create_file fs "/a") in
  ok (Fs.set_times fs ~ino ~atime:10 ~mtime:20);
  let st = ok (Fs.stat_ino fs ino) in
  Alcotest.(check int) "atime" 10 st.Fs.st_atime;
  Alcotest.(check int) "mtime" 20 st.Fs.st_mtime;
  Fs.mark_atime fs ~ino ~now:33;
  Alcotest.(check int) "atime marked" 33 (ok (Fs.stat_ino fs ino)).Fs.st_atime

(* ---- layout ---- *)

let test_resize_allocates_contiguously () =
  let fs = small_fs () in
  let ino = ok (Fs.create_file fs "/a") in
  ok (Fs.resize fs ~ino ~size:(10 * kib4));
  let layout = Fs.layout_of_file fs ~ino in
  Alcotest.(check int) "10 blocks" 10 (Array.length layout);
  Alcotest.(check (float 1e-9)) "contiguous" 0.0 (Fs.fragmentation_of_file fs ~ino);
  let st = ok (Fs.stat_ino fs ino) in
  Alcotest.(check int) "size" (10 * kib4) st.Fs.st_size;
  Alcotest.(check int) "blocks" 10 st.Fs.st_blocks

let test_resize_shrink_frees () =
  let fs = small_fs () in
  let free0 = Fs.free_blocks fs in
  let ino = ok (Fs.create_file fs "/a") in
  ok (Fs.resize fs ~ino ~size:(10 * kib4));
  Alcotest.(check int) "allocated" (free0 - 10) (Fs.free_blocks fs);
  ok (Fs.resize fs ~ino ~size:(3 * kib4));
  Alcotest.(check int) "freed" (free0 - 3) (Fs.free_blocks fs);
  Alcotest.(check int) "pages" 3 (Fs.pages_of_file fs ~ino)

let test_resize_dir_fails () =
  let fs = small_fs () in
  let ino = ok (Fs.mkdir fs "/d") in
  err Fs.Eisdir (Fs.resize fs ~ino ~size:kib4)

let test_unlink_returns_space () =
  let fs = small_fs () in
  let free0 = Fs.free_blocks fs and inodes0 = Fs.free_inodes fs in
  let ino = ok (Fs.create_file fs "/a") in
  ok (Fs.resize fs ~ino ~size:(100 * kib4));
  ok (Fs.unlink fs "/a");
  Alcotest.(check int) "blocks back" free0 (Fs.free_blocks fs);
  Alcotest.(check int) "inode back" inodes0 (Fs.free_inodes fs)

let test_creation_order_matches_inumber () =
  (* fresh directory: i-number order is creation order (Section 4.2.1) *)
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  let inos =
    List.init 20 (fun i -> ok (Fs.create_file fs (Printf.sprintf "/d/f%02d" i)))
  in
  let sorted = List.sort compare inos in
  Alcotest.(check (list int)) "monotone inos" sorted inos

let test_inumber_order_matches_layout_when_fresh () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  let files =
    List.init 20 (fun i ->
        let path = Printf.sprintf "/d/f%02d" i in
        let ino = ok (Fs.create_file fs path) in
        ok (Fs.resize fs ~ino ~size:(2 * kib4));
        ino)
  in
  let first_blocks = List.map (fun ino -> (Fs.layout_of_file fs ~ino).(0)) files in
  let sorted = List.sort compare first_blocks in
  Alcotest.(check (list int)) "layout follows creation" sorted first_blocks

let test_aging_breaks_correlation () =
  (* delete-and-recreate cycles reuse low inode slots and scattered blocks:
     i-number order must stop matching layout order *)
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d"));
  let rng = Gray_util.Rng.create ~seed:5 in
  let n = 50 in
  for i = 0 to n - 1 do
    let ino = ok (Fs.create_file fs (Printf.sprintf "/d/f%02d" i)) in
    ok (Fs.resize fs ~ino ~size:(8 * kib4))
  done;
  (* age: 30 epochs of delete-5/create-5 *)
  let next_name = ref n in
  for _ = 1 to 30 do
    let names = ok (Fs.readdir fs "/d") in
    let arr = Array.of_list names in
    Gray_util.Rng.shuffle rng arr;
    for j = 0 to 4 do
      ok (Fs.unlink fs ("/d/" ^ arr.(j)))
    done;
    for _ = 1 to 5 do
      let ino = ok (Fs.create_file fs (Printf.sprintf "/d/g%04d" !next_name)) in
      incr next_name;
      ok (Fs.resize fs ~ino ~size:(8 * kib4))
    done
  done;
  let names = ok (Fs.readdir fs "/d") in
  let inos = List.map (fun nm -> ok (Fs.lookup fs ("/d/" ^ nm))) names in
  let by_ino = List.sort compare inos in
  let first_block ino = float_of_int (Fs.layout_of_file fs ~ino).(0) in
  let xs = Array.of_list (List.mapi (fun i _ -> float_of_int i) by_ino) in
  let ys = Array.of_list (List.map first_block by_ino) in
  let r = Gray_util.Correlate.pearson xs ys in
  Alcotest.(check bool)
    (Printf.sprintf "correlation degraded (r=%.3f)" r)
    true (r < 0.9)

let test_dir_placement_spreads_groups () =
  let fs = small_fs () in
  let d1 = ok (Fs.mkdir fs "/d1") in
  let d2 = ok (Fs.mkdir fs "/d2") in
  let g1 = Fs.group_of_ino d1 ~inodes_per_group:1024 in
  let g2 = Fs.group_of_ino d2 ~inodes_per_group:1024 in
  Alcotest.(check bool) "different groups" true (g1 <> g2)

let test_files_follow_directory_group () =
  let fs = small_fs () in
  ignore (ok (Fs.mkdir fs "/d1"));
  ignore (ok (Fs.mkdir fs "/d2"));
  let a = ok (Fs.create_file fs "/d1/a") in
  let b = ok (Fs.create_file fs "/d2/b") in
  let dir1 = ok (Fs.lookup fs "/d1") and dir2 = ok (Fs.lookup fs "/d2") in
  let ipg = 1024 in
  Alcotest.(check int) "a in d1's group"
    (Fs.group_of_ino dir1 ~inodes_per_group:ipg)
    (Fs.group_of_ino a ~inodes_per_group:ipg);
  Alcotest.(check int) "b in d2's group"
    (Fs.group_of_ino dir2 ~inodes_per_group:ipg)
    (Fs.group_of_ino b ~inodes_per_group:ipg)

let test_enospc () =
  let fs = Fs.create { Fs.total_blocks = 8192; blocks_per_group = 8192; inodes_per_group = 64 } in
  let ino = ok (Fs.create_file fs "/big") in
  let free = Fs.free_blocks fs in
  err Fs.Enospc (Fs.resize fs ~ino ~size:((free + 1) * kib4));
  ok (Fs.resize fs ~ino ~size:(free * kib4));
  Alcotest.(check int) "exactly full" 0 (Fs.free_blocks fs)

let test_inode_block_location () =
  let fs = small_fs () in
  let ino = ok (Fs.create_file fs "/a") in
  let block = Fs.inode_block fs ~ino in
  (* inode-table blocks of group 0 live at the start of the volume *)
  Alcotest.(check bool) "in group 0 inode table" true (block >= 0 && block < 32);
  ok (Fs.resize fs ~ino ~size:kib4);
  let data = (Fs.layout_of_file fs ~ino).(0) in
  Alcotest.(check bool) "data after inode table" true (data >= 32)

let prop_no_double_allocation =
  (* Whatever sequence of creates/resizes/unlinks runs, no two live files
     may share a block, and free accounting must stay exact. *)
  QCheck2.Test.make ~name:"no double allocation under churn" ~count:60
    QCheck2.Gen.(list_size (int_range 1 80) (pair (int_range 0 2) (int_range 0 15)))
    (fun ops ->
      let fs = small_fs () in
      ignore (Fs.mkdir fs "/d");
      let live = Hashtbl.create 16 in
      let counter = ref 0 in
      let initial_free = Fs.free_blocks fs in
      List.iter
        (fun (op, arg) ->
          match op with
          | 0 ->
            let name = Printf.sprintf "/d/f%d" !counter in
            incr counter;
            (match Fs.create_file fs name with
            | Ok ino ->
              ignore (Fs.resize fs ~ino ~size:(arg * 4096));
              Hashtbl.replace live name ino
            | Error _ -> ())
          | 1 -> (
            let names = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            match names with
            | [] -> ()
            | name :: _ ->
              ignore (Fs.unlink fs name);
              Hashtbl.remove live name)
          | _ -> (
            let names = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            match names with
            | [] -> ()
            | name :: _ ->
              let ino = Hashtbl.find live name in
              ignore (Fs.resize fs ~ino ~size:(arg * 4096))))
        ops;
      (* check invariants *)
      let seen = Hashtbl.create 64 in
      let dup = ref false in
      let total_live_blocks = ref 0 in
      Hashtbl.iter
        (fun _ ino ->
          Array.iter
            (fun b ->
              if Hashtbl.mem seen b then dup := true;
              Hashtbl.replace seen b ();
              incr total_live_blocks)
            (Fs.layout_of_file fs ~ino))
        live;
      (not !dup) && Fs.free_blocks fs = initial_free - !total_live_blocks)

let suite =
  [
    Alcotest.test_case "create/lookup" `Quick test_create_lookup;
    Alcotest.test_case "create duplicate" `Quick test_create_duplicate;
    Alcotest.test_case "mkdir nested" `Quick test_mkdir_nested;
    Alcotest.test_case "lookup through file" `Quick test_lookup_through_file_fails;
    Alcotest.test_case "unlink" `Quick test_unlink;
    Alcotest.test_case "unlink nonempty dir" `Quick test_unlink_nonempty_dir;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "rename replaces file" `Quick test_rename_replaces_file;
    Alcotest.test_case "rename dir over nonempty" `Quick test_rename_dir_over_nonempty_fails;
    Alcotest.test_case "readdir" `Quick test_readdir;
    Alcotest.test_case "times" `Quick test_times;
    Alcotest.test_case "resize contiguous" `Quick test_resize_allocates_contiguously;
    Alcotest.test_case "resize shrink frees" `Quick test_resize_shrink_frees;
    Alcotest.test_case "resize dir fails" `Quick test_resize_dir_fails;
    Alcotest.test_case "unlink returns space" `Quick test_unlink_returns_space;
    Alcotest.test_case "creation order = i-number order" `Quick
      test_creation_order_matches_inumber;
    Alcotest.test_case "i-number order = layout order (fresh)" `Quick
      test_inumber_order_matches_layout_when_fresh;
    Alcotest.test_case "aging breaks correlation" `Quick test_aging_breaks_correlation;
    Alcotest.test_case "dir placement spreads" `Quick test_dir_placement_spreads_groups;
    Alcotest.test_case "files follow directory group" `Quick
      test_files_follow_directory_group;
    Alcotest.test_case "enospc" `Quick test_enospc;
    Alcotest.test_case "inode block location" `Quick test_inode_block_location;
    QCheck_alcotest.to_alcotest prop_no_double_allocation;
  ]
