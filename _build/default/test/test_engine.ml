(* Discrete-event engine: ordering, determinism, fiber interleaving. *)

open Simos

let test_single_fiber_time () =
  let e = Engine.create () in
  let finished = ref 0 in
  Engine.spawn e (fun () ->
      Engine.delay 100;
      Engine.delay 50;
      finished := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "time advanced" 150 !finished

let test_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = log := (tag, Engine.now e) :: !log in
  Engine.spawn e ~name:"a" (fun () ->
      note "a0";
      Engine.delay 10;
      note "a1";
      Engine.delay 20;
      note "a2");
  Engine.spawn e ~name:"b" (fun () ->
      note "b0";
      Engine.delay 15;
      note "b1");
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "event order"
    [ ("a0", 0); ("b0", 0); ("a1", 10); ("b1", 15); ("a2", 30) ]
    (List.rev !log)

let test_same_time_fifo () =
  (* Fibers scheduled for the same instant run in spawn order. *)
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn e (fun () ->
        Engine.delay 100;
        log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_spawn_from_fiber () =
  let e = Engine.create () in
  let child_time = ref (-1) in
  Engine.spawn e (fun () ->
      Engine.delay 42;
      Engine.spawn e (fun () ->
          Engine.delay 8;
          child_time := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "child inherits clock" 50 !child_time

let test_spawn_at () =
  let e = Engine.create () in
  let t = ref (-1) in
  Engine.spawn e ~at:500 (fun () -> t := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "starts at" 500 !t

let test_spawn_in_past_rejected () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Engine.delay 100;
      Alcotest.(check bool) "raises" true
        (try
           Engine.spawn e ~at:10 (fun () -> ());
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_delay_outside_fiber () =
  Alcotest.(check bool) "raises" true
    (try
       Engine.delay 1;
       false
     with Failure _ -> true)

let test_negative_delay () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Alcotest.(check bool) "raises" true
        (try
           Engine.delay (-1);
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_fiber_crash_propagates () =
  let e = Engine.create () in
  Engine.spawn e ~name:"boom" (fun () -> failwith "bad");
  Alcotest.(check bool) "crash surfaces" true
    (try
       Engine.run e;
       false
     with Engine.Fiber_crash ("boom", Failure _) -> true)

let test_many_events_flat_stack () =
  (* The shallow-handler trampoline must survive very long runs: two fibers
     ping-ponging half a million context switches. *)
  let e = Engine.create () in
  let count = ref 0 in
  let body () =
    for _ = 1 to 250_000 do
      Engine.delay 1;
      incr count
    done
  in
  Engine.spawn e body;
  Engine.spawn e body;
  Engine.run e;
  Alcotest.(check int) "all iterations" 500_000 !count;
  Alcotest.(check bool) "events counted" true (Engine.events_processed e >= 500_000)

let test_determinism () =
  let trace () =
    let e = Engine.create () in
    let rng = Gray_util.Rng.create ~seed:7 in
    let log = ref [] in
    for i = 1 to 10 do
      Engine.spawn e (fun () ->
          for _ = 1 to 20 do
            Engine.delay (Gray_util.Rng.int rng 100);
            log := (i, Engine.now e) :: !log
          done)
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check bool) "identical traces" true (trace () = trace ())

let suite =
  [
    Alcotest.test_case "single fiber time" `Quick test_single_fiber_time;
    Alcotest.test_case "interleaving" `Quick test_interleaving;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "spawn from fiber" `Quick test_spawn_from_fiber;
    Alcotest.test_case "spawn at" `Quick test_spawn_at;
    Alcotest.test_case "spawn in past rejected" `Quick test_spawn_in_past_rejected;
    Alcotest.test_case "delay outside fiber" `Quick test_delay_outside_fiber;
    Alcotest.test_case "negative delay" `Quick test_negative_delay;
    Alcotest.test_case "fiber crash propagates" `Quick test_fiber_crash_propagates;
    Alcotest.test_case "many events, flat stack" `Quick test_many_events_flat_stack;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
