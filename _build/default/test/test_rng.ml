(* Determinism and distributional sanity of the PRNG layer. *)

open Gray_util

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_in_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in rng ~min:(-5) ~max:5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_uniformity () =
  (* chi-square-ish check: 10 buckets over 100k draws stay within 5%. *)
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 10%" true (frac > 0.09 && frac < 0.11))
    buckets

let test_gaussian_moments () =
  let rng = Rng.create ~seed:13 in
  let acc = Stats.empty () in
  for _ = 1 to 50_000 do
    Stats.add acc (Rng.gaussian rng ~mu:3.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean near 3" true (Float.abs (Stats.mean acc -. 3.0) < 0.05);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Stats.stddev acc -. 2.0) < 0.05)

let test_split_independent () =
  let parent = Rng.create ~seed:99 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_copy_replays () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:21 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

let test_choose () =
  let rng = Rng.create ~seed:4 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let x = Rng.choose rng arr in
    Alcotest.(check bool) "member" true (Array.mem x arr)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "choose membership" `Quick test_choose;
  ]
