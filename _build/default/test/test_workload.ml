(* Workload generators, scan/search helpers, timers, and an engine
   conservation property. *)

open Simos

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let run_proc body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:404 () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn

let test_make_files () =
  let _, sizes =
    run_proc (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/w" ~prefix:"x" ~count:7
            ~size:(3 * 4096)
        in
        Alcotest.(check int) "seven files" 7 (List.length paths);
        List.map (fun p -> (ok (Kernel.stat env p)).Fs.st_size) paths)
  in
  List.iter (fun s -> Alcotest.(check int) "size" (3 * 4096) s) sizes

let test_make_files_existing_dir () =
  let _, () =
    run_proc (fun env ->
        ignore (Gray_apps.Workload.make_files env ~dir:"/d0/w" ~prefix:"a" ~count:2 ~size:4096);
        (* a second population into the same directory must not fail *)
        ignore (Gray_apps.Workload.make_files env ~dir:"/d0/w" ~prefix:"b" ~count:2 ~size:4096);
        Alcotest.(check int) "four files" 4
          (List.length (Gray_apps.Workload.paths_in env ~dir:"/d0/w")))
  in
  ()

let test_age_directory_conserves_count () =
  let _, counts =
    run_proc (fun env ->
        ignore
          (Gray_apps.Workload.make_files env ~dir:"/d0/w" ~prefix:"f" ~count:20
             ~size:4096);
        let rng = Gray_util.Rng.create ~seed:9 in
        List.init 5 (fun _ ->
            Gray_apps.Workload.age_directory env rng ~dir:"/d0/w" ~deletes:5 ~creates:5
              ~size:4096;
            List.length (Gray_apps.Workload.paths_in env ~dir:"/d0/w")))
  in
  List.iter (fun c -> Alcotest.(check int) "steady population" 20 c) counts

let test_paths_in_sorted () =
  let _, paths =
    run_proc (fun env ->
        ignore (Gray_apps.Workload.make_files env ~dir:"/d0/w" ~prefix:"f" ~count:5 ~size:4096);
        Gray_apps.Workload.paths_in env ~dir:"/d0/w")
  in
  Alcotest.(check (list string)) "sorted" (List.sort compare paths) paths

let test_read_file_counts_bytes () =
  let k, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/f" ((2 * mib) + 123);
        Kernel.reset_counters (Kernel.kernel_of_env env);
        Gray_apps.Workload.read_file env "/d0/f")
  in
  Alcotest.(check int) "all bytes read" ((2 * mib) + 123)
    (Kernel.counters k).Kernel.c_bytes_read

let test_timer_elapsed () =
  let fake_now = ref 0 in
  let t = Gray_util.Timer.of_fun ~resolution_ns:100 (fun () -> !fake_now) in
  let result, d =
    Gray_util.Timer.elapsed t (fun () ->
        fake_now := 1234;
        "done")
  in
  Alcotest.(check string) "result" "done" result;
  Alcotest.(check int) "quantised duration" 1200 d

let test_timer_validates () =
  Alcotest.(check bool) "bad resolution" true
    (try
       ignore (Gray_util.Timer.of_fun ~resolution_ns:0 (fun () -> 0));
       false
     with Invalid_argument _ -> true)

(* Engine conservation: with any set of fibers and delay lists, the final
   clock is the max per-fiber total, and every delay produces exactly one
   event. *)
let prop_engine_conservation =
  QCheck2.Test.make ~name:"engine: clock = max fiber total" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 8) (list_size (int_range 0 20) (int_range 0 1000)))
    (fun fibers ->
      let e = Engine.create () in
      List.iter
        (fun delays -> Engine.spawn e (fun () -> List.iter Engine.delay delays))
        fibers;
      Engine.run e;
      let expected =
        List.fold_left
          (fun acc delays -> max acc (List.fold_left ( + ) 0 delays))
          0 fibers
      in
      Engine.now e = expected)

let suite =
  [
    Alcotest.test_case "make_files" `Quick test_make_files;
    Alcotest.test_case "make_files existing dir" `Quick test_make_files_existing_dir;
    Alcotest.test_case "aging conserves count" `Quick test_age_directory_conserves_count;
    Alcotest.test_case "paths_in sorted" `Quick test_paths_in_sorted;
    Alcotest.test_case "read_file counts bytes" `Quick test_read_file_counts_bytes;
    Alcotest.test_case "timer elapsed" `Quick test_timer_elapsed;
    Alcotest.test_case "timer validates" `Quick test_timer_validates;
    QCheck_alcotest.to_alcotest prop_engine_conservation;
  ]
