(* The comparators: SLEDs (kernel-assisted baseline), interposition-based
   inference (the paper's future work), and vmstat-based MAC detection. *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let run_proc body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:303 () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn

let small_config seed =
  let c = Fccd.default_config ~seed () in
  { c with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

(* ---- SLEDs ---- *)

let test_sleds_latency_reflects_cache () =
  let k, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/f" (16 * mib);
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        (* warm the first half *)
        let fd = ok (Kernel.open_file env "/d0/f") in
        ignore (ok (Kernel.read env fd ~off:0 ~len:(8 * mib)));
        Kernel.close env fd)
  in
  let estimates =
    match Sleds.estimate_file k ~path:"/d0/f" ~granularity:(4 * mib) with
    | Ok e -> e
    | Error _ -> Alcotest.fail "estimate"
  in
  Alcotest.(check int) "four sections" 4 (List.length estimates);
  let lat off = (List.find (fun e -> e.Sleds.sl_off = off) estimates).Sleds.sl_latency_ns in
  Alcotest.(check bool) "cached cheap" true (lat 0 < lat (8 * mib) / 5);
  Alcotest.(check bool) "cached cheap 2" true (lat (4 * mib) < lat (12 * mib) / 5)

let test_sleds_best_order () =
  let k, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/f" (16 * mib);
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        let fd = ok (Kernel.open_file env "/d0/f") in
        ignore (ok (Kernel.read env fd ~off:(8 * mib) ~len:(8 * mib)));
        Kernel.close env fd)
  in
  match Sleds.best_order k ~path:"/d0/f" ~granularity:(4 * mib) with
  | Error _ -> Alcotest.fail "order"
  | Ok (first :: second :: _) ->
    Alcotest.(check bool) "cached tail first" true
      (first.Sleds.sl_off >= 8 * mib && second.Sleds.sl_off >= 8 * mib)
  | Ok _ -> Alcotest.fail "too few sections"

let test_fccd_agrees_with_sleds () =
  (* the paper's claim quantified: the gray-box plan should match the
     kernel-assisted ordering *)
  let k, plan =
    run_proc (fun env ->
        let kk = Kernel.kernel_of_env env in
        Gray_apps.Workload.write_file env "/d0/f" (32 * mib);
        Kernel.flush_file_cache kk;
        let fd = ok (Kernel.open_file env "/d0/f") in
        ignore (ok (Kernel.read env fd ~off:0 ~len:(8 * mib)));
        ignore (ok (Kernel.read env fd ~off:(20 * mib) ~len:(8 * mib)));
        Kernel.close env fd;
        ok (Fccd.probe_file env (small_config 1) ~path:"/d0/f"))
  in
  match Sleds.best_order k ~path:"/d0/f" ~granularity:(4 * mib) with
  | Error _ -> Alcotest.fail "sleds"
  | Ok sleds ->
    let rho = Sleds.agreement sleds plan.Fccd.plan_extents in
    Alcotest.(check bool)
      (Printf.sprintf "rank correlation %.2f" rho)
      true (rho > 0.7)

(* ---- interposition ---- *)

let test_interpose_tracks_own_accesses () =
  let _, (predicted, truth) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let agent =
          Interpose.create ~assumed_policy:Replacement.clock
            ~assumed_capacity_pages:(Platform.usable_pages tiny_linux) ()
        in
        Gray_apps.Workload.write_file env "/d0/f" (8 * mib);
        Kernel.flush_file_cache k;
        let fd = ok (Kernel.open_file env "/d0/f") in
        ignore (ok (Interpose.read agent env fd ~path:"/d0/f" ~off:0 ~len:(4 * mib)));
        Kernel.close env fd;
        let predicted = Interpose.predicted_fraction agent ~path:"/d0/f" ~pages:2048 in
        (predicted, Introspect.cached_fraction k ~path:"/d0/f"))
  in
  Alcotest.(check (float 0.01)) "agrees with truth" truth predicted;
  Alcotest.(check (float 0.01)) "half cached" 0.5 predicted

let test_interpose_blind_to_others () =
  (* the known limitation: accesses outside the agent are invisible *)
  let _, predicted =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let agent =
          Interpose.create ~assumed_policy:Replacement.clock
            ~assumed_capacity_pages:(Platform.usable_pages tiny_linux) ()
        in
        Gray_apps.Workload.write_file env "/d0/f" (4 * mib);
        Kernel.flush_file_cache k;
        (* a direct (un-interposed) read the agent cannot see *)
        Gray_apps.Workload.read_file env "/d0/f";
        Interpose.predicted_fraction agent ~path:"/d0/f" ~pages:1024)
  in
  Alcotest.(check (float 0.01)) "agent saw nothing" 0.0 predicted

let test_interpose_order_files () =
  let _, order =
    run_proc (fun env ->
        let agent =
          Interpose.create ~assumed_policy:Replacement.clock
            ~assumed_capacity_pages:1024 ()
        in
        List.iter
          (fun name -> Gray_apps.Workload.write_file env ("/d0/" ^ name) (2 * mib))
          [ "a"; "b"; "c" ];
        (* the agent observes reads of b only *)
        let fd = ok (Kernel.open_file env "/d0/b") in
        ignore (ok (Interpose.read agent env fd ~path:"/d0/b" ~off:0 ~len:(2 * mib)));
        Kernel.close env fd;
        Interpose.order_files agent
          ~paths:[ ("/d0/a", 2 * mib); ("/d0/b", 2 * mib); ("/d0/c", 2 * mib) ])
  in
  Alcotest.(check string) "b first" "/d0/b" (List.hd order)

let test_interpose_unlink_coherence () =
  let _, predicted =
    run_proc (fun env ->
        let agent =
          Interpose.create ~assumed_policy:Replacement.clock ~assumed_capacity_pages:1024
            ()
        in
        Gray_apps.Workload.write_file env "/d0/f" (1 * mib);
        let fd = ok (Kernel.open_file env "/d0/f") in
        ignore (ok (Interpose.read agent env fd ~path:"/d0/f" ~off:0 ~len:(1 * mib)));
        Kernel.close env fd;
        Interpose.note_unlink agent ~path:"/d0/f";
        Interpose.predicted_fraction agent ~path:"/d0/f" ~pages:256)
  in
  Alcotest.(check (float 0.001)) "shadow dropped" 0.0 predicted

(* ---- vmstat detection ---- *)

let test_vmstat_counters_move () =
  let _, (before, after) =
    run_proc (fun env ->
        let before = Kernel.vmstat env in
        let pages = 80 * mib / 4096 in
        let r = Kernel.valloc env ~pages in
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
        let after = Kernel.vmstat env in
        Kernel.vfree env r;
        (before, after))
  in
  Alcotest.(check int) "clean start" 0 before.Kernel.vm_page_outs;
  Alcotest.(check bool) "page-outs visible" true
    (after.Kernel.vm_page_outs > 0);
  Alcotest.(check bool) "page-ins visible" true (after.Kernel.vm_page_ins > 0)

let test_mac_vmstat_detector () =
  let _, granted =
    run_proc (fun env ->
        let config =
          {
            (Mac.default_config ()) with
            Mac.initial_increment = 2 * mib;
            max_increment = 8 * mib;
            detection = Mac.Vmstat;
          }
        in
        (* request more than the machine has: vmstat detection must stop
           the climb like timing does *)
        match Mac.gb_alloc env config ~min:(8 * mib) ~max:(96 * mib) ~multiple:100 with
        | None -> 0
        | Some a ->
          let b = Mac.bytes a in
          Mac.gb_free env a;
          b)
  in
  Alcotest.(check bool)
    (Printf.sprintf "granted %d MB within the machine" (granted / mib))
    true
    (granted > 8 * mib && granted < 64 * mib)

let suite =
  [
    Alcotest.test_case "sleds latency reflects cache" `Quick test_sleds_latency_reflects_cache;
    Alcotest.test_case "sleds best order" `Quick test_sleds_best_order;
    Alcotest.test_case "fccd agrees with sleds" `Quick test_fccd_agrees_with_sleds;
    Alcotest.test_case "interpose tracks own accesses" `Quick
      test_interpose_tracks_own_accesses;
    Alcotest.test_case "interpose blind to others" `Quick test_interpose_blind_to_others;
    Alcotest.test_case "interpose order files" `Quick test_interpose_order_files;
    Alcotest.test_case "interpose unlink coherence" `Quick test_interpose_unlink_coherence;
    Alcotest.test_case "vmstat counters move" `Quick test_vmstat_counters_move;
    Alcotest.test_case "mac vmstat detector" `Quick test_mac_vmstat_detector;
  ]
