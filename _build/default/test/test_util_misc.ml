(* Pqueue, Param_repo, Units, Histogram, Dist, Table. *)

open Gray_util

(* ---- Pqueue ---- *)

let test_pqueue_order () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some x ->
      out := x :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !out)

let test_pqueue_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check (option int)) "pop none" None (Pqueue.pop q);
  Alcotest.(check (option int)) "peek none" None (Pqueue.peek q)

let test_pqueue_peek () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 3;
  Pqueue.push q 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Pqueue.peek q);
  Alcotest.(check int) "length" 2 (Pqueue.length q)

let prop_pqueue_sorts =
  QCheck2.Test.make ~name:"pqueue drains sorted" ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ---- Param_repo ---- *)

let test_repo_roundtrip () =
  let r = Param_repo.create () in
  Param_repo.set r ~key:"disk.avg_seek_ns" ~value:5.3e6 ~source:"microbench";
  Param_repo.set r ~key:"mem.copy_page_ns" ~value:27000.0 ~source:"microbench";
  let r2 = Param_repo.of_string (Param_repo.to_string r) in
  Alcotest.(check (list string)) "keys" (Param_repo.keys r) (Param_repo.keys r2);
  Alcotest.(check (option (float 1e-3))) "value" (Some 5.3e6)
    (Param_repo.get r2 "disk.avg_seek_ns");
  Alcotest.(check (option string)) "source" (Some "microbench")
    (Param_repo.source r2 "disk.avg_seek_ns")

let test_repo_missing () =
  let r = Param_repo.create () in
  Alcotest.(check (option (float 0.0))) "missing" None (Param_repo.get r "nope");
  Alcotest.(check (float 1e-9)) "default" 7.0 (Param_repo.get_or r "nope" ~default:7.0)

let test_repo_bad_key () =
  let r = Param_repo.create () in
  Alcotest.check_raises "bad key" (Invalid_argument "Param_repo.set: bad key a b")
    (fun () -> Param_repo.set r ~key:"a b" ~value:1.0 ~source:"x")

let test_repo_bad_parse () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Param_repo.of_string "not a line");
       false
     with Failure _ -> true)

let test_repo_comments_and_blanks () =
  let r = Param_repo.of_string "# header\n\nfoo = 1.5 # note\n" in
  Alcotest.(check (option (float 1e-9))) "foo" (Some 1.5) (Param_repo.get r "foo")

(* ---- Units ---- *)

let test_units () =
  Alcotest.(check int) "mib" (1024 * 1024) Units.mib;
  Alcotest.(check int) "bytes_of_mib" (20 * 1024 * 1024) (Units.bytes_of_mib 20);
  Alcotest.(check (float 1e-9)) "mib_of_bytes" 1.5
    (Units.mib_of_bytes (Units.mib + (Units.mib / 2)));
  Alcotest.(check string) "pp bytes" "20.0 MB" (Units.bytes_to_string (Units.bytes_of_mib 20));
  Alcotest.(check string) "pp ns" "3.2 us" (Units.ns_to_string 3200);
  Alcotest.(check string) "pp s" "54.30 s" (Units.ns_to_string (Units.ns_of_sec 54.3))

(* ---- Histogram ---- *)

let test_histogram () =
  let h = Histogram.create ~min:0.0 ~max:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.0; 10.0; 11.0 ];
  Alcotest.(check int) "total" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "mode" 1 (Histogram.mode_bin h);
  Alcotest.(check bool) "render non-empty" true (String.length (Histogram.render h ~width:20) > 0)

(* ---- Dist ---- *)

let test_exponential_mean () =
  let rng = Rng.create ~seed:41 in
  let acc = Stats.empty () in
  for _ = 1 to 50_000 do
    Stats.add acc (Dist.exponential rng ~rate:2.0)
  done;
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (Stats.mean acc -. 0.5) < 0.02)

let test_lognormal_factor_mean () =
  let rng = Rng.create ~seed:43 in
  let acc = Stats.empty () in
  for _ = 1 to 50_000 do
    Stats.add acc (Dist.lognormal_factor rng ~sigma:0.3)
  done;
  Alcotest.(check bool) "mean near 1" true (Float.abs (Stats.mean acc -. 1.0) < 0.02);
  Alcotest.(check (float 1e-9)) "sigma 0 exact" 1.0 (Dist.lognormal_factor rng ~sigma:0.0)

let test_zipf_skew () =
  let rng = Rng.create ~seed:47 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Dist.zipf rng ~n:100 ~theta:0.99 in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 10 * counts.(99));
  Alcotest.(check bool) "all in range" true (Array.for_all (fun c -> c >= 0) counts)

let test_pareto_bounds () =
  let rng = Rng.create ~seed:53 in
  for _ = 1 to 5_000 do
    let x = Dist.pareto_bounded rng ~shape:1.2 ~min:2.0 ~max:64.0 in
    Alcotest.(check bool) "in bounds" true (x >= 2.0 && x <= 64.0 +. 1e-6)
  done

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:59 in
  let s = Dist.sample_without_replacement rng ~k:10 ~n:20 in
  Alcotest.(check int) "k elements" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.for_all (fun i -> i >= 0 && i < 20) sorted in
  Alcotest.(check bool) "in range" true distinct;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "has rows" true
    (String.split_on_char '\n' s |> List.length >= 5)

let test_bar_chart () =
  let s = Table.bar_chart ~title:"B" [ ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check bool) "renders" true (String.length s > 5)

let suite =
  [
    Alcotest.test_case "pqueue order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue empty" `Quick test_pqueue_empty;
    Alcotest.test_case "pqueue peek" `Quick test_pqueue_peek;
    QCheck_alcotest.to_alcotest prop_pqueue_sorts;
    Alcotest.test_case "param repo roundtrip" `Quick test_repo_roundtrip;
    Alcotest.test_case "param repo missing" `Quick test_repo_missing;
    Alcotest.test_case "param repo bad key" `Quick test_repo_bad_key;
    Alcotest.test_case "param repo bad parse" `Quick test_repo_bad_parse;
    Alcotest.test_case "param repo comments" `Quick test_repo_comments_and_blanks;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "lognormal factor mean" `Quick test_lognormal_factor_mean;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
    Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
  ]
