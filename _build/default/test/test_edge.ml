(* Cross-cutting edge cases: namespace moves, cache sharing across
   processes, disk contention, determinism. *)

open Simos

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let boot () =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:tiny_linux ~data_disks:2 ~seed:707 ()

let run_proc body =
  let k = boot () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn

let test_rename_directory_moves_subtree () =
  let _, () =
    run_proc (fun env ->
        ok (Kernel.mkdir env "/d0/a");
        ok (Kernel.mkdir env "/d0/a/sub");
        Gray_apps.Workload.write_file env "/d0/a/sub/f" 4096;
        ok (Kernel.rename env ~src:"/d0/a" ~dst:"/d0/b");
        (match Kernel.stat env "/d0/b/sub/f" with
        | Ok st -> Alcotest.(check int) "file size survives" 4096 st.Fs.st_size
        | Error e -> Alcotest.failf "lost subtree: %s" (Kernel.error_to_string e));
        match Kernel.stat env "/d0/a/sub/f" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "old path still resolves")
  in
  ()

let test_cross_volume_rename_rejected () =
  let _, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/f" 4096;
        match Kernel.rename env ~src:"/d0/f" ~dst:"/d1/f" with
        | Error Kernel.Bad_path -> ()
        | _ -> Alcotest.fail "expected cross-volume rename rejection")
  in
  ()

let test_cache_shared_across_processes () =
  (* one process warms a file; a second process's read must hit *)
  let k = boot () in
  let warm_done = ref false in
  let second_ns = ref max_int in
  Kernel.spawn k ~name:"warmer" (fun env ->
      Gray_apps.Workload.write_file env "/d0/shared" (4 * mib);
      Kernel.flush_file_cache (Kernel.kernel_of_env env);
      Gray_apps.Workload.read_file env "/d0/shared";
      warm_done := true);
  Kernel.spawn k ~name:"reader" (fun env ->
      while not !warm_done do
        Engine.delay 1_000_000
      done;
      let t0 = Kernel.gettime env in
      Gray_apps.Workload.read_file env "/d0/shared";
      second_ns := Kernel.gettime env - t0);
  Kernel.run k;
  (* warm 4 MB at copy rate ~ 28 ms; from disk it would be ~210 ms *)
  Alcotest.(check bool)
    (Printf.sprintf "second reader hits cache (%.1f ms)" (float_of_int !second_ns /. 1e6))
    true
    (!second_ns < 100_000_000)

let test_disk_contention_serializes_same_volume () =
  let time_pair ~vol2 =
    let k = boot () in
    Kernel.spawn k (fun env ->
        Gray_apps.Workload.write_file env "/d0/a" (16 * mib);
        Gray_apps.Workload.write_file env (Printf.sprintf "/d%d/b" vol2) (16 * mib));
    Kernel.run k;
    Kernel.flush_file_cache k;
    let finish = ref 0 in
    Kernel.spawn k (fun env ->
        Gray_apps.Workload.read_file env "/d0/a";
        finish := max !finish (Kernel.gettime env));
    Kernel.spawn k (fun env ->
        Gray_apps.Workload.read_file env (Printf.sprintf "/d%d/b" vol2);
        finish := max !finish (Kernel.gettime env));
    Kernel.run k;
    !finish
  in
  let same = time_pair ~vol2:0 in
  let different = time_pair ~vol2:1 in
  Alcotest.(check bool)
    (Printf.sprintf "same disk %.2fs > different disks %.2fs"
       (Gray_util.Units.sec_of_ns same)
       (Gray_util.Units.sec_of_ns different))
    true
    (float_of_int same > 1.5 *. float_of_int different)

let test_simulation_determinism_end_to_end () =
  (* identical seeds: identical virtual end times, byte counts, paging *)
  let run () =
    let k = boot () in
    let endt = ref 0 in
    Kernel.spawn k (fun env ->
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:10
            ~size:(2 * mib)
        in
        Kernel.flush_file_cache (Kernel.kernel_of_env env);
        let config =
          { (Graybox_core.Fccd.default_config ~seed:1 ()) with
            Graybox_core.Fccd.access_unit = mib; prediction_unit = mib / 2 }
        in
        (match Graybox_core.Fccd.order_files env config ~paths with
        | Ok ranked -> List.iter (fun r -> Gray_apps.Workload.read_file env r.Graybox_core.Fccd.fr_path) ranked
        | Error _ -> ());
        endt := Kernel.gettime env);
    Kernel.run k;
    (!endt, Kernel.counters k)
  in
  let t1, c1 = run () in
  let t2, c2 = run () in
  Alcotest.(check int) "same end time" t1 t2;
  Alcotest.(check bool) "same counters" true (c1 = c2)

let test_file_size_tracks_writes () =
  let _, () =
    run_proc (fun env ->
        let fd = ok (Kernel.create_file env "/d0/grow") in
        Alcotest.(check int) "empty" 0 (Kernel.file_size env fd);
        ignore (ok (Kernel.write env fd ~off:10_000 ~len:1));
        Alcotest.(check int) "sparse write extends" 10_001 (Kernel.file_size env fd);
        ignore (ok (Kernel.write env fd ~off:0 ~len:100));
        Alcotest.(check int) "inner write keeps size" 10_001 (Kernel.file_size env fd);
        Kernel.close env fd)
  in
  ()

let suite =
  [
    Alcotest.test_case "rename directory moves subtree" `Quick
      test_rename_directory_moves_subtree;
    Alcotest.test_case "cross-volume rename rejected" `Quick
      test_cross_volume_rename_rejected;
    Alcotest.test_case "cache shared across processes" `Quick
      test_cache_shared_across_processes;
    Alcotest.test_case "disk contention same volume" `Quick
      test_disk_contention_serializes_same_volume;
    Alcotest.test_case "end-to-end determinism" `Quick
      test_simulation_determinism_end_to_end;
    Alcotest.test_case "file size tracks writes" `Quick test_file_size_tracks_writes;
  ]
