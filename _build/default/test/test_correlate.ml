(* Correlation / regression / sign test. *)

open Gray_util

let test_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  Alcotest.(check (float 1e-9)) "r = 1" 1.0 (Correlate.pearson xs ys);
  let neg = Array.map (fun y -> -.y) ys in
  Alcotest.(check (float 1e-9)) "r = -1" (-1.0) (Correlate.pearson xs neg)

let test_pearson_zero_variance () =
  Alcotest.(check (float 1e-9)) "flat series" 0.0
    (Correlate.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_pearson_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Correlate.pearson: length mismatch") (fun () ->
      ignore (Correlate.pearson [| 1.0 |] [| 1.0; 2.0 |]))

let test_regression_exact () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) -. 2.0) xs in
  let r = Correlate.linear_regression xs ys in
  Alcotest.(check (float 1e-9)) "slope" 3.0 r.Correlate.slope;
  Alcotest.(check (float 1e-9)) "intercept" (-2.0) r.Correlate.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r.Correlate.r2

let test_regression_noisy () =
  let rng = Rng.create ~seed:31 in
  let xs = Array.init 500 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (0.5 *. x) +. 10.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:1.0) xs in
  let r = Correlate.linear_regression xs ys in
  Alcotest.(check bool) "slope near 0.5" true (Float.abs (r.Correlate.slope -. 0.5) < 0.01);
  Alcotest.(check bool) "good fit" true (r.Correlate.r2 > 0.99)

let test_ema () =
  let e = Correlate.ema_create ~alpha:0.5 in
  Alcotest.(check bool) "empty" true (Correlate.ema_value e = None);
  Alcotest.(check (float 1e-9)) "first" 10.0 (Correlate.ema_add e 10.0);
  Alcotest.(check (float 1e-9)) "second" 15.0 (Correlate.ema_add e 20.0);
  Alcotest.(check (float 1e-9)) "third" 17.5 (Correlate.ema_add e 20.0)

let test_sign_test_identical () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "no difference" 1.0 (Correlate.paired_sign_test xs xs)

let test_sign_test_dominating () =
  let a = Array.init 20 (fun i -> float_of_int i +. 10.0) in
  let b = Array.init 20 (fun i -> float_of_int i) in
  let p = Correlate.paired_sign_test a b in
  Alcotest.(check bool) "significant" true (p < 0.001)

let test_sign_test_balanced () =
  let a = Array.init 20 (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
  let b = Array.init 20 (fun i -> if i mod 2 = 0 then 0.0 else 1.0) in
  let p = Correlate.paired_sign_test a b in
  Alcotest.(check bool) "not significant" true (p > 0.5)

let prop_pearson_in_range =
  QCheck2.Test.make ~name:"pearson in [-1, 1]" ~count:300
    QCheck2.Gen.(
      let arr = array_size (return 20) (float_range (-100.) 100.) in
      pair arr arr)
    (fun (xs, ys) ->
      let r = Correlate.pearson xs ys in
      r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let prop_sign_test_symmetric =
  QCheck2.Test.make ~name:"sign test symmetric" ~count:200
    QCheck2.Gen.(
      let arr = array_size (return 15) (float_range (-10.) 10.) in
      pair arr arr)
    (fun (xs, ys) ->
      Float.abs (Correlate.paired_sign_test xs ys -. Correlate.paired_sign_test ys xs)
      < 1e-9)

let suite =
  [
    Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
    Alcotest.test_case "pearson zero variance" `Quick test_pearson_zero_variance;
    Alcotest.test_case "pearson length mismatch" `Quick test_pearson_mismatch;
    Alcotest.test_case "regression exact" `Quick test_regression_exact;
    Alcotest.test_case "regression noisy" `Quick test_regression_noisy;
    Alcotest.test_case "ema" `Quick test_ema;
    Alcotest.test_case "sign test identical" `Quick test_sign_test_identical;
    Alcotest.test_case "sign test dominating" `Quick test_sign_test_dominating;
    Alcotest.test_case "sign test balanced" `Quick test_sign_test_balanced;
    QCheck_alcotest.to_alcotest prop_pearson_in_range;
    QCheck_alcotest.to_alcotest prop_sign_test_symmetric;
  ]
