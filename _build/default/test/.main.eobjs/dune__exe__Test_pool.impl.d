test/test_pool.ml: Alcotest List Memory Page Pool QCheck2 QCheck_alcotest Replacement Simos
