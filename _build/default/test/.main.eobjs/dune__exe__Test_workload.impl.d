test/test_workload.ml: Alcotest Engine Fs Gray_apps Gray_util Kernel List Option Platform QCheck2 QCheck_alcotest Simos
