test/test_memory_balanced.ml: Alcotest List Memory Page Pool QCheck2 QCheck_alcotest Replacement Simos
