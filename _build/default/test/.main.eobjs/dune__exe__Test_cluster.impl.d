test/test_cluster.ml: Alcotest Array Cluster Float Gray_util List Printf QCheck2 QCheck_alcotest Rng
