test/test_trace.ml: Alcotest Gray_apps Graybox_core Interpose List Printf QCheck2 QCheck_alcotest Simos Trace
