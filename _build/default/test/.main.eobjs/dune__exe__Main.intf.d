test/main.mli:
