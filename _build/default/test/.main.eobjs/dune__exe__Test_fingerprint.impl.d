test/test_fingerprint.ml: Alcotest Engine Fingerprint Gray_apps Graybox_core Kernel Option Platform Printf Replacement Simos
