test/test_correlate.ml: Alcotest Array Correlate Float Gray_util QCheck2 QCheck_alcotest Rng
