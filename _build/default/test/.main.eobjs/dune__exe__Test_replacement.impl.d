test/test_replacement.ml: Alcotest Hashtbl List Option Page Printf QCheck2 QCheck_alcotest Replacement Simos
