test/test_apps.ml: Alcotest Engine Fastsort Fccd Gray_apps Gray_util Graybox_core Grep Kernel List Mac Option Platform Printf Search Simos String Workload
