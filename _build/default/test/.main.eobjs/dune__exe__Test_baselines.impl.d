test/test_baselines.ml: Alcotest Engine Fccd Gray_apps Graybox_core Interpose Introspect Kernel List Mac Option Platform Printf Replacement Simos Sleds
