test/test_gbp_cli.ml: Alcotest Fccd Fldc Gray_util Graybox_core List Mac
