test/test_mac.ml: Alcotest Engine Graybox_core Kernel List Mac Option Platform Printf Simos
