test/test_fccd.ml: Alcotest Array Engine Fccd Fs Gray_apps Gray_util Graybox_core Introspect Kernel List Option Platform Printf Simos
