test/test_util_misc.ml: Alcotest Array Dist Float Gray_util Histogram List Param_repo Pqueue QCheck2 QCheck_alcotest Rng Stats String Table Units
