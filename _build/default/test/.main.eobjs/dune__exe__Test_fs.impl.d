test/test_fs.ml: Alcotest Array Fs Gray_util Hashtbl List Printf QCheck2 QCheck_alcotest Simos
