test/test_related.ml: Alcotest Cosched Gray_related Gray_util Manners Printf Rng Tcp
