test/test_compose_gbp.ml: Alcotest Compose Engine Fccd Gbp Gray_apps Graybox_core Kernel List Option Platform Simos
