test/test_stats.ml: Alcotest Array Float Gray_util List QCheck2 QCheck_alcotest Rng Stats
