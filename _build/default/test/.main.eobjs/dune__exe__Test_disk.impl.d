test/test_disk.ml: Alcotest Disk Gray_util Printf Simos
