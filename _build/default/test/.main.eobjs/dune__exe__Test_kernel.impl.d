test/test_kernel.ml: Alcotest Array Engine Fs Introspect Kernel List Platform Printf Simos
