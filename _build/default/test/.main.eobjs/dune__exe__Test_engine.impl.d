test/test_engine.ml: Alcotest Engine Gray_util List Simos
