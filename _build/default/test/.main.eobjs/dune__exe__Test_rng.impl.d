test/test_rng.ml: Alcotest Array Float Gray_util Rng Stats
