test/test_vmm.ml: Alcotest Gray_related Gray_util Printf Rng Vmm
