test/test_edge.ml: Alcotest Engine Fs Gray_apps Gray_util Graybox_core Kernel List Option Platform Printf Simos
