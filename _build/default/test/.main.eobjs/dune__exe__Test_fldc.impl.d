test/test_fldc.ml: Alcotest Array Engine Fldc Float Fs Gray_apps Gray_util Graybox_core Introspect Kernel List Option Platform Printf Result Simos
