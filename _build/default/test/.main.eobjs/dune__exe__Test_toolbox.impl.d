test/test_toolbox.ml: Alcotest Engine Fccd Gray_apps Gray_util Graybox_core Kernel List Mac Option Param_repo Platform Printf Simos Toolbox
