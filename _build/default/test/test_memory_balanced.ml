(* The Linux 2.2-style balanced layout: anonymous demand shrinks the file
   cache, streaming file pages never push out anonymous memory. *)

open Simos

let fkey i = Page.File { ino = 9; idx = i }
let akey i = Page.Anon { pid = 1; vpn = i }

let make ?(usable = 100) ?(floor = 10) () =
  Memory.create ~usable_pages:usable
    (Memory.Unified_balanced { policy = Replacement.lru; file_floor_pages = floor })

let test_initial_capacities () =
  let m = make () in
  Alcotest.(check int) "file can use everything" 100 (Memory.file_capacity m);
  Alcotest.(check int) "anon capped by floor" 90 (Memory.anon_capacity m)

let test_anon_growth_shrinks_file () =
  let m = make () in
  for i = 0 to 99 do
    ignore (Memory.access m (fkey i) ~dirty:false)
  done;
  Alcotest.(check int) "cache filled" 100 (Memory.resident_file m);
  (* 30 anon pages arrive: the file cache must yield exactly 30 frames *)
  for i = 0 to 29 do
    ignore (Memory.access m (akey i) ~dirty:true)
  done;
  Alcotest.(check int) "file shrunk" 70 (Memory.resident_file m);
  Alcotest.(check int) "file capacity follows" 70 (Memory.file_capacity m);
  Alcotest.(check int) "anon resident" 30 (Memory.resident_anon m)

let test_streaming_cannot_evict_anon () =
  let m = make () in
  for i = 0 to 39 do
    ignore (Memory.access m (akey i) ~dirty:true)
  done;
  (* stream many more file pages than fit: only file pages may be evicted *)
  for i = 0 to 499 do
    ignore (Memory.access m (fkey i) ~dirty:false)
  done;
  Alcotest.(check int) "anon untouched" 40 (Memory.resident_anon m);
  Alcotest.(check int) "file bounded by remainder" 60 (Memory.resident_file m)

let test_floor_respected () =
  let m = make () in
  (* anon demand beyond its capacity pages out anon, not the floor *)
  let evicted_anon = ref 0 in
  for i = 0 to 99 do
    match Memory.access m (akey i) ~dirty:true with
    | `Hit -> ()
    | `Filled evicted ->
      List.iter
        (fun (e : Pool.evicted) -> if Page.is_anon e.Pool.key then incr evicted_anon)
        evicted
  done;
  Alcotest.(check int) "anon capped" 90 (Memory.resident_anon m);
  Alcotest.(check int) "anon overflow evicted anon" 10 !evicted_anon;
  (* the floor is still available to file pages *)
  for i = 0 to 9 do
    ignore (Memory.access m (fkey i) ~dirty:false)
  done;
  Alcotest.(check int) "floor usable" 10 (Memory.resident_file m)

let test_release_returns_frames_to_cache () =
  let m = make () in
  for i = 0 to 49 do
    ignore (Memory.access m (akey i) ~dirty:true)
  done;
  Alcotest.(check int) "capacity down" 50 (Memory.file_capacity m);
  for i = 0 to 49 do
    Memory.invalidate m (akey i)
  done;
  Alcotest.(check int) "capacity restored" 100 (Memory.file_capacity m);
  Alcotest.(check int) "anon gone" 0 (Memory.resident_anon m)

let test_rebalance_reports_evictions () =
  let m = make () in
  for i = 0 to 99 do
    ignore (Memory.access m (fkey i) ~dirty:true)
  done;
  (* the first anon page displaces file pages: `Filled must report them *)
  match Memory.access m (akey 0) ~dirty:true with
  | `Hit -> Alcotest.fail "expected a fill"
  | `Filled evicted ->
    let file_victims = List.filter (fun (e : Pool.evicted) -> Page.is_file e.Pool.key) evicted in
    Alcotest.(check bool) "file victims reported" true (List.length file_victims >= 1);
    Alcotest.(check bool) "victims dirty bit preserved" true
      (List.for_all (fun (e : Pool.evicted) -> e.Pool.dirty) file_victims)

let prop_invariant_under_mixed_load =
  QCheck2.Test.make ~name:"balanced: file+anon <= usable, anon <= cap" ~count:150
    QCheck2.Gen.(list_size (int_range 0 300) (pair bool (int_range 0 150)))
    (fun ops ->
      let m = make ~usable:64 ~floor:8 () in
      List.for_all
        (fun (is_file, i) ->
          let key = if is_file then fkey i else akey i in
          ignore (Memory.access m key ~dirty:true);
          Memory.resident_file m + Memory.resident_anon m <= 64
          && Memory.resident_anon m <= 56
          && Memory.file_capacity m = max 1 (64 - Memory.resident_anon m))
        ops)

let suite =
  [
    Alcotest.test_case "initial capacities" `Quick test_initial_capacities;
    Alcotest.test_case "anon growth shrinks file" `Quick test_anon_growth_shrinks_file;
    Alcotest.test_case "streaming cannot evict anon" `Quick test_streaming_cannot_evict_anon;
    Alcotest.test_case "floor respected" `Quick test_floor_respected;
    Alcotest.test_case "release returns frames" `Quick test_release_returns_frames_to_cache;
    Alcotest.test_case "rebalance reports evictions" `Quick test_rebalance_reports_evictions;
    QCheck_alcotest.to_alcotest prop_invariant_under_mixed_load;
  ]
