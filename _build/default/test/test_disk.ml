(* Disk model: service times, sequential streaming, queueing. *)

open Simos

let small_geom =
  {
    Disk.model = "test";
    cylinders = 100;
    blocks_per_cylinder = 10;
    seek_min_ns = 1_000;
    seek_max_ns = 10_000;
    rotation_ns = 6_000;
    transfer_ns_per_block = 100;
  }

let test_capacity () =
  let d = Disk.create small_geom in
  Alcotest.(check int) "blocks" 1000 (Disk.capacity_blocks d)

let test_seek_monotone () =
  let d = Disk.create small_geom in
  Alcotest.(check int) "zero distance" 0 (Disk.seek_time d ~from_cyl:5 ~to_cyl:5);
  let s1 = Disk.seek_time d ~from_cyl:0 ~to_cyl:1 in
  let s50 = Disk.seek_time d ~from_cyl:0 ~to_cyl:50 in
  let s99 = Disk.seek_time d ~from_cyl:0 ~to_cyl:99 in
  Alcotest.(check bool) "monotone" true (s1 < s50 && s50 < s99);
  Alcotest.(check bool) "min bound" true (s1 >= small_geom.Disk.seek_min_ns);
  Alcotest.(check int) "max bound" small_geom.Disk.seek_max_ns s99

let test_first_access_positions () =
  let d = Disk.create small_geom in
  (* first access from cylinder 0 to block 0: no seek distance, but pays
     rotation + transfer *)
  let delay = Disk.access d ~now:0 ~start_block:0 ~nblocks:1 in
  Alcotest.(check int) "rot/2 + transfer" (3_000 + 100) delay

let test_sequential_streaming () =
  let d = Disk.create small_geom in
  let first = Disk.access d ~now:0 ~start_block:0 ~nblocks:5 in
  let second = Disk.access d ~now:first ~start_block:5 ~nblocks:5 in
  Alcotest.(check bool) "second cheaper" true (second < first);
  Alcotest.(check int) "pure transfer" (5 * 100) second;
  Alcotest.(check int) "sequential hit" 1 (Disk.sequential_hits d)

let test_random_costs_more_than_sequential () =
  let dseq = Disk.create small_geom and drand = Disk.create small_geom in
  let now = ref 0 in
  for i = 0 to 9 do
    now := !now + Disk.access dseq ~now:!now ~start_block:(i * 10) ~nblocks:10
  done;
  let seq_total = !now in
  let rng = Gray_util.Rng.create ~seed:3 in
  now := 0;
  for _ = 0 to 9 do
    let b = Gray_util.Rng.int rng 99 * 10 in
    now := !now + Disk.access drand ~now:!now ~start_block:b ~nblocks:10
  done;
  Alcotest.(check bool) "random slower" true (!now > seq_total)

let test_queueing () =
  (* Two requests dispatched at the same instant: the second waits. *)
  let d = Disk.create small_geom in
  let d1 = Disk.access d ~now:0 ~start_block:500 ~nblocks:1 in
  let d2 = Disk.access d ~now:0 ~start_block:500 ~nblocks:1 in
  Alcotest.(check bool) "second delayed" true (d2 > d1)

let test_cylinder_crossing_penalty () =
  let d = Disk.create small_geom in
  ignore (Disk.access d ~now:0 ~start_block:0 ~nblocks:1);
  (* blocks 1..20 cross a cylinder boundary at block 10 *)
  let within = Disk.service_time d ~start_block:1 ~nblocks:9 in
  let crossing = Disk.service_time d ~start_block:1 ~nblocks:19 in
  Alcotest.(check bool) "crossing costs extra" true
    (crossing > within + (10 * small_geom.Disk.transfer_ns_per_block))

let test_out_of_range () =
  let d = Disk.create small_geom in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Disk.access d ~now:0 ~start_block:995 ~nblocks:10);
       false
     with Invalid_argument _ -> true)

let test_counters () =
  let d = Disk.create small_geom in
  ignore (Disk.access d ~now:0 ~start_block:0 ~nblocks:4);
  ignore (Disk.access d ~now:0 ~start_block:4 ~nblocks:4);
  Alcotest.(check int) "requests" 2 (Disk.requests d);
  Alcotest.(check int) "blocks" 8 (Disk.blocks_transferred d);
  Alcotest.(check bool) "busy" true (Disk.busy_ns d > 0);
  Disk.reset_counters d;
  Alcotest.(check int) "reset" 0 (Disk.requests d)

let test_ibm_9lzx_scan_rate () =
  (* A full sequential 1 GB scan should land near 20 MB/s (the paper's
     cold-cache 1 GB scans take ~54 s). *)
  let d = Disk.create Disk.ibm_9lzx in
  let blocks = 262_144 (* 1 GB *) in
  let now = ref 0 in
  let unit_blocks = 5_120 (* 20 MB *) in
  let i = ref 0 in
  while !i < blocks do
    now := !now + Disk.access d ~now:!now ~start_block:!i ~nblocks:unit_blocks;
    i := !i + unit_blocks
  done;
  let seconds = Gray_util.Units.sec_of_ns !now in
  Alcotest.(check bool)
    (Printf.sprintf "1GB scan in ~50-60s (got %.1f)" seconds)
    true
    (seconds > 45.0 && seconds < 65.0)

let suite =
  [
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "seek monotone" `Quick test_seek_monotone;
    Alcotest.test_case "first access" `Quick test_first_access_positions;
    Alcotest.test_case "sequential streaming" `Quick test_sequential_streaming;
    Alcotest.test_case "random slower than sequential" `Quick
      test_random_costs_more_than_sequential;
    Alcotest.test_case "queueing" `Quick test_queueing;
    Alcotest.test_case "cylinder crossing" `Quick test_cylinder_crossing_penalty;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "ibm 9lzx scan rate" `Quick test_ibm_9lzx_scan_rate;
  ]
