(* Disco-style VMM: gray-box idle-loop detection (Section 6). *)

open Gray_related
open Gray_util

let run ~policy ~seed =
  let rng = Rng.create ~seed in
  Vmm.simulate rng ~guests:3 ~slice_us:10_000 ~switch_cost_us:100 ~busy_us:2_000
    ~idle_us:8_000 ~total_work_us:200_000 ~policy

let test_idle_aware_wastes_less () =
  let naive = run ~policy:Vmm.Fixed_slice ~seed:1 in
  let aware = run ~policy:Vmm.Idle_aware ~seed:1 in
  Alcotest.(check bool)
    (Printf.sprintf "idle burn falls %dus -> %dus" naive.Vmm.d_idle_burned_us
       aware.Vmm.d_idle_burned_us)
    true
    (aware.Vmm.d_idle_burned_us < naive.Vmm.d_idle_burned_us / 5);
  Alcotest.(check bool)
    (Printf.sprintf "throughput rises %.2f -> %.2f" naive.Vmm.d_throughput
       aware.Vmm.d_throughput)
    true
    (aware.Vmm.d_throughput > 1.5 *. naive.Vmm.d_throughput)

let test_same_total_work () =
  let naive = run ~policy:Vmm.Fixed_slice ~seed:2 in
  let aware = run ~policy:Vmm.Idle_aware ~seed:2 in
  Alcotest.(check int) "naive completes all work" (3 * 200_000) naive.Vmm.d_useful_us;
  Alcotest.(check int) "aware completes all work" (3 * 200_000) aware.Vmm.d_useful_us;
  Alcotest.(check bool)
    (Printf.sprintf "aware finishes sooner (%dus vs %dus)" aware.Vmm.d_elapsed_us
       naive.Vmm.d_elapsed_us)
    true
    (aware.Vmm.d_elapsed_us < naive.Vmm.d_elapsed_us)

let test_switch_accounting () =
  let aware = run ~policy:Vmm.Idle_aware ~seed:3 in
  Alcotest.(check bool) "switches happen" true (aware.Vmm.d_switches > 10)

let test_validates () =
  let rng = Rng.create ~seed:4 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Vmm.simulate rng ~guests:0 ~slice_us:1 ~switch_cost_us:0 ~busy_us:1
            ~idle_us:1 ~total_work_us:1 ~policy:Vmm.Fixed_slice);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "idle-aware wastes less" `Quick test_idle_aware_wastes_less;
    Alcotest.test_case "same total work" `Quick test_same_total_work;
    Alcotest.test_case "switch accounting" `Quick test_switch_accounting;
    Alcotest.test_case "validates" `Quick test_validates;
  ]
