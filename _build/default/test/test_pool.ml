(* Pool + Memory: capacity enforcement, dirty tracking, layout routing. *)

open Simos

let fkey i = Page.File { ino = 9; idx = i }
let akey i = Page.Anon { pid = 1; vpn = i }

let test_capacity_enforced () =
  let p = Pool.create ~name:"t" ~capacity_pages:4 ~policy:Replacement.lru in
  for i = 0 to 9 do
    ignore (Pool.access p (fkey i) ~dirty:false)
  done;
  Alcotest.(check int) "resident bounded" 4 (Pool.resident p);
  Alcotest.(check int) "evictions" 6 (Pool.evictions p)

let test_hit_miss_counters () =
  let p = Pool.create ~name:"t" ~capacity_pages:4 ~policy:Replacement.lru in
  ignore (Pool.access p (fkey 0) ~dirty:false);
  ignore (Pool.access p (fkey 0) ~dirty:false);
  ignore (Pool.access p (fkey 1) ~dirty:false);
  Alcotest.(check int) "hits" 1 (Pool.hits p);
  Alcotest.(check int) "misses" 2 (Pool.misses p);
  Pool.reset_counters p;
  Alcotest.(check int) "reset" 0 (Pool.hits p)

let test_dirty_propagates_to_eviction () =
  let p = Pool.create ~name:"t" ~capacity_pages:2 ~policy:Replacement.lru in
  ignore (Pool.access p (fkey 0) ~dirty:true);
  ignore (Pool.access p (fkey 1) ~dirty:false);
  Alcotest.(check bool) "dirty recorded" true (Pool.is_dirty p (fkey 0));
  (match Pool.access p (fkey 2) ~dirty:false with
  | `Filled [ e ] ->
    Alcotest.(check string) "victim" (Page.to_string (fkey 0)) (Page.to_string e.Pool.key);
    Alcotest.(check bool) "victim dirty" true e.Pool.dirty
  | _ -> Alcotest.fail "expected one eviction");
  (* re-insert 0: dirty bit must have been cleared with the eviction *)
  ignore (Pool.access p (fkey 0) ~dirty:false);
  Alcotest.(check bool) "dirty cleared" false (Pool.is_dirty p (fkey 0))

let test_invalidate () =
  let p = Pool.create ~name:"t" ~capacity_pages:4 ~policy:Replacement.lru in
  ignore (Pool.access p (fkey 0) ~dirty:true);
  Pool.invalidate p (fkey 0);
  Alcotest.(check bool) "gone" false (Pool.contains p (fkey 0));
  Alcotest.(check int) "resident" 0 (Pool.resident p)

let test_evict_one () =
  let p = Pool.create ~name:"t" ~capacity_pages:4 ~policy:Replacement.lru in
  Alcotest.(check bool) "empty returns none" true (Pool.evict_one p = None);
  ignore (Pool.access p (fkey 0) ~dirty:false);
  (match Pool.evict_one p with
  | Some e -> Alcotest.(check string) "evicted" (Page.to_string (fkey 0)) (Page.to_string e.Pool.key)
  | None -> Alcotest.fail "expected eviction")

let test_memory_unified_shares () =
  let m = Memory.create ~usable_pages:4 (Memory.Unified Replacement.lru) in
  ignore (Memory.access m (fkey 0) ~dirty:false);
  ignore (Memory.access m (fkey 1) ~dirty:false);
  ignore (Memory.access m (akey 0) ~dirty:true);
  ignore (Memory.access m (akey 1) ~dirty:true);
  Alcotest.(check int) "file resident" 2 (Memory.resident_file m);
  Alcotest.(check int) "anon resident" 2 (Memory.resident_anon m);
  (* the next anon page evicts the LRU file page *)
  (match Memory.access m (akey 2) ~dirty:true with
  | `Filled [ e ] -> Alcotest.(check bool) "victim is file" true (Page.is_file e.Pool.key)
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check int) "file shrunk" 1 (Memory.resident_file m);
  Alcotest.(check int) "anon grew" 3 (Memory.resident_anon m)

let test_memory_split_isolates () =
  let m =
    Memory.create ~usable_pages:8
      (Memory.Split
         { file_pages = 2; file_policy = Replacement.lru; anon_policy = Replacement.lru })
  in
  Alcotest.(check int) "file capacity" 2 (Memory.file_capacity m);
  Alcotest.(check int) "anon capacity" 6 (Memory.anon_capacity m);
  ignore (Memory.access m (akey 0) ~dirty:true);
  (* filling the file pool cannot evict anon pages *)
  for i = 0 to 5 do
    ignore (Memory.access m (fkey i) ~dirty:false)
  done;
  Alcotest.(check int) "file bounded" 2 (Memory.resident_file m);
  Alcotest.(check int) "anon untouched" 1 (Memory.resident_anon m)

let test_memory_invalidate_if () =
  let m = Memory.create ~usable_pages:8 (Memory.Unified Replacement.lru) in
  for i = 0 to 3 do
    ignore (Memory.access m (fkey i) ~dirty:false)
  done;
  ignore (Memory.access m (akey 0) ~dirty:true);
  let dropped = Memory.invalidate_if m Page.is_file in
  Alcotest.(check int) "dropped files" 4 dropped;
  Alcotest.(check int) "file 0" 0 (Memory.resident_file m);
  Alcotest.(check int) "anon kept" 1 (Memory.resident_anon m)

let prop_pool_never_exceeds_capacity =
  QCheck2.Test.make ~name:"pool never exceeds capacity" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 16) (list_size (int_range 0 200) (int_range 0 40)))
    (fun (cap, accesses) ->
      let p = Pool.create ~name:"t" ~capacity_pages:cap ~policy:Replacement.clock in
      List.for_all
        (fun i ->
          ignore (Pool.access p (fkey i) ~dirty:(i mod 2 = 0));
          Pool.resident p <= cap)
        accesses)

let prop_accounting_consistent =
  QCheck2.Test.make ~name:"memory kind accounting consistent" ~count:100
    QCheck2.Gen.(list_size (int_range 0 150) (pair bool (int_range 0 30)))
    (fun ops ->
      let m = Memory.create ~usable_pages:16 (Memory.Unified Replacement.lru) in
      List.iter
        (fun (is_file, i) ->
          let key = if is_file then fkey i else akey i in
          ignore (Memory.access m key ~dirty:true))
        ops;
      let file = ref 0 and anon = ref 0 in
      Pool.iter (Memory.file_pool m) (fun k ->
          if Page.is_file k then incr file else incr anon);
      !file = Memory.resident_file m && !anon = Memory.resident_anon m)

let suite =
  [
    Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
    Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
    Alcotest.test_case "dirty propagates" `Quick test_dirty_propagates_to_eviction;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "evict one" `Quick test_evict_one;
    Alcotest.test_case "unified shares frames" `Quick test_memory_unified_shares;
    Alcotest.test_case "split isolates pools" `Quick test_memory_split_isolates;
    Alcotest.test_case "invalidate_if" `Quick test_memory_invalidate_if;
    QCheck_alcotest.to_alcotest prop_pool_never_exceeds_capacity;
    QCheck_alcotest.to_alcotest prop_accounting_consistent;
  ]
