(* FCCD: does probe-and-sort actually find the cached data? *)

open Simos
open Graybox_core

let mib = 1024 * 1024

let tiny_linux =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let noisy_linux = Platform.with_noise tiny_linux ~sigma:0.08

let run_proc ?(platform = tiny_linux) body =
  let engine = Engine.create () in
  let k = Kernel.boot ~engine ~platform ~data_disks:2 ~seed:33 () in
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  (k, Option.get !result)

let ok = Gray_apps.Workload.ok_exn

(* FCCD config scaled to the tiny platform: 4 MB access units, 1 MB
   prediction units. *)
let small_config seed =
  let c = Fccd.default_config ~seed () in
  { c with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

let test_plan_covers_file () =
  let _, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/a" ((10 * mib) + 12345);
        let plan = ok (Fccd.probe_file env (small_config 1) ~path:"/d0/a") in
        let extents =
          List.sort (fun a b -> compare a.Fccd.ext_off b.Fccd.ext_off) (Fccd.extents plan)
        in
        let expected_off = ref 0 in
        List.iter
          (fun e ->
            Alcotest.(check int) "contiguous" !expected_off e.Fccd.ext_off;
            expected_off := !expected_off + e.Fccd.ext_len)
          extents;
        Alcotest.(check int) "covers size" ((10 * mib) + 12345) !expected_off)
  in
  ()

let test_alignment_respected () =
  let _, () =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/a" (10 * mib);
        let config = Fccd.with_align (small_config 2) 100 in
        let plan = ok (Fccd.probe_file env config ~path:"/d0/a") in
        List.iter
          (fun e -> Alcotest.(check int) "offset aligned" 0 (e.Fccd.ext_off mod 100))
          (Fccd.extents plan))
  in
  ()

let test_detects_cached_tail () =
  (* 120 MB file on a 64 MB machine: after one linear scan the tail is
     cached; FCCD must rank tail extents first, matching the bitmap. *)
  let _, accuracy =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        Gray_apps.Workload.write_file env "/d0/big" (120 * mib);
        Kernel.flush_file_cache k;
        Gray_apps.Workload.read_file env "/d0/big";
        let plan = ok (Fccd.probe_file env (small_config 3) ~path:"/d0/big") in
        let bitmap =
          match Introspect.cache_bitmap k ~path:"/d0/big" with
          | Ok b -> b
          | Error _ -> Alcotest.fail "bitmap"
        in
        let page = 4096 in
        let cached_fraction e =
          let first = e.Fccd.ext_off / page in
          let last = (e.Fccd.ext_off + e.Fccd.ext_len - 1) / page in
          let hits = ref 0 in
          for p = first to last do
            if bitmap.(p) then incr hits
          done;
          float_of_int !hits /. float_of_int (last - first + 1)
        in
        (* fraction of "first half of the plan" extents that are mostly
           cached: should be near 1 *)
        let extents = Fccd.extents plan in
        let n = List.length extents in
        let truly_cached =
          List.filteri (fun i _ -> i < n / 2) extents
          |> List.filter (fun e -> cached_fraction e > 0.5)
          |> List.length
        in
        float_of_int truly_cached /. float_of_int (n / 2))
  in
  Alcotest.(check bool)
    (Printf.sprintf "plan front is cached (%.2f)" accuracy)
    true (accuracy > 0.85)

let test_works_under_noise () =
  let _, accuracy =
    run_proc ~platform:noisy_linux (fun env ->
        let k = Kernel.kernel_of_env env in
        Gray_apps.Workload.write_file env "/d0/big" (120 * mib);
        Kernel.flush_file_cache k;
        Gray_apps.Workload.read_file env "/d0/big";
        let plan = ok (Fccd.probe_file env (small_config 4) ~path:"/d0/big") in
        let extents = Fccd.extents plan in
        let n = List.length extents in
        let frac = Introspect.cached_fraction k ~path:"/d0/big" in
        let front = List.filteri (fun i _ -> i < int_of_float (frac *. float_of_int n)) extents in
        let bitmap =
          match Introspect.cache_bitmap k ~path:"/d0/big" with
          | Ok b -> b
          | Error _ -> [||]
        in
        let page = 4096 in
        let mostly_cached e =
          let first = e.Fccd.ext_off / page in
          let last = (e.Fccd.ext_off + e.Fccd.ext_len - 1) / page in
          let hits = ref 0 in
          for p = first to last do
            if bitmap.(p) then incr hits
          done;
          2 * !hits > last - first + 1
        in
        let good = List.length (List.filter mostly_cached front) in
        float_of_int good /. float_of_int (max 1 (List.length front)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "noise-robust (%.2f)" accuracy)
    true (accuracy > 0.8)

let test_small_file_not_probed () =
  let _, plan =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/tiny" 1000;
        let k = Kernel.kernel_of_env env in
        Kernel.flush_file_cache k;
        let plan = ok (Fccd.probe_file env (small_config 5) ~path:"/d0/tiny") in
        (* Heisenberg: the tiny file must not have been faulted in *)
        Alcotest.(check int) "still cold" 0 (Introspect.file_cached_pages k ~path:"/d0/tiny");
        plan)
  in
  Alcotest.(check int) "no probes" 0 plan.Fccd.plan_probes;
  match plan.Fccd.plan_extents with
  | [ (_, t) ] -> Alcotest.(check bool) "fake high" true (t >= 1_000_000_000)
  | _ -> Alcotest.fail "expected one extent"

let test_empty_file () =
  let _, plan =
    run_proc (fun env ->
        let fd = ok (Kernel.create_file env "/d0/empty") in
        Kernel.close env fd;
        ok (Fccd.probe_file env (small_config 6) ~path:"/d0/empty"))
  in
  Alcotest.(check int) "no extents" 0 (List.length plan.Fccd.plan_extents)

let test_missing_file () =
  let _, r =
    run_proc (fun env -> Fccd.probe_file env (small_config 7) ~path:"/d0/nope")
  in
  match r with
  | Error (Kernel.Fs_error Fs.Enoent) -> ()
  | _ -> Alcotest.fail "expected Enoent"

let test_order_files_ranks_cached_first () =
  let _, order =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        let paths =
          Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:6
            ~size:(4 * mib)
        in
        Kernel.flush_file_cache k;
        (* warm files 1 and 4 *)
        Gray_apps.Workload.read_file env (List.nth paths 1);
        Gray_apps.Workload.read_file env (List.nth paths 4);
        let ranked = ok (Fccd.order_files env (small_config 8) ~paths) in
        List.map (fun r -> r.Fccd.fr_path) ranked)
  in
  Alcotest.(check (list string)) "cached files first"
    [ "/d0/set/f0001"; "/d0/set/f0004" ]
    (List.filteri (fun i _ -> i < 2) order |> List.sort compare)

let test_gray_scan_beats_linear_when_warm () =
  let _, (linear_warm, gray_warm) =
    run_proc (fun env ->
        let k = Kernel.kernel_of_env env in
        Gray_apps.Workload.write_file env "/d0/big" (120 * mib);
        let config = small_config 9 in
        (* linear steady state *)
        Kernel.flush_file_cache k;
        let linear_time = ref 0 in
        for _ = 1 to 3 do
          linear_time := Gray_apps.Scan.linear env ~path:"/d0/big" ~unit_bytes:(4 * mib)
        done;
        (* gray steady state *)
        Kernel.flush_file_cache k;
        let gray_time = ref 0 in
        for _ = 1 to 3 do
          gray_time := Gray_apps.Scan.gray env config ~path:"/d0/big"
        done;
        (!linear_time, !gray_time))
  in
  Alcotest.(check bool)
    (Printf.sprintf "gray %.2fs < linear %.2fs"
       (Gray_util.Units.sec_of_ns gray_warm)
       (Gray_util.Units.sec_of_ns linear_warm))
    true
    (float_of_int gray_warm < 0.7 *. float_of_int linear_warm)

let test_probe_counts () =
  let _, plan =
    run_proc (fun env ->
        Gray_apps.Workload.write_file env "/d0/a" (8 * mib);
        ok (Fccd.probe_file env (small_config 10) ~path:"/d0/a"))
  in
  (* 8 MB / 4 MB access units = 2 extents; 4 probes each at 1 MB prediction *)
  Alcotest.(check int) "extents" 2 (List.length plan.Fccd.plan_extents);
  Alcotest.(check int) "probes" 8 plan.Fccd.plan_probes

let suite =
  [
    Alcotest.test_case "plan covers file" `Quick test_plan_covers_file;
    Alcotest.test_case "alignment respected" `Quick test_alignment_respected;
    Alcotest.test_case "detects cached tail" `Quick test_detects_cached_tail;
    Alcotest.test_case "works under noise" `Quick test_works_under_noise;
    Alcotest.test_case "small file not probed" `Quick test_small_file_not_probed;
    Alcotest.test_case "empty file" `Quick test_empty_file;
    Alcotest.test_case "missing file" `Quick test_missing_file;
    Alcotest.test_case "order_files ranks cached first" `Quick
      test_order_files_ranks_cached_first;
    Alcotest.test_case "gray scan beats linear" `Quick test_gray_scan_beats_linear_when_warm;
    Alcotest.test_case "probe counts" `Quick test_probe_counts;
  ]
