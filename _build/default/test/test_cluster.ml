(* 2-means threshold clustering: the FCCD/FLDC composition primitive. *)

open Gray_util

let test_clean_split () =
  let xs = [| 1.0; 1.2; 0.9; 1.1; 100.0; 101.0; 99.0 |] in
  let s = Cluster.two_means xs in
  Alcotest.(check int) "low count" 4 s.Cluster.low_count;
  Alcotest.(check int) "high count" 3 s.Cluster.high_count;
  Alcotest.(check bool) "threshold between" true
    (s.Cluster.threshold > 1.2 && s.Cluster.threshold < 99.0);
  Alcotest.(check bool) "well separated" true (Cluster.separation s > 50.0)

let test_all_equal () =
  let s = Cluster.two_means (Array.make 5 7.0) in
  Alcotest.(check int) "one cluster" 5 s.Cluster.low_count;
  Alcotest.(check int) "empty high" 0 s.Cluster.high_count;
  Alcotest.(check (float 1e-9)) "separation 1" 1.0 (Cluster.separation s)

let test_singleton () =
  let s = Cluster.two_means [| 3.0 |] in
  Alcotest.(check int) "single" 1 s.Cluster.low_count

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Cluster.two_means: empty input")
    (fun () -> ignore (Cluster.two_means [||]))

let test_two_points () =
  let s = Cluster.two_means [| 1.0; 10.0 |] in
  Alcotest.(check int) "low" 1 s.Cluster.low_count;
  Alcotest.(check int) "high" 1 s.Cluster.high_count;
  Alcotest.(check (float 1e-9)) "zero within-variance" 0.0 s.Cluster.within_variance

let test_probe_times_scenario () =
  (* Realistic probe-time mix: microsecond cache hits, millisecond disk. *)
  let rng = Rng.create ~seed:17 in
  let hits = Array.init 60 (fun _ -> 2000.0 +. Rng.float rng 2000.0) in
  let misses = Array.init 40 (fun _ -> 6.0e6 +. Rng.float rng 6.0e6) in
  let xs = Array.append hits misses in
  Rng.shuffle rng xs;
  let s = Cluster.two_means xs in
  Alcotest.(check int) "hits" 60 s.Cluster.low_count;
  Alcotest.(check int) "misses" 40 s.Cluster.high_count

let test_log_clustering_resists_outliers () =
  (* the failure mode that motivated two_means_log: cache-vs-disk times
     with one extreme straggler; linear 2-means splits off the outlier,
     log-domain 2-means finds the real gap *)
  let xs =
    Array.concat
      [
        Array.make 50 2_000.0;  (* cache hits, ~2us *)
        Array.make 45 5_000_000.0;  (* disk misses, ~5ms *)
        [| 38_000_000.0 |];  (* one straggler *)
      ]
  in
  let linear = Cluster.two_means xs in
  let log_split = Cluster.two_means_log xs in
  Alcotest.(check int) "linear hijacked by the outlier" 1 linear.Cluster.high_count;
  Alcotest.(check int) "log split finds the gap" 46 log_split.Cluster.high_count;
  Alcotest.(check bool) "threshold in the gap" true
    (log_split.Cluster.threshold > 2_000.0 && log_split.Cluster.threshold < 5_000_000.0)

let test_log_clustering_validates () =
  Alcotest.(check bool) "rejects non-positive" true
    (try
       ignore (Cluster.two_means_log [| 1.0; 0.0 |]);
       false
     with Invalid_argument _ -> true)

let test_k_means_three () =
  let rng = Rng.create ~seed:23 in
  let xs =
    Array.concat
      [
        Array.init 30 (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:0.2);
        Array.init 30 (fun _ -> Rng.gaussian rng ~mu:10.0 ~sigma:0.2);
        Array.init 30 (fun _ -> Rng.gaussian rng ~mu:20.0 ~sigma:0.2);
      ]
  in
  let centroids, assignment = Cluster.k_means rng ~k:3 ~max_iter:50 xs in
  Alcotest.(check int) "k centroids" 3 (Array.length centroids);
  Alcotest.(check bool) "centroid 0 near 0" true (Float.abs centroids.(0) < 1.0);
  Alcotest.(check bool) "centroid 1 near 10" true (Float.abs (centroids.(1) -. 10.0) < 1.0);
  Alcotest.(check bool) "centroid 2 near 20" true (Float.abs (centroids.(2) -. 20.0) < 1.0);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "point %d assigned" i) (i / 30) c)
    assignment

let prop_partition_counts =
  QCheck2.Test.make ~name:"two_means partitions all points" ~count:300
    QCheck2.Gen.(array_size (int_range 1 60) (float_range 0. 1000.))
    (fun xs ->
      let s = Cluster.two_means xs in
      s.Cluster.low_count + s.Cluster.high_count = Array.length xs)

let prop_threshold_separates =
  QCheck2.Test.make ~name:"threshold separates the clusters" ~count:300
    QCheck2.Gen.(array_size (int_range 2 60) (float_range 0. 1000.))
    (fun xs ->
      let s = Cluster.two_means xs in
      s.Cluster.high_count = 0
      || Array.for_all
           (fun x ->
             if x <= s.Cluster.threshold then true else x > s.Cluster.threshold)
           xs
         &&
         let lows = Array.to_list xs |> List.filter (fun x -> x <= s.Cluster.threshold) in
         List.length lows = s.Cluster.low_count)

let prop_low_mean_below_high =
  QCheck2.Test.make ~name:"low mean <= high mean" ~count:300
    QCheck2.Gen.(array_size (int_range 2 60) (float_range 0. 1000.))
    (fun xs ->
      let s = Cluster.two_means xs in
      s.Cluster.high_count = 0 || s.Cluster.low_mean <= s.Cluster.high_mean)

let suite =
  [
    Alcotest.test_case "clean split" `Quick test_clean_split;
    Alcotest.test_case "all equal" `Quick test_all_equal;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "two points" `Quick test_two_points;
    Alcotest.test_case "probe-time scenario" `Quick test_probe_times_scenario;
    Alcotest.test_case "log clustering resists outliers" `Quick
      test_log_clustering_resists_outliers;
    Alcotest.test_case "log clustering validates" `Quick test_log_clustering_validates;
    Alcotest.test_case "k-means three clusters" `Quick test_k_means_three;
    QCheck_alcotest.to_alcotest prop_partition_counts;
    QCheck_alcotest.to_alcotest prop_threshold_separates;
    QCheck_alcotest.to_alcotest prop_low_mean_below_high;
  ]
