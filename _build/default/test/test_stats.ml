(* Statistics: one-shot vs incremental agreement, plus qcheck properties. *)

open Gray_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_empty () =
  let t = Stats.empty () in
  Alcotest.(check int) "count" 0 (Stats.count t);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean t));
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance t)

let test_known_values () =
  let t = Stats.empty () in
  List.iter (Stats.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean t);
  (* population variance is 4; sample variance is 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance t);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value t);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value t);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.total t)

let test_merge_equals_sequential () =
  let rng = Rng.create ~seed:8 in
  let xs = Array.init 1000 (fun _ -> Rng.gaussian rng ~mu:1.0 ~sigma:3.0) in
  let whole = Stats.empty () in
  Array.iter (Stats.add whole) xs;
  let a = Stats.empty () and b = Stats.empty () in
  Array.iteri (fun i x -> Stats.add (if i < 400 then a else b) x) xs;
  let merged = Stats.merge a b in
  Alcotest.(check bool) "mean" true (feq ~eps:1e-9 (Stats.mean whole) (Stats.mean merged));
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-6 (Stats.variance whole) (Stats.variance merged));
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged)

let test_median_odd_even () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Stats.median_of [| 5.0; 3.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median_of [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentiles () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile_of xs ~p:0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile_of xs ~p:0.5);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile_of xs ~p:1.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile_of xs ~p:0.95)

let test_outlier_rejection () =
  let xs = Array.append (Array.make 99 10.0) [| 1000.0 |] in
  let kept = Stats.discard_outliers xs ~k:2.0 in
  Alcotest.(check int) "dropped the outlier" 99 (Array.length kept);
  Alcotest.(check bool) "all tens" true (Array.for_all (fun x -> x = 10.0) kept)

let test_outliers_zero_stddev () =
  let xs = Array.make 10 5.0 in
  Alcotest.(check int) "no drop" 10 (Array.length (Stats.discard_outliers xs ~k:1.0))

(* qcheck properties *)

let prop_mean_bounded =
  QCheck2.Test.make ~name:"mean within min..max" ~count:200
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let t = Stats.empty () in
      Array.iter (Stats.add t) xs;
      Stats.mean t >= Stats.min_value t -. 1e-9
      && Stats.mean t <= Stats.max_value t +. 1e-9)

let prop_variance_nonneg =
  QCheck2.Test.make ~name:"variance non-negative" ~count:200
    QCheck2.Gen.(array_size (int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let t = Stats.empty () in
      Array.iter (Stats.add t) xs;
      Stats.variance t >= -1e-9)

let prop_merge_count =
  QCheck2.Test.make ~name:"merge adds counts" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 30) (float_range (-10.) 10.))
        (array_size (int_range 0 30) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let a = Stats.empty () and b = Stats.empty () in
      Array.iter (Stats.add a) xs;
      Array.iter (Stats.add b) ys;
      Stats.count (Stats.merge a b) = Array.length xs + Array.length ys)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      Stats.percentile_of xs ~p:0.25 <= Stats.percentile_of xs ~p:0.75 +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "merge equals sequential" `Quick test_merge_equals_sequential;
    Alcotest.test_case "median odd/even" `Quick test_median_odd_even;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "outlier rejection" `Quick test_outlier_rejection;
    Alcotest.test_case "outliers zero stddev" `Quick test_outliers_zero_stddev;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_merge_count;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
