(* Figure 7: Performance of the Sort with MAC.

   Four competing copies of fastsort, each sorting 5 million 100-byte
   records (477 MB), phase 1 only.  Each process reads from and writes to
   its own disk; the fifth disk holds swap.  Static pass sizes are swept
   (50..290 MB); gb-fastsort uses MAC with a 100 MB minimum.  The paper's
   result: performance degrades catastrophically once four passes no
   longer fit in 830 MB (~200 MB each); gb-fastsort settles near the best
   static size (~150 MB) without ever paging during its phases, paying
   gb_alloc overhead instead.

   One task per configuration (five static sizes + MAC): six independent
   kernels, each simulating its own four competing sorts. *)

open Simos
open Graybox_core
open Bench_common

let records_bytes = 500_000_000 (* 5 million 100-byte records, ~477 MB *)

type outcome = {
  o_label : string;
  o_avg_total : float;
  o_read : float;
  o_sort : float;
  o_write : float;
  o_overhead : float;
  o_page_ins : int;
  o_avg_pass_mib : float;
}

let experiment ~label ~policy () =
  let k = boot ~data_disks:4 () in
  let results = Array.make 4 None in
  (* four sorts, one per disk; input pre-created outside the timed region *)
  for i = 0 to 3 do
    Kernel.spawn k ~name:(Printf.sprintf "mkinput%d" i) (fun env ->
        Gray_apps.Workload.write_file env
          (Printf.sprintf "/d%d/input" i)
          records_bytes)
  done;
  Kernel.run k;
  Kernel.flush_file_cache k;
  Kernel.drop_all_memory k;
  Kernel.reset_counters k;
  for i = 0 to 3 do
    Kernel.spawn k ~name:(Printf.sprintf "sort%d" i) (fun env ->
        let config =
          Gray_apps.Fastsort.default_config
            ~input:(Printf.sprintf "/d%d/input" i)
            ~run_dir:(Printf.sprintf "/d%d/runs" i)
        in
        let times =
          Gray_apps.Fastsort.run_phase1 env config ~policy ~total_bytes:records_bytes
        in
        results.(i) <- Some times)
  done;
  Kernel.run k;
  let counters = Kernel.counters k in
  let times = Array.to_list results |> List.filter_map Fun.id in
  let avg f = Gray_util.Stats.mean_of (Array.of_list (List.map f times)) in
  let all_passes = List.concat_map (fun t -> t.Gray_apps.Fastsort.pt_pass_bytes) times in
  {
    o_label = label;
    o_avg_total = avg (fun t -> float_of_int (Gray_apps.Fastsort.total_ns t)) /. 1e9;
    o_read = avg (fun t -> float_of_int t.Gray_apps.Fastsort.pt_read) /. 1e9;
    o_sort = avg (fun t -> float_of_int t.Gray_apps.Fastsort.pt_sort) /. 1e9;
    o_write = avg (fun t -> float_of_int t.Gray_apps.Fastsort.pt_write) /. 1e9;
    o_overhead = avg (fun t -> float_of_int t.Gray_apps.Fastsort.pt_overhead) /. 1e9;
    o_page_ins = counters.Kernel.c_page_ins;
    o_avg_pass_mib =
      Gray_util.Stats.mean_of
        (Array.of_list (List.map (fun b -> float_of_int b /. float_of_int mib) all_passes));
  }

let static_sizes = [ 50; 100; 150; 200; 290 ]

let plan () =
  let static_cells =
    List.map
      (fun size_mib ->
        let label = Printf.sprintf "static %d MB" size_mib in
        task
          ~label:(Printf.sprintf "fig7[%s]" label)
          (experiment ~label ~policy:(Gray_apps.Fastsort.Static_pass (size_mib * mib))))
      static_sizes
  in
  let gb_task, gb_get =
    let mac = Mac.default_config () in
    task ~label:"fig7[gb-fastsort]"
      (experiment ~label:"gb-fastsort (MAC)"
         ~policy:
           (Gray_apps.Fastsort.Mac_adaptive
              { mac; min_bytes = 100 * mib; retry_ns = 250_000_000 }))
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 7: Four Competing fastsorts (477 MB each), Static Pass Sizes vs MAC";
    let outcomes = List.map (fun (_, get) -> get ()) static_cells in
    let gb = gb_get () in
    let table =
      Gray_util.Table.create ~title:"phase-1 time per process (average of 4)"
        ~columns:
          [ "configuration"; "total"; "read"; "sort"; "write"; "overhead";
            "page-ins"; "avg pass" ]
    in
    List.iter
      (fun o ->
        Gray_util.Table.add_row table
          [
            o.o_label;
            Printf.sprintf "%7.1f s" o.o_avg_total;
            Printf.sprintf "%6.1f s" o.o_read;
            Printf.sprintf "%6.1f s" o.o_sort;
            Printf.sprintf "%6.1f s" o.o_write;
            Printf.sprintf "%6.1f s" o.o_overhead;
            string_of_int o.o_page_ins;
            Printf.sprintf "%.0f MB" o.o_avg_pass_mib;
          ])
      (outcomes @ [ gb ]);
    Buffer.add_string b (Gray_util.Table.render table);
    note b "expected shape: static degrades sharply past ~150 MB passes (4x200 MB > 830 MB);";
    note b "gb-fastsort's average pass lands near the best static size, no paging in its phases,";
    note b "but pays probe+wait overhead (paper: ~54%% over best static)";
    let best_static =
      List.fold_left (fun acc o -> min acc o.o_avg_total) infinity outcomes
    in
    let worst_static =
      List.fold_left (fun acc o -> max acc o.o_avg_total) 0.0 outcomes
    in
    {
      rd_output = Buffer.contents b;
      rd_figures =
        List.map (fun o -> figure (Printf.sprintf "total_s[%s]" o.o_label) o.o_avg_total)
          (outcomes @ [ gb ])
        @ [ figure "gb_avg_pass_mib" gb.o_avg_pass_mib ];
      rd_checks =
        [
          check "oversubscribed static sizes degrade sharply"
            (worst_static > 1.5 *. best_static);
          (* MAC's detection pages by design (it touches memory until it
             hurts), so "no paging" is not the claim — staying near the
             best static size is (paper: ~54% over it) *)
          check "gb-fastsort within 2x of the best static size"
            (gb.o_avg_total < 2.0 *. best_static);
          check "gb-fastsort beats the worst static size" (gb.o_avg_total < worst_static);
        ];
    }
  in
  { p_tasks = List.map fst static_cells @ [ gb_task ]; p_render = render }
