(* Ablations beyond the paper's figures:

   1. FCCD accuracy vs replacement policy — how much of FCCD's benefit
      survives when the gray-box "LRU-like replacement" assumption is
      stretched (DESIGN.md calls this out; Section 4.1.4 discusses it for
      Solaris).
   2. FCCD accuracy vs timing noise — how far the statistics carry when
      the covert channel gets dirty.
   3. MAC increment strategy — conservative doubling vs fixed-step vs
      aggressive, measuring probe overhead against grant quality.

   One task per table row (policy, sigma, or strategy): every row is an
   independent kernel, so the three ablations fan out fully. *)

open Simos
open Graybox_core
open Bench_common

let file_bytes = 1200 * mib

let fccd seed =
  { (Fccd.default_config ~seed ()) with Fccd.access_unit = 20 * mib; prediction_unit = 5 * mib }

(* plan-vs-bitmap agreement: fraction of the plan's first (cached_count)
   extents that are really mostly-cached *)
let plan_accuracy k plan =
  let bitmap =
    match Introspect.cache_bitmap k ~path:"/d0/corpus" with
    | Ok b -> b
    | Error _ -> [||]
  in
  let page = 4096 in
  let mostly_cached (e : Fccd.extent) =
    let first = e.Fccd.ext_off / page in
    let last = (e.Fccd.ext_off + e.Fccd.ext_len - 1) / page in
    let hits = ref 0 in
    for p = first to last do
      if p < Array.length bitmap && bitmap.(p) then incr hits
    done;
    2 * !hits > last - first + 1
  in
  let extents = Fccd.extents plan in
  let cached_total = List.length (List.filter mostly_cached extents) in
  if cached_total = 0 then 1.0
  else begin
    let front = List.filteri (fun i _ -> i < cached_total) extents in
    float_of_int (List.length (List.filter mostly_cached front))
    /. float_of_int cached_total
  end

let fccd_under ~platform ~seed =
  let k = boot ~platform () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/corpus" file_bytes;
      Kernel.flush_file_cache k;
      (* warm with more data than fits, in scattered 20 MB pieces, so the
         replacement policy actually has to choose victims *)
      let rng = Gray_util.Rng.create ~seed in
      let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/corpus") in
      for _ = 1 to file_bytes / (20 * mib) * 3 / 2 do
        let off = Gray_util.Rng.int rng (file_bytes / (20 * mib)) * (20 * mib) in
        ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len:(20 * mib)))
      done;
      Kernel.close env fd;
      let plan = Gray_apps.Workload.ok_exn (Fccd.probe_file env (fccd seed) ~path:"/d0/corpus") in
      plan_accuracy k plan)

let scan_speedup ~platform ~seed =
  let k = boot ~platform () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/corpus" file_bytes;
      Kernel.flush_file_cache k;
      let linear = ref 0 and gray = ref 0 in
      for _ = 1 to 3 do
        linear := Gray_apps.Scan.linear env ~path:"/d0/corpus" ~unit_bytes:(20 * mib)
      done;
      Kernel.flush_file_cache k;
      for _ = 1 to 3 do
        gray := Gray_apps.Scan.gray env (fccd seed) ~path:"/d0/corpus"
      done;
      float_of_int !linear /. float_of_int !gray)

let mac_strategy ~initial ~maxi () =
  let k = boot () in
  let stop = ref false and held = ref false in
  Kernel.spawn k ~name:"competitor" (fun env ->
      let pages = 300 * mib / 4096 in
      let r = Kernel.valloc env ~pages in
      ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
      held := true;
      while not !stop do
        let slice = 4096 in
        let off = ref 0 in
        while !off < pages do
          ignore (Kernel.touch_pages env r ~first:!off ~count:(min slice (pages - !off)));
          off := !off + slice;
          Engine.delay 500_000
        done
      done;
      Kernel.vfree env r);
  let granted = ref 0 and stats = ref None in
  Kernel.spawn k ~name:"mac" (fun env ->
      while not !held do
        Engine.delay 1_000_000
      done;
      let config =
        { (Mac.default_config ()) with Mac.initial_increment = initial;
          max_increment = maxi }
      in
      (match Mac.gb_alloc env config ~min:(50 * mib) ~max:(830 * mib) ~multiple:100 with
      | Some a ->
        granted := Mac.bytes a;
        Mac.gb_free env a
      | None -> ());
      stats := Some (Mac.last_stats ());
      stop := true);
  Kernel.run k;
  (!granted, !stats)

let strategies =
  [
    ("conservative 8->64 MB (paper)", 8 * mib, 64 * mib);
    ("fixed 8 MB", 8 * mib, 8 * mib);
    ("fixed 64 MB", 64 * mib, 64 * mib);
    ("aggressive 64->256 MB", 64 * mib, 256 * mib);
  ]

let sigmas = [ 0.0; 0.05; 0.1; 0.2; 0.4; 0.8 ]

let plan () =
  let policy_cells =
    List.map
      (fun name ->
        let platform =
          Platform.with_file_policy Platform.linux_2_2 (Replacement.of_name name)
        in
        let t, get =
          task ~label:(Printf.sprintf "ablation[policy=%s]" name) (fun () ->
              (fccd_under ~platform ~seed:51, scan_speedup ~platform ~seed:52))
        in
        (name, t, get))
      Replacement.all_names
  in
  let noise_cells =
    List.map
      (fun sigma ->
        let platform = Platform.with_noise Platform.linux_2_2 ~sigma in
        let t, get =
          task ~label:(Printf.sprintf "ablation[sigma=%.2f]" sigma) (fun () ->
              fccd_under ~platform ~seed:53)
        in
        (sigma, t, get))
      sigmas
  in
  let mac_cells =
    List.map
      (fun (label, initial, maxi) ->
        let t, get =
          task ~label:(Printf.sprintf "ablation[mac=%s]" label) (mac_strategy ~initial ~maxi)
        in
        (label, t, get))
      strategies
  in
  let render () =
    let b = Buffer.create 2048 in
    let figures = ref [] and checks = ref [] in
    header b "Ablation A: FCCD vs replacement policy (plan accuracy and warm-scan speedup)";
    let ta =
      Gray_util.Table.create
        ~title:"probing stays accurate on every policy; the exploitable benefit varies"
        ~columns:[ "file-cache policy"; "plan accuracy"; "warm-scan speedup" ]
    in
    List.iter
      (fun (name, _, get) ->
        let acc, speedup = get () in
        figures :=
          figure (Printf.sprintf "fccd_accuracy[%s]" name) acc
          :: figure (Printf.sprintf "scan_speedup[%s]" name) speedup
          :: !figures;
        checks :=
          check (Printf.sprintf "plan accuracy high under %s" name) (acc >= 0.8) :: !checks;
        Gray_util.Table.add_row ta
          [ name; Printf.sprintf "%.2f" acc; Printf.sprintf "%.1fx" speedup ])
      policy_cells;
    Buffer.add_string b (Gray_util.Table.render ta);
    note b "probing measures the cache as it is, so accuracy is policy-independent;";
    note b "the speedup collapses where repeated scans are already cheap (mru-sticky: the";
    note b "Solaris effect of Fig. 4) or where the cache state defeats reordering";
    header b "Ablation B: FCCD plan accuracy vs timing noise";
    let tb =
      Gray_util.Table.create ~title:"accuracy under log-normal service-time noise"
        ~columns:[ "sigma"; "plan accuracy" ]
    in
    List.iter
      (fun (sigma, _, get) ->
        let acc = get () in
        figures := figure (Printf.sprintf "fccd_accuracy[sigma=%.2f]" sigma) acc :: !figures;
        if sigma <= 0.1 then
          checks :=
            check (Printf.sprintf "plan accuracy survives sigma=%.2f" sigma) (acc >= 0.8)
            :: !checks;
        Gray_util.Table.add_row tb
          [ Printf.sprintf "%.2f" sigma; Printf.sprintf "%.2f" acc ])
      noise_cells;
    Buffer.add_string b (Gray_util.Table.render tb);
    note b "expected: robust well past the default 0.05 — cache/disk are orders of magnitude apart";
    header b "Ablation C: MAC increment strategy (probe cost vs grant under a 300 MB competitor)";
    let tc =
      Gray_util.Table.create ~title:""
        ~columns:[ "strategy"; "granted"; "probe time"; "steps"; "backoffs" ]
    in
    List.iter
      (fun (label, _, get) ->
        match get () with
        | _, None -> ()
        | granted, Some s ->
          figures :=
            figure (Printf.sprintf "mac_granted_mib[%s]" label)
              (float_of_int (granted / mib))
            :: !figures;
          Gray_util.Table.add_row tc
            [
              label;
              Printf.sprintf "%d MB" (granted / mib);
              Printf.sprintf "%.2f s" (float_of_int s.Mac.s_probe_ns /. 1e9);
              string_of_int s.Mac.s_steps;
              string_of_int s.Mac.s_backoffs;
            ])
      mac_cells;
    Buffer.add_string b (Gray_util.Table.render tc);
    note b "with stop-at-first-failure semantics the strategies trade probe steps for grant";
    note b "resolution: fixed-small needs many steps; the paper's doubling is the compromise";
    { rd_output = Buffer.contents b; rd_figures = List.rev !figures; rd_checks = List.rev !checks }
  in
  {
    p_tasks =
      List.map (fun (_, t, _) -> t) policy_cells
      @ List.map (fun (_, t, _) -> t) noise_cells
      @ List.map (fun (_, t, _) -> t) mac_cells;
    p_render = render;
  }
