(* Multi-tenant fleet plane: thousands of contending processes on a
   proportional-share scheduler kernel, with fleets of concurrent ICLs
   on top.

   Four tracks:

   - scale: mixed-profile fleets (scanner / hot-set / zipf / idle from
     Gray_apps.Workload) at N = 64 / 256 / 1024 processes on one
     scheduler kernel, with mid-run ledger reaping — the structural
     claim that the accounting and scheduling planes stay bounded by
     concurrent, not cumulative, process count.

   - mac-fleet (the headline): a 1024-process fleet churning the page
     cache while 4 concurrent MACs run synchronized admission rounds.
     The figure is Jain's fairness index over the per-round grants — the
     TCP-style convergence question (Section 4.3's own analogy): the
     MACs start under full fleet contention and the fleet drains
     mid-experiment, so the trajectory shows both regimes.

   - mac-pathological: the same 4 MACs on a tiny machine with
     zero-headroom, aggressive-increment configs, where the group
     overshoot (racers x max_increment) exceeds usable memory every
     round — the oscillation regime the convergence test guards against.

   - fccd-fleet: K = 1 / 2 / 4 / 8 concurrent FCCD probers ranking the
     same file population.  Every probe fetches the pages it touches
     (the Heisenberg effect), so concurrent probers pollute the cache
     state the others are measuring; the figure is mean Spearman rho vs
     the pre-probe white-box truth, degrading as K grows.

   - related-at-scale: cosched at 64 nodes and Manners over a long
     horizon — the Table-1 simulations finally at fleet scale.

   Every (variant, seed) trial is its own kernel, so results are
   byte-identical at any -j.  Not in the default set: fleets are a
   regime study, not a paper figure. *)

open Simos
open Graybox_core
open Bench_common

let sec = 1_000_000_000

(* 16 MiB usable: small enough that a ~12 MiB file population plus the
   MACs' probe allocations genuinely contend for the page cache. *)
let fleet_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 48; kernel_reserved_mib = 32 }
    ~sigma:0.05

(* 8 MiB usable for the pathological MAC track: 4 racers x 4 MiB
   max_increment overshoots the whole machine every round. *)
let patho_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 24; kernel_reserved_mib = 16 }
    ~sigma:0.05

let pop_files = 48
let pop_file_kb = 256

(* Per-member profiles must be known at spawn time (members are named by
   behaviour so the ledger aggregates to a handful of rows), so they are
   drawn from a dedicated stream rather than each member's private RNG. *)
let draw_profiles ~procs ~seed =
  let rng = Gray_util.Rng.create ~seed:(seed + 1) in
  Array.init procs (fun _ -> Gray_apps.Workload.draw_profile rng)

let member_name profiles i =
  "fleet." ^ Gray_apps.Workload.profile_name profiles.(i)

let spawn_population k ~paths_cell =
  Kernel.spawn k ~name:"fleet.setup" (fun env ->
      let paths =
        Gray_apps.Workload.fleet_population env ~dir:"/d0/pop" ~files:pop_files
          ~file_kb:pop_file_kb
      in
      (* members start against a cold cache; what is resident afterwards
         is whatever the fleet itself made resident *)
      Kernel.flush_file_cache k;
      paths_cell := paths)

(* ---- scale: mixed fleets with mid-run reaping ---- *)

type scale_obs = {
  so_live_rows : int;  (* ledger rows still live after the run *)
  so_reaped : int;  (* processes folded away by cadence reaps *)
  so_cpu_exact : bool;  (* sum of per-pid cpu_ns = Resource busy_ns *)
  so_slices : int;  (* scheduler slices granted *)
}

let scale_trial ~procs ~seed =
  let d =
    {
      Fleet.default_descriptor with
      Fleet.fd_procs = procs;
      fd_seed = seed;
      fd_stagger_ns = 20_000;
      fd_reap_every = 64;
    }
  in
  let k =
    boot ~platform:fleet_platform ~data_disks:1 ~seed
      ~sched:(Fleet.sched_config d) ~procs:(procs + 8) ()
  in
  let paths_cell = ref [||] in
  spawn_population k ~paths_cell;
  Kernel.run k;
  let profiles = draw_profiles ~procs ~seed in
  Fleet.spawn_fleet k d ~name:(member_name profiles)
    ~body:(fun ~index ~rng env ->
      Gray_apps.Workload.run_profile env rng profiles.(index)
        ~paths:!paths_cell ~rounds:2)
    ();
  Kernel.run k;
  let slices, cpu_exact =
    match Kernel.sched k with
    | Some s ->
      (* every compute burst flowed through the run queue, so the grant
         ledger must equal the CPU resource's busy time to the ns *)
      (Sched.slices s, Sched.granted_ns s = Kernel.cpu_busy_ns k)
    | None -> (0, false)
  in
  let live_rows, reaped =
    match Kernel.account k with
    | None -> (0, 0)
    | Some a -> (List.length (Account.rows a), Account.reaped_procs a)
  in
  {
    so_live_rows = live_rows;
    so_reaped = reaped;
    so_cpu_exact = cpu_exact;
    so_slices = slices;
  }

(* ---- the headline: 1024-process fleet + 4 concurrent MACs ---- *)

let headline_macs = 4
let headline_rounds = 12
let headline_round_ns = sec / 2
let headline_horizon_ns = 3 * sec

let headline_trial ~procs ~seed =
  let d =
    {
      Fleet.default_descriptor with
      Fleet.fd_procs = procs;
      fd_seed = seed;
      fd_stagger_ns = 20_000;
      fd_reap_every = 128;
    }
  in
  let k =
    boot ~platform:fleet_platform ~data_disks:1 ~seed
      ~sched:(Fleet.sched_config d) ~procs:(procs + 16) ()
  in
  let paths_cell = ref [||] in
  spawn_population k ~paths_cell;
  let profiles = draw_profiles ~procs ~seed in
  Fleet.spawn_fleet k d ~name:(member_name profiles)
    ~body:(fun ~index ~rng env ->
      while !paths_cell = [||] do
        Engine.delay (sec / 50)
      done;
      (* keep contending until the horizon so the MACs' early rounds run
         under full fleet pressure and the late ones on a draining one *)
      while Engine.now (Kernel.engine k) < headline_horizon_ns do
        Gray_apps.Workload.run_profile env rng profiles.(index)
          ~paths:!paths_cell ~rounds:1;
        Engine.delay (10_000_000 + Gray_util.Rng.int rng 10_000_000)
      done)
    ();
  (* Polite fair-share MACs: increments sized so the group overshoot
     (4 racers x 2 MiB) stays well under the 16 MiB machine, and each
     MAC asks for at most its 1/4 share — once the fleet drains the
     whole group can reach its cap and the fairness index settles.  The
     pathological track below inverts both choices (greedy whole-machine
     max, overshooting increments). *)
  let cfg =
    {
      (Mac.default_config ()) with
      Mac.initial_increment = 1 * mib;
      max_increment = 2 * mib;
    }
  in
  let r =
    Fleet.mac_fleet k ~config:cfg
      ~max_bytes:(Platform.usable_bytes fleet_platform / headline_macs)
      ~macs:headline_macs ~rounds:headline_rounds
      ~round_ns:headline_round_ns ()
  in
  let live_rows, reaped, blame =
    match Kernel.account k with
    | None -> (0, 0, false)
    | Some a ->
      ( List.length (Account.rows a),
        Account.reaped_procs a,
        Account.export_blame_nonempty (Account.export a) )
  in
  (r, live_rows, reaped, blame)

(* ---- pathological MAC fleet: forced oscillation ---- *)

let patho_rounds = 12

let patho_trial ~seed =
  let k =
    boot ~platform:patho_platform ~data_disks:1 ~seed
      ~sched:{ Sched.sd_quantum_ns = 1_000_000 } ()
  in
  let cfg =
    {
      (Mac.default_config ()) with
      Mac.initial_increment = 2 * mib;
      max_increment = 4 * mib;
      headroom = 0.0;
    }
  in
  Fleet.mac_fleet k ~config:cfg ~macs:4 ~rounds:patho_rounds ~round_ns:(sec / 2) ()

(* ---- FCCD pollution: rank accuracy vs concurrent probers ---- *)

(* The population exceeds the 8 MiB cache: the warmed half barely fits,
   so every page a probe of the cold half fetches evicts a warmed page.
   One prober's fetches are mild; eight probers' rewrite the residency
   picture the shared truth snapshot was taken from. *)
let fccd_files = 24
let fccd_file_kb = 512

let fccd_trial ~probers ~seed =
  let k =
    boot ~platform:patho_platform ~data_disks:1 ~seed
      ~sched:Sched.default_config ()
  in
  let paths_cell = ref [] in
  Kernel.spawn k ~name:"fccd.setup" (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/pop" ~prefix:"f"
          ~count:fccd_files ~size:(fccd_file_kb * 1024)
      in
      Kernel.flush_file_cache k;
      (* Graded warm: each file is cached to a distinct fraction, so the
         ground-truth ranking is tie-free.  (A binary warm/cold split
         caps Spearman at the two-tied-group ceiling ~0.87 and survives
         any pollution that keeps the groups ordered — the gradient is
         what partial eviction can visibly scramble.)  Warmth is
         assigned by a seeded permutation, NOT by path order: probers
         walk paths in order, so an aligned gradient would measure the
         warmest files before the fleet's fetches evict anything.  The
         ~6.4 MiB warm total fits the 8 MiB cache solo; each prober adds
         ~1.5 MiB of probe fetches, so larger fleets evict warm pages
         before the files holding them are probed. *)
      let perm = Array.init fccd_files (fun i -> i) in
      Gray_util.Rng.shuffle (Gray_util.Rng.create ~seed:(seed + 7)) perm;
      List.iteri
        (fun i p ->
          let bytes =
            (fccd_files - perm.(i)) * fccd_file_kb * 1024 / fccd_files
          in
          Gray_apps.Workload.read_prefix env p ~bytes)
        paths;
      paths_cell := paths);
  Kernel.run k;
  (* fine prediction unit: 16 probes (page fetches) per file, so each
     probe pass measurably pollutes what the others are measuring *)
  let config i =
    {
      (Fccd.default_config ~seed:(seed + i) ()) with
      Fccd.prediction_unit = 32 * 1024;
    }
  in
  let r =
    Fleet.fccd_fleet k ~config ~shuffle:true ~probers ~paths:!paths_cell
      ~stagger_ns:200_000 ~seed ()
  in
  r.Fleet.fc_mean_rho

(* ---- related systems at fleet scale ---- *)

let related_trial () =
  let cos ~background policy =
    let rng = Gray_util.Rng.create ~seed:11 in
    Gray_related.Cosched.simulate rng ~nodes:64 ~background ~granularity_us:100
      ~barriers:200 ~quantum_us:10_000 ~ctx_switch_us:50 ~policy
  in
  let cos_block = cos ~background:1 Gray_related.Cosched.Block_immediately in
  let cos_two = cos ~background:1 (Gray_related.Cosched.Two_phase 4_000) in
  let cos_two_busy = cos ~background:4 (Gray_related.Cosched.Two_phase 4_000) in
  let man naive =
    let rng = Gray_util.Rng.create ~seed:12 in
    Gray_related.Manners.simulate rng Gray_related.Manners.default_config
      ~busy_us:500_000 ~idle_us:500_000 ~phases:120 ~naive
  in
  (cos_block, cos_two, cos_two_busy, man true, man false)

(* ---- plan ---- *)

let mean xs = Gray_util.Stats.mean_of (Array.of_list xs)

let round_means n rows =
  Array.init n (fun r -> mean (List.map (fun a -> a.(r)) rows))

let plan_sized ~scale_sizes ~headline_procs ~fccd_probers ~trials () =
  set_trials trials;
  let seeds = trial_seeds ~base:9100 (Bench_common.trials ()) in
  let scale_ts, scale_get =
    tasks
      ~label:(fun n -> Printf.sprintf "fleet[scale=%d]" n)
      scale_sizes
      (fun n -> scale_trial ~procs:n ~seed:(9000 + n))
  in
  let head_ts, head_get =
    run_trials ~label:"fleet[mac-fleet]" ~seeds (fun ~seed ->
        headline_trial ~procs:headline_procs ~seed)
  in
  let patho_ts, patho_get =
    run_trials ~label:"fleet[mac-pathological]" ~seeds (fun ~seed ->
        patho_trial ~seed)
  in
  let fccd_ts, fccd_get =
    tasks
      ~label:(fun p -> Printf.sprintf "fleet[fccd=%d]" p)
      fccd_probers
      (fun probers ->
        List.map (fun seed -> fccd_trial ~probers ~seed) seeds)
  in
  let rel_t, rel_get = task ~label:"fleet[related]" related_trial in
  let render () =
    let b = Buffer.create 4096 in
    header b "Multi-tenant fleet plane (scheduler kernel, ICL fleets)";
    note b "scale: mixed-profile fleets with mid-run ledger reaping";
    note b "mac-fleet: %d-proc fleet + %d MACs, Jain fairness per round"
      headline_procs headline_macs;
    note b "fccd-fleet: mean Spearman rho vs pre-probe truth, per fleet size";
    note b "%d seeded trials per MAC variant" (List.length seeds);
    let figures = ref [] and checks = ref [] in
    let fig name v = figures := figure name v :: !figures in
    let chk name ok = checks := check name ok :: !checks in
    (* scale *)
    Printf.bprintf b "  %-10s %12s %12s %14s %10s\n" "procs" "live-rows"
      "reaped" "cpu-exact" "slices";
    List.iter2
      (fun n so ->
        Printf.bprintf b "  %-10d %12d %12d %14b %10d\n" n so.so_live_rows
          so.so_reaped so.so_cpu_exact so.so_slices;
        fig (Printf.sprintf "scale_live_rows[N=%d]" n)
          (float_of_int so.so_live_rows);
        fig (Printf.sprintf "scale_reaped[N=%d]" n) (float_of_int so.so_reaped);
        chk
          (Printf.sprintf "N=%d: ledger bounded by reap cadence (< 80 live rows)" n)
          (so.so_live_rows < 80);
        chk
          (Printf.sprintf "N=%d: scheduler sliced the contention" n)
          (so.so_slices > n);
        chk (Printf.sprintf "N=%d: per-pid cpu-ns sums exactly" n) so.so_cpu_exact)
      scale_sizes (scale_get ());
    (* headline MAC fleet *)
    let head = head_get () in
    let fair =
      round_means headline_rounds
        (List.map (fun (r, _, _, _) -> r.Fleet.mr_fairness) head)
    in
    Printf.bprintf b "  mac-fleet fairness over time (%d MACs, %d-proc fleet):\n"
      headline_macs headline_procs;
    Array.iteri
      (fun r f ->
        Printf.bprintf b "    round %-2d  J = %.3f\n" r f;
        fig (Printf.sprintf "mac_fairness[r=%d]" r) f)
      fair;
    let late =
      mean (List.map (fun (r, _, _, _) -> r.Fleet.mr_late_fairness) head)
    in
    let reversals =
      mean (List.map (fun (r, _, _, _) -> r.Fleet.mr_reversal_rate) head)
    in
    fig "mac_late_fairness" late;
    fig "mac_reversal_rate" reversals;
    Printf.bprintf b "    late fairness %.3f, grant-delta reversal rate %.3f\n"
      late reversals;
    let live = mean (List.map (fun (_, l, _, _) -> float_of_int l) head) in
    let reaped = mean (List.map (fun (_, _, r, _) -> float_of_int r) head) in
    let blamed = List.for_all (fun (_, _, _, bl) -> bl) head in
    fig "mac_fleet_live_rows" live;
    fig "mac_fleet_reaped" reaped;
    chk "mac-fleet: fairness settles (late J >= 0.9)" (late >= 0.9);
    chk "mac-fleet: fleet rows reaped mid-run" (reaped > 0.0);
    chk "mac-fleet: eviction blame recorded" blamed;
    (* pathological *)
    let patho = patho_get () in
    let p_rev = mean (List.map (fun r -> r.Fleet.mr_reversal_rate) patho) in
    let p_swing = mean (List.map (fun r -> r.Fleet.mr_late_swing) patho) in
    let p_late = mean (List.map (fun r -> r.Fleet.mr_late_fairness) patho) in
    Printf.bprintf b
      "  mac-pathological: reversal rate %.3f, late swing %.3f, late J %.3f\n"
      p_rev p_swing p_late;
    fig "patho_reversal_rate" p_rev;
    fig "patho_late_swing" p_swing;
    chk "pathological MACs oscillate (reversals + swing)"
      (p_rev >= 0.3 && p_swing >= 0.2);
    (* fccd pollution *)
    Printf.bprintf b "  fccd-fleet rank accuracy vs fleet size:\n";
    let rhos =
      List.map2
        (fun p per_seed ->
          let rho = mean per_seed in
          Printf.bprintf b "    K=%-3d mean rho = %.3f\n" p rho;
          fig (Printf.sprintf "fccd_rho[K=%d]" p) rho;
          rho)
        fccd_probers (fccd_get ())
    in
    (match (rhos, List.rev rhos) with
    | solo :: _, most :: _ when List.length rhos > 1 ->
      chk "solo FCCD ranks accurately (rho >= 0.7)" (solo >= 0.7);
      chk "cross-probe pollution degrades ranking" (most <= solo -. 0.1)
    | _ -> ());
    (* related at scale *)
    let cos_block, cos_two, cos_two_busy, man_naive, man_polite = rel_get () in
    Printf.bprintf b
      "  cosched @64 nodes: slowdown block=%.2f two-phase=%.2f (bg=4: %.2f)\n"
      cos_block.Gray_related.Cosched.c_slowdown
      cos_two.Gray_related.Cosched.c_slowdown
      cos_two_busy.Gray_related.Cosched.c_slowdown;
    Printf.bprintf b
      "  manners @120 phases: interference naive=%.2f polite=%.2f, idle-use %.2f\n"
      man_naive.Gray_related.Manners.m_foreground_interference
      man_polite.Gray_related.Manners.m_foreground_interference
      man_polite.Gray_related.Manners.m_idle_utilization;
    fig "cosched64_two_phase_slowdown" cos_two.Gray_related.Cosched.c_slowdown;
    fig "manners120_polite_interference"
      man_polite.Gray_related.Manners.m_foreground_interference;
    chk "two-phase beats immediate blocking at 64 nodes"
      (cos_two.Gray_related.Cosched.c_slowdown
      < cos_block.Gray_related.Cosched.c_slowdown);
    chk "manners regulation stays polite over the long horizon"
      (man_polite.Gray_related.Manners.m_foreground_interference
      < man_naive.Gray_related.Manners.m_foreground_interference);
    {
      rd_output = Buffer.contents b;
      rd_figures = List.rev !figures;
      rd_checks = List.rev !checks;
    }
  in
  {
    p_tasks = scale_ts @ head_ts @ patho_ts @ fccd_ts @ [ rel_t ];
    p_render = render;
  }

let plan () =
  let t = Bench_common.trials () in
  plan_sized ~scale_sizes:[ 64; 256; 1024 ] ~headline_procs:1024
    ~fccd_probers:[ 1; 2; 4; 8 ] ~trials:t ()
