(* Figure 1: Probe Correlation.

   "The graph plots the correlation between the presence of a single random
   page within a prediction unit and the percentage of that unit that is in
   the file cache.  The size of the prediction unit is increased along the
   x-axis [...].  Three sets of points are plotted, which vary the access
   pattern of the test program [1 MB, 10 MB, 100 MB access units].  The
   file that is accessed is roughly twice the size of the file cache."

   Ground truth comes from Introspect.cache_bitmap — the role the paper's
   modified kernel played.  Every trial is an independent, seeded
   simulation (own kernel, own RNG), so trials fan out over the domain
   pool and the figure is identical at any parallelism. *)

open Simos
open Bench_common

let file_bytes = 1664 * mib (* ~2x the 830 MB cache *)
let access_units = [ 1 * mib; 10 * mib; 100 * mib ]

let prediction_units =
  [ 1 * mib; 2 * mib; 5 * mib; 10 * mib; 20 * mib; 50 * mib; 100 * mib; 200 * mib ]

(* One trial: boot, lay out the corpus, read file_bytes worth of data in
   random access-unit chunks, then compute the presence/fraction
   correlation for every prediction-unit size from the same cache bitmap. *)
let trial ~file_bytes ~prediction_units ~access_unit ~seed =
  let k = boot () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/corpus" file_bytes;
      Kernel.flush_file_cache k;
      let rng = Gray_util.Rng.create ~seed in
      let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/corpus") in
      let chunks = file_bytes / access_unit in
      for _ = 1 to chunks do
        let off = Gray_util.Rng.int rng chunks * access_unit in
        ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len:access_unit))
      done;
      Kernel.close env fd;
      let bitmap =
        match Introspect.cache_bitmap k ~path:"/d0/corpus" with
        | Ok b -> b
        | Error _ -> failwith "fig1: bitmap"
      in
      let page = 4096 in
      let correlation_for pu =
        let pages_per_unit = pu / page in
        let units = Array.length bitmap / pages_per_unit in
        let xs = Array.make units 0.0 and ys = Array.make units 0.0 in
        for u = 0 to units - 1 do
          let base = u * pages_per_unit in
          let probe = base + Gray_util.Rng.int rng pages_per_unit in
          xs.(u) <- (if bitmap.(probe) then 1.0 else 0.0);
          let cached = ref 0 in
          for p = base to base + pages_per_unit - 1 do
            if bitmap.(p) then incr cached
          done;
          ys.(u) <- float_of_int !cached /. float_of_int pages_per_unit
        done;
        (* prefab metric: how often the single-probe cache-hit prediction
           agrees with the Introspect ground truth for the whole unit *)
        let agree = ref 0 in
        Array.iteri (fun u x -> if x > 0.5 = (ys.(u) > 0.5) then incr agree) xs;
        Gray_util.Telemetry.observe "bench.fig1.probe_accuracy"
          (float_of_int !agree /. float_of_int (Stdlib.max 1 units));
        Gray_util.Correlate.pearson xs ys
      in
      List.map correlation_for prediction_units)

let plan_sized ~file_bytes ~access_units ~prediction_units ~trials () =
  let per_au =
    List.mapi
      (fun ai access_unit ->
        let seeds = trial_seeds ~base:(1000 + (ai * 100)) trials in
        let ts, get =
          run_trials
            ~label:(Printf.sprintf "fig1[au=%s]" (Gray_util.Units.bytes_to_string access_unit))
            ~seeds
            (fun ~seed -> trial ~file_bytes ~prediction_units ~access_unit ~seed)
        in
        (access_unit, ts, get))
      access_units
  in
  let render () =
    let b = Buffer.create 1024 in
    header b
      "Figure 1: Probe Correlation (presence of one probed page vs fraction of prediction unit cached)";
    note b "file %s, cache %d MB, %d trials (paper: 30)"
      (Gray_util.Units.bytes_to_string file_bytes) 830 trials;
    let table =
      Gray_util.Table.create ~title:"correlation (mean +/- std over trials)"
        ~columns:
          ("prediction unit"
          :: List.map
               (fun au -> Printf.sprintf "access %s" (Gray_util.Units.bytes_to_string au))
               access_units)
    in
    (* per access unit: trials x prediction-unit correlations *)
    let results = List.map (fun (au, _, get) -> (au, get ())) per_au in
    let means = Hashtbl.create 32 in
    List.iteri
      (fun pi pu ->
        let row =
          Gray_util.Units.bytes_to_string pu
          :: List.map
               (fun (au, per_trial) ->
                 let samples =
                   Array.of_list (List.map (fun tr -> List.nth tr pi) per_trial)
                 in
                 let m = Gray_util.Stats.mean_of samples in
                 Hashtbl.replace means (au, pu) m;
                 Printf.sprintf "%5.2f ± %4.2f" m (Gray_util.Stats.stddev_of samples))
               results
        in
        Gray_util.Table.add_row table row)
      prediction_units;
    Buffer.add_string b (Gray_util.Table.render table);
    note b
      "expected shape: correlation stays high while prediction unit <= access unit, then falls off";
    let figures =
      List.concat_map
        (fun au ->
          List.map
            (fun pu ->
              figure
                (Printf.sprintf "corr[au=%s,pu=%s]"
                   (Gray_util.Units.bytes_to_string au)
                   (Gray_util.Units.bytes_to_string pu))
                (Hashtbl.find means (au, pu)))
            prediction_units)
        access_units
    in
    let smallest_pu = List.hd prediction_units in
    let largest_pu = List.nth prediction_units (List.length prediction_units - 1) in
    let checks =
      List.map
        (fun au ->
          check
            (Printf.sprintf "corr falls off past the access unit (au=%s)"
               (Gray_util.Units.bytes_to_string au))
            (Hashtbl.find means (au, smallest_pu) > Hashtbl.find means (au, largest_pu)))
        access_units
    in
    { rd_output = Buffer.contents b; rd_figures = figures; rd_checks = checks }
  in
  { p_tasks = List.concat_map (fun (_, ts, _) -> ts) per_au; p_render = render }

let plan () =
  plan_sized ~file_bytes ~access_units ~prediction_units ~trials:(trials ()) ()
