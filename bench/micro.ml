(* Bechamel microbenchmarks of the gray-toolbox primitives and the
   simulator hot paths: one Test.make per reproduced table/figure's
   load-bearing primitive.

   A single task; the numbers are hardware measurements, so this
   experiment publishes no figures (it would break the -j byte-identity
   contract) and is excluded from the default experiment set. *)

open Bechamel
open Toolkit

let rng = Gray_util.Rng.create ~seed:97

let test_rng =
  Test.make ~name:"rng.bits64 (fig1 probe placement)" (Staged.stage (fun () ->
      ignore (Gray_util.Rng.bits64 rng)))

let test_stats_add =
  let acc = Gray_util.Stats.empty () in
  Test.make ~name:"stats.add (fig1/fig2 aggregation)" (Staged.stage (fun () ->
      Gray_util.Stats.add acc 1.25))

let test_two_means =
  let xs = Array.init 100 (fun i -> if i mod 3 = 0 then 1e6 +. float_of_int i else 2e3) in
  Test.make ~name:"cluster.two_means 100 (compose/table2)" (Staged.stage (fun () ->
      ignore (Gray_util.Cluster.two_means xs)))

let test_pearson =
  let xs = Array.init 256 float_of_int in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  Test.make ~name:"correlate.pearson 256 (fig1)" (Staged.stage (fun () ->
      ignore (Gray_util.Correlate.pearson xs ys)))

let test_pqueue =
  Test.make ~name:"pqueue push+pop (engine core)" (Staged.stage (fun () ->
      let q = Gray_util.Pqueue.create ~cmp:compare in
      for i = 0 to 63 do
        Gray_util.Pqueue.push q ((i * 7919) mod 64)
      done;
      while not (Gray_util.Pqueue.is_empty q) do
        ignore (Gray_util.Pqueue.pop q)
      done))

let test_gaussian =
  Test.make ~name:"rng.gaussian (noise on every timed syscall)" (Staged.stage (fun () ->
      ignore (Gray_util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0)))

let test_lognormal =
  Test.make ~name:"dist.lognormal_factor (kernel noise path)" (Staged.stage (fun () ->
      ignore (Gray_util.Dist.lognormal_factor rng ~sigma:0.05)))

let drop_victim _key ~dirty:_ = ()

let test_lru =
  let (module P : Simos.Replacement.POLICY) = Simos.Replacement.lru ~capacity:1024 in
  let i = ref 0 in
  Test.make ~name:"replacement.lru access (fig2/fig4 cache path)"
    (Staged.stage (fun () ->
         incr i;
         let key = Simos.Page.File { ino = 1; idx = !i mod 2048 } in
         if not (P.access key ~dirty:false) then begin
           if P.size () >= 1024 then ignore (P.evict drop_victim);
           P.insert key ~dirty:false
         end))

let test_clock =
  let (module P : Simos.Replacement.POLICY) = Simos.Replacement.clock ~capacity:1024 in
  let i = ref 0 in
  Test.make ~name:"replacement.clock access (fig7 paging path)"
    (Staged.stage (fun () ->
         incr i;
         let key = Simos.Page.Anon { pid = 1; vpn = !i mod 2048 } in
         if not (P.access key ~dirty:true) then begin
           if P.size () >= 1024 then ignore (P.evict drop_victim);
           P.insert key ~dirty:true
         end))

let test_engine =
  Test.make ~name:"engine 1000 events (all figures)" (Staged.stage (fun () ->
      let e = Simos.Engine.create () in
      Simos.Engine.spawn e (fun () ->
          for _ = 1 to 1000 do
            Simos.Engine.delay 10
          done);
      Simos.Engine.run e))

let test_zipf =
  Test.make ~name:"dist.zipf (workload generators)" (Staged.stage (fun () ->
      ignore (Gray_util.Dist.zipf rng ~n:1000 ~theta:0.99)))

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
    instances results

let experiment () =
  let tests =
    [
      test_rng; test_stats_add; test_two_means; test_pearson; test_pqueue;
      test_gaussian; test_lognormal; test_lru; test_clock; test_engine; test_zipf;
    ]
  in
  List.concat_map
    (fun t ->
      let results = benchmark t in
      let lines = ref [] in
      Hashtbl.iter
        (fun _clock tbl ->
          Hashtbl.iter
            (fun name result ->
              let est =
                match Bechamel.Analyze.OLS.estimates result with
                | Some [ est ] -> Some est
                | _ -> None
              in
              lines := (name, est) :: !lines)
            tbl)
        results;
      !lines)
    tests

let plan () =
  let t, get = Bench_common.task ~label:"micro[bechamel]" experiment in
  let render () =
    let b = Buffer.create 1024 in
    Bench_common.header b "Toolbox / simulator microbenchmarks (bechamel)";
    List.iter
      (fun (name, est) ->
        match est with
        | Some est -> Printf.bprintf b "  %-48s %12.1f ns/run\n" name est
        | None -> Printf.bprintf b "  %-48s (no estimate)\n" name)
      (get ());
    {
      Bench_common.rd_output = Buffer.contents b;
      rd_figures = [];
      (* hardware-dependent: no figures, no checks *)
      rd_checks = [];
    }
  in
  { Bench_common.p_tasks = [ t ]; p_render = render }
