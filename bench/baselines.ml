(* Baseline comparisons (beyond the paper's figures, supporting its
   central claims):

   A. FCCD vs SLEDs — "a great deal of the utility of their proposed
      system can be obtained without any modification to the operating
      system" (Section 4.1).  SLEDs here is the kernel-assisted oracle;
      we measure ordering agreement, end-to-end scan time, and the price
      FCCD pays for being gray-box (probe cost + perturbation).

   B. MAC detection channels — timing (the paper's choice) vs the vmstat
      interface the paper notes but avoids.

   C. Probing FCCD vs interposition (Section 6 / future work): a shadow
      cache model driven by observed accesses needs no probes at all but
      is blind to other processes.

   One task per baseline (B gets one per detector). *)

open Simos
open Graybox_core
open Bench_common

let fccd seed =
  { (Fccd.default_config ~seed ()) with Fccd.access_unit = 20 * mib; prediction_unit = 5 * mib }

let sleds_experiment () =
  let k = boot () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/data" (1024 * mib);
      let warm () =
        Kernel.flush_file_cache k;
        let rng = Gray_util.Rng.create ~seed:71 in
        let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/data") in
        for _ = 1 to 24 do
          let off = Gray_util.Rng.int rng 51 * (20 * mib) in
          ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len:(20 * mib)))
        done;
        Kernel.close env fd
      in
      (* agreement + perturbation *)
      warm ();
      let resident_before = Introspect.file_cached_pages k ~path:"/d0/data" in
      let plan =
        Gray_apps.Workload.ok_exn (Fccd.probe_file env (fccd 72) ~path:"/d0/data")
      in
      let resident_after = Introspect.file_cached_pages k ~path:"/d0/data" in
      let sleds_order =
        match Sleds.best_order k ~path:"/d0/data" ~granularity:(20 * mib) with
        | Ok o -> o
        | Error _ -> failwith "sleds"
      in
      let rho = Sleds.agreement sleds_order plan.Fccd.plan_extents in
      (* rank correlation under-credits big tie classes (all-cached
         extents order arbitrarily), so also measure set agreement on
         the cached class *)
      let fast_count =
        let lats = List.map (fun e -> float_of_int e.Sleds.sl_latency_ns) sleds_order in
        let split = Gray_util.Cluster.two_means_log (Array.of_list (List.map (Float.max 1.0) lats)) in
        split.Gray_util.Cluster.low_count
      in
      let top_set order = List.filteri (fun i _ -> i < fast_count) order in
      let sleds_top =
        top_set sleds_order |> List.map (fun e -> e.Sleds.sl_off)
      in
      let fccd_top =
        top_set plan.Fccd.plan_extents |> List.map (fun (e, _) -> e.Fccd.ext_off)
      in
      let overlap =
        List.length (List.filter (fun o -> List.mem o sleds_top) fccd_top)
      in
      let set_agreement =
        if fast_count = 0 then 1.0
        else float_of_int overlap /. float_of_int fast_count
      in
      (* end-to-end: read the file in each recommended order *)
      let read_in_order extents =
        let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env "/d0/data") in
        let t0 = Kernel.gettime env in
        List.iter
          (fun (off, len) ->
            ignore (Gray_apps.Workload.ok_exn (Kernel.read env fd ~off ~len)))
          extents;
        Kernel.close env fd;
        Kernel.gettime env - t0
      in
      warm ();
      let plan2 =
        Gray_apps.Workload.ok_exn (Fccd.probe_file env (fccd 73) ~path:"/d0/data")
      in
      let fccd_ns =
        read_in_order
          (List.map (fun (e, _) -> (e.Fccd.ext_off, e.Fccd.ext_len)) plan2.Fccd.plan_extents)
      in
      warm ();
      let sleds2 =
        match Sleds.best_order k ~path:"/d0/data" ~granularity:(20 * mib) with
        | Ok o -> o
        | Error _ -> failwith "sleds"
      in
      let sleds_ns =
        read_in_order (List.map (fun e -> (e.Sleds.sl_off, e.Sleds.sl_len)) sleds2)
      in
      warm ();
      let linear_ns = Gray_apps.Scan.linear env ~path:"/d0/data" ~unit_bytes:(20 * mib) in
      ((rho, set_agreement), fccd_ns, sleds_ns, linear_ns,
       abs (resident_after - resident_before)))

let mac_channel detection () =
  let k = boot () in
  let stop = ref false and held = ref false in
  Kernel.spawn k ~name:"competitor" (fun env ->
      let pages = 400 * mib / 4096 in
      let r = Kernel.valloc env ~pages in
      ignore (Kernel.touch_pages env r ~first:0 ~count:pages);
      held := true;
      while not !stop do
        let slice = 4096 in
        let off = ref 0 in
        while !off < pages do
          ignore
            (Kernel.touch_pages env r ~first:!off ~count:(min slice (pages - !off)));
          off := !off + slice;
          Engine.delay 500_000
        done
      done;
      Kernel.vfree env r);
  let granted = ref 0 and stats = ref None in
  Kernel.spawn k ~name:"mac" (fun env ->
      while not !held do
        Engine.delay 1_000_000
      done;
      let config = { (Mac.default_config ()) with Mac.detection } in
      (match
         Mac.gb_alloc env config ~min:(100 * mib) ~max:(830 * mib) ~multiple:100
       with
      | Some a ->
        granted := Mac.bytes a;
        Mac.gb_free env a
      | None -> ());
      stats := Some (Mac.last_stats ());
      stop := true);
  Kernel.run k;
  (!granted, !stats)

let interpose_experiment () =
  let k = boot () in
  in_proc k (fun env ->
      let agent =
        Interpose.create ~assumed_policy:Replacement.clock
          ~assumed_capacity_pages:(Platform.usable_pages (Kernel.platform k)) ()
      in
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/set" ~prefix:"f" ~count:20
          ~size:(20 * mib)
      in
      Kernel.flush_file_cache k;
      (* phase 1: the agent's own process reads half the files through
         the interposition layer *)
      List.iteri
        (fun i path ->
          if i mod 2 = 0 then begin
            let fd = Gray_apps.Workload.ok_exn (Kernel.open_file env path) in
            ignore
              (Gray_apps.Workload.ok_exn
                 (Interpose.read agent env fd ~path ~off:0 ~len:(20 * mib)));
            Kernel.close env fd
          end)
        paths;
      let accuracy () =
        let correct = ref 0 in
        List.iter
          (fun path ->
            let predicted = Interpose.predicted_fraction agent ~path ~pages:5120 > 0.5 in
            let truth = Introspect.cached_fraction k ~path > 0.5 in
            if predicted = truth then incr correct)
          paths;
        let acc = float_of_int !correct /. 20.0 in
        Gray_util.Telemetry.observe "bench.baselines.predict_accuracy" acc;
        acc
      in
      let own = accuracy () in
      (* phase 2: an un-interposed process churns the cache *)
      List.iteri (fun i path -> if i mod 2 = 1 then Gray_apps.Workload.read_file env path) paths;
      let foreign = accuracy () in
      (* FCCD probing, for the perturbation comparison *)
      let before = Introspect.resident_file_pages k in
      ignore (Gray_apps.Workload.ok_exn (Fccd.order_files env (fccd 74) ~paths));
      let after = Introspect.resident_file_pages k in
      (own, foreign, abs (after - before)))

let plan () =
  let sleds_task, sleds_get = task ~label:"baselines[sleds]" sleds_experiment in
  let mac_cells =
    List.map
      (fun (label, detection) ->
        let t, get =
          task ~label:(Printf.sprintf "baselines[mac=%s]" label) (mac_channel detection)
        in
        (label, t, get))
      [ ("timing (paper)", Mac.Timing); ("vmstat", Mac.Vmstat) ]
  in
  let interpose_task, interpose_get =
    task ~label:"baselines[interpose]" interpose_experiment
  in
  let render () =
    let b = Buffer.create 2048 in
    let figures = ref [] and checks = ref [] in
    header b "Baseline A: FCCD (gray-box probes) vs SLEDs (kernel-assisted)";
    let (rho, set_agreement), fccd_ns, sleds_ns, linear_ns, perturbed = sleds_get () in
    let ta = Gray_util.Table.create ~title:"" ~columns:[ "metric"; "value" ] in
    Gray_util.Table.add_row ta
      [ "ordering agreement (Spearman)"; Printf.sprintf "%.3f" rho ];
    Gray_util.Table.add_row ta
      [ "cached-set agreement"; Printf.sprintf "%.3f" set_agreement ];
    Gray_util.Table.add_row ta [ "linear scan"; Printf.sprintf "%.1f s" (seconds linear_ns) ];
    Gray_util.Table.add_row ta
      [ "SLEDs-guided scan (kernel-assisted)"; Printf.sprintf "%.1f s" (seconds sleds_ns) ];
    Gray_util.Table.add_row ta
      [ "FCCD-guided scan (gray-box)"; Printf.sprintf "%.1f s" (seconds fccd_ns) ];
    Gray_util.Table.add_row ta
      [ "pages perturbed by probing"; string_of_int perturbed ];
    Buffer.add_string b (Gray_util.Table.render ta);
    note b "expected: agreement near 1; FCCD within a few %% of SLEDs; perturbation = a handful of pages";
    figures :=
      [
        figure "sleds_set_agreement" set_agreement;
        figure "fccd_scan_s" (seconds fccd_ns);
        figure "sleds_scan_s" (seconds sleds_ns);
        figure "linear_scan_s" (seconds linear_ns);
      ];
    checks :=
      [
        check "FCCD agrees with the kernel-assisted oracle" (set_agreement >= 0.9);
        check "FCCD-guided scan beats linear" (fccd_ns < linear_ns);
      ];
    header b "Baseline B: MAC detection via timing vs vmstat";
    let tb =
      Gray_util.Table.create ~title:"gb_alloc(min=100MB, max=830MB) against a 400 MB competitor"
        ~columns:[ "detector"; "granted"; "probe time"; "steps"; "backoffs" ]
    in
    List.iter
      (fun (label, _, get) ->
        match get () with
        | _, None -> ()
        | granted, Some s ->
          figures :=
            !figures
            @ [ figure (Printf.sprintf "mac_granted_mib[%s]" label)
                  (float_of_int (granted / mib)) ];
          Gray_util.Table.add_row tb
            [
              label;
              Printf.sprintf "%d MB" (granted / mib);
              Printf.sprintf "%.2f s" (float_of_int s.Mac.s_probe_ns /. 1e9);
              string_of_int s.Mac.s_steps;
              string_of_int s.Mac.s_backoffs;
            ])
      mac_cells;
    Buffer.add_string b (Gray_util.Table.render tb);
    note b "expected: similar grants; vmstat detects with less self-inflicted paging where the interface exists";
    header b "Baseline C: probing FCCD vs interposition shadow model (future work, Section 6)";
    let own_acc, foreign_acc, probe_pages = interpose_get () in
    let tc = Gray_util.Table.create ~title:"" ~columns:[ "metric"; "value" ] in
    Gray_util.Table.add_row tc
      [ "shadow accuracy, only own accesses"; Printf.sprintf "%.2f" own_acc ];
    Gray_util.Table.add_row tc
      [ "shadow accuracy after foreign churn"; Printf.sprintf "%.2f" foreign_acc ];
    Gray_util.Table.add_row tc
      [ "FCCD probe perturbation (pages)"; string_of_int probe_pages ];
    Buffer.add_string b (Gray_util.Table.render tc);
    note b "expected: shadow model perfect while it sees every access, degrading once other";
    note b "processes touch the cache — the in/visibility trade-off of Section 4.1.1";
    figures :=
      !figures
      @ [
          figure "interpose_accuracy[own]" own_acc;
          figure "interpose_accuracy[foreign]" foreign_acc;
        ];
    checks :=
      !checks
      @ [
          check "shadow model accurate on own accesses" (own_acc >= 0.9);
          check "foreign churn degrades the shadow model" (foreign_acc < own_acc);
        ];
    { rd_output = Buffer.contents b; rd_figures = !figures; rd_checks = !checks }
  in
  {
    p_tasks = (sleds_task :: List.map (fun (_, t, _) -> t) mac_cells) @ [ interpose_task ];
    p_render = render;
  }
