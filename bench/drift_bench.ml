(* Accuracy over time under environment drift: frozen vs self-healing ICLs.

   The drift plane changes the machine mid-run; a frozen ICL keeps using
   its boot-time calibration, the adaptive wrapper (Graybox_core.Adaptive)
   spot-checks its own assumptions, re-calibrates when stale, and blends
   fresh measurements with its priors.  Two tracks:

   - FCCD: a pressure regime and two cache resizes reshuffle which files
     are cached.  Each round measures Spearman rho between the ICL's
     stored probe-time estimates and the white-box truth (uncached
     fraction per file, taken BEFORE any probes).  The frozen variant
     ranks from its t=1s probe forever; the adaptive one spot-probes a
     rotating subset each round.

   - MAC: a 1000x timer coarsening (100 ns cycle counter -> 100 us jiffy)
     invalidates the boot-time slow threshold: every resident touch then
     quantises above it, so frozen gb_alloc refuses memory that is
     actually free.  Accuracy is 1 - |granted - truth| / usable.

   A third task drives the adaptive MAC with a zero re-calibration budget
   through the same drift and asserts that it degrades into the distinct
   `Stale_budget_exhausted error rather than thrashing or lying.

   Every (variant, seed) trial is its own kernel + drift schedule, so the
   curves are deterministic at any -j.  This experiment is NOT part of the
   default set: drift must stay opt-in so the default suite's output is
   byte-identical with the plane compiled in. *)

open Simos
open Graybox_core
open Bench_common

let platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.05

(* The FCCD track runs on a tighter machine (16 MiB usable = exactly the
   file population) so the pressure regime and cache shrink genuinely
   evict warmed files — on the 64 MiB machine the events never bite. *)
let fccd_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 48; kernel_reserved_mib = 32 }
    ~sigma:0.05

let sec = 1_000_000_000

let wait_until k ts =
  let now = Engine.now (Kernel.engine k) in
  if now < ts then Engine.delay (ts - now)

(* ---- FCCD: rank accuracy over a reshuffling cache ---- *)

let fccd_events =
  [
    { Drift.dv_at_ns = 5 * sec; dv_kind = Drift.Pressure_level 0.35 };
    { Drift.dv_at_ns = 11 * sec; dv_kind = Drift.Cache_resize 0.4 };
    { Drift.dv_at_ns = 17 * sec; dv_kind = Drift.Cache_resize 2.0 };
  ]

let fccd_scenario ~seed =
  {
    Drift.dr_name = "bench-fccd";
    dr_seed = seed;
    dr_retouch_ns = 100_000_000;
    dr_horizon_ns = 26 * sec;
    dr_events = fccd_events;
  }

(* measurement rounds: every 2 s from t=1 s, straddling all three events *)
let fccd_round_ts = List.init 13 (fun i -> (1 + (2 * i)) * sec)
let fccd_rounds = List.length fccd_round_ts

let fccd_config ~seed =
  {
    (Fccd.default_config ~seed:(seed + 7) ()) with
    Fccd.access_unit = 1 * mib;
    prediction_unit = 256 * 1024;
  }

(* One trial = one kernel; returns per-round rho for one variant.  A
   background reader keeps a hot set resident — even-indexed files until
   t=9 s, odd-indexed ones after — while the drift plane decides how much
   of a hot set can fit at all.  Truth is read before the round's probes
   so the probes' own page-ins cannot flatter the prediction. *)
let hot_shift_ns = 9 * sec

let fccd_trial ~variant ~seed =
  let k =
    boot ~platform:fccd_platform ~data_disks:1 ~seed ~drift:(fccd_scenario ~seed)
      ()
  in
  Kernel.start_drift_daemon k;
  let accs = Array.make fccd_rounds 0.0 in
  let paths_cell = ref [] in
  Kernel.spawn k ~name:"reader" (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:8
          ~size:(2 * mib)
      in
      Kernel.flush_file_cache k;
      paths_cell := paths;
      (* first pass warms the even files immediately (the probers start
         from this state), then the hot set flips at [hot_shift_ns] *)
      while Engine.now (Kernel.engine k) < (25 * sec) + (sec / 2) do
        let odd_phase = Engine.now (Kernel.engine k) >= hot_shift_ns in
        List.iteri
          (fun i p ->
            if (if odd_phase then i mod 2 = 1 else i mod 2 = 0) then
              Gray_apps.Workload.read_file env p)
          paths;
        Engine.delay (2 * sec)
      done);
  Kernel.spawn k ~name:"prober" ~at:(sec / 2) (fun env ->
      (* the reader creates the population; wait for it *)
      while !paths_cell = [] do
        Engine.delay (sec / 10)
      done;
      let paths = !paths_cell in
      let truth () =
        Array.of_list
          (List.map (fun p -> 1.0 -. Introspect.cached_fraction k ~path:p) paths)
      in
      let rho est tr = Gray_util.Correlate.spearman est tr in
      let config = fccd_config ~seed in
      match variant with
      | `Frozen -> (
        match Fccd.order_files env config ~paths with
        | Error _ -> ()
        | Ok ranked ->
          let by_path =
            List.map (fun r -> (r.Fccd.fr_path, r.Fccd.fr_probe_ns)) ranked
          in
          let est =
            Array.of_list
              (List.map (fun p -> float_of_int (List.assoc p by_path)) paths)
          in
          List.iteri
            (fun r ts ->
              wait_until k ts;
              accs.(r) <- rho est (truth ()))
            fccd_round_ts)
      | `Adaptive -> (
        match Adaptive.fccd env ~fccd_config:config ~paths with
        | Error _ -> ()
        | Ok f ->
          List.iteri
            (fun r ts ->
              wait_until k ts;
              let tr = truth () in
              (match Adaptive.fccd_order env f with
              | Ok _ | Error (`Kernel _) -> ()
              | Error `Stale_budget_exhausted -> ());
              let est =
                Array.of_list
                  (List.map (fun p -> List.assoc p (Adaptive.fccd_estimates f)) paths)
              in
              accs.(r) <- rho est tr)
            fccd_round_ts));
  Kernel.run k;
  accs

(* ---- MAC: admission accuracy across a timer-resolution drift ---- *)

let mac_scenario ~seed =
  {
    Drift.dr_name = "bench-mac";
    dr_seed = seed;
    dr_retouch_ns = 100_000_000;
    dr_horizon_ns = 10 * sec;
    dr_events = [ { Drift.dv_at_ns = 3 * sec; dv_kind = Drift.Timer_scale 1000 } ];
  }

(* one pre-drift round, two post-drift rounds *)
let mac_round_ts = [ 3 * sec / 2; 5 * sec; 17 * sec / 2 ]
let mac_rounds = List.length mac_round_ts

let mac_trial ~variant ~seed =
  let k = boot ~platform ~data_disks:1 ~seed ~drift:(mac_scenario ~seed) () in
  Kernel.start_drift_daemon k;
  let usable = Platform.usable_pages platform in
  let competitor_pages = usable * 2 / 5 in
  let accs = Array.make mac_rounds 0.0 in
  let exhausted = ref false in
  Kernel.spawn k ~name:"competitor" (fun env ->
      let r = Kernel.valloc env ~pages:competitor_pages in
      for _ = 1 to 60 do
        ignore (Kernel.touch_pages env r ~first:0 ~count:competitor_pages);
        Engine.delay 50_000_000
      done;
      Kernel.vfree env r);
  Kernel.spawn k ~name:"prober" ~at:1_000_000 (fun env ->
      wait_until k sec;
      let mcfg = { (Mac.default_config ()) with Mac.robust = true } in
      (* truth is read before the round's allocation; [record] folds the
         grant against it *)
      let truth_now () =
        Introspect.available_anon_pages k ~exclude_pid:(Kernel.pid env)
      in
      let record r ~truth granted =
        accs.(r) <-
          1.0 -. (float_of_int (abs (granted - truth)) /. float_of_int usable)
      in
      match variant with
      | `Frozen ->
        (* calibrated once at t=1 s, pinned forever *)
        let thr = Mac.calibrate_threshold mcfg env in
        let cfg = { mcfg with Mac.slow_threshold_ns = Some thr } in
        List.iteri
          (fun r ts ->
            wait_until k ts;
            let truth = truth_now () in
            match Mac.gb_alloc env cfg ~min:(4 * mib) ~max:(48 * mib) ~multiple:mib with
            | Some a ->
              let g = Mac.pages a in
              Mac.gb_free env a;
              record r ~truth g
            | None -> record r ~truth 0)
          mac_round_ts
      | `Adaptive budget ->
        let acfg = { Adaptive.default_config with Adaptive.recal_budget = budget } in
        let m = Adaptive.mac ~config:acfg env ~mac_config:mcfg in
        List.iteri
          (fun r ts ->
            wait_until k ts;
            let truth = truth_now () in
            match Adaptive.mac_alloc env m ~min:(4 * mib) ~max:(48 * mib) ~multiple:mib with
            | Ok (Some a) ->
              let g = Mac.pages a in
              Mac.gb_free env a;
              record r ~truth g
            | Ok None -> record r ~truth 0
            | Error `Stale_budget_exhausted ->
              exhausted := true;
              record r ~truth 0)
          mac_round_ts);
  Kernel.run k;
  (accs, !exhausted)

(* ---- plan ---- *)

let mean xs = Gray_util.Stats.mean_of (Array.of_list xs)

(* per-round mean across seeds of a list of per-round arrays *)
let round_means n rows =
  Array.init n (fun r -> mean (List.map (fun a -> a.(r)) rows))

let plan () =
  let seeds = trial_seeds ~base:4242 (trials ()) in
  let fccd_frozen_ts, fccd_frozen_get =
    run_trials ~label:"drift[fccd-frozen]" ~seeds (fun ~seed ->
        fccd_trial ~variant:`Frozen ~seed)
  in
  let fccd_adapt_ts, fccd_adapt_get =
    run_trials ~label:"drift[fccd-adaptive]" ~seeds (fun ~seed ->
        fccd_trial ~variant:`Adaptive ~seed)
  in
  let mac_frozen_ts, mac_frozen_get =
    run_trials ~label:"drift[mac-frozen]" ~seeds (fun ~seed ->
        mac_trial ~variant:`Frozen ~seed)
  in
  let mac_adapt_ts, mac_adapt_get =
    run_trials ~label:"drift[mac-adaptive]" ~seeds (fun ~seed ->
        mac_trial ~variant:(`Adaptive 8) ~seed)
  in
  let mac_exhaust_ts, mac_exhaust_get =
    run_trials ~label:"drift[mac-exhausted]" ~seeds (fun ~seed ->
        mac_trial ~variant:(`Adaptive 0) ~seed)
  in
  let render () =
    let b = Buffer.create 2048 in
    header b "Accuracy over time under environment drift (frozen vs adaptive)";
    note b "FCCD: Spearman rho of stored estimates vs cache truth, per round";
    note b "      drift: pressure 0.35 @5s, cache x0.4 @11s, cache x2.0 @17s";
    note b "      workload: reader's hot set flips evens -> odds @9s";
    note b "MAC: admission accuracy 1-|granted-truth|/usable, per round";
    note b "      drift: timer resolution x1000 @3s (100ns -> 100us jiffy)";
    note b "%d seeded trials per variant" (List.length seeds);
    let figures = ref [] and checks = ref [] in
    let fig name v = figures := figure name v :: !figures in
    let chk name ok = checks := check name ok :: !checks in
    (* FCCD over time *)
    let ff = round_means fccd_rounds (fccd_frozen_get ()) in
    let fa = round_means fccd_rounds (fccd_adapt_get ()) in
    Printf.bprintf b "  %-8s %12s %12s\n" "t(s)" "fccd-frozen" "fccd-adaptive";
    List.iteri
      (fun r ts ->
        Printf.bprintf b "  %-8d %12.3f %12.3f\n" (ts / sec) ff.(r) fa.(r);
        fig (Printf.sprintf "fccd_frozen[t=%ds]" (ts / sec)) ff.(r);
        fig (Printf.sprintf "fccd_adaptive[t=%ds]" (ts / sec)) fa.(r))
      fccd_round_ts;
    (* MAC over time *)
    let mf = round_means mac_rounds (List.map fst (mac_frozen_get ())) in
    let ma = round_means mac_rounds (List.map fst (mac_adapt_get ())) in
    Printf.bprintf b "  %-8s %12s %12s\n" "t(s)" "mac-frozen" "mac-adaptive";
    List.iteri
      (fun r ts ->
        Printf.bprintf b "  %-8.1f %12.3f %12.3f\n"
          (float_of_int ts /. 1e9) mf.(r) ma.(r);
        fig (Printf.sprintf "mac_frozen[r=%d]" r) mf.(r);
        fig (Printf.sprintf "mac_adaptive[r=%d]" r) ma.(r))
      mac_round_ts;
    let exhausted_runs =
      List.filter (fun (_, e) -> e) (mac_exhaust_get ()) |> List.length
    in
    Printf.bprintf b "  budget-0 adaptive runs hitting `Stale_budget_exhausted: %d/%d\n"
      exhausted_runs (List.length seeds);
    fig "mac_budget0_exhausted_frac"
      (float_of_int exhausted_runs /. float_of_int (List.length seeds));
    (* expected shape: the adaptive wrapper recovers after each drift
       event; the frozen ICL ends degraded.  Rounds 2/5/8 close the
       epochs opened by the events at 5/11/17 s. *)
    List.iter
      (fun (label, r) ->
        chk
          (Printf.sprintf "adaptive FCCD recovered by end of %s epoch (t=%ds)"
             label
             (List.nth fccd_round_ts r / sec))
          (fa.(r) >= 0.55))
      [ ("pressure", 4); ("shrink", 7); ("grow", 12) ];
    chk "frozen FCCD ends degraded vs adaptive"
      (ff.(fccd_rounds - 1) <= fa.(fccd_rounds - 1) -. 0.2);
    chk "frozen FCCD decayed from its own start"
      (ff.(fccd_rounds - 1) <= ff.(0) -. 0.2);
    chk "adaptive MAC holds accuracy across the timer drift"
      (ma.(mac_rounds - 1) >= ma.(0) -. 0.15);
    chk "frozen MAC ends degraded vs adaptive"
      (mf.(mac_rounds - 1) <= ma.(mac_rounds - 1) -. 0.15);
    chk "budget-0 adaptive degrades into `Stale_budget_exhausted everywhere"
      (exhausted_runs = List.length seeds);
    {
      rd_output = Buffer.contents b;
      rd_figures = List.rev !figures;
      rd_checks = List.rev !checks;
    }
  in
  {
    p_tasks =
      fccd_frozen_ts @ fccd_adapt_ts @ mac_frozen_ts @ mac_adapt_ts
      @ mac_exhaust_ts;
    p_render = render;
  }
