(* Figure 5: File Ordering Matters.

   Total time to read 200 x 8 KB files split across two directories on a
   cold cache, in three orders: random, sorted by directory, sorted by
   i-number — on each platform preset.

   One task per (platform, order): nine independent kernels, each with its
   own RNG seeded from the (platform, order) pair so the figure is
   schedule-independent. *)

open Simos
open Graybox_core
open Bench_common

let files_per_dir = 100
let file_bytes = 8 * 1024

type order = Random_order | By_directory | By_inumber

let order_name = function
  | Random_order -> "random order"
  | By_directory -> "sort by directory"
  | By_inumber -> "sort by i-number"

let experiment platform order ~seed ~trials =
  let k = boot ~platform () in
  in_proc k (fun env ->
      let a =
        Gray_apps.Workload.make_files env ~dir:"/d0/dira" ~prefix:"a" ~count:files_per_dir
          ~size:file_bytes
      in
      let b =
        Gray_apps.Workload.make_files env ~dir:"/d0/dirb" ~prefix:"b" ~count:files_per_dir
          ~size:file_bytes
      in
      (* interleave the two directories, as a shell glob across dirs might *)
      let mixed = List.concat (List.map2 (fun x y -> [ x; y ]) a b) in
      let rng = Gray_util.Rng.create ~seed in
      let timed_read order =
        Kernel.flush_file_cache k;
        let t0 = Kernel.gettime env in
        List.iter (fun p -> Gray_apps.Workload.read_file env p) order;
        Kernel.gettime env - t0
      in
      List.init trials (fun _ ->
          let arr = Array.of_list mixed in
          Gray_util.Rng.shuffle rng arr;
          let shuffled = Array.to_list arr in
          match order with
          | Random_order -> timed_read shuffled
          | By_directory ->
            (* group a randomly ordered argument list by directory: within
               a directory the order stays random, as for a user's shell *)
            timed_read (Fldc.order_by_directory ~paths:shuffled)
          | By_inumber ->
            let ordered = Gray_apps.Workload.ok_exn (Fldc.order_by_inumber env ~paths:mixed) in
            timed_read (List.map (fun s -> s.Fldc.so_path) ordered)))

let plan () =
  let trials = trials () in
  let cells =
    List.concat
      (List.mapi
         (fun pi platform ->
        List.mapi
          (fun oi order ->
            let seed = 2900 + (100 * pi) + (10 * oi) in
            let t, get =
              task
                ~label:
                  (Printf.sprintf "fig5[%s,%s]" platform.Platform.name (order_name order))
                (fun () -> experiment platform order ~seed ~trials)
            in
            ((platform, order), t, get))
          [ Random_order; By_directory; By_inumber ])
         Platform.all)
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 5: File Ordering Matters (200 x 8 KB files in two directories, cold cache)";
    note b "%d trials per bar (paper: 30)" trials;
    let table =
      Gray_util.Table.create ~title:"total access time"
        ~columns:[ "platform"; "random order"; "sort by directory"; "sort by i-number" ]
    in
    let result platform order =
      let _, _, get =
        List.find (fun ((p, o), _, _) -> p == platform && o = order) cells
      in
      mean_std (get ())
    in
    let figures = ref [] and checks = ref [] in
    List.iter
      (fun platform ->
        let random = result platform Random_order in
        let bydir = result platform By_directory in
        let byino = result platform By_inumber in
        let name = platform.Platform.name in
        figures :=
          figure (Printf.sprintf "byino_s[%s]" name) (fst byino /. 1e9)
          :: figure (Printf.sprintf "bydir_s[%s]" name) (fst bydir /. 1e9)
          :: figure (Printf.sprintf "random_s[%s]" name) (fst random /. 1e9)
          :: !figures;
        checks :=
          check (Printf.sprintf "i-number sort beats directory sort on %s" name)
            (fst byino < fst bydir)
          :: check (Printf.sprintf "directory sort beats random on %s" name)
               (fst bydir < fst random)
          :: !checks;
        Gray_util.Table.add_row table
          [ name; pp_mean_std random; pp_mean_std bydir; pp_mean_std byino ])
      Platform.all;
    Buffer.add_string b (Gray_util.Table.render table);
    note b
      "expected shape: directory sort ~10-25%% better than random; i-number sort a factor of ~6 (paper: 6x linux/netbsd, >2x solaris)";
    { rd_output = Buffer.contents b; rd_figures = List.rev !figures; rd_checks = List.rev !checks }
  in
  { p_tasks = List.map (fun (_, t, _) -> t) cells; p_render = render }
