(* Fingerprinting the OS from user level (the Section 4.1.4 duality).

   The same probe library that exploits the cache can identify it: for
   every platform preset (and every replacement policy in an ablation
   row), run the gray-box fingerprint and report the verdict next to the
   truth the preset encodes.

   One task per platform preset and one per ablation policy. *)

open Simos
open Graybox_core
open Bench_common

let policy_name = function
  | `Recency -> "recency (LRU/clock)"
  | `Fifo -> "fifo"
  | `Sticky -> "sticky (MRU-evict)"
  | `Unknown -> "unknown"

let fingerprint_platform platform () =
  let k = boot ~platform ~data_disks:1 () in
  in_proc k (fun env -> Fingerprint.classify env ~scratch_dir:"/d0" ())

let fingerprint_policy name () =
  let platform =
    Platform.with_file_policy
      { Platform.linux_2_2 with Platform.file_cache = `Fixed_mib 640 }
      (Replacement.of_name name)
  in
  let k = boot ~platform ~data_disks:1 () in
  in_proc k (fun env ->
      Fingerprint.classify env ~scratch_dir:"/d0" ~capacity_hint:(640 * mib) ())

let presets =
  [
    (Platform.linux_2_2, "clock, ~830 MB unified", `Recency);
    (Platform.netbsd_1_5, "lru, fixed 64 MB", `Recency);
    (Platform.solaris_7, "mru-sticky, 700 MB", `Sticky);
  ]

let expected_policy = function
  | "lru" | "clock" | "segmented" | "eelru" -> Some `Recency
  | "fifo" -> Some `Fifo
  | "mru-sticky" -> Some `Sticky
  | _ -> None (* two-q sits between fifo and recency *)

let plan () =
  let preset_cells =
    List.map
      (fun (platform, truth, expect) ->
        let t, get =
          task
            ~label:(Printf.sprintf "fingerprint[%s]" platform.Platform.name)
            (fingerprint_platform platform)
        in
        (platform, truth, expect, t, get))
      presets
  in
  let policy_cells =
    List.map
      (fun name ->
        let t, get =
          task ~label:(Printf.sprintf "fingerprint[policy=%s]" name)
            (fingerprint_policy name)
        in
        (name, t, get))
      Replacement.all_names
  in
  let render () =
    let b = Buffer.create 2048 in
    let figures = ref [] and checks = ref [] in
    header b "Fingerprinting: identifying the file-cache policy with timed probes only";
    let t =
      Gray_util.Table.create ~title:"platform presets"
        ~columns:[ "platform"; "truth"; "verdict"; "est. capacity"; "evidence" ]
    in
    List.iter
      (fun (platform, truth, expect, _, get) ->
        let v = get () in
        let name = platform.Platform.name in
        figures :=
          figure
            (Printf.sprintf "capacity_mib[%s]" name)
            (float_of_int (v.Fingerprint.v_capacity_bytes / mib))
          :: !figures;
        checks :=
          check (Printf.sprintf "fingerprint identifies %s" name)
            (v.Fingerprint.v_policy = expect)
          :: !checks;
        Gray_util.Table.add_row t
          [
            name;
            truth;
            policy_name v.Fingerprint.v_policy;
            Gray_util.Units.bytes_to_string v.Fingerprint.v_capacity_bytes;
            v.Fingerprint.v_evidence;
          ])
      preset_cells;
    Buffer.add_string b (Gray_util.Table.render t);
    let t2 =
      Gray_util.Table.create ~title:"policy ablation (640 MB fixed file cache each)"
        ~columns:[ "true policy"; "verdict"; "scores (recency/fifo/sticky)" ]
    in
    List.iter
      (fun (name, _, get) ->
        let v = get () in
        (match expected_policy name with
        | Some expect ->
          checks :=
            check (Printf.sprintf "fingerprint classifies %s" name)
              (v.Fingerprint.v_policy = expect)
            :: !checks
        | None -> ());
        Gray_util.Table.add_row t2
          [
            name;
            policy_name v.Fingerprint.v_policy;
            Printf.sprintf "%.2f / %.2f / %.2f" v.Fingerprint.v_recency_score
              v.Fingerprint.v_fifo_score v.Fingerprint.v_sticky_score;
          ])
      policy_cells;
    Buffer.add_string b (Gray_util.Table.render t2);
    note b "expected: lru/clock/segmented/eelru -> recency; fifo -> fifo; mru-sticky -> sticky;";
    note b "two-q sits between fifo and recency (probation is a fifo)";
    { rd_output = Buffer.contents b; rd_figures = List.rev !figures; rd_checks = List.rev !checks }
  in
  {
    p_tasks =
      List.map (fun (_, _, _, t, _) -> t) preset_cells
      @ List.map (fun (_, t, _) -> t) policy_cells;
    p_render = render;
  }
