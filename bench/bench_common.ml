(* Shared plumbing for the figure/table reproductions.

   Experiments no longer print as they compute.  Each module builds a
   {!plan}: a list of self-contained {!task}s (one kernel boot each, all
   seeds derived up front) plus a [render] function that turns the task
   results into human output, machine-readable figure numbers and
   expected-shape checks.  The driver fans every task of every selected
   experiment over a {!Gray_util.Domain_pool} and renders in submission
   order afterwards — so the output is byte-identical at any [-j]. *)

open Simos

let mib = 1024 * 1024

(* ---- trial count ----------------------------------------------------- *)

(* The paper used 30 trials per figure; the default here is 10 — high
   enough for stable error bars now that trials run domain-parallel,
   low enough for a laptop.  Override with GRAYBOX_TRIALS. *)
let default_trials = 10

let trials_of_env () =
  Gray_util.Env.parse ~var:"GRAYBOX_TRIALS" ~expected:"an integer >= 1"
    ~on_invalid:`Exit ~default:default_trials (fun token ->
      match int_of_string_opt token with
      | Some n when n >= 1 -> Gray_util.Env.Value n
      | Some _ -> Soft ("trial count below 1; using 1 trial", 1)
      | None -> Invalid)

let trials_slot = ref None
let trials () = match !trials_slot with
  | Some n -> n
  | None ->
    let n = trials_of_env () in
    trials_slot := Some n;
    n

let set_trials n = trials_slot := Some (max 1 n)

(* ---- telemetry mode --------------------------------------------------- *)

(* Resolved once (before the pool fans out, so the env warning prints at
   most once) and shared by every task of the run. *)
let telemetry_slot = ref None

let telemetry_mode () =
  match !telemetry_slot with
  | Some m -> m
  | None ->
    let m = Gray_util.Telemetry.of_env () in
    telemetry_slot := Some m;
    m

let set_telemetry_mode m = telemetry_slot := Some m

(* ---- accounting mode -------------------------------------------------- *)

(* Per-process accounting is on by default ({!Simos.Account.of_env});
   resolved once so the suite JSON's schema choice and every task agree. *)
let account_slot = ref None

let accounting_on () =
  match !account_slot with
  | Some b -> b
  | None ->
    let b = Simos.Account.of_env () in
    account_slot := Some b;
    b

(* ---- simulation helpers ---------------------------------------------- *)

(* Engines booted while a task runs are registered domain-locally so the
   harness can report simulated-time and event totals per experiment. *)
let engine_collector : Engine.t list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let register_engine engine =
  match Domain.DLS.get engine_collector with
  | None -> ()
  | Some engines -> engines := engine :: !engines

(* Kernels likewise, so the harness can pull each task's accounting
   ledger and flight-recorder tail after the task ran. *)
let kernel_collector : Kernel.t list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let register_kernel k =
  match Domain.DLS.get kernel_collector with
  | None -> ()
  | Some kernels -> kernels := k :: !kernels

let boot ?(platform = Platform.linux_2_2) ?(data_disks = 4) ?(seed = 42) ?faults
    ?drift ?sched ?procs () =
  let engine = Engine.create () in
  register_engine engine;
  let k =
    Kernel.boot ~engine ~platform ~data_disks ~seed ?faults ?drift ?sched ?procs ()
  in
  register_kernel k;
  k

(* Run one simulated process to completion and return its result. *)
let in_proc k body =
  let result = ref None in
  Kernel.spawn k (fun env -> result := Some (body env));
  Kernel.run k;
  match !result with Some v -> v | None -> failwith "bench process failed"

let seconds ns = Gray_util.Units.sec_of_ns ns

let mean_std samples =
  let arr = Array.of_list (List.map float_of_int samples) in
  (Gray_util.Stats.mean_of arr, Gray_util.Stats.stddev_of arr)

let pp_mean_std (m, s) = Printf.sprintf "%7.2f ± %5.2f s" (m /. 1e9) (s /. 1e9)

(* ---- tasks ------------------------------------------------------------ *)

type task = {
  t_label : string;
  t_run : unit -> unit;
  mutable t_wall_ns : int;
  mutable t_sim_ns : int;
  mutable t_events : int;
  mutable t_sink : Gray_util.Telemetry.sink option;
  mutable t_account : Account.export option;
      (* merged ledgers of every kernel the task booted *)
  mutable t_flight : string list;
      (* flight tail of the task's last kernel, for perf-gate post-mortems *)
}

let task ~label f =
  let cell = ref None in
  let t =
    {
      t_label = label;
      t_run = (fun () -> cell := Some (f ()));
      t_wall_ns = 0;
      t_sim_ns = 0;
      t_events = 0;
      t_sink = None;
      t_account = None;
      t_flight = [];
    }
  in
  let get () =
    match !cell with
    | Some v -> v
    | None -> failwith (Printf.sprintf "bench task %S rendered before it ran" label)
  in
  (t, get)

(* One task per item; the getter returns results in item order. *)
let tasks ~label items f =
  let pairs = List.map (fun item -> task ~label:(label item) (fun () -> f item)) items in
  let ts = List.map fst pairs in
  let get () = List.map (fun (_, g) -> g ()) pairs in
  (ts, get)

(* One independent, seeded task per trial; results merge in seed order.
   This is the harness's determinism contract: a trial owns its seed and
   everything derived from it, so the schedule cannot change the data. *)
let run_trials ~label ~seeds f =
  tasks ~label:(fun seed -> Printf.sprintf "%s[seed=%d]" label seed) seeds
    (fun seed -> f ~seed)

(* Standard per-figure seed derivation: one small, readable namespace per
   experiment, disjoint across experiments by construction. *)
let trial_seeds ~base n = List.init n (fun i -> base + i)

(* ---- plans ------------------------------------------------------------ *)

type figure = { fg_name : string; fg_value : float }
type check = { ck_name : string; ck_ok : bool }

type rendered = {
  rd_output : string;
  rd_figures : figure list;
  rd_checks : check list;
}

type plan = { p_tasks : task list; p_render : unit -> rendered }

let figure name value = { fg_name = name; fg_value = value }
let check name ok = { ck_name = name; ck_ok = ok }

(* ---- rendering helpers ------------------------------------------------ *)

let header b title =
  Buffer.add_string b "\n==============================================================\n";
  Buffer.add_string b title;
  Buffer.add_string b "\n==============================================================\n"

let note b fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string b "  # ";
      Buffer.add_string b s;
      Buffer.add_char b '\n')
    fmt

(* ---- execution -------------------------------------------------------- *)

let exec_task t =
  let t0 = Unix.gettimeofday () in
  let engines = ref [] in
  let kernels = ref [] in
  Domain.DLS.set engine_collector (Some engines);
  Domain.DLS.set kernel_collector (Some kernels);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set engine_collector None;
      Domain.DLS.set kernel_collector None)
    (fun () ->
      match telemetry_mode () with
      | Gray_util.Telemetry.Off -> t.t_run ()
      | mode ->
        (* Each task owns a hermetic sink: no cross-domain interleaving,
           and exports in submission order are identical at any -j. *)
        let sink = Gray_util.Telemetry.create ~mode ~name:t.t_label () in
        t.t_sink <- Some sink;
        Gray_util.Telemetry.with_sink sink t.t_run);
  t.t_wall_ns <- int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
  List.iter
    (fun e ->
      t.t_sim_ns <- t.t_sim_ns + Engine.now e;
      t.t_events <- t.t_events + Engine.events_processed e)
    !engines;
  (* [kernels] conses newest-first: reverse for boot order so the merged
     export (and hence the suite JSON) is schedule-independent. *)
  let exports =
    List.filter_map
      (fun k -> Option.map Account.export (Kernel.account k))
      (List.rev !kernels)
  in
  if exports <> [] then t.t_account <- Some (Account.merge_exports exports);
  match !kernels with
  | last :: _ -> (
    match Kernel.flight last with
    | Some fl -> t.t_flight <- Gray_util.Flight.lines ~last:32 fl
    | None -> ())
  | [] -> ()

let execute ?pool plans =
  ignore (telemetry_mode ());
  let all = List.concat_map (fun p -> p.p_tasks) plans in
  match pool with
  | Some pool when Gray_util.Domain_pool.size pool > 1 ->
    Gray_util.Domain_pool.run pool (List.map (fun t () -> exec_task t) all)
  | Some _ | None -> List.iter exec_task all

type plan_stats = {
  st_tasks : int;
  st_wall_ns : int;  (* sum of task wall times: work, not elapsed, time *)
  st_sim_ns : int;
  st_events : int;
}

let plan_stats p =
  List.fold_left
    (fun acc t ->
      {
        st_tasks = acc.st_tasks + 1;
        st_wall_ns = acc.st_wall_ns + t.t_wall_ns;
        st_sim_ns = acc.st_sim_ns + t.t_sim_ns;
        st_events = acc.st_events + t.t_events;
      })
    { st_tasks = 0; st_wall_ns = 0; st_sim_ns = 0; st_events = 0 }
    p.p_tasks

(* ---- telemetry exports ------------------------------------------------ *)

let plan_sinks p = List.filter_map (fun t -> t.t_sink) p.p_tasks

(* One Chrome trace for the whole run: pid per experiment, tid per task,
   both in submission order — so the export is byte-identical at any -j. *)
let chrome_trace_of plans =
  let events =
    List.concat
      (List.mapi
         (fun pid plan ->
           List.concat
             (List.mapi
                (fun tid t ->
                  match t.t_sink with
                  | None -> []
                  | Some s -> Gray_util.Telemetry.chrome_events s ~pid:(pid + 1) ~tid:(tid + 1))
                plan.p_tasks))
         plans)
  in
  Gray_util.Telemetry.chrome_trace events

let telemetry_summary plans =
  Gray_util.Telemetry.summary (List.concat_map plan_sinks plans)

(* ---- the machine-readable perf trajectory ----------------------------- *)

(* Merged accounting ledger of every kernel the plan's tasks booted
   (tasks merge in submission order, so the aggregate is -j-independent). *)
let plan_account p =
  Account.merge_exports (List.filter_map (fun t -> t.t_account) p.p_tasks)

(* The last non-empty flight tail among the plan's tasks: the most recent
   machine history a regressed experiment can attach to its verdict. *)
let plan_flight_tail p =
  List.fold_left
    (fun acc t -> if t.t_flight <> [] then t.t_flight else acc)
    [] p.p_tasks

(* Schema v3 adds the per-experiment "accounting" object (and, for
   experiments named in [regressed], the "flight_tail" post-mortem).
   With GRAYBOX_ACCOUNT=off the emitted document is byte-identical to
   schema v2 — the proof that accounting can be turned off without
   perturbing the trajectory a downstream gate diffs against. *)
let suite_json ~jobs ~suite_wall_ns ?(regressed = []) results =
  let open Gray_util.Json in
  let acct_on = accounting_on () in
  let experiment (name, doc, plan, rendered) =
    let st = plan_stats plan in
    let accounting =
      if acct_on then [ ("accounting", Account.export_json (plan_account plan)) ]
      else []
    in
    let flight_tail =
      if acct_on && List.mem name regressed then
        match plan_flight_tail plan with
        | [] -> []
        | lines -> [ ("flight_tail", List (List.map (fun l -> String l) lines)) ]
      else []
    in
    Obj
      ([
         ("name", String name);
         ("doc", String doc);
         ("tasks", Int st.st_tasks);
         ("wall_ns", Int st.st_wall_ns);
         ("sim_ns", Int st.st_sim_ns);
         ("events", Int st.st_events);
         ("metrics", Gray_util.Telemetry.merge_metrics_json (plan_sinks plan));
       ]
      @ accounting @ flight_tail
      @ [
          ( "figures",
            List
              (List.map
                 (fun f -> Obj [ ("name", String f.fg_name); ("value", Float f.fg_value) ])
                 rendered.rd_figures) );
          ( "checks",
            List
              (List.map
                 (fun c -> Obj [ ("name", String c.ck_name); ("ok", Bool c.ck_ok) ])
                 rendered.rd_checks) );
        ])
  in
  Obj
    [
      ( "schema",
        String
          (if acct_on then "graybox-bench-suite/3" else "graybox-bench-suite/2") );
      ("jobs", Int jobs);
      ("trials", Int (trials ()));
      ("telemetry", String (Gray_util.Telemetry.mode_to_string (telemetry_mode ())));
      ("suite_wall_ns", Int suite_wall_ns);
      ("experiments", List (List.map experiment results));
    ]
