(* Tables 1 and 2: the gray-box technique summaries, backed by live
   measurements rather than prose alone.

   Two tasks: the Table-1 bundle of related-system simulations and the
   Table-2 live case-study probes. *)

open Simos
open Graybox_core
open Bench_common

let table1_experiment () =
  (* TCP *)
  let rng = Gray_util.Rng.create ~seed:1 in
  let wired =
    Gray_related.Tcp.simulate rng ~flows:4 ~capacity:100 ~queue:50 ~rounds:2000
      ~loss:Gray_related.Tcp.Congestion_only
  in
  let rng = Gray_util.Rng.create ~seed:1 in
  let wireless =
    Gray_related.Tcp.simulate rng ~flows:4 ~capacity:100 ~queue:50 ~rounds:2000
      ~loss:(Gray_related.Tcp.Wireless 0.02)
  in
  (* implicit coscheduling *)
  let cos policy seed =
    let rng = Gray_util.Rng.create ~seed in
    Gray_related.Cosched.simulate rng ~nodes:4 ~background:1 ~granularity_us:100
      ~barriers:300 ~quantum_us:10_000 ~ctx_switch_us:50 ~policy
  in
  let blocked = cos Gray_related.Cosched.Block_immediately 5 in
  let two_phase = cos (Gray_related.Cosched.Two_phase 4_000) 5 in
  (* MS Manners *)
  let man naive seed =
    let rng = Gray_util.Rng.create ~seed in
    Gray_related.Manners.simulate rng Gray_related.Manners.default_config
      ~busy_us:500_000 ~idle_us:500_000 ~phases:40 ~naive
  in
  let naive = man true 6 in
  let polite = man false 6 in
  let vmm policy seed =
    let rng = Gray_util.Rng.create ~seed in
    Gray_related.Vmm.simulate rng ~guests:3 ~slice_us:10_000 ~switch_cost_us:100
      ~busy_us:2_000 ~idle_us:8_000 ~total_work_us:200_000 ~policy
  in
  let vmm_naive = vmm Gray_related.Vmm.Fixed_slice 7 in
  let vmm_aware = vmm Gray_related.Vmm.Idle_aware 7 in
  (wired, wireless, blocked, two_phase, naive, polite, vmm_naive, vmm_aware)

let table2_experiment () =
  (* small live runs to put real numbers in the cells *)
  let k = boot () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/sample" (100 * mib);
      Kernel.flush_file_cache k;
      let config =
        { (Fccd.default_config ~seed:3 ()) with Fccd.access_unit = 20 * mib;
          prediction_unit = 5 * mib }
      in
      let plan = Gray_apps.Workload.ok_exn (Fccd.probe_file env config ~path:"/d0/sample") in
      let alloc =
        Mac.gb_alloc env
          { (Mac.default_config ()) with Mac.initial_increment = 8 * mib }
          ~min:(16 * mib) ~max:(256 * mib) ~multiple:100
      in
      (match alloc with Some a -> Mac.gb_free env a | None -> ());
      (plan.Fccd.plan_probes, Mac.last_stats ()))

let render_table1 b (wired, wireless, blocked, two_phase, naive, polite, vmm_naive, vmm_aware) =
  header b "Table 1: Gray-Box Techniques used in Existing Systems (behavioural reproduction)";
  let t =
    Gray_util.Table.create ~title:"system / knowledge / observed output / measured result"
      ~columns:[ "system"; "gray-box knowledge"; "output observed"; "measured here" ]
  in
  Gray_util.Table.add_row t
    [
      "TCP congestion ctl";
      "msg dropped => congestion";
      "time before ACK arrives";
      Printf.sprintf "inference precision %.2f; utilization %.2f; fairness %.2f"
        wired.Gray_related.Tcp.r_inference_precision wired.Gray_related.Tcp.r_utilization
        wired.Gray_related.Tcp.r_fairness;
    ];
  Gray_util.Table.add_row t
    [
      "  (wireless caveat)";
      "same knowledge, now wrong";
      "same";
      Printf.sprintf "precision %.2f, utilization %.2f -> the paper's warning"
        wireless.Gray_related.Tcp.r_inference_precision
        wireless.Gray_related.Tcp.r_utilization;
    ];
  Gray_util.Table.add_row t
    [
      "implicit cosched";
      "msg arrival => sender scheduled";
      "arrival of requests; response time";
      Printf.sprintf "slowdown: block-immediately %.1fx vs two-phase %.1fx (bg share %.2f)"
        blocked.Gray_related.Cosched.c_slowdown two_phase.Gray_related.Cosched.c_slowdown
        two_phase.Gray_related.Cosched.c_background_share;
    ];
  Gray_util.Table.add_row t
    [
      "Disco VMM (Sec. 6)";
      "guest idle loop => nothing to run";
      "low-power/idle instruction pattern";
      Printf.sprintf "idle cycles burned %.0f%% -> %.0f%%; throughput %.2f -> %.2f"
        (100.0 *. float_of_int vmm_naive.Gray_related.Vmm.d_idle_burned_us
         /. float_of_int vmm_naive.Gray_related.Vmm.d_elapsed_us)
        (100.0 *. float_of_int vmm_aware.Gray_related.Vmm.d_idle_burned_us
         /. float_of_int vmm_aware.Gray_related.Vmm.d_elapsed_us)
        vmm_naive.Gray_related.Vmm.d_throughput vmm_aware.Gray_related.Vmm.d_throughput;
    ];
  Gray_util.Table.add_row t
    [
      "MS Manners";
      "contention degrades progress symmetrically";
      "own progress rate (EMA baseline)";
      Printf.sprintf
        "interference %.2f -> %.2f; idle use %.2f; detection accuracy %.2f"
        naive.Gray_related.Manners.m_foreground_interference
        polite.Gray_related.Manners.m_foreground_interference
        polite.Gray_related.Manners.m_idle_utilization
        polite.Gray_related.Manners.m_detection_accuracy;
    ];
  Buffer.add_string b (Gray_util.Table.render t)

let render_table2 b (fccd_probes, mac_stats) =
  header b "Table 2: Gray-Box Techniques used in the Case Studies (with live probe counts)";
  let t =
    Gray_util.Table.create ~title:""
      ~columns:[ "technique"; "FCCD"; "FLDC"; "MAC" ]
  in
  Gray_util.Table.add_row t
    [
      "knowledge";
      "LRU-like replacement, page granularity";
      "FFS-like allocation (inode ~ layout)";
      "working-set page replacement";
    ];
  Gray_util.Table.add_row t
    [
      "outputs observed";
      Printf.sprintf "timed 1-byte read probes (%d for a 100 MB file)" fccd_probes;
      "i-numbers via stat()";
      Printf.sprintf "timed page touches (%d steps, %d backoffs)"
        mac_stats.Mac.s_steps mac_stats.Mac.s_backoffs;
    ];
  Gray_util.Table.add_row t
    [
      "statistics";
      "sorting by probe time; 2-means clustering (compose)";
      "sorting by i-number";
      "median calibration + consecutive-slow detection";
    ];
  Gray_util.Table.add_row t
    [
      "benchmarks";
      "access unit from bandwidth sweep";
      "none";
      "page-touch costs (or repo thresholds)";
    ];
  Gray_util.Table.add_row t
    [ "probes"; "random byte per prediction unit"; "stat() of each file"; "two write loops" ];
  Gray_util.Table.add_row t
    [
      "move to known state";
      "-";
      "directory refresh (copy-out in size order)";
      "first touch loop normalises the chunk";
    ];
  Gray_util.Table.add_row t
    [
      "feedback";
      "access-unit reads keep access units cached";
      "refreshed layout stays refreshed";
      "conservative AIMD-like increments";
    ];
  Buffer.add_string b (Gray_util.Table.render t)

let plan () =
  let t1, t1_get = task ~label:"tables[1]" table1_experiment in
  let t2, t2_get = task ~label:"tables[2]" table2_experiment in
  let render () =
    let b = Buffer.create 4096 in
    let ((wired, wireless, blocked, two_phase, _, polite, vmm_naive, vmm_aware) as r1) =
      t1_get ()
    in
    let (fccd_probes, mac_stats) = t2_get () in
    render_table1 b r1;
    render_table2 b (fccd_probes, mac_stats);
    {
      rd_output = Buffer.contents b;
      rd_figures =
        [
          figure "tcp_precision[wired]" wired.Gray_related.Tcp.r_inference_precision;
          figure "tcp_precision[wireless]" wireless.Gray_related.Tcp.r_inference_precision;
          figure "cosched_slowdown[two_phase]" two_phase.Gray_related.Cosched.c_slowdown;
          figure "manners_interference[polite]"
            polite.Gray_related.Manners.m_foreground_interference;
          figure "vmm_throughput[idle_aware]" vmm_aware.Gray_related.Vmm.d_throughput;
          figure "fccd_probes_100mb" (float_of_int fccd_probes);
          figure "mac_steps" (float_of_int mac_stats.Mac.s_steps);
        ];
      rd_checks =
        [
          check "wired TCP inference beats wireless"
            (wired.Gray_related.Tcp.r_inference_precision
            > wireless.Gray_related.Tcp.r_inference_precision);
          check "two-phase waiting beats block-immediately"
            (two_phase.Gray_related.Cosched.c_slowdown
            < blocked.Gray_related.Cosched.c_slowdown);
          check "idle-aware VMM beats fixed slices"
            (vmm_aware.Gray_related.Vmm.d_throughput
            > vmm_naive.Gray_related.Vmm.d_throughput);
        ];
    }
  in
  { p_tasks = [ t1; t2 ]; p_render = render }
