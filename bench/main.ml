(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations and toolbox microbenchmarks.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2 fig7    # a subset
     GRAYBOX_TRIALS=30 dune exec bench/main.exe -- fig5

   Experiment ids: fig1..fig7, table1, table2, ablation, micro. *)

let experiments =
  [
    ("fig1", Fig1.run, "probe correlation vs prediction-unit size");
    ("fig2", Fig2.run, "single-file scan, linear vs gray-box vs models");
    ("fig3", Fig3.run, "grep and fastsort application performance");
    ("fig4", Fig4.run, "multi-platform scans and searches");
    ("fig5", Fig5.run, "file ordering: random vs directory vs i-number");
    ("fig6", Fig6.run, "file-system aging and directory refresh");
    ("fig7", Fig7.run, "four competing fastsorts with MAC");
    ("table1", Tables.table1, "techniques in existing gray-box systems");
    ("table2", Tables.table2, "techniques in the three case-study ICLs");
    ("ablation", Ablation.run, "policy / noise / increment ablations");
    ("baselines", Baselines.run, "SLEDs / vmstat / interposition comparators");
    ("fingerprint", Fingerprint_bench.run, "identify the cache policy from user level");
    ("micro", Micro.run, "bechamel microbenchmarks of the toolbox");
    ("faults", Faults.run, "accuracy vs fault-intensity degradation curves");
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (name, _, doc) -> Printf.printf "  %-8s %s\n" name doc) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | [] ->
    Printf.printf
      "Reproducing all tables and figures (GRAYBOX_TRIALS=%d; paper used 30).\n%!"
      Bench_common.trials;
    List.iter (fun (_, run, _) -> run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, run, _) -> run ()
        | None ->
          Printf.eprintf "unknown experiment %s\n" name;
          usage ();
          exit 1)
      names
