(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations and toolbox microbenchmarks.

     dune exec bench/main.exe                        # default set
     dune exec bench/main.exe -- fig2 fig7           # a subset
     dune exec bench/main.exe -- -j 8                # eight domains
     dune exec bench/main.exe -- --json out.json     # perf trajectory
     GRAYBOX_TRIALS=30 dune exec bench/main.exe -- fig5

   Every experiment builds a plan of self-contained tasks; the driver
   fans all tasks over a domain pool and renders afterwards in
   submission order, so stdout and the JSON are byte-identical at any
   -j.  `micro` (hardware microbenchmarks) only runs when named
   explicitly, because its numbers are measurements of this machine.

   Experiment ids: fig1..fig7, tables, ablation, baselines,
   fingerprint, faults, micro, crash. *)

open Gray_bench

let experiments =
  [
    ("fig1", Fig1.plan, "probe correlation vs prediction-unit size");
    ("fig2", Fig2.plan, "single-file scan, linear vs gray-box vs models");
    ("fig3", Fig3.plan, "grep and fastsort application performance");
    ("fig4", Fig4.plan, "multi-platform scans and searches");
    ("fig5", Fig5.plan, "file ordering: random vs directory vs i-number");
    ("fig6", Fig6.plan, "file-system aging and directory refresh");
    ("fig7", Fig7.plan, "four competing fastsorts with MAC");
    ("tables", Tables.plan, "techniques in existing systems and the case studies");
    ("ablation", Ablation.plan, "policy / noise / increment ablations");
    ("baselines", Baselines.plan, "SLEDs / vmstat / interposition comparators");
    ("fingerprint", Fingerprint_bench.plan, "identify the cache policy from user level");
    ("faults", Faults.plan, "accuracy vs fault-intensity degradation curves");
    ("micro", Micro.plan, "bechamel microbenchmarks of the toolbox (hardware-dependent)");
    ("crash", Crash_bench.plan, "exhaustive crash-point exploration of ICL recovery");
    ("drift", Drift_bench.plan, "frozen vs adaptive ICL accuracy under environment drift");
    ("fleet", Fleet_bench.plan, "multi-tenant fleets: scheduler scale, MAC fairness, FCCD pollution");
  ]

let default_set =
  (* micro measures the host machine, not the simulation; crash, drift
     and fleet are robustness/regime gates rather than paper figures:
     all only on request (keeping drift out also keeps the default suite
     byte-identical with the drift plane compiled in) *)
  List.filter
    (fun (name, _, _) ->
      name <> "micro" && name <> "crash" && name <> "drift" && name <> "fleet")
    experiments

let usage () =
  print_endline
    "usage: main.exe [-j N] [--json PATH] [--strict] [--trials N] [--trace PATH]";
  print_endline "               [--trace-summary] [--compare BASELINE.json]";
  print_endline "               [--compare-threshold PCT] [experiment ...]";
  print_endline "options:";
  print_endline "  -j N            run experiment tasks on N domains (default: the host's";
  print_endline "                  recommended domain count; results identical at any N)";
  print_endline "  --json PATH     write the machine-readable perf trajectory (BENCH_suite.json)";
  print_endline "  --strict        exit non-zero if any expected-shape check fails";
  print_endline "  --trials N      same as GRAYBOX_TRIALS=N";
  print_endline "  --trace PATH    write a Chrome trace_event JSON (Perfetto-loadable);";
  print_endline "                  turns telemetry on (full) unless GRAYBOX_TELEMETRY says";
  print_endline "                  otherwise";
  print_endline "  --trace-summary print a human-readable span/metric summary table;";
  print_endline "                  also turns telemetry on";
  print_endline "  --compare BASELINE.json";
  print_endline "                  print per-experiment wall-time deltas against an earlier";
  print_endline "                  trajectory; exit 4 if any experiment regressed past the";
  print_endline "                  threshold (gate skipped when trial counts differ)";
  print_endline "  --compare-threshold PCT";
  print_endline "                  regression threshold for --compare, percent (default 25;";
  print_endline "                  wall time on shared runners jitters ~10%)";
  print_endline "experiments (default: all but micro, crash, drift and fleet):";
  List.iter (fun (name, _, doc) -> Printf.printf "  %-12s %s\n" name doc) experiments

let parse_args () =
  let jobs = ref (Domain.recommended_domain_count ()) in
  let json = ref None in
  let strict = ref false in
  let trace = ref None in
  let trace_summary = ref false in
  let compare_path = ref None in
  let compare_threshold = ref 25.0 in
  let names = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> prerr_endline s; usage (); exit 2) fmt in
  let int_arg flag = function
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None -> bad "%s expects an integer >= 1, got %s" flag s)
    | None -> bad "%s expects an argument" flag
  in
  let rec go = function
    | [] -> ()
    | ("--help" | "-h" | "help") :: _ ->
      usage ();
      exit 0
    | "-j" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      jobs := int_arg "-j" v;
      go rest
    | "--json" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      (match v with Some p -> json := Some p | None -> bad "--json expects a path");
      go rest
    | "--trials" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      Bench_common.set_trials (int_arg "--trials" v);
      go rest
    | "--strict" :: rest ->
      strict := true;
      go rest
    | "--trace" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      (match v with Some p -> trace := Some p | None -> bad "--trace expects a path");
      go rest
    | "--trace-summary" :: rest ->
      trace_summary := true;
      go rest
    | "--compare" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      (match v with
      | Some p -> compare_path := Some p
      | None -> bad "--compare expects a path");
      go rest
    | "--compare-threshold" :: rest ->
      let v, rest = (match rest with x :: r -> (Some x, r) | [] -> (None, [])) in
      (match v with
      | Some s -> (
        match float_of_string_opt s with
        | Some pct when pct > 0.0 -> compare_threshold := pct
        | Some _ | None ->
          bad "--compare-threshold expects a positive percentage, got %s" s)
      | None -> bad "--compare-threshold expects an argument");
      go rest
    | name :: rest ->
      (match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some exp -> names := exp :: !names
      | None -> bad "unknown experiment %s" name);
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let selected = match List.rev !names with [] -> default_set | l -> l in
  ( !jobs, !json, !strict, !trace, !trace_summary,
    !compare_path, !compare_threshold, selected )

(* Export-write failures get their own exit code (3), distinct from the
   strict-check failure (1) and the usage error (2); a perf regression
   caught by --compare is 4. *)
let exit_export_failed = 3
let exit_perf_regressed = 4

let save_or_die ~what ~path json =
  try Gray_util.Json.save ~path json
  with Sys_error msg ->
    Printf.eprintf "error: cannot write %s to %s: %s\n%!" what path msg;
    exit exit_export_failed

(* ---- perf gate (--compare) -------------------------------------------- *)

(* Per-experiment wall-time deltas against an earlier BENCH_suite.json.
   Experiment wall time is the sum of task work times, so the comparison
   is meaningful even when the two runs used different -j; trial counts
   must match, though — when they differ the deltas still print but the
   gate does not fire.  Returns the names of experiments present in both
   trajectories that slowed down past [threshold_pct] — the JSON writer
   attaches their flight-recorder tails as the post-mortem. *)
let perf_gate ~baseline_path ~threshold_pct results =
  let open Gray_util.Json in
  let die msg =
    Printf.eprintf "error: --compare: %s\n%!" msg;
    exit exit_export_failed
  in
  let base =
    match load ~path:baseline_path with Ok v -> v | Error e -> die e
  in
  let base_trials = Option.bind (member "trials" base) to_float_opt in
  let trials_match =
    base_trials = Some (float_of_int (Bench_common.trials ()))
  in
  let base_wall =
    match Option.bind (member "experiments" base) to_list_opt with
    | None -> die "baseline has no experiments array"
    | Some exps ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (member "name" e) to_string_opt,
              Option.bind (member "wall_ns" e) to_float_opt )
          with
          | Some n, Some w -> Some (n, w)
          | _ -> None)
        exps
  in
  let regressed = ref [] in
  Printf.printf "\nperf vs %s (threshold +%.0f%%):\n" baseline_path threshold_pct;
  if not trials_match then
    Printf.printf
      "  note: trial counts differ (baseline %s, this run %d) — deltas are\n\
      \  not comparable, gate disabled\n"
      (match base_trials with
      | Some t -> string_of_int (int_of_float t)
      | None -> "unknown")
      (Bench_common.trials ());
  List.iter
    (fun (name, _, plan, _) ->
      let now_s =
        float_of_int (Bench_common.plan_stats plan).Bench_common.st_wall_ns /. 1e9
      in
      match List.assoc_opt name base_wall with
      | None -> Printf.printf "  %-12s %8.1f s   (not in baseline)\n" name now_s
      | Some base_ns ->
        let base_s = base_ns /. 1e9 in
        let delta_pct =
          if base_s > 0.0 then (now_s -. base_s) /. base_s *. 100.0 else 0.0
        in
        let slow = trials_match && delta_pct > threshold_pct in
        if slow then regressed := name :: !regressed;
        Printf.printf "  %-12s %8.1f s  -> %8.1f s   %+6.1f%%%s\n" name base_s
          now_s delta_pct
          (if slow then "  REGRESSED" else ""))
    results;
  List.rev !regressed

let () =
  (* The simulator is allocation-heavy (fibers, per-syscall records); a
     larger minor heap keeps short-lived values out of the major heap.
     GC settings cannot affect results — the simulation is deterministic
     in its own virtual clock. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  let jobs, json_path, strict, trace_path, trace_summary, compare_path,
      compare_threshold, selected =
    parse_args ()
  in
  (* Asking for a trace export opts into telemetry; an explicit
     GRAYBOX_TELEMETRY (e.g. a sample rate) still wins. *)
  if trace_path <> None || trace_summary then begin
    match Gray_util.Telemetry.of_env () with
    | Gray_util.Telemetry.Off -> Bench_common.set_telemetry_mode Gray_util.Telemetry.Full
    | mode -> Bench_common.set_telemetry_mode mode
  end;
  Printf.printf
    "Reproducing %d experiment(s): %d trials per figure (paper used 30), %d domain(s).\n%!"
    (List.length selected) (Bench_common.trials ()) jobs;
  let t0 = Unix.gettimeofday () in
  let plans = List.map (fun (name, plan, doc) -> (name, doc, plan ())) selected in
  let pool = Gray_util.Domain_pool.create ~size:jobs in
  Fun.protect
    ~finally:(fun () -> Gray_util.Domain_pool.shutdown pool)
    (fun () -> Bench_common.execute ~pool (List.map (fun (_, _, p) -> p) plans));
  let results =
    List.map (fun (name, doc, plan) -> (name, doc, plan, plan.Bench_common.p_render ())) plans
  in
  let suite_wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  List.iter (fun (_, _, _, r) -> print_string r.Bench_common.rd_output) results;
  (* check summary *)
  let all_checks =
    List.concat_map (fun (name, _, _, r) ->
        List.map (fun c -> (name, c)) r.Bench_common.rd_checks)
      results
  in
  let failed =
    List.filter (fun (_, c) -> not c.Bench_common.ck_ok) all_checks
  in
  Printf.printf "\nexpected-shape checks: %d/%d passed"
    (List.length all_checks - List.length failed)
    (List.length all_checks);
  Printf.printf "   (suite wall-clock %.1f s, -j %d)\n"
    (float_of_int suite_wall_ns /. 1e9) jobs;
  List.iter
    (fun (name, c) -> Printf.printf "  FAILED [%s] %s\n" name c.Bench_common.ck_name)
    failed;
  (* The gate runs before the JSON write so a regressed experiment's
     flight-recorder tail rides along in the trajectory it failed. *)
  let regressed =
    match compare_path with
    | None -> []
    | Some baseline_path ->
      perf_gate ~baseline_path ~threshold_pct:compare_threshold results
  in
  (match json_path with
  | None -> ()
  | Some path ->
    save_or_die ~what:"perf trajectory" ~path
      (Bench_common.suite_json ~jobs ~suite_wall_ns ~regressed results);
    Printf.printf "perf trajectory written to %s\n" path);
  let bare_plans = List.map (fun (_, _, p) -> p) plans in
  (match trace_path with
  | None -> ()
  | Some path ->
    save_or_die ~what:"trace" ~path (Bench_common.chrome_trace_of bare_plans);
    Printf.printf "chrome trace written to %s\n" path);
  if trace_summary then print_string (Bench_common.telemetry_summary bare_plans);
  if strict && failed <> [] then exit 1;
  if regressed <> [] then exit exit_perf_regressed
