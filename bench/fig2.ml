(* Figure 2: Single-File Scan.

   Warm-cache repeated scans of a file of varying size: traditional linear
   scan vs gray-box scan, with the predicted worst-case (all from disk) and
   predicted ideal (cached part at memory-copy rate) model curves.

   One task per file size (the repeated warm-cache runs inside a size are
   a sequential steady-state experiment and stay serial by design). *)

open Simos
open Bench_common

let sizes = List.map (fun m -> m * mib) [ 128; 256; 384; 512; 640; 768; 896; 1024; 1152; 1280 ]
let cache_bytes = 830 * mib

let models (platform : Platform.t) size =
  let disk_ns_per_byte =
    float_of_int platform.Platform.disk.Disk.transfer_ns_per_block /. 4096.0
  in
  let worst =
    float_of_int size *. (disk_ns_per_byte +. platform.Platform.memcopy_byte_ns)
  in
  let cached = min size cache_bytes in
  let ideal =
    (float_of_int cached *. platform.Platform.memcopy_byte_ns)
    +. (float_of_int (max 0 (size - cached))
       *. (disk_ns_per_byte +. platform.Platform.memcopy_byte_ns))
  in
  (worst, ideal)

let steady_scan k env ~trials ~variant ~path =
  Kernel.flush_file_cache k;
  let config =
    { (Graybox_core.Fccd.default_config ~seed:7 ()) with Graybox_core.Fccd.access_unit = 20 * mib;
      prediction_unit = 5 * mib }
  in
  let once () =
    match variant with
    | `Linear -> Gray_apps.Scan.linear env ~path ~unit_bytes:(20 * mib)
    | `Gray -> Gray_apps.Scan.gray env config ~path
  in
  ignore (once ());
  (* warm-up: establishes the steady-state cache contents *)
  List.init trials (fun _ -> once ())

let plan () =
  let trials = trials () in
  let platform = Platform.linux_2_2 in
  let ts, get =
    tasks
      ~label:(fun size -> Printf.sprintf "fig2[%s]" (Gray_util.Units.bytes_to_string size))
      sizes
      (fun size ->
        let k = boot ~platform () in
        in_proc k (fun env ->
            Gray_apps.Workload.write_file env "/d0/scanfile" size;
            let linear = steady_scan k env ~trials ~variant:`Linear ~path:"/d0/scanfile" in
            let gray = steady_scan k env ~trials ~variant:`Gray ~path:"/d0/scanfile" in
            (linear, gray)))
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 2: Single-File Scan (warm cache, repeated runs)";
    note b "%d timed runs after one warm-up per point (paper: 30)" trials;
    let table =
      Gray_util.Table.create ~title:"total access time"
        ~columns:[ "file size"; "linear scan"; "gray-box scan"; "model worst"; "model ideal" ]
    in
    let results = List.combine sizes (get ()) in
    let figures = ref [] and checks = ref [] in
    List.iter
      (fun (size, (linear, gray)) ->
        let lm, _ = mean_std linear and gm, _ = mean_std gray in
        let worst, ideal = models platform size in
        let sz = Gray_util.Units.bytes_to_string size in
        figures :=
          figure (Printf.sprintf "gray_s[%s]" sz) (gm /. 1e9)
          :: figure (Printf.sprintf "linear_s[%s]" sz) (lm /. 1e9)
          :: !figures;
        if size > cache_bytes then
          checks :=
            check (Printf.sprintf "gray beats linear past the cache size (%s)" sz) (gm < lm)
            :: !checks;
        Gray_util.Table.add_row table
          [
            sz;
            pp_mean_std (mean_std linear);
            pp_mean_std (mean_std gray);
            Printf.sprintf "%7.2f s" (worst /. 1e9);
            Printf.sprintf "%7.2f s" (ideal /. 1e9);
          ])
      results;
    Buffer.add_string b (Gray_util.Table.render table);
    note b
      "expected shape: linear collapses to disk rate past ~830 MB; gray-box tracks the ideal model";
    { rd_output = Buffer.contents b; rd_figures = List.rev !figures; rd_checks = List.rev !checks }
  in
  { p_tasks = ts; p_render = render }
