(* Figure 6: Aging and Refresh.

   100 files in one directory; each epoch deletes five random files and
   creates five new ones.  An application reads all the files once per
   epoch, cold-cache, in random order vs i-number order.  At epoch 31 the
   directory is explicitly refreshed; i-number performance must snap back
   to the fresh-directory level.

   A single task: aging is a serial process by construction (epoch N+1's
   directory state depends on epoch N's deletions). *)

open Simos
open Graybox_core
open Bench_common

let file_count = 100
let file_bytes = 8 * 1024
let epochs = 40
let refresh_at = 31

let experiment () =
  let k = boot () in
  in_proc k (fun env ->
      ignore
        (Gray_apps.Workload.make_files env ~dir:"/d0/aged" ~prefix:"f"
           ~count:file_count ~size:file_bytes);
      let rng = Gray_util.Rng.create ~seed:31 in
      let timed_read order =
        Kernel.flush_file_cache k;
        let t0 = Kernel.gettime env in
        List.iter (fun p -> Gray_apps.Workload.read_file env p) order;
        Kernel.gettime env - t0
      in
      let measure () =
        let paths = Gray_apps.Workload.paths_in env ~dir:"/d0/aged" in
        let arr = Array.of_list paths in
        Gray_util.Rng.shuffle rng arr;
        let random_ns = timed_read (Array.to_list arr) in
        let ordered = Gray_apps.Workload.ok_exn (Fldc.order_by_inumber env ~paths) in
        let ino_ns = timed_read (List.map (fun s -> s.Fldc.so_path) ordered) in
        (random_ns, ino_ns)
      in
      List.init (epochs + 1) (fun epoch ->
          if epoch > 0 then begin
            if epoch = refresh_at then
              Gray_apps.Workload.ok_exn
                (Result.map_error
                   (fun e -> failwith (Kernel.error_to_string e))
                   (Fldc.refresh_directory env ~dir:"/d0/aged" ()));
            Gray_apps.Workload.age_directory env rng ~dir:"/d0/aged" ~deletes:5
              ~creates:5 ~size:file_bytes
          end;
          let random_ns, ino_ns = measure () in
          (epoch, random_ns, ino_ns)))

let plan () =
  let t, get = task ~label:"fig6[aging]" experiment in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 6: File-System Aging and Directory Refresh";
    let rows = get () in
    let table =
      Gray_util.Table.create ~title:"read time per epoch"
        ~columns:[ "epoch"; "random order"; "i-number order"; "" ]
    in
    List.iter
      (fun (epoch, random_ns, ino_ns) ->
        Gray_util.Table.add_row table
          [
            string_of_int epoch;
            Printf.sprintf "%6.2f s" (seconds random_ns);
            Printf.sprintf "%6.2f s" (seconds ino_ns);
            (if epoch = refresh_at then "<- refresh" else "");
          ])
      rows;
    Buffer.add_string b (Gray_util.Table.render table);
    let _, _, fresh = List.nth rows 0 in
    let _, _, aged = List.nth rows (refresh_at - 1) in
    let _, _, refreshed = List.nth rows refresh_at in
    note b "i-number order: fresh %.2fs -> aged(30) %.2fs -> refreshed %.2fs" (seconds fresh)
      (seconds aged) (seconds refreshed);
    note b
      "expected shape: i-number degrades ~3x over 30 epochs but stays below random; refresh restores it";
    {
      rd_output = Buffer.contents b;
      rd_figures =
        [
          figure "ino_fresh_s" (seconds fresh);
          figure "ino_aged_s" (seconds aged);
          figure "ino_refreshed_s" (seconds refreshed);
        ];
      rd_checks =
        [
          check "aging degrades i-number order" (aged > fresh);
          check "refresh restores i-number order" (refreshed < aged);
        ];
    }
  in
  { p_tasks = [ t ]; p_render = render }
