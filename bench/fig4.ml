(* Figure 4: Multi-Platform Experiments.

   Repeated large-file scans and early-exit multi-file searches on the
   Linux, NetBSD and Solaris presets.  Per experiment, three bars:
   cold-cache traditional, warm-cache traditional, warm-cache gray-box,
   normalised to the cold-cache time on that platform.

   Platform-specific sizes follow the paper: scans are over 1 GB on Linux
   and Solaris but 65 MB on NetBSD (its file cache is a fixed 64 MB);
   searches are over 100 x 10 MB files (NetBSD: 65 x 1 MB) with the match
   in a cached file named last.

   One task per (platform, scan|search): six independent kernels. *)

open Simos
open Graybox_core
open Bench_common

let fccd_for scan_bytes seed =
  if scan_bytes > 100 * mib then
    { (Fccd.default_config ~seed ()) with Fccd.access_unit = 20 * mib; prediction_unit = 5 * mib }
  else
    { (Fccd.default_config ~seed ()) with Fccd.access_unit = 4 * mib; prediction_unit = 1 * mib }

let scan_experiment platform ~file_bytes =
  let k = boot ~platform () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/scanfile" file_bytes;
      Kernel.flush_file_cache k;
      let cold = Gray_apps.Scan.linear env ~path:"/d0/scanfile" ~unit_bytes:(20 * mib) in
      let warm = ref 0 in
      for _ = 1 to 3 do
        warm := Gray_apps.Scan.linear env ~path:"/d0/scanfile" ~unit_bytes:(20 * mib)
      done;
      Kernel.flush_file_cache k;
      let config = fccd_for file_bytes 11 in
      let gray = ref 0 in
      for _ = 1 to 3 do
        gray := Gray_apps.Scan.gray env config ~path:"/d0/scanfile"
      done;
      (cold, !warm, !gray))

let search_experiment platform ~count ~size =
  let k = boot ~platform () in
  in_proc k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/texts" ~prefix:"t" ~count ~size
      in
      let target = List.nth paths (count - 1) in
      let match_in p = p = target in
      let prepare () =
        Kernel.flush_file_cache k;
        (* the match lives in a cached file specified last *)
        Gray_apps.Workload.read_file env target
      in
      prepare ();
      let _, cold =
        (* cold-cache traditional run: flush without the warm target *)
        Kernel.flush_file_cache k;
        Gray_apps.Search.run env ~paths ~match_in ()
      in
      prepare ();
      let _, warm = Gray_apps.Search.run env ~paths ~match_in () in
      prepare ();
      let _, gray =
        Gray_apps.Search.run env ~gray:(fccd_for (count * size) 13) ~paths ~match_in ()
      in
      (cold, warm, gray))

let spec =
  [
    (Platform.linux_2_2, 1024 * mib, 100, 10 * mib);
    (Platform.netbsd_1_5, 65 * mib, 65, 1 * mib);
    (Platform.solaris_7, 1024 * mib, 100, 10 * mib);
  ]

let plan () =
  let per_platform =
    List.map
      (fun (platform, scan_bytes, n, sz) ->
        let name = platform.Platform.name in
        let scan_task, scan_get =
          task ~label:(Printf.sprintf "fig4[scan,%s]" name) (fun () ->
              scan_experiment platform ~file_bytes:scan_bytes)
        in
        let search_task, search_get =
          task ~label:(Printf.sprintf "fig4[search,%s]" name) (fun () ->
              search_experiment platform ~count:n ~size:sz)
        in
        (name, [ scan_task; search_task ], fun () -> (scan_get (), search_get ())))
      spec
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 4: Multi-Platform Experiments (normalised to the cold-cache run per platform)";
    let results = List.map (fun (name, _, get) -> (name, get ())) per_platform in
    let rel (c, w, g) =
      (1.0, float_of_int w /. float_of_int c, float_of_int g /. float_of_int c)
    in
    let table =
      Gray_util.Table.create ~title:"relative execution time (cold = 1.00)"
        ~columns:
          [ "platform"; "scan cold"; "scan warm"; "scan gray"; "search cold";
            "search warm"; "search gray" ]
    in
    let figures = ref [] and checks = ref [] in
    List.iter
      (fun (name, (scan, search)) ->
        let _, sw, sg = rel scan and _, ew, eg = rel search in
        let c1, _, _ = scan and c2, _, _ = search in
        figures :=
          figure (Printf.sprintf "search_gray_rel[%s]" name) eg
          :: figure (Printf.sprintf "search_warm_rel[%s]" name) ew
          :: figure (Printf.sprintf "scan_gray_rel[%s]" name) sg
          :: figure (Printf.sprintf "scan_warm_rel[%s]" name) sw
          :: !figures;
        checks :=
          check (Printf.sprintf "gray search beats warm search on %s" name) (eg < ew)
          :: !checks;
        Gray_util.Table.add_row table
          [
            name;
            Printf.sprintf "1.00 (%.1fs)" (seconds c1);
            Printf.sprintf "%.2f" sw;
            Printf.sprintf "%.2f" sg;
            Printf.sprintf "1.00 (%.1fs)" (seconds c2);
            Printf.sprintf "%.2f" ew;
            Printf.sprintf "%.2f" eg;
          ])
      results;
    Buffer.add_string b (Gray_util.Table.render table);
    note b "expected shape: linux warm scan ~ cold (LRU thrash) but gray much faster;";
    note b "solaris warm ~ gray (sticky cache); search gray << warm everywhere;";
    note b "paper cold baselines: scans 54.3/3.5/75.3s, searches 53.3/17.0/76.9s";
    let scan_check =
      let linux_scan, _ =
        List.assoc "linux-2.2" results
      in
      let _, sw, sg = rel linux_scan in
      check "gray scan beats warm scan on linux-2.2" (sg < sw)
    in
    {
      rd_output = Buffer.contents b;
      rd_figures = List.rev !figures;
      rd_checks = scan_check :: List.rev !checks;
    }
  in
  {
    p_tasks = List.concat_map (fun (_, ts, _) -> ts) per_platform;
    p_render = render;
  }
