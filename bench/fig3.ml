(* Figure 3: Application Performance (grep and fastsort read-phase).

   grep scans 100 x 10 MB files repeatedly (warm cache); fastsort's read
   phase consumes a 1 GB input of 100-byte records whose cache contents
   are refreshed before each run.  Three bars per application: unmodified,
   gray-box modified, and unmodified-via-gbp; normalised to unmodified.

   Two tasks: the grep experiment and the sort experiment, each its own
   kernel. *)

open Simos
open Graybox_core
open Bench_common

let fccd seed =
  { (Fccd.default_config ~seed ()) with Fccd.access_unit = 20 * mib; prediction_unit = 5 * mib }

let grep_experiment ~trials () =
  let k = boot () in
  in_proc k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/texts" ~prefix:"t" ~count:100
          ~size:(10 * mib)
      in
      let matches _ = 1 in
      let steady variant seed =
        Kernel.flush_file_cache k;
        let config = fccd seed in
        let last = ref 0 in
        for _ = 1 to max 3 (min trials 5) do
          let _, ns = Gray_apps.Grep.run env config variant ~paths ~matches in
          last := ns
        done;
        !last
      in
      ( steady Gray_apps.Grep.Unmodified 1,
        steady Gray_apps.Grep.Gray 2,
        steady Gray_apps.Grep.Via_gbp 3 ))

let sort_experiment () =
  let k = boot () in
  in_proc k (fun env ->
      Gray_apps.Workload.write_file env "/d0/records" (1024 * mib);
      let config =
        Gray_apps.Fastsort.default_config ~input:"/d0/records" ~run_dir:"/d1/runs"
      in
      let one order =
        (* refresh the file cache contents, as after the record-creation
           stage of a pipeline *)
        Kernel.flush_file_cache k;
        Gray_apps.Workload.read_file env "/d0/records";
        Gray_apps.Fastsort.read_phase_only env config ~order ~pass_bytes:(256 * mib)
      in
      ( one Gray_apps.Fastsort.Linear,
        one (Gray_apps.Fastsort.Gray_fccd (fccd 4)),
        one (Gray_apps.Fastsort.Via_gbp_out (fccd 5)) ))

let plan () =
  let trials = trials () in
  let grep_task, grep_get = task ~label:"fig3[grep]" (grep_experiment ~trials) in
  let sort_task, sort_get = task ~label:"fig3[fastsort]" sort_experiment in
  let render () =
    let b = Buffer.create 1024 in
    header b "Figure 3: Application Performance (normalised to the unmodified application)";
    let g_unmod, g_gray, g_gbp = grep_get () in
    let s_unmod, s_gray, s_gbp = sort_get () in
    let norm base v = float_of_int v /. float_of_int base in
    Buffer.add_string b
      (Gray_util.Table.grouped_bars ~title:"relative runtime (1.0 = unmodified)"
         ~group_names:[ "grep (100x10MB, warm)"; "fastsort read-phase (1GB)" ]
         ~series:
           [
             ("unmodified", [ 1.0; 1.0 ]);
             ("gray-box", [ norm g_unmod g_gray; norm s_unmod s_gray ]);
             ("via gbp", [ norm g_unmod g_gbp; norm s_unmod s_gbp ]);
           ]);
    note b "absolute: grep %.1fs / %.1fs / %.1fs   (paper: 54.3s unmodified, gray ~3x faster)"
      (seconds g_unmod) (seconds g_gray) (seconds g_gbp);
    note b
      "absolute: sort-read %.1fs / %.1fs / %.1fs (paper: 55s unmodified; gray gains smaller than grep's)"
      (seconds s_unmod) (seconds s_gray) (seconds s_gbp);
    {
      rd_output = Buffer.contents b;
      rd_figures =
        [
          figure "grep_rel[gray]" (norm g_unmod g_gray);
          figure "grep_rel[via_gbp]" (norm g_unmod g_gbp);
          figure "sort_rel[gray]" (norm s_unmod s_gray);
          figure "sort_rel[via_gbp]" (norm s_unmod s_gbp);
        ];
      rd_checks =
        [
          check "gray-box grep beats unmodified" (g_gray < g_unmod);
          check "gray-box sort read-phase no slower than unmodified" (s_gray <= s_unmod);
        ];
    }
  in
  { p_tasks = [ grep_task; sort_task ]; p_render = render }
