(* Accuracy vs fault intensity: how gracefully the ICLs degrade as the
   observation channel gets noisier and more failure-prone.

   For each intensity (a linear scaling of the canonical scenario,
   Fault.scale), the bench measures

   - FCCD: Spearman rank correlation between the predicted file order
     (probe times) and the white-box ground truth (fraction of each file
     resident in the cache, taken BEFORE the destructive probes);
   - MAC: false-admission rate — how often gb_alloc grants more pages
     than were actually available without paging a competitor out — and
     the confidence MAC itself reports for the decision.

   Everything is seeded and every (intensity, mode, seed) trial is its
   own kernel, so the curve is deterministic at any parallelism. *)

open Simos
open Graybox_core
open Bench_common

let platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.05

let intensities = [ 0.0; 0.5; 1.0; 2.0 ]

let scenario ~intensity ~seed =
  if intensity <= 0.0 then None
  else Some (Fault.of_intensity ~seed:(0xFA17 + seed) ~intensity ())

(* ---- FCCD: rank accuracy against the pre-probe cache truth ---- *)

let fccd_trial ~hardened ~intensity ~seed =
  let k =
    boot ~platform ~data_disks:1 ~seed ?faults:(scenario ~intensity ~seed) ()
  in
  Kernel.start_fault_daemons k;
  let rho = ref 0.0 in
  Kernel.spawn k (fun env ->
      let paths =
        Gray_apps.Workload.make_files env ~dir:"/d0/data" ~prefix:"f" ~count:8
          ~size:(2 * mib)
      in
      Kernel.flush_file_cache k;
      (* warm every other file so the truth has real structure *)
      List.iteri
        (fun i p -> if i mod 2 = 0 then Gray_apps.Workload.read_file env p)
        paths;
      let truth =
        Array.of_list
          (List.map (fun p -> 1.0 -. Introspect.cached_fraction k ~path:p) paths)
      in
      let config =
        {
          (Fccd.default_config ~seed:(seed + 7) ()) with
          Fccd.access_unit = 1 * mib;
          prediction_unit = 256 * 1024;
          (* naive = the pre-resilience prober: a transient read error is
             timed as a (fast!) sample, a transient open error aborts the
             whole ordering; hardened = retries + variance-triggered
             resampling *)
          retry = (if hardened then Some (Resilient.policy ~seed:(seed + 11) ()) else None);
          resample = (if hardened then 2 else 0);
        }
      in
      (match Fccd.order_files env config ~paths with
      | Error _ -> rho := 0.0 (* a failed probe pass predicts nothing *)
      | Ok ranked ->
        let by_path = List.map (fun r -> (r.Fccd.fr_path, r.Fccd.fr_probe_ns)) ranked in
        let probe =
          Array.of_list
            (List.map (fun p -> float_of_int (List.assoc p by_path)) paths)
        in
        rho := Gray_util.Correlate.spearman probe truth);
      Kernel.stop_faults k);
  Kernel.run k;
  !rho

(* ---- MAC: admission accuracy against an active competitor ---- *)

(* The competitor keeps re-touching its working set while MAC probes, so
   stealing its memory shows up in MAC's own verification loop (and in
   the ground truth).  A grant above what was genuinely available is a
   false admission; the mean |granted - available| is the admission
   error. *)
let mac_trial ~intensity ~seed =
  let k =
    boot ~platform ~data_disks:1 ~seed ?faults:(scenario ~intensity ~seed) ()
  in
  Kernel.start_fault_daemons k;
  let usable = Platform.usable_pages platform in
  let competitor_pages = usable * 2 / 5 in
  let granted = ref 0 and truth = ref 0 and confidence = ref 1.0 in
  Kernel.spawn k ~name:"competitor" (fun env ->
      let r = Kernel.valloc env ~pages:competitor_pages in
      for _ = 1 to 60 do
        ignore (Kernel.touch_pages env r ~first:0 ~count:competitor_pages);
        Engine.delay 50_000_000
      done;
      Kernel.vfree env r);
  Kernel.spawn k ~name:"prober" ~at:1_000_000 (fun env ->
      let truth_pages =
        Introspect.available_anon_pages k ~exclude_pid:(Kernel.pid env)
      in
      truth := truth_pages;
      let mac = { (Mac.default_config ()) with Mac.robust = true } in
      (match Mac.gb_alloc env mac ~min:(4 * mib) ~max:(48 * mib) ~multiple:mib with
      | Some a ->
        granted := Mac.pages a;
        confidence := Mac.confidence a;
        Mac.gb_free env a
      | None ->
        (* refusing admits nothing *)
        granted := 0;
        confidence := (Mac.last_stats ()).Mac.s_confidence);
      Kernel.stop_faults k);
  Kernel.run k;
  let err = float_of_int (abs (!granted - !truth)) /. float_of_int usable in
  ((if !granted > !truth then 1.0 else 0.0), err, !confidence)

let mean xs = Gray_util.Stats.mean_of (Array.of_list xs)

let plan () =
  (* 4x the figure-trial count: these trials are small and the curves
     need the samples (the seed count was fixed at 32 before the trial
     count became configurable) *)
  let seeds = trial_seeds ~base:42 (4 * trials ()) in
  let cells =
    List.map
      (fun intensity ->
        let naive_ts, naive_get =
          run_trials
            ~label:(Printf.sprintf "faults[fccd-naive,i=%.1f]" intensity)
            ~seeds
            (fun ~seed -> fccd_trial ~hardened:false ~intensity ~seed)
        in
        let hard_ts, hard_get =
          run_trials
            ~label:(Printf.sprintf "faults[fccd-hard,i=%.1f]" intensity)
            ~seeds
            (fun ~seed -> fccd_trial ~hardened:true ~intensity ~seed)
        in
        let mac_ts, mac_get =
          run_trials
            ~label:(Printf.sprintf "faults[mac,i=%.1f]" intensity)
            ~seeds
            (fun ~seed -> mac_trial ~intensity ~seed)
        in
        (intensity, naive_ts @ hard_ts @ mac_ts, fun () ->
          (naive_get (), hard_get (), mac_get ())))
      intensities
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Degradation under fault injection (seeded; canonical scenario scaled)";
    note b "FCCD: Spearman rho of predicted order vs cache ground truth";
    note b "      naive = no retry/resample, hard = retries + resampling";
    note b "MAC: admission accuracy vs an active competitor's memory";
    note b "%d seeded trials per point" (List.length seeds);
    Printf.bprintf b "  %-10s %10s %10s %14s %10s %10s\n" "intensity" "fccd-naive"
      "fccd-hard" "mac-false-adm" "mac-err" "mac-conf";
    let figures = ref [] and checks = ref [] in
    let rows =
      List.map
        (fun (intensity, _, get) ->
          let naive_rhos, hard_rhos, macs = get () in
          let raw = mean naive_rhos and hard = mean hard_rhos in
          let false_rate = mean (List.map (fun (f, _, _) -> f) macs) in
          let err = mean (List.map (fun (_, e, _) -> e) macs) in
          let conf = mean (List.map (fun (_, _, c) -> c) macs) in
          Printf.bprintf b "  %-10.2f %10.3f %10.3f %14.2f %10.3f %10.3f\n" intensity raw
            hard false_rate err conf;
          figures :=
            figure (Printf.sprintf "mac_false_adm[i=%.1f]" intensity) false_rate
            :: figure (Printf.sprintf "fccd_rho_hard[i=%.1f]" intensity) hard
            :: figure (Printf.sprintf "fccd_rho_naive[i=%.1f]" intensity) raw
            :: !figures;
          (intensity, raw, hard))
        cells
    in
    (* the hardened prober must not lose to the naive one where it matters:
       at the canonical intensity and above *)
    List.iter
      (fun (intensity, raw, hard) ->
        if intensity >= 1.0 then
          checks :=
            check
              (Printf.sprintf "hardened FCCD >= naive at intensity %.1f" intensity)
              (hard >= raw)
            :: !checks)
      rows;
    { rd_output = Buffer.contents b; rd_figures = List.rev !figures; rd_checks = List.rev !checks }
  in
  { p_tasks = List.concat_map (fun (_, ts, _) -> ts) cells; p_render = render }
