(* Exhaustive crash-point exploration of ICL recovery (ALICE /
   CrashMonkey style, over the simulator's crash plane).

   For each seed the explorer runs the FLDC directory refresh and a
   gbp/MAC pipeline once to count the workload's syscall boundaries T,
   then crashes at every boundary 1..T, restarts from the durable image,
   repairs, and checks invariants (no file lost or duplicated, journal
   cleaned up, state is exactly the pre- or post-refresh image, layout
   goal preserved on commit, fsck clean, all processes reclaimed).

   Sharding happens at the harness level: the baselines (pre/post
   images, boundary counts) are derived serially while the plan is
   built, and every {!Crash_explore.window_size}-boundary window of
   every (workload, seed) exploration becomes its own task, so windows
   of different explorations interleave freely across domains.  Window
   reports merge in ascending order ({!Crash_explore.merge_reports}),
   so the rendered output is byte-identical at any -j.

   A mutation task set runs the same exploration against a deliberately
   broken repair (it ignores the commit record): the explorer must
   report violations there, or the zero-violation result above would be
   vacuous.  This experiment only runs when named explicitly (like
   `micro`): it is a robustness gate, not a figure from the paper. *)

open Graybox_core
open Bench_common

let mutation_seed = 0xC0

(* One harness task per boundary window; the getter folds the window
   reports back into the serial report. *)
let windowed ~label baseline explore =
  let boundaries = Crash_explore.baseline_boundaries baseline in
  let ts, get =
    tasks
      ~label:(fun (lo, hi) -> Printf.sprintf "%s[w%d-%d]" label lo hi)
      (Crash_explore.windows ~boundaries)
      (fun (lo, hi) -> explore baseline ~lo ~hi)
  in
  (ts, fun () -> Crash_explore.merge_reports (get ()))

let plan () =
  let seeds = trial_seeds ~base:0xC0 (trials ()) in
  let per_seed label mk_baseline explore =
    let parts =
      List.map
        (fun seed ->
          let bl = mk_baseline ~seed in
          windowed ~label:(Printf.sprintf "crash[%s][seed=%d]" label seed) bl explore)
        seeds
    in
    (List.concat_map fst parts, fun () -> List.map (fun (_, g) -> g ()) parts)
  in
  let refresh_ts, refresh_get =
    per_seed "refresh"
      (fun ~seed -> Crash_explore.refresh_baseline ~seed ())
      (fun bl ~lo ~hi -> Crash_explore.explore_refresh_window bl ~lo ~hi)
  in
  let pipeline_ts, pipeline_get =
    per_seed "pipeline"
      (fun ~seed -> Crash_explore.pipeline_baseline ~seed ())
      (fun bl ~lo ~hi -> Crash_explore.explore_pipeline_window bl ~lo ~hi)
  in
  let mutation_ts, mutation_get =
    windowed ~label:"crash[mutation]"
      (Crash_explore.refresh_baseline ~seed:mutation_seed ())
      (fun bl ~lo ~hi ->
        Crash_explore.explore_refresh_window ~break_repair:true bl ~lo ~hi)
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Crash-point exploration: every syscall boundary, crash + restart + repair";
    note b "refresh: Fldc.refresh_directory recovered by Fldc.repair";
    note b "pipeline: compose-ordered reads + MAC alloc/touch/free, restart only";
    note b "%d seed(s) per workload; every boundary visited, no sampling" (List.length seeds);
    Printf.bprintf b "  %-10s %6s %12s %8s %8s %11s\n" "workload" "seed" "boundaries"
      "back" "forward" "violations";
    let figures = ref [] and checks = ref [] in
    let violations = ref [] in
    let row name seed (r : Crash_explore.report) =
      Printf.bprintf b "  %-10s %6d %12d %8d %8d %11d\n" name seed r.rp_boundaries
        r.rp_rolled_back r.rp_rolled_forward
        (List.length r.rp_violations);
      checks :=
        check
          (Printf.sprintf "%s[seed=%d]: all %d boundaries crashed (window non-empty)"
             name seed r.rp_workload_syscalls)
          (r.rp_boundaries = r.rp_workload_syscalls && r.rp_boundaries > 0)
        :: check (Printf.sprintf "%s[seed=%d]: zero violations after repair" name seed)
             (r.rp_violations = [])
        :: !checks;
      violations := !violations @ List.map (fun v -> (name, v)) r.rp_violations
    in
    List.iter2 (fun seed r -> row "refresh" seed r) seeds (refresh_get ());
    List.iter2 (fun seed r -> row "pipeline" seed r) seeds (pipeline_get ());
    let refresh_reports = refresh_get () in
    let back = List.fold_left (fun a r -> a + r.Crash_explore.rp_rolled_back) 0 refresh_reports in
    let forward =
      List.fold_left (fun a r -> a + r.Crash_explore.rp_rolled_forward) 0 refresh_reports
    in
    checks :=
      check "refresh: both roll-back and roll-forward outcomes observed"
        (back > 0 && forward > 0)
      :: !checks;
    let mutation = mutation_get () in
    Printf.bprintf b "  %-10s %6d %12d %8d %8d %11d   (deliberately broken repair)\n"
      "mutation" mutation_seed mutation.rp_boundaries mutation.rp_rolled_back
      mutation.rp_rolled_forward
      (List.length mutation.rp_violations);
    checks :=
      check "mutation: explorer catches a repair that ignores the commit record"
        (mutation.rp_violations <> [])
      :: !checks;
    (* one specimen of what a red boundary looks like post-mortem: the
       first mutation violation with its embedded flight-recorder tail
       (deterministic, so the -j 1 vs -j 8 report diff covers it) *)
    (match mutation.rp_violations with
    | [] -> ()
    | v :: _ ->
      Printf.bprintf b
        "  specimen VIOLATION (mutation) boundary %d: %s\n    replay: %s\n"
        v.Crash_explore.vi_boundary v.vi_problem v.vi_replay;
      match v.Crash_explore.vi_flight with
      | [] -> ()
      | lines ->
        Printf.bprintf b "    flight recorder (last %d events):\n"
          (List.length lines);
        List.iter (fun l -> Printf.bprintf b "      %s\n" l) lines);
    List.iter
      (fun (name, v) ->
        Printf.bprintf b "  VIOLATION %s boundary %d: %s\n    replay: %s\n" name
          v.Crash_explore.vi_boundary v.vi_problem v.vi_replay;
        match v.Crash_explore.vi_flight with
        | [] -> ()
        | lines ->
          Printf.bprintf b "    flight recorder (last %d events):\n"
            (List.length lines);
          List.iter (fun l -> Printf.bprintf b "      %s\n" l) lines)
      !violations;
    figures :=
      [
        figure "crash_refresh_boundaries"
          (float_of_int
             (List.fold_left (fun a r -> a + r.Crash_explore.rp_boundaries) 0 refresh_reports));
        figure "crash_refresh_rolled_back" (float_of_int back);
        figure "crash_refresh_rolled_forward" (float_of_int forward);
        figure "crash_violations" (float_of_int (List.length !violations));
        figure "crash_mutation_violations"
          (float_of_int (List.length mutation.rp_violations));
      ];
    { rd_output = Buffer.contents b; rd_figures = !figures; rd_checks = List.rev !checks }
  in
  { p_tasks = refresh_ts @ pipeline_ts @ mutation_ts; p_render = render }
