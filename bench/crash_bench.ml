(* Exhaustive crash-point exploration of ICL recovery (ALICE /
   CrashMonkey style, over the simulator's crash plane).

   For each seed the explorer runs the FLDC directory refresh and a
   gbp/MAC pipeline once to count the workload's syscall boundaries T,
   then crashes at every boundary 1..T, restarts from the durable image,
   repairs, and checks invariants (no file lost or duplicated, journal
   cleaned up, state is exactly the pre- or post-refresh image, layout
   goal preserved on commit, fsck clean, all processes reclaimed).

   A mutation task runs the same exploration against a deliberately
   broken repair (it ignores the commit record): the explorer must
   report violations there, or the zero-violation result above would be
   vacuous.  Everything is seeded and each (workload, seed) trial is its
   own kernel sequence, so the output is deterministic at any -j.  This
   experiment only runs when named explicitly (like `micro`): it is a
   robustness gate, not a figure from the paper. *)

open Graybox_core
open Bench_common

let mutation_seed = 0xC0

let plan () =
  let seeds = trial_seeds ~base:0xC0 (trials ()) in
  let refresh_ts, refresh_get =
    run_trials ~label:"crash[refresh]" ~seeds (fun ~seed ->
        Crash_explore.explore_refresh ~seed ())
  in
  let pipeline_ts, pipeline_get =
    run_trials ~label:"crash[pipeline]" ~seeds (fun ~seed ->
        Crash_explore.explore_pipeline ~seed ())
  in
  let mutation_t, mutation_get =
    task ~label:"crash[mutation]" (fun () ->
        Crash_explore.explore_refresh ~seed:mutation_seed ~break_repair:true ())
  in
  let render () =
    let b = Buffer.create 1024 in
    header b "Crash-point exploration: every syscall boundary, crash + restart + repair";
    note b "refresh: Fldc.refresh_directory recovered by Fldc.repair";
    note b "pipeline: compose-ordered reads + MAC alloc/touch/free, restart only";
    note b "%d seed(s) per workload; every boundary visited, no sampling" (List.length seeds);
    Printf.bprintf b "  %-10s %6s %12s %8s %8s %11s\n" "workload" "seed" "boundaries"
      "back" "forward" "violations";
    let figures = ref [] and checks = ref [] in
    let violations = ref [] in
    let row name seed (r : Crash_explore.report) =
      Printf.bprintf b "  %-10s %6d %12d %8d %8d %11d\n" name seed r.rp_boundaries
        r.rp_rolled_back r.rp_rolled_forward
        (List.length r.rp_violations);
      checks :=
        check
          (Printf.sprintf "%s[seed=%d]: all %d boundaries crashed (window non-empty)"
             name seed r.rp_workload_syscalls)
          (r.rp_boundaries = r.rp_workload_syscalls && r.rp_boundaries > 0)
        :: check (Printf.sprintf "%s[seed=%d]: zero violations after repair" name seed)
             (r.rp_violations = [])
        :: !checks;
      violations := !violations @ List.map (fun v -> (name, v)) r.rp_violations
    in
    List.iter2 (fun seed r -> row "refresh" seed r) seeds (refresh_get ());
    List.iter2 (fun seed r -> row "pipeline" seed r) seeds (pipeline_get ());
    let refresh_reports = refresh_get () in
    let back = List.fold_left (fun a r -> a + r.Crash_explore.rp_rolled_back) 0 refresh_reports in
    let forward =
      List.fold_left (fun a r -> a + r.Crash_explore.rp_rolled_forward) 0 refresh_reports
    in
    checks :=
      check "refresh: both roll-back and roll-forward outcomes observed"
        (back > 0 && forward > 0)
      :: !checks;
    let mutation = mutation_get () in
    Printf.bprintf b "  %-10s %6d %12d %8d %8d %11d   (deliberately broken repair)\n"
      "mutation" mutation_seed mutation.rp_boundaries mutation.rp_rolled_back
      mutation.rp_rolled_forward
      (List.length mutation.rp_violations);
    checks :=
      check "mutation: explorer catches a repair that ignores the commit record"
        (mutation.rp_violations <> [])
      :: !checks;
    List.iter
      (fun (name, v) ->
        Printf.bprintf b "  VIOLATION %s boundary %d: %s\n    replay: %s\n" name
          v.Crash_explore.vi_boundary v.vi_problem v.vi_replay)
      !violations;
    figures :=
      [
        figure "crash_refresh_boundaries"
          (float_of_int
             (List.fold_left (fun a r -> a + r.Crash_explore.rp_boundaries) 0 refresh_reports));
        figure "crash_refresh_rolled_back" (float_of_int back);
        figure "crash_refresh_rolled_forward" (float_of_int forward);
        figure "crash_violations" (float_of_int (List.length !violations));
        figure "crash_mutation_violations"
          (float_of_int (List.length mutation.rp_violations));
      ];
    { rd_output = Buffer.contents b; rd_figures = !figures; rd_checks = List.rev !checks }
  in
  { p_tasks = refresh_ts @ pipeline_ts @ [ mutation_t ]; p_render = render }
