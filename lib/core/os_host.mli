(** {!Os_intf.S} over the {e real} operating system ([Unix]), hardened.

    No exception escapes any call: EINTR retries immediately, EAGAIN
    backs off until a per-call deadline turns it into a typed
    [Timeout], partial reads/writes are completed in a loop, and every
    other errno maps into the shared [Simos.Kernel.error] taxonomy
    ([ENOENT] → [Fs_error Enoent], [EBADF] → [Bad_fd], transient →
    [Retryable], anything else → [Sys_error] carrying the errno name).
    Capabilities the host lacks degrade typed — [/proc/vmstat] missing
    is [Unsupported], a coarse timer widens
    {!Os_intf.S.timing_confidence_cap} — they never crash.

    The blob side-band (FLDC journal records) lives in sidecar files
    named [.gb_blob.<base>] next to their owner; [readdir] hides them
    and [unlink]/[rename]/[fsync] carry them along. *)

type t

val create :
  ?root:string -> ?deadline_ns:int -> unit -> (t, Simos.Kernel.error) result
(** Bring the backend up: probe the monotonic clock (an unusable clock
    is [Unsupported] — the one capability timing probes cannot live
    without) and derive the confidence cap from its measured
    resolution.  [root] (default none) prefixes every path and rejects
    [".."] escapes with [Bad_path]; [deadline_ns] (default 2 s) bounds
    each call's transient-retry loop. *)

val shutdown : t -> unit
(** Close every descriptor still open.  Safe to call twice. *)

val open_fd_count : t -> int
(** Descriptors currently open through this env — the conformance
    suite's leak check asserts this returns to its baseline. *)

val timer_resolution_ns : t -> int
(** The measured monotonic-timer resolution the confidence cap was
    derived from. *)

val errno_error : Unix.error -> Simos.Kernel.error
(** The errno→taxonomy mapping, exposed for the round-trip tests. *)

include Os_intf.S with type env = t
