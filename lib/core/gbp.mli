(** The [gbp] utility logic: gray-box benefits for {e unmodified}
    applications (Section 4.1.2).

    [grep foo `gbp -mem *`] reorders the file arguments by cache
    residence; [gbp -mem -out infile | app] re-orders {e within} a single
    file, copying data to the consumer through a pipe.  This module holds
    the reusable logic behind the [bin/gbp] executable and behind the
    "unmodified application" variants in the benchmarks. *)

type mode =
  | Mem  (** order by file-cache probe time (FCCD) *)
  | File  (** order by i-number (FLDC) *)
  | Compose  (** cached first, then i-number (Section 4.2.4) *)

val mode_of_string : string -> mode option
val mode_to_string : mode -> string

val best_order :
  Simos.Kernel.env ->
  Fccd.config ->
  mode ->
  paths:string list ->
  (string list, Simos.Kernel.error) result
(** The file ordering a shell substitution would receive. *)

type fallback_reason =
  | Degraded_error of Simos.Kernel.error  (** probing itself failed *)
  | Low_confidence of float  (** the ordering exists but is not believable *)

val fallback_reason_to_string : fallback_reason -> string

val best_order_or_fallback :
  Simos.Kernel.env ->
  Fccd.config ->
  ?min_confidence:float ->
  mode ->
  paths:string list ->
  string list * fallback_reason option
(** Like {!best_order} but total: on a kernel error, or (in [Mem] mode)
    when {!Fccd.order_confidence} falls below [min_confidence]
    (default 0), the input [paths] come back unchanged together with the
    reason — a degraded [gbp] passes the arguments through rather than
    break the pipeline.  [None] reason means the ordering is the real
    prediction. *)

val exit_code_of_error : Simos.Kernel.error -> int
(** Stable non-zero shell exit code for each kernel error ([Bad_path] 2,
    [Bad_fd] 3, [Retryable] and host [Timeout] 4, [Enoent] 5, [Eexist] 6,
    other fs errors and host [Sys_error] 7, host [Unsupported]
    {!exit_host_unavailable}); code 1 stays reserved for usage errors. *)

val exit_export_failed : int
(** Exit code (8) for a telemetry export that could not be written —
    same namespace as {!exit_code_of_error}, next free slot. *)

val exit_crash_recovered : int
(** Exit code (9) for a [--crash-at] run: the machine died as scheduled
    and the post-restart repair left the volume consistent. *)

val exit_recovery_failed : int
(** Exit code (10): the machine died as scheduled but recovery did not
    restore consistency (repair error or fsck violations). *)

val exit_stale : int
(** Exit code (11) for an adaptive run ([gbp --adaptive]) whose ICL
    watchdog exhausted its re-calibration budget: the environment kept
    drifting faster than the ICL could re-learn it, and the run degraded
    into this distinct code instead of thrashing. *)

val exit_host_unavailable : int
(** Exit code (12) for a [gbp --os host] run: the real-OS backend could
    not be brought up (capability probe failed) or the requested pipeline
    is not supported on the host.  Same code as
    [exit_code_of_error (Unsupported _)]. *)

val out :
  Simos.Kernel.env ->
  Fccd.config ->
  path:string ->
  consume:(off:int -> len:int -> unit) ->
  (int, Simos.Kernel.error) result
(** [gbp -mem -out path]: probe the file, read it in best order, and
    stream each extent to [consume] through a simulated pipe (the extra
    kernel copy of all data is charged, which is why the gbp variant runs
    slightly behind the modified application in Figure 3).  Returns total
    bytes delivered. *)

val pipe_ns_per_byte : Simos.Kernel.env -> float
(** Cost model of the pipe copy used by {!out}. *)
