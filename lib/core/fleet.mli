(** Multi-tenant fleet orchestration: many contending processes on one
    scheduler kernel, and fleets of concurrent ICLs on top of them.

    The paper's Table-1 systems only make sense on a {e shared} kernel —
    co-scheduling and cache manners are about processes fighting over
    the page cache — yet a single ICL probing an idle machine was all
    the repo could express.  A fleet is the missing regime: N processes
    (profiles from [Gray_apps.Workload]) spawned on a kernel booted with
    a proportional-share run queue ({!Simos.Sched}), with the
    {!Simos.Account} ledger as ground truth for who stole whose pages.

    {b Determinism contract.}  Everything here is driven by the virtual
    clock and seeded RNG streams: process [i] of a fleet gets the [i]-th
    {!Gray_util.Rng.split} of [Rng.create ~seed:fd_seed] (exactly the
    derivation a solo experiment uses for its first split), spawn times
    are staggered deterministically, and ledger reaps happen at fixed
    exit counts in fiber-cleanup order.  A 1-process fleet is therefore
    byte-identical to the solo path ([test/test_fleet.ml] diffs figures,
    telemetry and ledger exports), and any fleet is reproducible across
    [-j] levels.

    {b Fairness metric.}  Jain's index J(x) = (Σx)²/ (n·Σx²): 1 when
    all shares are equal, 1/n when one process has everything.  The MAC
    fleet reports it per round over concurrent grants — the TCP-style
    convergence-or-oscillation question from Section 4.3's own analogy. *)

open Gray_util

type descriptor = {
  fd_procs : int;  (** fleet size *)
  fd_seed : int;  (** master seed; member [i] gets the [i]-th split *)
  fd_stagger_ns : int;  (** spawn-time spacing between members *)
  fd_quantum_ns : int;  (** scheduler quantum ({!Simos.Sched.config}) *)
  fd_reap_every : int;
      (** fold exited members' ledger rows every this many exits
          ({!Simos.Account.reap}); 0 = never reap *)
}

val default_descriptor : descriptor
(** 64 processes, seed 42, 10 µs stagger, 1 ms quantum, reap every 64
    exits. *)

val sched_config : descriptor -> Simos.Sched.config
(** The scheduler config a fleet kernel should be booted with. *)

val spawn_fleet :
  Simos.Kernel.t ->
  descriptor ->
  ?name:(int -> string) ->
  body:(index:int -> rng:Rng.t -> Simos.Kernel.env -> unit) ->
  unit ->
  unit
(** Spawn the fleet (does not run it): member [i] is a kernel process
    named [name i] (default ["fleet.proc"]) starting at
    [i * fd_stagger_ns], whose body receives its index and private RNG.
    Name members by behaviour, not index — the ledger export aggregates
    by name, so a 10⁴-process fleet exports a handful of rows.  Each
    member's exit counts toward the [fd_reap_every] reap cadence. *)

val wait_until : Simos.Kernel.t -> int -> unit
(** Delay the calling fiber until the given virtual timestamp (no-op if
    already past) — the round-synchronisation primitive. *)

val jain : float array -> float
(** Jain's fairness index; 1.0 for the empty or all-zero vector (no
    shares are trivially equal shares). *)

(** {1 MAC fleets} *)

type mac_result = {
  mr_grants : int array array;  (** [rounds × macs] bytes granted *)
  mr_fairness : float array;  (** per-round Jain index over grants *)
  mr_late_fairness : float;  (** mean fairness over the last quarter *)
  mr_reversal_rate : float;
      (** mean per-MAC rate of grant-delta sign reversals, in [0, 1]:
          0 = monotone approach, 1 = alternating every round *)
  mr_late_swing : float;
      (** mean |round-to-round grant delta| over the last quarter,
          relative to the mean late grant — relative amplitude of any
          oscillation *)
}

val mac_fleet :
  Simos.Kernel.t ->
  ?config:Mac.config ->
  ?max_bytes:int ->
  ?stagger_ns:int ->
  macs:int ->
  rounds:int ->
  round_ns:int ->
  unit ->
  mac_result
(** Run [macs] concurrent MAC processes for [rounds] synchronized
    rounds of length [round_ns] and report the fairness trajectory.
    Each MAC self-calibrates once, then per round: [gb_alloc]
    (page-sized minimum, [max_bytes] maximum — default the whole
    machine; pass [usable / macs] to model polite fair-share
    applications), touch the grant resident, hold it until ¾ of the
    round, free it, and wait for the next round boundary.  Round starts are staggered [stagger_ns]
    (default 50 µs) per MAC so probe bursts do not start in lockstep.
    Calls {!Simos.Kernel.run}. *)

(** {1 FCCD fleets} *)

type fccd_result = {
  fc_truth : float array;  (** per-file cached fraction before probing *)
  fc_rhos : float array;  (** per-prober Spearman rank correlation vs truth *)
  fc_mean_rho : float;
}

val fccd_fleet :
  Simos.Kernel.t ->
  ?config:(int -> Fccd.config) ->
  ?shuffle:bool ->
  probers:int ->
  paths:string list ->
  stagger_ns:int ->
  seed:int ->
  unit ->
  fccd_result
(** Measure cross-probe cache pollution: snapshot the white-box cached
    fraction of each path ({!Simos.Introspect.cached_fraction}), then
    run [probers] concurrent {!Fccd.order_files} probes (prober [i]
    configured by [config i], default [Fccd.default_config
    ~seed:(seed + i)], starting at [i * stagger_ns]; with [shuffle],
    each prober visits the files in its own seeded order, so mid-probe
    eviction is visible rather than hidden behind lockstep traversal)
    and report each
    prober's Spearman correlation between its ranking and the
    ground-truth snapshot.  Every probe fetches the bytes it touches —
    the Heisenberg effect — so later and concurrent probers see a cache
    the earlier ones polluted; the degradation of [fc_mean_rho] with
    [probers] is the experiment.  Calls {!Simos.Kernel.run}. *)
