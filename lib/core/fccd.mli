(** File-Cache Content Detector (Section 4.1).

    FCCD infers which parts of a file (or which files of a set) are in the
    OS file cache by timing single-byte [read()] probes — one random byte
    per {e prediction unit} — and sorting {e access units} by their total
    probe time.  No differentiation threshold is needed: sorting naturally
    orders a multi-level store (memory, then disk).

    Usage template (Section 4.1.2): the application names its files, the
    library returns [(offset, length)] pairs in predicted-fastest-first
    order, and the application re-orders its accesses accordingly.

    The Heisenberg effect is respected: files smaller than one page are
    never probed and are reported with a "fake" high time. *)

open Gray_util

type config = {
  access_unit : int;  (** bytes returned per extent (default 20 MB) *)
  prediction_unit : int;  (** bytes predicted per probe (default 5 MB) *)
  align : int;  (** extent boundaries snap to this (records), default 1 *)
  fake_high_ns : int;  (** reported time for unprobeable small files *)
  rng : Rng.t;  (** probe-point randomisation (Section 4.1.2) *)
  retry : Resilient.policy option;
      (** retry transient probe faults (default [Some] of a seeded
          policy); [None] restores the raw non-retrying probes *)
  resample : int;
      (** extra probe passes per extent when the first pass has high
          variance (default 0 = off; keeps benign runs bit-identical) *)
  min_confidence : float;
      (** below this {!plan} confidence, {!extents_or_sequential} falls
          back to sequential order (default 0 = never) *)
}

val default_config : ?repo:Param_repo.t -> seed:int -> unit -> config
(** 20 MB / 5 MB units (overridden by the repo's
    [fccd.access_unit_bytes] when present), byte alignment. *)

val with_align : config -> int -> config
(** Same config with extent boundaries snapped to a record size. *)

type extent = { ext_off : int; ext_len : int }

type plan = {
  plan_path : string;
  plan_size : int;
  plan_extents : (extent * int) list;
      (** extents with their total probe time, fastest first *)
  plan_probes : int;  (** how many probes were issued *)
  plan_confidence : float;
      (** how much to believe the ordering, in [0, 1]: log-domain
          cluster separation of the per-unit probe times.  Noise that
          blurs the cache/disk gap drives it towards 0. *)
}

val extents : plan -> extent list
(** Just the ordering, fastest first. *)

val extents_or_sequential : config -> plan -> extent list
(** {!extents} when [plan_confidence >= config.min_confidence], otherwise
    the same extents in plain sequential (offset) order — a low-belief
    reordering is worse than none. *)

type file_rank = { fr_path : string; fr_probe_ns : int; fr_size : int }

val order_confidence : config -> file_rank list -> float
(** Confidence in a {!Make.order_files} ranking, in [0, 1] (same
    clustering metric as [plan_confidence]).  Pure — a host pipeline
    additionally caps the result at the backend's
    {!Os_intf.S.timing_confidence_cap}. *)

(** The probing machinery over any {!Os_intf.S} backend.  A plan's
    [plan_confidence] is capped at the backend's
    [timing_confidence_cap] — a coarse host timer widens uncertainty
    instead of crashing (the sim's cap is 1.0, the identity). *)
module Make (Os : Os_intf.S) : sig
  val probe_file : Os.env -> config -> path:string -> (plan, Simos.Kernel.error) result
  (** Probe one file and plan its best access order. *)

  val probe_fd : Os.env -> config -> path:string -> Os.fd -> plan
  (** Same on an already-open descriptor. *)

  val order_files :
    Os.env ->
    config ->
    paths:string list ->
    (file_rank list, Simos.Kernel.error) result
  (** Rank whole files by probe time, fastest (most cached) first; the
      multi-file interface behind [gbp -mem] and [gb-grep].  Each file gets
      one probe per prediction unit; sub-page files get [fake_high_ns]. *)

  val read_plan :
    ?policy:Resilient.policy ->
    Os.env ->
    Os.fd ->
    plan ->
    f:(off:int -> len:int -> unit) ->
    unit
  (** Read the file extent-by-extent in plan order, invoking [f] after each
      extent arrives (the application's processing hook).  With [?policy],
      transient read errors are retried; an extent whose read still fails is
      skipped (so [f] never sees bytes that did not arrive). *)
end

(** The simulated-backend instance (the historical flat API). *)

val probe_file : Simos.Kernel.env -> config -> path:string -> (plan, Simos.Kernel.error) result

val probe_fd :
  Simos.Kernel.env -> config -> path:string -> Simos.Kernel.fd -> plan

val order_files :
  Simos.Kernel.env ->
  config ->
  paths:string list ->
  (file_rank list, Simos.Kernel.error) result

val read_plan :
  ?policy:Resilient.policy ->
  Simos.Kernel.env ->
  Simos.Kernel.fd ->
  plan ->
  f:(off:int -> len:int -> unit) ->
  unit
