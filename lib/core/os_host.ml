(* The real-OS backend: [Os_intf.S] over the Unix module, hardened.

   Every syscall is wrapped so that no exception — [Unix_error],
   [Sys_error], [Out_of_memory] — ever escapes to the ICL: transient
   errno values (EINTR/EAGAIN) are retried with backoff up to a per-call
   deadline, partial reads/writes are completed in a loop, and every
   other errno maps into the same typed taxonomy the fault plane injects
   ([Simos.Kernel.error]), so ICL error paths exercised under simulated
   fault injection are the exact paths a flaky real kernel takes.

   Timing comes from CLOCK_MONOTONIC (the bechamel stub, a noalloc
   external).  A capability probe at {!create} measures the achievable
   timer resolution; a coarse timer widens {!timing_confidence_cap}
   instead of failing, and a broken clock (never advances) makes
   {!create} return [Unsupported] — graceful degradation, not a crash. *)

open Simos

let name = "host"

let page = 4096

(* ---- errno taxonomy --------------------------------------------------- *)

(* Stable errno names for the [Sys_error] payload: [Unix.error_message]
   is locale-dependent prose, useless in a typed result a test (or a
   shell script) wants to match on. *)
let errno_name (e : Unix.error) =
  match e with
  | Unix.EACCES -> "EACCES"
  | EBUSY -> "EBUSY"
  | EFAULT -> "EFAULT"
  | EFBIG -> "EFBIG"
  | EINVAL -> "EINVAL"
  | EIO -> "EIO"
  | ELOOP -> "ELOOP"
  | EMFILE -> "EMFILE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENFILE -> "ENFILE"
  | ENODEV -> "ENODEV"
  | ENOMEM -> "ENOMEM"
  | ENXIO -> "ENXIO"
  | EPERM -> "EPERM"
  | EROFS -> "EROFS"
  | EXDEV -> "EXDEV"
  | EOVERFLOW -> "EOVERFLOW"
  | EUNKNOWNERR n -> Printf.sprintf "errno:%d" n
  | e -> (
    (* the remaining constructors are rare on the calls we make; fall
       back to the (ASCII) libc message rather than growing this match
       forever *)
    try Unix.error_message e with _ -> "EUNKNOWN")

let errno_error (e : Unix.error) : Kernel.error =
  match e with
  | Unix.ENOENT -> Kernel.Fs_error Fs.Enoent
  | EEXIST -> Kernel.Fs_error Fs.Eexist
  | ENOTDIR -> Kernel.Fs_error Fs.Enotdir
  | EISDIR -> Kernel.Fs_error Fs.Eisdir
  | ENOTEMPTY -> Kernel.Fs_error Fs.Enotempty
  | ENOSPC -> Kernel.Fs_error Fs.Enospc
  | EBADF -> Kernel.Bad_fd
  | EINTR | EAGAIN | EWOULDBLOCK -> Kernel.Retryable
  | e -> Kernel.Sys_error (errno_name e)

(* ---- the environment -------------------------------------------------- *)

type fd = int

type fd_info = { fi_real : Unix.file_descr; fi_path : string }

type t = {
  root : string;  (* "" = host paths used as given *)
  deadline_ns : int;  (* per-syscall transient-retry budget *)
  resolution_ns : int;  (* measured monotonic-timer resolution *)
  cap : float;  (* timing confidence cap derived from it *)
  t0 : int64;  (* monotonic origin: gettime counts from 0 *)
  fds : (int, fd_info) Hashtbl.t;
  mutable next_fd : int;
  scratch : Bytes.t;  (* reused I/O buffer: reads discard, writes zero *)
  fl : Gray_util.Flight.t option;
}

type env = t
type region = { r_pages : int; mutable r_buf : Bytes.t option }

let now_raw () = Monotonic_clock.now ()
let now_ns t = Int64.to_int (Int64.sub (now_raw ()) t.t0)
let gettime = now_ns
let timing_confidence_cap t = t.cap
let timer_resolution_ns t = t.resolution_ns
let open_fd_count t = Hashtbl.length t.fds
let flight t = t.fl
let pid (_ : t) = Unix.getpid ()
let durability_on (_ : t) = true

let sleep_ns ns =
  if ns > 0 then
    try Unix.sleepf (float_of_int ns /. 1e9)
    with Unix.Unix_error ((EINTR | EAGAIN), _, _) -> ()

let record t code =
  match t.fl with
  | None -> ()
  | Some fl ->
    Gray_util.Flight.record fl ~ts:(now_ns t) ~code ~pid:(Unix.getpid ()) ~a:0
      ~b:0

(* ---- defensive call wrapper ------------------------------------------- *)

(* Run one Unix call totally: EINTR retries immediately, EAGAIN backs
   off (doubling, capped at 1 ms) until the deadline turns it into a
   typed [Timeout]; every other exception becomes a typed error.  The
   deadline only bounds the transient-retry loop — a slow but
   successful call is never cut short. *)
let guard t f =
  let deadline = now_ns t + t.deadline_ns in
  let rec go backoff =
    match f () with
    | v -> Ok v
    | exception Unix.Unix_error (EINTR, _, _) ->
      if now_ns t > deadline then Error Kernel.Timeout else go backoff
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      if now_ns t > deadline then Error Kernel.Timeout
      else begin
        sleep_ns backoff;
        go (min 1_000_000 (backoff * 2))
      end
    | exception Unix.Unix_error (e, _, _) -> Error (errno_error e)
    | exception Sys_error msg -> Error (Kernel.Sys_error msg)
    | exception Out_of_memory -> Error (Kernel.Sys_error "ENOMEM")
  in
  go 1_000

(* ---- paths ------------------------------------------------------------ *)

(* Containment is part of the hardening: with a [root] configured, a
   path that climbs out of it (a ".." component) is rejected with the
   same [Bad_path] the simulated kernel uses for a path outside its
   volumes — before any host syscall sees it. *)
let resolve t path =
  let climbs =
    List.exists (fun c -> c = "..") (String.split_on_char '/' path)
  in
  if climbs then Error Kernel.Bad_path
  else if t.root = "" then Ok path
  else if String.length path > 0 && path.[0] = '/' then Ok (t.root ^ path)
  else Ok (t.root ^ "/" ^ path)

let dirname path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* Blob side-band (the FLDC journal records): a sidecar file next to its
   owner.  Sidecars are an implementation detail — readdir hides them,
   unlink/rename carry them, fsync flushes them with the owner. *)
let blob_prefix = ".gb_blob."
let blob_path path = dirname path ^ "/" ^ blob_prefix ^ basename path

let is_blob_name n =
  String.length n >= String.length blob_prefix
  && String.sub n 0 (String.length blob_prefix) = blob_prefix

(* ---- fd table --------------------------------------------------------- *)

let find_fd t fd = Hashtbl.find_opt t.fds fd

let register t real path =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd { fi_real = real; fi_path = path };
  fd

(* ---- file syscalls ---------------------------------------------------- *)

let open_file t path =
  record t Gray_util.Flight.Open;
  match resolve t path with
  | Error e -> Error e
  | Ok p -> (
    match guard t (fun () -> Unix.openfile p [ Unix.O_RDWR ] 0) with
    | Error _ as e -> e
    | Ok real -> Ok (register t real p))

let create_file t path =
  record t Gray_util.Flight.Create;
  match resolve t path with
  | Error e -> Error e
  | Ok p -> (
    match
      guard t (fun () ->
          Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o644)
    with
    | Error _ as e -> e
    | Ok real -> Ok (register t real p))

let close t fd =
  record t Gray_util.Flight.Close;
  match find_fd t fd with
  | None -> ()
  | Some { fi_real; _ } ->
    Hashtbl.remove t.fds fd;
    (try Unix.close fi_real with Unix.Unix_error _ -> ())

let scratch_bytes = 1 lsl 20

(* Positional I/O through lseek + read/write (single-threaded per env,
   so the shared file offset is safe).  Short transfers are completed in
   a loop: the ICL asked for [len] bytes of cache-state evidence and a
   partial count is an artifact of the host, not information. *)
let read t fd ~off ~len =
  record t Gray_util.Flight.Read;
  if off < 0 || len < 0 then Error (Kernel.Sys_error "EINVAL")
  else
    match find_fd t fd with
    | None -> Error Kernel.Bad_fd
    | Some { fi_real; _ } ->
      let rec fill total =
        if total >= len then Ok total
        else
          let want = min (len - total) scratch_bytes in
          match
            guard t (fun () ->
                ignore (Unix.lseek fi_real (off + total) Unix.SEEK_SET);
                Unix.read fi_real t.scratch 0 want)
          with
          | Error _ as e -> e
          | Ok 0 -> Ok total (* end of file: short read, like the sim *)
          | Ok n -> fill (total + n)
      in
      fill 0

let write t fd ~off ~len =
  record t Gray_util.Flight.Write;
  if off < 0 || len < 0 then Error (Kernel.Sys_error "EINVAL")
  else
    match find_fd t fd with
    | None -> Error Kernel.Bad_fd
    | Some { fi_real; _ } ->
      Bytes.fill t.scratch 0 (min len scratch_bytes) '\000';
      let rec drain total =
        if total >= len then Ok total
        else
          let want = min (len - total) scratch_bytes in
          match
            guard t (fun () ->
                ignore (Unix.lseek fi_real (off + total) Unix.SEEK_SET);
                Unix.write fi_real t.scratch 0 want)
          with
          | Error _ as e -> e
          | Ok 0 -> Error (Kernel.Sys_error "EIO") (* no forward progress *)
          | Ok n -> drain (total + n)
      in
      drain 0

let file_size t fd =
  match find_fd t fd with
  | None -> 0
  | Some { fi_real; _ } -> (
    match guard t (fun () -> (Unix.fstat fi_real).Unix.st_size) with
    | Ok n -> n
    | Error _ -> 0)

let mkdir t path =
  record t Gray_util.Flight.Mkdir;
  match resolve t path with
  | Error e -> Error e
  | Ok p -> guard t (fun () -> Unix.mkdir p 0o755)

let unlink t path =
  record t Gray_util.Flight.Unlink;
  match resolve t path with
  | Error e -> Error e
  | Ok p ->
    (* the sim's unlink removes empty directories too; match it *)
    let r =
      guard t (fun () ->
          match (Unix.lstat p).Unix.st_kind with
          | Unix.S_DIR -> Unix.rmdir p
          | _ -> Unix.unlink p)
    in
    (match r with
    | Ok () -> ( try Unix.unlink (blob_path p) with _ -> ())
    | Error _ -> ());
    r

let rename t ~src ~dst =
  record t Gray_util.Flight.Rename;
  match (resolve t src, resolve t dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok s, Ok d ->
    let r = guard t (fun () -> Unix.rename s d) in
    (match r with
    | Ok () -> ( try Unix.rename (blob_path s) (blob_path d) with _ -> ())
    | Error _ -> ());
    r

let readdir t path =
  record t Gray_util.Flight.Readdir;
  match resolve t path with
  | Error e -> Error e
  | Ok p ->
    guard t (fun () ->
        let dir = Unix.opendir p in
        Fun.protect
          ~finally:(fun () -> try Unix.closedir dir with _ -> ())
          (fun () ->
            let acc = ref [] in
            (try
               while true do
                 let n = Unix.readdir dir in
                 if n <> "." && n <> ".." && not (is_blob_name n) then
                   acc := n :: !acc
               done
             with End_of_file -> ());
            (* host readdir order is fs-dependent; sort for determinism *)
            List.sort compare !acc))

let stat t path =
  record t Gray_util.Flight.Stat;
  match resolve t path with
  | Error e -> Error e
  | Ok p ->
    guard t (fun () ->
        let st = Unix.stat p in
        {
          Fs.st_ino = st.Unix.st_ino;
          st_size = st.Unix.st_size;
          st_is_dir = st.Unix.st_kind = Unix.S_DIR;
          (* the taxonomy keeps integer nanoseconds; 63-bit ints hold
             epoch-ns until the year 2262 *)
          st_atime = int_of_float (st.Unix.st_atime *. 1e9);
          st_mtime = int_of_float (st.Unix.st_mtime *. 1e9);
          st_blocks = (st.Unix.st_size + 511) / 512;
        })

let utimes t path ~atime ~mtime =
  record t Gray_util.Flight.Utimes;
  match resolve t path with
  | Error e -> Error e
  | Ok p ->
    guard t (fun () ->
        let s ns =
          let v = float_of_int ns /. 1e9 in
          (* Unix.utimes treats (0, 0) as "set to now"; an ICL restoring
             a genuine zero timestamp must not be misread as that *)
          if v = 0.0 then 1e-6 else v
        in
        Unix.utimes p (s atime) (s mtime))

let fsync_dir p =
  (* a directory fsync makes the entry durable; some file systems refuse
     it (EINVAL) and that is fine — best effort, never an error *)
  match Unix.openfile p [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | d ->
    (try Unix.fsync d with Unix.Unix_error _ -> ());
    ( try Unix.close d with Unix.Unix_error _ -> ())

let fsync t fd =
  record t Gray_util.Flight.Fsync;
  match find_fd t fd with
  | None -> Error Kernel.Bad_fd
  | Some { fi_real; fi_path } ->
    let r = guard t (fun () -> Unix.fsync fi_real) in
    (match r with
    | Ok () ->
      (* the durable image must include the blob sidecar and the name *)
      (match Unix.openfile (blob_path fi_path) [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> ()
      | b ->
        (try Unix.fsync b with Unix.Unix_error _ -> ());
        (try Unix.close b with Unix.Unix_error _ -> ()));
      fsync_dir (dirname fi_path)
    | Error _ -> ());
    r

let sync t =
  record t Gray_util.Flight.Sync;
  (* OCaml's Unix has no sync(2) binding; flushing every descriptor this
     env holds open covers everything this env can have dirtied *)
  Hashtbl.iter
    (fun _ { fi_real; _ } ->
      try Unix.fsync fi_real with Unix.Unix_error _ -> ())
    t.fds

let write_blob t fd s =
  record t Gray_util.Flight.Write_blob;
  match find_fd t fd with
  | None -> Error Kernel.Bad_fd
  | Some { fi_path; _ } ->
    guard t (fun () ->
        let b =
          Unix.openfile (blob_path fi_path)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close b with _ -> ())
          (fun () ->
            let n = Unix.write_substring b s 0 (String.length s) in
            if n <> String.length s then raise (Sys_error "short blob write")))

let read_blob t fd =
  record t Gray_util.Flight.Read_blob;
  match find_fd t fd with
  | None -> Error Kernel.Bad_fd
  | Some { fi_path; _ } -> (
    match
      guard t (fun () ->
          let b = Unix.openfile (blob_path fi_path) [ Unix.O_RDONLY ] 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close b with _ -> ())
            (fun () ->
              let size = (Unix.fstat b).Unix.st_size in
              let buf = Bytes.create size in
              let rec fill off =
                if off >= size then Bytes.to_string buf
                else
                  match Unix.read b buf off (size - off) with
                  | 0 -> Bytes.sub_string buf 0 off
                  | n -> fill (off + n)
              in
              fill 0))
    with
    | Ok s -> Ok s
    | Error (Kernel.Fs_error Fs.Enoent) -> Ok "" (* never written *)
    | Error _ as e -> e)

(* ---- memory syscalls -------------------------------------------------- *)

let valloc t ~pages =
  record t Gray_util.Flight.Valloc;
  if pages < 0 then Error (Kernel.Sys_error "EINVAL")
  else
    guard t (fun () -> { r_pages = pages; r_buf = Some (Bytes.create (pages * page)) })

let vfree t r =
  record t Gray_util.Flight.Vfree;
  r.r_buf <- None

let vrelease t r ~first ~count =
  record t Gray_util.Flight.Vrelease;
  match r.r_buf with
  | None -> ()
  | Some b ->
    (* MADV_DONTNEED semantics: contents are lost, the next touch sees
       zeroes.  We cannot return the frames from a Bytes-backed region,
       but the observable contract holds. *)
    let first = max 0 first in
    let count = min count (r.r_pages - first) in
    if count > 0 then Bytes.fill b (first * page) (count * page) '\000'

let touch_pages t r ~first ~count =
  record t Gray_util.Flight.Touch;
  match r.r_buf with
  | None -> Array.make (max 0 count) 0
  | Some b ->
    let first = max 0 first in
    let count = max 0 (min count (r.r_pages - first)) in
    Array.init count (fun i ->
        let t0 = now_raw () in
        Bytes.set b ((first + i) * page) 'x';
        let t1 = now_raw () in
        max 0 (Int64.to_int (Int64.sub t1 t0)))

(* /proc/vmstat's swap counters are the closest host analogue of the
   sim's anonymous page-in/out counters.  Absent (non-Linux, hidden
   procfs) the typed [Unsupported] tells MAC to fall back to timing. *)
let vmstat t =
  record t Gray_util.Flight.Vmstat;
  let parse ic =
    let ins = ref None and outs = ref None in
    (try
       while !ins = None || !outs = None do
         let line = input_line ic in
         match String.split_on_char ' ' line with
         | [ "pswpin"; v ] -> ins := int_of_string_opt v
         | [ "pswpout"; v ] -> outs := int_of_string_opt v
         | _ -> ()
       done
     with End_of_file -> ());
    match (!ins, !outs) with
    | Some i, Some o -> Some { Kernel.vm_page_ins = i; vm_page_outs = o }
    | _ -> None
  in
  match open_in "/proc/vmstat" with
  | exception Sys_error _ -> Error (Kernel.Unsupported "/proc/vmstat")
  | ic -> (
    let r = try parse ic with _ -> None in
    close_in_noerr ic;
    match r with
    | Some v -> Ok v
    | None -> Error (Kernel.Unsupported "/proc/vmstat"))

(* ---- cpu -------------------------------------------------------------- *)

let compute t ~ns =
  record t Gray_util.Flight.Compute;
  if ns > 0 then begin
    let stop = Int64.add (now_raw ()) (Int64.of_int ns) in
    let x = ref 0 in
    while Int64.compare (now_raw ()) stop < 0 do
      x := Sys.opaque_identity (!x + 1)
    done
  end

let compute_bytes t ~bytes ~ns_per_byte =
  compute t ~ns:(int_of_float (float_of_int bytes *. ns_per_byte))

(* ---- capability probe and construction -------------------------------- *)

let default_deadline_ns = 2_000_000_000

(* Measure the monotonic clock: take back-to-back readings and find the
   smallest positive increment.  A clock that never advances across many
   pairs (or runs backwards) is unusable for timing probes — that is the
   one capability this backend cannot degrade around. *)
let probe_timer () =
  let rec spin_delta tries =
    if tries = 0 then None
    else
      let a = now_raw () in
      let b = now_raw () in
      let d = Int64.sub b a in
      if Int64.compare d 0L < 0 then Some (Error `Backwards)
      else if Int64.compare d 0L > 0 then Some (Ok (Int64.to_int d))
      else spin_delta (tries - 1)
  in
  let rec best i acc =
    if i = 0 then acc
    else
      match spin_delta 10_000 with
      | None -> acc
      | Some (Error `Backwards) -> Some (Error `Backwards)
      | Some (Ok d) -> (
        match acc with
        | Some (Ok prev) -> best (i - 1) (Some (Ok (min prev d)))
        | _ -> best (i - 1) (Some (Ok d)))
  in
  best 16 None

(* Sub-microsecond resolution deserves full belief; beyond that the cap
   shrinks with the resolution (a 10 us timer cannot separate a cache
   hit from a miss on a fast disk), flooring at 0.25 — coarse timing is
   degraded evidence, not no evidence. *)
let cap_of_resolution res_ns =
  if res_ns <= 1_000 then 1.0
  else Float.max 0.25 (float_of_int 1_000 /. float_of_int res_ns)

let create ?(root = "") ?(deadline_ns = default_deadline_ns) () =
  if deadline_ns <= 0 then Error (Kernel.Sys_error "EINVAL")
  else
    match
      if root = "" then Ok ()
      else
        match (Unix.stat root).Unix.st_kind with
        | Unix.S_DIR -> Ok ()
        | _ -> Error (Kernel.Fs_error Fs.Enotdir)
        | exception Unix.Unix_error (e, _, _) -> Error (errno_error e)
    with
    | Error _ as e -> e
    | Ok () -> (
      match probe_timer () with
      | None -> Error (Kernel.Unsupported "monotonic clock does not advance")
      | Some (Error `Backwards) ->
        Error (Kernel.Unsupported "monotonic clock runs backwards")
      | Some (Ok res) ->
        Ok
          {
            root = (if root = "" then "" else Filename.concat root "" |> fun s ->
                    (* strip the trailing separator Filename.concat adds *)
                    String.sub s 0 (String.length s - 1));
            deadline_ns;
            resolution_ns = res;
            cap = cap_of_resolution res;
            t0 = now_raw ();
            fds = Hashtbl.create 32;
            next_fd = 3;
            scratch = Bytes.create scratch_bytes;
            fl = Gray_util.Flight.of_env ();
          })

(* Close every descriptor still open (the temp-dir cleanup path of
   [gbp --os host] and the conformance suite's leak check). *)
let shutdown t =
  Hashtbl.iter
    (fun _ { fi_real; _ } ->
      try Unix.close fi_real with Unix.Unix_error _ -> ())
    t.fds;
  Hashtbl.reset t.fds
