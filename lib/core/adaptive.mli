(** Self-healing wrappers for gray-box ICLs under environment drift.

    An ICL's calibration (a MAC slow threshold, an FCCD probe-time
    ranking) encodes assumptions about the machine it was taken on.  The
    drift plane ({!Simos.Drift}) changes the machine mid-run; a frozen
    ICL then keeps producing confident-looking answers that are silently
    wrong.  This module adds the missing feedback loop:

    - a {!watchdog} turns per-use {e health} samples (cheap spot checks
      of the ICL's own assumptions, in [0, 1]) into an EMA and flags
      {e staleness} when the smoothed health collapses;
    - staleness triggers {e incremental re-calibration}: the fresh
      measurement is blended with the prior estimate ([prior_weight]),
      not a cold restart, so one noisy re-probe cannot wipe out a good
      calibration;
    - re-calibrations draw on a bounded budget ({!Resilient}-style): in a
      permanently hostile environment the wrapper degrades into the
      distinct {!status} [Exhausted] / [`Stale_budget_exhausted] error
      instead of thrashing forever.

    Everything here runs on the gray-box side of the wall — health checks
    use the same timing channels the ICLs themselves use, never kernel
    introspection.  The wrappers are functorized over the backend: a host
    capability failure (e.g. a refused [valloc]) reads as health 0 and
    flows through the same staleness machinery as drift does. *)

type config = {
  alpha : float;  (** EMA weight of the newest health sample *)
  stale_threshold : float;
      (** smoothed health below this flags staleness *)
  warmup : int;
      (** staleness detection starts after this many samples *)
  recal_budget : int;  (** lifetime re-calibration allowance *)
  prior_weight : float;
      (** weight of the prior estimate when blending in a fresh
          measurement; [0] = cold restart, [1] = never move *)
}

val default_config : config
(** [alpha = 0.6], [stale_threshold = 0.6], [warmup = 1],
    [recal_budget = 8], [prior_weight = 0.3]. *)

type status = Fresh | Stale | Exhausted

val status_to_string : status -> string

(** {1 Watchdog core}

    Backend-independent: the watchdog consumes health samples and
    timestamps, never an env. *)

type watchdog

val watchdog : ?config:config -> string -> watchdog
(** [watchdog name] — the name tags telemetry events.  Raises
    [Invalid_argument] on a malformed config (alpha or threshold or
    prior_weight outside their ranges, negative warmup or budget). *)

val observe : watchdog -> now_ns:int -> float -> unit
(** Feed one health sample in [0, 1].  After [warmup] samples, the
    smoothed value dropping below [stale_threshold] moves the watchdog to
    [Stale] (emitting a [core.adaptive.stale] event); rising back above
    it recovers to [Fresh] and accounts the stale interval into
    {!stale_ns} (and the [adaptive.stale_ns] metric). *)

val begin_recalibration : watchdog -> bool
(** Claim one unit of the re-calibration budget.  [true] = proceed (the
    [adaptive.recalibrations] metric is bumped); [false] = the budget is
    exhausted and the watchdog is now permanently [Exhausted]. *)

val end_recalibration : watchdog -> now_ns:int -> health:float -> unit
(** Finish a re-calibration: the EMA restarts seeded with [health], the
    status returns to [Fresh], and any open stale interval is closed
    into {!stale_ns}. *)

val status : watchdog -> status
val health : watchdog -> float
(** Current smoothed health (1.0 before any sample). *)

val samples : watchdog -> int
val recalibrations : watchdog -> int
val stale_ns : watchdog -> int
(** Total virtual time spent in [Stale] (closed intervals only). *)

(** {1 The wrappers, over any backend} *)

module Make (Os : Os_intf.S) : sig
  (** {2 MAC wrapper}

      Wraps [gb_alloc] with a frozen-then-healed slow threshold.  The
      health probe re-touches a small resident region and measures the
      fraction classified fast by the current threshold — on an undrifted
      machine that is ~1.0; after a timer-resolution drift every touch
      quantises above a stale threshold and it collapses to 0.  A backend
      that refuses the check region's [valloc] also scores 0, so host
      capability loss degrades exactly like drift. *)

  type mac

  val mac : ?config:config -> Os.env -> mac_config:Mac.config -> mac
  (** Calibrate once ({!Mac.Make.calibrate_threshold}, unless the config
      pins [slow_threshold_ns]) and wrap the result. *)

  val mac_threshold_ns : mac -> int
  (** The threshold currently in force (moves on re-calibration). *)

  val mac_watchdog : mac -> watchdog

  val mac_alloc :
    Os.env ->
    mac ->
    min:int ->
    max:int ->
    multiple:int ->
    (Mac.Make(Os).allocation option, [ `Stale_budget_exhausted ]) result
  (** [gb_alloc] behind the watchdog: spot-check health first; when
      stale, re-calibrate (fresh threshold blended with the prior at
      [prior_weight]) and retry, spending budget each time; [Error] once
      the budget is gone. *)

  (** {2 FCCD wrapper}

      Maintains a per-file probe-time estimate and re-orders files by it.
      Each ordering request spot-probes a small rotating subset; health is
      the pairwise rank concordance between the stored estimates and the
      fresh probes.  Spot results are always blended into the estimates
      (incremental adaptation); staleness triggers a full re-probe. *)

  type fccd

  val fccd :
    ?config:config ->
    Os.env ->
    fccd_config:Fccd.config ->
    paths:string list ->
    (fccd, Simos.Kernel.error) result
  (** Full initial probe to seed the estimates. *)

  val fccd_watchdog : fccd -> watchdog

  val fccd_estimates : fccd -> (string * float) list
  (** Current per-file probe-time estimates (for inspection/tests). *)

  val fccd_order :
    Os.env ->
    fccd ->
    (string list,
     [ `Kernel of Simos.Kernel.error | `Stale_budget_exhausted ])
    result
  (** Paths in predicted fastest-first order after the spot check (and any
      re-calibration it triggered). *)
end

(** {1 The simulated-backend instance (the historical flat API)} *)

type mac = Make(Os_sim).mac

val mac :
  ?config:config -> Simos.Kernel.env -> mac_config:Mac.config -> mac

val mac_threshold_ns : mac -> int
val mac_watchdog : mac -> watchdog

val mac_alloc :
  Simos.Kernel.env ->
  mac ->
  min:int ->
  max:int ->
  multiple:int ->
  (Mac.allocation option, [ `Stale_budget_exhausted ]) result

type fccd = Make(Os_sim).fccd

val fccd :
  ?config:config ->
  Simos.Kernel.env ->
  fccd_config:Fccd.config ->
  paths:string list ->
  (fccd, Simos.Kernel.error) result

val fccd_watchdog : fccd -> watchdog
val fccd_estimates : fccd -> (string * float) list

val fccd_order :
  Simos.Kernel.env ->
  fccd ->
  (string list,
   [ `Kernel of Simos.Kernel.error | `Stale_budget_exhausted ])
  result
