(** Probe primitives: timed requests inserted solely to observe the OS.

    "The ICL can insert probes, or specific requests to the OS generated
    solely to observe the resulting output" (Section 2.1).  All timings go
    through the gray-box clock ({!Simos.Kernel.gettime}), never through
    white-box channels. *)

val file_byte : Simos.Kernel.env -> Simos.Kernel.fd -> off:int -> int
(** Read one byte at [off] and return the observed elapsed nanoseconds.
    Destructive: a missing page is faulted into the file cache.  A failed
    read is reported as its own (small) elapsed time — under fault
    injection prefer {!file_byte_r}, which would misread an [EINTR]
    return as a cache hit. *)

val file_byte_r :
  Simos.Kernel.env ->
  ?policy:Resilient.policy ->
  Simos.Kernel.fd ->
  off:int ->
  (int, Simos.Kernel.error) result
(** Like {!file_byte} but transient failures are retried
    ({!Resilient.retry}) and only the {e successful} attempt's elapsed
    time is reported — backoff sleeps never pollute the sample.  Errors
    that survive the retry budget are returned. *)

val timed_read : Simos.Kernel.env -> Simos.Kernel.fd -> off:int -> len:int -> int * int
(** [(bytes_read, elapsed_ns)]. *)

val timed : Simos.Kernel.env -> (unit -> 'a) -> 'a * int
(** Time an arbitrary action with the gray-box clock. *)
