(** Probe primitives: timed requests inserted solely to observe the OS.

    "The ICL can insert probes, or specific requests to the OS generated
    solely to observe the resulting output" (Section 2.1).  All timings go
    through the backend's gray-box clock ({!Os_intf.S.gettime}), never
    through white-box channels. *)

module Make (Os : Os_intf.S) : sig
  val file_byte : Os.env -> Os.fd -> off:int -> int
  (** Read one byte at [off] and return the observed elapsed nanoseconds.
      Destructive: a missing page is faulted into the file cache.  A failed
      read is reported as its own (small) elapsed time — under fault
      injection prefer {!file_byte_r}, which would misread an [EINTR]
      return as a cache hit. *)

  val file_byte_r :
    Os.env ->
    ?policy:Resilient.policy ->
    Os.fd ->
    off:int ->
    (int, Simos.Kernel.error) result
  (** Like {!file_byte} but transient failures are retried
      ({!Resilient.Make.retry}) and only the {e successful} attempt's
      elapsed time is reported — backoff sleeps never pollute the sample.
      Errors that survive the retry budget are returned. *)

  val timed_read : Os.env -> Os.fd -> off:int -> len:int -> int * int
  (** [(bytes_read, elapsed_ns)]. *)

  val timed : Os.env -> (unit -> 'a) -> 'a * int
  (** Time an arbitrary action with the gray-box clock. *)
end

(** The simulated-backend instance (the historical flat API). *)

val file_byte : Simos.Kernel.env -> Simos.Kernel.fd -> off:int -> int

val file_byte_r :
  Simos.Kernel.env ->
  ?policy:Resilient.policy ->
  Simos.Kernel.fd ->
  off:int ->
  (int, Simos.Kernel.error) result

val timed_read : Simos.Kernel.env -> Simos.Kernel.fd -> off:int -> len:int -> int * int
val timed : Simos.Kernel.env -> (unit -> 'a) -> 'a * int
