(** Backend selection: the [gbp --os] flag (sim or host) and
    [GRAYBOX_OS]. *)

type t = Sim | Host

val to_string : t -> string
val all : t list

val of_string : string -> t option
(** Strict: anything but ["sim"] / ["host"] is [None]. *)

val of_env : unit -> t
(** [GRAYBOX_OS], default [Sim]; a bad token exits with the usage code
    (uniform {!Gray_util.Env} diagnostics). *)
