(** Retry combinator for gray-box syscalls under a hostile OS.

    Real probing faces transient failures (EINTR/EAGAIN) and must back off
    rather than hammer a loaded machine.  [retry] re-issues a call while it
    fails {e transiently}, sleeping between attempts with bounded
    exponential backoff and decorrelated jitter; permanent errors
    ([Enoent], [Bad_fd], ...) are returned immediately.  A per-policy
    retry {e budget} bounds the total number of re-issues an ICL run may
    spend, so a persistently failing channel degrades into an error
    instead of an unbounded stall.

    All jitter comes from the policy's own seeded RNG, and nothing is
    drawn unless a retry actually happens — with fault injection off the
    combinator is invisible. *)

open Gray_util

type policy = {
  max_attempts : int;  (** attempts per call, including the first *)
  base_backoff_ns : int;  (** first sleep *)
  max_backoff_ns : int;  (** sleep cap *)
  budget : int;  (** total retries this policy may spend across calls *)
  rng : Rng.t;  (** decorrelated-jitter draws *)
  mutable spent : int;  (** retries performed so far — read via {!retries_spent} *)
}

val policy :
  ?max_attempts:int ->
  ?base_backoff_ns:int ->
  ?max_backoff_ns:int ->
  ?budget:int ->
  seed:int ->
  unit ->
  policy
(** Defaults: 6 attempts, 50 us base, 20 ms cap, budget 10_000. *)

val default : unit -> policy
(** A fresh policy from a fixed seed (deterministic across runs). *)

val classify : Simos.Kernel.error -> [ `Transient | `Permanent ]
(** [Retryable] and the host backend's [Timeout] are transient;
    everything else is permanent.  One classification serves both
    backends — that is the point of the shared taxonomy. *)

val retries_spent : policy -> int
(** Retries this policy has performed so far (counts against [budget]). *)

(** Only the backoff sleep depends on the backend, so only the retry
    combinators are functorized; {!policy} and {!classify} are shared. *)
module Make (Os : Os_intf.S) : sig
  val retry :
    ?policy:policy ->
    (unit -> ('a, Simos.Kernel.error) result) ->
    ('a, Simos.Kernel.error) result
  (** Run the call, retrying transient failures with backoff
      ([Os.sleep_ns]; under the sim backend this is a fiber delay and
      must run inside a fiber).  When attempts or budget run out the
      last error is returned.  [?policy] defaults to a one-shot
      {!default} policy. *)

  val retry_idempotent :
    ?policy:policy ->
    completed:(Simos.Kernel.error -> 'a option) ->
    (unit -> ('a, Simos.Kernel.error) result) ->
    ('a, Simos.Kernel.error) result
  (** {!retry} for calls that are not naturally idempotent under
      crash–restart.  When a {e re-issued} attempt fails with a permanent
      error that [completed] recognises as "the earlier attempt already took
      effect" (e.g. [Eexist] from a create that became durable just before
      the machine died), its value is returned as success.  [completed] is
      never consulted for an error on the first attempt — that is a genuine
      conflict, not evidence of completion. *)
end

(** The simulated-backend instance, re-exported so existing callers keep
    the historical flat API. *)

val retry :
  ?policy:policy ->
  (unit -> ('a, Simos.Kernel.error) result) ->
  ('a, Simos.Kernel.error) result

val retry_idempotent :
  ?policy:policy ->
  completed:(Simos.Kernel.error -> 'a option) ->
  (unit -> ('a, Simos.Kernel.error) result) ->
  ('a, Simos.Kernel.error) result

(** {1 Robust sample summaries}

    Shared by the hardened probing paths: reject outliers (a latency
    spike must not masquerade as a disk access), then summarise. *)

val robust_mean : float array -> float
(** Mean after discarding samples beyond 2 sigma; plain mean when the
    rejection would discard everything.  [nan] on empty input. *)

val robust_median : float array -> float
(** Median after the same rejection.  [nan] on empty input. *)
