open Simos

(* ALICE/CrashMonkey-style exhaustive crash-point exploration (cf.
   Pillai et al., OSDI '14; Mohan et al., OSDI '18) of the ICL recovery
   protocols.  A workload is run once against the crash plane to count
   its syscall boundaries T, then re-run T more times on identical
   kernels, crashing at boundary n = 1..T, restarting from the durable
   image, running the recovery path, and checking invariants.  Every
   boundary is visited — no sampling — and a violating boundary is
   reported as a replayable seed.

   Exploration is window-sharded: the boundary range splits into fixed
   contiguous windows, each a hermetic function of (baseline, lo, hi)
   that replays its boundaries independently, so windows can run as
   seeded tasks on a {!Gray_util.Domain_pool} and merge in submission
   order into the exact serial report — byte-identical at any [-j].
   The per-boundary fsck is {!Fs.check_incremental} against a
   checkpoint taken at the end of setup (every boundary run replays the
   identical setup whose full-fsck cleanliness the baseline verified);
   [~full_fsck:true] pins the full-scan oracle instead, which the
   differential tests diff against. *)

type violation = {
  vi_boundary : int;
  vi_seed : int;
  vi_problem : string;
  vi_replay : string;
  vi_flight : string list;
}

(* How much post-mortem history a violation carries.  16 events cover the
   crashing boundary, the evictions and faults just before it, and the
   failing recovery run — enough to read the story without bloating a
   many-violation report. *)
let flight_tail_events = 16

let flight_tail k =
  match Kernel.flight k with
  | None -> []
  | Some fl -> Gray_util.Flight.lines ~last:flight_tail_events fl

type report = {
  rp_workload_syscalls : int;
  rp_boundaries : int;
  rp_rolled_back : int;
  rp_rolled_forward : int;
  rp_violations : violation list;
}

let small_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

(* The explorer measures the recovery protocol, not the fault plane: like
   the other instruments that test themselves, it pins the bit-identical
   quiet scenario so a GRAYBOX_FAULTS=canonical run cannot inject
   transient errors into the replayed window and desynchronise the
   boundary schedule from the baseline count (the pre-PR-7 crash-16
   failure under canonical faults). *)
let boot ~seed =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:small_platform ~data_disks:1 ~volume_blocks:16384
    ~faults:Fault.quiet ~crash:Crash.durable ~seed ()

let must = function
  | Ok v -> v
  | Error e -> failwith ("Crash_explore: " ^ Kernel.error_to_string e)

let parent = "/d0"
let dir = parent ^ "/dir"

(* The explorer lives below [Gray_apps], so the workload is built from
   raw syscalls.  Sizes decrease with creation order so that the
   refreshed (size-ascending) layout is distinguishable from the
   original creation order.  Setup ends with [sync]: the pre-state must
   be durable, or the first crash boundary would roll the workload
   itself away. *)
let setup env ~files ~file_size =
  must (Kernel.mkdir env dir);
  for i = 0 to files - 1 do
    let path = Printf.sprintf "%s/f%02d" dir i in
    let fd = must (Kernel.create_file env path) in
    let len = file_size * (files - i) in
    ignore (must (Kernel.write env fd ~off:0 ~len));
    Kernel.close env fd
  done;
  Kernel.sync env

(* White-box observation of the durable directory state: sorted
   (name, ino, size, mtime).  Taken through [Fs] directly, not through
   syscalls, so observing does not perturb the crash schedule. *)
let observe fs =
  match Fs.readdir fs "/dir" with
  | Error _ -> None
  | Ok names ->
    Some
      (List.map
         (fun n ->
           match Fs.stat_path fs ("/dir/" ^ n) with
           | Ok st -> (n, st.Fs.st_ino, st.Fs.st_size, st.Fs.st_mtime)
           | Error _ -> (n, -1, -1, -1))
         (List.sort compare names))

(* The paper's layout goal: i-number order matches size order. *)
let ino_order_ok obs =
  let by_ino =
    List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) obs
    |> List.map (fun (n, _, _, _) -> n)
  in
  let by_size =
    List.sort (fun (na, _, sa, _) (nb, _, sb, _) -> compare (sa, na) (sb, nb)) obs
    |> List.map (fun (n, _, _, _) -> n)
  in
  by_ino = by_size

(* A deliberately wrong repair for mutation-testing the explorer: it
   ignores the commit record and always rolls back.  After a post-commit
   crash (original directory already deleted) it destroys the only copy
   of the data — the explorer must catch this. *)
let broken_repair env ~parent =
  let ( let* ) r f = Result.bind r f in
  let rm_dir d =
    let* entries = Kernel.readdir env d in
    let rec go = function
      | [] -> Kernel.unlink env d
      | n :: rest -> (
        match Kernel.unlink env (d ^ "/" ^ n) with
        | Ok () -> go rest
        | Error e -> Error e)
    in
    go entries
  in
  let* entries = Kernel.readdir env parent in
  let prefix = Fldc.journal_name ^ "." in
  let plen = String.length prefix in
  let journals =
    List.filter (fun n -> String.length n > plen && String.sub n 0 plen = prefix) entries
    |> List.sort compare
  in
  let rec fix = function
    | [] -> Ok (journals <> [])
    | jname :: rest ->
      let base = String.sub jname plen (String.length jname - plen) in
      let tmp = Fldc.tmp_dir_path ~parent ~base in
      let* () =
        match Kernel.stat env tmp with
        | Ok _ -> rm_dir tmp
        | Error _ -> Ok ()
      in
      let* () = Kernel.unlink env (parent ^ "/" ^ jname) in
      fix rest
  in
  fix journals

(* ---- workload runners ---- *)

(* One run of the refresh workload: setup, sync, then — with the plane
   optionally armed [n] boundaries into the window — the refresh itself.
   The fsck checkpoint is taken at the end of setup: every boundary run
   replays the byte-identical setup, and the baseline verified that
   state passes the full fsck, so the incremental checker's contract
   holds for everything the window (and the crash rollback, and the
   repair) touches after it.  Returns the kernel (for post-mortem
   inspection), the syscall window, the checkpoint, and whether the
   machine crashed. *)
let run_refresh ~seed ~files ~file_size ~arm =
  let k = boot ~seed in
  let c = Option.get (Kernel.crash_plane k) in
  let window = ref (0, 0) in
  let cp = ref None in
  Kernel.spawn k ~name:"refresh" (fun env ->
      setup env ~files ~file_size;
      cp := Some (Fs.checkpoint (Kernel.volume_fs k 0));
      let s0 = Crash.syscalls c in
      (match arm with Some n -> Crash.arm_at c n | None -> ());
      (match Fldc.refresh_directory env ~dir () with
      | Ok () -> ()
      | Error e -> failwith ("Crash_explore: refresh: " ^ Kernel.error_to_string e));
      window := (s0, Crash.syscalls c));
  let crashed =
    try
      Kernel.run k;
      false
    with Engine.Fiber_crash (_, Crash.Crashed) -> true
  in
  (k, !window, !cp, crashed)

(* {1 MAC / gbp pipeline} *)

let mib = 1024 * 1024

(* A gbp-style pipeline: order the directory's files (cache-then-inode
   composition), read them in that order, then run a MAC allocate /
   touch / free cycle.  No recovery protocol of its own — after a crash
   the invariants are that restart reclaims everything ([Fs.check]
   clean, no processes, no leaked memory keeping a re-run from
   completing) and the durable setup image is intact. *)
let pipeline_window env ~files ~fccd =
  let paths = List.init files (fun i -> Printf.sprintf "%s/f%02d" dir i) in
  let order, (_ : Gbp.fallback_reason option) =
    Gbp.best_order_or_fallback env fccd Gbp.Compose ~paths
  in
  List.iter
    (fun path ->
      let fd = must (Kernel.open_file env path) in
      let size = Kernel.file_size env fd in
      ignore (must (Kernel.read env fd ~off:0 ~len:size));
      Kernel.close env fd)
    order;
  let cfg = Mac.default_config () in
  let cfg = { cfg with Mac.initial_increment = 2 * mib; max_increment = 4 * mib } in
  match Mac.gb_alloc env cfg ~min:mib ~max:(8 * mib) ~multiple:mib with
  | None -> ()
  | Some a ->
    Mac.touch_all env a;
    Mac.gb_free env a

(* Each run builds its own FCCD config from the seed: the config carries
   a mutable RNG, and a shared one would let run order leak into the
   probe schedule — boundary n would crash a {e different} syscall
   sequence than the one the baseline counted, and windows would not be
   independent.  Fresh-per-run, every boundary replays the baseline's
   exact sequence. *)
let run_pipeline ~seed ~files ~file_size ~arm =
  let k = boot ~seed in
  let c = Option.get (Kernel.crash_plane k) in
  let window = ref (0, 0) in
  let cp = ref None in
  Kernel.spawn k ~name:"pipeline" (fun env ->
      setup env ~files ~file_size;
      cp := Some (Fs.checkpoint (Kernel.volume_fs k 0));
      let s0 = Crash.syscalls c in
      (match arm with Some n -> Crash.arm_at c n | None -> ());
      pipeline_window env ~files ~fccd:(Fccd.default_config ~seed ());
      window := (s0, Crash.syscalls c));
  let crashed =
    try
      Kernel.run k;
      false
    with Engine.Fiber_crash (_, Crash.Crashed) -> true
  in
  (k, !window, !cp, crashed)

(* ---- baselines ---- *)

type workload = Refresh | Pipeline

type observation = (string * int * int * int) list

type baseline = {
  bl_workload : workload;
  bl_seed : int;
  bl_files : int;
  bl_file_size : int;
  bl_boundaries : int;
  bl_pre : observation;   (* durable state at the start of the window *)
  bl_post : observation;  (* committed state after an uncrashed run *)
}

let baseline_boundaries bl = bl.bl_boundaries

(* The durable pre-image, observed from a setup-only run — the same
   state every boundary run holds at its checkpoint.  The full fsck must
   pass here: this anchors the incremental checker's contract for the
   whole window sweep. *)
let pre_image ~seed ~files ~file_size =
  let k = boot ~seed in
  Kernel.spawn k ~name:"setup" (fun env -> setup env ~files ~file_size);
  Kernel.run k;
  let fs = Kernel.volume_fs k 0 in
  (match Fs.check_full fs with
  | [] -> ()
  | ps ->
    failwith
      ("Crash_explore: setup state fails the full fsck: " ^ String.concat "; " ps));
  match observe fs with
  | Some obs -> obs
  | None -> failwith "Crash_explore: setup produced no directory"

let refresh_baseline ?(seed = 11) ?(files = 6) ?(file_size = 8192) () =
  let bl_pre = pre_image ~seed ~files ~file_size in
  let k, (s0, s1), _cp, crashed = run_refresh ~seed ~files ~file_size ~arm:None in
  if crashed then failwith "Crash_explore: baseline run crashed";
  let bl_post =
    match observe (Kernel.volume_fs k 0) with
    | Some obs -> obs
    | None -> failwith "Crash_explore: baseline refresh produced no directory"
  in
  let t = s1 - s0 in
  if t <= 0 then failwith "Crash_explore: empty refresh window";
  { bl_workload = Refresh; bl_seed = seed; bl_files = files; bl_file_size = file_size;
    bl_boundaries = t; bl_pre; bl_post }

let pipeline_baseline ?(seed = 23) ?(files = 4) ?(file_size = 8192) () =
  let bl_pre = pre_image ~seed ~files ~file_size in
  let _k, (s0, s1), _cp, crashed = run_pipeline ~seed ~files ~file_size ~arm:None in
  if crashed then failwith "Crash_explore: baseline pipeline crashed";
  let t = s1 - s0 in
  if t <= 0 then failwith "Crash_explore: empty pipeline window";
  { bl_workload = Pipeline; bl_seed = seed; bl_files = files; bl_file_size = file_size;
    bl_boundaries = t; bl_pre; bl_post = bl_pre }

(* ---- per-boundary invariant checking ---- *)

type checker = {
  mutable problems : string list;  (* newest first *)
}

let add ck fmt = Printf.ksprintf (fun s -> ck.problems <- s :: ck.problems) fmt

let fsck_of ~full_fsck ~cp fs =
  if full_fsck then Fs.check_full fs
  else
    match cp with
    | Some cp -> Fs.check_incremental fs cp
    | None -> Fs.check_full fs (* crashed before setup finished: no token *)

(* Restart the crashed machine, run [repair], and record every invariant
   violation: all processes reclaimed, the parent directory holds only
   the data directory (journal and temporary directory cleaned up), the
   surviving state is exactly the pre- or the post-refresh image, and
   the file system passes fsck.  Returns [`Back] / [`Forward] for the
   outcome, or [`Broken] when the state matches neither image. *)
let recover_and_check ~k ~pre ~post ~repair ~fsck ck =
  if Kernel.live_procs k <> 0 then
    add ck "%d live processes after crash" (Kernel.live_procs k);
  Kernel.restart k;
  let repair_error = ref None in
  Kernel.spawn k ~name:"repair" (fun env ->
      match repair env ~parent with
      | Ok (_ : bool) -> ()
      | Error e -> repair_error := Some e);
  (try Kernel.run k
   with Engine.Fiber_crash (name, e) ->
     add ck "repair fiber crashed (%s: %s)" name (Printexc.to_string e));
  (match !repair_error with
  | Some e -> add ck "repair returned an error: %s" (Kernel.error_to_string e)
  | None -> ());
  if Kernel.live_procs k <> 0 then
    add ck "%d live processes after repair" (Kernel.live_procs k);
  let fs = Kernel.volume_fs k 0 in
  (match Fs.readdir fs "/" with
  | Ok names -> (
    match List.sort compare names with
    | [ "dir" ] -> ()
    | names -> add ck "parent not clean after repair: [%s]" (String.concat "; " names))
  | Error e -> add ck "parent unreadable after repair: %s" (Fs.error_to_string e));
  (match fsck fs with
  | [] -> ()
  | ps -> add ck "fsck: %s" (String.concat "; " ps));
  match observe fs with
  | None ->
    add ck "data directory missing after repair";
    `Broken
  | Some obs ->
    if obs = pre then `Back
    else if obs = post then `Forward
    else begin
      add ck "surviving state is neither the pre- nor the post-refresh image";
      `Broken
    end

(* ---- windows ---- *)

(* Fixed window granularity, independent of how many domains run them:
   the report split is a function of the boundary count alone, so the
   merged output cannot depend on -j. *)
let window_size = 16

let windows ~boundaries =
  let rec go lo acc =
    if lo > boundaries then List.rev acc
    else go (lo + window_size) ((lo, min boundaries (lo + window_size - 1)) :: acc)
  in
  go 1 []

let merge_reports = function
  | [] -> invalid_arg "Crash_explore.merge_reports: no reports"
  | r0 :: _ as reports ->
    List.iter
      (fun r ->
        if r.rp_workload_syscalls <> r0.rp_workload_syscalls then
          invalid_arg "Crash_explore.merge_reports: windows of different workloads")
      reports;
    {
      rp_workload_syscalls = r0.rp_workload_syscalls;
      rp_boundaries = List.fold_left (fun a r -> a + r.rp_boundaries) 0 reports;
      rp_rolled_back = List.fold_left (fun a r -> a + r.rp_rolled_back) 0 reports;
      rp_rolled_forward =
        List.fold_left (fun a r -> a + r.rp_rolled_forward) 0 reports;
      rp_violations = List.concat_map (fun r -> r.rp_violations) reports;
    }

let check_window bl ~lo ~hi =
  if lo < 1 || hi > bl.bl_boundaries || lo > hi then
    invalid_arg
      (Printf.sprintf "Crash_explore: window [%d, %d] outside boundaries [1, %d]" lo hi
         bl.bl_boundaries)

let explore_refresh_window ?(break_repair = false) ?(full_fsck = false) bl ~lo ~hi =
  if bl.bl_workload <> Refresh then
    invalid_arg "Crash_explore.explore_refresh_window: not a refresh baseline";
  check_window bl ~lo ~hi;
  let { bl_seed = seed; bl_files = files; bl_file_size = file_size; bl_pre = pre;
        bl_post = post; _ } = bl in
  let violations = ref [] in
  let violate ~boundary ?(flight = []) ck =
    violations :=
      {
        vi_boundary = boundary;
        vi_seed = seed;
        vi_problem = String.concat "; " (List.rev ck.problems);
        vi_replay =
          Printf.sprintf "GRAYBOX_CRASH=at:%d seed=%d workload=refresh" boundary seed;
        vi_flight = flight;
      }
      :: !violations
  in
  (* The committed image must itself meet the layout goal, or every
     roll-forward would be a silent regression.  Boundary 0 belongs to
     the first window so the merged report carries it exactly once. *)
  if lo = 1 then (
    let ck = { problems = [] } in
    if not (ino_order_ok post) then begin
      add ck "post-refresh image does not order i-numbers by size";
      violate ~boundary:0 ck
    end);
  let rolled_back = ref 0 in
  let rolled_forward = ref 0 in
  let repair = if break_repair then broken_repair else Fldc.repair in
  for n = lo to hi do
    let k, _window, cp, crashed = run_refresh ~seed ~files ~file_size ~arm:(Some n) in
    let ck = { problems = [] } in
    if not crashed then add ck "no crash fired at boundary %d" n;
    (match
       recover_and_check ~k ~pre ~post ~repair ~fsck:(fsck_of ~full_fsck ~cp) ck
     with
    | `Back -> incr rolled_back
    | `Forward -> incr rolled_forward
    | `Broken -> ());
    if ck.problems <> [] then violate ~boundary:n ~flight:(flight_tail k) ck
  done;
  {
    rp_workload_syscalls = bl.bl_boundaries;
    rp_boundaries = hi - lo + 1;
    rp_rolled_back = !rolled_back;
    rp_rolled_forward = !rolled_forward;
    rp_violations = List.rev !violations;
  }

(* Invariants of a restarted pipeline machine: fsck clean, the durable
   setup image untouched (the pipeline only reads the directory), and the
   same pipeline re-runs to completion — proving memory, swap, and
   descriptors were reclaimed.  [k] is either the restarted crashed
   kernel (replay strategy) or a fresh boot carrying the rolled-back
   image (snapshot strategy); the checks see only the volume state and
   the re-run's completion, identical between the two constructions. *)
let check_restarted_pipeline ~full_fsck ~cp ~pre ~seed ~files k ck =
  let fs = Kernel.volume_fs k 0 in
  (match fsck_of ~full_fsck ~cp fs with
  | [] -> ()
  | ps -> add ck "fsck: %s" (String.concat "; " ps));
  (match observe fs with
  | Some obs when obs = pre -> ()
  | Some _ -> add ck "durable setup image changed under a read-only pipeline"
  | None -> add ck "data directory missing after crash");
  let reran = ref false in
  Kernel.spawn k ~name:"pipeline-rerun" (fun env ->
      pipeline_window env ~files ~fccd:(Fccd.default_config ~seed ());
      reran := true);
  (try Kernel.run k
   with Engine.Fiber_crash (name, e) ->
     add ck "re-run crashed (%s: %s)" name (Printexc.to_string e));
  if not !reran then add ck "pipeline re-run did not complete after restart";
  if Kernel.live_procs k <> 0 then
    add ck "%d live processes after re-run" (Kernel.live_procs k)

(* Snapshot strategy: ONE uncrashed run of the workload per window,
   cloning the volume at each boundary in [lo, hi] through the crash
   plane's boundary observer — the observer fires at the exact point an
   armed crash would, so the clone {e is} the crash state.  Each clone
   is rolled back ({!Fs.crash}) and adopted by a fresh kernel, which is
   the restarted machine minus the O(prefix) armed replay.  Boundaries
   whose raw volume state equals the previous boundary's (the read-only
   pipeline dirties nothing, so in practice all of them) share its
   verdict: every check and the full re-run are deterministic functions
   of the adopted state, and {!Fs.equal} is exact, so the shared verdict
   is the one the slow path would recompute.  The replay strategy below
   remains the oracle this equivalence is differentially tested against
   (it alone exercises arming and the crashed machine itself). *)
let pipeline_window_snapshot ~full_fsck bl ~lo ~hi =
  let { bl_seed = seed; bl_files = files; bl_file_size = file_size; bl_pre = pre; _ } =
    bl
  in
  let width = hi - lo + 1 in
  let snaps = Array.make width None in  (* None = same image as previous *)
  let cp = ref None in
  let k = boot ~seed in
  let c = Option.get (Kernel.crash_plane k) in
  Kernel.spawn k ~name:"pipeline" (fun env ->
      setup env ~files ~file_size;
      cp := Some (Fs.checkpoint (Kernel.volume_fs k 0));
      let s0 = Crash.syscalls c in
      let fs = Kernel.volume_fs k 0 in
      let last = ref None in
      Crash.observe_boundaries c (fun abs ->
          let n = abs - s0 in
          if n >= lo && n <= hi then begin
            match !last with
            | Some prev when Fs.equal fs prev -> ()
            | Some _ | None ->
              let img = Fs.clone fs in
              snaps.(n - lo) <- Some img;
              last := Some img
          end);
      pipeline_window env ~files ~fccd:(Fccd.default_config ~seed ()));
  Kernel.run k;
  let violations = ref [] in
  let last_verdict = ref ([], []) in  (* (problems, flight tail) *)
  for i = 0 to width - 1 do
    let n = lo + i in
    let problems, flight =
      match snaps.(i) with
      | None -> !last_verdict
      | Some img ->
        Fs.crash img;
        let k2 = boot ~seed in
        Kernel.install_volume_image k2 0 img;
        let ck = { problems = [] } in
        check_restarted_pipeline ~full_fsck ~cp:!cp ~pre ~seed ~files k2 ck;
        let verdict = (List.rev ck.problems, flight_tail k2) in
        last_verdict := verdict;
        verdict
    in
    if problems <> [] then
      violations :=
        {
          vi_boundary = n;
          vi_seed = seed;
          vi_problem = String.concat "; " problems;
          vi_replay =
            Printf.sprintf "GRAYBOX_CRASH=at:%d seed=%d workload=pipeline" n seed;
          vi_flight = flight;
        }
        :: !violations
  done;
  List.rev !violations

let pipeline_window_replay ~full_fsck bl ~lo ~hi =
  let { bl_seed = seed; bl_files = files; bl_file_size = file_size; bl_pre = pre; _ } =
    bl
  in
  let violations = ref [] in
  for n = lo to hi do
    let k, _window, cp, crashed = run_pipeline ~seed ~files ~file_size ~arm:(Some n) in
    let ck = { problems = [] } in
    if not crashed then add ck "no crash fired at boundary %d" n;
    if Kernel.live_procs k <> 0 then
      add ck "%d live processes after crash" (Kernel.live_procs k);
    Kernel.restart k;
    check_restarted_pipeline ~full_fsck ~cp ~pre ~seed ~files k ck;
    if ck.problems <> [] then
      violations :=
        {
          vi_boundary = n;
          vi_seed = seed;
          vi_problem = String.concat "; " (List.rev ck.problems);
          vi_replay =
            Printf.sprintf "GRAYBOX_CRASH=at:%d seed=%d workload=pipeline" n seed;
          vi_flight = flight_tail k;
        }
        :: !violations
  done;
  List.rev !violations

let explore_pipeline_window ?(full_fsck = false) ?(strategy = `Snapshot) bl ~lo ~hi =
  if bl.bl_workload <> Pipeline then
    invalid_arg "Crash_explore.explore_pipeline_window: not a pipeline baseline";
  check_window bl ~lo ~hi;
  let violations =
    match strategy with
    | `Snapshot -> pipeline_window_snapshot ~full_fsck bl ~lo ~hi
    | `Replay -> pipeline_window_replay ~full_fsck bl ~lo ~hi
  in
  {
    rp_workload_syscalls = bl.bl_boundaries;
    rp_boundaries = hi - lo + 1;
    rp_rolled_back = 0;
    rp_rolled_forward = 0;
    rp_violations = violations;
  }

type strategy = [ `Snapshot | `Replay ]

(* ---- whole-range exploration ---- *)

let sharded ?pool ~boundaries run_window =
  let ws = windows ~boundaries in
  let reports =
    match pool with
    | Some pool -> Gray_util.Domain_pool.map pool (fun (lo, hi) -> run_window ~lo ~hi) ws
    | None -> List.map (fun (lo, hi) -> run_window ~lo ~hi) ws
  in
  merge_reports reports

let explore_refresh ?seed ?files ?file_size ?(break_repair = false)
    ?(full_fsck = false) ?pool () =
  let bl = refresh_baseline ?seed ?files ?file_size () in
  sharded ?pool ~boundaries:bl.bl_boundaries
    (explore_refresh_window ~break_repair ~full_fsck bl)

let explore_pipeline ?seed ?files ?file_size ?(full_fsck = false)
    ?(strategy = `Snapshot) ?pool () =
  let bl = pipeline_baseline ?seed ?files ?file_size () in
  sharded ?pool ~boundaries:bl.bl_boundaries
    (explore_pipeline_window ~full_fsck ~strategy bl)
