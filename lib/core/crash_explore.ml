open Simos

(* ALICE/CrashMonkey-style exhaustive crash-point exploration (cf.
   Pillai et al., OSDI '14; Mohan et al., OSDI '18) of the ICL recovery
   protocols.  A workload is run once against the crash plane to count
   its syscall boundaries T, then re-run T more times on identical
   kernels, crashing at boundary n = 1..T, restarting from the durable
   image, running the recovery path, and checking invariants.  Every
   boundary is visited — no sampling — and a violating boundary is
   reported as a replayable seed. *)

type violation = {
  vi_boundary : int;
  vi_seed : int;
  vi_problem : string;
  vi_replay : string;
}

type report = {
  rp_workload_syscalls : int;
  rp_boundaries : int;
  rp_rolled_back : int;
  rp_rolled_forward : int;
  rp_violations : violation list;
}

let small_platform =
  Platform.with_noise
    { Platform.linux_2_2 with Platform.memory_mib = 96; kernel_reserved_mib = 32 }
    ~sigma:0.0

let boot ~seed =
  let engine = Engine.create () in
  Kernel.boot ~engine ~platform:small_platform ~data_disks:1 ~volume_blocks:16384
    ~crash:Crash.durable ~seed ()

let must = function
  | Ok v -> v
  | Error e -> failwith ("Crash_explore: " ^ Kernel.error_to_string e)

let parent = "/d0"
let dir = parent ^ "/dir"

(* The explorer lives below [Gray_apps], so the workload is built from
   raw syscalls.  Sizes decrease with creation order so that the
   refreshed (size-ascending) layout is distinguishable from the
   original creation order.  Setup ends with [sync]: the pre-state must
   be durable, or the first crash boundary would roll the workload
   itself away. *)
let setup env ~files ~file_size =
  must (Kernel.mkdir env dir);
  for i = 0 to files - 1 do
    let path = Printf.sprintf "%s/f%02d" dir i in
    let fd = must (Kernel.create_file env path) in
    let len = file_size * (files - i) in
    ignore (must (Kernel.write env fd ~off:0 ~len));
    Kernel.close env fd
  done;
  Kernel.sync env

(* White-box observation of the durable directory state: sorted
   (name, ino, size, mtime).  Taken through [Fs] directly, not through
   syscalls, so observing does not perturb the crash schedule. *)
let observe fs =
  match Fs.readdir fs "/dir" with
  | Error _ -> None
  | Ok names ->
    Some
      (List.map
         (fun n ->
           match Fs.stat_path fs ("/dir/" ^ n) with
           | Ok st -> (n, st.Fs.st_ino, st.Fs.st_size, st.Fs.st_mtime)
           | Error _ -> (n, -1, -1, -1))
         (List.sort compare names))

(* The paper's layout goal: i-number order matches size order. *)
let ino_order_ok obs =
  let by_ino =
    List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) obs
    |> List.map (fun (n, _, _, _) -> n)
  in
  let by_size =
    List.sort (fun (na, _, sa, _) (nb, _, sb, _) -> compare (sa, na) (sb, nb)) obs
    |> List.map (fun (n, _, _, _) -> n)
  in
  by_ino = by_size

(* A deliberately wrong repair for mutation-testing the explorer: it
   ignores the commit record and always rolls back.  After a post-commit
   crash (original directory already deleted) it destroys the only copy
   of the data — the explorer must catch this. *)
let broken_repair env ~parent =
  let ( let* ) r f = Result.bind r f in
  let rm_dir d =
    let* entries = Kernel.readdir env d in
    let rec go = function
      | [] -> Kernel.unlink env d
      | n :: rest -> (
        match Kernel.unlink env (d ^ "/" ^ n) with
        | Ok () -> go rest
        | Error e -> Error e)
    in
    go entries
  in
  let* entries = Kernel.readdir env parent in
  let prefix = Fldc.journal_name ^ "." in
  let plen = String.length prefix in
  let journals =
    List.filter (fun n -> String.length n > plen && String.sub n 0 plen = prefix) entries
    |> List.sort compare
  in
  let rec fix = function
    | [] -> Ok (journals <> [])
    | jname :: rest ->
      let base = String.sub jname plen (String.length jname - plen) in
      let tmp = Fldc.tmp_dir_path ~parent ~base in
      let* () =
        match Kernel.stat env tmp with
        | Ok _ -> rm_dir tmp
        | Error _ -> Ok ()
      in
      let* () = Kernel.unlink env (parent ^ "/" ^ jname) in
      fix rest
  in
  fix journals

(* One run of the refresh workload: setup, sync, then — with the plane
   optionally armed [n] boundaries into the window — the refresh itself.
   Returns the kernel (for post-mortem inspection), the syscall window,
   and whether the machine crashed. *)
let run_refresh ~seed ~files ~file_size ~arm =
  let k = boot ~seed in
  let c = Option.get (Kernel.crash_plane k) in
  let window = ref (0, 0) in
  Kernel.spawn k ~name:"refresh" (fun env ->
      setup env ~files ~file_size;
      let s0 = Crash.syscalls c in
      (match arm with Some n -> Crash.arm_at c n | None -> ());
      (match Fldc.refresh_directory env ~dir () with
      | Ok () -> ()
      | Error e -> failwith ("Crash_explore: refresh: " ^ Kernel.error_to_string e));
      window := (s0, Crash.syscalls c));
  let crashed =
    try
      Kernel.run k;
      false
    with Engine.Fiber_crash (_, Crash.Crashed) -> true
  in
  (k, !window, crashed)

type checker = {
  mutable problems : string list;  (* newest first *)
}

let add ck fmt = Printf.ksprintf (fun s -> ck.problems <- s :: ck.problems) fmt

(* Restart the crashed machine, run [repair], and record every invariant
   violation: all processes reclaimed, the parent directory holds only
   the data directory (journal and temporary directory cleaned up), the
   surviving state is exactly the pre- or the post-refresh image, and
   the file system passes [Fs.check].  Returns [`Back] / [`Forward] for
   the outcome, or [`Broken] when the state matches neither image. *)
let recover_and_check ~k ~pre ~post ~repair ck =
  if Kernel.live_procs k <> 0 then
    add ck "%d live processes after crash" (Kernel.live_procs k);
  Kernel.restart k;
  let repair_error = ref None in
  Kernel.spawn k ~name:"repair" (fun env ->
      match repair env ~parent with
      | Ok (_ : bool) -> ()
      | Error e -> repair_error := Some e);
  (try Kernel.run k
   with Engine.Fiber_crash (name, e) ->
     add ck "repair fiber crashed (%s: %s)" name (Printexc.to_string e));
  (match !repair_error with
  | Some e -> add ck "repair returned an error: %s" (Kernel.error_to_string e)
  | None -> ());
  if Kernel.live_procs k <> 0 then
    add ck "%d live processes after repair" (Kernel.live_procs k);
  let fs = Kernel.volume_fs k 0 in
  (match Fs.readdir fs "/" with
  | Ok names -> (
    match List.sort compare names with
    | [ "dir" ] -> ()
    | names -> add ck "parent not clean after repair: [%s]" (String.concat "; " names))
  | Error e -> add ck "parent unreadable after repair: %s" (Fs.error_to_string e));
  (match Fs.check fs with
  | [] -> ()
  | ps -> add ck "fsck: %s" (String.concat "; " ps));
  match observe fs with
  | None ->
    add ck "data directory missing after repair";
    `Broken
  | Some obs ->
    if obs = pre then `Back
    else if obs = post then `Forward
    else begin
      add ck "surviving state is neither the pre- nor the post-refresh image";
      `Broken
    end

let explore_refresh ?(seed = 11) ?(files = 6) ?(file_size = 8192) ?(break_repair = false)
    () =
  (* Pre-image: the durable state at the start of the refresh window. *)
  let pre =
    let k = boot ~seed in
    Kernel.spawn k ~name:"setup" (fun env -> setup env ~files ~file_size);
    Kernel.run k;
    match observe (Kernel.volume_fs k 0) with
    | Some obs -> obs
    | None -> failwith "Crash_explore: setup produced no directory"
  in
  (* Baseline: count the window's syscall boundaries and capture the
     committed post-image. *)
  let k, (s0, s1), crashed = run_refresh ~seed ~files ~file_size ~arm:None in
  if crashed then failwith "Crash_explore: baseline run crashed";
  let post =
    match observe (Kernel.volume_fs k 0) with
    | Some obs -> obs
    | None -> failwith "Crash_explore: baseline refresh produced no directory"
  in
  let t = s1 - s0 in
  if t <= 0 then failwith "Crash_explore: empty refresh window";
  let violations = ref [] in
  let violate ~boundary ck =
    violations :=
      {
        vi_boundary = boundary;
        vi_seed = seed;
        vi_problem = String.concat "; " (List.rev ck.problems);
        vi_replay = Printf.sprintf "GRAYBOX_CRASH=at:%d seed=%d workload=refresh" boundary seed;
      }
      :: !violations
  in
  (* The committed image must itself meet the layout goal, or every
     roll-forward would be a silent regression. *)
  (let ck = { problems = [] } in
   if not (ino_order_ok post) then begin
     add ck "post-refresh image does not order i-numbers by size";
     violate ~boundary:0 ck
   end);
  let rolled_back = ref 0 in
  let rolled_forward = ref 0 in
  let repair = if break_repair then broken_repair else Fldc.repair in
  for n = 1 to t do
    let k, _window, crashed = run_refresh ~seed ~files ~file_size ~arm:(Some n) in
    let ck = { problems = [] } in
    if not crashed then add ck "no crash fired at boundary %d" n;
    (match recover_and_check ~k ~pre ~post ~repair ck with
    | `Back -> incr rolled_back
    | `Forward -> incr rolled_forward
    | `Broken -> ());
    if ck.problems <> [] then violate ~boundary:n ck
  done;
  {
    rp_workload_syscalls = t;
    rp_boundaries = t;
    rp_rolled_back = !rolled_back;
    rp_rolled_forward = !rolled_forward;
    rp_violations = List.rev !violations;
  }

(* {1 MAC / gbp pipeline} *)

let mib = 1024 * 1024

(* A gbp-style pipeline: order the directory's files (cache-then-inode
   composition), read them in that order, then run a MAC allocate /
   touch / free cycle.  No recovery protocol of its own — after a crash
   the invariants are that restart reclaims everything ([Fs.check]
   clean, no processes, no leaked memory keeping a re-run from
   completing) and the durable setup image is intact. *)
let pipeline_window env ~files ~fccd =
  let paths = List.init files (fun i -> Printf.sprintf "%s/f%02d" dir i) in
  let order, (_ : Gbp.fallback_reason option) =
    Gbp.best_order_or_fallback env fccd Gbp.Compose ~paths
  in
  List.iter
    (fun path ->
      let fd = must (Kernel.open_file env path) in
      let size = Kernel.file_size env fd in
      ignore (must (Kernel.read env fd ~off:0 ~len:size));
      Kernel.close env fd)
    order;
  let cfg = Mac.default_config () in
  let cfg = { cfg with Mac.initial_increment = 2 * mib; max_increment = 4 * mib } in
  match Mac.gb_alloc env cfg ~min:mib ~max:(8 * mib) ~multiple:mib with
  | None -> ()
  | Some a ->
    Mac.touch_all env a;
    Mac.gb_free env a

let run_pipeline ~seed ~files ~file_size ~fccd ~arm =
  let k = boot ~seed in
  let c = Option.get (Kernel.crash_plane k) in
  let window = ref (0, 0) in
  Kernel.spawn k ~name:"pipeline" (fun env ->
      setup env ~files ~file_size;
      let s0 = Crash.syscalls c in
      (match arm with Some n -> Crash.arm_at c n | None -> ());
      pipeline_window env ~files ~fccd;
      window := (s0, Crash.syscalls c));
  let crashed =
    try
      Kernel.run k;
      false
    with Engine.Fiber_crash (_, Crash.Crashed) -> true
  in
  (k, !window, crashed)

let explore_pipeline ?(seed = 23) ?(files = 4) ?(file_size = 8192) () =
  let fccd = Fccd.default_config ~seed () in
  let pre =
    let k = boot ~seed in
    Kernel.spawn k ~name:"setup" (fun env -> setup env ~files ~file_size);
    Kernel.run k;
    match observe (Kernel.volume_fs k 0) with
    | Some obs -> obs
    | None -> failwith "Crash_explore: setup produced no directory"
  in
  let _k, (s0, s1), crashed = run_pipeline ~seed ~files ~file_size ~fccd ~arm:None in
  if crashed then failwith "Crash_explore: baseline pipeline crashed";
  let t = s1 - s0 in
  if t <= 0 then failwith "Crash_explore: empty pipeline window";
  let violations = ref [] in
  for n = 1 to t do
    let k, _window, crashed = run_pipeline ~seed ~files ~file_size ~fccd ~arm:(Some n) in
    let ck = { problems = [] } in
    if not crashed then add ck "no crash fired at boundary %d" n;
    if Kernel.live_procs k <> 0 then
      add ck "%d live processes after crash" (Kernel.live_procs k);
    Kernel.restart k;
    let fs = Kernel.volume_fs k 0 in
    (match Fs.check fs with
    | [] -> ()
    | ps -> add ck "fsck: %s" (String.concat "; " ps));
    (* The pipeline only reads the directory, so a crash anywhere in the
       window must leave the durable setup image untouched. *)
    (match observe fs with
    | Some obs when obs = pre -> ()
    | Some _ -> add ck "durable setup image changed under a read-only pipeline"
    | None -> add ck "data directory missing after crash");
    (* The restarted machine must be fully usable: the same pipeline runs
       to completion, proving memory, swap, and descriptors were
       reclaimed. *)
    let reran = ref false in
    Kernel.spawn k ~name:"pipeline-rerun" (fun env ->
        pipeline_window env ~files ~fccd;
        reran := true);
    (try Kernel.run k
     with Engine.Fiber_crash (name, e) ->
       add ck "re-run crashed (%s: %s)" name (Printexc.to_string e));
    if not !reran then add ck "pipeline re-run did not complete after restart";
    if Kernel.live_procs k <> 0 then
      add ck "%d live processes after re-run" (Kernel.live_procs k);
    if ck.problems <> [] then
      violations :=
        {
          vi_boundary = n;
          vi_seed = seed;
          vi_problem = String.concat "; " (List.rev ck.problems);
          vi_replay = Printf.sprintf "GRAYBOX_CRASH=at:%d seed=%d workload=pipeline" n seed;
        }
        :: !violations
  done;
  {
    rp_workload_syscalls = t;
    rp_boundaries = t;
    rp_rolled_back = 0;
    rp_rolled_forward = 0;
    rp_violations = List.rev !violations;
  }
