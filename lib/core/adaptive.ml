open Gray_util

type config = {
  alpha : float;
  stale_threshold : float;
  warmup : int;
  recal_budget : int;
  prior_weight : float;
}

let default_config =
  {
    alpha = 0.6;
    stale_threshold = 0.6;
    warmup = 1;
    recal_budget = 8;
    prior_weight = 0.3;
  }

let validate_config c =
  let bad field fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg (Printf.sprintf "Adaptive: %s %s" field msg))
      fmt
  in
  if not (c.alpha > 0.0 && c.alpha <= 1.0) then
    bad "alpha" "must be in (0, 1] (got %g)" c.alpha;
  if not (c.stale_threshold >= 0.0 && c.stale_threshold <= 1.0) then
    bad "stale_threshold" "must be in [0, 1] (got %g)" c.stale_threshold;
  if c.warmup < 0 then bad "warmup" "must be >= 0 (got %d)" c.warmup;
  if c.recal_budget < 0 then
    bad "recal_budget" "must be >= 0 (got %d)" c.recal_budget;
  if not (c.prior_weight >= 0.0 && c.prior_weight <= 1.0) then
    bad "prior_weight" "must be in [0, 1] (got %g)" c.prior_weight

type status = Fresh | Stale | Exhausted

let status_to_string = function
  | Fresh -> "fresh"
  | Stale -> "stale"
  | Exhausted -> "exhausted"

type watchdog = {
  w_config : config;
  w_name : string;
  mutable w_ema : Correlate.ema;
  mutable w_samples : int;
  mutable w_status : status;
  mutable w_recals : int;
  mutable w_stale_since : int option;
  mutable w_stale_ns : int;
}

let watchdog ?(config = default_config) name =
  validate_config config;
  {
    w_config = config;
    w_name = name;
    w_ema = Correlate.ema_create ~alpha:config.alpha;
    w_samples = 0;
    w_status = Fresh;
    w_recals = 0;
    w_stale_since = None;
    w_stale_ns = 0;
  }

let status w = w.w_status
let health w = Option.value (Correlate.ema_value w.w_ema) ~default:1.0
let samples w = w.w_samples
let recalibrations w = w.w_recals
let stale_ns w = w.w_stale_ns

(* Close an open stale interval into the running total; the metric counts
   virtual nanoseconds the ICL ran on a calibration it knew was bad. *)
let mark_fresh w ~now_ns =
  (match w.w_stale_since with
  | Some t0 ->
    let d = max 0 (now_ns - t0) in
    w.w_stale_ns <- w.w_stale_ns + d;
    if d > 0 then Telemetry.add ~n:d "adaptive.stale_ns"
  | None -> ());
  w.w_stale_since <- None;
  w.w_status <- Fresh

let observe w ~now_ns h =
  let v = Correlate.ema_add w.w_ema h in
  w.w_samples <- w.w_samples + 1;
  match w.w_status with
  | Exhausted -> ()
  | Fresh ->
    if w.w_samples > w.w_config.warmup && v < w.w_config.stale_threshold
    then begin
      w.w_status <- Stale;
      w.w_stale_since <- Some now_ns;
      Telemetry.event "core.adaptive.stale" ~attrs:(fun () ->
          [ ("icl", Telemetry.String w.w_name); ("health", Telemetry.Float v) ])
    end
  | Stale -> if v >= w.w_config.stale_threshold then mark_fresh w ~now_ns

let begin_recalibration w =
  match w.w_status with
  | Exhausted -> false
  | Fresh | Stale ->
    if w.w_recals >= w.w_config.recal_budget then begin
      w.w_status <- Exhausted;
      Telemetry.event "core.adaptive.exhausted" ~attrs:(fun () ->
          [
            ("icl", Telemetry.String w.w_name);
            ("budget", Telemetry.Int w.w_config.recal_budget);
          ]);
      false
    end
    else begin
      w.w_recals <- w.w_recals + 1;
      Telemetry.add "adaptive.recalibrations";
      true
    end

let end_recalibration w ~now_ns ~health =
  w.w_ema <- Correlate.ema_create ~alpha:w.w_config.alpha;
  ignore (Correlate.ema_add w.w_ema health);
  w.w_samples <- 1;
  mark_fresh w ~now_ns

module Make (Os : Os_intf.S) = struct
  module M = Mac.Make (Os)
  module F = Fccd.Make (Os)

  (* Flight-recorder phase marks ([a] = watchdog id: 0 = mac, 1 = fccd).
     Recorded in the wrappers rather than the watchdog because only they
     hold a backend env; a return to [Fresh] — whether by recalibration or
     by the health recovering on its own — reads as [Recalibrated]. *)
  let phase_mark env w ~icl ~before =
    if w.w_status <> before then
      match Os.flight env with
      | None -> ()
      | Some fl ->
        let code =
          match w.w_status with
          | Stale -> Flight.Stale
          | Fresh -> Flight.Recalibrated
          | Exhausted -> Flight.Exhausted
        in
        Flight.record fl ~ts:(Os.gettime env) ~code ~pid:(Os.pid env)
          ~a:icl ~b:0

  (* ---- MAC wrapper ---- *)

  type mac = {
    m_wd : watchdog;
    m_config : Mac.config;
    mutable m_threshold_ns : int;
    m_check_pages : int;
  }

  let mac ?(config = default_config) env ~mac_config =
    let threshold =
      match mac_config.Mac.slow_threshold_ns with
      | Some t -> t
      | None -> M.calibrate_threshold mac_config env
    in
    {
      m_wd = watchdog ~config "mac";
      m_config = mac_config;
      m_threshold_ns = threshold;
      m_check_pages = 16;
    }

  let mac_threshold_ns m = m.m_threshold_ns
  let mac_watchdog m = m.m_wd

  (* Health of the threshold itself: re-touch a small certainly-resident
     region and ask what fraction the current threshold calls fast.  On the
     calibrated machine that is ~1; after a timer coarsening every sample
     quantises to at least the new resolution and a stale threshold calls
     them all paging.  A backend that cannot even reserve the check region
     scores 0 — maximum ill health, which drives the ordinary
     Stale → recalibrate → Exhausted degradation instead of a crash. *)
  let mac_spot_health env m =
    match Os.valloc env ~pages:m.m_check_pages with
    | Error _ -> 0.0
    | Ok r ->
      ignore (Os.touch_pages env r ~first:0 ~count:m.m_check_pages);
      let again = Os.touch_pages env r ~first:0 ~count:m.m_check_pages in
      Os.vfree env r;
      let fast =
        Array.fold_left
          (fun acc t -> if t <= m.m_threshold_ns then acc + 1 else acc)
          0 again
      in
      float_of_int fast /. float_of_int m.m_check_pages

  let mac_recalibrate env m =
    Telemetry.span "core.adaptive.recalibrate"
      ~attrs:(fun () -> [ ("icl", Telemetry.String "mac") ])
      (fun () ->
        let fresh = M.calibrate_threshold m.m_config env in
        let w = m.m_wd.w_config.prior_weight in
        m.m_threshold_ns <-
          max 1_000
            (int_of_float
               ((w *. float_of_int m.m_threshold_ns)
               +. ((1.0 -. w) *. float_of_int fresh))))

  let rec mac_alloc env m ~min ~max ~multiple =
    let before = m.m_wd.w_status in
    let h = mac_spot_health env m in
    observe m.m_wd ~now_ns:(Os.gettime env) h;
    phase_mark env m.m_wd ~icl:0 ~before;
    match m.m_wd.w_status with
    | Exhausted -> Error `Stale_budget_exhausted
    | Stale ->
      if begin_recalibration m.m_wd then begin
        mac_recalibrate env m;
        let h' = mac_spot_health env m in
        end_recalibration m.m_wd ~now_ns:(Os.gettime env) ~health:h';
        phase_mark env m.m_wd ~icl:0 ~before:Stale;
        mac_alloc env m ~min ~max ~multiple
      end
      else begin
        phase_mark env m.m_wd ~icl:0 ~before:Stale;
        Error `Stale_budget_exhausted
      end
    | Fresh ->
      let cfg = { m.m_config with Mac.slow_threshold_ns = Some m.m_threshold_ns } in
      Ok (M.gb_alloc env cfg ~min ~max ~multiple)

  (* ---- FCCD wrapper ---- *)

  type fccd = {
    f_wd : watchdog;
    f_config : Fccd.config;
    f_paths : string array;
    f_est : float array;  (* probe-ns estimate, indexed like f_paths *)
    mutable f_round : int;
    f_spot : int;
  }

  let rank_ns ranked path =
    let fr = List.find (fun fr -> fr.Fccd.fr_path = path) ranked in
    float_of_int fr.Fccd.fr_probe_ns

  let fccd ?(config = default_config) env ~fccd_config ~paths =
    match F.order_files env fccd_config ~paths with
    | Error e -> Error e
    | Ok ranked ->
      let arr = Array.of_list paths in
      Ok
        {
          f_wd = watchdog ~config "fccd";
          f_config = fccd_config;
          f_paths = arr;
          f_est = Array.map (rank_ns ranked) arr;
          f_round = 0;
          f_spot = min 3 (Array.length arr);
        }

  let fccd_watchdog f = f.f_wd

  let fccd_estimates f =
    Array.to_list (Array.mapi (fun i p -> (p, f.f_est.(i))) f.f_paths)

  (* Predicted fastest-first; ties broken by path so the order is total. *)
  let fccd_current_order f =
    let idx = Array.init (Array.length f.f_paths) Fun.id in
    Array.sort
      (fun a b ->
        match Float.compare f.f_est.(a) f.f_est.(b) with
        | 0 -> String.compare f.f_paths.(a) f.f_paths.(b)
        | c -> c)
      idx;
    Array.to_list (Array.map (fun i -> f.f_paths.(i)) idx)

  let blend w prior fresh = (w *. prior) +. ((1.0 -. w) *. fresh)

  let fccd_full_reprobe env f =
    Telemetry.span "core.adaptive.recalibrate"
      ~attrs:(fun () -> [ ("icl", Telemetry.String "fccd") ])
      (fun () ->
        match F.order_files env f.f_config ~paths:(Array.to_list f.f_paths) with
        | Error e -> Error (`Kernel e)
        | Ok ranked ->
          let w = f.f_wd.w_config.prior_weight in
          Array.iteri
            (fun i p -> f.f_est.(i) <- blend w f.f_est.(i) (rank_ns ranked p))
            f.f_paths;
          Ok ())

  let fccd_order env f =
    let n = Array.length f.f_paths in
    if n = 0 then Ok []
    else begin
      let k = max 1 (min f.f_spot n) in
      let idxs = Array.init k (fun i -> ((f.f_round * k) + i) mod n) in
      f.f_round <- f.f_round + 1;
      let spot_paths = Array.to_list (Array.map (fun i -> f.f_paths.(i)) idxs) in
      match F.order_files env f.f_config ~paths:spot_paths with
      | Error e -> Error (`Kernel e)
      | Ok ranked ->
        let fresh = Array.map (fun i -> rank_ns ranked f.f_paths.(i)) idxs in
        (* health = pairwise rank concordance of stored estimates vs the
           fresh spot probes; a reshuffled cache flips the signs *)
        let pairs = ref 0 and agree = ref 0 in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            incr pairs;
            let d_est = f.f_est.(idxs.(a)) -. f.f_est.(idxs.(b)) in
            let d_new = fresh.(a) -. fresh.(b) in
            if d_est *. d_new >= 0.0 then incr agree
          done
        done;
        let h =
          if !pairs = 0 then 1.0 else float_of_int !agree /. float_of_int !pairs
        in
        let before = f.f_wd.w_status in
        observe f.f_wd ~now_ns:(Os.gettime env) h;
        phase_mark env f.f_wd ~icl:1 ~before;
        (* incremental adaptation: spot results always flow into the
           estimates, prior kept at prior_weight *)
        let w = f.f_wd.w_config.prior_weight in
        Array.iteri
          (fun a i -> f.f_est.(i) <- blend w f.f_est.(i) fresh.(a))
          idxs;
        match f.f_wd.w_status with
        | Exhausted -> Error `Stale_budget_exhausted
        | Stale ->
          if begin_recalibration f.f_wd then begin
            match fccd_full_reprobe env f with
            | Error e -> Error e
            | Ok () ->
              end_recalibration f.f_wd ~now_ns:(Os.gettime env) ~health:1.0;
              phase_mark env f.f_wd ~icl:1 ~before:Stale;
              Ok (fccd_current_order f)
          end
          else begin
            phase_mark env f.f_wd ~icl:1 ~before:Stale;
            Error `Stale_budget_exhausted
          end
        | Fresh -> Ok (fccd_current_order f)
    end
end

include Make (Os_sim)
