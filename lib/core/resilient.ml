open Gray_util
open Simos

type policy = {
  max_attempts : int;
  base_backoff_ns : int;
  max_backoff_ns : int;
  budget : int;
  rng : Rng.t;
  mutable spent : int;
}

let policy ?(max_attempts = 6) ?(base_backoff_ns = 50_000) ?(max_backoff_ns = 20_000_000)
    ?(budget = 10_000) ~seed () =
  if max_attempts < 1 then invalid_arg "Resilient.policy: max_attempts < 1";
  { max_attempts; base_backoff_ns; max_backoff_ns; budget; rng = Rng.create ~seed; spent = 0 }

let default_seed = 0x5E511E47

let default () = policy ~seed:default_seed ()

let classify = function
  | Kernel.Retryable | Kernel.Timeout -> `Transient
  | Kernel.Fs_error _ | Kernel.Bad_fd | Kernel.Bad_path
  | Kernel.Unsupported _ | Kernel.Sys_error _ ->
    `Permanent

let retries_spent p = p.spent

(* Only the backoff sleep touches the OS, so only [retry] and its
   idempotent variant live in the functor — one [policy] type (and one
   [classify]) is shared across backends. *)
module Make (Os : Os_intf.S) = struct
  let retry ?policy:p f =
    let p = match p with Some p -> p | None -> default () in
    let rec attempt n prev_sleep =
      match f () with
      | Ok v -> Ok v
      | Error e -> (
        match classify e with
        | `Permanent -> Error e
        | `Transient ->
          if n >= p.max_attempts || p.spent >= p.budget then Error e
          else begin
            p.spent <- p.spent + 1;
            (* decorrelated jitter: sleep in [base, 3 * previous], capped *)
            let hi = max p.base_backoff_ns (3 * prev_sleep) in
            let sleep =
              min p.max_backoff_ns
                (p.base_backoff_ns + Rng.int p.rng (max 1 (hi - p.base_backoff_ns + 1)))
            in
            (match Telemetry.active () with
            | None -> ()
            | Some s ->
              Telemetry.add_in s "core.resilient.retries";
              Telemetry.point s "core.resilient.retry"
                ~attrs:(fun () ->
                  [ ("attempt", Telemetry.Int n); ("sleep_ns", Telemetry.Int sleep) ]));
            Os.sleep_ns sleep;
            attempt (n + 1) sleep
          end)
    in
    attempt 1 p.base_backoff_ns

  (* Retry for non-idempotent calls under crash–restart.  A create that
     completed durably just before a crash fails its re-issue with [Eexist];
     [completed] recognises such an error as evidence the earlier attempt
     took effect and supplies the result.  Crucially it is consulted only on
     a RE-issue: the same error on the very first attempt is a genuine
     conflict and surfaces unchanged. *)
  let retry_idempotent ?policy:p ~completed f =
    let p = match p with Some p -> p | None -> default () in
    let reissued = ref false in
    let wrapped () =
      let r = f () in
      (match r with
      | Error e when classify e = `Transient -> reissued := true
      | _ -> ());
      r
    in
    match retry ~policy:p wrapped with
    | Ok v -> Ok v
    | Error e when !reissued -> (
      match completed e with Some v -> Ok v | None -> Error e)
    | Error e -> Error e
end

include Make (Os_sim)

let reject samples =
  if Array.length samples = 0 then samples
  else begin
    let kept = Stats.discard_outliers samples ~k:2.0 in
    if Array.length kept = 0 then samples else kept
  end

let robust_mean samples =
  if Array.length samples = 0 then Float.nan else Stats.mean_of (reject samples)

let robust_median samples =
  if Array.length samples = 0 then Float.nan else Stats.median_of (reject samples)
