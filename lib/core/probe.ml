open Simos

let timed env f =
  let t0 = Kernel.gettime env in
  let r = f () in
  let t1 = Kernel.gettime env in
  (r, max 0 (t1 - t0))

let timed_read env fd ~off ~len =
  timed env (fun () ->
      match Kernel.read env fd ~off ~len with Ok n -> n | Error _ -> 0)

let file_byte env fd ~off =
  let _, ns = timed_read env fd ~off ~len:1 in
  ns

let file_byte_r env ?policy fd ~off =
  Resilient.retry ?policy (fun () ->
      let r, ns = timed env (fun () -> Kernel.read env fd ~off ~len:1) in
      match r with
      | Ok _ -> Ok ns
      | Error e -> Error e)
