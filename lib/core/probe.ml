module Make (Os : Os_intf.S) = struct
  module R = Resilient.Make (Os)

  let timed env f =
    let t0 = Os.gettime env in
    let r = f () in
    let t1 = Os.gettime env in
    (r, max 0 (t1 - t0))

  let timed_read env fd ~off ~len =
    timed env (fun () ->
        match Os.read env fd ~off ~len with Ok n -> n | Error _ -> 0)

  let file_byte env fd ~off =
    let _, ns = timed_read env fd ~off ~len:1 in
    ns

  let file_byte_r env ?policy fd ~off =
    R.retry ?policy (fun () ->
        let r, ns = timed env (fun () -> Os.read env fd ~off ~len:1) in
        match r with
        | Ok _ -> Ok ns
        | Error e -> Error e)
end

include Make (Os_sim)
