(** Memory-based Admission Controller (Section 4.3).

    [gb_alloc] determines how much memory is {e currently available} by
    probing progressively larger chunks with two write loops per step,
    timing every page access:

    - the {e first loop} moves the chunk to a known state (pages may be
      demand-zeroed, re-fetched, or force evictions — all "slow" for
      benign reasons), but several consecutive {e very} slow accesses mean
      the page daemon has started paging, so the step bails out early;
    - the {e second loop} re-touches every page of the candidate
      allocation: if all accesses are fast, the chunk fits in the
      available space (no page was selected for replacement).

    The increment grows conservatively — start small, double while steps
    keep fitting (up to a cap), reset completely on trouble — "analogous
    to but more conservative than the TCP congestion-control scheme".

    Thresholds come from the microbenchmark repository when available,
    otherwise from self-calibration at first use. *)

open Gray_util

type detector =
  | Timing  (** the paper's choice: infer paging from access times alone *)
  | Vmstat
      (** consult the OS's paging counters between probe chunks — simpler
          and exact where the interface exists (the paper notes vmstat but
          deliberately avoids relying on it).  A backend whose [vmstat]
          is [Unsupported] degrades to [Timing] automatically. *)

type config = {
  initial_increment : int;  (** bytes; first step size (default 8 MB) *)
  max_increment : int;
      (** bytes; growth cap (default 16 MB).  Keep this small relative to
          memory: when several gb_allocs race, each commits up to one
          whole increment past the true limit before detecting it, so the
          group overshoot is [racers x max_increment]. *)
  consecutive_slow : int;
      (** how many successive slow pages signal paging (default 3) *)
  slow_threshold_ns : int option;
      (** page-access time considered "slow"; [None] = self-calibrate *)
  headroom : float;
      (** grant this fraction less than what fit ("we must make MAC
          slightly less aggressive", Section 4.3.1) so the caller's own
          file I/O has cache room; default 0.15 *)
  detection : detector;  (** default [Timing] *)
  robust : bool;
      (** outlier-rejecting self-calibration (default [false]): a fault-
          injected latency spike inside the calibration pass must not
          inflate the "benign" baseline tenfold *)
  min_confidence : float;
      (** below this classification confidence the grant is shrunk to the
          caller's minimum (default 0 = never shrink) *)
}

val default_config : ?repo:Param_repo.t -> unit -> config
(** Uses [vm.page_in_ns] and [mem.alloc_zero_page_ns] from the repo to set
    the slow threshold when present. *)

(** The admission controller over any {!Os_intf.S} backend.  Failure
    stays typed and graceful throughout: a refused [valloc] is reported
    as [None] (nothing fits), an [Unsupported] vmstat falls back to the
    timing detector, and a calibration pass that cannot reserve its
    probe region settles for the conservative threshold floor. *)
module Make (Os : Os_intf.S) : sig
  type allocation
  (** A successful gb_alloc: a committed region plus its size. *)

  val bytes : allocation -> int
  val pages : allocation -> int

  val touch_all : Os.env -> allocation -> unit
  (** Write over the whole allocation (the application "using" its memory);
      exposed so experiments can drive access patterns. *)

  val region : allocation -> Os.region
  (** The backing region, for direct page access by the application. *)

  val confidence : allocation -> float
  (** How cleanly the timing channel classified pages during this
      [gb_alloc], in [0, 1]: one minus the fraction of page-touch samples
      that looked slow {e without} belonging to a consecutive-slow paging
      run — isolated slowness is spike-like noise, not paging, and the
      more of it the murkier the channel.  [1.0] under the exact [Vmstat]
      detector. *)

  val gb_alloc :
    Os.env ->
    config ->
    min:int ->
    max:int ->
    multiple:int ->
    allocation option
  (** [gb_alloc env cfg ~min ~max ~multiple] returns an allocation of
      [bytes] with [min <= bytes <= max] and [bytes mod multiple = 0], or
      [None] when [min] bytes do not currently fit in available memory
      (the paper's NULL return) — including when the backend refuses the
      address-space reservation itself.  An application that cannot adapt
      passes [min = max].  Raises [Invalid_argument] on inconsistent
      bounds. *)

  val gb_free : Os.env -> allocation -> unit

  val calibrate_threshold : config -> Os.env -> int
  (** Run the self-calibration pass (Section 4.3.2) by itself and return the
      derived slow threshold in ns: 10x the worst benign (resident or
      zero-fill) page-touch cost observed, floored at 1 us.  [gb_alloc] does
      this implicitly when [slow_threshold_ns] is [None]; the adaptive layer
      calls it explicitly to re-calibrate after environment drift and blend
      the fresh value with its prior. *)
end

(** {1 The simulated-backend instance (the historical flat API)} *)

type allocation = Make(Os_sim).allocation

val bytes : allocation -> int
val pages : allocation -> int
val touch_all : Simos.Kernel.env -> allocation -> unit
val region : allocation -> Simos.Kernel.region
val confidence : allocation -> float

val gb_alloc :
  Simos.Kernel.env ->
  config ->
  min:int ->
  max:int ->
  multiple:int ->
  allocation option

val gb_free : Simos.Kernel.env -> allocation -> unit
val calibrate_threshold : config -> Simos.Kernel.env -> int

(** {1 Introspection of the last call (for experiments)} *)

type stats = {
  s_probe_ns : int;  (** virtual time spent inside gb_alloc probing *)
  s_steps : int;  (** increments attempted *)
  s_backoffs : int;  (** steps that detected paging *)
  s_chunks : int;  (** probe chunks classified *)
  s_suspect_chunks : int;  (** chunks the detector called slow *)
  s_confidence : float;  (** same value as {!Make.confidence} of the result *)
}

val last_stats : unit -> stats
(** Stats of the most recent [gb_alloc] on this domain, on whichever
    backend ran it. *)
