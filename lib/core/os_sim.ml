(* The simulated-kernel backend: a transparent adapter.

   Every function is the matching [Simos.Kernel] call, eta-expanded at
   most — no extra syscalls, no RNG draws, no clock advances.  This is
   load-bearing: the functorized ICL stack instantiated with this module
   must stay byte-identical to the pre-functorization direct calls, and
   CI diffs bench output to prove it.  Keep it boring. *)

open Simos

let name = "sim"

type env = Kernel.env
type fd = Kernel.fd
type region = Kernel.region

let gettime = Kernel.gettime

(* The simulated clock is exact for the simulated cost model: probe
   timings are the model's own numbers, so nothing caps their belief. *)
let timing_confidence_cap (_ : env) = 1.0
let sleep_ns ns = Engine.delay ns

let open_file = Kernel.open_file
let create_file = Kernel.create_file
let close = Kernel.close
let read = Kernel.read
let write = Kernel.write
let file_size = Kernel.file_size
let mkdir = Kernel.mkdir
let unlink = Kernel.unlink
let rename = Kernel.rename
let readdir = Kernel.readdir
let stat = Kernel.stat
let utimes = Kernel.utimes
let fsync = Kernel.fsync
let sync = Kernel.sync
let write_blob = Kernel.write_blob
let read_blob = Kernel.read_blob
let durability_on env = Kernel.durability_on (Kernel.kernel_of_env env)

let valloc env ~pages = Ok (Kernel.valloc env ~pages)
let vfree = Kernel.vfree
let vrelease = Kernel.vrelease
let touch_pages = Kernel.touch_pages
let vmstat env = Ok (Kernel.vmstat env)

let compute = Kernel.compute
let compute_bytes = Kernel.compute_bytes

let pid = Kernel.pid
let flight env = Kernel.flight (Kernel.kernel_of_env env)
