(* Which backend a run uses: the [gbp --os] flag and the GRAYBOX_OS
   variable, validated like every other GRAYBOX_* control. *)

type t = Sim | Host

let to_string = function Sim -> "sim" | Host -> "host"
let all = [ Sim; Host ]

let of_string = function
  | "sim" -> Some Sim
  | "host" -> Some Host
  | _ -> None

let of_env () =
  Gray_util.Env.parse ~var:"GRAYBOX_OS" ~expected:"sim or host"
    ~on_invalid:`Exit ~default:Sim (fun token ->
      match of_string token with
      | Some v -> Gray_util.Env.Value v
      | None -> Invalid)
