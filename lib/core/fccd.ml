open Gray_util

type config = {
  access_unit : int;
  prediction_unit : int;
  align : int;
  fake_high_ns : int;
  rng : Rng.t;
  retry : Resilient.policy option;
  resample : int;
  min_confidence : float;
}

let mib = 1024 * 1024
let page = 4096

let default_config ?repo ~seed () =
  let access_unit =
    match repo with
    | Some r ->
      int_of_float (Param_repo.get_or r Param_repo.key_access_unit_bytes
           ~default:(float_of_int (20 * mib)))
    | None -> 20 * mib
  in
  {
    access_unit;
    prediction_unit = 5 * mib;
    align = 1;
    fake_high_ns = 1_000_000_000;
    rng = Rng.create ~seed;
    retry = Some (Resilient.policy ~seed:(seed lxor 0x5e51) ());
    resample = 0;
    min_confidence = 0.0;
  }

let with_align config align =
  if align <= 0 then invalid_arg "Fccd.with_align: align must be positive";
  { config with align }

type extent = { ext_off : int; ext_len : int }

type plan = {
  plan_path : string;
  plan_size : int;
  plan_extents : (extent * int) list;
  plan_probes : int;
  plan_confidence : float;
}

let extents plan = List.map fst plan.plan_extents

let extents_or_sequential config plan =
  if plan.plan_confidence >= config.min_confidence then extents plan
  else
    (* graceful degradation: an ordering we do not believe in is worse
       than no ordering — fall back to plain sequential offsets *)
    List.sort
      (fun a b -> compare a.ext_off b.ext_off)
      (List.map fst plan.plan_extents)

(* Split [0, size) into access units whose boundaries respect alignment. *)
let partition config ~size =
  let unit_bytes = max config.align (config.access_unit / config.align * config.align) in
  let rec go off acc =
    if off >= size then List.rev acc
    else begin
      let len = min unit_bytes (size - off) in
      go (off + len) ({ ext_off = off; ext_len = len } :: acc)
    end
  in
  go 0 []

(* Relative spread > 1: the per-unit samples disagree wildly, which under
   fault injection usually means a latency spike landed in the middle of
   the pass. *)
let unstable samples =
  let m = Stats.mean_of samples in
  m > 0.0 && Stats.stddev_of samples > m

(* How much we believe a probe-time ordering: cluster the per-unit mean
   times of the extents in log domain and turn the cache/disk separation
   into [0, 1] — a clean two-decade gap is ~1, a spurious split is ~0.  A
   homogeneous population (everything cached, or nothing) is unambiguous
   and scores 1. *)
let confidence_of_means means =
  if Array.length means < 2 then 1.0
  else begin
    let split = Cluster.two_means_log (Array.map (Float.max 1.0) means) in
    if split.Cluster.low_count = 0 || split.Cluster.high_count = 0 then 1.0
    else begin
      let sep = Cluster.separation split in
      if sep <= 1.0 then 0.0 else 1.0 -. (1.0 /. sep)
    end
  end

let units_of config ext =
  max 1 ((ext.ext_len + config.prediction_unit - 1) / config.prediction_unit)

type file_rank = { fr_path : string; fr_probe_ns : int; fr_size : int }

let order_confidence config ranked =
  confidence_of_means
    (Array.of_list
       (List.map
          (fun r ->
            let units =
              max 1 ((r.fr_size + config.prediction_unit - 1) / config.prediction_unit)
            in
            float_of_int r.fr_probe_ns /. float_of_int units)
          ranked))

module Make (Os : Os_intf.S) = struct
  module R = Resilient.Make (Os)
  module P = Probe.Make (Os)

(* One probe point, hardened: transient faults are retried with only the
   successful attempt timed; errors that survive the budget are reported
   as "far away" so a flaky channel degrades the plan instead of aborting
   it. *)
let probe_point env config fd ~off =
  match config.retry with
  | None -> P.file_byte env fd ~off
  | Some policy -> (
    match P.file_byte_r env ~policy fd ~off with
    | Ok ns -> ns
    | Error _ -> config.fake_high_ns)

let k_open env config path =
  match config.retry with
  | None -> Os.open_file env path
  | Some policy -> R.retry ~policy (fun () -> Os.open_file env path)

(* One probe per prediction unit, at a random byte of the unit: robust
   across runs and repeatable probing increases confidence
   (Section 4.1.2).  With [config.resample > 0], a high-variance first
   pass triggers that many extra passes and each unit contributes its
   outlier-rejected median instead of a single raw sample. *)
let probe_extent env config fd ext =
  let tele = Telemetry.active () in
  let ts = match tele with None -> 0 | Some s -> Telemetry.now s in
  let count = max 1 ((ext.ext_len + config.prediction_unit - 1) / config.prediction_unit) in
  let sample i =
    let pu_off = ext.ext_off + (i * config.prediction_unit) in
    let pu_len = min config.prediction_unit (ext.ext_off + ext.ext_len - pu_off) in
    let off = pu_off + Rng.int config.rng (max 1 pu_len) in
    probe_point env config fd ~off
  in
  let first = Array.make count 0 in
  for i = 0 to count - 1 do
    first.(i) <- sample i
  done;
  let probes = ref count in
  let total =
    if config.resample > 0 && unstable (Array.map float_of_int first) then begin
      Telemetry.event "core.fccd.resample"
        ~attrs:(fun () ->
          [ ("off", Telemetry.Int ext.ext_off); ("passes", Telemetry.Int config.resample) ]);
      let per_unit = Array.map (fun ns -> ref [ float_of_int ns ]) first in
      for _pass = 1 to config.resample do
        for i = 0 to count - 1 do
          let cell = per_unit.(i) in
          cell := float_of_int (sample i) :: !cell;
          incr probes
        done
      done;
      int_of_float
        (Array.fold_left
           (fun acc cell -> acc +. Resilient.robust_median (Array.of_list !cell))
           0.0 per_unit)
    end
    else Array.fold_left ( + ) 0 first
  in
  (match tele with
  | None -> ()
  | Some s ->
    Telemetry.add_in s ~n:!probes "core.fccd.probes";
    Telemetry.span_end s "core.fccd.probe_extent" ~ts
      ~attrs:(fun () ->
        [
          ("off", Telemetry.Int ext.ext_off);
          ("len", Telemetry.Int ext.ext_len);
          ("probes", Telemetry.Int !probes);
        ]));
  (total, !probes)

let probe_fd env config ~path fd =
  let size = Os.file_size env fd in
  if size < page then
    (* Heisenberg: probing a sub-page file would fault all of it in, so we
       report it "far away" instead (Section 4.1.4). *)
    {
      plan_path = path;
      plan_size = size;
      plan_extents =
        (if size = 0 then [] else [ ({ ext_off = 0; ext_len = size }, config.fake_high_ns) ]);
      plan_probes = 0;
      plan_confidence = 1.0;
    }
  else begin
    let parts = partition config ~size in
    let probes = ref 0 in
    let timed =
      Telemetry.span "core.fccd.probe_file"
        ~attrs:(fun () -> [ ("path", Telemetry.String path); ("size", Telemetry.Int size) ])
        (fun () ->
          List.map
            (fun ext ->
              let ns, count = probe_extent env config fd ext in
              probes := !probes + count;
              (ext, ns))
            parts)
    in
    let confidence =
      (* a backend with a coarse timer cannot justify full belief in a
         timing-derived ordering: cap, don't crash (sim caps at 1.0,
         which is the identity) *)
      Float.min
        (Os.timing_confidence_cap env)
        (confidence_of_means
           (Array.of_list
              (List.map
                 (fun (ext, ns) -> float_of_int ns /. float_of_int (units_of config ext))
                 timed)))
    in
    Telemetry.observe "core.fccd.confidence" confidence;
    let ordered =
      (* Ties (e.g. an all-cached prefix) break towards HIGHER offsets:
         under the LRU-like assumption, sequentially produced data is
         younger at higher offsets, so reading top-down keeps the reader
         ahead of the replacement hand — reading bottom-up would race the
         hand and turn each eviction into the next miss. *)
      List.stable_sort
        (fun (a, ta) (b, tb) ->
          if ta <> tb then compare ta tb else compare b.ext_off a.ext_off)
        timed
    in
    {
      plan_path = path;
      plan_size = size;
      plan_extents = ordered;
      plan_probes = !probes;
      plan_confidence = confidence;
    }
  end

let probe_file env config ~path =
  match k_open env config path with
  | Error e -> Error e
  | Ok fd ->
    let plan = probe_fd env config ~path fd in
    Os.close env fd;
    Ok plan

let order_files env config ~paths =
  let rec rank acc = function
    | [] ->
      Ok
        (List.stable_sort
           (fun a b ->
             if a.fr_probe_ns <> b.fr_probe_ns then compare a.fr_probe_ns b.fr_probe_ns
             else compare a.fr_path b.fr_path)
           (List.rev acc))
    | path :: rest -> (
      match k_open env config path with
      | Error e -> Error e
      | Ok fd ->
        let size = Os.file_size env fd in
        let probe_ns =
          if size < page then config.fake_high_ns
          else fst (probe_extent env config fd { ext_off = 0; ext_len = size })
        in
        Os.close env fd;
        rank ({ fr_path = path; fr_probe_ns = probe_ns; fr_size = size } :: acc) rest)
  in
  rank [] paths

let read_plan ?policy env fd plan ~f =
  List.iter
    (fun ({ ext_off; ext_len }, _) ->
      match R.retry ?policy (fun () -> Os.read env fd ~off:ext_off ~len:ext_len) with
      | Ok n -> f ~off:ext_off ~len:n
      | Error _ -> ())
    plan.plan_extents
end

include Make (Os_sim)
