open Gray_util

type detector = Timing | Vmstat

type config = {
  initial_increment : int;
  max_increment : int;
  consecutive_slow : int;
  slow_threshold_ns : int option;
  headroom : float;
  detection : detector;
  robust : bool;
  min_confidence : float;
}

let page = 4096
let mib = 1024 * 1024

let default_config ?repo () =
  let slow_threshold_ns =
    match repo with
    | None -> None
    | Some r -> (
      match
        ( Param_repo.get r Param_repo.key_page_in_ns,
          Param_repo.get r Param_repo.key_page_alloc_zero_ns )
      with
      | Some page_in, Some zero ->
        (* geometric mean separates "benign slow" (zero fill) from paging *)
        Some (int_of_float (sqrt (page_in *. zero)))
      | _ -> None)
  in
  {
    initial_increment = 8 * mib;
    max_increment = 16 * mib;
    consecutive_slow = 3;
    slow_threshold_ns;
    headroom = 0.15;
    detection = Timing;
    robust = false;
    min_confidence = 0.0;
  }

type stats = {
  s_probe_ns : int;
  s_steps : int;
  s_backoffs : int;
  s_chunks : int;
  s_suspect_chunks : int;
  s_confidence : float;
}

(* The "stats of the most recent gb_alloc" slot is domain-local: a MAC
   run on one domain of a bench pool must not clobber the stats another
   domain's run is about to read.  Shared across backends — the slot
   describes "the last gb_alloc on this domain", whichever OS ran it. *)
let last : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        s_probe_ns = 0;
        s_steps = 0;
        s_backoffs = 0;
        s_chunks = 0;
        s_suspect_chunks = 0;
        s_confidence = 1.0;
      })

let last_stats () = Domain.DLS.get last

let has_consecutive_slow times ~threshold ~k =
  let run = ref 0 in
  let found = ref false in
  Array.iter
    (fun t ->
      if t > threshold then begin
        incr run;
        if !run >= k then found := true
      end
      else run := 0)
    times;
  !found

(* Touch a range in bounded chunks so that competing processes get to run
   (and re-reference their working sets) while we probe — one huge vectored
   touch would outrun the page daemon's reference information. *)
let probe_chunk_pages = 256

module Make (Os : Os_intf.S) = struct
  type allocation = {
    a_region : Os.region;
    a_pages : int;
    a_bytes : int;
    a_confidence : float;
    mutable a_live : bool;
  }

  let bytes a = a.a_bytes
  let pages a = a.a_pages
  let region a = a.a_region
  let confidence a = a.a_confidence

  (* Self-calibration (Section 4.3.2, second method): time accesses to a few
     pages that are certainly resident, and fresh first-touches; "slow" is
     set well above the worst benign cost observed. *)
  let calibrate config env =
    Telemetry.span "core.mac.calibrate" (fun () ->
        let probe_pages = 64 in
        match Os.valloc env ~pages:probe_pages with
        | Error _ ->
          (* a backend that cannot even reserve the probe region gets the
             threshold floor — conservative, never a crash *)
          1_000
        | Ok r ->
          let first = Os.touch_pages env r ~first:0 ~count:probe_pages in
          let again = Os.touch_pages env r ~first:0 ~count:probe_pages in
          Os.vfree env r;
          let summarise =
            (* under fault injection a latency spike landing inside the
               calibration pass would inflate "benign" tenfold and blind the
               detector; the robust path rejects such outliers first *)
            if config.robust then Resilient.robust_median else Stats.median_of
          in
          let med a = summarise (Array.map float_of_int a) in
          let benign = Float.max (med first) (med again) in
          max 1_000 (int_of_float (10.0 *. benign)))

  (* Exposed so the adaptive layer can re-run calibration on demand (after
     an environment drift) and blend the fresh threshold with its prior. *)
  let calibrate_threshold config env = calibrate config env

  (* Touch up to [count] pages, chunk by chunk, stopping at the first
     consecutive-slow run: "if MAC notices consecutive slow data points
     [...] it immediately skips to the second loop" (Section 4.3.1).
     Stopping early is what keeps an over-reached step from swapping out
     megabytes of other processes' memory before we notice. *)
  let touch_adaptive env region ~first ~count ~chunk_slow =
    let touched = ref 0 in
    let slow = ref false in
    while (not !slow) && !touched < count do
      let n = min probe_chunk_pages (count - !touched) in
      let part = Os.touch_pages env region ~first:(first + !touched) ~count:n in
      touched := !touched + n;
      if chunk_slow part then slow := true
    done;
    (!touched, !slow)

  let gb_alloc env config ~min ~max ~multiple =
    if min <= 0 || max < min || multiple <= 0 then
      invalid_arg "Mac.gb_alloc: need 0 < min <= max and multiple > 0";
    let floor_multiple b = b / multiple * multiple in
    let effective_min = (min + multiple - 1) / multiple * multiple in
    if effective_min > max then
      invalid_arg "Mac.gb_alloc: no multiple of [multiple] within [min, max]";
    let max_pages = (max + page - 1) / page in
    let timing_detector () =
      let threshold =
        match config.slow_threshold_ns with Some t -> t | None -> calibrate config env
      in
      ( Some threshold,
        fun times -> has_consecutive_slow times ~threshold ~k:config.consecutive_slow )
    in
    let threshold_opt, chunk_slow_raw =
      match config.detection with
      | Timing -> timing_detector ()
      | Vmstat -> (
        (* any page traffic since the last chunk means the page daemon is
           active on our behalf (or somebody else's: coarser than timing,
           but exact where it fires) *)
        match Os.vmstat env with
        | Error _ ->
          (* graceful degradation: this backend has no paging counters, so
             fall back to the timing detector rather than fail the alloc *)
          timing_detector ()
        | Ok first ->
          let baseline = ref first in
          ( None,
            fun _times ->
              match Os.vmstat env with
              | Error _ -> false
              | Ok now ->
                let active =
                  now.Simos.Kernel.vm_page_outs > !baseline.Simos.Kernel.vm_page_outs
                  || now.Simos.Kernel.vm_page_ins > !baseline.Simos.Kernel.vm_page_ins
                in
                baseline := now;
                active ))
    in
    (* Confidence bookkeeping: a slow sample inside a detected k-run is
       paging; a slow sample in a chunk with NO such run is spike-like —
       something (a fault burst, an interrupt) inflated an isolated access.
       The fraction of spike-like samples is how murky the timing channel
       is, and lowers the decision's confidence.  The exact vmstat channel
       is always fully confident. *)
    let chunks = ref 0 and suspect_chunks = ref 0 in
    let page_samples = ref 0 and ambiguous = ref 0 in
    let chunk_slow times =
      incr chunks;
      let slow = chunk_slow_raw times in
      if slow then incr suspect_chunks;
      (match threshold_opt with
      | Some t ->
        page_samples := !page_samples + Array.length times;
        if not slow then
          Array.iter (fun x -> if x > t then incr ambiguous) times
      | None -> ());
      slow
    in
    let current_confidence () =
      if !page_samples = 0 then 1.0
      else 1.0 -. (float_of_int !ambiguous /. float_of_int !page_samples)
    in
    let tele = Telemetry.active () in
    let ts = match tele with None -> 0 | Some s -> Telemetry.now s in
    let t0 = Os.gettime env in
    match Os.valloc env ~pages:max_pages with
    | Error _ ->
      (* the reservation itself was refused (host only: the sim's address
         space is free) — that already answers the admission question *)
      Domain.DLS.set last
        {
          s_probe_ns = Os.gettime env - t0;
          s_steps = 0;
          s_backoffs = 0;
          s_chunks = 0;
          s_suspect_chunks = 0;
          s_confidence = 1.0;
        };
      None
    | Ok region ->
    let min_step = Stdlib.max 1 (config.initial_increment / page) in
    let committed = ref 0 in
    let increment = ref min_step in
    let steps = ref 0 and backoffs = ref 0 in
    let failed = ref false in
    let continue_ = ref true in
    while !continue_ && !committed < max_pages && not !failed do
      let step = Stdlib.min !increment (max_pages - !committed) in
      incr steps;
      (* First loop: move the new chunk to a known state, bailing out at the
         first sign of paging. *)
      let touched, _suspect =
        touch_adaptive env region ~first:!committed ~count:step ~chunk_slow
      in
      let candidate = !committed + touched in
      (* Second loop: verify the whole candidate stays resident, also
         stopping as soon as paging is certain. *)
      let _, verify_slow = touch_adaptive env region ~first:0 ~count:candidate ~chunk_slow in
      if verify_slow then begin
        (* "analogous to but more conservative than the TCP congestion-
           control scheme": the first verified failure ends the climb.
           Re-probing after a failure is self-deceiving — the verification's
           own page-ins make the candidate look resident again while
           evicting the neighbours, so competing gb_allocs would never
           converge. *)
        incr backoffs;
        Telemetry.event "core.mac.backoff"
          ~attrs:(fun () ->
            [ ("phase", Telemetry.String "climb"); ("committed", Telemetry.Int !committed) ]);
        Os.vrelease env region ~first:!committed ~count:touched;
        continue_ := false
      end
      else begin
        (* the verification decides: even a suspected first loop counts if
           every page of the candidate proved resident *)
        committed := candidate;
        increment := Stdlib.min (!increment * 2) (Stdlib.max 1 (config.max_increment / page))
      end
    done;
    (* "we must make MAC slightly less aggressive" (Section 4.3.1): when the
       probing ran into replacement (rather than simply reaching the
       requested maximum), grant a little less than what fit, leaving cache
       room for the caller's own file I/O *)
    let discounted =
      if !backoffs = 0 && !committed = max_pages then !committed * page
      else int_of_float ((1.0 -. config.headroom) *. float_of_int (!committed * page))
    in
    let granted_bytes = floor_multiple (Stdlib.min max discounted) in
    let tele_finish ~granted =
      match tele with
      | None -> ()
      | Some s ->
        Telemetry.add_in s ~n:!steps "core.mac.steps";
        Telemetry.add_in s ~n:!backoffs "core.mac.backoffs";
        Telemetry.observe_in s "core.mac.confidence" (current_confidence ());
        Telemetry.span_end s "core.mac.gb_alloc" ~ts
          ~attrs:(fun () ->
            [
              ("steps", Telemetry.Int !steps);
              ("backoffs", Telemetry.Int !backoffs);
              ("granted", Telemetry.Int granted);
            ])
    in
    let record_stats () =
      Domain.DLS.set last
        {
          s_probe_ns = Os.gettime env - t0;
          s_steps = !steps;
          s_backoffs = !backoffs;
          s_chunks = !chunks;
          s_suspect_chunks = !suspect_chunks;
          s_confidence = current_confidence ();
        }
    in
    record_stats ();
    if granted_bytes < effective_min then begin
      Os.vfree env region;
      tele_finish ~granted:0;
      None
    end
    else begin
      let granted_pages = (granted_bytes + page - 1) / page in
      if granted_pages < !committed then
        Os.vrelease env region ~first:granted_pages ~count:(!committed - granted_pages);
      (* Settle: the grant is handed out only once a full write pass over it
         runs without paging ("MAC atomically identifies and allocates this
         memory").  Under a race of several gb_allocs the climbers all
         overshoot a little; shrinking here is what lets the group converge
         under the machine's capacity. *)
      let shrink = Stdlib.max 1 (config.initial_increment / page) in
      let rec settle pages =
        let bytes = floor_multiple (Stdlib.min max (pages * page)) in
        if bytes < effective_min then None
        else begin
          let p = (bytes + page - 1) / page in
          let _, paged = touch_adaptive env region ~first:0 ~count:p ~chunk_slow in
          if not paged then Some (p, bytes)
          else begin
            incr backoffs;
            Telemetry.event "core.mac.backoff"
              ~attrs:(fun () ->
                [ ("phase", Telemetry.String "settle"); ("pages", Telemetry.Int p) ]);
            let next = Stdlib.max 0 (p - shrink) in
            Os.vrelease env region ~first:next ~count:(p - next);
            settle next
          end
        end
      in
      let result =
        if !backoffs = 0 then Some (granted_pages, granted_bytes)
        else Telemetry.span "core.mac.settle" (fun () -> settle granted_pages)
      in
      record_stats ();
      match result with
      | None ->
        Os.vfree env region;
        tele_finish ~granted:0;
        None
      | Some (a_pages, a_bytes) ->
        let conf = current_confidence () in
        let a_pages, a_bytes =
          if conf < config.min_confidence && a_bytes > effective_min then begin
            (* graceful degradation: the timing channel was too murky to
               trust the climb, so grant only the conservative minimum the
               caller said it can live with *)
            let p = (effective_min + page - 1) / page in
            if p < a_pages then
              Os.vrelease env region ~first:p ~count:(a_pages - p);
            (p, effective_min)
          end
          else (a_pages, a_bytes)
        in
        tele_finish ~granted:a_bytes;
        Some { a_region = region; a_pages; a_bytes; a_confidence = conf; a_live = true }
    end

  let touch_all env a =
    if not a.a_live then invalid_arg "Mac.touch_all: allocation freed";
    ignore (Os.touch_pages env a.a_region ~first:0 ~count:a.a_pages)

  let gb_free env a =
    if a.a_live then begin
      a.a_live <- false;
      Os.vfree env a.a_region
    end
end

include Make (Os_sim)
