(** {!Os_intf.S} over the simulated kernel — the transparent adapter the
    functorized ICL stack is instantiated with by default.  Its types
    are the kernel's own, so [Fccd.Make(Os_sim)] (re-exported as the
    top-level [Fccd]) keeps the exact pre-functorization API. *)

include
  Os_intf.S
    with type env = Simos.Kernel.env
     and type fd = Simos.Kernel.fd
     and type region = Simos.Kernel.region
