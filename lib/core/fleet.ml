(* Multi-tenant fleet orchestration: see the .mli for the model and the
   determinism contract. *)

open Gray_util
open Simos

type descriptor = {
  fd_procs : int;
  fd_seed : int;
  fd_stagger_ns : int;
  fd_quantum_ns : int;
  fd_reap_every : int;
}

let default_descriptor =
  {
    fd_procs = 64;
    fd_seed = 42;
    fd_stagger_ns = 10_000;
    fd_quantum_ns = Sched.default_config.Sched.sd_quantum_ns;
    fd_reap_every = 64;
  }

let sched_config d = { Sched.sd_quantum_ns = d.fd_quantum_ns }

let spawn_fleet k d ?(name = fun _ -> "fleet.proc") ~body () =
  if d.fd_procs < 1 then invalid_arg "Fleet.spawn_fleet: empty fleet";
  (* Member i's RNG is the i-th split of the master stream — the same
     derivation a solo experiment uses for its first split, which is
     what makes the 1-process fleet bit-identical to the solo path. *)
  let master = Rng.create ~seed:d.fd_seed in
  let exits = ref 0 in
  let base = Engine.now (Kernel.engine k) in
  for i = 0 to d.fd_procs - 1 do
    let rng = Rng.split master in
    Kernel.spawn k ~name:(name i) ~at:(base + (i * d.fd_stagger_ns)) (fun env ->
        Fun.protect
          ~finally:(fun () ->
            (* Reap on a fixed exit cadence.  This runs before the
               kernel's own cleanup marks this process exited, so each
               reap folds the members that finished before it — the
               one-process lag keeps the cadence deterministic without
               reaching into kernel internals. *)
            incr exits;
            if d.fd_reap_every > 0 && !exits mod d.fd_reap_every = 0 then
              Option.iter Account.reap (Kernel.account k))
          (fun () -> body ~index:i ~rng env))
  done

let wait_until k ts =
  let now = Engine.now (Kernel.engine k) in
  if now < ts then Engine.delay (ts - now)

let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end

(* ---- MAC fleets ------------------------------------------------------- *)

type mac_result = {
  mr_grants : int array array;
  mr_fairness : float array;
  mr_late_fairness : float;
  mr_reversal_rate : float;
  mr_late_swing : float;
}

let mac_fleet k ?config ?max_bytes ?(stagger_ns = 50_000) ~macs ~rounds
    ~round_ns () =
  if macs < 1 || rounds < 1 then invalid_arg "Fleet.mac_fleet";
  let cfg = match config with Some c -> c | None -> Mac.default_config () in
  let platform = Kernel.platform k in
  let page = platform.Platform.page_size in
  let max_bytes =
    match max_bytes with
    | Some b -> b
    | None -> Platform.usable_bytes platform
  in
  let grants = Array.make_matrix rounds macs 0 in
  let base = Engine.now (Kernel.engine k) in
  for m = 0 to macs - 1 do
    Kernel.spawn k ~name:(Printf.sprintf "mac%d" m) (fun env ->
        (* Calibrate once up front: per-round recalibration would
           measure the other MACs' pressure, not the machine. *)
        let cfg =
          match cfg.Mac.slow_threshold_ns with
          | Some _ -> cfg
          | None ->
            {
              cfg with
              Mac.slow_threshold_ns = Some (Mac.calibrate_threshold cfg env);
            }
        in
        for r = 0 to rounds - 1 do
          let start = base + (r * round_ns) + (m * stagger_ns) in
          wait_until k start;
          (match Mac.gb_alloc env cfg ~min:page ~max:max_bytes ~multiple:page with
          | None -> ()
          | Some a ->
            grants.(r).(m) <- Mac.bytes a;
            (* use the grant, hold it resident for most of the round *)
            Mac.touch_all env a;
            wait_until k (base + (r * round_ns) + (3 * round_ns / 4));
            Mac.gb_free env a);
          wait_until k (base + ((r + 1) * round_ns))
        done)
  done;
  Kernel.run k;
  let fairness =
    Array.map (fun row -> jain (Array.map float_of_int row)) grants
  in
  let late_from = rounds - max 1 (rounds / 4) in
  let mean a lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. a.(i)
    done;
    !s /. float_of_int (max 1 (hi - lo))
  in
  let late_fairness = mean fairness late_from rounds in
  (* Per-MAC grant-delta sign reversals: a converged MAC's grants
     plateau (deltas hushed to zero), an oscillating one alternates
     grab/starve so consecutive non-zero deltas flip sign. *)
  let reversals = ref 0 and delta_pairs = ref 0 in
  let swing = ref 0.0 and swing_n = ref 0 and late_grant = ref 0.0 in
  for m = 0 to macs - 1 do
    let last_sign = ref 0 in
    for r = 1 to rounds - 1 do
      let d = grants.(r).(m) - grants.(r - 1).(m) in
      let sign = compare d 0 in
      if sign <> 0 then begin
        if !last_sign <> 0 then begin
          incr delta_pairs;
          if sign <> !last_sign then incr reversals
        end;
        last_sign := sign
      end;
      if r >= late_from then begin
        swing := !swing +. float_of_int (abs d);
        incr swing_n
      end
    done;
    for r = late_from to rounds - 1 do
      late_grant := !late_grant +. float_of_int grants.(r).(m)
    done
  done;
  let late_mean_grant =
    !late_grant /. float_of_int (macs * max 1 (rounds - late_from))
  in
  {
    mr_grants = grants;
    mr_fairness = fairness;
    mr_late_fairness = late_fairness;
    mr_reversal_rate =
      (if !delta_pairs = 0 then 0.0
       else float_of_int !reversals /. float_of_int !delta_pairs);
    mr_late_swing =
      (if late_mean_grant = 0.0 then 0.0
       else !swing /. float_of_int (max 1 !swing_n) /. late_mean_grant);
  }

(* ---- FCCD fleets ------------------------------------------------------ *)

type fccd_result = {
  fc_truth : float array;
  fc_rhos : float array;
  fc_mean_rho : float;
}

let fccd_fleet k ?config ?(shuffle = false) ~probers ~paths ~stagger_ns ~seed
    () =
  if probers < 1 || paths = [] then invalid_arg "Fleet.fccd_fleet";
  let config =
    match config with
    | Some f -> f
    | None -> fun i -> Fccd.default_config ~seed:(seed + i) ()
  in
  let files = Array.of_list paths in
  (* With [shuffle], each prober visits the files in its own seeded
     order.  Concurrent probers walking the population in lockstep see
     each file just before the fleet's accumulated fetches reach it;
     independent orders are both more realistic and what exposes
     mid-probe eviction (a file probed late by one prober has been
     polluted by every earlier probe of it). *)
  let probe_paths i =
    if not shuffle then paths
    else begin
      let order = Array.copy files in
      Rng.shuffle (Rng.create ~seed:(seed + 977 + i)) order;
      Array.to_list order
    end
  in
  (* White-box ground truth, snapshotted before any probe runs: the
     probes themselves fetch pages (the Heisenberg effect), so the
     post-run picture is whatever the fleet turned the cache into. *)
  let truth =
    Array.map (fun path -> Introspect.cached_fraction k ~path) files
  in
  let rankings = Array.make probers [] in
  let base = Engine.now (Kernel.engine k) in
  for i = 0 to probers - 1 do
    Kernel.spawn k
      ~name:(Printf.sprintf "fccd%d" i)
      ~at:(base + (i * stagger_ns))
      (fun env ->
        let cfg = config i in
        match Fccd.order_files env cfg ~paths:(probe_paths i) with
        | Ok ranks -> rankings.(i) <- ranks
        | Error e ->
          failwith ("Fleet.fccd_fleet: " ^ Kernel.error_to_string e))
  done;
  Kernel.run k;
  let rhos =
    Array.map
      (fun ranks ->
        let probe_ns = Hashtbl.create (Array.length files) in
        List.iter
          (fun fr -> Hashtbl.replace probe_ns fr.Fccd.fr_path fr.Fccd.fr_probe_ns)
          ranks;
        (* fast probe = predicted cached, so correlate truth against
           negated probe time *)
        let predicted =
          Array.map
            (fun path ->
              -.float_of_int
                  (Option.value ~default:0 (Hashtbl.find_opt probe_ns path)))
            files
        in
        Correlate.spearman truth predicted)
      rankings
  in
  {
    fc_truth = truth;
    fc_rhos = rhos;
    fc_mean_rho = Array.fold_left ( +. ) 0.0 rhos /. float_of_int probers;
  }
