(** File Layout Detector and Controller (Section 4.2).

    {b Detection}: on FFS-descended file systems the i-number of a file
    (available through [stat]) predicts its on-disk position — files
    created consecutively in a clean directory get consecutive inodes and
    nearby data blocks.  Sorting a set of files by i-number therefore
    approximates their physical order and essentially obviates sorting by
    directory.

    {b Control}: as the file system ages this correlation decays, so the
    controller {e refreshes} a directory — moving the system back to a
    known state — in six steps: create a temporary sibling directory, sort
    the files (smallest first, so small files take the early inodes), copy
    them over in order, restore access/modification times, delete the
    original directory, rename the temporary into place.

    The refresh is not atomic (footnote 4 of the paper); a journal file in
    the parent directory lets {!Make.repair} fix up interrupted refreshes,
    and {!crash_points} enumerates the places a crash can be injected. *)

type stat_order = { so_path : string; so_ino : int; so_size : int }

val dirname : string -> string
val basename : string -> string

val order_by_directory : paths:string list -> string list
(** The weaker heuristic: group files by directory name (sorted), keeping
    the given order within a directory. *)

(** {1 Refresh control} *)

type crash_point =
  | After_mkdir
  | After_copies
  | After_utimes
  | After_delete
  | No_crash

val crash_points : crash_point list

exception Injected_crash of crash_point

(** The detector and controller over any {!Os_intf.S} backend.  Error
    returns never strand resources: [copy_file]'s descriptors are closed
    on every non-crash path, and a failed refresh rolls its temporary
    directory and journal back whenever the original directory is still
    intact (when it is not, everything is left for [repair] to roll
    forward — the copy may be the only surviving data). *)
module Make (Os : Os_intf.S) : sig
  val order_by_inumber :
    Os.env -> paths:string list -> (stat_order list, Simos.Kernel.error) result
  (** [stat] every file and return them sorted by i-number ascending. *)

  val refresh_directory :
    Os.env ->
    ?order:[ `Size_ascending | `Given of string list ] ->
    ?crash_at:crash_point ->
    dir:string ->
    unit ->
    (unit, Simos.Kernel.error) result
  (** Refresh [dir] (absolute path, e.g. ["/d0/data"]).  [order] defaults to
      smallest-first.  [crash_at] aborts by raising {!Injected_crash} at the
      given step — for crash-recovery tests only. *)

  val repair : Os.env -> parent:string -> (bool, Simos.Kernel.error) result
  (** Scan [parent] for an interrupted refresh (journal present) and roll it
      forward or back to a consistent state.  Returns [true] if a repair was
      performed.  This is the "nightly script that looks for a certain
      directory signature and patches up problems" of footnote 4. *)
end

(** {1 The simulated-backend instance (the historical flat API)} *)

val order_by_inumber :
  Simos.Kernel.env -> paths:string list -> (stat_order list, Simos.Kernel.error) result

val refresh_directory :
  Simos.Kernel.env ->
  ?order:[ `Size_ascending | `Given of string list ] ->
  ?crash_at:crash_point ->
  dir:string ->
  unit ->
  (unit, Simos.Kernel.error) result

val repair : Simos.Kernel.env -> parent:string -> (bool, Simos.Kernel.error) result

val journal_name : string
(** Name of the journal file a refresh writes into the parent directory. *)

val journal_path : parent:string -> base:string -> string
(** Full path of the journal a refresh of [parent/base] uses. *)

val tmp_dir_path : parent:string -> base:string -> string
(** Full path of the temporary sibling directory the refresh copies
    into. *)

(** {1 Journal records (durable mode)}

    Under the crash plane ({!Os_intf.S.durability_on}) the refresh
    writes real intent/commit records into the journal (via the kernel's
    blob side-band) and fsyncs them, and {!Make.repair} consults the
    record to choose roll-back vs roll-forward; without a plane the
    journal stays an empty marker file and refresh/repair issue exactly
    the legacy syscall sequence.  Exposed for the crash explorer and the
    torn-journal tests. *)

val journal_content :
  base:string -> files:(string * int * int) list -> commit:bool -> string
(** The exact journal image a refresh of [base] writes: magic line, base
    line, one [file <size> <mtime> <name>] record per file, and — with
    [commit:true] — the final commit record. *)

val journal_committed : string -> base:string -> bool
(** Whether a journal image counts as committed: well-formed end to end
    with a final commit record.  Any torn or unparseable tail is [false]
    (roll back).  Pure; never raises. *)
