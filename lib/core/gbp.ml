open Simos

type mode = Mem | File | Compose

let mode_of_string = function
  | "mem" | "-mem" -> Some Mem
  | "file" | "-file" -> Some File
  | "compose" | "-compose" -> Some Compose
  | _ -> None

let mode_to_string = function Mem -> "mem" | File -> "file" | Compose -> "compose"

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let best_order env config mode ~paths =
  match mode with
  | Mem ->
    let* ranked = Fccd.order_files env config ~paths in
    Ok (List.map (fun r -> r.Fccd.fr_path) ranked)
  | File ->
    let* ordered = Fldc.order_by_inumber env ~paths in
    Ok (List.map (fun s -> s.Fldc.so_path) ordered)
  | Compose ->
    let* decision = Compose.order_files env config paths in
    Ok decision.Compose.d_order

type fallback_reason =
  | Degraded_error of Kernel.error
  | Low_confidence of float

let fallback_reason_to_string = function
  | Degraded_error e -> Kernel.error_to_string e
  | Low_confidence c -> Printf.sprintf "low probe confidence (%.2f)" c

(* A reordering hint must never make the pipeline worse than not asking:
   on error, or when the probe timings do not support a believable
   ordering, hand back the caller's own argument order and say why. *)
let best_order_or_fallback env config ?(min_confidence = 0.0) mode ~paths =
  let fallback reason = (paths, Some reason) in
  match mode with
  | Mem -> (
    match Fccd.order_files env config ~paths with
    | Error e -> fallback (Degraded_error e)
    | Ok ranked ->
      let conf = Fccd.order_confidence config ranked in
      if conf < min_confidence then fallback (Low_confidence conf)
      else (List.map (fun r -> r.Fccd.fr_path) ranked, None))
  | File | Compose -> (
    match best_order env config mode ~paths with
    | Error e -> fallback (Degraded_error e)
    | Ok order -> (order, None))

(* Distinct, stable shell exit codes per kernel error (1 is reserved for
   usage errors). *)
let exit_code_of_error = function
  | Kernel.Bad_path -> 2
  | Kernel.Bad_fd -> 3
  | Kernel.Retryable | Kernel.Timeout -> 4
  | Kernel.Fs_error Fs.Enoent -> 5
  | Kernel.Fs_error Fs.Eexist -> 6
  | Kernel.Fs_error _ | Kernel.Sys_error _ -> 7
  | Kernel.Unsupported _ -> 12

(* A telemetry export that cannot be written is not a kernel error, but it
   still deserves its own code in the same namespace. *)
let exit_export_failed = 8

(* Crash-injection runs (gbp --crash-at N): the machine died mid-pipeline
   and the driver either recovered the volume to a consistent state or did
   not — two outcomes a crash-matrix CI job must tell apart. *)
let exit_crash_recovered = 9
let exit_recovery_failed = 10

(* Adaptive runs (gbp --adaptive under --drift): the ICL watchdog spent
   its whole re-calibration budget and the environment was still hostile
   — the pipeline degraded into a distinct, scriptable failure rather
   than thrashing forever. *)
let exit_stale = 11

(* Host-backend runs (gbp --os host): the real-OS backend could not be
   brought up, or the requested pipeline needs a capability the backend
   does not provide.  Scripts probing for host support branch on this. *)
let exit_host_unavailable = 12

(* One pipe transfer costs a kernel-to-user copy of the payload (writer
   copies in, reader copies out — we charge the reader side once more,
   which is the "extra copy of all data through the operating system via
   the pipe mechanism" of Section 4.1.3). *)
let pipe_ns_per_byte env =
  let platform = Kernel.platform (Kernel.kernel_of_env env) in
  2.0 *. platform.Platform.memcopy_byte_ns

let out env config ~path ~consume =
  let* plan = Fccd.probe_file env config ~path in
  let* fd = Kernel.open_file env path in
  let per_byte = pipe_ns_per_byte env in
  let total = ref 0 in
  Fccd.read_plan ?policy:config.Fccd.retry env fd plan ~f:(fun ~off ~len ->
      Kernel.compute_bytes env ~bytes:len ~ns_per_byte:per_byte;
      consume ~off ~len;
      total := !total + len);
  Kernel.close env fd;
  Ok !total
