(** The OS a gray-box ICL runs against, as a module signature.

    The paper's premise is that ICLs treat the operating system as an
    unmodifiable black box reached through a narrow syscall surface.
    This signature {e is} that surface: the ~17 syscalls the ICL stack
    uses ([Fccd], [Mac], [Fldc], [Resilient], [Adaptive], the workload
    drivers), with typed, total error results — no backend may ever let
    a raised [Unix.Unix_error] (or any other exception) escape a call.

    Two implementations exist:

    - {!Os_sim}: a thin adapter over [Simos.Kernel].  It must be
      byte-identical to calling the kernel directly — it adds no
      syscalls, no RNG draws and no clock advances, which CI verifies by
      diffing bench output against the pre-functorization baseline.
    - {!Os_host}: the real OS through [Unix], every call wrapped
      defensively (EINTR/EAGAIN retry, partial-transfer completion
      loops, deadline timeouts, errno→typed-error mapping) so that both
      backends traverse the same ICL error paths.

    Error values come from [Simos.Kernel.error] — the taxonomy is shared
    literally with the fault plane's injected errors.  The simulated
    backend never produces [Timeout], [Unsupported] or [Sys_error];
    those are the host backend's degradations. *)

open Simos

module type S = sig
  val name : string
  (** Backend tag ("sim" / "host") for telemetry and diagnostics. *)

  type env
  (** Per-process handle; everything below threads through it. *)

  type fd
  type region

  (** {1 Time} *)

  val gettime : env -> int
  (** The gray-box clock, in nanoseconds from an arbitrary origin.
      Cheap, monotonic, quantised to the backend's timer resolution. *)

  val timing_confidence_cap : env -> float
  (** Upper bound, in [0, 1], on how much a timing-channel verdict from
      this backend deserves to be believed.  The simulated kernel's
      clock is exact for its own cost model, so the cap is 1; a host
      with a coarse timer caps confidence below 1 instead of crashing
      or lying ({!Fccd} multiplies its plan confidence by this). *)

  val sleep_ns : int -> unit
  (** Back off for roughly this long ({!Resilient}'s jittered sleeps).
      Takes no [env]: the sim delays the calling fiber through the
      ambient engine, the host sleeps the calling thread. *)

  (** {1 File syscalls}

      Same contracts as the matching [Simos.Kernel] calls: positional
      [read]/[write] return the byte count transferred (the host
      backend loops until the count is complete or EOF), [file_size]
      is total (0 on a bad descriptor), and the blob side-band carries
      the FLDC journal records. *)

  val open_file : env -> string -> (fd, Kernel.error) result
  val create_file : env -> string -> (fd, Kernel.error) result
  val close : env -> fd -> unit
  val read : env -> fd -> off:int -> len:int -> (int, Kernel.error) result
  val write : env -> fd -> off:int -> len:int -> (int, Kernel.error) result
  val file_size : env -> fd -> int
  val mkdir : env -> string -> (unit, Kernel.error) result
  val unlink : env -> string -> (unit, Kernel.error) result
  val rename : env -> src:string -> dst:string -> (unit, Kernel.error) result
  val readdir : env -> string -> (string list, Kernel.error) result
  val stat : env -> string -> (Fs.stat_info, Kernel.error) result
  val utimes : env -> string -> atime:int -> mtime:int -> (unit, Kernel.error) result
  val fsync : env -> fd -> (unit, Kernel.error) result
  val sync : env -> unit
  val write_blob : env -> fd -> string -> (unit, Kernel.error) result
  val read_blob : env -> fd -> (string, Kernel.error) result

  val durability_on : env -> bool
  (** Whether crashes are survivable here, i.e. whether FLDC should pay
      for journal records + fsync.  Sim: a crash plane is installed.
      Host: always true — the real machine can always lose power. *)

  (** {1 Memory syscalls} *)

  val valloc : env -> pages:int -> (region, Kernel.error) result
  (** Reserve address space.  The simulated kernel cannot fail this
      (address space is free); the host returns a typed error when the
      allocation itself is refused, rather than raising [Out_of_memory]. *)

  val vfree : env -> region -> unit
  val vrelease : env -> region -> first:int -> count:int -> unit
  val touch_pages : env -> region -> first:int -> count:int -> int array
  val vmstat : env -> (Kernel.vmstat, Kernel.error) result
  (** Paging counters; [Unsupported] where the host offers no
      equivalent (MAC then degrades to the timing detector). *)

  (** {1 CPU} *)

  val compute : env -> ns:int -> unit
  val compute_bytes : env -> bytes:int -> ns_per_byte:float -> unit

  (** {1 Process} *)

  val pid : env -> int

  val flight : env -> Gray_util.Flight.t option
  (** The backend's flight recorder, when one is on — ICL watchdogs
      record their phase transitions here on either backend. *)
end
