open Simos

type event =
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; len : int }
  | Unlink of { path : string }

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let check_path path =
  if String.exists (fun c -> c = '\t' || c = '\n') path then
    invalid_arg "Trace.record: path contains tab or newline"

let record t ev =
  (match ev with
  | Read { path; off; len } | Write { path; off; len } ->
    if off < 0 || len < 0 then invalid_arg "Trace.record: negative offset or length";
    check_path path
  | Unlink { path } -> check_path path);
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let length t = t.count
let events t = List.rev t.rev_events

let to_string t =
  let buf = Buffer.create (t.count * 32) in
  List.iter
    (fun ev ->
      (match ev with
      | Read { path; off; len } -> Buffer.add_string buf (Printf.sprintf "R\t%s\t%d\t%d" path off len)
      | Write { path; off; len } -> Buffer.add_string buf (Printf.sprintf "W\t%s\t%d\t%d" path off len)
      | Unlink { path } -> Buffer.add_string buf (Printf.sprintf "U\t%s" path));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let of_string s =
  let t = create () in
  List.iteri
    (fun i line ->
      (* 1-based, so the message matches what an editor or `sed -n Np` shows *)
      let lineno = i + 1 in
      let fail fmt =
        Printf.ksprintf
          (fun msg -> failwith (Printf.sprintf "Trace.of_string: line %d: %s" lineno msg))
          fmt
      in
      if line <> "" then begin
        let fields = String.split_on_char '\t' line in
        let num what s =
          match int_of_string_opt s with
          | Some n -> n
          | None -> fail "bad %s %S (expected an integer)" what s
        in
        let checked ev =
          (* negative offsets/lengths and tab/newline paths are rejected by
             [record]; re-raise with the line number attached *)
          try record t ev with Invalid_argument msg -> fail "%s" msg
        in
        match fields with
        | [ "R"; path; off; len ] ->
          checked (Read { path; off = num "offset" off; len = num "length" len })
        | [ "W"; path; off; len ] ->
          checked (Write { path; off = num "offset" off; len = num "length" len })
        | [ "U"; path ] -> checked (Unlink { path })
        | (("R" | "W") as tag) :: _ ->
          fail "%s record needs 4 tab-separated fields (%s\\tPATH\\tOFF\\tLEN), got %d" tag
            tag (List.length fields)
        | "U" :: _ ->
          fail "U record needs 2 tab-separated fields (U\\tPATH), got %d" (List.length fields)
        | tag :: _ -> fail "unknown tag %S (expected R, W or U)" tag
        | [] -> fail "empty line"
      end)
    (String.split_on_char '\n' s);
  t

(* ---- offline analysis ---- *)

let page = 4096

type replay = {
  rp_hits : int;
  rp_misses : int;
  rp_hit_rate : float;
  rp_resident : (string * float) list;
}

let replay t ~policy ~capacity_pages =
  let pool = Pool.create ~name:"trace-replay" ~capacity_pages ~policy in
  let ids = Hashtbl.create 64 in
  let touched : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 1 in
  let id_of path =
    match Hashtbl.find_opt ids path with
    | Some id -> id
    | None ->
      let id = !next in
      incr next;
      Hashtbl.replace ids path id;
      id
  in
  let note_touch path idx =
    let pages =
      match Hashtbl.find_opt touched path with
      | Some p -> p
      | None ->
        let p = Hashtbl.create 64 in
        Hashtbl.replace touched path p;
        p
    in
    Hashtbl.replace pages idx ()
  in
  let hits = ref 0 and misses = ref 0 in
  let access ~path ~off ~len ~dirty =
    if len > 0 then begin
      let id = id_of path in
      for idx = off / page to (off + len - 1) / page do
        note_touch path idx;
        match Pool.access pool (Page.File { ino = id; idx }) ~dirty with
        | `Hit -> incr hits
        | `Filled _ -> incr misses
      done
    end
  in
  List.iter
    (fun ev ->
      match ev with
      | Read { path; off; len } -> access ~path ~off ~len ~dirty:false
      | Write { path; off; len } -> access ~path ~off ~len ~dirty:true
      | Unlink { path } -> (
        match Hashtbl.find_opt ids path with
        | None -> ()
        | Some id ->
          ignore
            (Pool.invalidate_if pool (fun key ->
                 match key with
                 | Page.File { ino; _ } -> ino = id
                 | Page.Anon _ -> false));
          Hashtbl.remove ids path;
          Hashtbl.remove touched path))
    (events t);
  let rp_resident =
    Hashtbl.fold
      (fun path pages acc ->
        match Hashtbl.find_opt ids path with
        | None -> acc (* unlinked *)
        | Some id ->
          let total = Hashtbl.length pages in
          let resident = ref 0 in
          Hashtbl.iter
            (fun idx () ->
              if Pool.contains pool (Page.File { ino = id; idx }) then incr resident)
            pages;
          (path, float_of_int !resident /. float_of_int (max 1 total)) :: acc)
      touched []
    |> List.sort compare
  in
  let total = !hits + !misses in
  {
    rp_hits = !hits;
    rp_misses = !misses;
    rp_hit_rate = (if total = 0 then 0.0 else float_of_int !hits /. float_of_int total);
    rp_resident;
  }

let compare_policies t ~capacity_pages =
  List.map
    (fun name ->
      let r = replay t ~policy:(Replacement.of_name name) ~capacity_pages in
      (name, r.rp_hit_rate))
    Replacement.all_names
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)

type summary = {
  s_events : int;
  s_reads : int;
  s_writes : int;
  s_unlinks : int;
  s_bytes : int;
  s_files : int;
}

let summarize t =
  let reads = ref 0 and writes = ref 0 and unlinks = ref 0 and bytes = ref 0 in
  let files = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Read { path; len; _ } ->
        incr reads;
        bytes := !bytes + len;
        Hashtbl.replace files path ()
      | Write { path; len; _ } ->
        incr writes;
        bytes := !bytes + len;
        Hashtbl.replace files path ()
      | Unlink { path } ->
        incr unlinks;
        Hashtbl.replace files path ())
    (events t);
  {
    s_events = t.count;
    s_reads = !reads;
    s_writes = !writes;
    s_unlinks = !unlinks;
    s_bytes = !bytes;
    s_files = Hashtbl.length files;
  }
