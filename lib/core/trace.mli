(** Syscall trace recording and offline analysis.

    Section 2.1 sketches the model/simulate end of the gray-box spectrum:
    "an ICL may also observe inputs to the OS, which may allow it to infer
    the state of the OS through models or simulations".  This module is
    the toolbox piece for that: record the file-I/O request stream (e.g.
    from an {!Interpose} agent or a workload generator), persist it in a
    line-oriented text format, and replay it offline through any
    {!Simos.Replacement} policy to predict cache contents or compare
    policies on the observed workload. *)

type event =
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; len : int }
  | Unlink of { path : string }

type t

val create : unit -> t
val record : t -> event -> unit
val length : t -> int
val events : t -> event list
(** In recording order. *)

(** {1 Persistence (one event per line: [R\tpath\toff\tlen] etc.)} *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed lines; the message names the 1-based
    offending line and the defect class (unknown tag, wrong field count,
    non-integer offset/length, negative offset/length).  Paths must not
    contain tabs or newlines ({!record} enforces this). *)

(** {1 Offline analysis} *)

type replay = {
  rp_hits : int;
  rp_misses : int;
  rp_hit_rate : float;
  rp_resident : (string * float) list;
      (** per-file fraction of its touched pages predicted resident at the
          end of the trace, sorted by path *)
}

val replay : t -> policy:Simos.Replacement.factory -> capacity_pages:int -> replay
(** Run the trace through a shadow cache of the given policy/size. *)

val compare_policies :
  t -> capacity_pages:int -> (string * float) list
(** Hit rate of every registered replacement policy on this trace, sorted
    best first — "which cache would serve this workload best", offline. *)

type summary = {
  s_events : int;
  s_reads : int;
  s_writes : int;
  s_unlinks : int;
  s_bytes : int;
  s_files : int;
}

val summarize : t -> summary
