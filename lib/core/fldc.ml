open Simos
module Tele = Gray_util.Telemetry

type stat_order = { so_path : string; so_ino : int; so_size : int }

let dirname path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let order_by_inumber env ~paths =
  let policy = Resilient.default () in
  let rec stat_all acc = function
    | [] ->
      Ok
        (List.stable_sort
           (fun a b -> compare a.so_ino b.so_ino)
           (List.rev acc))
    | path :: rest -> (
      match Resilient.retry ~policy (fun () -> Kernel.stat env path) with
      | Error e -> Error e
      | Ok st ->
        stat_all
          ({ so_path = path; so_ino = st.Fs.st_ino; so_size = st.Fs.st_size } :: acc)
          rest)
  in
  stat_all [] paths

let order_by_directory ~paths =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun path ->
      let dir = dirname path in
      match Hashtbl.find_opt groups dir with
      | Some entries -> entries := path :: !entries
      | None ->
        Hashtbl.replace groups dir (ref [ path ]);
        order := dir :: !order)
    paths;
  let dirs = List.sort compare (List.rev !order) in
  List.concat_map (fun dir -> List.rev !(Hashtbl.find groups dir)) dirs

(* ---- refresh ---- *)

type crash_point =
  | After_mkdir
  | After_copies
  | After_utimes
  | After_delete
  | No_crash

let crash_points = [ After_mkdir; After_copies; After_utimes; After_delete; No_crash ]

exception Injected_crash of crash_point

let journal_name = ".gb_refresh_journal"
let journal_path ~parent ~base = parent ^ "/" ^ journal_name ^ "." ^ base
let tmp_dir_path ~parent ~base = parent ^ "/." ^ base ^ ".gb_refresh"

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let copy_file env ~policy ~src ~dst ~size =
  let* src_fd = Resilient.retry ~policy (fun () -> Kernel.open_file env src) in
  let* dst_fd = Kernel.create_file env dst in
  let chunk = 4 * 1024 * 1024 in
  let rec go off =
    if off >= size then Ok ()
    else
      let len = min chunk (size - off) in
      let* _ = Resilient.retry ~policy (fun () -> Kernel.read env src_fd ~off ~len) in
      let* _ = Resilient.retry ~policy (fun () -> Kernel.write env dst_fd ~off ~len) in
      go (off + len)
  in
  let result = go 0 in
  Kernel.close env src_fd;
  Kernel.close env dst_fd;
  result

let exists env path =
  (* a transient stat failure must not be read as "gone" — repair uses
     this answer to pick roll-back vs roll-forward *)
  match Resilient.retry (fun () -> Kernel.stat env path) with
  | Ok _ -> true
  | Error _ -> false

let remove_dir_recursive env dir =
  let* entries = Kernel.readdir env dir in
  let rec remove = function
    | [] -> Kernel.unlink env dir
    | name :: rest ->
      let* () = Kernel.unlink env (dir ^ "/" ^ name) in
      remove rest
  in
  remove entries

let refresh_directory env ?(order = `Size_ascending) ?(crash_at = No_crash) ~dir () =
  Tele.span "core.fldc.refresh" ~attrs:(fun () -> [ ("dir", Tele.String dir) ])
  @@ fun () ->
  let maybe_crash point = if crash_at = point then raise (Injected_crash point) in
  let policy = Resilient.default () in
  let parent = dirname dir and base = basename dir in
  let* names = Kernel.readdir env dir in
  (* collect sizes and times; refuse directories inside *)
  let rec stat_all acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
      let* st = Resilient.retry ~policy (fun () -> Kernel.stat env (dir ^ "/" ^ name)) in
      if st.Fs.st_is_dir then Error (Kernel.Fs_error Fs.Eisdir)
      else stat_all ((name, st) :: acc) rest
  in
  let* stats = stat_all [] names in
  let ordered =
    match order with
    | `Size_ascending ->
      (* small files first, so they take the early inodes and the large
         files' blocks land later where they do no harm (Section 4.2.1) *)
      List.stable_sort
        (fun (na, sa) (nb, sb) ->
          if sa.Fs.st_size <> sb.Fs.st_size then compare sa.Fs.st_size sb.Fs.st_size
          else compare na nb)
        stats
    | `Given names ->
      let by_name = List.map (fun (n, s) -> (n, s)) stats in
      let listed =
        List.filter_map
          (fun n -> Option.map (fun s -> (n, s)) (List.assoc_opt n by_name))
          names
      in
      let missing =
        List.filter (fun (n, _) -> not (List.mem n names)) by_name
      in
      listed @ missing
  in
  let tmp = tmp_dir_path ~parent ~base in
  let journal = journal_path ~parent ~base in
  let* jfd = Kernel.create_file env journal in
  Kernel.close env jfd;
  let* _tmp_ino = Kernel.mkdir env tmp in
  maybe_crash After_mkdir;
  let rec copy_all = function
    | [] -> Ok ()
    | (name, st) :: rest ->
      let* () =
        copy_file env ~policy ~src:(dir ^ "/" ^ name) ~dst:(tmp ^ "/" ^ name)
          ~size:st.Fs.st_size
      in
      copy_all rest
  in
  let* () =
    Tele.span "core.fldc.copy"
      ~attrs:(fun () -> [ ("files", Tele.Int (List.length ordered)) ])
      (fun () -> copy_all ordered)
  in
  maybe_crash After_copies;
  let rec times_all = function
    | [] -> Ok ()
    | (name, st) :: rest ->
      let* () =
        Kernel.utimes env (tmp ^ "/" ^ name) ~atime:st.Fs.st_atime ~mtime:st.Fs.st_mtime
      in
      times_all rest
  in
  let* () = Tele.span "core.fldc.utimes" (fun () -> times_all ordered) in
  maybe_crash After_utimes;
  let* () = Tele.span "core.fldc.delete" (fun () -> remove_dir_recursive env dir) in
  maybe_crash After_delete;
  let* () = Tele.span "core.fldc.rename" (fun () -> Kernel.rename env ~src:tmp ~dst:dir) in
  Kernel.unlink env journal

let repair env ~parent =
  let* entries = Kernel.readdir env parent in
  let prefix = journal_name ^ "." in
  let journals =
    List.filter
      (fun n ->
        String.length n > String.length prefix
        && String.sub n 0 (String.length prefix) = prefix)
      entries
  in
  let rec fix repaired = function
    | [] -> Ok repaired
    | jname :: rest ->
      let base = String.sub jname (String.length prefix) (String.length jname - String.length prefix) in
      let tmp = tmp_dir_path ~parent ~base in
      let orig = parent ^ "/" ^ base in
      let* () =
        match (exists env tmp, exists env orig) with
        | true, true ->
          (* interrupted before the delete: the original is intact, the
             temporary copy may be partial — roll back *)
          remove_dir_recursive env tmp
        | true, false ->
          (* crashed between delete and rename — roll forward *)
          Kernel.rename env ~src:tmp ~dst:orig
        | false, _ -> Ok ()
      in
      let* () = Kernel.unlink env (parent ^ "/" ^ jname) in
      fix true rest
  in
  fix false journals
