open Simos
module Tele = Gray_util.Telemetry

type stat_order = { so_path : string; so_ino : int; so_size : int }

let dirname path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let order_by_directory ~paths =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun path ->
      let dir = dirname path in
      match Hashtbl.find_opt groups dir with
      | Some entries -> entries := path :: !entries
      | None ->
        Hashtbl.replace groups dir (ref [ path ]);
        order := dir :: !order)
    paths;
  let dirs = List.sort compare (List.rev !order) in
  List.concat_map (fun dir -> List.rev !(Hashtbl.find groups dir)) dirs

(* ---- refresh ---- *)

type crash_point =
  | After_mkdir
  | After_copies
  | After_utimes
  | After_delete
  | No_crash

let crash_points = [ After_mkdir; After_copies; After_utimes; After_delete; No_crash ]

exception Injected_crash of crash_point

let journal_name = ".gb_refresh_journal"
let journal_path ~parent ~base = parent ^ "/" ^ journal_name ^ "." ^ base
let tmp_dir_path ~parent ~base = parent ^ "/." ^ base ^ ".gb_refresh"

(* ---- journal records (durable mode) ----

   Under the crash plane the journal file carries real content (via the
   kernel's blob side-band): an intent record written and fsynced before
   any destructive step, upgraded to a commit record — the atomic switch
   from roll-back to roll-forward — only after [sync] has made the
   copied data durable. *)

let journal_magic = "gb-refresh/1"

let journal_content ~base ~files ~commit =
  let buf = Buffer.create 256 in
  Buffer.add_string buf journal_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "base ";
  Buffer.add_string buf base;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, size, mtime) ->
      Buffer.add_string buf (Printf.sprintf "file %d %d %s\n" size mtime name))
    files;
  if commit then Buffer.add_string buf "commit\n";
  Buffer.contents buf

(* A journal counts as committed only when it is well-formed end to end
   and its last record is [commit].  A torn tail — truncated mid-line,
   half a record, garbage — means the commit never became durable, so the
   refresh must roll back.  Pure parsing: never raises. *)
let journal_committed s ~base =
  let file_line line =
    match String.split_on_char ' ' line with
    | "file" :: size :: mtime :: (_ :: _ as name_parts) ->
      int_of_string_opt size <> None
      && int_of_string_opt mtime <> None
      && String.concat " " name_parts <> ""
    | _ -> false
  in
  match String.split_on_char '\n' s with
  | magic :: base_line :: rest when magic = journal_magic && base_line = "base " ^ base ->
    let rec body = function
      | [ "commit"; "" ] -> true (* trailing newline after the commit record *)
      | line :: rest -> file_line line && body rest
      | [] -> false
    in
    body rest
  | _ -> false

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

module Make (Os : Os_intf.S) = struct
  module R = Resilient.Make (Os)

  let order_by_inumber env ~paths =
    let policy = Resilient.default () in
    let rec stat_all acc = function
      | [] ->
        Ok
          (List.stable_sort
             (fun a b -> compare a.so_ino b.so_ino)
             (List.rev acc))
      | path :: rest -> (
        match R.retry ~policy (fun () -> Os.stat env path) with
        | Error e -> Error e
        | Ok st ->
          stat_all
            ({ so_path = path; so_ino = st.Fs.st_ino; so_size = st.Fs.st_size } :: acc)
            rest)
    in
    stat_all [] paths

  let copy_file env ~policy ~src ~dst ~size =
    let* src_fd = R.retry ~policy (fun () -> Os.open_file env src) in
    (* the source descriptor must not leak when the destination cannot be
       created — an error return, unlike a crash, leaves the process alive
       and still owning its descriptors *)
    match Os.create_file env dst with
    | Error e ->
      Os.close env src_fd;
      Error e
    | Ok dst_fd ->
      let chunk = 4 * 1024 * 1024 in
      let rec go off =
        if off >= size then Ok ()
        else
          let len = min chunk (size - off) in
          let* _ = R.retry ~policy (fun () -> Os.read env src_fd ~off ~len) in
          let* _ = R.retry ~policy (fun () -> Os.write env dst_fd ~off ~len) in
          go (off + len)
      in
      let result = go 0 in
      Os.close env src_fd;
      Os.close env dst_fd;
      result

  let exists env path =
    (* a transient stat failure must not be read as "gone" — repair uses
       this answer to pick roll-back vs roll-forward *)
    match R.retry (fun () -> Os.stat env path) with
    | Ok _ -> true
    | Error _ -> false

  let remove_dir_recursive env dir =
    let* entries = Os.readdir env dir in
    let rec remove = function
      | [] -> Os.unlink env dir
      | name :: rest ->
        let* () = Os.unlink env (dir ^ "/" ^ name) in
        remove rest
    in
    remove entries

  let refresh_directory env ?(order = `Size_ascending) ?(crash_at = No_crash) ~dir () =
    Tele.span "core.fldc.refresh" ~attrs:(fun () -> [ ("dir", Tele.String dir) ])
    @@ fun () ->
    let maybe_crash point = if crash_at = point then raise (Injected_crash point) in
    let policy = Resilient.default () in
    let parent = dirname dir and base = basename dir in
    let* names = Os.readdir env dir in
    (* collect sizes and times; refuse directories inside *)
    let rec stat_all acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest ->
        let* st = R.retry ~policy (fun () -> Os.stat env (dir ^ "/" ^ name)) in
        if st.Fs.st_is_dir then Error (Kernel.Fs_error Fs.Eisdir)
        else stat_all ((name, st) :: acc) rest
    in
    let* stats = stat_all [] names in
    let ordered =
      match order with
      | `Size_ascending ->
        (* small files first, so they take the early inodes and the large
           files' blocks land later where they do no harm (Section 4.2.1) *)
        List.stable_sort
          (fun (na, sa) (nb, sb) ->
            if sa.Fs.st_size <> sb.Fs.st_size then compare sa.Fs.st_size sb.Fs.st_size
            else compare na nb)
          stats
      | `Given names ->
        let by_name = List.map (fun (n, s) -> (n, s)) stats in
        let listed =
          List.filter_map
            (fun n -> Option.map (fun s -> (n, s)) (List.assoc_opt n by_name))
            names
        in
        let missing =
          List.filter (fun (n, _) -> not (List.mem n names)) by_name
        in
        listed @ missing
    in
    let tmp = tmp_dir_path ~parent ~base in
    let journal = journal_path ~parent ~base in
    (* Under the crash plane the journal carries fsynced intent/commit
       records; without one the empty journal file alone is the marker and
       the syscall sequence stays exactly what it always was. *)
    let durable = Os.durability_on env in
    let jfiles = List.map (fun (n, st) -> (n, st.Fs.st_size, st.Fs.st_mtime)) ordered in
    let* jfd = Os.create_file env journal in
    let intent =
      if not durable then Ok ()
      else
        let* () =
          Os.write_blob env jfd (journal_content ~base ~files:jfiles ~commit:false)
        in
        Os.fsync env jfd
    in
    Os.close env jfd;
    let* () =
      match intent with
      | Ok () -> Ok ()
      | Error e ->
        (* nothing was copied yet, so the journal marker is pure litter *)
        ignore (Os.unlink env journal : (unit, Kernel.error) result);
        Error e
    in
    let* _tmp_ino =
      match Os.mkdir env tmp with
      | Ok ino -> Ok ino
      | Error e ->
        ignore (Os.unlink env journal : (unit, Kernel.error) result);
        Error e
    in
    maybe_crash After_mkdir;
    let body () =
      let rec copy_all = function
        | [] -> Ok ()
        | (name, st) :: rest ->
          let* () =
            copy_file env ~policy ~src:(dir ^ "/" ^ name) ~dst:(tmp ^ "/" ^ name)
              ~size:st.Fs.st_size
          in
          copy_all rest
      in
      let* () =
        Tele.span "core.fldc.copy"
          ~attrs:(fun () -> [ ("files", Tele.Int (List.length ordered)) ])
          (fun () -> copy_all ordered)
      in
      maybe_crash After_copies;
      let rec times_all = function
        | [] -> Ok ()
        | (name, st) :: rest ->
          let* () =
            Os.utimes env (tmp ^ "/" ^ name) ~atime:st.Fs.st_atime ~mtime:st.Fs.st_mtime
          in
          times_all rest
      in
      let* () = Tele.span "core.fldc.utimes" (fun () -> times_all ordered) in
      maybe_crash After_utimes;
      let* () =
        if not durable then Ok ()
        else begin
          (* Persist the copied data, then the commit record.  The commit
             reaching disk is the atomic switch: before it, repair rolls back
             to the intact original; after it, repair rolls the rename
             forward.  Either way no file is lost. *)
          Os.sync env;
          let* jfd = Os.open_file env journal in
          let* () =
            Os.write_blob env jfd (journal_content ~base ~files:jfiles ~commit:true)
          in
          let committed = Os.fsync env jfd in
          Os.close env jfd;
          committed
        end
      in
      let* () = Tele.span "core.fldc.delete" (fun () -> remove_dir_recursive env dir) in
      maybe_crash After_delete;
      let* () = Tele.span "core.fldc.rename" (fun () -> Os.rename env ~src:tmp ~dst:dir) in
      Os.unlink env journal
    in
    (* An error return — unlike a crash — leaves this process alive and
       responsible for its litter: roll the refresh back (remove the
       temporary copy and the journal) whenever the original directory is
       still intact.  When the original is already gone (the error struck
       between delete and rename) the temporary copy is the only surviving
       data, so everything is left in place for {!repair} to roll forward.
       Crash exceptions propagate untouched: post-crash cleanup would
       falsify the very disk state the crash plane wants to expose. *)
    match body () with
    | Ok () -> Ok ()
    | Error e ->
      if exists env dir then begin
        if exists env tmp then
          ignore (remove_dir_recursive env tmp : (unit, Kernel.error) result);
        ignore (Os.unlink env journal : (unit, Kernel.error) result)
      end;
      Error e

  let repair env ~parent =
    let durable = Os.durability_on env in
    let* entries = Os.readdir env parent in
    let prefix = journal_name ^ "." in
    let journals =
      List.filter
        (fun n ->
          String.length n > String.length prefix
          && String.sub n 0 (String.length prefix) = prefix)
        entries
    in
    let fix_one jname ~base ~tmp ~orig =
      if not durable then
        (* legacy heuristic: no journal content to consult *)
        match (exists env tmp, exists env orig) with
        | true, true ->
          (* interrupted before the delete: the original is intact, the
             temporary copy may be partial — roll back *)
          remove_dir_recursive env tmp
        | true, false ->
          (* crashed between delete and rename — roll forward *)
          Os.rename env ~src:tmp ~dst:orig
        | false, _ -> Ok ()
      else begin
        let committed =
          match Os.open_file env (parent ^ "/" ^ jname) with
          | Error _ -> false
          | Ok jfd ->
            let c =
              match Os.read_blob env jfd with
              | Ok s -> journal_committed s ~base
              | Error _ -> false
            in
            Os.close env jfd;
            c
        in
        if committed then
          (* Roll forward.  The temporary directory still existing is the
             discriminator: if it is gone the rename already happened and
             only the journal needs cleaning up; if it remains, finish the
             (possibly partial) delete of the original and rename. *)
          if exists env tmp then
            let* () = if exists env orig then remove_dir_recursive env orig else Ok () in
            Os.rename env ~src:tmp ~dst:orig
          else Ok ()
        else if
          (* Roll back: the commit never became durable (absent, torn or
             unparseable journal — every truncation lands here), so the
             original is authoritative and the copy is disposable. *)
          exists env tmp
        then
          if exists env orig then remove_dir_recursive env tmp
          else
            (* defensively salvage the copy if only it survived — cannot
               happen under the documented protocol, but a repair must
               never strand the data it still has *)
            Os.rename env ~src:tmp ~dst:orig
        else Ok ()
      end
    in
    let rec fix repaired = function
      | [] -> Ok repaired
      | jname :: rest ->
        let base =
          String.sub jname (String.length prefix) (String.length jname - String.length prefix)
        in
        let tmp = tmp_dir_path ~parent ~base in
        let orig = parent ^ "/" ^ base in
        let* () = fix_one jname ~base ~tmp ~orig in
        let* () = Os.unlink env (parent ^ "/" ^ jname) in
        fix true rest
    in
    fix false journals
end

include Make (Os_sim)
