(** Exhaustive crash-point exploration of ICL recovery (ALICE /
    CrashMonkey style).

    A workload runs once against the crash plane to count its syscall
    boundaries [T]; it is then re-run [T] more times on byte-identical
    kernels, crashing at boundary [n = 1..T], restarting from the
    durable image, running recovery, and checking invariants.  {e Every}
    boundary is visited — [rp_boundaries = rp_workload_syscalls], no
    sampling — and each failure is reported as a replayable seed.

    Exploration is {e window-sharded}: [1..T] splits into fixed
    contiguous windows ({!window_size} boundaries each, a function of
    [T] alone — never of the domain count), and each window is a
    hermetic function of the immutable {!baseline}, so windows can fan
    out over a {!Gray_util.Domain_pool} and {!merge_reports} in
    submission order reproduces the serial report byte for byte at any
    [-j].

    The per-boundary fsck is {!Fs.check_incremental} against a
    checkpoint taken at the end of the (byte-identical) setup replay,
    whose full-fsck cleanliness the baseline verified once;
    [~full_fsck:true] pins the full-scan oracle instead — the
    differential suite diffs the two. *)

type violation = {
  vi_boundary : int;  (** 1-based syscall boundary inside the window *)
  vi_seed : int;
  vi_problem : string;  (** all invariant failures at this boundary *)
  vi_replay : string;  (** e.g. ["GRAYBOX_CRASH=at:7 seed=11 workload=refresh"] *)
  vi_flight : string list;
      (** Post-mortem flight-recorder tail of the violating boundary's
          kernel ({!Gray_util.Flight.lines}, oldest first): the pre-crash
          syscall/eviction history plus the recovery run that failed the
          invariants.  Empty when the recorder is off ([GRAYBOX_FLIGHT=off])
          or the violation has no kernel (the boundary-0 layout check).
          Deterministic — a pure function of (baseline, boundary), so the
          merged report stays byte-identical at any [-j]. *)
}

type report = {
  rp_workload_syscalls : int;  (** syscalls in the explored window *)
  rp_boundaries : int;  (** boundaries actually crashed at (= syscalls) *)
  rp_rolled_back : int;  (** recoveries restoring the pre-refresh image *)
  rp_rolled_forward : int;  (** recoveries completing the refresh *)
  rp_violations : violation list;
}

val explore_refresh :
  ?seed:int ->
  ?files:int ->
  ?file_size:int ->
  ?break_repair:bool ->
  ?full_fsck:bool ->
  ?pool:Gray_util.Domain_pool.t ->
  unit ->
  report
(** Explore every crash boundary of an {!Fldc.refresh_directory} run
    over [files] files of decreasing size, repairing with {!Fldc.repair}
    after each crash.  Invariants: all processes reclaimed, journal and
    temporary directory cleaned up, the surviving state is exactly the
    pre- or the post-refresh image (no file lost or duplicated, sizes
    and times intact), the post image orders i-numbers by size, and the
    file system passes fsck.  [break_repair] substitutes a repair that
    ignores the commit record — a mutation the explorer must catch
    (used to test the explorer itself).  [pool] fans the windows out
    over domains; the report is identical with or without it.

    Deterministic for a given [seed]; raises [Failure] if the baseline
    run itself misbehaves. *)

type strategy = [ `Snapshot | `Replay ]
(** How a pipeline window visits its boundaries.

    [`Replay] (the original explorer, kept as the oracle): one armed run
    per boundary — O(prefix) syscalls each — then restart, repair-less
    checks, and a full re-run.  The only mode that exercises the crash
    plane's arming and the crashed machine itself.

    [`Snapshot] (default): one {e uncrashed} run per window, cloning the
    volume at each boundary through {!Crash.observe_boundaries} (which
    fires at the exact point an armed crash would, so the clone is the
    crash state).  Each clone is rolled back with {!Fs.crash} and adopted
    by a fresh kernel via {!Kernel.install_volume_image} — the restarted
    machine minus the armed replay.  Boundaries whose volume state equals
    the previous boundary's ({!Fs.equal}, exact) share its verdict, since
    every check and the re-run are deterministic functions of that state.
    The differential suite holds the two strategies' reports identical;
    the replay-only checks ("no crash fired", "live processes after
    crash") never fire in a passing replay sweep, so their absence under
    [`Snapshot] cannot change a report. *)

val explore_pipeline :
  ?seed:int ->
  ?files:int ->
  ?file_size:int ->
  ?full_fsck:bool ->
  ?strategy:strategy ->
  ?pool:Gray_util.Domain_pool.t ->
  unit ->
  report
(** Explore every crash boundary of a gbp-style pipeline (compose-mode
    ordering, reads in that order, then a MAC allocate/touch/free
    cycle).  The pipeline has no recovery protocol; the invariants are
    that restart reclaims everything (fsck clean, no live processes),
    the durable setup image is untouched, and the same pipeline re-runs
    to completion on the restarted machine.  [rp_rolled_back] and
    [rp_rolled_forward] are [0]. *)

(** {1 Window-level API}

    For callers that shard at a higher level than [?pool] — the crash
    bench turns every window into its own harness task, so windows of
    {e different} explorations interleave across domains while the
    rendered report stays byte-identical. *)

type baseline
(** The immutable result of the two baseline runs: pre- and post-images,
    the boundary count, and the workload parameters.  Safe to share
    across domains. *)

val baseline_boundaries : baseline -> int

val refresh_baseline :
  ?seed:int -> ?files:int -> ?file_size:int -> unit -> baseline
(** Observe the durable pre-image (verifying it passes the full fsck —
    the anchor of the incremental checker's contract for the sweep), run
    the refresh uncrashed for the post-image and the boundary count. *)

val pipeline_baseline :
  ?seed:int -> ?files:int -> ?file_size:int -> unit -> baseline

val explore_refresh_window :
  ?break_repair:bool -> ?full_fsck:bool -> baseline -> lo:int -> hi:int -> report
(** Explore boundaries [lo..hi] (inclusive, [1 <= lo <= hi <= T]) of the
    refresh workload.  A window report's [rp_boundaries] is the window
    width; the boundary-0 post-image layout check belongs to the window
    with [lo = 1] so a sharded sweep reports it exactly once. *)

val explore_pipeline_window :
  ?full_fsck:bool -> ?strategy:strategy -> baseline -> lo:int -> hi:int -> report

val window_size : int
(** Boundaries per window (16). *)

val windows : boundaries:int -> (int * int) list
(** [[1..T]] as contiguous [(lo, hi)] windows of {!window_size}. *)

val merge_reports : report list -> report
(** Fold adjacent window reports (in ascending window order) into the
    serial report: counters sum, violations concatenate.  Raises
    [Invalid_argument] on an empty list or windows of different
    workloads. *)
