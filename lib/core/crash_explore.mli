(** Exhaustive crash-point exploration of ICL recovery (ALICE /
    CrashMonkey style).

    A workload runs once against the crash plane to count its syscall
    boundaries [T]; it is then re-run [T] more times on byte-identical
    kernels, crashing at boundary [n = 1..T], restarting from the
    durable image, running recovery, and checking invariants.  {e Every}
    boundary is visited — [rp_boundaries = rp_workload_syscalls], no
    sampling — and each failure is reported as a replayable seed. *)

type violation = {
  vi_boundary : int;  (** 1-based syscall boundary inside the window *)
  vi_seed : int;
  vi_problem : string;  (** all invariant failures at this boundary *)
  vi_replay : string;  (** e.g. ["GRAYBOX_CRASH=at:7 seed=11 workload=refresh"] *)
}

type report = {
  rp_workload_syscalls : int;  (** syscalls in the explored window *)
  rp_boundaries : int;  (** boundaries actually crashed at (= syscalls) *)
  rp_rolled_back : int;  (** recoveries restoring the pre-refresh image *)
  rp_rolled_forward : int;  (** recoveries completing the refresh *)
  rp_violations : violation list;
}

val explore_refresh :
  ?seed:int ->
  ?files:int ->
  ?file_size:int ->
  ?break_repair:bool ->
  unit ->
  report
(** Explore every crash boundary of an {!Fldc.refresh_directory} run
    over [files] files of decreasing size, repairing with {!Fldc.repair}
    after each crash.  Invariants: all processes reclaimed, journal and
    temporary directory cleaned up, the surviving state is exactly the
    pre- or the post-refresh image (no file lost or duplicated, sizes
    and times intact), the post image orders i-numbers by size, and the
    file system passes [Fs.check].  [break_repair] substitutes a repair
    that ignores the commit record — a mutation the explorer must
    catch (used to test the explorer itself).

    Deterministic for a given [seed]; raises [Failure] if the baseline
    run itself misbehaves. *)

val explore_pipeline : ?seed:int -> ?files:int -> ?file_size:int -> unit -> report
(** Explore every crash boundary of a gbp-style pipeline (compose-mode
    ordering, reads in that order, then a MAC allocate/touch/free
    cycle).  The pipeline has no recovery protocol; the invariants are
    that restart reclaims everything ([Fs.check] clean, no live
    processes), the durable setup image is untouched, and the same
    pipeline re-runs to completion on the restarted machine.
    [rp_rolled_back] and [rp_rolled_forward] are [0]. *)
