(* Deterministic mid-run environment drift.  A scenario is an explicit,
   validated schedule of machine mutations; the kernel's drift daemon
   replays it against the virtual clock.  With no scenario installed the
   kernel takes zero extra work and zero extra RNG draws — the same
   byte-identity contract as the fault and crash planes. *)

type kind =
  | Cache_resize of float
  | Policy_swap of string
  | Timer_scale of int
  | Pressure_level of float

type event = { dv_at_ns : int; dv_kind : kind }

type scenario = {
  dr_name : string;
  dr_seed : int;
  dr_retouch_ns : int;
  dr_horizon_ns : int;
  dr_events : event list;
}

let kind_to_string = function
  | Cache_resize f -> Printf.sprintf "cache_resize(x%.2f)" f
  | Policy_swap name -> Printf.sprintf "policy_swap(%s)" name
  | Timer_scale n -> Printf.sprintf "timer_scale(x%d)" n
  | Pressure_level f -> Printf.sprintf "pressure_level(%.2f)" f

let sec = 1_000_000_000
let ms = 1_000_000

let quiet =
  {
    dr_name = "quiet";
    dr_seed = 0;
    dr_retouch_ns = 100 * ms;
    dr_horizon_ns = 0;
    dr_events = [];
  }

(* The reference drifting machine.  The timer event is the sharp one: the
   platform clock is 100 ns, so x1000 turns it into a 100 us jiffy — every
   resident re-touch then reads >= 100 us, above the ~90 us threshold a
   boot-time MAC calibration derived (10x the ~9 us zero-fill page cost),
   so a frozen classifier suddenly sees every fast page as a page-in. *)
let canonical =
  {
    dr_name = "canonical";
    dr_seed = 1;
    dr_retouch_ns = 100 * ms;
    dr_horizon_ns = 30 * sec;
    dr_events =
      [
        { dv_at_ns = 4 * sec; dv_kind = Cache_resize 0.5 };
        { dv_at_ns = 8 * sec; dv_kind = Policy_swap "fifo" };
        { dv_at_ns = 12 * sec; dv_kind = Timer_scale 1000 };
        { dv_at_ns = 16 * sec; dv_kind = Pressure_level 0.35 };
        { dv_at_ns = 20 * sec; dv_kind = Cache_resize 1.6 };
        { dv_at_ns = 24 * sec; dv_kind = Pressure_level 0.0 };
      ];
  }

let heavy =
  {
    dr_name = "heavy";
    dr_seed = 2;
    dr_retouch_ns = 100 * ms;
    dr_horizon_ns = 30 * sec;
    dr_events =
      [
        { dv_at_ns = 3 * sec; dv_kind = Cache_resize 0.25 };
        { dv_at_ns = 6 * sec; dv_kind = Policy_swap "mru-sticky" };
        { dv_at_ns = 9 * sec; dv_kind = Timer_scale 2000 };
        { dv_at_ns = 12 * sec; dv_kind = Pressure_level 0.6 };
        { dv_at_ns = 16 * sec; dv_kind = Policy_swap "clock" };
        { dv_at_ns = 20 * sec; dv_kind = Cache_resize 3.0 };
        { dv_at_ns = 24 * sec; dv_kind = Pressure_level 0.2 };
      ];
  }

let bad field fmt =
  Printf.ksprintf (fun msg -> invalid_arg (Printf.sprintf "Drift: %s %s" field msg)) fmt

let validate sc =
  if sc.dr_retouch_ns < 1 then
    bad "dr_retouch_ns" "must be >= 1 ns (got %d)" sc.dr_retouch_ns;
  if sc.dr_horizon_ns < 0 then
    bad "dr_horizon_ns" "must be >= 0 (got %d)" sc.dr_horizon_ns;
  let prev = ref 0 in
  List.iteri
    (fun i ev ->
      let field what = Printf.sprintf "dr_events[%d].%s" i what in
      if ev.dv_at_ns <= !prev then
        bad (field "dv_at_ns")
          "must be strictly increasing and positive (got %d after %d)"
          ev.dv_at_ns !prev;
      if ev.dv_at_ns > sc.dr_horizon_ns then
        bad (field "dv_at_ns") "is past the horizon (%d > %d)" ev.dv_at_ns
          sc.dr_horizon_ns;
      prev := ev.dv_at_ns;
      match ev.dv_kind with
      | Cache_resize f ->
        if not (f > 0.0) then
          bad (field "Cache_resize") "factor must be > 0 (got %g)" f
      | Policy_swap name ->
        if not (List.mem name Replacement.all_names) then
          bad (field "Policy_swap") "unknown policy %S (expected one of: %s)"
            name
            (String.concat ", " Replacement.all_names)
      | Timer_scale n ->
        if n < 1 then bad (field "Timer_scale") "factor must be >= 1 (got %d)" n
      | Pressure_level f ->
        if not (f >= 0.0 && f <= 1.0) then
          bad (field "Pressure_level") "must be in [0, 1] (got %g)" f)
    sc.dr_events

let expected_grammar = "none, quiet, canonical or heavy"

let parse_token token =
  match token with
  | "none" -> Gray_util.Env.Value None
  | "quiet" -> Value (Some quiet)
  | "canonical" -> Value (Some canonical)
  | "heavy" -> Value (Some heavy)
  | _ -> Invalid

let of_string s =
  let token = String.lowercase_ascii (String.trim s) in
  if token = "" then None
  else
    match parse_token token with
    | Gray_util.Env.Value v -> v
    | Soft (_, v) -> v
    | Invalid ->
      invalid_arg
        (Gray_util.Env.message ~var:"GRAYBOX_DRIFT" ~token
           ~expected:expected_grammar)

let of_env () =
  Gray_util.Env.parse ~var:"GRAYBOX_DRIFT" ~expected:expected_grammar
    ~on_invalid:`Raise ~default:None parse_token

let max_pressure_frac sc =
  List.fold_left
    (fun acc ev ->
      match ev.dv_kind with Pressure_level f -> Float.max acc f | _ -> acc)
    0.0 sc.dr_events

(* ---- runtime plane ---- *)

type stats = {
  d_events : int;
  d_resizes : int;
  d_swaps : int;
  d_timer_changes : int;
  d_pressure_shifts : int;
  d_evictions : int;
}

type t = {
  t_scenario : scenario;
  mutable t_stopped : bool;
  mutable t_timer_factor : int;
  mutable t_pressure : float;
  mutable t_events : int;
  mutable t_resizes : int;
  mutable t_swaps : int;
  mutable t_timer_changes : int;
  mutable t_pressure_shifts : int;
  mutable t_evictions : int;
}

let create sc =
  validate sc;
  {
    t_scenario = sc;
    t_stopped = false;
    t_timer_factor = 1;
    t_pressure = 0.0;
    t_events = 0;
    t_resizes = 0;
    t_swaps = 0;
    t_timer_changes = 0;
    t_pressure_shifts = 0;
    t_evictions = 0;
  }

let scenario t = t.t_scenario
let stop t = t.t_stopped <- true
let stopped t = t.t_stopped
let timer_factor t = t.t_timer_factor
let set_timer_factor t n = t.t_timer_factor <- max 1 n
let pressure_level t = t.t_pressure
let set_pressure_level t f = t.t_pressure <- f

let note_applied t kind =
  t.t_events <- t.t_events + 1;
  match kind with
  | Cache_resize _ -> t.t_resizes <- t.t_resizes + 1
  | Policy_swap _ -> t.t_swaps <- t.t_swaps + 1
  | Timer_scale _ -> t.t_timer_changes <- t.t_timer_changes + 1
  | Pressure_level _ -> t.t_pressure_shifts <- t.t_pressure_shifts + 1

let note_evictions t n = t.t_evictions <- t.t_evictions + n

(* Whole-machine restart: the daemon holding the current regime died with
   the crash, so its machine-visible mutations lapse — the clock returns
   to the platform resolution and the pressure level reads zero.  The
   schedule, the stop flag and the applied-event counters are experiment
   state and survive (restart-audit fix: the timer regime used to leak
   through reboots a dead daemon could never have sustained). *)
let note_restart t =
  t.t_timer_factor <- 1;
  t.t_pressure <- 0.0

let stats t =
  {
    d_events = t.t_events;
    d_resizes = t.t_resizes;
    d_swaps = t.t_swaps;
    d_timer_changes = t.t_timer_changes;
    d_pressure_shifts = t.t_pressure_shifts;
    d_evictions = t.t_evictions;
  }
