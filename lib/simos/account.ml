(* Per-process accounting ledger: see the .mli for the contract.  Rows
   are indexed by pid in a growable array (pids are small and dense —
   the kernel hands them out sequentially from 1), and the blame matrix
   is one flat [int array] with a power-of-two victim stride, so every
   hot-path bump is an array store. *)

module Flight = Gray_util.Flight
module Json = Gray_util.Json
module Table = Gray_util.Table

type stats = {
  st_pid : int;
  mutable st_name : string;
  sys : int array;
  mutable syscalls : int;
  mutable hits : int;
  mutable misses : int;
  mutable fetches : int;
  mutable writebacks : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable zero_fills : int;
  mutable evictions : int;
  mutable evicted : int;
  mutable faults : int;
  mutable cpu_ns : int;
  mutable block_ns : int;
}

let fresh_stats ~pid ~name =
  {
    st_pid = pid;
    st_name = name;
    sys = Array.make Flight.code_count 0;
    syscalls = 0;
    hits = 0;
    misses = 0;
    fetches = 0;
    writebacks = 0;
    bytes_read = 0;
    bytes_written = 0;
    page_ins = 0;
    page_outs = 0;
    zero_fills = 0;
    evictions = 0;
    evicted = 0;
    faults = 0;
    cpu_ns = 0;
    block_ns = 0;
  }

type t = {
  mutable procs : stats option array;  (* index = pid *)
  mutable exited : int list;  (* pids marked by [note_exit], not yet reaped *)
  mutable bstride : int;  (* victim stride of [blame], capped at [blame_cap] *)
  mutable blame : int array;  (* cell (e, v) at [e * bstride + v] *)
  blame_spill : (int, int) Hashtbl.t;  (* key (e lsl 30) lor v, pid >= stride *)
  reaped : (string, stats) Hashtbl.t;  (* name-keyed, st_pid = proc count *)
  reaped_blame : (string * string, int) Hashtbl.t;
  mutable reaped_procs : int;
}

let initial_pids = 16

(* The flat matrix stops doubling here: 1024² cells is 8 MB, and a fleet
   of 10⁴–10⁵ processes would otherwise square that.  Cells naming a
   higher pid go to [blame_spill] — sparse, sized by actual blame pairs. *)
let blame_cap = 1024

let create () =
  {
    procs = Array.make initial_pids None;
    exited = [];
    bstride = initial_pids;
    blame = Array.make (initial_pids * initial_pids) 0;
    blame_spill = Hashtbl.create 16;
    reaped = Hashtbl.create 8;
    reaped_blame = Hashtbl.create 8;
    reaped_procs = 0;
  }

let ensure_pid t pid =
  if pid >= Array.length t.procs then begin
    let cap = ref (Array.length t.procs) in
    while pid >= !cap do
      cap := !cap * 2
    done;
    let fresh = Array.make !cap None in
    Array.blit t.procs 0 fresh 0 (Array.length t.procs);
    t.procs <- fresh
  end;
  if pid >= t.bstride && t.bstride < blame_cap then begin
    let stride = ref t.bstride in
    while pid >= !stride && !stride < blame_cap do
      stride := !stride * 2
    done;
    let fresh = Array.make (!stride * !stride) 0 in
    for e = 0 to t.bstride - 1 do
      for v = 0 to t.bstride - 1 do
        fresh.((e * !stride) + v) <- t.blame.((e * t.bstride) + v)
      done
    done;
    t.bstride <- !stride;
    t.blame <- fresh
  end

let note_spawn t ~pid ~name =
  ensure_pid t pid;
  let st = fresh_stats ~pid ~name in
  t.procs.(pid) <- Some st;
  st

let note_syscall st code =
  st.sys.(Flight.code_index code) <- st.sys.(Flight.code_index code) + 1;
  st.syscalls <- st.syscalls + 1

let find t ~pid =
  if pid >= 0 && pid < Array.length t.procs then t.procs.(pid) else None

let spill_key e v = (e lsl 30) lor v
let spill_unkey key = (key lsr 30, key land 0x3FFFFFFF)

let bump_spill t key n =
  Hashtbl.replace t.blame_spill key
    (n + Option.value ~default:0 (Hashtbl.find_opt t.blame_spill key))

let note_eviction t ~evictor ~victim_pid =
  ensure_pid t evictor.st_pid;
  ensure_pid t victim_pid;
  let e = evictor.st_pid in
  if e < t.bstride && victim_pid < t.bstride then begin
    let cell = (e * t.bstride) + victim_pid in
    t.blame.(cell) <- t.blame.(cell) + 1
  end
  else bump_spill t (spill_key e victim_pid) 1;
  evictor.evictions <- evictor.evictions + 1;
  if victim_pid > 0 then
    match t.procs.(victim_pid) with
    | Some v -> v.evicted <- v.evicted + 1
    | None -> ()

let note_exit t ~pid =
  if pid >= 0 && pid < Array.length t.procs && Option.is_some t.procs.(pid)
  then t.exited <- pid :: t.exited

let reaped_procs t = t.reaped_procs

let reset t =
  t.procs <- Array.make initial_pids None;
  t.exited <- [];
  t.bstride <- initial_pids;
  t.blame <- Array.make (initial_pids * initial_pids) 0;
  Hashtbl.reset t.blame_spill;
  Hashtbl.reset t.reaped;
  Hashtbl.reset t.reaped_blame;
  t.reaped_procs <- 0

let rows t =
  let out = ref [] in
  for pid = Array.length t.procs - 1 downto 0 do
    match t.procs.(pid) with Some st -> out := st :: !out | None -> ()
  done;
  !out

let blame t ~evictor ~victim =
  if evictor < 0 || victim < 0 then 0
  else if evictor < t.bstride && victim < t.bstride then
    t.blame.((evictor * t.bstride) + victim)
  else
    Option.value ~default:0
      (Hashtbl.find_opt t.blame_spill (spill_key evictor victim))

let blame_triples t =
  let out = ref [] in
  Hashtbl.iter
    (fun key n ->
      if n > 0 then
        let e, v = spill_unkey key in
        out := (e, v, n) :: !out)
    t.blame_spill;
  for e = t.bstride - 1 downto 0 do
    for v = t.bstride - 1 downto 0 do
      let n = t.blame.((e * t.bstride) + v) in
      if n > 0 then out := (e, v, n) :: !out
    done
  done;
  List.sort compare !out

(* ---- aggregated export ------------------------------------------------ *)

(* Cross-kernel aggregation keys on process name (pids repeat across
   kernels).  The totals reuse [stats] with [st_pid] repurposed as the
   number of processes merged into the row. *)
type export = {
  ex_procs : (string * stats) list;  (* ascending name *)
  ex_blame : ((string * string) * int) list;  (* ascending (evictor, victim) *)
}

let file_victim = "(file)"

let victim_name t v =
  if v = 0 then file_victim
  else
    match find t ~pid:v with
    | Some st -> st.st_name
    | None -> "pid" ^ string_of_int v

let add_into acc st =
  acc.syscalls <- acc.syscalls + st.syscalls;
  Array.iteri (fun i n -> acc.sys.(i) <- acc.sys.(i) + n) st.sys;
  acc.hits <- acc.hits + st.hits;
  acc.misses <- acc.misses + st.misses;
  acc.fetches <- acc.fetches + st.fetches;
  acc.writebacks <- acc.writebacks + st.writebacks;
  acc.bytes_read <- acc.bytes_read + st.bytes_read;
  acc.bytes_written <- acc.bytes_written + st.bytes_written;
  acc.page_ins <- acc.page_ins + st.page_ins;
  acc.page_outs <- acc.page_outs + st.page_outs;
  acc.zero_fills <- acc.zero_fills + st.zero_fills;
  acc.evictions <- acc.evictions + st.evictions;
  acc.evicted <- acc.evicted + st.evicted;
  acc.faults <- acc.faults + st.faults;
  acc.cpu_ns <- acc.cpu_ns + st.cpu_ns;
  acc.block_ns <- acc.block_ns + st.block_ns

(* ---- exit-time reap --------------------------------------------------- *)

(* Fold exited rows into the same name-keyed shape the export uses, in
   two passes: blame first (counterpart names must resolve while every
   row is still live — dropping rows first would turn a dead partner
   into "pidN"), then the stats rows.  Cells are zeroed as they fold so
   a cell both of whose pids exited is counted exactly once. *)
let reap t =
  if t.exited <> [] then begin
    let dead = Hashtbl.create (List.length t.exited) in
    List.iter
      (fun p ->
        if p < Array.length t.procs && Option.is_some t.procs.(p) then
          Hashtbl.replace dead p ())
      t.exited;
    t.exited <- [];
    let fold_cell e v n =
      if n > 0 then begin
        let key = (victim_name t e, victim_name t v) in
        Hashtbl.replace t.reaped_blame key
          (n + Option.value ~default:0 (Hashtbl.find_opt t.reaped_blame key))
      end
    in
    Hashtbl.iter
      (fun p () ->
        if p < t.bstride then begin
          for v = 0 to t.bstride - 1 do
            let cell = (p * t.bstride) + v in
            fold_cell p v t.blame.(cell);
            t.blame.(cell) <- 0
          done;
          for e = 0 to t.bstride - 1 do
            let cell = (e * t.bstride) + p in
            fold_cell e p t.blame.(cell);
            t.blame.(cell) <- 0
          done
        end)
      dead;
    let spilled_dead =
      Hashtbl.fold
        (fun key n acc ->
          let e, v = spill_unkey key in
          if Hashtbl.mem dead e || Hashtbl.mem dead v then
            (key, e, v, n) :: acc
          else acc)
        t.blame_spill []
    in
    List.iter
      (fun (key, e, v, n) ->
        Hashtbl.remove t.blame_spill key;
        fold_cell e v n)
      spilled_dead;
    Hashtbl.iter
      (fun p () ->
        match t.procs.(p) with
        | None -> ()
        | Some st ->
          let acc =
            match Hashtbl.find_opt t.reaped st.st_name with
            | Some acc -> acc
            | None ->
              let acc = fresh_stats ~pid:0 ~name:st.st_name in
              Hashtbl.add t.reaped st.st_name acc;
              acc
          in
          add_into acc st;
          Hashtbl.replace t.reaped st.st_name { acc with st_pid = acc.st_pid + 1 };
          t.procs.(p) <- None;
          t.reaped_procs <- t.reaped_procs + 1)
      dead
  end

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let export t =
  let procs = Hashtbl.create 8 in
  List.iter
    (fun st ->
      let acc =
        match Hashtbl.find_opt procs st.st_name with
        | Some acc -> acc
        | None ->
          let acc = fresh_stats ~pid:0 ~name:st.st_name in
          Hashtbl.add procs st.st_name acc;
          acc
      in
      add_into acc st;
      (* st_pid doubles as the merged-process count in exports *)
      Hashtbl.replace procs st.st_name { acc with st_pid = acc.st_pid + 1 })
    (rows t);
  Hashtbl.iter
    (fun name st ->
      match Hashtbl.find_opt procs name with
      | Some acc ->
        add_into acc st;
        Hashtbl.replace procs name { acc with st_pid = acc.st_pid + st.st_pid }
      | None ->
        let acc = fresh_stats ~pid:st.st_pid ~name in
        add_into acc st;
        Hashtbl.add procs name acc)
    t.reaped;
  let blame = Hashtbl.create 8 in
  let bump key n =
    Hashtbl.replace blame key
      (n + Option.value ~default:0 (Hashtbl.find_opt blame key))
  in
  List.iter
    (fun (e, v, n) -> bump (victim_name t e, victim_name t v) n)
    (blame_triples t);
  Hashtbl.iter (fun key n -> bump key n) t.reaped_blame;
  { ex_procs = sorted_assoc procs; ex_blame = sorted_assoc blame }

let merge_exports exports =
  let procs = Hashtbl.create 8 in
  let blame = Hashtbl.create 8 in
  List.iter
    (fun ex ->
      List.iter
        (fun (name, st) ->
          match Hashtbl.find_opt procs name with
          | Some acc ->
            add_into acc st;
            Hashtbl.replace procs name { acc with st_pid = acc.st_pid + st.st_pid }
          | None ->
            let acc = fresh_stats ~pid:st.st_pid ~name in
            add_into acc st;
            Hashtbl.replace procs name acc)
        ex.ex_procs;
      List.iter
        (fun (key, n) ->
          Hashtbl.replace blame key
            (n + Option.value ~default:0 (Hashtbl.find_opt blame key)))
        ex.ex_blame)
    exports;
  { ex_procs = sorted_assoc procs; ex_blame = sorted_assoc blame }

let export_is_empty ex = ex.ex_procs = [] && ex.ex_blame = []
let export_blame_nonempty ex = ex.ex_blame <> []

let syscalls_json st =
  let all =
    Flight.
      [
        Open; Create; Close; Read; Write; Mkdir; Unlink; Rename; Readdir;
        Stat; Utimes; Fsync; Sync; Write_blob; Read_blob; Valloc; Vfree;
        Vrelease; Touch; Vmstat; Compute;
      ]
  in
  List.filter_map
    (fun c ->
      let n = st.sys.(Flight.code_index c) in
      if n > 0 then Some (Flight.code_name c, Json.Int n) else None)
    all

let stats_json st =
  Json.Obj
    [
      ("procs", Json.Int st.st_pid);
      ("syscalls", Json.Int st.syscalls);
      ("by_syscall", Json.Obj (syscalls_json st));
      ("hits", Json.Int st.hits);
      ("misses", Json.Int st.misses);
      ("fetches", Json.Int st.fetches);
      ("writebacks", Json.Int st.writebacks);
      ("bytes_read", Json.Int st.bytes_read);
      ("bytes_written", Json.Int st.bytes_written);
      ("page_ins", Json.Int st.page_ins);
      ("page_outs", Json.Int st.page_outs);
      ("zero_fills", Json.Int st.zero_fills);
      ("evictions", Json.Int st.evictions);
      ("evicted", Json.Int st.evicted);
      ("faults", Json.Int st.faults);
      ("cpu_ns", Json.Int st.cpu_ns);
      ("block_ns", Json.Int st.block_ns);
    ]

let export_json ex =
  let blame_rows =
    (* group by evictor, preserving the sorted order *)
    List.fold_left
      (fun acc ((e, v), n) ->
        match acc with
        | (e', vs) :: rest when e' = e -> (e', (v, Json.Int n) :: vs) :: rest
        | _ -> (e, [ (v, Json.Int n) ]) :: acc)
      [] ex.ex_blame
    |> List.rev_map (fun (e, vs) -> (e, Json.Obj (List.rev vs)))
  in
  Json.Obj
    [
      ("processes", Json.Obj (List.map (fun (n, st) -> (n, stats_json st)) ex.ex_procs));
      ("eviction_blame", Json.Obj blame_rows);
    ]

(* ---- rendering -------------------------------------------------------- *)

let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6)

let top_table t =
  let tbl =
    Table.create ~title:"per-process accounting"
      ~columns:
        [
          "pid"; "name"; "sys"; "hit"; "miss"; "fetch"; "wb"; "pgin";
          "pgout"; "zfill"; "ev"; "evd"; "fault"; "cpu_ms"; "blk_ms";
        ]
  in
  List.iter
    (fun st ->
      Table.add_row tbl
        [
          string_of_int st.st_pid; st.st_name; string_of_int st.syscalls;
          string_of_int st.hits; string_of_int st.misses;
          string_of_int st.fetches; string_of_int st.writebacks;
          string_of_int st.page_ins; string_of_int st.page_outs;
          string_of_int st.zero_fills; string_of_int st.evictions;
          string_of_int st.evicted; string_of_int st.faults; ms st.cpu_ns;
          ms st.block_ns;
        ])
    (rows t);
  Table.render tbl

let blame_table t =
  let triples = blame_triples t in
  let victims =
    List.sort_uniq compare (List.map (fun (_, v, _) -> v) triples)
  in
  let evictors =
    List.sort_uniq compare (List.map (fun (e, _, _) -> e) triples)
  in
  let label pid =
    if pid = 0 then file_victim
    else Printf.sprintf "%s(%d)" (victim_name t pid) pid
  in
  let tbl =
    Table.create ~title:"eviction blame (evictor row x victim column)"
      ~columns:("evictor" :: List.map label victims)
  in
  List.iter
    (fun e ->
      Table.add_row tbl
        (label e
        :: List.map (fun v -> string_of_int (blame t ~evictor:e ~victim:v)) victims))
    evictors;
  Table.render tbl

(* ---- env control ------------------------------------------------------ *)

let env_on =
  lazy
    (Gray_util.Env.parse ~var:"GRAYBOX_ACCOUNT" ~expected:"on or off"
       ~on_invalid:`Exit ~default:true (fun token ->
         match token with
         | "on" | "1" -> Gray_util.Env.Value true
         | "off" | "none" | "0" -> Value false
         | _ -> Invalid))

let of_env () = Lazy.force env_on
