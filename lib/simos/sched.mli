(** Proportional-share CPU scheduling for multi-tenant fleets.

    Without a scheduler, {!Kernel.compute} reserves its whole burst on
    the earliest-free CPU slot ({!Resource.acquire}, FCFS): the first
    long burst dispatched monopolises a CPU until it completes, and a
    process arriving one event later waits out the entire burst.  That
    is fine for a handful of cooperating processes (the paper's own
    experiments) and hopeless for a fleet of thousands of contenders.

    With a scheduler installed ({!Kernel.boot}'s [?sched]), [compute]
    slices each burst into weighted quanta and reserves them one at a
    time, re-entering the slot timeline between slices.  Because every
    contending fiber does the same, FCFS at quantum granularity {e is}
    weighted round-robin: between two consecutive slices of a runnable
    process, every other active process obtains at most one slice, so
    no runnable process waits longer than the sum of the other active
    processes' chunk lengths (the proportional-share starvation bound —
    see DESIGN.md §16 and [test/test_sched.ml] for the property as
    tested).

    One admission caveat: a burst dispatched while its process is the
    {e sole} registered participant runs whole — that is the legacy
    path below, and it is load-bearing, not an oversight.  The bound
    therefore governs bursts admitted under contention; a long burst
    admitted on an idle queue completes before newcomers get a slice
    (there is no mid-reservation preemption in the slot timeline).

    This module itself is pure bookkeeping — weights, participant
    counts and grant accounting.  It draws no RNG and never advances
    the clock; the slot timeline stays {!Resource}.  Two consequences
    the fleet plane relies on:

    - {b byte-identity when uncontended}: while a scheduler kernel has
      a single registered process, [compute] takes the exact legacy
      whole-burst path (one reservation, one delay), so a 1-process
      fleet is bit-identical to the scheduler-less solo path;
    - {b restart audit}: the run queue is machine state; a
      {!Kernel.restart} resets registrations and grant counters along
      with the ledger. *)

type config = { sd_quantum_ns : int  (** slice length for weight-1 processes *) }

val default_config : config
(** 1 ms quantum: coarse enough that slicing adds few engine events,
    fine enough that a 4-way contended 50 ms burst interleaves. *)

type t

val create : config -> t
(** Raises [Invalid_argument] on a non-positive quantum. *)

val quantum_ns : t -> int

(** {1 Registration}

    {!Kernel.spawn} registers each process when its fiber starts and
    unregisters it when the fiber cleans up, so the participant count
    tracks live processes exactly. *)

val register : t -> pid:int -> weight:int -> unit
(** Raises [Invalid_argument] on a non-positive weight. *)

val unregister : t -> pid:int -> unit
val weight : t -> pid:int -> int
(** 0 when unregistered. *)

val participants : t -> int

val chunk_ns : t -> pid:int -> int
(** The slice length this process is granted per round:
    [quantum * weight] (weight 1 when unregistered — a defensive
    default, not a code path the kernel takes). *)

(** {1 Grant accounting}

    Written by the kernel as it reserves CPU; read by the fairness
    figures and the scheduler property tests. *)

val note_slice : t -> pid:int -> ns:int -> unit

val slices : t -> int
(** Total slices granted since boot/restart. *)

val granted_ns : t -> int
(** Total CPU-ns granted since boot/restart. *)

val granted_of : t -> pid:int -> int
(** CPU-ns granted to this pid; survives the pid's exit (grants
    describe the epoch, registrations describe the instant). *)

val reset : t -> unit
(** {!Kernel.restart}: forget registrations and grants — the rebooted
    machine has no run queue. *)
