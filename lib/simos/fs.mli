(** FFS-style file-system layout model.

    This module owns the namespace and the on-disk {e layout} decisions —
    cylinder groups, inode allocation, block allocation — but performs no
    I/O itself; the {!Kernel} turns layout into disk accesses and caching.

    Allocation follows the Berkeley FFS heuristics the paper's FLDC relies
    on (Section 4.2.1):
    - each directory is placed in a cylinder group (the group with the most
      free inodes at creation time);
    - a file's inode is the lowest free inode slot in its directory's
      group, so creation order matches i-number order in a fresh directory;
    - data blocks are allocated contiguously after the file's previous
      block when possible, else first-fit within the inode's group, then
      spilling into following groups;
    - deletions free slots for first-fit reuse, which is exactly what makes
      i-number ordering decay as the file system {e ages}.

    Each cylinder group reserves its leading blocks for the inode table, so
    inodes and data live in separate regions of the group (the effect that
    makes stat-then-read faster than interleaving, Section 4.2.2). *)

type t

type error = Enoent | Eexist | Enotdir | Eisdir | Enotempty | Enospc

val error_to_string : error -> string

type config = {
  total_blocks : int;  (** volume size in 4 KB blocks *)
  blocks_per_group : int;
  inodes_per_group : int;
}

val default_config : total_blocks:int -> config
(** 8 192-block (32 MB) groups with 1 024 inodes each. *)

val create : config -> t
val config : t -> config
val root_ino : t -> int

(** {1 Namespace} *)

val lookup : t -> string -> (int, error) result
(** Absolute-path lookup ("/dir/file") to an inode number. *)

val mkdir : t -> string -> (int, error) result
val create_file : t -> string -> (int, error) result
val unlink : t -> string -> (unit, error) result
(** Removes a file, or an {e empty} directory. *)

val rename : t -> src:string -> dst:string -> (unit, error) result
(** POSIX-style: an existing empty-directory or file target is replaced. *)

val readdir : t -> string -> (string list, error) result
(** Entry names, unspecified order. *)

(** {1 Attributes} *)

type stat_info = {
  st_ino : int;
  st_size : int;
  st_is_dir : bool;
  st_atime : int;
  st_mtime : int;
  st_blocks : int;
}

val stat_ino : t -> int -> (stat_info, error) result
val stat_path : t -> string -> (stat_info, error) result

val size_ino : t -> ino:int -> int
(** Current (volatile) size of an inode, [0] for unknown inodes.  The
    allocation-free fast path for the kernel's read/write bounds checks —
    {!stat_ino} builds a record per call. *)

val set_times : t -> ino:int -> atime:int -> mtime:int -> (unit, error) result
val mark_atime : t -> ino:int -> now:int -> unit
val mark_mtime : t -> ino:int -> now:int -> unit

(** {1 Data layout} *)

val resize : t -> ino:int -> size:int -> (unit, error) result
(** Grow (allocating blocks) or shrink (freeing them) a regular file. *)

val block_of_page : t -> ino:int -> idx:int -> int option
(** Disk block backing page [idx] of the file, if allocated. *)

val pages_of_file : t -> ino:int -> int
(** Number of data pages ([ceil (size / 4 KB)]). *)

val inode_block : t -> ino:int -> int
(** Disk block holding this inode's on-disk record (inode-table region of
    its group). *)

val group_of_ino : int -> inodes_per_group:int -> int

(** {1 Durability}

    Namespace operations (create/unlink/rename/mkdir) are synchronous:
    they are durable at the syscall, FFS-style.  Per-inode write-back
    state — file size (and hence data blocks), times, and the side-band
    {!set_blob} content — is volatile until flushed by {!fsync_ino} or
    {!sync_all}.  {!crash} discards the volatile image. *)

val set_blob : t -> ino:int -> string -> (unit, error) result
(** Replace a regular file's side-band content (journal records live
    here).  [Eisdir] for directories, [Enoent] for missing inodes. *)

val blob : t -> ino:int -> string
(** Current (volatile) side-band content; [""] for unknown inodes. *)

val fsync_ino : t -> ino:int -> (unit, error) result
(** Make one inode's size, times and blob durable. *)

val sync_all : t -> unit
(** {!fsync_ino} for every inode (the [sync] syscall). *)

val crash : t -> unit
(** Roll every inode's volatile fields back to its durable image —
    shrinking files to their flushed size and freeing the tail blocks —
    and reset the allocator cursors as on a fresh mount.  The namespace
    itself survives. *)

val clone : t -> t
(** Deep copy of the complete volume state — durable and volatile fields,
    dirty-epoch bookkeeping included, so a {!checkpoint} token from the
    original stays valid against the copy and {!crash} rolls the copy
    back exactly as it would the original.  The snapshot-mode crash
    explorer clones the volume at each syscall boundary of one uncrashed
    run instead of replaying the workload prefix per boundary. *)

val equal : t -> t -> bool
(** Exact structural equality of the complete volume state (everything
    {!clone} copies).  Two equal states are indistinguishable to every
    operation in this interface, so a deterministic computation over one
    (an fsck, a repair, a whole re-run) may reuse the verdict computed
    over the other — the memoisation key of the snapshot-mode explorer.
    Exact for images of a common lineage; conservative (may report
    unequal for observably equal states with different arena layouts)
    otherwise. *)

val check : t -> string list
(** Full-volume fsck: namespace reachability (no orphans, no double
    links, no dangling entries), inode-bitmap and free-count consistency,
    and block ownership (every file block in range, allocated, owned
    exactly once; sizes agree with block counts).  Returns a
    deterministic list of violations, [[]] when consistent.  Alias of
    {!check_full}. *)

val check_full : t -> string list
(** The full scan, kept as the oracle {!check_incremental} is proven
    against. *)

(** {1 Incremental fsck}

    Every mutating operation marks the inodes and allocation groups it
    touches with the current {e dirty epoch}.  {!checkpoint} starts a new
    epoch and returns a token; {!check_incremental} with that token
    re-validates only what was dirtied since — touched inodes (their
    reachability via maintained parent back-pointers, their block lists
    via a maintained block-ownership map, their bitmap slots) and touched
    groups (bitmap recounts) plus the O(groups) global totals.

    Equivalence contract: if the volume passed {!check_full} with [[]] at
    the moment of {!checkpoint}, and every subsequent change went through
    this module's operations (or {!break_one}), then
    [check_incremental t cp] returns the same violation multiset as
    [check_full t].  A stale token — from an older checkpoint, or
    invalidated by an epoch-counter wrap — can vouch for nothing, so the
    checker silently falls back to the full scan: it can be slow, never
    unsound. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Start a new dirty epoch; subsequent marks accumulate against the
    returned token.  The caller is responsible for the contract above
    (the state should be known-consistent, e.g. fresh from a passing
    {!check_full}). *)

val check_incremental : t -> checkpoint -> string list
(** Dirty-set fsck (see the contract above).  Falls back to
    {!check_full} when the token is stale.  Metrics counters
    [fs.check.incremental] / [fs.check.fallback] / [fs.check.full]
    record which path ran. *)

val epoch_state : t -> int * int
(** [(generation, epoch)] — white-box, for the wraparound tests. *)

val break_one : t -> seed:int -> string option
(** Deliberately corrupt one piece of internal state — clear or set a
    bitmap bit, skew a free count, orphan an inode, plant a dangling
    entry, double-own a block, grow a size past its blocks — chosen
    deterministically from [seed], while honouring the dirty-marking
    contract so {!check_incremental} must catch it.  Returns a
    description of the damage, or [None] if the volume is too empty to
    corrupt.  White-box: for the differential test harness only. *)

(** {1 Introspection (white-box; used by tests and benches only)} *)

val layout_of_file : t -> ino:int -> int array
(** Data block addresses in page order. *)

val free_blocks : t -> int
val free_inodes : t -> int

val arena_stats : t -> int * int
(** [(slots used, slots capacity)] of the shared extent arena backing all
    per-file block lists. *)

val fragmentation_of_file : t -> ino:int -> float
(** Fraction of page transitions that are {e not} physically contiguous
    ([0.] = perfectly laid out). *)
