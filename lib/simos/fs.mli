(** FFS-style file-system layout model.

    This module owns the namespace and the on-disk {e layout} decisions —
    cylinder groups, inode allocation, block allocation — but performs no
    I/O itself; the {!Kernel} turns layout into disk accesses and caching.

    Allocation follows the Berkeley FFS heuristics the paper's FLDC relies
    on (Section 4.2.1):
    - each directory is placed in a cylinder group (the group with the most
      free inodes at creation time);
    - a file's inode is the lowest free inode slot in its directory's
      group, so creation order matches i-number order in a fresh directory;
    - data blocks are allocated contiguously after the file's previous
      block when possible, else first-fit within the inode's group, then
      spilling into following groups;
    - deletions free slots for first-fit reuse, which is exactly what makes
      i-number ordering decay as the file system {e ages}.

    Each cylinder group reserves its leading blocks for the inode table, so
    inodes and data live in separate regions of the group (the effect that
    makes stat-then-read faster than interleaving, Section 4.2.2). *)

type t

type error = Enoent | Eexist | Enotdir | Eisdir | Enotempty | Enospc

val error_to_string : error -> string

type config = {
  total_blocks : int;  (** volume size in 4 KB blocks *)
  blocks_per_group : int;
  inodes_per_group : int;
}

val default_config : total_blocks:int -> config
(** 8 192-block (32 MB) groups with 1 024 inodes each. *)

val create : config -> t
val config : t -> config
val root_ino : t -> int

(** {1 Namespace} *)

val lookup : t -> string -> (int, error) result
(** Absolute-path lookup ("/dir/file") to an inode number. *)

val mkdir : t -> string -> (int, error) result
val create_file : t -> string -> (int, error) result
val unlink : t -> string -> (unit, error) result
(** Removes a file, or an {e empty} directory. *)

val rename : t -> src:string -> dst:string -> (unit, error) result
(** POSIX-style: an existing empty-directory or file target is replaced. *)

val readdir : t -> string -> (string list, error) result
(** Entry names, unspecified order. *)

(** {1 Attributes} *)

type stat_info = {
  st_ino : int;
  st_size : int;
  st_is_dir : bool;
  st_atime : int;
  st_mtime : int;
  st_blocks : int;
}

val stat_ino : t -> int -> (stat_info, error) result
val stat_path : t -> string -> (stat_info, error) result
val set_times : t -> ino:int -> atime:int -> mtime:int -> (unit, error) result
val mark_atime : t -> ino:int -> now:int -> unit
val mark_mtime : t -> ino:int -> now:int -> unit

(** {1 Data layout} *)

val resize : t -> ino:int -> size:int -> (unit, error) result
(** Grow (allocating blocks) or shrink (freeing them) a regular file. *)

val block_of_page : t -> ino:int -> idx:int -> int option
(** Disk block backing page [idx] of the file, if allocated. *)

val pages_of_file : t -> ino:int -> int
(** Number of data pages ([ceil (size / 4 KB)]). *)

val inode_block : t -> ino:int -> int
(** Disk block holding this inode's on-disk record (inode-table region of
    its group). *)

val group_of_ino : int -> inodes_per_group:int -> int

(** {1 Durability}

    Namespace operations (create/unlink/rename/mkdir) are synchronous:
    they are durable at the syscall, FFS-style.  Per-inode write-back
    state — file size (and hence data blocks), times, and the side-band
    {!set_blob} content — is volatile until flushed by {!fsync_ino} or
    {!sync_all}.  {!crash} discards the volatile image. *)

val set_blob : t -> ino:int -> string -> (unit, error) result
(** Replace a regular file's side-band content (journal records live
    here).  [Eisdir] for directories, [Enoent] for missing inodes. *)

val blob : t -> ino:int -> string
(** Current (volatile) side-band content; [""] for unknown inodes. *)

val fsync_ino : t -> ino:int -> (unit, error) result
(** Make one inode's size, times and blob durable. *)

val sync_all : t -> unit
(** {!fsync_ino} for every inode (the [sync] syscall). *)

val crash : t -> unit
(** Roll every inode's volatile fields back to its durable image —
    shrinking files to their flushed size and freeing the tail blocks —
    and reset the allocator cursors as on a fresh mount.  The namespace
    itself survives. *)

val check : t -> string list
(** Full-volume fsck: namespace reachability (no orphans, no double
    links, no dangling entries), inode-bitmap and free-count consistency,
    and block ownership (every file block in range, allocated, owned
    exactly once; sizes agree with block counts).  Returns a
    deterministic list of violations, [[]] when consistent. *)

(** {1 Introspection (white-box; used by tests and benches only)} *)

val layout_of_file : t -> ino:int -> int array
(** Data block addresses in page order. *)

val free_blocks : t -> int
val free_inodes : t -> int
val fragmentation_of_file : t -> ino:int -> float
(** Fraction of page transitions that are {e not} physically contiguous
    ([0.] = perfectly laid out). *)
